/// Deep invariant sweeps that cut across modules: dual-construction
/// identities, matching/cover duality at scale, partition accounting
/// under long random move sequences, and baseline behavioral contracts.
#include <gtest/gtest.h>

#include <numeric>

#include "baselines/fm.hpp"
#include "baselines/kl.hpp"
#include "baselines/sa.hpp"
#include "core/intersection.hpp"
#include "gen/circuit.hpp"
#include "gen/random_hypergraph.hpp"
#include "graph/bfs.hpp"
#include "graph/components.hpp"
#include "graph/matching.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace fhp {
namespace {

// ---------------------------------------------------------------------
// Dual-construction identities.
// ---------------------------------------------------------------------

TEST(Invariants, IntersectionDegreeSumBound) {
  // Sum of G-degrees <= sum over modules of d(v)*(d(v)-1): each module of
  // degree d contributes at most a d-clique.
  RandomHypergraphParams params;
  params.num_vertices = 60;
  params.num_edges = 90;
  params.max_degree = 7;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Hypergraph h = random_hypergraph(params, seed);
    const Graph g = intersection_graph(h);
    std::size_t clique_bound = 0;
    for (VertexId v = 0; v < h.num_vertices(); ++v) {
      const std::size_t d = h.degree(v);
      clique_bound += d * (d > 0 ? d - 1 : 0);
    }
    std::size_t degree_sum = 0;
    for (VertexId u = 0; u < g.num_vertices(); ++u) degree_sum += g.degree(u);
    EXPECT_LE(degree_sum, clique_bound) << "seed " << seed;
  }
}

TEST(Invariants, ModuleConnectivityMatchesDualConnectivity) {
  // Nets e1, e2 are in the same G-component iff they are pin-connected in
  // H (walk alternating modules and nets).
  RandomHypergraphParams params;
  params.num_vertices = 40;
  params.num_edges = 50;
  params.num_edges = 45;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Hypergraph h = random_hypergraph(params, seed);
    if (h.num_edges() == 0) continue;
    const Graph g = intersection_graph(h);
    const Components comps = connected_components(g);
    // BFS in H from net 0's pins: all reached nets must share a label.
    std::vector<std::uint8_t> edge_seen(h.num_edges(), 0);
    std::vector<std::uint8_t> vertex_seen(h.num_vertices(), 0);
    std::vector<EdgeId> queue{0};
    edge_seen[0] = 1;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      for (VertexId v : h.pins(queue[head])) {
        if (vertex_seen[v]) continue;
        vertex_seen[v] = 1;
        for (EdgeId e : h.nets_of(v)) {
          if (!edge_seen[e]) {
            edge_seen[e] = 1;
            queue.push_back(e);
          }
        }
      }
    }
    for (EdgeId e = 0; e < h.num_edges(); ++e) {
      EXPECT_EQ(edge_seen[e] == 1, comps.label[e] == comps.label[0])
          << "net " << e << " seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------
// Matching / cover duality at scale.
// ---------------------------------------------------------------------

TEST(Invariants, KoenigDualityAtScale) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto [g, side] = test::random_bipartite_graph(80, 90, 0.05, seed);
    const MatchingResult m = max_bipartite_matching(g, side);
    const auto cover = minimum_vertex_cover(g, side, m);
    VertexId cover_size = 0;
    for (std::uint8_t c : cover) cover_size += c;
    EXPECT_EQ(cover_size, m.size);
    // Cover covers every edge.
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      for (VertexId v : g.neighbors(u)) {
        if (v < u) continue;
        EXPECT_TRUE(cover[u] || cover[v]);
      }
    }
  }
}

// ---------------------------------------------------------------------
// Partition accounting under long random walks.
// ---------------------------------------------------------------------

TEST(Invariants, PartitionAccountingSurvivesLongWalks) {
  const Hypergraph h = generate_circuit(
      table2_params(120, 200, Technology::kStandardCell), 9);
  Rng rng(9);
  Bipartition p(h, random_bisection(h, 9).sides);
  Weight min_cut_seen = p.cut_weight();
  for (int step = 0; step < 3000; ++step) {
    p.flip(static_cast<VertexId>(rng.next_below(h.num_vertices())));
    min_cut_seen = std::min(min_cut_seen, p.cut_weight());
  }
  p.validate();  // incremental state must equal a fresh rebuild
  EXPECT_GE(p.cut_weight(), 0);
  EXPECT_EQ(p.count(0) + p.count(1), h.num_vertices());
  EXPECT_EQ(p.weight(0) + p.weight(1), h.total_vertex_weight());
}

// ---------------------------------------------------------------------
// Baseline behavioral contracts.
// ---------------------------------------------------------------------

TEST(Invariants, FmPassesMonotoneOnCut) {
  // Running FM again from its own output must not increase the cut.
  const Hypergraph h =
      generate_circuit(table2_params(150, 260, Technology::kGateArray), 3);
  FmOptions first;
  first.seed = 3;
  const BaselineResult once = fiduccia_mattheyses(h, first);
  FmOptions second;
  second.initial = once.sides;
  const BaselineResult twice = fiduccia_mattheyses(h, second);
  EXPECT_LE(twice.metrics.cut_weight, once.metrics.cut_weight);
}

TEST(Invariants, KlSwapCountsConserveSides) {
  const Hypergraph h =
      generate_circuit(table2_params(100, 170, Technology::kPcb), 5);
  std::vector<std::uint8_t> initial(h.num_vertices(), 0);
  for (VertexId v = 0; v < h.num_vertices() / 2; ++v) initial[v] = 1;
  VertexId ones = 0;
  for (std::uint8_t s : initial) ones += s;
  KlOptions options;
  options.initial = initial;
  const BaselineResult r = kernighan_lin(h, options);
  VertexId ones_after = 0;
  for (std::uint8_t s : r.sides) ones_after += s;
  EXPECT_EQ(ones, ones_after);  // pair swaps preserve cardinalities exactly
}

TEST(Invariants, SaBestStateNeverWorseThanFinal) {
  // The annealer reports the best state it visited, which can only be at
  // least as good as any single random bisection with the same seed.
  const Hypergraph h =
      generate_circuit(table2_params(90, 150, Technology::kHybrid), 13);
  SaOptions options;
  options.seed = 13;
  options.moves_per_temperature = 300;
  options.max_temperatures = 30;
  const BaselineResult annealed = simulated_annealing(h, options);
  const BaselineResult start = random_bisection(h, 13);
  EXPECT_LE(annealed.metrics.cut_edges, start.metrics.cut_edges);
}

TEST(Invariants, BfsDistanceTriangleInequality) {
  const Graph g = test::connected_random_graph(60, 0.06, 21);
  const BfsResult from0 = bfs(g, 0);
  const BfsResult from5 = bfs(g, 5);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    // d(0, v) <= d(0, 5) + d(5, v)
    EXPECT_LE(from0.distance[v], from0.distance[5] + from5.distance[v]);
  }
}

}  // namespace
}  // namespace fhp

#include "baselines/spectral.hpp"

#include <gtest/gtest.h>

#include "baselines/exact.hpp"
#include "gen/circuit.hpp"
#include "gen/grid.hpp"
#include "gen/planted.hpp"
#include "test_helpers.hpp"

namespace fhp {
namespace {

TEST(Spectral, SolvesTwoClusters) {
  const Hypergraph h = test::two_cluster_hypergraph(8, 2);
  const BaselineResult r = spectral_bipartition(h);
  EXPECT_EQ(r.metrics.cut_edges, 2U);
  EXPECT_TRUE(r.metrics.proper);
}

TEST(Spectral, ChainIsOneDimensional) {
  // The Fiedler vector of a path is monotone: the sweep cut is exact.
  const Hypergraph h = test::path_hypergraph(40);
  const BaselineResult r = spectral_bipartition(h);
  EXPECT_EQ(r.metrics.cut_edges, 1U);
  EXPECT_LE(r.metrics.cardinality_imbalance, 20U);
}

TEST(Spectral, MeshNearGeometricFloor) {
  GridParams params;
  params.rows = 10;
  params.cols = 10;
  const Hypergraph h = grid_circuit(params);
  const BaselineResult r = spectral_bipartition(h);
  EXPECT_GE(r.metrics.cut_edges, 10U);
  EXPECT_LE(r.metrics.cut_edges, 16U);
}

TEST(Spectral, RecoversPlantedBisection) {
  PlantedParams params;
  params.num_vertices = 200;
  params.num_edges = 300;
  params.planted_cut = 4;
  params.min_edge_size = 2;
  params.max_edge_size = 2;
  params.max_degree = 0;
  int found = 0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const PlantedInstance inst = planted_instance(params, seed);
    SpectralOptions options;
    options.seed = seed;
    const BaselineResult r = spectral_bipartition(inst.hypergraph, options);
    if (r.metrics.cut_edges <= inst.planted_cut + 2) ++found;
  }
  EXPECT_GE(found, 2);  // spectral methods are strong on planted models
}

TEST(Spectral, NearExactOnSmallInstances) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Hypergraph h =
        generate_circuit(table2_params(16, 24, Technology::kPcb), seed);
    SpectralOptions options;
    options.seed = seed;
    options.min_side_fraction = 0.05;
    const BaselineResult spectral = spectral_bipartition(h, options);
    const BaselineResult exact = exact_bipartition(h);
    EXPECT_GE(spectral.metrics.cut_edges, exact.metrics.cut_edges);
    EXPECT_LE(spectral.metrics.cut_edges, exact.metrics.cut_edges + 4)
        << "seed " << seed;
  }
}

TEST(Spectral, BalanceBandRespectedWhenFeasible) {
  const Hypergraph h =
      generate_circuit(table2_params(120, 210, Technology::kGateArray), 7);
  SpectralOptions options;
  options.min_side_fraction = 0.3;
  const BaselineResult r = spectral_bipartition(h, options);
  const double total = static_cast<double>(h.total_vertex_weight());
  EXPECT_GE(static_cast<double>(std::min(r.metrics.left_weight,
                                         r.metrics.right_weight)),
            0.3 * total - 1.0);
}

TEST(Spectral, DeterministicPerSeed) {
  const Hypergraph h =
      generate_circuit(table2_params(80, 140, Technology::kHybrid), 2);
  SpectralOptions options;
  options.seed = 5;
  EXPECT_EQ(spectral_bipartition(h, options).sides,
            spectral_bipartition(h, options).sides);
}

TEST(Spectral, Preconditions) {
  HypergraphBuilder b;
  b.add_vertex();
  EXPECT_THROW((void)spectral_bipartition(std::move(b).build()),
               PreconditionError);
  const Hypergraph h = test::path_hypergraph(4);
  SpectralOptions options;
  options.min_side_fraction = 0.9;
  EXPECT_THROW((void)spectral_bipartition(h, options), PreconditionError);
}

TEST(Spectral, EdgelessNetlistStillSplits) {
  HypergraphBuilder b;
  b.add_vertices(6);
  const Hypergraph h = std::move(b).build();
  const BaselineResult r = spectral_bipartition(h);
  EXPECT_TRUE(r.metrics.proper);
  EXPECT_EQ(r.metrics.cut_edges, 0U);
}

}  // namespace
}  // namespace fhp

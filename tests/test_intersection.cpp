#include "core/intersection.hpp"

#include <gtest/gtest.h>

#include "gen/random_hypergraph.hpp"
#include "test_helpers.hpp"

namespace fhp {
namespace {

TEST(Intersection, PathHypergraphGivesPathGraph) {
  // Chain nets {i, i+1}: consecutive nets share a module.
  const Hypergraph h = test::path_hypergraph(6);
  const Graph g = intersection_graph(h);
  EXPECT_EQ(g.num_vertices(), 5U);
  EXPECT_EQ(g.num_edges(), 4U);
  for (EdgeId e = 0; e + 1 < 5; ++e) {
    EXPECT_TRUE(g.has_edge(e, e + 1));
  }
  EXPECT_FALSE(g.has_edge(0, 2));
  g.validate();
}

TEST(Intersection, StarHypergraphGivesClique) {
  // All nets share the hub: G is complete.
  const Hypergraph h = test::star_hypergraph(5);
  const Graph g = intersection_graph(h);
  EXPECT_EQ(g.num_vertices(), 5U);
  EXPECT_EQ(g.num_edges(), 10U);
}

TEST(Intersection, EmptyAndEdgeless) {
  EXPECT_EQ(intersection_graph(Hypergraph{}).num_vertices(), 0U);
  HypergraphBuilder b;
  b.add_vertices(3);
  const Graph g = intersection_graph(std::move(b).build());
  EXPECT_EQ(g.num_vertices(), 0U);
}

TEST(Intersection, DisjointNetsGiveNoEdges) {
  const Hypergraph h = Hypergraph::from_edges(6, {{0, 1}, {2, 3}, {4, 5}});
  const Graph g = intersection_graph(h);
  EXPECT_EQ(g.num_vertices(), 3U);
  EXPECT_EQ(g.num_edges(), 0U);
}

TEST(Intersection, AdjacencyIffSharedModule) {
  // Property check on random hypergraphs: G has edge (e1, e2) iff the nets
  // share a pin.
  RandomHypergraphParams params;
  params.num_vertices = 40;
  params.num_edges = 60;
  params.max_edge_size = 5;
  params.max_degree = 6;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Hypergraph h = random_hypergraph(params, seed);
    const Graph g = intersection_graph(h);
    ASSERT_EQ(g.num_vertices(), h.num_edges());
    for (EdgeId e1 = 0; e1 < h.num_edges(); ++e1) {
      for (EdgeId e2 = e1 + 1; e2 < h.num_edges(); ++e2) {
        const auto p1 = h.pins(e1);
        const auto p2 = h.pins(e2);
        bool shared = false;
        for (VertexId v : p1) {
          for (VertexId w : p2) {
            if (v == w) shared = true;
          }
        }
        EXPECT_EQ(g.has_edge(e1, e2), shared)
            << "nets " << e1 << ", " << e2 << " seed " << seed;
      }
    }
  }
}

TEST(Intersection, MultipleSharedModulesStillOneEdge) {
  const Hypergraph h = Hypergraph::from_edges(4, {{0, 1, 2}, {0, 1, 3}});
  const Graph g = intersection_graph(h);
  EXPECT_EQ(g.num_edges(), 1U);
}

TEST(Intersection, DegreeBoundedByNeighbors) {
  // A net of size s whose pins have degree <= d intersects at most
  // s * (d - 1) other nets.
  RandomHypergraphParams params;
  params.num_vertices = 60;
  params.num_edges = 90;
  params.max_edge_size = 4;
  params.max_degree = 5;
  const Hypergraph h = random_hypergraph(params, 9);
  const Graph g = intersection_graph(h);
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    EXPECT_LE(g.degree(e), h.edge_size(e) * (params.max_degree - 1));
  }
}

}  // namespace
}  // namespace fhp

#include "core/intersection.hpp"

#include <gtest/gtest.h>

#include "gen/circuit.hpp"
#include "gen/grid.hpp"
#include "gen/planted.hpp"
#include "gen/random_hypergraph.hpp"
#include "test_helpers.hpp"

namespace fhp {
namespace {

/// Exact CSR equality: same vertex count and, row by row, the same sorted
/// neighbor list. Stricter than isomorphism on purpose — the counting build
/// promises the reference builder's bytes.
void expect_same_csr(const Graph& got, const Graph& expect,
                     const char* context) {
  ASSERT_EQ(got.num_vertices(), expect.num_vertices()) << context;
  ASSERT_EQ(got.num_edges(), expect.num_edges()) << context;
  for (VertexId v = 0; v < expect.num_vertices(); ++v) {
    const auto got_row = got.neighbors(v);
    const auto expect_row = expect.neighbors(v);
    ASSERT_EQ(got_row.size(), expect_row.size()) << context << " row " << v;
    for (std::size_t i = 0; i < expect_row.size(); ++i) {
      ASSERT_EQ(got_row[i], expect_row[i]) << context << " row " << v;
    }
  }
}

TEST(Intersection, PathHypergraphGivesPathGraph) {
  // Chain nets {i, i+1}: consecutive nets share a module.
  const Hypergraph h = test::path_hypergraph(6);
  const Graph g = intersection_graph(h);
  EXPECT_EQ(g.num_vertices(), 5U);
  EXPECT_EQ(g.num_edges(), 4U);
  for (EdgeId e = 0; e + 1 < 5; ++e) {
    EXPECT_TRUE(g.has_edge(e, e + 1));
  }
  EXPECT_FALSE(g.has_edge(0, 2));
  g.validate();
}

TEST(Intersection, StarHypergraphGivesClique) {
  // All nets share the hub: G is complete.
  const Hypergraph h = test::star_hypergraph(5);
  const Graph g = intersection_graph(h);
  EXPECT_EQ(g.num_vertices(), 5U);
  EXPECT_EQ(g.num_edges(), 10U);
}

TEST(Intersection, EmptyAndEdgeless) {
  EXPECT_EQ(intersection_graph(Hypergraph{}).num_vertices(), 0U);
  HypergraphBuilder b;
  b.add_vertices(3);
  const Graph g = intersection_graph(std::move(b).build());
  EXPECT_EQ(g.num_vertices(), 0U);
}

TEST(Intersection, DisjointNetsGiveNoEdges) {
  const Hypergraph h = Hypergraph::from_edges(6, {{0, 1}, {2, 3}, {4, 5}});
  const Graph g = intersection_graph(h);
  EXPECT_EQ(g.num_vertices(), 3U);
  EXPECT_EQ(g.num_edges(), 0U);
}

TEST(Intersection, AdjacencyIffSharedModule) {
  // Property check on random hypergraphs: G has edge (e1, e2) iff the nets
  // share a pin.
  RandomHypergraphParams params;
  params.num_vertices = 40;
  params.num_edges = 60;
  params.max_edge_size = 5;
  params.max_degree = 6;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Hypergraph h = random_hypergraph(params, seed);
    const Graph g = intersection_graph(h);
    ASSERT_EQ(g.num_vertices(), h.num_edges());
    for (EdgeId e1 = 0; e1 < h.num_edges(); ++e1) {
      for (EdgeId e2 = e1 + 1; e2 < h.num_edges(); ++e2) {
        const auto p1 = h.pins(e1);
        const auto p2 = h.pins(e2);
        bool shared = false;
        for (VertexId v : p1) {
          for (VertexId w : p2) {
            if (v == w) shared = true;
          }
        }
        EXPECT_EQ(g.has_edge(e1, e2), shared)
            << "nets " << e1 << ", " << e2 << " seed " << seed;
      }
    }
  }
}

TEST(Intersection, MultipleSharedModulesStillOneEdge) {
  const Hypergraph h = Hypergraph::from_edges(4, {{0, 1, 2}, {0, 1, 3}});
  const Graph g = intersection_graph(h);
  EXPECT_EQ(g.num_edges(), 1U);
}

TEST(Intersection, DegreeBoundedByNeighbors) {
  // A net of size s whose pins have degree <= d intersects at most
  // s * (d - 1) other nets.
  RandomHypergraphParams params;
  params.num_vertices = 60;
  params.num_edges = 90;
  params.max_edge_size = 4;
  params.max_degree = 5;
  const Hypergraph h = random_hypergraph(params, 9);
  const Graph g = intersection_graph(h);
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    EXPECT_LE(g.degree(e), h.edge_size(e) * (params.max_degree - 1));
  }
}

TEST(Intersection, CountingBuildMatchesReferenceAcrossGenerators) {
  // Differential gate for the two-pass counting construction: on planted,
  // grid and circuit instances, with and without the large-net threshold,
  // serially and on a pool, the CSR must equal the reference builder's
  // exactly.
  std::vector<std::pair<const char*, Hypergraph>> instances;
  {
    PlantedParams p;
    p.num_vertices = 80;
    p.num_edges = 140;
    p.planted_cut = 4;
    instances.emplace_back("planted", planted_instance(p, 3).hypergraph);
  }
  instances.emplace_back("grid", grid_circuit({8, 7, 0.4, false}, 5));
  instances.emplace_back(
      "circuit",
      generate_circuit(table2_params(120, 210, Technology::kStandardCell), 9));

  ThreadPool pool(3);
  for (const auto& [name, h] : instances) {
    for (const std::uint32_t threshold : {0U, 4U, 10U}) {
      IntersectionOptions options;
      options.large_edge_threshold = threshold;
      const Graph expect = intersection_graph_reference(h, options);
      const Graph serial = intersection_graph(h, options);
      expect_same_csr(serial, expect, name);
      options.pool = &pool;
      const Graph parallel = intersection_graph(h, options);
      expect_same_csr(parallel, expect, name);
      const Graph parallel_ref = intersection_graph_reference(h, options);
      expect_same_csr(parallel_ref, expect, name);
    }
  }
}

TEST(Intersection, CountingBuildMatchesReferenceOnRandomHypergraphs) {
  RandomHypergraphParams params;
  params.num_vertices = 50;
  params.num_edges = 80;
  params.max_edge_size = 6;
  params.max_degree = 7;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Hypergraph h = random_hypergraph(params, seed);
    IntersectionOptions options;
    options.large_edge_threshold = (seed % 2 == 0) ? 0U : 4U;
    const Graph expect = intersection_graph_reference(h, options);
    const Graph got = intersection_graph(h, options);
    expect_same_csr(got, expect, "random");
  }
}

TEST(Intersection, CountingBuildHandlesEmptyAndFullyFiltered) {
  EXPECT_EQ(intersection_graph_reference(Hypergraph{}).num_vertices(), 0U);
  // Threshold below every net size: all G-vertices isolated, zero edges.
  const Hypergraph h =
      Hypergraph::from_edges(6, {{0, 1, 2}, {2, 3, 4}, {3, 4, 5}});
  IntersectionOptions options;
  options.large_edge_threshold = 2;
  const Graph g = intersection_graph(h, options);
  EXPECT_EQ(g.num_vertices(), 3U);
  EXPECT_EQ(g.num_edges(), 0U);
  expect_same_csr(g, intersection_graph_reference(h, options), "filtered");
}

}  // namespace
}  // namespace fhp

/// Histogram subsystem: bucket-boundary invariants of the HDR-style
/// mapping, percentile queries against a sorted-vector oracle,
/// multi-thread record determinism, snapshot/reset semantics, the RAII
/// latency probe, macro behavior in both tracing modes, and the surface
/// the exporters add on top (histograms + RSS in TraceReport).
#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "obs/report.hpp"
#include "util/memory.hpp"

namespace fhp {
namespace {

using obs::HistogramSnapshot;
using obs::Histograms;
using obs::hist_bucket_index;
using obs::hist_bucket_lower;
using obs::hist_bucket_upper;
using obs::kHistBuckets;
using obs::kHistSubBuckets;

/// Fresh histogram state per test.
class HistogramTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::reset(); }
  void TearDown() override { obs::reset(); }
};

TEST(HistogramBuckets, LowerAndUpperRoundTripThroughIndex) {
  for (std::size_t i = 0; i < kHistBuckets; ++i) {
    EXPECT_EQ(hist_bucket_index(hist_bucket_lower(i)), i) << "bucket " << i;
    EXPECT_EQ(hist_bucket_index(hist_bucket_upper(i)), i) << "bucket " << i;
    EXPECT_LE(hist_bucket_lower(i), hist_bucket_upper(i));
  }
}

TEST(HistogramBuckets, BucketsTileTheRangeWithoutGapsOrOverlap) {
  EXPECT_EQ(hist_bucket_lower(0), 0U);
  for (std::size_t i = 0; i + 1 < kHistBuckets; ++i) {
    EXPECT_EQ(hist_bucket_upper(i) + 1, hist_bucket_lower(i + 1))
        << "gap/overlap after bucket " << i;
  }
  EXPECT_EQ(hist_bucket_upper(kHistBuckets - 1), ~std::uint64_t{0});
}

TEST(HistogramBuckets, IndexIsMonotoneAcrossBoundaries) {
  // Probe around every power of two plus a dense low range.
  std::vector<std::uint64_t> probes;
  for (std::uint64_t v = 0; v < 512; ++v) probes.push_back(v);
  for (int p = 9; p < 64; ++p) {
    const std::uint64_t base = std::uint64_t{1} << p;
    probes.push_back(base - 1);
    probes.push_back(base);
    probes.push_back(base + 1);
  }
  std::sort(probes.begin(), probes.end());
  for (std::size_t i = 1; i < probes.size(); ++i) {
    EXPECT_LE(hist_bucket_index(probes[i - 1]), hist_bucket_index(probes[i]))
        << "between " << probes[i - 1] << " and " << probes[i];
  }
}

TEST(HistogramBuckets, RelativeErrorBoundedBySubBucketWidth) {
  // Exact below 2 * kHistSubBuckets; <= 1/16 of magnitude above.
  for (std::uint64_t v : {0ULL, 1ULL, 15ULL, 16ULL, 31ULL}) {
    const std::size_t i = hist_bucket_index(v);
    EXPECT_EQ(hist_bucket_lower(i), v);
    EXPECT_EQ(hist_bucket_upper(i), v);
  }
  for (std::uint64_t v : {32ULL, 33ULL, 100ULL, 1000ULL, 123456789ULL,
                          (1ULL << 40) + 12345ULL}) {
    const std::size_t i = hist_bucket_index(v);
    const std::uint64_t width = hist_bucket_upper(i) - hist_bucket_lower(i);
    EXPECT_LE(width + 1, std::max<std::uint64_t>(1, v / kHistSubBuckets) + 1)
        << "value " << v;
    EXPECT_LE(hist_bucket_lower(i), v);
    EXPECT_GE(hist_bucket_upper(i), v);
  }
}

TEST_F(HistogramTest, RecordAccumulatesExactSumMinMaxCount) {
  Histograms& h = Histograms::instance();
  h.record("t/basic", 7);
  h.record("t/basic", 3);
  h.record("t/basic", 100);
  const HistogramSnapshot snap = h.snapshot_of("t/basic");
  EXPECT_EQ(snap.count, 3U);
  EXPECT_EQ(snap.sum, 110U);
  EXPECT_EQ(snap.min, 3U);
  EXPECT_EQ(snap.max, 100U);
  EXPECT_DOUBLE_EQ(snap.mean(), 110.0 / 3.0);
}

TEST_F(HistogramTest, NegativeValuesClampToZero) {
  Histograms& h = Histograms::instance();
  h.record("t/neg", -5);
  const HistogramSnapshot snap = h.snapshot_of("t/neg");
  EXPECT_EQ(snap.count, 1U);
  EXPECT_EQ(snap.min, 0U);
  EXPECT_EQ(snap.max, 0U);
}

TEST_F(HistogramTest, UnknownNameSnapshotsEmpty) {
  const HistogramSnapshot snap =
      Histograms::instance().snapshot_of("never/recorded");
  EXPECT_EQ(snap.count, 0U);
  EXPECT_EQ(snap.percentile(0.5), 0U);
  EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
}

TEST_F(HistogramTest, ResetDropsEveryHistogram) {
  Histograms::instance().record("t/reset", 1);
  EXPECT_EQ(Histograms::instance().snapshot().size(), 1U);
  Histograms::instance().reset();
  EXPECT_TRUE(Histograms::instance().snapshot().empty());
}

TEST_F(HistogramTest, PercentileMatchesSortedVectorOracle) {
  // Log-uniform values exercise many octaves; the histogram percentile
  // must sit in [oracle, oracle * (1 + 1/16)] (exact below 32).
  std::mt19937_64 rng(12345);
  std::uniform_real_distribution<double> log_mag(0.0, 20.0);
  std::vector<std::uint64_t> values;
  Histograms& h = Histograms::instance();
  for (int i = 0; i < 5000; ++i) {
    const auto v =
        static_cast<std::uint64_t>(std::exp2(log_mag(rng)));
    values.push_back(v);
    h.record("t/oracle", static_cast<long long>(v));
  }
  std::sort(values.begin(), values.end());
  const HistogramSnapshot snap = h.snapshot_of("t/oracle");
  ASSERT_EQ(snap.count, values.size());
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    // Same rank rule percentile() documents: ceil(q * n), clamped to
    // [1, n], 1-indexed into the sorted sample.
    const auto raw = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    const std::size_t rank =
        std::min(values.size(), std::max<std::size_t>(1, raw));
    const std::uint64_t oracle = values[rank - 1];
    const std::uint64_t estimate = snap.percentile(q);
    EXPECT_GE(estimate, oracle) << "q = " << q;
    EXPECT_LE(estimate, oracle + oracle / kHistSubBuckets + 1)
        << "q = " << q;
  }
  EXPECT_EQ(snap.percentile(0.0), snap.min);
  EXPECT_EQ(snap.percentile(1.0), snap.max);
}

TEST_F(HistogramTest, ConcurrentRecordsMergeDeterministically) {
  // Four threads record disjoint, known value sets; the merged snapshot
  // must equal the serial reference exactly — bucket increments commute.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  auto value_of = [](int t, int i) {
    return static_cast<long long>((t * kPerThread + i) % 4096);
  };
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &value_of] {
      for (int i = 0; i < kPerThread; ++i) {
        Histograms::instance().record("t/mt", value_of(t, i));
      }
    });
  }
  for (std::thread& th : threads) th.join();

  std::vector<std::uint64_t> expected_counts(kHistBuckets, 0);
  std::uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      const auto v = static_cast<std::uint64_t>(value_of(t, i));
      ++expected_counts[hist_bucket_index(v)];
      expected_sum += v;
    }
  }
  const HistogramSnapshot snap = Histograms::instance().snapshot_of("t/mt");
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(snap.sum, expected_sum);
  ASSERT_EQ(snap.counts.size(), kHistBuckets);
  for (std::size_t b = 0; b < kHistBuckets; ++b) {
    EXPECT_EQ(snap.counts[b], expected_counts[b]) << "bucket " << b;
  }
}

TEST_F(HistogramTest, ScopedLatencyRecordsMicroseconds) {
  {
    obs::ScopedLatencyUs probe("t/scope_us");
  }
  const HistogramSnapshot snap =
      Histograms::instance().snapshot_of("t/scope_us");
  EXPECT_EQ(snap.count, 1U);  // recorded something, possibly 0 us
}

TEST_F(HistogramTest, SnapshotSurfacesInTraceReportAndExporters) {
  Histograms::instance().record("t/export", 10);
  Histograms::instance().record("t/export", 1000);
  const obs::TraceReport report = obs::snapshot();
  const HistogramSnapshot* snap = report.histogram("t/export");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->count, 2U);
  EXPECT_EQ(report.histogram("t/absent"), nullptr);
  EXPECT_FALSE(report.empty());

  const std::string json = obs::to_json(report);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"t/export\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  const std::string tree = obs::to_tree_string(report);
  EXPECT_NE(tree.find("t/export"), std::string::npos);
  const std::string chrome = obs::to_chrome_trace(report);
  EXPECT_NE(chrome.find("t/export"), std::string::npos);
}

TEST_F(HistogramTest, ReportCarriesProcessRss) {
  const obs::TraceReport report = obs::snapshot();
  // /proc/self/status is always there on Linux; 0 only on exotic hosts.
  EXPECT_GT(report.peak_rss_bytes, 0U);
  EXPECT_GT(report.current_rss_bytes, 0U);
  EXPECT_GE(report.peak_rss_bytes, report.current_rss_bytes / 2);
  EXPECT_DOUBLE_EQ(report.gauge("process/peak_rss_bytes"),
                   static_cast<double>(report.peak_rss_bytes));
  EXPECT_DOUBLE_EQ(report.gauge("process/current_rss_bytes"),
                   static_cast<double>(report.current_rss_bytes));
  // RSS is ambient, not recorded: a fresh report still counts as empty.
  EXPECT_TRUE(report.empty());
}

TEST_F(HistogramTest, RssHelpersReportPlausibleValues) {
  const std::uint64_t current = current_rss_bytes();
  const std::uint64_t peak = peak_rss_bytes();
  EXPECT_GT(current, 0U);
  EXPECT_GT(peak, 0U);
  // Peak can lag current by one page-accounting tick, never by much.
  EXPECT_GE(peak + (1U << 20), current);
  // A test binary resident set sits between 1 MB and 100 GB.
  EXPECT_GT(current, 1U << 20);
  EXPECT_LT(peak, std::uint64_t{100} << 30);
}

#if FHP_TRACING_ENABLED

TEST_F(HistogramTest, MacrosRecordWhenTracingCompiled) {
  FHP_HIST_RECORD("t/macro", 42);
  {
    FHP_HIST_SCOPE_US("t/macro_scope");
  }
  EXPECT_EQ(Histograms::instance().snapshot_of("t/macro").count, 1U);
  EXPECT_EQ(Histograms::instance().snapshot_of("t/macro_scope").count, 1U);
}

#else  // !FHP_TRACING_ENABLED

TEST_F(HistogramTest, MacrosCompileToNothingWhenTracingOff) {
  int evaluations = 0;
  auto side_effect = [&evaluations] {
    ++evaluations;
    return 42LL;
  };
  FHP_HIST_RECORD("t/macro_off", side_effect());
  {
    FHP_HIST_SCOPE_US("t/macro_off_scope");
  }
  EXPECT_EQ(evaluations, 0);  // arguments must never be evaluated
  EXPECT_TRUE(Histograms::instance().snapshot().empty());
}

#endif  // FHP_TRACING_ENABLED

}  // namespace
}  // namespace fhp

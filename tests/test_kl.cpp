#include "baselines/kl.hpp"

#include <gtest/gtest.h>

#include "baselines/random_cut.hpp"
#include "gen/circuit.hpp"
#include "test_helpers.hpp"

namespace fhp {
namespace {

TEST(Kl, SolvesTwoClusters) {
  const Hypergraph h = test::two_cluster_hypergraph(8, 2);
  const BaselineResult r = kernighan_lin(h);
  EXPECT_EQ(r.metrics.cut_edges, 2U);
  EXPECT_TRUE(r.metrics.proper);
}

TEST(Kl, PreservesCardinalityBalance) {
  // Pair swaps keep counts fixed: the result has the same imbalance as the
  // starting bisection (0 for even module counts).
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Hypergraph h =
        generate_circuit(table2_params(100, 180, Technology::kPcb), seed);
    KlOptions options;
    options.seed = seed;
    const BaselineResult r = kernighan_lin(h, options);
    EXPECT_LE(r.metrics.cardinality_imbalance, 1U) << "seed " << seed;
  }
}

TEST(Kl, NeverWorseThanItsStart) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Hypergraph h = generate_circuit(
        table2_params(90, 160, Technology::kStandardCell), seed);
    const BaselineResult start = random_bisection(h, seed + 100);
    KlOptions options;
    options.initial = start.sides;
    const BaselineResult r = kernighan_lin(h, options);
    EXPECT_LE(r.metrics.cut_weight, start.metrics.cut_weight)
        << "seed " << seed;
  }
}

TEST(Kl, ImprovesChainSubstantially) {
  const Hypergraph h = test::path_hypergraph(40);
  KlOptions options;
  options.seed = 9;
  const BaselineResult r = kernighan_lin(h, options);
  EXPECT_LT(r.metrics.cut_edges, 10U);
}

TEST(Kl, DeterministicPerSeed) {
  const Hypergraph h =
      generate_circuit(table2_params(70, 130, Technology::kHybrid), 3);
  KlOptions options;
  options.seed = 5;
  EXPECT_EQ(kernighan_lin(h, options).sides,
            kernighan_lin(h, options).sides);
}

TEST(Kl, RejectsBadInitial) {
  const Hypergraph h = test::path_hypergraph(4);
  KlOptions options;
  options.initial = std::vector<std::uint8_t>{0, 1, 0};
  EXPECT_THROW((void)kernighan_lin(h, options), PreconditionError);
}

TEST(Kl, TinyInstance) {
  const Hypergraph h = test::path_hypergraph(2);
  const BaselineResult r = kernighan_lin(h);
  EXPECT_TRUE(r.metrics.proper);
  EXPECT_EQ(r.metrics.cut_edges, 1U);  // the single net must cross
}

}  // namespace
}  // namespace fhp

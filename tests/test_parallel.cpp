/// Parallel execution substrate: lane resolution (FHP_THREADS), pool
/// lifecycle, parallel_for chunk coverage and grain edge cases, exception
/// propagation, parallel_map ordering — and the substrate's central
/// guarantee, bit-identical Algorithm I results at any lane count.
#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/algorithm1.hpp"
#include "gen/planted.hpp"

namespace fhp {
namespace {

/// Scoped FHP_THREADS override; restores the previous value on exit so
/// these tests compose with an externally set environment.
class EnvGuard {
 public:
  explicit EnvGuard(const char* value) {
    const char* previous = std::getenv("FHP_THREADS");
    had_previous_ = previous != nullptr;
    if (had_previous_) previous_ = previous;
    if (value != nullptr) {
      ::setenv("FHP_THREADS", value, 1);
    } else {
      ::unsetenv("FHP_THREADS");
    }
  }
  ~EnvGuard() {
    if (had_previous_) {
      ::setenv("FHP_THREADS", previous_.c_str(), 1);
    } else {
      ::unsetenv("FHP_THREADS");
    }
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  bool had_previous_ = false;
  std::string previous_;
};

TEST(Parallel, ResolveThreadsExplicitRequestWins) {
  EnvGuard env("7");  // an explicit request beats the environment
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_EQ(resolve_threads(3), 3);
  EXPECT_EQ(resolve_threads(512), 512);
  EXPECT_EQ(resolve_threads(100000), 512);  // clamped
}

TEST(Parallel, ResolveThreadsReadsEnvironment) {
  {
    EnvGuard env(nullptr);
    EXPECT_EQ(resolve_threads(0), 1);  // unset -> the default stays serial
  }
  {
    EnvGuard env("4");
    EXPECT_EQ(resolve_threads(0), 4);
  }
  {
    EnvGuard env("");
    EXPECT_EQ(resolve_threads(0), 1);
  }
  {
    EnvGuard env("banana");
    EXPECT_EQ(resolve_threads(0), 1);  // invalid -> serial, not a crash
  }
  {
    EnvGuard env("-3");
    EXPECT_EQ(resolve_threads(0), 1);
  }
  {
    EnvGuard env("0");  // "0" -> all hardware threads
    EXPECT_GE(resolve_threads(0), 1);
  }
}

TEST(Parallel, PoolLifecycleIdle) {
  // Construction spawns workers, destruction joins them — with no region
  // ever submitted.
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
}

TEST(Parallel, SerialPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen;
  pool.parallel_for(3, 1, [&](std::size_t, std::size_t) {
    seen.push_back(std::this_thread::get_id());
  });
  ASSERT_EQ(seen.size(), 3U);
  for (const std::thread::id id : seen) EXPECT_EQ(id, caller);
}

TEST(Parallel, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(kN, 64, [&](std::size_t begin, std::size_t end) {
    ASSERT_LE(begin, end);
    ASSERT_LE(end, kN);
    for (std::size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(Parallel, ChunkBoundariesDependOnlyOnGrain) {
  // The same (n, grain) must produce the same chunk set at any lane count.
  auto chunks_of = [](ThreadPool& pool, std::size_t n, std::size_t grain) {
    std::mutex mutex;
    std::set<std::pair<std::size_t, std::size_t>> chunks;
    pool.parallel_for(n, grain, [&](std::size_t begin, std::size_t end) {
      std::lock_guard<std::mutex> lock(mutex);
      chunks.emplace(begin, end);
    });
    return chunks;
  };
  ThreadPool serial(1);
  ThreadPool wide(8);
  EXPECT_EQ(chunks_of(serial, 1000, 64), chunks_of(wide, 1000, 64));
  EXPECT_EQ(chunks_of(serial, 7, 3), chunks_of(wide, 7, 3));
}

TEST(Parallel, GrainEdgeCases) {
  ThreadPool pool(3);
  std::atomic<std::size_t> covered{0};
  std::atomic<int> calls{0};

  // grain 0 is treated as 1.
  pool.parallel_for(5, 0, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(end, begin + 1);
    covered.fetch_add(end - begin);
  });
  EXPECT_EQ(covered.load(), 5U);

  // grain > n: a single chunk spanning everything.
  calls.store(0);
  pool.parallel_for(4, 100, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, 0U);
    EXPECT_EQ(end, 4U);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);

  // n == 0: the body never runs.
  calls.store(0);
  pool.parallel_for(0, 8, [&](std::size_t, std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);

  // n == 1.
  calls.store(0);
  pool.parallel_for(1, 8, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, 0U);
    EXPECT_EQ(end, 1U);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(Parallel, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100, 1,
                        [&](std::size_t begin, std::size_t) {
                          if (begin == 17) {
                            throw std::runtime_error("chunk 17 failed");
                          }
                        }),
      std::runtime_error);

  // The pool drains cleanly and stays usable for further regions.
  std::atomic<std::size_t> covered{0};
  pool.parallel_for(50, 4, [&](std::size_t begin, std::size_t end) {
    covered.fetch_add(end - begin);
  });
  EXPECT_EQ(covered.load(), 50U);
}

TEST(Parallel, ExceptionOnSerialPoolPropagates) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(
                   3, 1,
                   [](std::size_t, std::size_t) {
                     throw std::logic_error("serial failure");
                   }),
               std::logic_error);
}

TEST(Parallel, ParallelMapPreservesIndexOrder) {
  ThreadPool pool(4);
  const std::vector<int> out =
      pool.parallel_map<int>(257, [](std::size_t i) {
        return static_cast<int>(i * i);
      });
  ASSERT_EQ(out.size(), 257U);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(Parallel, BackToBackRegionsReuseWorkers) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> covered{0};
    pool.parallel_for(100, 7, [&](std::size_t begin, std::size_t end) {
      covered.fetch_add(end - begin);
    });
    ASSERT_EQ(covered.load(), 100U) << "round " << round;
  }
}

/// Fixed-seed planted instance for the determinism checks.
Hypergraph determinism_instance(std::uint64_t seed) {
  PlantedParams params;
  params.num_vertices = 180;
  params.num_edges = 320;
  params.planted_cut = 4;
  return planted_instance(params, seed).hypergraph;
}

TEST(Parallel, Algorithm1BitIdenticalAcrossThreadCounts) {
  // The substrate's contract: FHP_THREADS / Algorithm1Options::threads
  // changes wall time only, never the answer. Compare full side vectors —
  // not just cut sizes — at 1, 2 and 8 lanes over several instances.
  for (const std::uint64_t instance_seed : {3ULL, 19ULL, 101ULL}) {
    const Hypergraph h = determinism_instance(instance_seed);
    Algorithm1Options options;
    options.seed = 5;
    options.num_starts = 12;

    options.threads = 1;
    const Algorithm1Result serial = algorithm1(h, options);
    for (const int threads : {2, 8}) {
      options.threads = threads;
      const Algorithm1Result parallel = algorithm1(h, options);
      EXPECT_EQ(parallel.sides, serial.sides)
          << "instance " << instance_seed << " at " << threads << " lanes";
      EXPECT_EQ(parallel.metrics.cut_edges, serial.metrics.cut_edges);
      EXPECT_EQ(parallel.metrics.quotient_cut, serial.metrics.quotient_cut);
      EXPECT_EQ(parallel.starts_run, serial.starts_run);
    }
  }
}

TEST(Parallel, SerialAlgorithm1InsidePoolWorkerMatchesDirect) {
  // The serving scheduler batches small jobs by running one *serial*
  // (threads = 1) engine per pool lane, nesting algorithm1 inside an
  // outer parallel_for region. A serial run must not touch the outer
  // pool's lane-scratch (regression: lane-indexed scratch sized for the
  // inner run being read from an outer worker lane); results must match
  // a plain serial call exactly. ASAN/TSAN runs of this test guard the
  // memory side.
  constexpr std::size_t kJobs = 4;
  std::vector<Hypergraph> instances;
  std::vector<Algorithm1Result> direct(kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    instances.push_back(determinism_instance(50 + i));
    Algorithm1Options options;
    options.seed = 9;
    options.num_starts = 8;
    options.threads = 1;
    direct[i] = algorithm1(instances[i], options);
  }

  ThreadPool pool(3);
  std::vector<Algorithm1Result> nested(kJobs);
  pool.parallel_for(kJobs, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      Algorithm1Options options;
      options.seed = 9;
      options.num_starts = 8;
      options.threads = 1;
      nested[i] = algorithm1(instances[i], options);
    }
  });
  for (std::size_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(nested[i].sides, direct[i].sides) << "job " << i;
    EXPECT_EQ(nested[i].metrics.cut_edges, direct[i].metrics.cut_edges);
  }
}

TEST(Parallel, Algorithm1ThreadsViaEnvironmentMatchesSerial) {
  const Hypergraph h = determinism_instance(7);
  Algorithm1Options options;
  options.seed = 2;
  options.num_starts = 8;
  options.threads = 1;
  const Algorithm1Result serial = algorithm1(h, options);

  EnvGuard env("4");
  options.threads = 0;  // defer to FHP_THREADS
  const Algorithm1Result via_env = algorithm1(h, options);
  EXPECT_EQ(via_env.sides, serial.sides);
}

TEST(Parallel, CurrentLaneIsZeroOutsideRegions) {
  EXPECT_EQ(ThreadPool::current_lane(), 0);
  ThreadPool pool(3);
  // Pool construction alone does not touch the caller's lane.
  EXPECT_EQ(ThreadPool::current_lane(), 0);
}

TEST(Parallel, CurrentLaneDistinctAndInRangeDuringRegion) {
  constexpr int kLanes = 4;
  ThreadPool pool(kLanes);
  std::mutex mutex;
  std::set<int> seen_by_chunk[64];
  std::atomic<int> bad{0};
  pool.parallel_for(64, 1, [&](std::size_t begin, std::size_t) {
    const int lane = ThreadPool::current_lane();
    if (lane < 0 || lane >= kLanes) bad.fetch_add(1);
    std::lock_guard<std::mutex> lock(mutex);
    seen_by_chunk[begin].insert(lane);
  });
  EXPECT_EQ(bad.load(), 0);
  // Every chunk observed exactly one lane, and the caller is back to 0.
  for (const auto& lanes : seen_by_chunk) EXPECT_EQ(lanes.size(), 1U);
  EXPECT_EQ(ThreadPool::current_lane(), 0);
}

TEST(Parallel, CurrentLaneIndexesPerLaneSlotsWithoutCollision) {
  // The workspace-ownership contract: within one region, concurrent chunks
  // always see distinct lanes, so per-lane slots are data-race free. Each
  // lane's slot counts its chunks; the total must cover the range, and a
  // torn counter (two threads on one slot) would break the sum.
  constexpr int kLanes = 4;
  ThreadPool pool(kLanes);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::size_t> per_lane(kLanes, 0);
    pool.parallel_for(256, 1, [&](std::size_t begin, std::size_t end) {
      per_lane[static_cast<std::size_t>(ThreadPool::current_lane())] +=
          end - begin;
    });
    std::size_t total = 0;
    for (const std::size_t c : per_lane) total += c;
    ASSERT_EQ(total, 256U) << "round " << round;
  }
}

TEST(Parallel, CurrentLaneSerialPoolStaysZero) {
  ThreadPool pool(1);
  std::vector<int> lanes;
  pool.parallel_for(5, 1, [&](std::size_t, std::size_t) {
    lanes.push_back(ThreadPool::current_lane());
  });
  for (const int lane : lanes) EXPECT_EQ(lane, 0);
}

TEST(Parallel, Algorithm1MemoizedMatchesUnmemoizedAtAllThreadCounts) {
  PlantedParams params;
  params.num_vertices = 90;
  params.num_edges = 150;
  params.planted_cut = 5;
  const Hypergraph h = planted_instance(params, 17).hypergraph;
  Algorithm1Options options;
  options.num_starts = 16;
  options.seed = 23;
  options.memoize_starts = false;
  options.threads = 1;
  const Algorithm1Result reference = algorithm1(h, options);
  for (const int threads : {1, 2, 8}) {
    for (const bool memoize : {false, true}) {
      options.threads = threads;
      options.memoize_starts = memoize;
      const Algorithm1Result got = algorithm1(h, options);
      EXPECT_EQ(got.sides, reference.sides)
          << "threads=" << threads << " memoize=" << memoize;
      EXPECT_EQ(got.metrics.cut_edges, reference.metrics.cut_edges);
    }
  }
}

}  // namespace
}  // namespace fhp

#include "hypergraph/hypergraph.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "test_helpers.hpp"

namespace fhp {
namespace {

TEST(Hypergraph, EmptyByDefault) {
  Hypergraph h;
  EXPECT_EQ(h.num_vertices(), 0U);
  EXPECT_EQ(h.num_edges(), 0U);
  EXPECT_EQ(h.num_pins(), 0U);
  EXPECT_EQ(h.max_edge_size(), 0U);
  EXPECT_EQ(h.max_degree(), 0U);
  h.validate();
}

TEST(Hypergraph, FromEdgesBuildsIncidence) {
  const Hypergraph h = Hypergraph::from_edges(4, {{0, 1, 2}, {2, 3}});
  EXPECT_EQ(h.num_vertices(), 4U);
  EXPECT_EQ(h.num_edges(), 2U);
  EXPECT_EQ(h.num_pins(), 5U);
  EXPECT_EQ(h.edge_size(0), 3U);
  EXPECT_EQ(h.edge_size(1), 2U);
  EXPECT_EQ(h.degree(2), 2U);
  EXPECT_EQ(h.degree(3), 1U);
  const auto nets2 = h.nets_of(2);
  ASSERT_EQ(nets2.size(), 2U);
  EXPECT_EQ(nets2[0], 0U);
  EXPECT_EQ(nets2[1], 1U);
  h.validate();
}

TEST(Hypergraph, PinsAreSortedAndDeduped) {
  HypergraphBuilder b;
  b.add_vertices(5);
  b.add_edge({4, 2, 2, 0, 4});
  const Hypergraph h = std::move(b).build();
  const auto pins = h.pins(0);
  ASSERT_EQ(pins.size(), 3U);
  EXPECT_EQ(pins[0], 0U);
  EXPECT_EQ(pins[1], 2U);
  EXPECT_EQ(pins[2], 4U);
  h.validate();
}

TEST(Hypergraph, WeightsDefaultToOne) {
  const Hypergraph h = test::path_hypergraph(4);
  EXPECT_EQ(h.total_vertex_weight(), 4);
  EXPECT_EQ(h.total_edge_weight(), 3);
  EXPECT_EQ(h.vertex_weight(0), 1);
  EXPECT_EQ(h.edge_weight(0), 1);
}

TEST(Hypergraph, CustomWeightsTracked) {
  HypergraphBuilder b;
  b.add_vertex(10);
  b.add_vertex(20);
  b.add_edge({0, 1}, 7);
  b.set_vertex_weight(0, 5);
  const Hypergraph h = std::move(b).build();
  EXPECT_EQ(h.vertex_weight(0), 5);
  EXPECT_EQ(h.vertex_weight(1), 20);
  EXPECT_EQ(h.edge_weight(0), 7);
  EXPECT_EQ(h.total_vertex_weight(), 25);
  EXPECT_EQ(h.total_edge_weight(), 7);
  h.validate();
}

TEST(Hypergraph, MaxStatsMaintained) {
  HypergraphBuilder b;
  b.add_vertices(6);
  b.add_edge({0, 1, 2, 3});
  b.add_edge({0, 1});
  b.add_edge({0, 4});
  const Hypergraph h = std::move(b).build();
  EXPECT_EQ(h.max_edge_size(), 4U);
  EXPECT_EQ(h.max_degree(), 3U);  // vertex 0 on three nets
}

TEST(Hypergraph, IsGraphDetection) {
  EXPECT_TRUE(test::path_hypergraph(5).is_graph());
  const Hypergraph h = Hypergraph::from_edges(3, {{0, 1, 2}});
  EXPECT_FALSE(h.is_graph());
  EXPECT_TRUE(Hypergraph().is_graph());  // vacuously
}

TEST(Hypergraph, EmptyAndSingletonEdgesRepresentable) {
  HypergraphBuilder b;
  b.add_vertices(2);
  b.allow_empty_edges();  // zero-pin nets are opt-in (docs/formats.md)
  b.add_edge(std::span<const VertexId>{});
  b.add_edge({1});
  const Hypergraph h = std::move(b).build();
  EXPECT_EQ(h.num_edges(), 2U);
  EXPECT_EQ(h.edge_size(0), 0U);
  EXPECT_EQ(h.edge_size(1), 1U);
  h.validate();
}

TEST(HypergraphBuilder, RejectsUnknownPin) {
  HypergraphBuilder b;
  b.add_vertices(2);
  EXPECT_THROW(b.add_edge({0, 2}), PreconditionError);
}

TEST(HypergraphBuilder, RejectsNegativeWeights) {
  HypergraphBuilder b;
  EXPECT_THROW(b.add_vertex(-1), PreconditionError);
  b.add_vertices(2);
  EXPECT_THROW(b.add_edge({0, 1}, -3), PreconditionError);
  EXPECT_THROW(b.set_vertex_weight(0, -2), PreconditionError);
}

TEST(HypergraphBuilder, SetWeightRejectsUnknownVertex) {
  HypergraphBuilder b;
  EXPECT_THROW(b.set_vertex_weight(0, 1), PreconditionError);
}

TEST(HypergraphBuilder, IdsAreSequential) {
  HypergraphBuilder b;
  EXPECT_EQ(b.add_vertex(), 0U);
  EXPECT_EQ(b.add_vertex(), 1U);
  EXPECT_EQ(b.add_vertices(3), 2U);
  EXPECT_EQ(b.num_vertices(), 5U);
  EXPECT_EQ(b.add_edge({0, 1}), 0U);
  EXPECT_EQ(b.add_edge({1, 2}), 1U);
  EXPECT_EQ(b.num_edges(), 2U);
}

TEST(Hypergraph, VertexNetListsSorted) {
  // Vertex 0 appears in nets 0, 2, 3 — list must come back sorted.
  const Hypergraph h =
      Hypergraph::from_edges(3, {{0, 1}, {1, 2}, {0, 2}, {0, 1, 2}});
  const auto nets = h.nets_of(0);
  ASSERT_EQ(nets.size(), 3U);
  EXPECT_EQ(nets[0], 0U);
  EXPECT_EQ(nets[1], 2U);
  EXPECT_EQ(nets[2], 3U);
  h.validate();
}

TEST(Hypergraph, LargeChainValidates) {
  const Hypergraph h = test::path_hypergraph(1000);
  EXPECT_EQ(h.num_edges(), 999U);
  EXPECT_EQ(h.max_degree(), 2U);
  h.validate();
}

TEST(HypergraphBuilder, RejectsZeroPinEdgesByDefault) {
  HypergraphBuilder b;
  b.add_vertices(3);
  EXPECT_THROW((void)b.add_edge({}), PreconditionError);
}

/// The fixed 4-vertex, 3-net instance the fingerprint tests perturb.
Hypergraph fingerprint_base() {
  HypergraphBuilder b;
  b.add_vertices(4);
  b.add_edge({0, 1, 2}, 2);
  b.add_edge({2, 3});
  b.add_edge({0, 3}, 5);
  return std::move(b).build();
}

TEST(HypergraphFingerprint, EqualStructuresAgreeAcrossBuildPaths) {
  const Hypergraph via_builder = fingerprint_base();
  // Same structure assembled through from_csr instead of the builder.
  const Hypergraph via_csr = Hypergraph::from_csr(
      {0, 3, 5, 7}, {0, 1, 2, 2, 3, 0, 3}, {1, 1, 1, 1}, {2, 1, 5});
  EXPECT_EQ(via_builder.fingerprint(), via_csr.fingerprint());
  // And it is a pure function: recomputing agrees with itself.
  EXPECT_EQ(via_builder.fingerprint(), via_builder.fingerprint());
}

TEST(HypergraphFingerprint, EveryPerturbationChangesIt) {
  const Hypergraph::Fingerprint base = fingerprint_base().fingerprint();

  {  // different pin in one net
    HypergraphBuilder b;
    b.add_vertices(4);
    b.add_edge({0, 1, 3}, 2);
    b.add_edge({2, 3});
    b.add_edge({0, 3}, 5);
    EXPECT_NE(std::move(b).build().fingerprint(), base);
  }
  {  // different edge weight
    HypergraphBuilder b;
    b.add_vertices(4);
    b.add_edge({0, 1, 2}, 3);
    b.add_edge({2, 3});
    b.add_edge({0, 3}, 5);
    EXPECT_NE(std::move(b).build().fingerprint(), base);
  }
  {  // different vertex weight
    HypergraphBuilder b;
    b.add_vertices(4);
    b.set_vertex_weight(1, 7);
    b.add_edge({0, 1, 2}, 2);
    b.add_edge({2, 3});
    b.add_edge({0, 3}, 5);
    EXPECT_NE(std::move(b).build().fingerprint(), base);
  }
  {  // extra isolated vertex (same nets)
    HypergraphBuilder b;
    b.add_vertices(5);
    b.add_edge({0, 1, 2}, 2);
    b.add_edge({2, 3});
    b.add_edge({0, 3}, 5);
    EXPECT_NE(std::move(b).build().fingerprint(), base);
  }
  {  // extra net
    HypergraphBuilder b;
    b.add_vertices(4);
    b.add_edge({0, 1, 2}, 2);
    b.add_edge({2, 3});
    b.add_edge({0, 3}, 5);
    b.add_edge({1, 3});
    EXPECT_NE(std::move(b).build().fingerprint(), base);
  }
  // Empty hypergraphs fingerprint too (and differ from non-empty).
  EXPECT_NE(Hypergraph().fingerprint(), base);
}

TEST(HypergraphBuilder, AllowEmptyEdgesOptsIn) {
  HypergraphBuilder b;
  b.add_vertices(3);
  b.allow_empty_edges();
  const EdgeId e = b.add_edge({});
  b.add_edge({0, 2});
  const Hypergraph h = std::move(b).build();
  EXPECT_EQ(h.num_edges(), 2U);
  EXPECT_EQ(h.edge_size(e), 0U);
  h.validate();
}

}  // namespace
}  // namespace fhp

#include "core/algorithm1.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/circuit.hpp"
#include "gen/planted.hpp"
#include "test_helpers.hpp"

namespace fhp {
namespace {

/// Checks structural validity of any Algorithm I result.
void check_result(const Hypergraph& h, const Algorithm1Result& r) {
  ASSERT_EQ(r.sides.size(), h.num_vertices());
  for (std::uint8_t s : r.sides) EXPECT_TRUE(s == 0 || s == 1);
  EXPECT_TRUE(r.metrics.proper);
  EXPECT_EQ(r.metrics.cut_edges, test::count_cut_edges(h, r.sides));
}

TEST(Algorithm1, RequiresTwoModules) {
  HypergraphBuilder b;
  b.add_vertex();
  const Hypergraph h = std::move(b).build();
  EXPECT_THROW((void)algorithm1(h), PreconditionError);
}

TEST(Algorithm1, PathHypergraphCutOne) {
  const Hypergraph h = test::path_hypergraph(20);
  const Algorithm1Result r = algorithm1(h);
  check_result(h, r);
  EXPECT_EQ(r.metrics.cut_edges, 1U);  // any contiguous split cuts one net
  EXPECT_LE(r.metrics.cardinality_imbalance, 2U);
}

TEST(Algorithm1, TwoClustersFindsBridges) {
  const Hypergraph h = test::two_cluster_hypergraph(8, 3);
  const Algorithm1Result r = algorithm1(h);
  check_result(h, r);
  EXPECT_EQ(r.metrics.cut_edges, 3U);
  EXPECT_EQ(r.metrics.cardinality_imbalance, 0U);
}

TEST(Algorithm1, MatchesBruteForceOnSmallInstances) {
  // On tiny instances the multi-start heuristic should find the true
  // minimum proper cut most of the time; require it within +1 always.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    PlantedParams params;
    params.num_vertices = 12;
    params.num_edges = 16;
    params.planted_cut = 2;
    params.max_edge_size = 3;
    const PlantedInstance inst = planted_instance(params, seed);
    if (inst.hypergraph.num_edges() < 4) continue;
    Algorithm1Options options;
    options.num_starts = 50;
    options.large_edge_threshold = 0;
    options.consider_floating_split = true;  // hunt the true minimum
    const Algorithm1Result r = algorithm1(inst.hypergraph, options);
    check_result(inst.hypergraph, r);
    const EdgeId best = test::brute_force_min_cut(inst.hypergraph);
    EXPECT_LE(r.metrics.cut_edges, best + 1) << "seed " << seed;
  }
}

TEST(Algorithm1, DisconnectedInstanceZeroCut) {
  // Two disjoint chains: c = 0 pathological case.
  HypergraphBuilder b;
  b.add_vertices(12);
  for (VertexId i = 0; i + 1 < 6; ++i) b.add_edge({i, i + 1});
  for (VertexId i = 6; i + 1 < 12; ++i) b.add_edge({i, i + 1});
  const Hypergraph h = std::move(b).build();
  const Algorithm1Result r = algorithm1(h);
  check_result(h, r);
  EXPECT_TRUE(r.disconnected_shortcut);
  EXPECT_EQ(r.metrics.cut_edges, 0U);
  EXPECT_EQ(r.metrics.cardinality_imbalance, 0U);
}

TEST(Algorithm1, DegenerateGiantBlockGetsBisected) {
  // One dominant connected block (30 modules in a chain) plus a tiny
  // satellite pair: packing whole blocks cannot balance, so the giant
  // block must be split internally.
  HypergraphBuilder b;
  b.add_vertices(32);
  for (VertexId i = 0; i + 1 < 30; ++i) b.add_edge({i, i + 1});
  b.add_edge({30, 31});
  const Hypergraph h = std::move(b).build();
  const Algorithm1Result r = algorithm1(h);
  check_result(h, r);
  EXPECT_TRUE(r.disconnected_shortcut);
  // Balanced despite the dominant block; the split costs one chain net.
  EXPECT_LE(r.metrics.cardinality_imbalance, 4U);
  EXPECT_LE(r.metrics.cut_edges, 1U);
}

TEST(Algorithm1, DegenerateEqualBlocksZeroCut) {
  // The true pathological c = 0 case: two equal blocks, no split needed.
  HypergraphBuilder b;
  b.add_vertices(20);
  for (VertexId i = 0; i + 1 < 10; ++i) b.add_edge({i, i + 1});
  for (VertexId i = 10; i + 1 < 20; ++i) b.add_edge({i, i + 1});
  const Hypergraph h = std::move(b).build();
  const Algorithm1Result r = algorithm1(h);
  check_result(h, r);
  EXPECT_EQ(r.metrics.cut_edges, 0U);
  EXPECT_EQ(r.metrics.cardinality_imbalance, 0U);
}

TEST(Algorithm1, ContextAccessorsConsistent) {
  const Hypergraph h = test::two_cluster_hypergraph(6, 2);
  Algorithm1Options options;
  options.large_edge_threshold = 0;
  Algorithm1Context ctx(h, options);
  EXPECT_EQ(&ctx.original(), &h);
  EXPECT_EQ(ctx.filtered().num_edges(), h.num_edges());
  EXPECT_EQ(ctx.intersection().num_vertices(), h.num_edges());
  EXPECT_EQ(ctx.filtered_edge_count(), 0U);
  EXPECT_FALSE(ctx.is_degenerate());
}

TEST(Algorithm1, IsolatedModulesBalanced) {
  HypergraphBuilder b;
  b.add_vertices(10);
  b.add_edge({0, 1});
  b.add_edge({1, 2});
  const Hypergraph h = std::move(b).build();
  const Algorithm1Result r = algorithm1(h);
  check_result(h, r);
  EXPECT_LE(r.metrics.cardinality_imbalance, 1U);
}

TEST(Algorithm1, SingleNetInstance) {
  // One net covering some of the modules: the rest can take the other
  // side, cut 0.
  HypergraphBuilder b;
  b.add_vertices(6);
  b.add_edge({0, 1, 2});
  const Hypergraph h = std::move(b).build();
  const Algorithm1Result r = algorithm1(h);
  check_result(h, r);
  EXPECT_EQ(r.metrics.cut_edges, 0U);
}

TEST(Algorithm1, SingleNetCoveringEverythingSplitsIt) {
  HypergraphBuilder b;
  b.add_vertices(4);
  b.add_edge({0, 1, 2, 3});
  const Hypergraph h = std::move(b).build();
  const Algorithm1Result r = algorithm1(h);
  check_result(h, r);
  EXPECT_EQ(r.metrics.cut_edges, 1U);
  EXPECT_EQ(r.metrics.cardinality_imbalance, 0U);
}

TEST(Algorithm1, DeterministicForSeed) {
  const Hypergraph h =
      generate_circuit(table2_params(103, 211, Technology::kPcb), 5);
  Algorithm1Options options;
  options.seed = 99;
  const Algorithm1Result a = algorithm1(h, options);
  const Algorithm1Result b = algorithm1(h, options);
  EXPECT_EQ(a.sides, b.sides);
  EXPECT_EQ(a.metrics.cut_edges, b.metrics.cut_edges);
}

TEST(Algorithm1, MoreStartsNeverWorse) {
  const Hypergraph h =
      generate_circuit(table2_params(150, 260, Technology::kStandardCell), 7);
  Algorithm1Options one;
  one.num_starts = 1;
  one.seed = 3;
  Algorithm1Options many;
  many.num_starts = 50;
  many.seed = 3;
  const Algorithm1Result r1 = algorithm1(h, one);
  const Algorithm1Result r50 = algorithm1(h, many);
  EXPECT_LE(r50.metrics.cut_edges, r1.metrics.cut_edges);
}

TEST(Algorithm1, LargeEdgeFilterCountsDropped) {
  HypergraphBuilder b;
  b.add_vertices(30);
  for (VertexId i = 0; i + 1 < 30; ++i) b.add_edge({i, i + 1});
  std::vector<VertexId> bus;
  for (VertexId i = 0; i < 20; ++i) bus.push_back(i);
  b.add_edge(std::span<const VertexId>(bus));
  const Hypergraph h = std::move(b).build();
  Algorithm1Options options;
  options.large_edge_threshold = 10;
  const Algorithm1Result r = algorithm1(h, options);
  check_result(h, r);
  EXPECT_EQ(r.filtered_edges, 1U);
  // The bus is ignored during partitioning but still scored: a chain split
  // inside the first 20 modules cuts the bus too.
  EXPECT_LE(r.metrics.cut_edges, 2U);
}

TEST(Algorithm1, ExactCompletionNeverWorseThanGreedy) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Hypergraph h = generate_circuit(
        table2_params(120, 220, Technology::kGateArray), seed);
    Algorithm1Context greedy_ctx(h, {});
    Algorithm1Options exact_options;
    exact_options.completion = CompletionStrategy::kExact;
    Algorithm1Context exact_ctx(h, exact_options);
    if (greedy_ctx.is_degenerate()) continue;
    // Same start → same boundary; exact completion cannot lose more nets.
    const Algorithm1Result g = greedy_ctx.run_single(0);
    const Algorithm1Result e = exact_ctx.run_single(0);
    EXPECT_LE(e.loser_count, g.loser_count) << "seed " << seed;
  }
}

TEST(Algorithm1, LoserCountBoundsRealizedBoundaryCut) {
  // The loser count is an upper bound on how many *filtered* nets cross.
  const Hypergraph h =
      generate_circuit(table2_params(200, 350, Technology::kStandardCell), 11);
  Algorithm1Options options;
  options.large_edge_threshold = 0;  // no filtering: bound applies to all
  Algorithm1Context ctx(h, options);
  if (ctx.is_degenerate()) GTEST_SKIP() << "degenerate instance";
  const Algorithm1Result r = ctx.run_single(0);
  EXPECT_LE(r.metrics.cut_edges, r.loser_count);
}

TEST(Algorithm1, QuotientObjectivePicksFiniteQuotient) {
  const Hypergraph h =
      generate_circuit(table2_params(100, 180, Technology::kPcb), 13);
  Algorithm1Options options;
  options.objective = Objective::kQuotient;
  const Algorithm1Result r = algorithm1(h, options);
  check_result(h, r);
  EXPECT_TRUE(std::isfinite(r.metrics.quotient_cut));
}

TEST(Algorithm1, WeightedCompletionImprovesWeightBalance) {
  // Heavily skewed module weights: the engineer's rule should not blow up
  // the weight imbalance relative to total weight.
  CircuitParams params = standard_cell_params(0.5);
  params.weight_geometric_p = 0.3;
  const Hypergraph h = generate_circuit(params, 17);
  Algorithm1Options weighted;
  weighted.completion = CompletionStrategy::kWeightedGreedy;
  const Algorithm1Result r = algorithm1(h, weighted);
  check_result(h, r);
  EXPECT_LT(static_cast<double>(r.metrics.weight_imbalance),
            0.25 * static_cast<double>(h.total_vertex_weight()));
}

TEST(Algorithm1, LevelSweepValidAndCompetitive) {
  const Hypergraph h =
      generate_circuit(table2_params(200, 350, Technology::kStandardCell), 23);
  Algorithm1Options bidi;
  bidi.seed = 5;
  bidi.num_starts = 5;
  Algorithm1Options sweep = bidi;
  sweep.initial_cut = InitialCutStrategy::kLevelSweep;
  const Algorithm1Result a = algorithm1(h, bidi);
  const Algorithm1Result b = algorithm1(h, sweep);
  check_result(h, a);
  check_result(h, b);
  // The sweep examines a superset of cut positions per start; it should
  // be at least competitive on the same seed.
  EXPECT_LE(b.metrics.cut_edges, a.metrics.cut_edges + 5);
}

TEST(Algorithm1, LevelSweepOnChainFindsCutOne) {
  const Hypergraph h = test::path_hypergraph(30);
  Algorithm1Options options;
  options.initial_cut = InitialCutStrategy::kLevelSweep;
  options.num_starts = 3;
  const Algorithm1Result r = algorithm1(h, options);
  check_result(h, r);
  EXPECT_EQ(r.metrics.cut_edges, 1U);
}

TEST(Algorithm1, CompleteFromCutCustomSplit) {
  // Drive steps 3-5 directly with a hand-made G cut.
  const Hypergraph h = test::path_hypergraph(10);  // G = path of 9 nets
  Algorithm1Options options;
  options.large_edge_threshold = 0;
  Algorithm1Context ctx(h, options);
  ASSERT_FALSE(ctx.is_degenerate());
  std::vector<std::uint8_t> g_side(ctx.intersection().num_vertices(), 0);
  for (VertexId e = 5; e < g_side.size(); ++e) g_side[e] = 1;
  const Algorithm1Result r = ctx.complete_from_cut(g_side);
  check_result(h, r);
  EXPECT_EQ(r.metrics.cut_edges, 1U);
  EXPECT_EQ(r.boundary_size, 2U);
}

TEST(Algorithm1, CompleteFromCutRejectsBadInput) {
  const Hypergraph h = test::path_hypergraph(6);
  Algorithm1Context ctx(h, {});
  EXPECT_THROW((void)ctx.complete_from_cut({0, 1}), PreconditionError);
}

TEST(Algorithm1, DiagnosticsPopulated) {
  const Hypergraph h = test::two_cluster_hypergraph(10, 2);
  const Algorithm1Result r = algorithm1(h);
  EXPECT_GT(r.starts_run, 0);
  EXPECT_GT(r.pseudo_diameter, 0U);
  EXPECT_GT(r.boundary_size, 0U);
  EXPECT_EQ(r.winner_count + r.loser_count, r.boundary_size);
}

}  // namespace
}  // namespace fhp

#include "graph/bipartite.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace fhp {
namespace {

TEST(Bipartite, EvenCycleIsBipartite) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_TRUE(is_bipartite(g));
  const auto coloring = two_color(g);
  ASSERT_TRUE(coloring.has_value());
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v : g.neighbors(u)) {
      EXPECT_NE((*coloring)[u], (*coloring)[v]);
    }
  }
}

TEST(Bipartite, OddCycleIsNot) {
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_FALSE(is_bipartite(g));
  EXPECT_FALSE(two_color(g).has_value());
}

TEST(Bipartite, EmptyAndEdgelessGraphs) {
  EXPECT_TRUE(is_bipartite(Graph{}));
  EXPECT_TRUE(is_bipartite(Graph::from_edges(5, {})));
}

TEST(Bipartite, DisconnectedMixOddCycleDetected) {
  // Bipartite component + triangle.
  const Graph g =
      Graph::from_edges(6, {{0, 1}, {2, 3}, {3, 4}, {4, 2}, {1, 5}});
  EXPECT_FALSE(is_bipartite(g));
}

TEST(Bipartite, RandomBipartiteGraphsAccepted) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto [g, side] = test::random_bipartite_graph(12, 15, 0.3, seed);
    const auto coloring = two_color(g);
    ASSERT_TRUE(coloring.has_value());
    // The computed coloring must agree with the construction side on every
    // edge (colors may be swapped per component; adjacency check suffices).
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      for (VertexId v : g.neighbors(u)) {
        EXPECT_NE((*coloring)[u], (*coloring)[v]);
        EXPECT_NE(side[u], side[v]);
      }
    }
  }
}

TEST(Bipartite, FirstVertexOfComponentGetsColorZero) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  const auto coloring = two_color(g);
  ASSERT_TRUE(coloring.has_value());
  EXPECT_EQ((*coloring)[0], 0);
  EXPECT_EQ((*coloring)[2], 0);
}

}  // namespace
}  // namespace fhp

#include "validate/fuzz.hpp"

#include <gtest/gtest.h>

namespace fhp {
namespace {

using validate::FuzzOptions;
using validate::FuzzStats;

TEST(Fuzz, SmokeRunFindsNoViolations) {
  FuzzOptions options;
  options.instances_per_generator = 25;
  const FuzzStats stats = validate::run_fuzz(options);
  EXPECT_TRUE(stats.ok()) << stats.to_string();
  EXPECT_EQ(stats.instances,
            25U * validate::fuzz_generator_names().size());
  EXPECT_GT(stats.parsed, 0U);
  EXPECT_GT(stats.partitioned, 0U);
  EXPECT_GT(stats.round_trips, 0U);
  // Mutations must actually exercise the rejection paths.
  EXPECT_GT(stats.mutated, 0U);
  EXPECT_GT(stats.rejected, 0U);
}

TEST(Fuzz, DeterministicAcrossRuns) {
  FuzzOptions options;
  options.instances_per_generator = 10;
  options.seed = 42;
  const FuzzStats a = validate::run_fuzz(options);
  const FuzzStats b = validate::run_fuzz(options);
  EXPECT_EQ(a.to_string(), b.to_string());
}

TEST(Fuzz, GeneratorFilterRunsOneFamily) {
  FuzzOptions options;
  options.instances_per_generator = 8;
  options.only_generator = "grid";
  const FuzzStats stats = validate::run_fuzz(options);
  EXPECT_TRUE(stats.ok()) << stats.to_string();
  EXPECT_EQ(stats.instances, 8U);
}

TEST(Fuzz, SingleInstanceReplay) {
  FuzzOptions options;
  options.instances_per_generator = 20;
  options.only_generator = "random";
  options.only_instance = 7;
  const FuzzStats stats = validate::run_fuzz(options);
  EXPECT_TRUE(stats.ok()) << stats.to_string();
  EXPECT_EQ(stats.instances, 1U);
}

TEST(Fuzz, UnmutatedRunRoundTripsEverything) {
  FuzzOptions options;
  options.instances_per_generator = 10;
  options.mutate_probability = 0.0;
  const FuzzStats stats = validate::run_fuzz(options);
  EXPECT_TRUE(stats.ok()) << stats.to_string();
  EXPECT_EQ(stats.mutated, 0U);
  EXPECT_EQ(stats.rejected, 0U);
}

}  // namespace
}  // namespace fhp

#include "graph/matching.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace fhp {
namespace {

/// Checks that a matching is structurally valid: symmetric, along edges.
void check_matching(const Graph& g, const MatchingResult& m) {
  VertexId pairs = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const VertexId partner = m.match[v];
    if (partner == kInvalidVertex) continue;
    EXPECT_EQ(m.match[partner], v);
    EXPECT_TRUE(g.has_edge(v, partner));
    if (v < partner) ++pairs;
  }
  EXPECT_EQ(pairs, m.size);
}

/// Checks a vertex cover covers every edge.
void check_cover(const Graph& g, const std::vector<std::uint8_t>& cover) {
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (v < u) continue;
      EXPECT_TRUE(cover[u] || cover[v]) << "edge (" << u << "," << v
                                        << ") uncovered";
    }
  }
}

TEST(Matching, PerfectMatchingOnEvenPath) {
  // Path 0-1-2-3 (bipartite: even ids left).
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  const std::vector<std::uint8_t> side{0, 1, 0, 1};
  const MatchingResult m = max_bipartite_matching(g, side);
  EXPECT_EQ(m.size, 2U);
  check_matching(g, m);
}

TEST(Matching, StarHasMatchingOne) {
  const Graph g = Graph::from_edges(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  const std::vector<std::uint8_t> side{0, 1, 1, 1, 1};
  const MatchingResult m = max_bipartite_matching(g, side);
  EXPECT_EQ(m.size, 1U);
  check_matching(g, m);
}

TEST(Matching, EmptyAndEdgeless) {
  {
    const MatchingResult m = max_bipartite_matching(Graph{}, {});
    EXPECT_EQ(m.size, 0U);
  }
  {
    const Graph g = Graph::from_edges(3, {});
    const MatchingResult m =
        max_bipartite_matching(g, std::vector<std::uint8_t>{0, 0, 1});
    EXPECT_EQ(m.size, 0U);
  }
}

TEST(Matching, RejectsImproperColoring) {
  const Graph g = Graph::from_edges(2, {{0, 1}});
  EXPECT_THROW(
      (void)max_bipartite_matching(g, std::vector<std::uint8_t>{0, 0}),
      PreconditionError);
  EXPECT_THROW((void)max_bipartite_matching(g, std::vector<std::uint8_t>{0}),
               PreconditionError);
}

TEST(Matching, CompleteBipartite) {
  // K_{3,4}: maximum matching 3.
  GraphBuilder b(7);
  std::vector<std::uint8_t> side(7, 0);
  for (VertexId l = 0; l < 3; ++l) {
    for (VertexId r = 3; r < 7; ++r) b.add_edge(l, r);
  }
  for (VertexId r = 3; r < 7; ++r) side[r] = 1;
  const Graph g = std::move(b).build();
  const MatchingResult m = max_bipartite_matching(g, side);
  EXPECT_EQ(m.size, 3U);
  check_matching(g, m);
}

TEST(Koenig, CoverSizeEqualsMatchingSize) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto [g, side] = test::random_bipartite_graph(9, 8, 0.3, seed);
    const MatchingResult m = max_bipartite_matching(g, side);
    const auto cover = minimum_vertex_cover(g, side, m);
    check_matching(g, m);
    check_cover(g, cover);
    VertexId cover_size = 0;
    for (std::uint8_t c : cover) cover_size += c;
    EXPECT_EQ(cover_size, m.size) << "seed " << seed;
  }
}

TEST(Koenig, MatchesBruteForceMinimum) {
  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    const auto [g, side] = test::random_bipartite_graph(6, 6, 0.35, seed);
    const MatchingResult m = max_bipartite_matching(g, side);
    const std::uint32_t brute = test::brute_force_min_vertex_cover(g);
    EXPECT_EQ(m.size, brute) << "seed " << seed;
  }
}

TEST(Koenig, IndependentSetComplement) {
  const auto [g, side] = test::random_bipartite_graph(10, 10, 0.25, 42);
  const MatchingResult m = max_bipartite_matching(g, side);
  const auto cover = minimum_vertex_cover(g, side, m);
  // Complement of a vertex cover is an independent set.
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    if (cover[u]) continue;
    for (VertexId v : g.neighbors(u)) EXPECT_TRUE(cover[v]);
  }
}

TEST(Matching, LargeRandomAgainstAugmentingUpperBound) {
  // Matching size can never exceed min(|L|, |R|) and must saturate
  // high-probability dense instances.
  const auto [g, side] = test::random_bipartite_graph(30, 30, 0.5, 7);
  const MatchingResult m = max_bipartite_matching(g, side);
  EXPECT_LE(m.size, 30U);
  EXPECT_GE(m.size, 28U);  // dense random bipartite: near-perfect whp
  check_matching(g, m);
}

}  // namespace
}  // namespace fhp

/// Every file in tests/corpus/ is malformed external input. The contract
/// under test: parsers reject each one with a *typed* fhp::IoError — never
/// a crash, an abort, or a different exception type — no matter how the
/// text is broken. New fuzz findings get minimized and checked in here.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "hypergraph/io.hpp"
#include "util/mmap.hpp"

namespace fhp {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> corpus_files(const std::string& extension) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(FHP_CORPUS_DIR)) {
    if (entry.path().extension() == extension) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(Corpus, HasFilesForEveryFormat) {
  EXPECT_FALSE(corpus_files(".hgr").empty());
  EXPECT_FALSE(corpus_files(".net").empty());
  EXPECT_FALSE(corpus_files(".part").empty());
}

TEST(Corpus, EveryHmetisFileYieldsIoError) {
  for (const fs::path& path : corpus_files(".hgr")) {
    std::ifstream in(path);
    ASSERT_TRUE(in) << path;
    EXPECT_THROW(static_cast<void>(read_hmetis(in)), IoError) << path;
  }
}

// The zero-copy parser (io_scan.cpp) must classify every corpus file the
// same way the istream oracle does: typed IoError, no other escape.
TEST(Corpus, EveryHmetisFileYieldsIoErrorViaMmap) {
  for (const fs::path& path : corpus_files(".hgr")) {
    const MappedFile file(path.string());
    EXPECT_THROW(static_cast<void>(read_hmetis(file.view())), IoError) << path;
  }
}

TEST(Corpus, EveryNetlistFileYieldsIoError) {
  for (const fs::path& path : corpus_files(".net")) {
    std::ifstream in(path);
    ASSERT_TRUE(in) << path;
    EXPECT_THROW(static_cast<void>(read_netlist(in)), IoError) << path;
  }
}

TEST(Corpus, EveryPartitionFileYieldsIoError) {
  for (const fs::path& path : corpus_files(".part")) {
    std::ifstream in(path);
    ASSERT_TRUE(in) << path;
    EXPECT_THROW(static_cast<void>(read_partition(in, 2)), IoError) << path;
  }
}

}  // namespace
}  // namespace fhp

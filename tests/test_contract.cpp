#include "hypergraph/contract.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "gen/random_hypergraph.hpp"
#include "partition/partition.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"
#include "validate/audit.hpp"

namespace fhp {
namespace {

TEST(Contract, PairMergeOnChain) {
  // Chain of 6 modules; contract pairs (0,1), (2,3), (4,5).
  const Hypergraph h = test::path_hypergraph(6);
  const ContractionResult r = contract(h, {0, 0, 1, 1, 2, 2}, 3);
  EXPECT_EQ(r.hypergraph.num_vertices(), 3U);
  // Intra-pair nets vanish; the two inter-pair nets remain.
  EXPECT_EQ(r.hypergraph.num_edges(), 2U);
  EXPECT_EQ(r.hypergraph.vertex_weight(0), 2);
  r.hypergraph.validate();
}

TEST(Contract, ParallelNetsMergeWithSummedWeight) {
  HypergraphBuilder b;
  b.add_vertices(4);
  b.add_edge({0, 2}, 3);
  b.add_edge({1, 3}, 4);  // becomes parallel to the first after contraction
  const Hypergraph h = std::move(b).build();
  const ContractionResult r = contract(h, {0, 0, 1, 1}, 2);
  ASSERT_EQ(r.hypergraph.num_edges(), 1U);
  EXPECT_EQ(r.hypergraph.edge_weight(0), 7);
}

TEST(Contract, InternalNetsDropped) {
  const Hypergraph h = Hypergraph::from_edges(3, {{0, 1, 2}});
  const ContractionResult r = contract(h, {0, 0, 0}, 1);
  EXPECT_EQ(r.hypergraph.num_edges(), 0U);
  EXPECT_EQ(r.hypergraph.num_vertices(), 1U);
}

TEST(Contract, IdentityContractionPreservesStructure) {
  const Hypergraph h = test::figure4_hypergraph();
  std::vector<VertexId> identity(h.num_vertices());
  for (VertexId v = 0; v < h.num_vertices(); ++v) identity[v] = v;
  const ContractionResult r = contract(h, identity, h.num_vertices());
  EXPECT_EQ(r.hypergraph.num_vertices(), h.num_vertices());
  EXPECT_EQ(r.hypergraph.num_edges(), h.num_edges());
  EXPECT_EQ(r.hypergraph.num_pins(), h.num_pins());
}

TEST(Contract, CutIsPreservedUnderProjection) {
  // Any coarse cut, projected to the fine level, has the same cut weight
  // (parallel-net merging keeps weights honest).
  const Hypergraph h = test::two_cluster_hypergraph(6, 3);
  // Contract within clusters: 3 clusters per side.
  std::vector<VertexId> cluster(h.num_vertices());
  for (VertexId v = 0; v < h.num_vertices(); ++v) cluster[v] = v / 2;
  const ContractionResult r = contract(h, cluster, 6);
  std::vector<std::uint8_t> coarse_sides{0, 0, 0, 1, 1, 1};
  const Bipartition coarse(r.hypergraph, coarse_sides);
  const auto fine_sides = project_sides(r.cluster, coarse_sides);
  const Bipartition fine(h, fine_sides);
  EXPECT_EQ(coarse.cut_weight(), fine.cut_weight());
}

TEST(Contract, Preconditions) {
  const Hypergraph h = test::path_hypergraph(3);
  EXPECT_THROW((void)contract(h, {0, 1}, 2), PreconditionError);
  EXPECT_THROW((void)contract(h, {0, 1, 2}, 2), PreconditionError);
  EXPECT_THROW((void)contract(h, {0, 0, 0}, 0), PreconditionError);
}

TEST(Contract, NetCollapsingToSinglePinIsDropped) {
  // A net whose pins all land in one cluster — but which is NOT internal
  // to the whole contraction — must be dropped, not kept as a single-pin
  // net: single-pin nets can never be cut, so keeping them would inflate
  // pin counts and skew size-based ratings at the coarse level.
  HypergraphBuilder b;
  b.add_vertices(4);
  b.add_edge({0, 1});     // collapses to the single pin {c0}
  b.add_edge({0, 1, 2});  // survives as {c0, c1}
  b.add_edge({2, 3});     // survives as {c1, c2}
  const Hypergraph h = std::move(b).build();
  const ContractionResult r = contract(h, {0, 0, 1, 2}, 3);
  EXPECT_EQ(r.hypergraph.num_vertices(), 3U);
  EXPECT_EQ(r.hypergraph.num_edges(), 2U);
  for (EdgeId e = 0; e < r.hypergraph.num_edges(); ++e) {
    EXPECT_GE(r.hypergraph.pins(e).size(), 2U);
  }
  EXPECT_TRUE(validate::audit_hypergraph(r.hypergraph).ok());
}

TEST(Contract, ClusterWeightsNearWeightOverflowSumExactly) {
  // Three vertices each carrying ~max/3: their cluster weight lands one
  // unit below the Weight ceiling. The sum must be exact — a narrowing
  // intermediate (int/double) would corrupt it silently.
  constexpr Weight kThird = std::numeric_limits<Weight>::max() / 3;
  HypergraphBuilder b;
  b.add_vertex(kThird);
  b.add_vertex(kThird);
  b.add_vertex(kThird);
  b.add_vertex(1);
  b.add_edge({0, 1, 2, 3});
  const Hypergraph h = std::move(b).build();
  const ContractionResult r = contract(h, {0, 0, 0, 1}, 2);
  EXPECT_EQ(r.hypergraph.vertex_weight(0), 3 * kThird);
  EXPECT_EQ(r.hypergraph.vertex_weight(1), 1);
  EXPECT_EQ(r.hypergraph.total_vertex_weight(), 3 * kThird + 1);
  EXPECT_TRUE(validate::audit_hypergraph(r.hypergraph).ok());
}

TEST(Contract, ParallelNetWeightsNearWeightOverflowSumExactly) {
  // Two nets that become parallel after contraction, each weighing
  // ~max/2: the merged net's weight is their exact sum.
  constexpr Weight kHalf = std::numeric_limits<Weight>::max() / 2;
  HypergraphBuilder b;
  b.add_vertices(4);
  b.add_edge({0, 2}, kHalf);
  b.add_edge({1, 3}, kHalf);
  const Hypergraph h = std::move(b).build();
  const ContractionResult r = contract(h, {0, 0, 1, 1}, 2);
  ASSERT_EQ(r.hypergraph.num_edges(), 1U);
  EXPECT_EQ(r.hypergraph.edge_weight(0), 2 * kHalf);
  EXPECT_TRUE(validate::audit_hypergraph(r.hypergraph).ok());
}

TEST(Contract, FuzzedContractionsAreAuditCleanAndCutPreserving) {
  // 50 random hypergraphs from varied H(n, d, r) corners × random cluster
  // maps (unused cluster ids allowed — they become zero-weight coarse
  // vertices). Every contraction must produce an audit-clean hypergraph,
  // and every coarse cut must project to an identical fine cut weight.
  Rng rng(0xC0117AC7ULL);
  for (int instance = 0; instance < 50; ++instance) {
    RandomHypergraphParams params;
    params.num_vertices =
        static_cast<VertexId>(2 + rng.next_below(60));
    params.num_edges = static_cast<EdgeId>(1 + rng.next_below(120));
    params.min_edge_size = 2;
    params.max_edge_size =
        static_cast<std::uint32_t>(2 + rng.next_below(7));
    params.max_degree = static_cast<std::uint32_t>(rng.next_below(9));
    const Hypergraph h = random_hypergraph(params, rng());

    const auto num_clusters =
        static_cast<VertexId>(1 + rng.next_below(h.num_vertices()));
    std::vector<VertexId> cluster(h.num_vertices());
    for (VertexId v = 0; v < h.num_vertices(); ++v) {
      cluster[v] = static_cast<VertexId>(rng.next_below(num_clusters));
    }

    const ContractionResult r = contract(h, cluster, num_clusters);
    const validate::AuditReport report =
        validate::audit_hypergraph(r.hypergraph);
    ASSERT_TRUE(report.ok())
        << "instance " << instance << ":\n" << report.to_string();
    ASSERT_EQ(r.hypergraph.total_vertex_weight(), h.total_vertex_weight())
        << "instance " << instance;

    std::vector<std::uint8_t> coarse_sides(r.hypergraph.num_vertices());
    for (auto& side : coarse_sides) {
      side = static_cast<std::uint8_t>(rng.next_below(2));
    }
    const Bipartition coarse(r.hypergraph, coarse_sides);
    const Bipartition fine(h, project_sides(r.cluster, coarse_sides));
    ASSERT_EQ(coarse.cut_weight(), fine.cut_weight())
        << "instance " << instance;
  }
}

TEST(ProjectSides, MapsThroughClusters) {
  const std::vector<VertexId> cluster{0, 1, 1, 0, 2};
  const std::vector<std::uint8_t> coarse{1, 0, 1};
  const auto fine = project_sides(cluster, coarse);
  EXPECT_EQ(fine, (std::vector<std::uint8_t>{1, 0, 0, 1, 1}));
}

TEST(ProjectSides, RejectsOutOfRangeCluster) {
  EXPECT_THROW((void)project_sides({0, 5}, {0, 1}), PreconditionError);
}

}  // namespace
}  // namespace fhp

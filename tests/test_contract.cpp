#include "hypergraph/contract.hpp"

#include <gtest/gtest.h>

#include "partition/partition.hpp"
#include "test_helpers.hpp"

namespace fhp {
namespace {

TEST(Contract, PairMergeOnChain) {
  // Chain of 6 modules; contract pairs (0,1), (2,3), (4,5).
  const Hypergraph h = test::path_hypergraph(6);
  const ContractionResult r = contract(h, {0, 0, 1, 1, 2, 2}, 3);
  EXPECT_EQ(r.hypergraph.num_vertices(), 3U);
  // Intra-pair nets vanish; the two inter-pair nets remain.
  EXPECT_EQ(r.hypergraph.num_edges(), 2U);
  EXPECT_EQ(r.hypergraph.vertex_weight(0), 2);
  r.hypergraph.validate();
}

TEST(Contract, ParallelNetsMergeWithSummedWeight) {
  HypergraphBuilder b;
  b.add_vertices(4);
  b.add_edge({0, 2}, 3);
  b.add_edge({1, 3}, 4);  // becomes parallel to the first after contraction
  const Hypergraph h = std::move(b).build();
  const ContractionResult r = contract(h, {0, 0, 1, 1}, 2);
  ASSERT_EQ(r.hypergraph.num_edges(), 1U);
  EXPECT_EQ(r.hypergraph.edge_weight(0), 7);
}

TEST(Contract, InternalNetsDropped) {
  const Hypergraph h = Hypergraph::from_edges(3, {{0, 1, 2}});
  const ContractionResult r = contract(h, {0, 0, 0}, 1);
  EXPECT_EQ(r.hypergraph.num_edges(), 0U);
  EXPECT_EQ(r.hypergraph.num_vertices(), 1U);
}

TEST(Contract, IdentityContractionPreservesStructure) {
  const Hypergraph h = test::figure4_hypergraph();
  std::vector<VertexId> identity(h.num_vertices());
  for (VertexId v = 0; v < h.num_vertices(); ++v) identity[v] = v;
  const ContractionResult r = contract(h, identity, h.num_vertices());
  EXPECT_EQ(r.hypergraph.num_vertices(), h.num_vertices());
  EXPECT_EQ(r.hypergraph.num_edges(), h.num_edges());
  EXPECT_EQ(r.hypergraph.num_pins(), h.num_pins());
}

TEST(Contract, CutIsPreservedUnderProjection) {
  // Any coarse cut, projected to the fine level, has the same cut weight
  // (parallel-net merging keeps weights honest).
  const Hypergraph h = test::two_cluster_hypergraph(6, 3);
  // Contract within clusters: 3 clusters per side.
  std::vector<VertexId> cluster(h.num_vertices());
  for (VertexId v = 0; v < h.num_vertices(); ++v) cluster[v] = v / 2;
  const ContractionResult r = contract(h, cluster, 6);
  std::vector<std::uint8_t> coarse_sides{0, 0, 0, 1, 1, 1};
  const Bipartition coarse(r.hypergraph, coarse_sides);
  const auto fine_sides = project_sides(r.cluster, coarse_sides);
  const Bipartition fine(h, fine_sides);
  EXPECT_EQ(coarse.cut_weight(), fine.cut_weight());
}

TEST(Contract, Preconditions) {
  const Hypergraph h = test::path_hypergraph(3);
  EXPECT_THROW((void)contract(h, {0, 1}, 2), PreconditionError);
  EXPECT_THROW((void)contract(h, {0, 1, 2}, 2), PreconditionError);
  EXPECT_THROW((void)contract(h, {0, 0, 0}, 0), PreconditionError);
}

TEST(ProjectSides, MapsThroughClusters) {
  const std::vector<VertexId> cluster{0, 1, 1, 0, 2};
  const std::vector<std::uint8_t> coarse{1, 0, 1};
  const auto fine = project_sides(cluster, coarse);
  EXPECT_EQ(fine, (std::vector<std::uint8_t>{1, 0, 0, 1, 1}));
}

TEST(ProjectSides, RejectsOutOfRangeCluster) {
  EXPECT_THROW((void)project_sides({0, 5}, {0, 1}), PreconditionError);
}

}  // namespace
}  // namespace fhp

#include "baselines/exact.hpp"

#include <gtest/gtest.h>

#include "core/algorithm1.hpp"
#include "gen/planted.hpp"
#include "gen/random_hypergraph.hpp"
#include "test_helpers.hpp"

namespace fhp {
namespace {

TEST(Exact, ChainOptimum) {
  const Hypergraph h = test::path_hypergraph(10);
  const BaselineResult r = exact_bipartition(h);
  EXPECT_EQ(r.metrics.cut_weight, 1);
  EXPECT_TRUE(r.metrics.proper);
}

TEST(Exact, MatchesBruteForceEnumeration) {
  RandomHypergraphParams params;
  params.num_vertices = 12;
  params.num_edges = 18;
  params.max_edge_size = 4;
  params.max_degree = 6;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Hypergraph h = random_hypergraph(params, seed);
    if (h.num_edges() == 0) continue;
    const BaselineResult r = exact_bipartition(h);
    EXPECT_EQ(r.metrics.cut_edges, test::brute_force_min_cut(h))
        << "seed " << seed;
  }
}

TEST(Exact, BalancedVariantMatchesConstrainedBruteForce) {
  RandomHypergraphParams params;
  params.num_vertices = 11;
  params.num_edges = 16;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Hypergraph h = random_hypergraph(params, seed);
    ExactOptions options;
    options.max_cardinality_imbalance = 1;
    const BaselineResult r = exact_bipartition(h, options);
    EXPECT_LE(r.metrics.cardinality_imbalance, 1U);
    EXPECT_EQ(r.metrics.cut_edges, test::brute_force_min_cut(h, 1))
        << "seed " << seed;
  }
}

TEST(Exact, WeightedCutsMinimizeWeight) {
  HypergraphBuilder b;
  b.add_vertices(5);
  b.add_edge({0, 1}, 10);
  b.add_edge({1, 2}, 2);
  b.add_edge({2, 3}, 10);
  b.add_edge({3, 4}, 3);
  const Hypergraph h = std::move(b).build();
  const BaselineResult r = exact_bipartition(h);
  EXPECT_EQ(r.metrics.cut_weight, 2);
}

TEST(Exact, FigureFourOptimumIsTwo) {
  ExactOptions options;
  options.max_cardinality_imbalance = 2;
  const BaselineResult r =
      exact_bipartition(test::figure4_hypergraph(), options);
  EXPECT_EQ(r.metrics.cut_edges, 2U);
}

TEST(Exact, CertifiesAlgorithm1OnPlantedInstances) {
  PlantedParams params;
  params.num_vertices = 20;
  params.num_edges = 30;
  params.planted_cut = 2;
  params.max_edge_size = 3;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const PlantedInstance inst = planted_instance(params, seed);
    Algorithm1Options a1;
    a1.large_edge_threshold = 0;
    a1.consider_floating_split = true;
    const Algorithm1Result heuristic = algorithm1(inst.hypergraph, a1);
    const BaselineResult exact = exact_bipartition(inst.hypergraph);
    EXPECT_GE(heuristic.metrics.cut_edges, exact.metrics.cut_edges);
    EXPECT_LE(heuristic.metrics.cut_edges, exact.metrics.cut_edges + 1)
        << "seed " << seed;
  }
}

TEST(Exact, Preconditions) {
  HypergraphBuilder one;
  one.add_vertex();
  EXPECT_THROW((void)exact_bipartition(std::move(one).build()),
               PreconditionError);

  const Hypergraph big = test::path_hypergraph(64);
  EXPECT_THROW((void)exact_bipartition(big), PreconditionError);

  const Hypergraph odd = test::path_hypergraph(5);
  ExactOptions options;
  options.max_cardinality_imbalance = 0;  // impossible for odd n
  EXPECT_THROW((void)exact_bipartition(odd, options), PreconditionError);
}

TEST(Exact, NodeBudgetEnforced) {
  const Hypergraph h = test::path_hypergraph(24);
  ExactOptions options;
  options.node_limit = 10;
  EXPECT_THROW((void)exact_bipartition(h, options), PreconditionError);
}

TEST(Exact, ReportsSearchEffort) {
  const Hypergraph h = test::path_hypergraph(8);
  const BaselineResult r = exact_bipartition(h);
  EXPECT_GT(r.iterations, 0);
}

}  // namespace
}  // namespace fhp

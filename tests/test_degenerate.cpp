/// Degenerate-instance matrix: every iterative baseline must return a
/// trivial proper-formed result — all modules on side 0, zero cut, zero
/// iterations — for instances with fewer than two modules, instead of
/// crashing or throwing. Two-module edge cases must still run normally.
#include <gtest/gtest.h>

#include "baselines/fm.hpp"
#include "baselines/kl.hpp"
#include "baselines/random_cut.hpp"
#include "baselines/sa.hpp"

namespace fhp {
namespace {

Hypergraph vertices_only(VertexId n) {
  HypergraphBuilder b;
  b.add_vertices(n);
  return std::move(b).build();
}

using BaselineFn = BaselineResult (*)(const Hypergraph&);

BaselineResult run_sa(const Hypergraph& h) {
  SaOptions options;
  options.max_temperatures = 3;
  return simulated_annealing(h, options);
}
BaselineResult run_kl(const Hypergraph& h) { return kernighan_lin(h, {}); }
BaselineResult run_fm(const Hypergraph& h) {
  return fiduccia_mattheyses(h, {});
}

struct NamedBaseline {
  const char* name;
  BaselineFn run;
};

const NamedBaseline kBaselines[] = {
    {"sa", &run_sa}, {"kl", &run_kl}, {"fm", &run_fm}};

TEST(Degenerate, IsDegenerateInstancePredicate) {
  EXPECT_TRUE(is_degenerate_instance(vertices_only(0)));
  EXPECT_TRUE(is_degenerate_instance(vertices_only(1)));
  EXPECT_FALSE(is_degenerate_instance(vertices_only(2)));
}

TEST(Degenerate, ZeroVertexInstanceYieldsTrivialResult) {
  const Hypergraph h = vertices_only(0);
  for (const NamedBaseline& baseline : kBaselines) {
    const BaselineResult result = baseline.run(h);
    EXPECT_TRUE(result.sides.empty()) << baseline.name;
    EXPECT_EQ(result.metrics.cut_weight, 0) << baseline.name;
    EXPECT_EQ(result.iterations, 0) << baseline.name;
    EXPECT_FALSE(result.metrics.proper) << baseline.name;
  }
}

TEST(Degenerate, OneVertexInstanceYieldsTrivialResult) {
  const Hypergraph h = vertices_only(1);
  for (const NamedBaseline& baseline : kBaselines) {
    const BaselineResult result = baseline.run(h);
    ASSERT_EQ(result.sides.size(), 1U) << baseline.name;
    EXPECT_EQ(result.sides[0], 0) << baseline.name;
    EXPECT_EQ(result.metrics.cut_weight, 0) << baseline.name;
    EXPECT_EQ(result.metrics.left_count, 1U) << baseline.name;
    EXPECT_EQ(result.iterations, 0) << baseline.name;
  }
}

TEST(Degenerate, OneVertexWithSelfNetYieldsTrivialResult) {
  HypergraphBuilder b;
  b.add_vertex();
  b.add_edge({0});
  const Hypergraph h = std::move(b).build();
  for (const NamedBaseline& baseline : kBaselines) {
    const BaselineResult result = baseline.run(h);
    ASSERT_EQ(result.sides.size(), 1U) << baseline.name;
    EXPECT_EQ(result.metrics.cut_weight, 0) << baseline.name;
  }
}

TEST(Degenerate, TwoVertexNoEdgeInstanceRunsNormally) {
  const Hypergraph h = vertices_only(2);
  for (const NamedBaseline& baseline : kBaselines) {
    const BaselineResult result = baseline.run(h);
    ASSERT_EQ(result.sides.size(), 2U) << baseline.name;
    EXPECT_EQ(result.metrics.cut_weight, 0) << baseline.name;
    EXPECT_TRUE(result.metrics.proper) << baseline.name;
  }
}

}  // namespace
}  // namespace fhp

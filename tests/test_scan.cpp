#include "hypergraph/scan.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "util/arena.hpp"
#include "util/error.hpp"
#include "util/mmap.hpp"

namespace fhp {
namespace {

std::vector<std::string> lines_of(std::string_view text, char comment) {
  ByteScanner scanner(text, comment);
  LineSpan line;
  std::vector<std::string> out;
  while (scanner.next(line)) out.emplace_back(line.view());
  return out;
}

TEST(ByteScannerTest, SplitsTrimsAndDropsBlanks) {
  const auto lines = lines_of("  a b \n\n\t\n c\nd", '%');
  ASSERT_EQ(lines.size(), 3U);
  EXPECT_EQ(lines[0], "a b");
  EXPECT_EQ(lines[1], "c");
  EXPECT_EQ(lines[2], "d");  // last line has no trailing newline
}

TEST(ByteScannerTest, StripsCommentsLikeLegacyParser) {
  const auto lines = lines_of("% full comment\n1 2 % trailing\n%\n3", '%');
  ASSERT_EQ(lines.size(), 2U);
  EXPECT_EQ(lines[0], "1 2");
  EXPECT_EQ(lines[1], "3");
}

TEST(ByteScannerTest, TrimsCarriageReturns) {
  const auto lines = lines_of("1 2\r\n3 4\r\n", '#');
  ASSERT_EQ(lines.size(), 2U);
  EXPECT_EQ(lines[0], "1 2");
  EXPECT_EQ(lines[1], "3 4");
}

TEST(ByteScannerTest, CountsContentLines) {
  ByteScanner scanner("a\n% c\n\nb\n", '%');
  LineSpan line;
  while (scanner.next(line)) {
  }
  EXPECT_EQ(scanner.content_lines(), 2U);
}

TEST(ByteScannerTest, EmptyInput) {
  ByteScanner scanner("", '%');
  LineSpan line;
  EXPECT_FALSE(scanner.next(line));
  EXPECT_EQ(scanner.content_lines(), 0U);
}

TEST(TokenScannerTest, SplitsOnRunsOfWhitespace) {
  ByteScanner lines("  a\t\tbb   ccc \n", '%');
  LineSpan line;
  ASSERT_TRUE(lines.next(line));
  EXPECT_EQ(count_tokens(line), 3U);
  TokenScanner tokens(line);
  std::string_view tok;
  ASSERT_TRUE(tokens.next(tok));
  EXPECT_EQ(tok, "a");
  ASSERT_TRUE(tokens.next(tok));
  EXPECT_EQ(tok, "bb");
  ASSERT_TRUE(tokens.next(tok));
  EXPECT_EQ(tok, "ccc");
  EXPECT_FALSE(tokens.next(tok));
}

// --- SWAR digit parsing --------------------------------------------------

std::uint64_t load_chunk(const char* digits) {
  std::uint64_t chunk = 0;
  std::memcpy(&chunk, digits, 8);
  return chunk;
}

TEST(SwarTest, EightDigitClassifier) {
  EXPECT_TRUE(is_made_of_eight_digits_fast(load_chunk("01234567")));
  EXPECT_TRUE(is_made_of_eight_digits_fast(load_chunk("99999999")));
  EXPECT_FALSE(is_made_of_eight_digits_fast(load_chunk("0123456a")));
  EXPECT_FALSE(is_made_of_eight_digits_fast(load_chunk("0123 567")));
  EXPECT_FALSE(is_made_of_eight_digits_fast(load_chunk("/1234567")));  // '0'-1
  EXPECT_FALSE(is_made_of_eight_digits_fast(load_chunk(":1234567")));  // '9'+1
}

TEST(SwarTest, EightDigitFoldMatchesScalarOracle) {
  // Deterministic xorshift sweep: the SWAR fold must agree with the
  // obvious digit-at-a-time loop on arbitrary 8-digit strings.
  std::uint64_t state = 0x9E3779B97F4A7C15ULL;
  for (int iter = 0; iter < 2000; ++iter) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    const std::uint32_t value = static_cast<std::uint32_t>(state % 100000000U);
    char digits[9];
    std::snprintf(digits, sizeof digits, "%08u", value);
    const std::uint64_t chunk = load_chunk(digits);
    ASSERT_TRUE(is_made_of_eight_digits_fast(chunk)) << digits;
    EXPECT_EQ(parse_eight_digits_unrolled(chunk), value) << digits;
  }
}

TEST(SwarTest, ParseU64Boundaries) {
  EXPECT_EQ(parse_u64("0", "t"), 0ULL);
  EXPECT_EQ(parse_u64("42", "t"), 42ULL);
  EXPECT_EQ(parse_u64("00000000000000000007", "t"), 7ULL);
  EXPECT_EQ(parse_u64("12345678", "t"), 12345678ULL);          // one SWAR block
  EXPECT_EQ(parse_u64("1234567890123456", "t"), 1234567890123456ULL);
  EXPECT_EQ(parse_u64("18446744073709551615", "t"),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_THROW((void)parse_u64("18446744073709551616", "t"), IoError);
  EXPECT_THROW((void)parse_u64("99999999999999999999", "t"), IoError);
  EXPECT_THROW((void)parse_u64("", "t"), IoError);
  EXPECT_THROW((void)parse_u64("12x", "t"), IoError);
  EXPECT_THROW((void)parse_u64("1234x678", "t"), IoError);  // inside a block
  EXPECT_THROW((void)parse_u64("-1", "t"), IoError);        // no signs here
}

TEST(SwarTest, ParseI64SignsAndBoundaries) {
  EXPECT_EQ(parse_i64("-5", "t"), -5);
  EXPECT_EQ(parse_i64("+5", "t"), 5);
  EXPECT_EQ(parse_i64("9223372036854775807", "t"),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(parse_i64("-9223372036854775808", "t"),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_THROW((void)parse_i64("9223372036854775808", "t"), IoError);
  EXPECT_THROW((void)parse_i64("-9223372036854775809", "t"), IoError);
  EXPECT_THROW((void)parse_i64("-", "t"), IoError);
  EXPECT_THROW((void)parse_i64("+", "t"), IoError);
}

// --- Arena ---------------------------------------------------------------

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena(64);
  const auto bytes = arena.alloc<char>(3);
  const auto doubles = arena.alloc<double>(4);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(doubles.data()) %
                alignof(double),
            0U);
  ASSERT_EQ(bytes.size(), 3U);
  ASSERT_EQ(doubles.size(), 4U);
  bytes[0] = 'x';
  doubles[0] = 1.5;
  EXPECT_EQ(bytes[0], 'x');
  EXPECT_EQ(doubles[0], 1.5);
}

TEST(ArenaTest, GrowsPastTheInitialBlock) {
  Arena arena(16);
  std::vector<std::span<std::uint64_t>> spans;
  for (int i = 0; i < 100; ++i) {
    auto s = arena.alloc<std::uint64_t>(32);
    s[0] = static_cast<std::uint64_t>(i);
    spans.push_back(s);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(spans[static_cast<std::size_t>(i)][0],
              static_cast<std::uint64_t>(i));
  }
  EXPECT_GE(arena.bytes_used(), 100U * 32U * sizeof(std::uint64_t));
}

TEST(ArenaTest, ResetReusesMemory) {
  Arena arena(1024);
  (void)arena.alloc<int>(100);
  const std::size_t used = arena.bytes_used();
  EXPECT_GE(used, 400U);
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0U);
  const auto again = arena.alloc<int>(100);
  ASSERT_EQ(again.size(), 100U);
}

TEST(ArenaTest, ZeroCountAllocation) {
  Arena arena;
  const auto empty = arena.alloc<int>(0);
  EXPECT_EQ(empty.size(), 0U);
}

// --- MappedFile ----------------------------------------------------------

class MappedFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "fhp_test_mmap";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string write_file(const std::string& name, const std::string& text) {
    const std::string path = (dir_ / name).string();
    std::ofstream out(path, std::ios::binary);
    out << text;
    return path;
  }
  std::filesystem::path dir_;
};

TEST_F(MappedFileTest, RoundTripsFileBytes) {
  const std::string text = "3 4\n1 2\n2 3 4\n1 4\n";
  const MappedFile file(write_file("a.hgr", text));
  EXPECT_EQ(file.size(), text.size());
  EXPECT_EQ(file.view(), text);
}

TEST_F(MappedFileTest, EmptyFileHasEmptyView) {
  const MappedFile file(write_file("empty.txt", ""));
  EXPECT_EQ(file.size(), 0U);
  EXPECT_TRUE(file.view().empty());
}

TEST_F(MappedFileTest, MissingFileThrowsIoError) {
  EXPECT_THROW(MappedFile((dir_ / "nope.hgr").string()), IoError);
}

TEST_F(MappedFileTest, DirectoryThrowsIoError) {
  EXPECT_THROW(MappedFile(dir_.string()), IoError);
}

TEST_F(MappedFileTest, MoveTransfersTheView) {
  const std::string text = "payload";
  MappedFile a(write_file("move.txt", text));
  const MappedFile b(std::move(a));
  EXPECT_EQ(b.view(), text);
}

}  // namespace
}  // namespace fhp

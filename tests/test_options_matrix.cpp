/// Exhaustive option-matrix sweep for Algorithm I: every combination of
/// completion strategy, initial-cut strategy, objective, threshold, and
/// balance flag must produce a valid, deterministic, proper partition on
/// instances from every generator family.
#include <gtest/gtest.h>

#include <sstream>
#include <tuple>

#include "core/algorithm1.hpp"
#include "gen/circuit.hpp"
#include "gen/grid.hpp"
#include "gen/random_hypergraph.hpp"
#include "hypergraph/bookshelf.hpp"
#include "hypergraph/io.hpp"
#include "test_helpers.hpp"

namespace fhp {
namespace {

class OptionsMatrix
    : public testing::TestWithParam<std::tuple<
          CompletionStrategy, InitialCutStrategy, Objective, std::uint32_t>> {
};

TEST_P(OptionsMatrix, ValidDeterministicProper) {
  const auto [completion, initial_cut, objective, threshold] = GetParam();
  const Hypergraph h =
      generate_circuit(table2_params(150, 260, Technology::kStandardCell), 7);

  Algorithm1Options options;
  options.completion = completion;
  options.initial_cut = initial_cut;
  options.objective = objective;
  options.large_edge_threshold = threshold;
  options.num_starts = 5;
  options.seed = 11;

  const Algorithm1Result a = algorithm1(h, options);
  ASSERT_EQ(a.sides.size(), h.num_vertices());
  EXPECT_TRUE(a.metrics.proper);
  EXPECT_EQ(a.metrics.cut_edges, test::count_cut_edges(h, a.sides));

  const Algorithm1Result b = algorithm1(h, options);
  EXPECT_EQ(a.sides, b.sides) << "nondeterministic under fixed seed";
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, OptionsMatrix,
    testing::Combine(
        testing::Values(CompletionStrategy::kGreedy,
                        CompletionStrategy::kWeightedGreedy,
                        CompletionStrategy::kExact),
        testing::Values(InitialCutStrategy::kBidirectionalBfs,
                        InitialCutStrategy::kLevelSweep),
        testing::Values(Objective::kCutsize, Objective::kQuotient),
        testing::Values<std::uint32_t>(0, 6, 10)));

// ---------------------------------------------------------------------
// I/O fuzz: every generated hypergraph survives an hMETIS round trip
// bit-exactly (structure and weights).
// ---------------------------------------------------------------------

class IoRoundTrip : public testing::TestWithParam<std::uint64_t> {};

TEST_P(IoRoundTrip, HmetisPreservesEverything) {
  const std::uint64_t seed = GetParam();
  RandomHypergraphParams params;
  params.num_vertices = 40;
  params.num_edges = 70;
  params.max_edge_size = 6;
  params.max_degree = 8;
  const Hypergraph h = random_hypergraph(params, seed);

  std::ostringstream out;
  write_hmetis(out, h);
  std::istringstream in(out.str());
  const Hypergraph back = read_hmetis(in);

  ASSERT_EQ(back.num_vertices(), h.num_vertices());
  ASSERT_EQ(back.num_edges(), h.num_edges());
  ASSERT_EQ(back.num_pins(), h.num_pins());
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    const auto a = h.pins(e);
    const auto b = back.pins(e);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
    EXPECT_EQ(back.edge_weight(e), h.edge_weight(e));
  }
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    EXPECT_EQ(back.vertex_weight(v), h.vertex_weight(v));
  }
}

TEST_P(IoRoundTrip, BookshelfPreservesConnectivity) {
  const std::uint64_t seed = GetParam();
  CircuitParams params = pcb_params(0.4);
  const Hypergraph h = generate_circuit(params, seed);

  BookshelfDesign design;
  design.netlist.hypergraph = h;
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    design.netlist.vertex_names.push_back("c" + std::to_string(v));
  }
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    design.netlist.edge_names.push_back("n" + std::to_string(e));
  }
  design.is_terminal.assign(h.num_vertices(), 0);

  std::ostringstream nodes_out;
  std::ostringstream nets_out;
  write_bookshelf(nodes_out, nets_out, design);
  std::istringstream nodes_in(nodes_out.str());
  std::istringstream nets_in(nets_out.str());
  const BookshelfDesign back = read_bookshelf(nodes_in, nets_in);

  ASSERT_EQ(back.netlist.hypergraph.num_vertices(), h.num_vertices());
  ASSERT_EQ(back.netlist.hypergraph.num_edges(), h.num_edges());
  ASSERT_EQ(back.netlist.hypergraph.num_pins(), h.num_pins());
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    EXPECT_EQ(back.netlist.hypergraph.vertex_weight(v), h.vertex_weight(v));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoRoundTrip,
                         testing::Values<std::uint64_t>(1, 2, 3, 4, 5, 6));

// ---------------------------------------------------------------------
// Generator-family coverage for the full driver: every family yields a
// valid partition for both initial-cut strategies.
// ---------------------------------------------------------------------

class FamilyCoverage : public testing::TestWithParam<int> {};

TEST_P(FamilyCoverage, EveryFamilyPartitions) {
  const int family = GetParam();
  Hypergraph h;
  switch (family) {
    case 0:
      h = grid_circuit({10, 10, 0.3, false}, 3);
      break;
    case 1:
      h = grid_circuit({8, 8, 0.0, true}, 3);
      break;
    case 2: {
      RandomHypergraphParams params;
      params.num_vertices = 90;
      params.num_edges = 140;
      h = random_hypergraph(params, 3);
      break;
    }
    case 3:
      h = generate_circuit(hybrid_params(1.0), 3);
      break;
    default:
      h = test::figure4_hypergraph();
  }
  for (InitialCutStrategy strategy :
       {InitialCutStrategy::kBidirectionalBfs,
        InitialCutStrategy::kLevelSweep}) {
    Algorithm1Options options;
    options.initial_cut = strategy;
    options.num_starts = 4;
    const Algorithm1Result r = algorithm1(h, options);
    EXPECT_TRUE(r.metrics.proper);
    EXPECT_EQ(r.metrics.cut_edges, test::count_cut_edges(h, r.sides));
  }
}

INSTANTIATE_TEST_SUITE_P(Families, FamilyCoverage,
                         testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace fhp

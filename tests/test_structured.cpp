#include "gen/structured.hpp"

#include <gtest/gtest.h>

#include "baselines/fm.hpp"
#include "core/algorithm1.hpp"
#include "core/intersection.hpp"
#include "graph/components.hpp"
#include "test_helpers.hpp"

namespace fhp {
namespace {

TEST(Adder, StructuralCounts) {
  const Hypergraph h = ripple_carry_adder(8);
  EXPECT_EQ(h.num_vertices(), 1U + 8U * 8U);  // cin pad + 8 slices
  EXPECT_EQ(h.num_edges(), 7U * 8U);
  h.validate();
  EXPECT_TRUE(is_connected(intersection_graph(h)));
}

TEST(Adder, BalancedCutIsTiny) {
  // Severing the carry chain in the middle cuts O(1) nets.
  const Hypergraph h = ripple_carry_adder(32);
  Algorithm1Options options;
  const Algorithm1Result r = algorithm1(h, options);
  EXPECT_LE(r.metrics.cut_edges, 4U);
  EXPECT_LE(r.metrics.cardinality_imbalance,
            h.num_vertices() / 4);
}

TEST(Adder, SingleBit) {
  const Hypergraph h = ripple_carry_adder(1);
  EXPECT_EQ(h.num_vertices(), 9U);
  EXPECT_EQ(h.num_edges(), 7U);
  h.validate();
}

TEST(Multiplier, StructuralCounts) {
  const std::uint32_t n = 6;
  const Hypergraph h = array_multiplier(n);
  EXPECT_EQ(h.num_vertices(), n * n + 2 * n);
  // Mesh: 2 * n * (n-1); broadcasts: 2n.
  EXPECT_EQ(h.num_edges(), 2 * n * (n - 1) + 2 * n);
  EXPECT_EQ(h.max_edge_size(), n + 1);
  h.validate();
}

TEST(Multiplier, BroadcastNetsAreTheLargeTail) {
  const Hypergraph h = array_multiplier(12);
  EdgeId big = 0;
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    if (h.edge_size(e) > 10) ++big;
  }
  EXPECT_EQ(big, 24U);  // exactly the 2n broadcasts
}

TEST(Multiplier, FilterThresholdHandlesBroadcasts) {
  // With the default threshold the broadcasts are ignored during
  // partitioning; the mesh structure still yields a near-geometric cut.
  const Hypergraph h = array_multiplier(10);
  Algorithm1Options options;  // threshold 10 < n+1 = 11
  const Algorithm1Result r = algorithm1(h, options);
  EXPECT_GT(r.filtered_edges, 0U);
  EXPECT_TRUE(r.metrics.proper);
  // Mesh floor is ~n cut forwarding nets, plus crossed broadcasts.
  EXPECT_LE(r.metrics.cut_edges, 40U);
}

TEST(Butterfly, StructuralCounts) {
  const Hypergraph h = butterfly_network(3, 3);
  EXPECT_EQ(h.num_vertices(), 4U * 8U);
  // Per stage: 8 straight + 8 cross = 16 nets.
  EXPECT_EQ(h.num_edges(), 3U * 16U);
  h.validate();
}

TEST(Butterfly, BisectionIsExpensive) {
  // Expander-ish connectivity: any near-balanced cut is Omega(rows); the
  // similarly sized adder cuts O(1). Use Algorithm I (near-balanced by
  // construction) for both.
  const Hypergraph butterfly = butterfly_network(4, 4);  // 80 modules
  const Hypergraph adder = ripple_carry_adder(10);       // 81 modules
  Algorithm1Options options;
  const Algorithm1Result bf = algorithm1(butterfly, options);
  const Algorithm1Result ad = algorithm1(adder, options);
  EXPECT_GE(bf.metrics.cut_edges, 10U);  // ~rows = 16 is the true width
  EXPECT_LE(ad.metrics.cut_edges, 4U);
}

TEST(HTree, StructuralCounts) {
  const Hypergraph h = h_tree(4);
  EXPECT_EQ(h.num_vertices(), 15U);
  EXPECT_EQ(h.num_edges(), 7U);  // one net per internal node
  h.validate();
}

TEST(HTree, CutOneAchievable) {
  const Hypergraph h = h_tree(7);  // 127 modules
  Algorithm1Options options;
  options.num_starts = 50;
  const Algorithm1Result r = algorithm1(h, options);
  // Cutting one child net splits off a subtree of ~63 or ~31 modules.
  EXPECT_LE(r.metrics.cut_edges, 2U);
}

TEST(Structured, Preconditions) {
  EXPECT_THROW((void)ripple_carry_adder(0), PreconditionError);
  EXPECT_THROW((void)array_multiplier(1), PreconditionError);
  EXPECT_THROW((void)butterfly_network(0, 1), PreconditionError);
  EXPECT_THROW((void)butterfly_network(2, 0), PreconditionError);
  EXPECT_THROW((void)h_tree(1), PreconditionError);
}

}  // namespace
}  // namespace fhp

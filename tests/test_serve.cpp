/// Serving layer (src/serve): wire protocol hostile-input policy (typed
/// failure BEFORE size-proportional allocation), request/response JSON
/// round-trips, result-cache LRU/byte-budget/counter semantics, the
/// deadline -> start-budget mapping as a pure function, scheduler
/// admission control and single-flight coalescing, and end-to-end daemon
/// round-trips over a real unix socket (including concurrent clients and
/// a malformed request that must not kill the connection).
///
/// Every fixture name starts with "Serve" so CI's TSAN job picks these up
/// alongside the other concurrency suites.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gen/planted.hpp"
#include "hypergraph/io.hpp"
#include "serve/cache.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"
#include "util/json.hpp"

namespace fhp {
namespace {

using serve::CacheKey;
using serve::FrameDecoder;
using serve::FrameLimits;
using serve::ProtocolError;

/// Unique socket path per test (unix socket paths are capped at ~108
/// bytes, so these live directly in the temp root).
std::string test_socket_path() {
  static std::atomic<int> counter{0};
  return (std::filesystem::temp_directory_path() /
          ("fhp_test_serve_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1)) + ".sock"))
      .string();
}

/// Small deterministic instance; distinct seeds give distinct
/// fingerprints.
Hypergraph small_instance(std::uint64_t seed) {
  PlantedParams params;
  params.num_vertices = 60;
  params.num_edges = 90;
  params.planted_cut = 4;
  return planted_instance(params, seed).hypergraph;
}

std::string hmetis_text(const Hypergraph& h) {
  std::ostringstream out;
  write_hmetis(out, h);
  return std::move(out).str();
}

// ---------------------------------------------------------------------------
// Protocol framing
// ---------------------------------------------------------------------------

TEST(ServeProtocol, FrameEncodeDecodeRoundTrip) {
  const std::string payload = R"({"op": "ping", "id": 7})";
  const std::string frame = serve::encode_frame(payload);
  ASSERT_EQ(frame.size(), serve::kFrameHeaderBytes + payload.size());
  FrameDecoder decoder;
  // Feed byte-by-byte: the decoder must reassemble across arbitrary
  // chunking.
  for (const char c : frame) decoder.feed(std::string_view(&c, 1));
  const auto out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload);
  EXPECT_FALSE(decoder.next().has_value());
  decoder.finish();  // clean boundary: no throw
}

TEST(ServeProtocol, OversizedHeaderFailsBeforeAllocation) {
  // A forged 4 GiB length prefix must cost a typed error after 4 header
  // bytes — never a buffer sized to the claim.
  FrameDecoder decoder(FrameLimits{1 << 20});
  const unsigned char hostile[4] = {0xff, 0xff, 0xff, 0xff};
  // feed() validates the header the moment its 4 bytes are visible.
  EXPECT_THROW(decoder.feed(std::string_view(
                   reinterpret_cast<const char*>(hostile), 4)),
               ProtocolError);
  // The no-allocation policy, observable: only the 4 header bytes were
  // ever buffered.
  EXPECT_LE(decoder.buffered_bytes(), serve::kFrameHeaderBytes);
}

TEST(ServeProtocol, HeaderValidatedAsSoonAsVisible) {
  // The hostile header is rejected even when payload bytes follow it in
  // the same chunk — feed() must not buffer past a bad header.
  FrameDecoder decoder(FrameLimits{64});
  std::string chunk;
  const unsigned char hostile[4] = {0xff, 0xff, 0xff, 0x7f};
  chunk.assign(reinterpret_cast<const char*>(hostile), 4);
  chunk += std::string(256, 'x');
  EXPECT_THROW(decoder.feed(chunk), ProtocolError);
  EXPECT_LE(decoder.buffered_bytes(), serve::kFrameHeaderBytes);
}

TEST(ServeProtocol, ZeroLengthFrameRejected) {
  FrameDecoder decoder;
  EXPECT_THROW(decoder.feed(std::string_view("\0\0\0\0", 4)),
               ProtocolError);
}

TEST(ServeProtocol, TruncatedStreamFailsTyped) {
  // Peer dies mid-payload: finish() must throw, not silently drop bytes.
  const std::string frame = serve::encode_frame("{\"op\": \"ping\"}");
  FrameDecoder decoder;
  decoder.feed(std::string_view(frame).substr(0, frame.size() - 3));
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_THROW(decoder.finish(), ProtocolError);
}

TEST(ServeProtocol, EncodeRejectsOversizedAndEmptyPayloads) {
  EXPECT_THROW(static_cast<void>(serve::encode_frame("")), ProtocolError);
  const FrameLimits tiny{16};
  EXPECT_THROW(
      static_cast<void>(serve::encode_frame(std::string(17, 'x'), tiny)),
      ProtocolError);
}

TEST(ServeProtocol, GarbageJsonPayloadFailsTyped) {
  EXPECT_THROW(static_cast<void>(serve::parse_request("{oops")),
               ProtocolError);
  EXPECT_THROW(static_cast<void>(serve::parse_request("[1, 2, 3]")),
               ProtocolError);
  EXPECT_THROW(
      static_cast<void>(serve::parse_request(R"({"op": "conquer"})")),
      ProtocolError);
  EXPECT_THROW(static_cast<void>(serve::parse_response("not json")),
               ProtocolError);
}

TEST(ServeProtocol, RequestJsonRoundTrip) {
  serve::Request request;
  request.op = serve::Request::Op::kPartition;
  request.id = 42;
  request.hypergraph = "3 4\n1 2\n2 3\n3 4\n";
  request.options.seed = 9;
  request.options.starts = 17;
  request.options.engine = ml::EngineChoice::kMultilevel;
  request.options.refiner = ml::RefinerChoice::kFlowFm;
  request.options.deadline_us = 1234;
  request.options.assume_start_cost_us = 55;

  const serve::Request parsed = serve::parse_request(to_json(request));
  EXPECT_EQ(parsed.op, serve::Request::Op::kPartition);
  EXPECT_EQ(parsed.id, 42);
  EXPECT_EQ(parsed.hypergraph, request.hypergraph);
  EXPECT_EQ(parsed.options.seed, 9U);
  EXPECT_EQ(parsed.options.starts, 17);
  EXPECT_EQ(parsed.options.engine, ml::EngineChoice::kMultilevel);
  EXPECT_EQ(parsed.options.refiner, ml::RefinerChoice::kFlowFm);
  EXPECT_EQ(parsed.options.deadline_us, 1234);
  EXPECT_EQ(parsed.options.assume_start_cost_us, 55);
}

TEST(ServeProtocol, ResponseJsonRoundTrip) {
  serve::Response response;
  response.id = 7;
  response.status = "ok";
  response.engine = "multilevel";
  response.levels = 3;
  response.cached = true;
  response.degraded = true;
  response.starts_used = 5;
  response.latency_us = 987;
  response.cut_weight = 12;
  response.cut_edges = 11;
  response.sides = {0, 1, 1, 0};
  response.stats_json = R"({"cache": {"hits": 3}})";

  const serve::Response parsed = serve::parse_response(to_json(response));
  EXPECT_EQ(parsed.id, 7);
  EXPECT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.engine, "multilevel");
  EXPECT_EQ(parsed.levels, 3);
  EXPECT_TRUE(parsed.cached);
  EXPECT_TRUE(parsed.degraded);
  EXPECT_EQ(parsed.starts_used, 5);
  EXPECT_EQ(parsed.latency_us, 987);
  EXPECT_EQ(parsed.cut_weight, 12);
  EXPECT_EQ(parsed.cut_edges, 11U);
  EXPECT_EQ(parsed.sides, response.sides);
  // stats round-trips as an equivalent document (formatting may differ).
  EXPECT_EQ(json::dump(json::parse(parsed.stats_json)),
            json::dump(json::parse(response.stats_json)));
}

// ---------------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------------

ml::EngineResult result_with_sides(std::size_t n, std::uint8_t fill) {
  ml::EngineResult r;
  r.sides.assign(n, fill);
  return r;
}

CacheKey key_of(std::uint64_t a, std::uint64_t config) {
  return CacheKey{Hypergraph::Fingerprint{a, ~a}, config};
}

TEST(ServeCache, HitMissCountersAndRoundTrip) {
  serve::ResultCache cache(1 << 20);
  const CacheKey key = key_of(1, 2);
  EXPECT_FALSE(cache.lookup(key).has_value());
  // lookup() does not count the miss; admission does (scheduler.cpp).
  cache.note_miss();
  cache.insert(key, result_with_sides(8, 1));
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->sides, std::vector<std::uint8_t>(8, 1));
  const serve::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1U);
  EXPECT_EQ(stats.misses, 1U);
  EXPECT_EQ(stats.entries, 1U);
}

TEST(ServeCache, EvictsLeastRecentlyUsedByBytes) {
  // Each entry costs sides.size() + 256 bytes; budget fits two entries of
  // 100 sides but not three.
  serve::ResultCache cache(2 * (100 + 256));
  cache.insert(key_of(1, 0), result_with_sides(100, 0));
  cache.insert(key_of(2, 0), result_with_sides(100, 0));
  // Touch key 1 so key 2 becomes the LRU victim.
  ASSERT_TRUE(cache.lookup(key_of(1, 0)).has_value());
  cache.insert(key_of(3, 0), result_with_sides(100, 0));
  EXPECT_TRUE(cache.lookup(key_of(1, 0)).has_value());
  EXPECT_FALSE(cache.lookup(key_of(2, 0)).has_value());
  EXPECT_TRUE(cache.lookup(key_of(3, 0)).has_value());
  const serve::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1U);
  EXPECT_EQ(stats.entries, 2U);
  EXPECT_LE(stats.resident_bytes, 2U * (100 + 256));
}

TEST(ServeCache, OverBudgetEntryAndZeroBudgetAreDropped) {
  serve::ResultCache tiny(64);
  tiny.insert(key_of(1, 0), result_with_sides(100, 0));  // 356 bytes > 64
  EXPECT_FALSE(tiny.lookup(key_of(1, 0)).has_value());
  EXPECT_EQ(tiny.stats().entries, 0U);

  serve::ResultCache disabled(0);
  disabled.insert(key_of(1, 0), result_with_sides(1, 0));
  EXPECT_FALSE(disabled.lookup(key_of(1, 0)).has_value());
}

TEST(ServeCache, ConfigHashSeparatesEveryKnob) {
  const std::uint64_t base = serve::config_hash(
      1, 50, ml::EngineChoice::kAuto, ml::RefinerChoice::kFm);
  EXPECT_NE(base, serve::config_hash(2, 50, ml::EngineChoice::kAuto,
                                     ml::RefinerChoice::kFm));
  EXPECT_NE(base, serve::config_hash(1, 51, ml::EngineChoice::kAuto,
                                     ml::RefinerChoice::kFm));
  EXPECT_NE(base, serve::config_hash(1, 50, ml::EngineChoice::kFlat,
                                     ml::RefinerChoice::kFm));
  EXPECT_NE(base, serve::config_hash(1, 50, ml::EngineChoice::kAuto,
                                     ml::RefinerChoice::kFlowFm));
}

// ---------------------------------------------------------------------------
// Deadline mapping + plan construction (pure functions)
// ---------------------------------------------------------------------------

TEST(ServeScheduler, MapDeadlineZeroMeansFullBudget) {
  const serve::BudgetDecision d = serve::map_deadline(50, 0, 500);
  EXPECT_EQ(d.effective_starts, 50);
  EXPECT_FALSE(d.degraded);
}

TEST(ServeScheduler, MapDeadlineTruncatesAndFlags) {
  // Half of 50 ms at 5 ms/start affords 5 of the requested 50 starts.
  const serve::BudgetDecision d = serve::map_deadline(50, 50'000, 5'000);
  EXPECT_EQ(d.effective_starts, 5);
  EXPECT_TRUE(d.degraded);
}

TEST(ServeScheduler, MapDeadlineClampsToOneStartAndToRequest) {
  // A deadline too tight for even one start still runs one (degrade
  // quality, never return nothing).
  const serve::BudgetDecision floor = serve::map_deadline(50, 10, 5'000);
  EXPECT_EQ(floor.effective_starts, 1);
  EXPECT_TRUE(floor.degraded);
  // A generous deadline never exceeds the requested budget.
  const serve::BudgetDecision roomy =
      serve::map_deadline(8, 10'000'000, 10);
  EXPECT_EQ(roomy.effective_starts, 8);
  EXPECT_FALSE(roomy.degraded);
}

TEST(ServeScheduler, MakePlanDropsFlowRefinementWhenDegraded) {
  serve::RequestOptions options;
  options.seed = 3;
  options.starts = 50;
  options.refiner = ml::RefinerChoice::kFlowFm;
  const ml::PartitionPlan full =
      serve::make_plan(options, serve::BudgetDecision{50, false});
  EXPECT_EQ(full.refiner, ml::RefinerChoice::kFlowFm);
  EXPECT_EQ(full.algorithm1.num_starts, 50);
  EXPECT_EQ(full.algorithm1.seed, 3U);
  const ml::PartitionPlan degraded =
      serve::make_plan(options, serve::BudgetDecision{5, true});
  EXPECT_EQ(degraded.refiner, ml::RefinerChoice::kFm);
  EXPECT_EQ(degraded.algorithm1.num_starts, 5);
}

// ---------------------------------------------------------------------------
// Scheduler behavior
// ---------------------------------------------------------------------------

TEST(ServeSchedulerRun, ComputesCachesAndServesHits) {
  serve::SchedulerOptions options;
  options.threads = 2;
  serve::Scheduler scheduler(options);
  const Hypergraph h = small_instance(1);
  serve::RequestOptions request;
  request.starts = 8;

  Hypergraph first = h;
  const serve::ScheduleResult cold =
      scheduler.partition(std::move(first), request);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold.cached);
  Hypergraph second = h;
  const serve::ScheduleResult hot =
      scheduler.partition(std::move(second), request);
  ASSERT_TRUE(hot.ok());
  EXPECT_TRUE(hot.cached);
  EXPECT_EQ(hot.sides, cold.sides);
  EXPECT_EQ(hot.metrics.cut_weight, cold.metrics.cut_weight);

  const json::Value stats = json::parse(scheduler.stats_json());
  EXPECT_DOUBLE_EQ(stats.find_path({"cache", "hits"})->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(stats.find_path({"cache", "misses"})->as_number(), 1.0);
}

TEST(ServeSchedulerRun, QueueFullRejectsTyped) {
  serve::SchedulerOptions options;
  options.threads = 1;
  options.max_queue = 2;
  serve::Scheduler scheduler(options);
  scheduler.pause();  // admit but never dispatch: queue depth is exact

  std::vector<std::thread> submitters;
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    submitters.emplace_back([&scheduler, seed] {
      serve::RequestOptions request;
      request.starts = 2;
      const serve::ScheduleResult r =
          scheduler.partition(small_instance(seed), request);
      EXPECT_TRUE(r.ok());
    });
  }
  // Wait until both jobs occupy the queue.
  for (;;) {
    const json::Value stats = json::parse(scheduler.stats_json());
    if (stats.find_path({"queue", "depth"})->as_number() >= 2.0) break;
    std::this_thread::yield();
  }
  serve::RequestOptions request;
  request.starts = 2;
  const serve::ScheduleResult rejected =
      scheduler.partition(small_instance(3), request);
  EXPECT_EQ(rejected.status, "rejected");
  EXPECT_NE(rejected.error.find("queue full"), std::string::npos);

  scheduler.resume();
  for (std::thread& t : submitters) t.join();
}

TEST(ServeSchedulerRun, SingleFlightCoalescesIdenticalRequests) {
  serve::SchedulerOptions options;
  options.threads = 2;
  serve::Scheduler scheduler(options);
  scheduler.pause();  // hold the leader in the queue while followers pile on

  const Hypergraph h = small_instance(5);
  constexpr int kWaiters = 4;
  std::vector<serve::ScheduleResult> results(kWaiters);
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&, i] {
      serve::RequestOptions request;
      request.starts = 4;
      Hypergraph copy = h;
      results[static_cast<std::size_t>(i)] =
          scheduler.partition(std::move(copy), request);
    });
  }
  // All four must be admitted (1 queued leader + 3 coalesced) before the
  // dispatcher runs, so exactly one execution is provable afterwards.
  for (;;) {
    const json::Value stats = json::parse(scheduler.stats_json());
    if (stats.find_path({"requests", "total"})->as_number() >=
        static_cast<double>(kWaiters)) {
      break;
    }
    std::this_thread::yield();
  }
  scheduler.resume();
  for (std::thread& t : waiters) t.join();

  int computed = 0;
  for (const serve::ScheduleResult& r : results) {
    ASSERT_TRUE(r.ok());
    if (!r.cached) ++computed;
    EXPECT_EQ(r.sides, results[0].sides);
  }
  EXPECT_EQ(computed, 1);
  const json::Value stats = json::parse(scheduler.stats_json());
  EXPECT_DOUBLE_EQ(stats.find_path({"cache", "misses"})->as_number(), 1.0);
  // Every follower lands as a hit whether it coalesced onto the flight or
  // arrived after completion and hit the cache — the split between the
  // two is timing-dependent, the sum is not.
  EXPECT_DOUBLE_EQ(stats.find_path({"cache", "hits"})->as_number(),
                   static_cast<double>(kWaiters - 1));
  EXPECT_LE(stats.find_path({"requests", "coalesced"})->as_number(),
            static_cast<double>(kWaiters - 1));
}

TEST(ServeSchedulerRun, StopRejectsQueuedJobs) {
  serve::SchedulerOptions options;
  options.threads = 1;
  serve::Scheduler scheduler(options);
  scheduler.pause();
  std::thread submitter([&scheduler] {
    serve::RequestOptions request;
    request.starts = 2;
    const serve::ScheduleResult r =
        scheduler.partition(small_instance(9), request);
    EXPECT_EQ(r.status, "rejected");
    EXPECT_NE(r.error.find("shutting down"), std::string::npos);
  });
  for (;;) {
    const json::Value stats = json::parse(scheduler.stats_json());
    if (stats.find_path({"queue", "depth"})->as_number() >= 1.0) break;
    std::this_thread::yield();
  }
  scheduler.stop();
  submitter.join();
}

TEST(ServeSchedulerRun, DeadlineRequestsBypassCacheAndDegrade) {
  serve::SchedulerOptions options;
  options.threads = 1;
  serve::Scheduler scheduler(options);
  const Hypergraph h = small_instance(11);
  serve::RequestOptions request;
  request.starts = 40;
  request.deadline_us = 10'000;
  request.assume_start_cost_us = 1'000;  // affords (10000/2)/1000 = 5 starts

  Hypergraph first = h;
  const serve::ScheduleResult a =
      scheduler.partition(std::move(first), request);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a.degraded);
  EXPECT_FALSE(a.cached);
  EXPECT_EQ(a.starts_used, 5);
  // The identical deadline request recomputes: degraded answers are never
  // cached and never coalesce.
  Hypergraph second = h;
  const serve::ScheduleResult b =
      scheduler.partition(std::move(second), request);
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(b.cached);
  EXPECT_EQ(b.sides, a.sides);  // pure function of the request
  const json::Value stats = json::parse(scheduler.stats_json());
  EXPECT_DOUBLE_EQ(stats.find_path({"cache", "misses"})->as_number(), 0.0);
  EXPECT_DOUBLE_EQ(stats.find_path({"requests", "degraded"})->as_number(),
                   2.0);
}

// ---------------------------------------------------------------------------
// End-to-end over a real socket
// ---------------------------------------------------------------------------

TEST(ServeEndToEnd, PingPartitionCacheStatsShutdown) {
  serve::ServerOptions options;
  options.socket_path = test_socket_path();
  options.scheduler.threads = 2;
  serve::Server server(options);
  server.start();

  serve::Client client;
  client.connect(options.socket_path);
  EXPECT_TRUE(client.ping().ok());

  const Hypergraph h = small_instance(21);
  const std::string text = hmetis_text(h);
  serve::RequestOptions request;
  request.starts = 8;
  const serve::Response cold = client.partition(text, request);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold.cached);
  EXPECT_EQ(cold.sides.size(), h.num_vertices());

  const serve::Response hot = client.partition(text, request);
  ASSERT_TRUE(hot.ok());
  EXPECT_TRUE(hot.cached);
  EXPECT_EQ(hot.sides, cold.sides);
  EXPECT_EQ(hot.cut_weight, cold.cut_weight);

  const serve::Response stats = client.stats();
  ASSERT_TRUE(stats.ok());
  const json::Value doc = json::parse(stats.stats_json);
  EXPECT_DOUBLE_EQ(doc.find_path({"cache", "hits"})->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(doc.find_path({"cache", "misses"})->as_number(), 1.0);

  EXPECT_TRUE(client.shutdown_server().ok());
  server.wait();  // returns once the shutdown request lands
  EXPECT_FALSE(std::filesystem::exists(options.socket_path));
}

TEST(ServeEndToEnd, MalformedRequestKeepsTheConnection) {
  serve::ServerOptions options;
  options.socket_path = test_socket_path();
  options.scheduler.threads = 1;
  serve::Server server(options);
  server.start();

  // Raw socket: the Client refuses to send garbage, so speak the framing
  // layer directly.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, options.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  serve::write_frame(fd, "this is not json");
  const auto error_payload = serve::read_frame(fd);
  ASSERT_TRUE(error_payload.has_value());
  const serve::Response error = serve::parse_response(*error_payload);
  EXPECT_EQ(error.status, "error");
  EXPECT_FALSE(error.error.empty());

  // Same connection still serves valid requests.
  serve::Request ping;
  ping.op = serve::Request::Op::kPing;
  ping.id = 5;
  serve::write_frame(fd, serve::to_json(ping));
  const auto pong_payload = serve::read_frame(fd);
  ASSERT_TRUE(pong_payload.has_value());
  const serve::Response pong = serve::parse_response(*pong_payload);
  EXPECT_TRUE(pong.ok());
  EXPECT_EQ(pong.id, 5);
  ::close(fd);

  server.shutdown();
}

TEST(ServeEndToEnd, BadNetlistReturnsTypedErrorNotCrash) {
  serve::ServerOptions options;
  options.socket_path = test_socket_path();
  options.scheduler.threads = 1;
  serve::Server server(options);
  server.start();

  serve::Client client;
  client.connect(options.socket_path);
  const serve::Response bad =
      client.partition("definitely not hmetis\n", {});
  EXPECT_EQ(bad.status, "error");
  EXPECT_FALSE(bad.error.empty());
  // The daemon survives and keeps serving.
  EXPECT_TRUE(client.ping().ok());
  server.shutdown();
}

TEST(ServeEndToEnd, ConcurrentClientsGetConsistentAnswers) {
  serve::ServerOptions options;
  options.socket_path = test_socket_path();
  options.scheduler.threads = 2;
  options.scheduler.max_queue = 64;
  serve::Server server(options);
  server.start();

  const Hypergraph shared = small_instance(31);
  const std::string shared_text = hmetis_text(shared);
  constexpr int kClients = 4;
  constexpr int kRequestsEach = 3;
  std::vector<std::vector<serve::Response>> responses(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      serve::Client client;
      client.connect(options.socket_path);
      for (int i = 0; i < kRequestsEach; ++i) {
        serve::RequestOptions request;
        request.starts = 6;
        responses[static_cast<std::size_t>(c)].push_back(
            client.partition(shared_text, request));
      }
    });
  }
  for (std::thread& t : clients) t.join();

  const serve::Response& reference = responses[0][0];
  ASSERT_TRUE(reference.ok());
  for (const auto& per_client : responses) {
    for (const serve::Response& r : per_client) {
      ASSERT_TRUE(r.ok());
      // Identical requests must get bit-identical answers no matter which
      // connection computed, coalesced, or hit the cache.
      EXPECT_EQ(r.sides, reference.sides);
      EXPECT_EQ(r.cut_weight, reference.cut_weight);
    }
  }
  server.shutdown();
}

}  // namespace
}  // namespace fhp

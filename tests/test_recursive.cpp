#include "core/recursive.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/circuit.hpp"
#include "test_helpers.hpp"

namespace fhp {
namespace {

TEST(Recursive, OnePartIsTrivial) {
  const Hypergraph h = test::path_hypergraph(10);
  const KWayResult r = recursive_partition(h, 1);
  EXPECT_EQ(r.cut_edges, 0U);
  for (std::uint32_t part : r.part) EXPECT_EQ(part, 0U);
}

TEST(Recursive, TwoPartsMatchesBipartition) {
  const Hypergraph h = test::path_hypergraph(16);
  const KWayResult r = recursive_partition(h, 2);
  EXPECT_EQ(r.cut_edges, 1U);
  for (std::uint32_t part : r.part) EXPECT_LT(part, 2U);
}

TEST(Recursive, FourWayOnChain) {
  const Hypergraph h = test::path_hypergraph(32);
  const KWayResult r = recursive_partition(h, 4);
  EXPECT_LE(r.cut_edges, 3U);
  // All four parts used.
  std::vector<int> used(4, 0);
  for (std::uint32_t part : r.part) {
    ASSERT_LT(part, 4U);
    used[part] = 1;
  }
  EXPECT_EQ(used[0] + used[1] + used[2] + used[3], 4);
}

TEST(Recursive, OddPartCount) {
  const Hypergraph h = test::path_hypergraph(30);
  const KWayResult r = recursive_partition(h, 3);
  std::vector<VertexId> counts(3, 0);
  for (std::uint32_t part : r.part) {
    ASSERT_LT(part, 3U);
    ++counts[part];
  }
  for (VertexId c : counts) EXPECT_GT(c, 0U);
  EXPECT_LE(r.cut_edges, 2U);
}

TEST(Recursive, PartsEqualVerticesIsSingletons) {
  const Hypergraph h = test::path_hypergraph(6);
  const KWayResult r = recursive_partition(h, 6);
  std::vector<int> seen(6, 0);
  for (std::uint32_t part : r.part) ++seen[part];
  for (int c : seen) EXPECT_EQ(c, 1);
  EXPECT_EQ(r.cut_edges, h.num_edges());
}

TEST(Recursive, Preconditions) {
  const Hypergraph h = test::path_hypergraph(4);
  EXPECT_THROW((void)recursive_partition(h, 0), PreconditionError);
  EXPECT_THROW((void)recursive_partition(h, 5), PreconditionError);
}

TEST(Recursive, WeightsReportedCorrectly) {
  const Hypergraph h =
      generate_circuit(table2_params(80, 140, Technology::kPcb), 3);
  const KWayResult r = recursive_partition(h, 4);
  std::vector<Weight> weights(4, 0);
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    weights[r.part[v]] += h.vertex_weight(v);
  }
  EXPECT_EQ(*std::max_element(weights.begin(), weights.end()),
            r.max_part_weight);
  EXPECT_EQ(*std::min_element(weights.begin(), weights.end()),
            r.min_part_weight);
}

TEST(Recursive, KWayCutMatchesManualCount) {
  const Hypergraph h =
      generate_circuit(table2_params(60, 110, Technology::kGateArray), 9);
  const KWayResult r = recursive_partition(h, 4);
  EdgeId manual = 0;
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    bool spans = false;
    const auto pins = h.pins(e);
    for (VertexId v : pins) {
      if (r.part[v] != r.part[pins.front()]) spans = true;
    }
    if (spans) ++manual;
  }
  EXPECT_EQ(r.cut_edges, manual);
}

TEST(Recursive, RebalanceTightensPartWeights) {
  const Hypergraph h = generate_circuit(
      table2_params(400, 700, Technology::kStandardCell), 13);
  Algorithm1Options base;
  base.seed = 7;
  const KWayResult raw = recursive_partition(h, 4, base);
  RecursiveOptions balanced;
  balanced.algorithm1 = base;
  balanced.rebalance = true;
  balanced.balance_tolerance = 0.08;
  const KWayResult even = recursive_partition(h, 4, balanced);
  const Weight raw_spread = raw.max_part_weight - raw.min_part_weight;
  const Weight even_spread = even.max_part_weight - even.min_part_weight;
  EXPECT_LE(even_spread, raw_spread);
  // Within ~2x of the ideal quarter share on each side of the target.
  EXPECT_LT(static_cast<double>(even.max_part_weight),
            0.5 * static_cast<double>(h.total_vertex_weight()));
}

TEST(Recursive, RebalanceKeepsValidParts) {
  const Hypergraph h = test::path_hypergraph(64);
  RecursiveOptions options;
  options.rebalance = true;
  const KWayResult r = recursive_partition(h, 8, options);
  std::vector<VertexId> counts(8, 0);
  for (std::uint32_t part : r.part) {
    ASSERT_LT(part, 8U);
    ++counts[part];
  }
  for (VertexId c : counts) EXPECT_GT(c, 2U);
  EXPECT_EQ(r.cut_edges, kway_cut_edges(h, r.part));
}

TEST(Recursive, DeterministicForSeed) {
  const Hypergraph h =
      generate_circuit(table2_params(90, 160, Technology::kStandardCell), 21);
  Algorithm1Options options;
  options.seed = 4;
  const KWayResult a = recursive_partition(h, 4, options);
  const KWayResult b = recursive_partition(h, 4, options);
  EXPECT_EQ(a.part, b.part);
}

}  // namespace
}  // namespace fhp

#include "core/recursive.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "gen/circuit.hpp"
#include "partition/partition.hpp"
#include "test_helpers.hpp"

namespace fhp {
namespace {

TEST(Recursive, OnePartIsTrivial) {
  const Hypergraph h = test::path_hypergraph(10);
  const KWayResult r = recursive_partition(h, 1);
  EXPECT_EQ(r.cut_edges, 0U);
  for (std::uint32_t part : r.part) EXPECT_EQ(part, 0U);
}

TEST(Recursive, TwoPartsMatchesBipartition) {
  const Hypergraph h = test::path_hypergraph(16);
  const KWayResult r = recursive_partition(h, 2);
  EXPECT_EQ(r.cut_edges, 1U);
  for (std::uint32_t part : r.part) EXPECT_LT(part, 2U);
}

TEST(Recursive, FourWayOnChain) {
  const Hypergraph h = test::path_hypergraph(32);
  const KWayResult r = recursive_partition(h, 4);
  EXPECT_LE(r.cut_edges, 3U);
  // All four parts used.
  std::vector<int> used(4, 0);
  for (std::uint32_t part : r.part) {
    ASSERT_LT(part, 4U);
    used[part] = 1;
  }
  EXPECT_EQ(used[0] + used[1] + used[2] + used[3], 4);
}

TEST(Recursive, OddPartCount) {
  const Hypergraph h = test::path_hypergraph(30);
  const KWayResult r = recursive_partition(h, 3);
  std::vector<VertexId> counts(3, 0);
  for (std::uint32_t part : r.part) {
    ASSERT_LT(part, 3U);
    ++counts[part];
  }
  for (VertexId c : counts) EXPECT_GT(c, 0U);
  EXPECT_LE(r.cut_edges, 2U);
}

TEST(Recursive, PartsEqualVerticesIsSingletons) {
  const Hypergraph h = test::path_hypergraph(6);
  const KWayResult r = recursive_partition(h, 6);
  std::vector<int> seen(6, 0);
  for (std::uint32_t part : r.part) ++seen[part];
  for (int c : seen) EXPECT_EQ(c, 1);
  EXPECT_EQ(r.cut_edges, h.num_edges());
}

TEST(Recursive, Preconditions) {
  const Hypergraph h = test::path_hypergraph(4);
  EXPECT_THROW((void)recursive_partition(h, 0), PreconditionError);
  EXPECT_THROW((void)recursive_partition(h, 5), PreconditionError);
}

TEST(Recursive, WeightsReportedCorrectly) {
  const Hypergraph h =
      generate_circuit(table2_params(80, 140, Technology::kPcb), 3);
  const KWayResult r = recursive_partition(h, 4);
  std::vector<Weight> weights(4, 0);
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    weights[r.part[v]] += h.vertex_weight(v);
  }
  EXPECT_EQ(*std::max_element(weights.begin(), weights.end()),
            r.max_part_weight);
  EXPECT_EQ(*std::min_element(weights.begin(), weights.end()),
            r.min_part_weight);
}

TEST(Recursive, KWayCutMatchesManualCount) {
  const Hypergraph h =
      generate_circuit(table2_params(60, 110, Technology::kGateArray), 9);
  const KWayResult r = recursive_partition(h, 4);
  EdgeId manual = 0;
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    bool spans = false;
    const auto pins = h.pins(e);
    for (VertexId v : pins) {
      if (r.part[v] != r.part[pins.front()]) spans = true;
    }
    if (spans) ++manual;
  }
  EXPECT_EQ(r.cut_edges, manual);
}

TEST(Recursive, RebalanceTightensPartWeights) {
  const Hypergraph h = generate_circuit(
      table2_params(400, 700, Technology::kStandardCell), 13);
  Algorithm1Options base;
  base.seed = 7;
  const KWayResult raw = recursive_partition(h, 4, base);
  RecursiveOptions balanced;
  balanced.algorithm1 = base;
  balanced.rebalance = true;
  balanced.balance_tolerance = 0.08;
  const KWayResult even = recursive_partition(h, 4, balanced);
  const Weight raw_spread = raw.max_part_weight - raw.min_part_weight;
  const Weight even_spread = even.max_part_weight - even.min_part_weight;
  EXPECT_LE(even_spread, raw_spread);
  // Within ~2x of the ideal quarter share on each side of the target.
  EXPECT_LT(static_cast<double>(even.max_part_weight),
            0.5 * static_cast<double>(h.total_vertex_weight()));
}

TEST(Recursive, RebalanceKeepsValidParts) {
  const Hypergraph h = test::path_hypergraph(64);
  RecursiveOptions options;
  options.rebalance = true;
  const KWayResult r = recursive_partition(h, 8, options);
  std::vector<VertexId> counts(8, 0);
  for (std::uint32_t part : r.part) {
    ASSERT_LT(part, 8U);
    ++counts[part];
  }
  for (VertexId c : counts) EXPECT_GT(c, 2U);
  EXPECT_EQ(r.cut_edges, kway_cut_edges(h, r.part));
}

TEST(Recursive, DeterministicForSeed) {
  const Hypergraph h =
      generate_circuit(table2_params(90, 160, Technology::kStandardCell), 21);
  Algorithm1Options options;
  options.seed = 4;
  const KWayResult a = recursive_partition(h, 4, options);
  const KWayResult b = recursive_partition(h, 4, options);
  EXPECT_EQ(a.part, b.part);
}

// ---------------------------------------------------------------------------
// rebalance_bipartition: the heap rewrite against the legacy full-rescan
// oracle. The incremental version promises to select *exactly* the module
// the O(n · pins)-per-move scan did, so the two must agree bit for bit.

Weight oracle_move_gain(const Bipartition& p, VertexId v) {
  const Hypergraph& h = p.hypergraph();
  const std::uint8_t s = p.side(v);
  Weight gain = 0;
  for (EdgeId e : h.nets_of(v)) {
    if (p.pins_on_side(e, s) == 1) gain += h.edge_weight(e);
    if (p.pins_on_side(e, static_cast<std::uint8_t>(1 - s)) == 0) {
      gain -= h.edge_weight(e);
    }
  }
  return gain;
}

/// Verbatim pre-rewrite rebalance_bipartition: rescan every module per
/// move, recompute every gain from scratch.
void legacy_rebalance(Bipartition& p, double target_frac0, double tolerance) {
  const Hypergraph& h = p.hypergraph();
  const auto total = static_cast<double>(h.total_vertex_weight());
  if (total <= 0) return;
  const double target0 = target_frac0 * total;
  const double tol_abs = std::max(1.0, tolerance * total);

  for (VertexId guard = 0; guard < h.num_vertices(); ++guard) {
    const double dev0 = static_cast<double>(p.weight(0)) - target0;
    if (std::abs(dev0) <= tol_abs) break;
    const std::uint8_t heavy = dev0 > 0 ? 0 : 1;
    const double limit = 2.0 * std::abs(dev0);

    VertexId best = kInvalidVertex;
    Weight best_gain = 0;
    for (VertexId v = 0; v < h.num_vertices(); ++v) {
      if (p.side(v) != heavy) continue;
      const auto w = static_cast<double>(h.vertex_weight(v));
      if (w >= limit) continue;  // would overshoot past the target
      const Weight g = oracle_move_gain(p, v);
      if (best == kInvalidVertex || g > best_gain) {
        best = v;
        best_gain = g;
      }
    }
    if (best == kInvalidVertex) break;
    p.flip(best);
  }
}

TEST(Recursive, RebalanceMatchesLegacyOracleBitForBit) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    CircuitParams params = table2_params(
        60 + static_cast<VertexId>(seed) * 13,
        100 + static_cast<EdgeId>(seed) * 21, Technology::kStandardCell);
    params.weight_geometric_p = (seed % 2 == 0) ? 0.4 : 0.0;
    const Hypergraph h = generate_circuit(params, seed + 3);
    // Lopsided starts so the rebalance actually has moves to make.
    std::vector<std::uint8_t> sides(h.num_vertices(), 0);
    for (VertexId v = 0; v < h.num_vertices(); ++v) {
      if (v % 5 == 0) sides[v] = 1;
    }
    for (const double target : {0.5, 0.25}) {
      for (const double tolerance : {0.02, 0.10}) {
        Bipartition incremental(h, sides);
        Bipartition legacy(h, sides);
        rebalance_bipartition(incremental, target, tolerance);
        legacy_rebalance(legacy, target, tolerance);
        ASSERT_EQ(incremental.sides(), legacy.sides())
            << "seed " << seed << " target " << target << " tolerance "
            << tolerance;
      }
    }
  }
}

TEST(Recursive, RebalanceIsANoOpWhenAlreadyWithinTolerance) {
  const Hypergraph h = test::path_hypergraph(32);
  std::vector<std::uint8_t> sides(32, 0);
  for (VertexId v = 16; v < 32; ++v) sides[v] = 1;
  Bipartition p(h, sides);
  const Weight cut_before = p.cut_weight();
  rebalance_bipartition(p, 0.5, 0.05);
  EXPECT_EQ(p.sides(), sides);
  EXPECT_EQ(p.cut_weight(), cut_before);
}

TEST(Recursive, RebalanceNeverGrowsTheDeviation) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Hypergraph h = generate_circuit(
        table2_params(120, 200, Technology::kStandardCell), seed + 40);
    std::vector<std::uint8_t> sides(h.num_vertices(), 0);
    Bipartition p(h, sides);  // everything on side 0: worst case
    const double target0 = 0.5 * static_cast<double>(h.total_vertex_weight());
    const double before =
        std::abs(static_cast<double>(p.weight(0)) - target0);
    rebalance_bipartition(p, 0.5, 0.02);
    const double after = std::abs(static_cast<double>(p.weight(0)) - target0);
    EXPECT_LE(after, before) << "seed " << seed;
    // The tolerance is reachable here: unit weights, fine granularity.
    EXPECT_LE(after, std::max(1.0, 0.02 * static_cast<double>(
                                             h.total_vertex_weight())))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace fhp

#include "hypergraph/transform.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace fhp {
namespace {

Hypergraph mixed_sizes() {
  HypergraphBuilder b;
  b.add_vertices(10);
  b.add_edge({0, 1});                       // size 2
  b.add_edge({0, 1, 2, 3});                 // size 4
  b.add_edge({4});                          // trivial
  b.add_edge({0, 1, 2, 3, 4, 5, 6, 7, 8});  // size 9
  b.add_edge({8, 9});                       // size 2
  return std::move(b).build();
}

TEST(FilterLargeEdges, DropsAboveThresholdAndTrivial) {
  const Hypergraph h = mixed_sizes();
  const EdgeFilterResult r = filter_large_edges(h, 4);
  EXPECT_EQ(r.hypergraph.num_vertices(), h.num_vertices());
  ASSERT_EQ(r.hypergraph.num_edges(), 3U);
  EXPECT_EQ(r.kept_edges, (std::vector<EdgeId>{0, 1, 4}));
  r.hypergraph.validate();
}

TEST(FilterLargeEdges, ThresholdTwoKeepsOnlyPairs) {
  const Hypergraph h = mixed_sizes();
  const EdgeFilterResult r = filter_large_edges(h, 2);
  EXPECT_EQ(r.hypergraph.num_edges(), 2U);
  EXPECT_EQ(r.kept_edges, (std::vector<EdgeId>{0, 4}));
}

TEST(FilterLargeEdges, RejectsDegenerateThreshold) {
  const Hypergraph h = mixed_sizes();
  EXPECT_THROW((void)filter_large_edges(h, 1), PreconditionError);
}

TEST(FilterTrivialEdges, KeepsEverythingElse) {
  const Hypergraph h = mixed_sizes();
  const EdgeFilterResult r = filter_trivial_edges(h);
  EXPECT_EQ(r.hypergraph.num_edges(), 4U);
  EXPECT_EQ(r.kept_edges, (std::vector<EdgeId>{0, 1, 3, 4}));
}

TEST(FilterLargeEdges, PreservesWeights) {
  HypergraphBuilder b;
  b.add_vertex(3);
  b.add_vertex(5);
  b.add_edge({0, 1}, 9);
  const Hypergraph h = std::move(b).build();
  const EdgeFilterResult r = filter_large_edges(h, 8);
  EXPECT_EQ(r.hypergraph.vertex_weight(0), 3);
  EXPECT_EQ(r.hypergraph.vertex_weight(1), 5);
  EXPECT_EQ(r.hypergraph.edge_weight(0), 9);
}

TEST(Granularize, UnitWeightsUntouched) {
  const Hypergraph h = test::path_hypergraph(5);
  const GranularizeResult g = granularize(h, 1);
  EXPECT_EQ(g.hypergraph.num_vertices(), 5U);
  EXPECT_EQ(g.hypergraph.num_edges(), h.num_edges());
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(g.chunks_of[v].size(), 1U);
    EXPECT_EQ(g.chunk_of[v], v);
  }
}

TEST(Granularize, SplitsHeavyModuleIntoChain) {
  HypergraphBuilder b;
  b.add_vertex(10);  // heavy
  b.add_vertex(1);
  b.add_edge({0, 1});
  const Hypergraph h = std::move(b).build();
  const GranularizeResult g = granularize(h, 3, 5);
  // ceil(10/3) = 4 chunks + 1 untouched module.
  EXPECT_EQ(g.chunks_of[0].size(), 4U);
  EXPECT_EQ(g.hypergraph.num_vertices(), 5U);
  // 3 link nets + 1 original net.
  EXPECT_EQ(g.hypergraph.num_edges(), 4U);
  // Chunk weights sum to the original module weight.
  Weight total = 0;
  for (VertexId c : g.chunks_of[0]) total += g.hypergraph.vertex_weight(c);
  EXPECT_EQ(total, 10);
  EXPECT_EQ(g.hypergraph.total_vertex_weight(), 11);
  // Link nets carry the requested weight.
  EXPECT_EQ(g.hypergraph.edge_weight(0), 5);
  g.hypergraph.validate();
}

TEST(Granularize, ZeroWeightModuleKept) {
  HypergraphBuilder b;
  b.add_vertex(0);
  b.add_vertex(2);
  b.add_edge({0, 1});
  const Hypergraph h = std::move(b).build();
  const GranularizeResult g = granularize(h, 1);
  EXPECT_EQ(g.chunks_of[0].size(), 1U);
  EXPECT_EQ(g.hypergraph.num_vertices(), 3U);
}

TEST(ProjectGranularized, MajorityWeightWins) {
  HypergraphBuilder b;
  b.add_vertex(10);
  b.add_vertex(1);
  b.add_edge({0, 1});
  const Hypergraph h = std::move(b).build();
  const GranularizeResult g = granularize(h, 3);
  // Put most of module 0's chunks on side 1.
  std::vector<std::uint8_t> chunk_sides(g.hypergraph.num_vertices(), 0);
  ASSERT_GE(g.chunks_of[0].size(), 3U);
  for (std::size_t i = 0; i + 1 < g.chunks_of[0].size(); ++i) {
    chunk_sides[g.chunks_of[0][i]] = 1;
  }
  const auto sides = project_granularized_sides(g, chunk_sides);
  EXPECT_EQ(sides[0], 1);
  EXPECT_EQ(sides[1], 0);
}

TEST(ProjectGranularized, SizeMismatchRejected) {
  const Hypergraph h = test::path_hypergraph(3);
  const GranularizeResult g = granularize(h, 1);
  EXPECT_THROW((void)project_granularized_sides(g, {0}), PreconditionError);
}

TEST(InducedSubhypergraph, RestrictsPinsAndDropsSmallNets) {
  // Net {0,1,2}: restricted to {0,1}; net {2,3}: vanishes.
  const Hypergraph h = Hypergraph::from_edges(4, {{0, 1, 2}, {2, 3}, {0, 1}});
  std::vector<std::uint8_t> keep{1, 1, 0, 1};
  const InducedResult r = induced_subhypergraph(h, keep);
  EXPECT_EQ(r.hypergraph.num_vertices(), 3U);
  EXPECT_EQ(r.hypergraph.num_edges(), 2U);
  EXPECT_EQ(r.kept_edges, (std::vector<EdgeId>{0, 2}));
  EXPECT_EQ(r.vertex_map[2], kInvalidVertex);
  EXPECT_EQ(r.kept_vertices, (std::vector<VertexId>{0, 1, 3}));
  r.hypergraph.validate();
}

TEST(InducedSubhypergraph, KeepNothing) {
  const Hypergraph h = test::path_hypergraph(3);
  const InducedResult r =
      induced_subhypergraph(h, std::vector<std::uint8_t>(3, 0));
  EXPECT_EQ(r.hypergraph.num_vertices(), 0U);
  EXPECT_EQ(r.hypergraph.num_edges(), 0U);
}

TEST(InducedSubhypergraph, KeepAllIsIsomorphic) {
  const Hypergraph h = test::figure4_hypergraph();
  const InducedResult r =
      induced_subhypergraph(h, std::vector<std::uint8_t>(12, 1));
  EXPECT_EQ(r.hypergraph.num_vertices(), h.num_vertices());
  EXPECT_EQ(r.hypergraph.num_edges(), h.num_edges());
  EXPECT_EQ(r.hypergraph.num_pins(), h.num_pins());
}

}  // namespace
}  // namespace fhp

#include "core/boundary.hpp"

#include <gtest/gtest.h>

#include "core/intersection.hpp"
#include "graph/bfs.hpp"
#include "graph/bipartite.hpp"
#include "test_helpers.hpp"

namespace fhp {
namespace {

Graph path_graph(VertexId n) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return Graph::from_edges(n, edges);
}

TEST(Boundary, PathCutHasTwoBoundaryNodes) {
  const Graph g = path_graph(6);
  std::vector<std::uint8_t> side{0, 0, 0, 1, 1, 1};
  const BoundaryStructure b = extract_boundary(g, side);
  EXPECT_EQ(b.size(), 2U);
  EXPECT_EQ(b.boundary_nodes, (std::vector<VertexId>{2, 3}));
  EXPECT_EQ(b.boundary_graph.num_edges(), 1U);
  EXPECT_EQ(b.boundary_side[0], 0);
  EXPECT_EQ(b.boundary_side[1], 1);
}

TEST(Boundary, NonBoundaryIndicesInvalid) {
  const Graph g = path_graph(4);
  const BoundaryStructure b = extract_boundary(g, {0, 0, 1, 1});
  EXPECT_EQ(b.boundary_index[0], kInvalidVertex);
  EXPECT_NE(b.boundary_index[1], kInvalidVertex);
  EXPECT_NE(b.boundary_index[2], kInvalidVertex);
  EXPECT_EQ(b.boundary_index[3], kInvalidVertex);
}

TEST(Boundary, AllOneSideGivesEmptyBoundary) {
  const Graph g = path_graph(5);
  const BoundaryStructure b = extract_boundary(g, {0, 0, 0, 0, 0});
  EXPECT_EQ(b.size(), 0U);
  EXPECT_EQ(b.boundary_graph.num_vertices(), 0U);
}

TEST(Boundary, SameSideEdgesDropped) {
  // Square 0-1-2-3-0 with sides 0,0,1,1: cross edges (1,2) and (3,0);
  // the same-side edges (0,1) and (2,3) must not appear in G'.
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const BoundaryStructure b = extract_boundary(g, {0, 0, 1, 1});
  EXPECT_EQ(b.size(), 4U);  // every vertex touches the cut
  EXPECT_EQ(b.boundary_graph.num_edges(), 2U);
  for (VertexId u = 0; u < b.boundary_graph.num_vertices(); ++u) {
    for (VertexId w : b.boundary_graph.neighbors(u)) {
      EXPECT_NE(b.boundary_side[u], b.boundary_side[w]);
    }
  }
}

TEST(Boundary, BoundaryGraphAlwaysBipartite) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Graph g = test::connected_random_graph(50, 0.06, seed);
    const DiameterPair pair = longest_path_from(g, 0, 2);
    const BidirectionalCut cut = bidirectional_bfs_cut(g, pair.s, pair.t);
    const BoundaryStructure b = extract_boundary(g, cut.side);
    EXPECT_TRUE(is_bipartite(b.boundary_graph)) << "seed " << seed;
    // boundary_side must itself be a proper coloring of G'.
    for (VertexId u = 0; u < b.boundary_graph.num_vertices(); ++u) {
      for (VertexId w : b.boundary_graph.neighbors(u)) {
        EXPECT_NE(b.boundary_side[u], b.boundary_side[w]);
      }
    }
  }
}

TEST(Boundary, DefinitionMatchesNeighborScan) {
  const Graph g = test::connected_random_graph(40, 0.08, 3);
  const BidirectionalCut cut = bidirectional_bfs_cut(g, 0, 39);
  const BoundaryStructure b = extract_boundary(g, cut.side);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    bool crosses = false;
    for (VertexId w : g.neighbors(u)) {
      if (b.g_side[w] != b.g_side[u]) crosses = true;
    }
    EXPECT_EQ(static_cast<bool>(b.is_boundary[u]), crosses);
  }
}

TEST(Boundary, NonBoundaryNetsPartitionModulesConsistently) {
  // The partial-bipartition guarantee: two non-boundary nets on opposite
  // sides never share a module.
  const Hypergraph h = test::figure4_hypergraph();
  const Graph g = intersection_graph(h);
  const DiameterPair pair = longest_path_from(g, 0, 2);
  const BidirectionalCut cut = bidirectional_bfs_cut(g, pair.s, pair.t);
  const BoundaryStructure b = extract_boundary(g, cut.side);
  for (EdgeId e1 = 0; e1 < h.num_edges(); ++e1) {
    if (b.is_boundary[e1]) continue;
    for (EdgeId e2 = e1 + 1; e2 < h.num_edges(); ++e2) {
      if (b.is_boundary[e2] || b.g_side[e1] == b.g_side[e2]) continue;
      for (VertexId v : h.pins(e1)) {
        for (VertexId w : h.pins(e2)) {
          EXPECT_NE(v, w) << "module shared across the partial bipartition";
        }
      }
    }
  }
}

TEST(Boundary, RejectsBadInput) {
  const Graph g = path_graph(3);
  EXPECT_THROW((void)extract_boundary(g, {0, 1}), PreconditionError);
  EXPECT_THROW((void)extract_boundary(g, {0, 1, 2}), PreconditionError);
}

}  // namespace
}  // namespace fhp

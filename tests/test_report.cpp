#include "partition/report.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace fhp {
namespace {

TEST(CutProfile, CountsBySize) {
  HypergraphBuilder b;
  b.add_vertices(6);
  b.add_edge({0, 1});        // uncut
  b.add_edge({2, 3});        // cut
  b.add_edge({0, 1, 2, 3});  // cut
  const Hypergraph h = std::move(b).build();
  const Bipartition p(h, {0, 0, 0, 1, 1, 1});
  const CutProfile profile = cut_profile(p);
  ASSERT_EQ(profile.nets_of_size.size(), 5U);
  EXPECT_EQ(profile.nets_of_size[2], 2U);
  EXPECT_EQ(profile.cut_of_size[2], 1U);
  EXPECT_EQ(profile.nets_of_size[4], 1U);
  EXPECT_EQ(profile.cut_of_size[4], 1U);
  EXPECT_DOUBLE_EQ(profile.crossing_fraction(2), 0.5);
  EXPECT_DOUBLE_EQ(profile.crossing_fraction(4), 1.0);
  EXPECT_DOUBLE_EQ(profile.crossing_fraction(3), 0.0);
  EXPECT_DOUBLE_EQ(profile.crossing_fraction(99), 0.0);
}

TEST(Analyze, CutNetDetails) {
  HypergraphBuilder b;
  b.add_vertices(6);
  b.add_edge({0, 1});
  b.add_edge({2, 3});        // cut, minority pins 1
  b.add_edge({0, 1, 2, 3});  // cut, minority pins 1 (3 left, 1 right? ...)
  const Hypergraph h = std::move(b).build();
  const Bipartition p(h, {0, 0, 0, 1, 1, 1});
  const PartitionReport report = analyze(p);
  EXPECT_EQ(report.cut_nets, (std::vector<EdgeId>{1, 2}));
  EXPECT_EQ(report.min_cut_net_size, 2U);
  EXPECT_EQ(report.max_cut_net_size, 4U);
  EXPECT_DOUBLE_EQ(report.avg_cut_net_size, 3.0);
  // Net 1: 1 pin on each side -> minority 1; net 2: 3 left, 1 right -> 1.
  EXPECT_EQ(report.minority_pins, 2U);
}

TEST(Analyze, CleanPartition) {
  const Hypergraph h = test::path_hypergraph(4);
  const Bipartition p(h, {0, 0, 0, 0});
  const PartitionReport report = analyze(p);
  EXPECT_TRUE(report.cut_nets.empty());
  EXPECT_EQ(report.minority_pins, 0U);
  EXPECT_NE(to_string(report).find("no crossing nets"), std::string::npos);
}

TEST(Analyze, ReportStringMentionsKeyNumbers) {
  const Hypergraph h = test::path_hypergraph(4);
  const Bipartition p(h, {0, 0, 1, 1});
  const std::string s = to_string(analyze(p));
  EXPECT_NE(s.find("crossing nets: 1"), std::string::npos);
  EXPECT_NE(s.find("2:1/3"), std::string::npos);  // 1 of 3 two-pin nets cut
}

}  // namespace
}  // namespace fhp

#include "baselines/random_cut.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace fhp {
namespace {

TEST(RandomBisection, ExactlyBalancedCounts) {
  const Hypergraph h = test::path_hypergraph(10);
  const BaselineResult r = random_bisection(h, 1);
  EXPECT_EQ(r.metrics.left_count + r.metrics.right_count, 10U);
  EXPECT_EQ(r.metrics.cardinality_imbalance, 0U);
  EXPECT_TRUE(r.metrics.proper);
}

TEST(RandomBisection, OddCountImbalanceOne) {
  const Hypergraph h = test::path_hypergraph(11);
  const BaselineResult r = random_bisection(h, 2);
  EXPECT_EQ(r.metrics.cardinality_imbalance, 1U);
}

TEST(RandomBisection, DeterministicPerSeed) {
  const Hypergraph h = test::path_hypergraph(20);
  EXPECT_EQ(random_bisection(h, 7).sides, random_bisection(h, 7).sides);
  // Different seeds should (overwhelmingly) differ.
  EXPECT_NE(random_bisection(h, 7).sides, random_bisection(h, 8).sides);
}

TEST(RandomBisection, RequiresTwoModules) {
  HypergraphBuilder b;
  b.add_vertex();
  const Hypergraph h = std::move(b).build();
  EXPECT_THROW((void)random_bisection(h, 1), PreconditionError);
}

TEST(BestRandomBisection, NeverWorseThanSingle) {
  const Hypergraph h = test::two_cluster_hypergraph(6, 2);
  const BaselineResult single = random_bisection(h, 5);
  const BaselineResult best = best_random_bisection(h, 20, 5);
  EXPECT_LE(best.metrics.cut_edges, single.metrics.cut_edges);
  EXPECT_EQ(best.iterations, 20);
}

TEST(BestRandomBisection, CutMatchesSides) {
  const Hypergraph h = test::two_cluster_hypergraph(5, 3);
  const BaselineResult r = best_random_bisection(h, 10, 3);
  EXPECT_EQ(r.metrics.cut_edges, test::count_cut_edges(h, r.sides));
}

}  // namespace
}  // namespace fhp

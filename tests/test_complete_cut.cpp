#include "core/complete_cut.hpp"

#include <gtest/gtest.h>

#include "graph/components.hpp"
#include "test_helpers.hpp"

namespace fhp {
namespace {

TEST(CompleteCutGreedy, SingleEdgeOneWinnerOneLoser) {
  const Graph bg = Graph::from_edges(2, {{0, 1}});
  const CompletionResult r = complete_cut_greedy(bg);
  EXPECT_EQ(r.winner_count, 1U);
  EXPECT_EQ(r.loser_count, 1U);
  validate_completion(bg, r);
}

TEST(CompleteCutGreedy, IsolatedVerticesAllWin) {
  const Graph bg = Graph::from_edges(4, {});
  const CompletionResult r = complete_cut_greedy(bg);
  EXPECT_EQ(r.winner_count, 4U);
  EXPECT_EQ(r.loser_count, 0U);
}

TEST(CompleteCutGreedy, StarKeepsLeaves) {
  // Star: hub degree 4, leaves degree 1 → leaves win, hub loses.
  const Graph bg = Graph::from_edges(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  const CompletionResult r = complete_cut_greedy(bg);
  EXPECT_EQ(r.loser_count, 1U);
  EXPECT_EQ(r.winner[0], 0);
  validate_completion(bg, r);
}

TEST(CompleteCutGreedy, PathAlternates) {
  // Path of 5 (bipartite): optimal cover is 2; greedy must be within 1.
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId i = 0; i + 1 < 5; ++i) edges.emplace_back(i, i + 1);
  const Graph bg = Graph::from_edges(5, edges);
  const CompletionResult r = complete_cut_greedy(bg);
  EXPECT_LE(r.loser_count, 3U);
  EXPECT_GE(r.loser_count, 2U);
  validate_completion(bg, r);
}

TEST(CompleteCutExact, MatchesBruteForce) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const auto [bg, side] = test::random_bipartite_graph(7, 6, 0.3, seed);
    const CompletionResult r = complete_cut_exact(bg, side);
    validate_completion(bg, r);
    EXPECT_EQ(r.loser_count, test::brute_force_min_vertex_cover(bg))
        << "seed " << seed;
  }
}

TEST(CompleteCutGreedy, WithinOneOfOptimalWhenConnected) {
  // The paper's theorem: connected boundary graph → greedy within 1.
  int tested = 0;
  for (std::uint64_t seed = 0; seed < 60 && tested < 20; ++seed) {
    const auto [bg, side] = test::random_bipartite_graph(8, 8, 0.25, seed);
    if (!is_connected(bg)) continue;
    ++tested;
    const CompletionResult greedy = complete_cut_greedy(bg);
    const CompletionResult exact = complete_cut_exact(bg, side);
    validate_completion(bg, greedy);
    EXPECT_LE(greedy.loser_count, exact.loser_count + 1) << "seed " << seed;
  }
  EXPECT_GE(tested, 5);
}

TEST(CompleteCutGreedy, WithinComponentsOfOptimalInGeneral) {
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    const auto [bg, side] = test::random_bipartite_graph(10, 9, 0.12, seed);
    const CompletionResult greedy = complete_cut_greedy(bg);
    const CompletionResult exact = complete_cut_exact(bg, side);
    const VertexId comps = connected_components(bg).count();
    EXPECT_LE(greedy.loser_count, exact.loser_count + comps)
        << "seed " << seed;
  }
}

TEST(CompleteCutWeighted, StructurallyValid) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto [bg, side] = test::random_bipartite_graph(8, 8, 0.2, seed);
    std::vector<Weight> node_weight(bg.num_vertices(), 1);
    const CompletionResult r = complete_cut_weighted(
        bg, side, node_weight, 0, 0);
    validate_completion(bg, r);
  }
}

TEST(CompleteCutWeighted, PullsWinnersToLighterSide) {
  // Two independent cross edges; left side starts much heavier, so both
  // first winners should come from the right side.
  const Graph bg = Graph::from_edges(4, {{0, 2}, {1, 3}});
  const std::vector<std::uint8_t> side{0, 0, 1, 1};
  const std::vector<Weight> node_weight{5, 5, 5, 5};
  const CompletionResult r =
      complete_cut_weighted(bg, side, node_weight, /*w0=*/100, /*w1=*/0);
  EXPECT_EQ(r.winner[2], 1);
  EXPECT_EQ(r.winner[3], 1);
  EXPECT_EQ(r.winner[0], 0);
  EXPECT_EQ(r.winner[1], 0);
}

TEST(CompleteCutWeighted, EqualWeightsBehaveLikeGreedyQuality) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto [bg, side] = test::random_bipartite_graph(9, 9, 0.2, seed);
    std::vector<Weight> node_weight(bg.num_vertices(), 1);
    const CompletionResult weighted =
        complete_cut_weighted(bg, side, node_weight, 0, 0);
    const CompletionResult exact = complete_cut_exact(bg, side);
    const VertexId comps = connected_components(bg).count();
    // The weighted rule trades some cut quality for balance but stays in
    // the same near-optimal regime (within #components + slack of 2).
    EXPECT_LE(weighted.loser_count, exact.loser_count + comps + 2)
        << "seed " << seed;
  }
}

TEST(CompleteCutExact, RejectsBadColoring) {
  const Graph bg = Graph::from_edges(2, {{0, 1}});
  const std::vector<std::uint8_t> bad{0, 0};
  EXPECT_THROW((void)complete_cut_exact(bg, bad), PreconditionError);
}

TEST(CompleteCutWeighted, RejectsSizeMismatch) {
  const Graph bg = Graph::from_edges(2, {{0, 1}});
  const std::vector<std::uint8_t> side{0, 1};
  const std::vector<Weight> short_weights{1};
  EXPECT_THROW(
      (void)complete_cut_weighted(bg, side, short_weights, 0, 0),
      PreconditionError);
}

TEST(CompleteCutGreedy, EmptyGraph) {
  const CompletionResult r = complete_cut_greedy(Graph{});
  EXPECT_EQ(r.winner_count, 0U);
  EXPECT_EQ(r.loser_count, 0U);
}

TEST(CompleteCutGreedy, LoserCountUpperBoundsHalf) {
  // |losers| <= |B|/2 is the paper's trivial bound for nonempty bipartite
  // G' with a perfect alternation; more loosely losers <= vertices - 1
  // whenever there is at least one vertex. Check the loose invariant and
  // that winners + losers partition the vertex set.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto [bg, side] = test::random_bipartite_graph(10, 10, 0.15, seed);
    const CompletionResult r = complete_cut_greedy(bg);
    EXPECT_EQ(r.winner_count + r.loser_count, bg.num_vertices());
    if (bg.num_vertices() > 0) EXPECT_GE(r.winner_count, 1U);
  }
}

}  // namespace
}  // namespace fhp

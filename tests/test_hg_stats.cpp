#include "hypergraph/stats.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace fhp {
namespace {

TEST(HypergraphStats, EmptyHypergraph) {
  const HypergraphStats s = compute_stats(Hypergraph{});
  EXPECT_EQ(s.num_vertices, 0U);
  EXPECT_EQ(s.num_edges, 0U);
  EXPECT_EQ(s.avg_edge_size, 0.0);
  EXPECT_EQ(s.avg_degree, 0.0);
}

TEST(HypergraphStats, PathStats) {
  const HypergraphStats s = compute_stats(test::path_hypergraph(5));
  EXPECT_EQ(s.num_vertices, 5U);
  EXPECT_EQ(s.num_edges, 4U);
  EXPECT_EQ(s.num_pins, 8U);
  EXPECT_DOUBLE_EQ(s.avg_edge_size, 2.0);
  EXPECT_DOUBLE_EQ(s.avg_degree, 1.6);
  EXPECT_EQ(s.max_edge_size, 2U);
  EXPECT_EQ(s.max_degree, 2U);
  EXPECT_EQ(s.num_isolated_vertices, 0U);
  EXPECT_EQ(s.num_trivial_edges, 0U);
}

TEST(HypergraphStats, CountsIsolatedAndTrivial) {
  HypergraphBuilder b;
  b.add_vertices(4);
  b.add_edge({0, 1});
  b.add_edge({2});
  const HypergraphStats s = compute_stats(std::move(b).build());
  EXPECT_EQ(s.num_isolated_vertices, 1U);  // vertex 3
  EXPECT_EQ(s.num_trivial_edges, 1U);
}

TEST(HypergraphStats, HistogramIndexedBySize) {
  HypergraphBuilder b;
  b.add_vertices(5);
  b.add_edge({0, 1});
  b.add_edge({1, 2});
  b.add_edge({0, 1, 2, 3, 4});
  const HypergraphStats s = compute_stats(std::move(b).build());
  ASSERT_EQ(s.edge_size_histogram.size(), 6U);
  EXPECT_EQ(s.edge_size_histogram[2], 2U);
  EXPECT_EQ(s.edge_size_histogram[5], 1U);
  EXPECT_EQ(s.edge_size_histogram[3], 0U);
}

TEST(FractionEdgesAtLeast, Thresholds) {
  HypergraphBuilder b;
  b.add_vertices(8);
  b.add_edge({0, 1});
  b.add_edge({0, 1, 2});
  b.add_edge({0, 1, 2, 3, 4, 5, 6, 7});
  const Hypergraph h = std::move(b).build();
  EXPECT_DOUBLE_EQ(fraction_edges_at_least(h, 2), 1.0);
  EXPECT_DOUBLE_EQ(fraction_edges_at_least(h, 3), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(fraction_edges_at_least(h, 8), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(fraction_edges_at_least(h, 9), 0.0);
  EXPECT_DOUBLE_EQ(fraction_edges_at_least(Hypergraph{}, 2), 0.0);
}

TEST(HypergraphStats, ToStringMentionsCounts) {
  const std::string s = to_string(compute_stats(test::path_hypergraph(3)));
  EXPECT_NE(s.find("3 modules"), std::string::npos);
  EXPECT_NE(s.find("2 nets"), std::string::npos);
}

}  // namespace
}  // namespace fhp

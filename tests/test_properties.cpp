/// Parameterized property sweeps across instance families and seeds:
/// the cross-module invariants of DESIGN.md §5, exercised wider than the
/// per-module unit tests.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "baselines/fm.hpp"
#include "baselines/kl.hpp"
#include "baselines/sa.hpp"
#include "core/algorithm1.hpp"
#include "core/boundary.hpp"
#include "core/complete_cut.hpp"
#include "core/intersection.hpp"
#include "gen/circuit.hpp"
#include "gen/planted.hpp"
#include "gen/random_hypergraph.hpp"
#include "graph/bfs.hpp"
#include "graph/bipartite.hpp"
#include "graph/components.hpp"
#include "test_helpers.hpp"

namespace fhp {
namespace {

// ---------------------------------------------------------------------
// Pipeline invariants on random hypergraphs: (size, seed) sweep.
// ---------------------------------------------------------------------

class PipelineProperty
    : public testing::TestWithParam<std::tuple<VertexId, std::uint64_t>> {};

TEST_P(PipelineProperty, DualCutInvariants) {
  const auto [n, seed] = GetParam();
  RandomHypergraphParams params;
  params.num_vertices = n;
  params.num_edges = static_cast<EdgeId>(n * 3 / 2);
  params.max_edge_size = 4;
  params.max_degree = 6;
  const Hypergraph h = random_hypergraph(params, seed);
  const Graph g = intersection_graph(h);
  if (g.num_vertices() < 2 || !is_connected(g)) {
    GTEST_SKIP() << "disconnected dual";
  }

  const DiameterPair pair = longest_path_from(g, 0, 2);
  const BidirectionalCut cut = bidirectional_bfs_cut(g, pair.s, pair.t);
  const BoundaryStructure b = extract_boundary(g, cut.side);

  // (1) boundary graph is bipartite under its recorded sides;
  EXPECT_TRUE(is_bipartite(b.boundary_graph));
  // (2) greedy completion is a valid independent-set/cover labelling;
  const CompletionResult greedy = complete_cut_greedy(b.boundary_graph);
  validate_completion(b.boundary_graph, greedy);
  // (3) exact completion is no worse; greedy tracks it closely. (The
  // paper's within-1 theorem does not hold verbatim on every bipartite
  // boundary graph — see EXPERIMENTS.md C4 — but the gap stays small.)
  const CompletionResult exact =
      complete_cut_exact(b.boundary_graph, b.boundary_side);
  EXPECT_LE(exact.loser_count, greedy.loser_count);
  const VertexId comps = connected_components(b.boundary_graph).count();
  const VertexId slack = std::max<VertexId>(2, exact.loser_count / 4);
  EXPECT_LE(greedy.loser_count, exact.loser_count + comps + slack);
}

TEST_P(PipelineProperty, EndToEndResultValid) {
  const auto [n, seed] = GetParam();
  RandomHypergraphParams params;
  params.num_vertices = n;
  params.num_edges = static_cast<EdgeId>(n * 3 / 2);
  params.max_edge_size = 4;
  params.max_degree = 6;
  const Hypergraph h = random_hypergraph(params, seed);
  Algorithm1Options options;
  options.num_starts = 8;
  options.seed = seed;
  const Algorithm1Result r = algorithm1(h, options);
  ASSERT_EQ(r.sides.size(), h.num_vertices());
  EXPECT_TRUE(r.metrics.proper);
  EXPECT_EQ(r.metrics.cut_edges, test::count_cut_edges(h, r.sides));
  // Realized boundary cut never exceeds the loser bound plus dropped nets.
  if (!r.disconnected_shortcut) {
    EXPECT_LE(r.metrics.cut_edges, r.loser_count + r.filtered_edges);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, PipelineProperty,
    testing::Combine(testing::Values<VertexId>(30, 60, 120, 250),
                     testing::Values<std::uint64_t>(1, 2, 3, 4, 5)));

// ---------------------------------------------------------------------
// Difficult planted instances: Algorithm I recovers the planted cut.
// ---------------------------------------------------------------------

class PlantedRecovery
    : public testing::TestWithParam<std::tuple<EdgeId, std::uint64_t>> {};

TEST_P(PlantedRecovery, FindsPlantedOrBetter) {
  const auto [c, seed] = GetParam();
  PlantedParams params;
  params.num_vertices = 200;
  params.num_edges = 300;
  params.planted_cut = c;
  const PlantedInstance inst = planted_instance(params, seed);
  Algorithm1Options options;
  options.num_starts = 50;
  options.seed = seed;
  const Algorithm1Result r = algorithm1(inst.hypergraph, options);
  EXPECT_LE(r.metrics.cut_edges, inst.planted_cut)
      << "planted " << inst.planted_cut;
}

INSTANTIATE_TEST_SUITE_P(
    CutsAndSeeds, PlantedRecovery,
    testing::Combine(testing::Values<EdgeId>(0, 2, 4, 8),
                     testing::Values<std::uint64_t>(11, 22, 33)));

// ---------------------------------------------------------------------
// Baseline structural guarantees on circuit presets.
// ---------------------------------------------------------------------

class BaselineProperty
    : public testing::TestWithParam<std::tuple<Technology, std::uint64_t>> {};

TEST_P(BaselineProperty, AllPartitionersReturnValidProperCuts) {
  const auto [tech, seed] = GetParam();
  const Hypergraph h = generate_circuit(params_for(tech, 0.3), seed);
  if (h.num_vertices() < 2) GTEST_SKIP();

  Algorithm1Options a1;
  a1.num_starts = 10;
  a1.seed = seed;
  const Algorithm1Result alg = algorithm1(h, a1);
  EXPECT_TRUE(alg.metrics.proper);
  EXPECT_EQ(alg.metrics.cut_edges, test::count_cut_edges(h, alg.sides));

  FmOptions fm;
  fm.seed = seed;
  const BaselineResult fm_r = fiduccia_mattheyses(h, fm);
  EXPECT_TRUE(fm_r.metrics.proper);
  EXPECT_EQ(fm_r.metrics.cut_edges, test::count_cut_edges(h, fm_r.sides));

  KlOptions kl;
  kl.seed = seed;
  const BaselineResult kl_r = kernighan_lin(h, kl);
  EXPECT_TRUE(kl_r.metrics.proper);
  EXPECT_LE(kl_r.metrics.cardinality_imbalance, 1U);

  SaOptions sa;
  sa.seed = seed;
  sa.moves_per_temperature = 200;
  sa.max_temperatures = 30;
  const BaselineResult sa_r = simulated_annealing(h, sa);
  EXPECT_TRUE(sa_r.metrics.proper);
  EXPECT_EQ(sa_r.metrics.cut_edges, test::count_cut_edges(h, sa_r.sides));
}

INSTANTIATE_TEST_SUITE_P(
    TechAndSeeds, BaselineProperty,
    testing::Combine(testing::Values(Technology::kPcb,
                                     Technology::kStandardCell,
                                     Technology::kGateArray,
                                     Technology::kHybrid),
                     testing::Values<std::uint64_t>(1, 2)));

// ---------------------------------------------------------------------
// Boundary fraction: |B| / |G| stays bounded as instances grow (paper's
// corollary — constant expected boundary fraction).
// ---------------------------------------------------------------------

class BoundaryFraction : public testing::TestWithParam<VertexId> {};

TEST_P(BoundaryFraction, StaysBelowHalf) {
  const VertexId n = GetParam();
  const Hypergraph h = generate_circuit(
      table2_params(n, static_cast<EdgeId>(n * 7 / 4),
                    Technology::kStandardCell),
      n);
  Algorithm1Options options;
  options.num_starts = 5;
  Algorithm1Context ctx(h, options);
  if (ctx.is_degenerate()) GTEST_SKIP();
  // Multi-start best, matching how the algorithm is used: any one start can
  // draw an off-center pseudo-diameter pair with an oversized boundary.
  const Algorithm1Result r = algorithm1(h, options);
  const double fraction = static_cast<double>(r.boundary_size) /
                          static_cast<double>(ctx.intersection().num_vertices());
  EXPECT_LT(fraction, 0.55) << "boundary fraction at n=" << n;
}

INSTANTIATE_TEST_SUITE_P(GrowingSizes, BoundaryFraction,
                         testing::Values<VertexId>(100, 200, 400, 800));

}  // namespace
}  // namespace fhp

#include "hypergraph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "gen/circuit.hpp"
#include "gen/grid.hpp"
#include "gen/planted.hpp"
#include "gen/random_hypergraph.hpp"
#include "gen/structured.hpp"
#include "partition/metrics.hpp"
#include "test_helpers.hpp"

namespace fhp {
namespace {

TEST(HmetisIo, ParsesPlainFormat) {
  std::istringstream in("3 4\n1 2\n2 3 4\n1 4\n");
  const Hypergraph h = read_hmetis(in);
  EXPECT_EQ(h.num_vertices(), 4U);
  EXPECT_EQ(h.num_edges(), 3U);
  EXPECT_EQ(h.edge_size(1), 3U);
  const auto pins = h.pins(0);
  EXPECT_EQ(pins[0], 0U);
  EXPECT_EQ(pins[1], 1U);
  h.validate();
}

TEST(HmetisIo, ParsesCommentsAndBlankLines) {
  std::istringstream in("% header comment\n\n2 3\n% edge one\n1 2\n\n2 3\n");
  const Hypergraph h = read_hmetis(in);
  EXPECT_EQ(h.num_edges(), 2U);
}

TEST(HmetisIo, ParsesEdgeWeights) {
  std::istringstream in("2 2 1\n5 1 2\n3 1 2\n");
  const Hypergraph h = read_hmetis(in);
  EXPECT_EQ(h.edge_weight(0), 5);
  EXPECT_EQ(h.edge_weight(1), 3);
}

TEST(HmetisIo, ParsesVertexWeights) {
  std::istringstream in("1 2 10\n1 2\n7\n9\n");
  const Hypergraph h = read_hmetis(in);
  EXPECT_EQ(h.vertex_weight(0), 7);
  EXPECT_EQ(h.vertex_weight(1), 9);
}

TEST(HmetisIo, ParsesFullWeights) {
  std::istringstream in("1 2 11\n4 1 2\n7\n9\n");
  const Hypergraph h = read_hmetis(in);
  EXPECT_EQ(h.edge_weight(0), 4);
  EXPECT_EQ(h.vertex_weight(1), 9);
}

TEST(HmetisIo, RejectsMalformedInput) {
  {
    std::istringstream in("");
    EXPECT_THROW((void)read_hmetis(in), IoError);
  }
  {
    std::istringstream in("2 2\n1 2\n");  // missing second edge
    EXPECT_THROW((void)read_hmetis(in), IoError);
  }
  {
    std::istringstream in("1 2\n1 3\n");  // pin out of range
    EXPECT_THROW((void)read_hmetis(in), IoError);
  }
  {
    std::istringstream in("1 2\n1 x\n");  // non-numeric
    EXPECT_THROW((void)read_hmetis(in), IoError);
  }
  {
    std::istringstream in("1 2 7\n1 2\n");  // unsupported fmt
    EXPECT_THROW((void)read_hmetis(in), IoError);
  }
}

TEST(HmetisIo, RoundTripUnweighted) {
  const Hypergraph h = test::figure4_hypergraph();
  std::ostringstream out;
  write_hmetis(out, h);
  std::istringstream in(out.str());
  const Hypergraph back = read_hmetis(in);
  ASSERT_EQ(back.num_vertices(), h.num_vertices());
  ASSERT_EQ(back.num_edges(), h.num_edges());
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    const auto a = h.pins(e);
    const auto b = back.pins(e);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(HmetisIo, RoundTripWeighted) {
  HypergraphBuilder builder;
  builder.add_vertex(3);
  builder.add_vertex(1);
  builder.add_vertex(4);
  builder.add_edge({0, 1}, 2);
  builder.add_edge({1, 2}, 5);
  const Hypergraph h = std::move(builder).build();
  std::ostringstream out;
  write_hmetis(out, h);
  std::istringstream in(out.str());
  const Hypergraph back = read_hmetis(in);
  EXPECT_EQ(back.vertex_weight(0), 3);
  EXPECT_EQ(back.vertex_weight(2), 4);
  EXPECT_EQ(back.edge_weight(1), 5);
}

TEST(NetlistIo, ParsesPaperStyleNetlist) {
  std::istringstream in(
      "# paper example prefix\n"
      "a: m1 m2 m11\n"
      "b: m2 m4 m11\n");
  const NamedNetlist n = read_netlist(in);
  EXPECT_EQ(n.hypergraph.num_edges(), 2U);
  EXPECT_EQ(n.hypergraph.num_vertices(), 4U);  // m1 m2 m11 m4
  EXPECT_EQ(n.edge_names[0], "a");
  EXPECT_EQ(n.vertex("m4"), 3U);
  EXPECT_EQ(n.edge("b"), 1U);
}

TEST(NetlistIo, RejectsBadLines) {
  {
    std::istringstream in("no colon here\n");
    EXPECT_THROW((void)read_netlist(in), IoError);
  }
  {
    std::istringstream in("a: x\na: y\n");  // duplicate signal
    EXPECT_THROW((void)read_netlist(in), IoError);
  }
  {
    std::istringstream in("a b: x\n");  // two tokens before colon
    EXPECT_THROW((void)read_netlist(in), IoError);
  }
}

TEST(NetlistIo, UnknownNamesThrow) {
  std::istringstream in("a: x y\n");
  const NamedNetlist n = read_netlist(in);
  EXPECT_THROW((void)n.vertex("zzz"), IoError);
  EXPECT_THROW((void)n.edge("zzz"), IoError);
}

TEST(NetlistIo, RoundTrip) {
  std::istringstream in("sig1: a b c\nsig2: c d\n");
  const NamedNetlist n = read_netlist(in);
  std::ostringstream out;
  write_netlist(out, n);
  std::istringstream in2(out.str());
  const NamedNetlist back = read_netlist(in2);
  EXPECT_EQ(back.hypergraph.num_edges(), n.hypergraph.num_edges());
  EXPECT_EQ(back.hypergraph.num_pins(), n.hypergraph.num_pins());
  EXPECT_EQ(back.edge_names, n.edge_names);
}

TEST(PartitionIo, RoundTrip) {
  const std::vector<std::uint8_t> sides{0, 1, 1, 0, 1};
  std::ostringstream out;
  write_partition(out, sides);
  std::istringstream in(out.str());
  EXPECT_EQ(read_partition(in, 5), sides);
}

TEST(PartitionIo, RejectsBadValuesAndCounts) {
  {
    std::istringstream in("0\n2\n");
    EXPECT_THROW((void)read_partition(in, 2), IoError);
  }
  {
    std::istringstream in("0\n1\n");
    EXPECT_THROW((void)read_partition(in, 3), IoError);
  }
}

TEST(FileIo, MissingFileThrows) {
  EXPECT_THROW((void)read_hmetis_file("/nonexistent/x.hgr"), IoError);
  EXPECT_THROW((void)read_netlist_file("/nonexistent/x.net"), IoError);
}

TEST(FileIo, WriteReadDisk) {
  const Hypergraph h = test::path_hypergraph(6);
  const std::string path = testing::TempDir() + "/fhp_io_test.hgr";
  write_hmetis_file(path, h);
  const Hypergraph back = read_hmetis_file(path);
  EXPECT_EQ(back.num_vertices(), 6U);
  EXPECT_EQ(back.num_edges(), 5U);
}

TEST(HmetisIo, ZeroPinEdgeLineThrows) {
  // fmt = 1: the edge line holds only its weight, so the pin list is empty.
  std::istringstream in("1 3 1\n5\n");
  EXPECT_THROW((void)read_hmetis(in), IoError);
}

TEST(HmetisIo, HeaderCountsBeyondIdRangeThrow) {
  // Beyond the id range of every index width (larger than int64 max).
  std::istringstream in("1 9999999999999999999\n1 2\n");
  EXPECT_THROW((void)read_hmetis(in), IoError);
  if constexpr (sizeof(VertexId) == 4) {
    // Beyond the 32-bit Index range only. 64-bit builds accept this header
    // as a genuine (if memory-hungry) instance, so the case is compiled out
    // there; test_large_ids.cpp covers the 64-bit boundary behavior.
    std::istringstream in32("1 2147483648\n1 2\n");
    EXPECT_THROW((void)read_hmetis(in32), IoError);
  }
}

TEST(HmetisIo, WriterRefusesZeroPinNets) {
  HypergraphBuilder b;
  b.add_vertices(2);
  b.allow_empty_edges();
  b.add_edge({});
  const Hypergraph h = std::move(b).build();
  std::ostringstream out;
  EXPECT_THROW(write_hmetis(out, h), PreconditionError);
}

TEST(NetlistIo, NoPinSignalThrows) {
  std::istringstream in("s1:\n");
  EXPECT_THROW((void)read_netlist(in), IoError);
}

TEST(NetlistIo, DuplicatePinsMergeAndCountOnce) {
  // "sig: m1 m2 m1" must become a 2-pin net, and a crossing partition must
  // charge the net's weight exactly once.
  std::istringstream in("sig: m1 m2 m1\n");
  const NamedNetlist nl = read_netlist(in);
  ASSERT_EQ(nl.hypergraph.num_edges(), 1U);
  EXPECT_EQ(nl.hypergraph.edge_size(0), 2U);
  const PartitionMetrics m =
      compute_metrics(Bipartition(nl.hypergraph, {0, 1}));
  EXPECT_EQ(m.cut_edges, 1U);
  EXPECT_EQ(m.cut_weight, 1);
}

TEST(HmetisIo, RoundTripIsByteIdenticalAcrossGenerators) {
  const std::vector<Hypergraph> instances = {
      generate_circuit(
          [] {
            CircuitParams p;
            p.num_modules = 40;
            p.num_nets = 60;
            return p;
          }(),
          3),
      grid_circuit({.rows = 4, .cols = 5}, 3),
      planted_instance(
          [] {
            PlantedParams p;
            p.num_vertices = 20;
            p.num_edges = 30;
            return p;
          }(),
          3)
          .hypergraph,
      random_hypergraph(
          [] {
            RandomHypergraphParams p;
            p.num_vertices = 25;
            p.num_edges = 35;
            return p;
          }(),
          3),
      ripple_carry_adder(3),
      h_tree(3),
  };
  for (std::size_t i = 0; i < instances.size(); ++i) {
    std::ostringstream first;
    write_hmetis(first, instances[i]);
    std::istringstream back(first.str());
    const Hypergraph reread = read_hmetis(back);
    std::ostringstream second;
    write_hmetis(second, reread);
    EXPECT_EQ(first.str(), second.str()) << "instance " << i;
  }
}

}  // namespace
}  // namespace fhp

#include "graph/diameter.hpp"

#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "test_helpers.hpp"

namespace fhp {
namespace {

Graph path_graph(VertexId n) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return Graph::from_edges(n, edges);
}

Graph cycle_graph(VertexId n) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId i = 0; i < n; ++i) edges.emplace_back(i, (i + 1) % n);
  return Graph::from_edges(n, edges);
}

TEST(Diameter, PathAndCycle) {
  EXPECT_EQ(exact_diameter(path_graph(10)), 9U);
  EXPECT_EQ(exact_diameter(cycle_graph(10)), 5U);
  EXPECT_EQ(exact_diameter(cycle_graph(11)), 5U);
}

TEST(Diameter, SingleVertexAndEmpty) {
  EXPECT_EQ(exact_diameter(Graph::from_edges(1, {})), 0U);
  EXPECT_EQ(exact_diameter(Graph{}), 0U);
}

TEST(Diameter, EstimateNeverExceedsExact) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g = test::connected_random_graph(60, 0.05, seed);
    Rng rng(seed);
    const std::uint32_t exact = exact_diameter(g);
    const std::uint32_t estimate = estimate_diameter(g, rng, 4);
    EXPECT_LE(estimate, exact);
    // Double-sweep estimates are empirically very tight on such graphs.
    EXPECT_GE(estimate + 2, exact);
  }
}

TEST(Diameter, EstimateExactOnTrees) {
  // Double sweep is provably exact on trees.
  const Graph g = path_graph(30);
  Rng rng(3);
  EXPECT_EQ(estimate_diameter(g, rng, 1), 29U);
}

TEST(Diameter, RequiresPositiveStarts) {
  Rng rng(1);
  const Graph g = path_graph(3);
  EXPECT_THROW((void)estimate_diameter(g, rng, 0), PreconditionError);
}

}  // namespace
}  // namespace fhp

#include "validate/audit.hpp"

#include <gtest/gtest.h>

#include "core/intersection.hpp"
#include "gen/random_hypergraph.hpp"
#include "test_helpers.hpp"

namespace fhp {
namespace {

using validate::AuditReport;
using validate::HypergraphAuditPolicy;

Hypergraph small_random(std::uint64_t seed) {
  RandomHypergraphParams params;
  params.num_vertices = 30;
  params.num_edges = 45;
  return random_hypergraph(params, seed);
}

TEST(AuditHypergraph, GeneratorOutputIsClean) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const AuditReport report = validate::audit_hypergraph(small_random(seed));
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
}

TEST(AuditHypergraph, FlagsEmptyEdgeUnderDefaultPolicy) {
  HypergraphBuilder b;
  b.add_vertices(3);
  b.allow_empty_edges();
  b.add_edge({});
  b.add_edge({0, 1});
  const Hypergraph h = std::move(b).build();

  const AuditReport strict = validate::audit_hypergraph(h);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.findings[0].predicate, "no_empty_edges");

  HypergraphAuditPolicy relaxed;
  relaxed.allow_empty_edges = true;
  EXPECT_TRUE(validate::audit_hypergraph(h, relaxed).ok());
}

TEST(AuditHypergraph, FlagsSinglePinEdgesWhenAsked) {
  HypergraphBuilder b;
  b.add_vertices(2);
  b.add_edge({0});
  const Hypergraph h = std::move(b).build();
  EXPECT_TRUE(validate::audit_hypergraph(h).ok());
  HypergraphAuditPolicy policy;
  policy.allow_single_pin_edges = false;
  const AuditReport report = validate::audit_hypergraph(h, policy);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.findings[0].predicate, "no_single_pin_edges");
}

TEST(AuditGraph, IntersectionGraphIsClean) {
  const Graph g = intersection_graph(small_random(7));
  EXPECT_TRUE(validate::audit_graph(g).ok());
}

TEST(AuditPartition, FlagsSizeAndValueViolations) {
  const Hypergraph h = test::path_hypergraph(4);
  const std::vector<std::uint8_t> short_sides = {0, 1};
  EXPECT_FALSE(validate::audit_partition(h, short_sides).ok());
  const std::vector<std::uint8_t> bad_value = {0, 1, 2, 0};
  const AuditReport report = validate::audit_partition(h, bad_value);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.findings[0].predicate, "sides_binary");
  const std::vector<std::uint8_t> good = {0, 1, 0, 1};
  EXPECT_TRUE(validate::audit_partition(h, good).ok());
}

TEST(AuditMetrics, AcceptsComputedMetricsAndFlagsTampering) {
  const Hypergraph h = small_random(11);
  std::vector<std::uint8_t> sides(h.num_vertices(), 0);
  for (VertexId v = 0; v < h.num_vertices() / 2; ++v) sides[v] = 1;
  PartitionMetrics metrics = compute_metrics(Bipartition(h, sides));
  EXPECT_TRUE(validate::audit_metrics(h, sides, metrics).ok());

  metrics.cut_weight += 1;
  const AuditReport report = validate::audit_metrics(h, sides, metrics);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.findings[0].predicate, "cut_weight_match");
}

TEST(AuditBoundary, RealExtractionPassesTamperedOneFails) {
  const Graph g = intersection_graph(test::two_cluster_hypergraph(4, 2));
  ASSERT_GE(g.num_vertices(), 4U);
  std::vector<std::uint8_t> g_side(g.num_vertices(), 0);
  for (VertexId v = g.num_vertices() / 2; v < g.num_vertices(); ++v) {
    g_side[v] = 1;
  }
  BoundaryStructure b = extract_boundary(g, g_side);
  EXPECT_TRUE(validate::audit_boundary(g, b).ok());

  ASSERT_FALSE(b.boundary_nodes.empty());
  b.is_boundary[b.boundary_nodes[0]] = 0;  // lie about one boundary member
  EXPECT_FALSE(validate::audit_boundary(g, b).ok());
}

TEST(AuditAlgorithm1, EndToEndResultPassesTamperedSidesFail) {
  const Hypergraph h = small_random(13);
  Algorithm1Options options;
  options.num_starts = 4;
  options.threads = 1;
  Algorithm1Result result = algorithm1(h, options);
  EXPECT_TRUE(validate::audit_algorithm1(h, options, result).ok())
      << validate::audit_algorithm1(h, options, result).to_string();

  result.sides[0] ^= 1;  // metrics no longer match the sides
  EXPECT_FALSE(validate::audit_algorithm1(h, options, result).ok());
}

TEST(AuditGraphsIdentical, DistinguishesDifferentGraphs) {
  const Graph a = Graph::from_edges(3, {{0, 1}, {1, 2}});
  const Graph b = Graph::from_edges(3, {{0, 1}, {0, 2}});
  EXPECT_TRUE(validate::audit_graphs_identical(a, a).ok());
  EXPECT_FALSE(validate::audit_graphs_identical(a, b).ok());
  const Graph c = Graph::from_edges(4, {{0, 1}, {1, 2}});
  EXPECT_FALSE(validate::audit_graphs_identical(a, c).ok());
}

TEST(AuditReportApi, MergeAndToString) {
  AuditReport a;
  EXPECT_TRUE(a.ok());
  EXPECT_EQ(a.to_string(), "ok");
  a.fail("p1", "m1");
  AuditReport b;
  b.fail("p2", "m2");
  a.merge(std::move(b));
  ASSERT_EQ(a.findings.size(), 2U);
  EXPECT_NE(a.to_string().find("p2: m2"), std::string::npos);
}

}  // namespace
}  // namespace fhp

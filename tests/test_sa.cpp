#include "baselines/sa.hpp"

#include <gtest/gtest.h>

#include "baselines/random_cut.hpp"
#include "gen/circuit.hpp"
#include "test_helpers.hpp"

namespace fhp {
namespace {

SaOptions fast_sa(std::uint64_t seed) {
  SaOptions o;
  o.seed = seed;
  o.moves_per_temperature = 400;
  o.max_temperatures = 60;
  o.cooling = 0.85;
  return o;
}

TEST(Sa, SolvesTwoClusters) {
  const Hypergraph h = test::two_cluster_hypergraph(6, 2);
  const BaselineResult r = simulated_annealing(h, fast_sa(1));
  EXPECT_EQ(r.metrics.cut_edges, 2U);
  EXPECT_TRUE(r.metrics.proper);
}

TEST(Sa, BeatsRandomOnChain) {
  const Hypergraph h = test::path_hypergraph(30);
  const BaselineResult random = random_bisection(h, 1);
  const BaselineResult annealed = simulated_annealing(h, fast_sa(1));
  EXPECT_LT(annealed.metrics.cut_edges, random.metrics.cut_edges);
}

TEST(Sa, KeepsReasonableBalance) {
  const Hypergraph h =
      generate_circuit(table2_params(100, 180, Technology::kPcb), 4);
  const BaselineResult r = simulated_annealing(h, fast_sa(4));
  // Soft penalty: imbalance should stay a small fraction of total weight.
  EXPECT_LT(static_cast<double>(r.metrics.weight_imbalance),
            0.3 * static_cast<double>(h.total_vertex_weight()));
}

TEST(Sa, DeterministicPerSeed) {
  const Hypergraph h = test::two_cluster_hypergraph(5, 2);
  const BaselineResult a = simulated_annealing(h, fast_sa(7));
  const BaselineResult b = simulated_annealing(h, fast_sa(7));
  EXPECT_EQ(a.sides, b.sides);
}

TEST(Sa, ReportsAttempts) {
  const Hypergraph h = test::path_hypergraph(10);
  SaOptions o = fast_sa(3);
  o.min_temperatures = 2;
  const BaselineResult r = simulated_annealing(h, o);
  EXPECT_GE(r.iterations, 2 * o.moves_per_temperature);
}

TEST(Sa, RejectsBadCooling) {
  const Hypergraph h = test::path_hypergraph(4);
  SaOptions o;
  o.cooling = 1.5;
  EXPECT_THROW((void)simulated_annealing(h, o), PreconditionError);
}

TEST(Sa, CutMatchesSides) {
  const Hypergraph h =
      generate_circuit(table2_params(60, 110, Technology::kHybrid), 9);
  const BaselineResult r = simulated_annealing(h, fast_sa(9));
  EXPECT_EQ(r.metrics.cut_edges, test::count_cut_edges(h, r.sides));
}

}  // namespace
}  // namespace fhp

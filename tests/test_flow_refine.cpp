/// \file test_flow_refine.cpp
/// The corridor flow refiner (src/multilevel/flow_refine.*): gadget
/// exactness against brute force, the never-worsens Refiner contract over
/// a fuzz zoo, typed capacity-overflow failures, engine/flat wiring, and
/// the FlowRefineIdentity determinism matrix (threads x reorder x memo)
/// the TSAN job runs.
#include "multilevel/flow_refine.hpp"

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gen/circuit.hpp"
#include "gen/grid.hpp"
#include "gen/planted.hpp"
#include "gen/random_hypergraph.hpp"
#include "graph/maxflow.hpp"
#include "multilevel/engine.hpp"
#include "partition/partition.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"
#include "validate/audit.hpp"

namespace fhp {
namespace {

Weight weighted_cut(const Hypergraph& h,
                    const std::vector<std::uint8_t>& sides) {
  Weight cut = 0;
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    bool on[2] = {false, false};
    for (VertexId v : h.pins(e)) on[sides[v]] = true;
    if (on[0] && on[1]) cut += h.edge_weight(e);
  }
  return cut;
}

Weight imbalance_of(const Hypergraph& h,
                    const std::vector<std::uint8_t>& sides) {
  Weight w0 = 0;
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    if (sides[v] == 0) w0 += h.vertex_weight(v);
  }
  const Weight w1 = h.total_vertex_weight() - w0;
  return w0 > w1 ? w0 - w1 : w1 - w0;
}

/// Minimum cut weight over every reassignment of the corridor vertices
/// (exterior vertices stay put) — the quantity solve_corridor promises to
/// reach exactly. Exponential in the corridor size; keep it <= ~16.
Weight brute_force_corridor_min_cut(
    const Hypergraph& h, const std::vector<std::uint8_t>& sides,
    const std::vector<std::uint8_t>& in_corridor) {
  std::vector<VertexId> movable;
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    if (in_corridor[v] != 0) movable.push_back(v);
  }
  std::vector<std::uint8_t> trial = sides;
  Weight best = std::numeric_limits<Weight>::max();
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << movable.size());
       ++mask) {
    for (std::size_t i = 0; i < movable.size(); ++i) {
      trial[movable[i]] = static_cast<std::uint8_t>((mask >> i) & 1);
    }
    best = std::min(best, weighted_cut(h, trial));
  }
  return best;
}

std::uint64_t fnv1a(const std::vector<std::uint8_t>& v) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint8_t b : v) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

Hypergraph golden_instance(const std::string& name) {
  if (name == "circuit150") {
    return generate_circuit(table2_params(150, 260, Technology::kStandardCell),
                            7);
  }
  if (name == "planted120") {
    PlantedParams p;
    p.num_vertices = 120;
    p.num_edges = 200;
    p.planted_cut = 4;
    p.min_edge_size = 2;
    p.max_edge_size = 2;
    p.max_degree = 0;
    return planted_instance(p, 5).hypergraph;
  }
  EXPECT_EQ(name, "grid9x9");
  return grid_circuit({9, 9, 0.3, false}, 3);
}

const char* const kGoldenInstances[] = {"circuit150", "planted120", "grid9x9"};

// ---------------------------------------------------------------------------
// solve_corridor: gadget exactness

TEST(SolveCorridor, RecoversThePathMinCut) {
  // Alternating sides on a 6-chain cut every net; with the endpoints as
  // anchors the corridor min cut is a single net.
  const Hypergraph h = test::path_hypergraph(6);
  const std::vector<std::uint8_t> sides = {0, 1, 0, 1, 0, 1};
  std::vector<std::uint8_t> in_corridor = {0, 1, 1, 1, 1, 0};
  const ml::CorridorSolve solve = ml::solve_corridor(h, sides, in_corridor);
  ASSERT_TRUE(solve.solved);
  EXPECT_EQ(solve.cut_weight, 1);
  EXPECT_EQ(solve.cut_weight, weighted_cut(h, solve.sides));
  EXPECT_EQ(solve.flow_value, 1);
  // Exterior vertices never move.
  EXPECT_EQ(solve.sides[0], 0);
  EXPECT_EQ(solve.sides[5], 1);
  EXPECT_GT(solve.gadget_arcs, 0U);
}

TEST(SolveCorridor, MatchesBruteForceOnHandInstances) {
  // Figure 4 with two modules flipped away from the optimum; the corridor
  // covers everything except one anchor per side, so the solve must land
  // exactly on the constrained brute-force optimum.
  const Hypergraph h = test::figure4_hypergraph();
  std::vector<std::uint8_t> sides = test::figure4_expected_sides();
  sides[2] = 1 - sides[2];
  sides[6] = 1 - sides[6];
  std::vector<std::uint8_t> in_corridor(h.num_vertices(), 1);
  in_corridor[0] = 0;  // side-0 anchor
  in_corridor[4] = 0;  // side-1 anchor
  ASSERT_EQ(sides[0], 0);
  ASSERT_EQ(sides[4], 1);
  const ml::CorridorSolve solve = ml::solve_corridor(h, sides, in_corridor);
  ASSERT_TRUE(solve.solved);
  EXPECT_EQ(solve.cut_weight, weighted_cut(h, solve.sides));
  EXPECT_EQ(solve.cut_weight,
            brute_force_corridor_min_cut(h, sides, in_corridor));
  EXPECT_EQ(solve.sides[0], 0);
  EXPECT_EQ(solve.sides[4], 1);
}

TEST(SolveCorridor, MatchesBruteForceOnWeightedNets) {
  // Weighted chain 0-1-2-3-4: the cheapest net is in the middle, so the
  // min cut must pick it over the boundary-adjacent heavy nets.
  HypergraphBuilder b;
  b.add_vertices(5);
  b.add_edge({0, 1}, 7);
  b.add_edge({1, 2}, 5);
  b.add_edge({2, 3}, 2);
  b.add_edge({3, 4}, 9);
  const Hypergraph h = std::move(b).build();
  const std::vector<std::uint8_t> sides = {0, 1, 0, 1, 1};
  const std::vector<std::uint8_t> in_corridor = {0, 1, 1, 1, 0};
  const ml::CorridorSolve solve = ml::solve_corridor(h, sides, in_corridor);
  ASSERT_TRUE(solve.solved);
  EXPECT_EQ(solve.cut_weight, 2);
  EXPECT_EQ(solve.cut_weight,
            brute_force_corridor_min_cut(h, sides, in_corridor));
  EXPECT_EQ(solve.cut_weight, weighted_cut(h, solve.sides));
}

TEST(SolveCorridor, MatchesBruteForceOnRandomInstances) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(seed);
    RandomHypergraphParams params;
    params.num_vertices = static_cast<VertexId>(6 + rng.next_below(5));
    params.num_edges = static_cast<EdgeId>(8 + rng.next_below(12));
    params.max_edge_size = 4;
    const Hypergraph h = random_hypergraph(params, rng());
    const VertexId n = h.num_vertices();
    std::vector<std::uint8_t> sides(n);
    for (VertexId v = 0; v < n; ++v) sides[v] = rng.next_bool(0.5) ? 1 : 0;
    // Random corridor, then force one exterior anchor per side so the
    // solve is never degenerate.
    std::vector<std::uint8_t> in_corridor(n);
    for (VertexId v = 0; v < n; ++v) {
      in_corridor[v] = rng.next_bool(0.6) ? 1 : 0;
    }
    VertexId anchor0 = kInvalidVertex;
    VertexId anchor1 = kInvalidVertex;
    for (VertexId v = 0; v < n; ++v) {
      if (sides[v] == 0 && anchor0 == kInvalidVertex) anchor0 = v;
      if (sides[v] == 1 && anchor1 == kInvalidVertex) anchor1 = v;
    }
    if (anchor0 == kInvalidVertex || anchor1 == kInvalidVertex) continue;
    in_corridor[anchor0] = 0;
    in_corridor[anchor1] = 0;
    const ml::CorridorSolve solve = ml::solve_corridor(h, sides, in_corridor);
    if (!solve.solved) {
      EXPECT_EQ(solve.sides, sides) << "seed " << seed;
      continue;
    }
    EXPECT_EQ(solve.cut_weight, weighted_cut(h, solve.sides))
        << "seed " << seed;
    EXPECT_EQ(solve.cut_weight,
              brute_force_corridor_min_cut(h, sides, in_corridor))
        << "seed " << seed;
    for (VertexId v = 0; v < n; ++v) {
      if (in_corridor[v] == 0) {
        ASSERT_EQ(solve.sides[v], sides[v]) << "seed " << seed;
      }
    }
  }
}

TEST(SolveCorridor, DegenerateCorridorsReturnUnsolved) {
  const Hypergraph h = test::path_hypergraph(4);
  const std::vector<std::uint8_t> sides = {0, 0, 1, 1};
  // Empty corridor: nothing to move.
  EXPECT_FALSE(ml::solve_corridor(h, sides, {0, 0, 0, 0}).solved);
  // Whole instance in the corridor: a side has no anchor left.
  EXPECT_FALSE(ml::solve_corridor(h, sides, {1, 1, 1, 1}).solved);
  // One side fully absorbed: its terminal has no module behind it.
  EXPECT_FALSE(ml::solve_corridor(h, sides, {1, 1, 0, 0}).solved);
  // Unsolved solves leave the assignment untouched.
  const ml::CorridorSolve solve = ml::solve_corridor(h, sides, {1, 1, 1, 1});
  EXPECT_EQ(solve.sides, sides);
}

TEST(SolveCorridor, CapacityOverflowFailsTyped) {
  // One net's weight alone reaches kInfiniteCapacity: must throw, never
  // saturate past the uncuttable arcs.
  constexpr Weight kHalf = std::numeric_limits<Weight>::max() / 2;
  {
    HypergraphBuilder b;
    b.add_vertices(4);
    b.add_edge({1, 2}, kHalf);
    const Hypergraph h = std::move(b).build();
    const std::vector<std::uint8_t> sides = {0, 0, 1, 1};
    const std::vector<std::uint8_t> in_corridor = {0, 1, 1, 0};
    EXPECT_THROW((void)ml::solve_corridor(h, sides, in_corridor),
                 PreconditionError);
  }
  // Each net is individually fine but the running sum crosses the
  // capacity ceiling: the accumulation guard must fire.
  constexpr Weight kJustUnder = (FlowNetwork::kInfiniteCapacity / 2) + 1;
  {
    HypergraphBuilder b;
    b.add_vertices(4);
    b.add_edge({1, 2}, kJustUnder);
    b.add_edge({1, 2}, kJustUnder);
    const Hypergraph h = std::move(b).build();
    const std::vector<std::uint8_t> sides = {0, 0, 1, 1};
    const std::vector<std::uint8_t> in_corridor = {0, 1, 1, 0};
    EXPECT_THROW((void)ml::solve_corridor(h, sides, in_corridor),
                 PreconditionError);
  }
  // And the refiner propagates the typed failure instead of adopting a
  // silently-wrong candidate.
  {
    HypergraphBuilder b;
    b.add_vertices(6);
    b.add_edge({0, 1});
    b.add_edge({1, 2}, kHalf);
    b.add_edge({2, 3}, kHalf);
    b.add_edge({4, 5});
    const Hypergraph h = std::move(b).build();
    std::vector<std::uint8_t> sides = {0, 0, 1, 1, 0, 1};
    ml::FlowRefiner refiner;
    EXPECT_THROW((void)refiner.refine(h, sides, 1), PreconditionError);
  }
}

// ---------------------------------------------------------------------------
// FlowRefiner: the Refiner contract

TEST(FlowRefine, RepairsAnAlternatingPathToTheOptimum) {
  const Hypergraph h = test::path_hypergraph(16);
  std::vector<std::uint8_t> sides(16);
  for (VertexId v = 0; v < 16; ++v) sides[v] = v & 1U;
  ASSERT_EQ(weighted_cut(h, sides), 15);
  ml::FlowRefiner refiner;
  const Weight improvement = refiner.refine(h, sides, 3);
  EXPECT_EQ(improvement, 14);
  EXPECT_EQ(weighted_cut(h, sides), 1);
  // Adoption respected the balance allowance (tolerance 0.10 of 16).
  EXPECT_LE(imbalance_of(h, sides), 2);
  EXPECT_EQ(std::string(refiner.name()), "flow");
}

TEST(FlowRefine, ImprovesAWorstCaseTwoClusterStart) {
  const Hypergraph h = test::two_cluster_hypergraph(12, 2);
  std::vector<std::uint8_t> sides(h.num_vertices());
  for (std::size_t v = 0; v < sides.size(); ++v) {
    sides[v] = static_cast<std::uint8_t>(v & 1U);
  }
  const Weight before = weighted_cut(h, sides);
  ml::FlowRefiner refiner;
  const Weight improvement = refiner.refine(h, sides, 9);
  const Weight after = weighted_cut(h, sides);
  EXPECT_EQ(improvement, before - after);
  EXPECT_LT(after, before);
  EXPECT_TRUE(validate::audit_partition(h, sides).ok());
}

TEST(FlowRefine, NeverWorsensOverTheFuzzZoo) {
  // 50 instances x random starts: cut never grows, the returned
  // improvement is exactly the cut delta, the partition stays legal, and
  // the balance never leaves the refiner's allowance.
  int refined = 0;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed * 977 + 11);
    Hypergraph h = [&]() {
      switch (seed % 3) {
        case 0: {
          PlantedParams p;
          p.num_vertices = static_cast<VertexId>(12 + rng.next_below(40));
          p.num_edges = static_cast<EdgeId>(20 + rng.next_below(60));
          p.planted_cut = static_cast<EdgeId>(rng.next_below(4));
          p.max_edge_size = 3;
          return planted_instance(p, rng()).hypergraph;
        }
        case 1: {
          CircuitParams p;
          p.num_modules = static_cast<VertexId>(12 + rng.next_below(40));
          p.num_nets = static_cast<EdgeId>(p.num_modules + rng.next_below(30));
          p.max_net_size = 5;
          p.weight_geometric_p = rng.next_bool(0.5) ? 0.4 : 0.0;
          return generate_circuit(p, rng());
        }
        default: {
          RandomHypergraphParams p;
          p.num_vertices = static_cast<VertexId>(8 + rng.next_below(40));
          p.num_edges = static_cast<EdgeId>(10 + rng.next_below(50));
          p.max_edge_size = 4;
          return random_hypergraph(p, rng());
        }
      }
    }();
    std::vector<std::uint8_t> sides(h.num_vertices());
    for (auto& s : sides) s = rng.next_bool(0.5) ? 1 : 0;
    const Weight before = weighted_cut(h, sides);
    const Weight imbalance_before = imbalance_of(h, sides);
    ml::FlowRefinerOptions options;
    const auto tol_abs = std::max(
        Weight{2},
        static_cast<Weight>(options.balance_tolerance *
                            static_cast<double>(h.total_vertex_weight())));
    ml::FlowRefiner refiner(options);
    const Weight improvement = refiner.refine(h, sides, seed);
    const Weight after = weighted_cut(h, sides);
    ASSERT_GE(improvement, 0) << "seed " << seed;
    ASSERT_EQ(improvement, before - after) << "seed " << seed;
    ASSERT_LE(after, before) << "seed " << seed;
    ASSERT_TRUE(validate::audit_partition(h, sides).ok()) << "seed " << seed;
    ASSERT_LE(imbalance_of(h, sides), std::max(tol_abs, imbalance_before))
        << "seed " << seed;
    if (improvement > 0) ++refined;
  }
  // The zoo must actually exercise adoption, not just the no-op path.
  EXPECT_GT(refined, 10);
}

TEST(FlowRefine, TinyAndCutFreeInputsAreNoOps) {
  const Hypergraph tiny = test::path_hypergraph(3);
  std::vector<std::uint8_t> tiny_sides = {0, 1, 0};
  ml::FlowRefiner refiner;  // default min_vertices = 4
  EXPECT_EQ(refiner.refine(tiny, tiny_sides, 1), 0);
  EXPECT_EQ(tiny_sides, (std::vector<std::uint8_t>{0, 1, 0}));

  const Hypergraph h = test::path_hypergraph(8);
  std::vector<std::uint8_t> clean(8, 0);
  for (VertexId v = 4; v < 8; ++v) clean[v] = 1;
  ASSERT_EQ(weighted_cut(h, clean), 1);  // already optimal
  const std::vector<std::uint8_t> copy = clean;
  EXPECT_EQ(refiner.refine(h, clean, 1), 0);
  EXPECT_EQ(clean, copy);
}

// ---------------------------------------------------------------------------
// RefinerChoice plumbing

TEST(FlowRefine, RefinerChoiceNamesAreStable) {
  EXPECT_STREQ(ml::to_string(ml::RefinerChoice::kFm), "fm");
  EXPECT_STREQ(ml::to_string(ml::RefinerChoice::kFlow), "flow");
  EXPECT_STREQ(ml::to_string(ml::RefinerChoice::kFlowFm), "flow+fm");
  EXPECT_STREQ(ml::make_refiner(ml::RefinerChoice::kFm)->name(), "fm");
  EXPECT_STREQ(ml::make_refiner(ml::RefinerChoice::kFlow)->name(), "flow");
  EXPECT_STREQ(ml::make_refiner(ml::RefinerChoice::kFlowFm)->name(),
               "flow+fm");
}

TEST(FlowRefine, FlowFmComposesBothPasses) {
  const Hypergraph h = test::two_cluster_hypergraph(10, 1);
  std::vector<std::uint8_t> sides(h.num_vertices());
  for (std::size_t v = 0; v < sides.size(); ++v) {
    sides[v] = static_cast<std::uint8_t>(v & 1U);
  }
  const Weight before = weighted_cut(h, sides);
  ml::FlowFmRefiner refiner;
  const Weight improvement = refiner.refine(h, sides, 2);
  EXPECT_EQ(improvement, before - weighted_cut(h, sides));
  EXPECT_LT(weighted_cut(h, sides), before);
  EXPECT_TRUE(validate::audit_partition(h, sides).ok());
}

// ---------------------------------------------------------------------------
// Engine and flat-path wiring

TEST(FlowRefineEngine, EngineRunsWithEveryRefinerChoice) {
  const Hypergraph h = golden_instance("planted120");
  for (const ml::RefinerChoice choice :
       {ml::RefinerChoice::kFm, ml::RefinerChoice::kFlow,
        ml::RefinerChoice::kFlowFm}) {
    ml::EngineOptions options;
    options.coarsening.coarsest_size = 30;
    options.refiner = choice;
    options.seed = 3;
    const ml::MultilevelResult r = ml::multilevel_partition(h, options);
    EXPECT_TRUE(r.metrics.proper) << ml::to_string(choice);
    EXPECT_GE(r.refine_improvement, 0) << ml::to_string(choice);
    EXPECT_LE(r.metrics.cut_weight, r.initial_cut_weight)
        << ml::to_string(choice);
    EXPECT_EQ(r.metrics.cut_edges, test::count_cut_edges(h, r.sides))
        << ml::to_string(choice);
  }
}

TEST(FlowRefineEngine, FlatPostPassNeverWorsensTheFlatResult) {
  const Hypergraph h = golden_instance("circuit150");
  ml::PartitionPlan flat_only;
  flat_only.engine = ml::EngineChoice::kFlat;
  const ml::EngineResult baseline = ml::partition_auto(h, flat_only);
  for (const ml::RefinerChoice choice :
       {ml::RefinerChoice::kFlow, ml::RefinerChoice::kFlowFm}) {
    ml::PartitionPlan plan;
    plan.engine = ml::EngineChoice::kFlat;
    plan.refiner = choice;
    const ml::EngineResult r = ml::partition_auto(h, plan);
    EXPECT_EQ(r.engine_used, ml::EngineChoice::kFlat);
    EXPECT_LE(r.metrics.cut_weight, baseline.metrics.cut_weight)
        << ml::to_string(choice);
    EXPECT_EQ(r.metrics.cut_edges, test::count_cut_edges(h, r.sides))
        << ml::to_string(choice);
    EXPECT_TRUE(validate::audit_partition(h, r.sides).ok())
        << ml::to_string(choice);
  }
}

// ---------------------------------------------------------------------------
// Determinism: the engine's bit-identity contract with flow in the seat
// (mirrors MultilevelEngineIdentity; the TSAN job runs this matrix).

class FlowRefineIdentity : public ::testing::TestWithParam<int> {};

TEST_P(FlowRefineIdentity, BitIdenticalAcrossThreadsMemoReorder) {
  const int threads = GetParam();
  for (const char* name : kGoldenInstances) {
    const Hypergraph h = golden_instance(name);
    std::uint64_t reference = 0;
    bool have_reference = false;
    for (const bool memoize : {true, false}) {
      for (const bool reorder : {true, false}) {
        ml::EngineOptions options;
        options.coarsening.coarsest_size = 30;
        options.initial.num_starts = 8;
        options.initial.memoize_starts = memoize;
        options.initial.reorder = reorder;
        options.refiner = ml::RefinerChoice::kFlowFm;
        options.seed = 11;
        options.threads = threads;
        const ml::MultilevelResult r = ml::multilevel_partition(h, options);
        const std::uint64_t hash = fnv1a(r.sides);
        if (!have_reference) {
          reference = hash;
          have_reference = true;
        }
        EXPECT_EQ(hash, reference)
            << name << " threads=" << threads << " memoize=" << memoize
            << " reorder=" << reorder;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, FlowRefineIdentity,
                         ::testing::Values(1, 2, 8));

TEST(FlowRefineIdentitySerial, RepeatedRefinesAreAPureFunction) {
  // Same hypergraph, same start: two refines through one FlowRefiner (the
  // workspace is reused) and through a fresh one must agree bit for bit.
  const Hypergraph h = golden_instance("grid9x9");
  std::vector<std::uint8_t> start(h.num_vertices());
  Rng rng(5);
  for (auto& s : start) s = rng.next_bool(0.5) ? 1 : 0;
  ml::FlowRefiner reused;
  std::vector<std::uint8_t> a = start;
  const Weight first = reused.refine(h, a, 1);
  std::vector<std::uint8_t> b = start;
  const Weight second = reused.refine(h, b, 1);
  ml::FlowRefiner fresh;
  std::vector<std::uint8_t> c = start;
  const Weight third = fresh.refine(h, c, 1);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, third);
}

}  // namespace
}  // namespace fhp

/// \file test_golden_identity.cpp
/// Bit-identity regression gate for the hot-path optimization work.
///
/// The golden rows below were captured from the seed pipeline and
/// regenerated ONCE when the BFS `farthest` tie-break changed to
/// "smallest vertex id at maximum distance" (the direction-optimizing
/// kernel rewrite — see graph/bfs.hpp; only rows whose pseudo-diameter
/// election was genuinely tied moved, and grid9x9 is bit-for-bit
/// unchanged): an FNV-1a hash of the module-side vector plus
/// the cut for every cell of the options matrix
///   instance x completion x initial-cut x large-net threshold
/// at num_starts = 8, seed = 11. The optimized pipeline must reproduce
/// every hash exactly — at thread counts 1, 2 and 8, with memoization on
/// and off. Any intentional change to partition semantics must regenerate
/// this table and say so in the commit.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/algorithm1.hpp"
#include "gen/circuit.hpp"
#include "gen/grid.hpp"
#include "gen/planted.hpp"

namespace fhp {
namespace {

/// FNV-1a over the side bytes: order-sensitive, so equal hashes mean the
/// exact same side assignment, not merely the same cut value.
std::uint64_t fnv1a(const std::vector<std::uint8_t>& v) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint8_t b : v) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

struct GoldenRow {
  const char* instance;
  int completion;   ///< index into kCompletions
  int initial_cut;  ///< index into kCuts
  std::uint32_t threshold;
  std::uint64_t sides_hash;
  std::uint32_t cut;
};

constexpr CompletionStrategy kCompletions[] = {
    CompletionStrategy::kGreedy, CompletionStrategy::kWeightedGreedy,
    CompletionStrategy::kExact};
constexpr InitialCutStrategy kCuts[] = {InitialCutStrategy::kBidirectionalBfs,
                                        InitialCutStrategy::kLevelSweep};

// Captured from the current pipeline (see file comment for the one
// regeneration). 3 instances x 3 completions x 2 initial cuts x 3
// thresholds = 54 rows.
constexpr GoldenRow kGolden[] = {
    {"circuit150", 0, 0, 0U, 0xd14be278a35c76ebULL, 10U},
    {"circuit150", 0, 0, 6U, 0x4ea8e2e107f16073ULL, 24U},
    {"circuit150", 0, 0, 10U, 0x4ea8e2e107f16073ULL, 24U},
    {"circuit150", 0, 1, 0U, 0xb2b0b20109a7b216ULL, 0U},
    {"circuit150", 0, 1, 6U, 0x4d564b57cc2406bcULL, 9U},
    {"circuit150", 0, 1, 10U, 0x886940a6a11150c1ULL, 8U},
    {"circuit150", 1, 0, 0U, 0xf305f02bdaa562f7ULL, 24U},
    {"circuit150", 1, 0, 6U, 0x8f3557925962132aULL, 24U},
    {"circuit150", 1, 0, 10U, 0x8f3557925962132aULL, 24U},
    {"circuit150", 1, 1, 0U, 0x6edc28e48475315eULL, 52U},
    {"circuit150", 1, 1, 6U, 0x589d884ca80e1a00ULL, 13U},
    {"circuit150", 1, 1, 10U, 0x589d884ca80e1a00ULL, 13U},
    {"circuit150", 2, 0, 0U, 0xd14be278a35c76ebULL, 10U},
    {"circuit150", 2, 0, 6U, 0xb72bce16e5beb3cdULL, 24U},
    {"circuit150", 2, 0, 10U, 0xb72bce16e5beb3cdULL, 24U},
    {"circuit150", 2, 1, 0U, 0xb2b0b20109a7b216ULL, 0U},
    {"circuit150", 2, 1, 6U, 0x0fe678d42a66bcaeULL, 10U},
    {"circuit150", 2, 1, 10U, 0x44a671348f133d14ULL, 8U},
    {"planted120", 0, 0, 0U, 0x3226c69b1dffb955ULL, 4U},
    {"planted120", 0, 0, 6U, 0x3226c69b1dffb955ULL, 4U},
    {"planted120", 0, 0, 10U, 0x3226c69b1dffb955ULL, 4U},
    {"planted120", 0, 1, 0U, 0xb3d6878ad4e48cfeULL, 5U},
    {"planted120", 0, 1, 6U, 0xb3d6878ad4e48cfeULL, 5U},
    {"planted120", 0, 1, 10U, 0xb3d6878ad4e48cfeULL, 5U},
    {"planted120", 1, 0, 0U, 0xbecc04a2b9e80109ULL, 9U},
    {"planted120", 1, 0, 6U, 0xbecc04a2b9e80109ULL, 9U},
    {"planted120", 1, 0, 10U, 0xbecc04a2b9e80109ULL, 9U},
    {"planted120", 1, 1, 0U, 0x168d9369ad591b45ULL, 5U},
    {"planted120", 1, 1, 6U, 0x168d9369ad591b45ULL, 5U},
    {"planted120", 1, 1, 10U, 0x168d9369ad591b45ULL, 5U},
    {"planted120", 2, 0, 0U, 0x3226c69b1dffb955ULL, 4U},
    {"planted120", 2, 0, 6U, 0x3226c69b1dffb955ULL, 4U},
    {"planted120", 2, 0, 10U, 0x3226c69b1dffb955ULL, 4U},
    {"planted120", 2, 1, 0U, 0xb3d6878ad4e48cfeULL, 5U},
    {"planted120", 2, 1, 6U, 0xb3d6878ad4e48cfeULL, 5U},
    {"planted120", 2, 1, 10U, 0xb3d6878ad4e48cfeULL, 5U},
    {"grid9x9", 0, 0, 0U, 0x6780c9f0620f980eULL, 18U},
    {"grid9x9", 0, 0, 6U, 0x6780c9f0620f980eULL, 18U},
    {"grid9x9", 0, 0, 10U, 0x6780c9f0620f980eULL, 18U},
    {"grid9x9", 0, 1, 0U, 0x9c1ad0029185ffbdULL, 13U},
    {"grid9x9", 0, 1, 6U, 0x9c1ad0029185ffbdULL, 13U},
    {"grid9x9", 0, 1, 10U, 0x9c1ad0029185ffbdULL, 13U},
    {"grid9x9", 1, 0, 0U, 0x065c9f5c59910ffdULL, 19U},
    {"grid9x9", 1, 0, 6U, 0x065c9f5c59910ffdULL, 19U},
    {"grid9x9", 1, 0, 10U, 0x065c9f5c59910ffdULL, 19U},
    {"grid9x9", 1, 1, 0U, 0x8cbc807d108edbcfULL, 14U},
    {"grid9x9", 1, 1, 6U, 0x8cbc807d108edbcfULL, 14U},
    {"grid9x9", 1, 1, 10U, 0x8cbc807d108edbcfULL, 14U},
    {"grid9x9", 2, 0, 0U, 0x05c1e1e4014492a4ULL, 16U},
    {"grid9x9", 2, 0, 6U, 0x05c1e1e4014492a4ULL, 16U},
    {"grid9x9", 2, 0, 10U, 0x05c1e1e4014492a4ULL, 16U},
    {"grid9x9", 2, 1, 0U, 0x8cbc807d108edbcfULL, 14U},
    {"grid9x9", 2, 1, 6U, 0x8cbc807d108edbcfULL, 14U},
    {"grid9x9", 2, 1, 10U, 0x8cbc807d108edbcfULL, 14U},
};

Hypergraph golden_instance(const char* name) {
  const std::string n = name;
  if (n == "circuit150") {
    return generate_circuit(table2_params(150, 260, Technology::kStandardCell),
                            7);
  }
  if (n == "planted120") {
    PlantedParams p;
    p.num_vertices = 120;
    p.num_edges = 200;
    p.planted_cut = 4;
    p.min_edge_size = 2;
    p.max_edge_size = 2;
    p.max_degree = 0;
    return planted_instance(p, 5).hypergraph;
  }
  EXPECT_STREQ(name, "grid9x9");
  return grid_circuit({9, 9, 0.3, false}, 3);
}

class GoldenIdentity : public ::testing::TestWithParam<int> {};

TEST_P(GoldenIdentity, MatchesPrePrPartitionsAcrossOptionsMatrix) {
  const int threads = GetParam();
  const char* current = "";
  Hypergraph h;
  for (const GoldenRow& row : kGolden) {
    if (std::string(current) != row.instance) {
      current = row.instance;
      h = golden_instance(row.instance);
    }
    for (const bool memoize : {true, false}) {
      for (const bool reorder : {true, false}) {
        Algorithm1Options options;
        options.completion = kCompletions[row.completion];
        options.initial_cut = kCuts[row.initial_cut];
        options.large_edge_threshold = row.threshold;
        options.num_starts = 8;
        options.seed = 11;
        options.threads = threads;
        options.memoize_starts = memoize;
        options.reorder = reorder;
        const Algorithm1Result result = algorithm1(h, options);
        EXPECT_EQ(fnv1a(result.sides), row.sides_hash)
            << row.instance << " completion=" << row.completion
            << " cut=" << row.initial_cut << " threshold=" << row.threshold
            << " threads=" << threads << " memoize=" << memoize
            << " reorder=" << reorder;
        EXPECT_EQ(result.metrics.cut_edges, row.cut)
            << row.instance << " completion=" << row.completion
            << " cut=" << row.initial_cut << " threshold=" << row.threshold
            << " threads=" << threads << " memoize=" << memoize
            << " reorder=" << reorder;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, GoldenIdentity, ::testing::Values(1, 2, 8));

}  // namespace
}  // namespace fhp

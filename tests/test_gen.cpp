#include <gtest/gtest.h>

#include "core/intersection.hpp"
#include "gen/circuit.hpp"
#include "gen/planted.hpp"
#include "gen/random_hypergraph.hpp"
#include "graph/components.hpp"
#include "graph/diameter.hpp"
#include "hypergraph/stats.hpp"
#include "test_helpers.hpp"
#include "util/stats.hpp"

namespace fhp {
namespace {

TEST(RandomHypergraph, RespectsStructuralBounds) {
  RandomHypergraphParams params;
  params.num_vertices = 80;
  params.num_edges = 120;
  params.min_edge_size = 2;
  params.max_edge_size = 5;
  params.max_degree = 4;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Hypergraph h = random_hypergraph(params, seed);
    h.validate();
    EXPECT_EQ(h.num_vertices(), 80U);
    EXPECT_LE(h.num_edges(), 120U);
    for (EdgeId e = 0; e < h.num_edges(); ++e) {
      EXPECT_GE(h.edge_size(e), 2U);
      EXPECT_LE(h.edge_size(e), 5U);
    }
    EXPECT_LE(h.max_degree(), 4U);
  }
}

TEST(RandomHypergraph, UnboundedDegreeAllowed) {
  RandomHypergraphParams params;
  params.num_vertices = 20;
  params.num_edges = 100;
  params.max_degree = 0;
  const Hypergraph h = random_hypergraph(params, 1);
  EXPECT_GT(h.num_edges(), 80U);
}

TEST(RandomHypergraph, DeterministicPerSeed) {
  RandomHypergraphParams params;
  const Hypergraph a = random_hypergraph(params, 5);
  const Hypergraph b = random_hypergraph(params, 5);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.num_pins(), b.num_pins());
}

TEST(RandomHypergraph, Preconditions) {
  RandomHypergraphParams params;
  params.min_edge_size = 1;
  EXPECT_THROW((void)random_hypergraph(params, 1), PreconditionError);
  params.min_edge_size = 5;
  params.max_edge_size = 3;
  EXPECT_THROW((void)random_hypergraph(params, 1), PreconditionError);
}

TEST(Planted, GroundTruthCutMatches) {
  PlantedParams params;
  params.num_vertices = 100;
  params.num_edges = 150;
  params.planted_cut = 5;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const PlantedInstance inst = planted_instance(params, seed);
    inst.hypergraph.validate();
    // Realized planted cut equals the count of nets crossing the hidden
    // bisection, and stays at most the requested budget.
    EXPECT_EQ(inst.planted_cut,
              test::count_cut_edges(inst.hypergraph, inst.planted_sides));
    EXPECT_LE(inst.planted_cut, 5U);
    EXPECT_GE(inst.planted_cut, 1U);  // whp all 5 survive; >= 1 surely
  }
}

TEST(Planted, ZeroCutIsDisconnectedDual) {
  PlantedParams params;
  params.num_vertices = 60;
  params.num_edges = 90;
  params.planted_cut = 0;
  const PlantedInstance inst = planted_instance(params, 3);
  EXPECT_EQ(inst.planted_cut, 0U);
  const Graph g = intersection_graph(inst.hypergraph);
  EXPECT_FALSE(is_connected(g));
}

TEST(Planted, HalvesAreEqualSize) {
  PlantedParams params;
  params.num_vertices = 100;
  const PlantedInstance inst = planted_instance(params, 1);
  VertexId left = 0;
  for (std::uint8_t s : inst.planted_sides) {
    if (s == 0) ++left;
  }
  EXPECT_EQ(left, 50U);
}

TEST(Planted, DegreeCapRespected) {
  PlantedParams params;
  params.num_vertices = 80;
  params.num_edges = 200;
  params.max_degree = 5;
  const PlantedInstance inst = planted_instance(params, 7);
  EXPECT_LE(inst.hypergraph.max_degree(), 5U);
}

TEST(Planted, Preconditions) {
  PlantedParams params;
  params.planted_cut = 1000;
  params.num_edges = 10;
  EXPECT_THROW((void)planted_instance(params, 1), PreconditionError);
}

TEST(Circuit, PresetsProduceRequestedShape) {
  for (Technology tech : {Technology::kPcb, Technology::kStandardCell,
                          Technology::kGateArray, Technology::kHybrid}) {
    const CircuitParams params = params_for(tech);
    const Hypergraph h = generate_circuit(params, 42);
    h.validate();
    EXPECT_EQ(h.num_vertices(), params.num_modules);
    EXPECT_LE(h.num_edges(), params.num_nets);
    EXPECT_GT(h.num_edges(), params.num_nets / 2);
    const HypergraphStats s = compute_stats(h);
    EXPECT_GE(s.avg_edge_size, 2.0);
    EXPECT_LT(s.avg_edge_size, 8.0);
  }
}

TEST(Circuit, BusNetsPresent) {
  CircuitParams params = standard_cell_params();
  params.bus_fraction = 0.05;
  const Hypergraph h = generate_circuit(params, 9);
  EXPECT_GE(h.max_edge_size(), params.bus_size_min);
}

TEST(Circuit, WeightsSpreadWhenConfigured) {
  const Hypergraph unit = generate_circuit(pcb_params(), 3);
  for (VertexId v = 0; v < unit.num_vertices(); ++v) {
    EXPECT_EQ(unit.vertex_weight(v), 1);
  }
  const Hypergraph spread = generate_circuit(standard_cell_params(), 3);
  bool any_heavy = false;
  for (VertexId v = 0; v < spread.num_vertices(); ++v) {
    if (spread.vertex_weight(v) > 1) any_heavy = true;
  }
  EXPECT_TRUE(any_heavy);
}

TEST(Circuit, LocalityRaisesIntersectionDiameter) {
  // The paper's closing observation: real (hierarchical) netlists have
  // larger intersection-graph diameter than random ones of similar size.
  CircuitParams local = standard_cell_params(0.4);
  local.locality = 0.9;
  CircuitParams global = local;
  global.locality = 0.0;
  global.window_fraction = 1.0;  // every net drawn design-wide
  RunningStats local_diam;
  RunningStats global_diam;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    Rng rng_l(seed);
    Rng rng_g(seed);
    const Graph gl = intersection_graph(generate_circuit(local, seed));
    const Graph gg = intersection_graph(generate_circuit(global, seed));
    local_diam.add(estimate_diameter(gl, rng_l, 4));
    global_diam.add(estimate_diameter(gg, rng_g, 4));
  }
  EXPECT_GT(local_diam.mean(), global_diam.mean());
}

TEST(Circuit, DeterministicPerSeed) {
  const CircuitParams params = gate_array_params(0.5);
  const Hypergraph a = generate_circuit(params, 11);
  const Hypergraph b = generate_circuit(params, 11);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.num_pins(), b.num_pins());
}

TEST(Circuit, Table2ParamsOverrideCounts) {
  const CircuitParams p = table2_params(103, 211, Technology::kPcb);
  EXPECT_EQ(p.num_modules, 103U);
  EXPECT_EQ(p.num_nets, 211U);
}

TEST(Circuit, TechnologyNames) {
  EXPECT_EQ(technology_name(Technology::kPcb), "PCB");
  EXPECT_EQ(technology_name(Technology::kHybrid), "Hybrid");
}

}  // namespace
}  // namespace fhp

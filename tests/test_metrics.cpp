#include "partition/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_helpers.hpp"

namespace fhp {
namespace {

TEST(Metrics, BasicFields) {
  const Hypergraph h = test::path_hypergraph(4);
  const Bipartition p(h, {0, 0, 1, 1});
  const PartitionMetrics m = compute_metrics(p);
  EXPECT_EQ(m.cut_edges, 1U);
  EXPECT_EQ(m.cut_weight, 1);
  EXPECT_EQ(m.left_count, 2U);
  EXPECT_EQ(m.right_count, 2U);
  EXPECT_EQ(m.cardinality_imbalance, 0U);
  EXPECT_TRUE(m.proper);
  EXPECT_DOUBLE_EQ(m.quotient_cut, 0.25);
  EXPECT_DOUBLE_EQ(m.ratio_cut, 0.5);
}

TEST(Metrics, ImproperCutHasInfiniteQuotient) {
  const Hypergraph h = test::path_hypergraph(3);
  const Bipartition p(h);  // everything on one side
  EXPECT_TRUE(std::isinf(quotient_cut(p)));
  EXPECT_TRUE(std::isinf(ratio_cut(p)));
  EXPECT_FALSE(compute_metrics(p).proper);
}

TEST(Metrics, QuotientPrefersBalance) {
  // Same cut weight, different balance: quotient favors the even split.
  const Hypergraph h = test::path_hypergraph(6);
  const Bipartition even(h, {0, 0, 0, 1, 1, 1});
  const Bipartition skewed(h, {0, 1, 1, 1, 1, 1});
  EXPECT_EQ(even.cut_edges(), skewed.cut_edges());
  EXPECT_LT(quotient_cut(even), quotient_cut(skewed));
}

TEST(Metrics, RBalanceAndBisection) {
  const Hypergraph h = test::path_hypergraph(5);
  const Bipartition p(h, {0, 0, 0, 1, 1});
  EXPECT_TRUE(satisfies_r_balance(p, 1));
  EXPECT_TRUE(is_bisection(p));
  const Bipartition q(h, {0, 0, 0, 0, 1});
  EXPECT_FALSE(is_bisection(q));
  EXPECT_TRUE(satisfies_r_balance(q, 3));
  EXPECT_FALSE(satisfies_r_balance(q, 2));
}

TEST(Metrics, WeightedCut) {
  HypergraphBuilder b;
  b.add_vertices(4);
  b.add_edge({0, 1}, 10);
  b.add_edge({1, 2}, 3);
  b.add_edge({2, 3}, 10);
  const Hypergraph h = std::move(b).build();
  const Bipartition p(h, {0, 0, 1, 1});
  const PartitionMetrics m = compute_metrics(p);
  EXPECT_EQ(m.cut_edges, 1U);
  EXPECT_EQ(m.cut_weight, 3);
  EXPECT_DOUBLE_EQ(m.quotient_cut, 3.0 / 4.0);
}

TEST(Metrics, ToStringMentionsCut) {
  const Hypergraph h = test::path_hypergraph(4);
  const PartitionMetrics m = compute_metrics(Bipartition(h, {0, 0, 1, 1}));
  EXPECT_NE(to_string(m).find("cut=1"), std::string::npos);
}

}  // namespace
}  // namespace fhp

#include "graph/bfs.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace fhp {
namespace {

Graph path_graph(VertexId n) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return Graph::from_edges(n, edges);
}

TEST(Bfs, DistancesOnPath) {
  const Graph g = path_graph(6);
  const BfsResult r = bfs(g, 0);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(r.distance[v], v);
  EXPECT_EQ(r.farthest, 5U);
  EXPECT_EQ(r.depth, 5U);
  EXPECT_EQ(r.reached, 6U);
}

TEST(Bfs, MidpointSource) {
  const Graph g = path_graph(7);
  const BfsResult r = bfs(g, 3);
  EXPECT_EQ(r.depth, 3U);
  EXPECT_TRUE(r.farthest == 0U || r.farthest == 6U);
}

TEST(Bfs, UnreachableMarked) {
  const Graph g = Graph::from_edges(4, {{0, 1}});
  const BfsResult r = bfs(g, 0);
  EXPECT_EQ(r.distance[2], kUnreachable);
  EXPECT_EQ(r.distance[3], kUnreachable);
  EXPECT_EQ(r.reached, 2U);
}

TEST(Bfs, SourceOutOfRangeThrows) {
  const Graph g = path_graph(3);
  EXPECT_THROW((void)bfs(g, 3), PreconditionError);
}

TEST(Bfs, SingleVertex) {
  const Graph g = Graph::from_edges(1, {});
  const BfsResult r = bfs(g, 0);
  EXPECT_EQ(r.depth, 0U);
  EXPECT_EQ(r.farthest, 0U);
}

TEST(LongestPath, FindsPathDiameterFromAnyStart) {
  const Graph g = path_graph(10);
  for (VertexId start = 0; start < 10; ++start) {
    const DiameterPair pair = longest_path_from(g, start, 2);
    EXPECT_EQ(pair.distance, 9U) << "start " << start;
    EXPECT_TRUE((pair.s == 0U && pair.t == 9U) ||
                (pair.s == 9U && pair.t == 0U));
  }
}

TEST(LongestPath, SingleSweepFromEndpoint) {
  const Graph g = path_graph(8);
  const DiameterPair pair = longest_path_from(g, 0, 1);
  EXPECT_EQ(pair.s, 0U);
  EXPECT_EQ(pair.t, 7U);
  EXPECT_EQ(pair.distance, 7U);
}

TEST(LongestPath, RandomizedLowerBoundsDiameter) {
  Rng rng(5);
  const Graph g = test::connected_random_graph(60, 0.05, 11);
  const DiameterPair pair = random_longest_path(g, rng);
  // d(s, t) is always a valid distance, so it lower-bounds the diameter
  // and the endpoints must realize it.
  const BfsResult check = bfs(g, pair.s);
  EXPECT_EQ(check.distance[pair.t], pair.distance);
}

TEST(LongestPath, RequiresPositiveSweeps) {
  const Graph g = path_graph(3);
  EXPECT_THROW((void)longest_path_from(g, 0, 0), PreconditionError);
}

TEST(BidirectionalCut, SplitsPathInHalf) {
  const Graph g = path_graph(10);
  const BidirectionalCut cut = bidirectional_bfs_cut(g, 0, 9);
  EXPECT_EQ(cut.reached_s + cut.reached_t, 10U);
  EXPECT_EQ(cut.reached_s, 5U);
  EXPECT_EQ(cut.reached_t, 5U);
  // Sides are contiguous on a path.
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(cut.side[v], 0);
  for (VertexId v = 5; v < 10; ++v) EXPECT_EQ(cut.side[v], 1);
}

TEST(BidirectionalCut, EveryVertexOfComponentClaimed) {
  const Graph g = test::connected_random_graph(80, 0.04, 17);
  const BidirectionalCut cut = bidirectional_bfs_cut(g, 0, 79);
  for (VertexId v = 0; v < 80; ++v) EXPECT_NE(cut.side[v], 2);
  EXPECT_EQ(cut.reached_s + cut.reached_t, 80U);
}

TEST(BidirectionalCut, OtherComponentsUnclaimed) {
  const Graph g = Graph::from_edges(5, {{0, 1}, {2, 3}});
  const BidirectionalCut cut = bidirectional_bfs_cut(g, 0, 1);
  EXPECT_EQ(cut.side[0], 0);
  EXPECT_EQ(cut.side[1], 1);
  EXPECT_EQ(cut.side[2], 2);
  EXPECT_EQ(cut.side[4], 2);
}

TEST(BidirectionalCut, RegionsStayBalancedOnStar) {
  // Star with long tail: seeds at tail end and a leaf. The smaller-region-
  // first rule keeps counts within a factor instead of one side swallowing
  // everything.
  std::vector<std::pair<VertexId, VertexId>> edges;
  // hub = 0, leaves 1..20, tail 21..25
  for (VertexId l = 1; l <= 20; ++l) edges.emplace_back(0, l);
  edges.emplace_back(0, 21);
  for (VertexId t = 21; t < 25; ++t) edges.emplace_back(t, t + 1);
  const Graph g = Graph::from_edges(26, edges);
  const BidirectionalCut cut = bidirectional_bfs_cut(g, 25, 1);
  EXPECT_EQ(cut.reached_s + cut.reached_t, 26U);
  EXPECT_GT(cut.reached_s, 0U);
  EXPECT_GT(cut.reached_t, 0U);
}

TEST(BidirectionalCut, Preconditions) {
  const Graph g = path_graph(4);
  EXPECT_THROW((void)bidirectional_bfs_cut(g, 0, 0), PreconditionError);
  EXPECT_THROW((void)bidirectional_bfs_cut(g, 0, 4), PreconditionError);
}

}  // namespace
}  // namespace fhp

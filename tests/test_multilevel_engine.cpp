/// \file test_multilevel_engine.cpp
/// The multilevel engine (src/multilevel/): coarsener correctness and
/// bit-identity across thread counts, hierarchy projection, the Refiner
/// contract, engine quality, and partition_auto engine selection.
///
/// The determinism matrix mirrors test_golden_identity.cpp: on the golden
/// instances the engine's partition must be bit-identical across threads
/// {1, 2, 8} x reorder on/off x memoize_starts on/off — the coarsener's
/// parallel rating loop and Algorithm I both promise thread-invariance,
/// so any drift here is a regression in one of them.
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gen/circuit.hpp"
#include "gen/grid.hpp"
#include "gen/planted.hpp"
#include "multilevel/coarsen.hpp"
#include "multilevel/engine.hpp"
#include "multilevel/hierarchy.hpp"
#include "multilevel/refine.hpp"
#include "test_helpers.hpp"
#include "util/parallel.hpp"

namespace fhp {
namespace {

std::uint64_t fnv1a(const std::vector<std::uint8_t>& v) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint8_t b : v) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

Hypergraph golden_instance(const std::string& name) {
  if (name == "circuit150") {
    return generate_circuit(table2_params(150, 260, Technology::kStandardCell),
                            7);
  }
  if (name == "planted120") {
    PlantedParams p;
    p.num_vertices = 120;
    p.num_edges = 200;
    p.planted_cut = 4;
    p.min_edge_size = 2;
    p.max_edge_size = 2;
    p.max_degree = 0;
    return planted_instance(p, 5).hypergraph;
  }
  EXPECT_EQ(name, "grid9x9");
  return grid_circuit({9, 9, 0.3, false}, 3);
}

const char* const kGoldenInstances[] = {"circuit150", "planted120", "grid9x9"};

// ---------------------------------------------------------------------------
// Coarsener

TEST(MultilevelCoarsen, ClusteringIsAPartitionWithinTheWeightCap) {
  for (const char* name : kGoldenInstances) {
    const Hypergraph h = golden_instance(name);
    ml::CoarseningOptions options;
    const ml::ClusteringResult r =
        ml::heavy_edge_clustering(h, {}, options);
    ASSERT_EQ(r.cluster.size(), h.num_vertices()) << name;
    ASSERT_GE(r.num_clusters, 1U) << name;
    Weight max_vertex = 1;
    for (VertexId v = 0; v < h.num_vertices(); ++v) {
      max_vertex = std::max(max_vertex, h.vertex_weight(v));
    }
    const Weight cap = std::max<Weight>(
        {max_vertex,
         static_cast<Weight>(
             static_cast<double>(h.total_vertex_weight()) *
             options.cluster_weight_fraction) +
             1,
         h.total_vertex_weight() /
                 std::max<Weight>(1, options.coarsest_size) +
             1});
    std::vector<Weight> weight(r.num_clusters, 0);
    std::vector<bool> seen(r.num_clusters, false);
    for (VertexId v = 0; v < h.num_vertices(); ++v) {
      ASSERT_LT(r.cluster[v], r.num_clusters) << name;
      weight[r.cluster[v]] += h.vertex_weight(v);
      seen[r.cluster[v]] = true;
    }
    for (VertexId c = 0; c < r.num_clusters; ++c) {
      EXPECT_TRUE(seen[c]) << name << " cluster ids must be dense";
      EXPECT_LE(weight[c], cap) << name << " cluster " << c;
    }
  }
}

TEST(MultilevelCoarsen, ClusteringShrinksCoupledInstances) {
  const Hypergraph h = golden_instance("planted120");
  const ml::ClusteringResult r = ml::heavy_edge_clustering(h, {}, {});
  // 2-pin ~3-regular: nearly every vertex has an attractive partner.
  EXPECT_LT(r.num_clusters, (h.num_vertices() * 3) / 4);
}

TEST(MultilevelCoarsenParallel, ClusteringBitIdenticalAcrossLaneCounts) {
  for (const char* name : kGoldenInstances) {
    const Hypergraph h = golden_instance(name);
    const ml::ClusteringResult serial =
        ml::heavy_edge_clustering(h, {}, {});
    for (int threads : {2, 8}) {
      ThreadPool pool(threads);
      const ml::ClusteringResult parallel =
          ml::heavy_edge_clustering(h, {}, {}, &pool);
      EXPECT_EQ(parallel.num_clusters, serial.num_clusters)
          << name << " threads=" << threads;
      EXPECT_EQ(parallel.cluster, serial.cluster)
          << name << " threads=" << threads;
    }
  }
}

TEST(MultilevelCoarsenParallel, HierarchyBitIdenticalAcrossLaneCounts) {
  for (const char* name : kGoldenInstances) {
    const Hypergraph h = golden_instance(name);
    ml::CoarseningOptions options;
    options.coarsest_size = 30;
    options.coarsest_fraction = 0.0;  // absolute target: deep hierarchy
    const ml::Hierarchy serial = ml::build_hierarchy(h, options);
    for (int threads : {2, 8}) {
      ThreadPool pool(threads);
      const ml::Hierarchy parallel = ml::build_hierarchy(h, options, &pool);
      ASSERT_EQ(parallel.num_levels(), serial.num_levels())
          << name << " threads=" << threads;
      for (std::size_t i = 0; i < serial.num_levels(); ++i) {
        EXPECT_EQ(parallel.level(i).cluster, serial.level(i).cluster)
            << name << " level " << i << " threads=" << threads;
        EXPECT_EQ(parallel.level(i).coarse.num_vertices(),
                  serial.level(i).coarse.num_vertices());
        EXPECT_EQ(parallel.level(i).coarse.num_edges(),
                  serial.level(i).coarse.num_edges());
      }
    }
  }
}

TEST(MultilevelCoarsen, HierarchyRespectsCoarsestSizeAndShrinks) {
  const Hypergraph h = golden_instance("circuit150");
  ml::CoarseningOptions options;
  options.coarsest_size = 30;
  options.coarsest_fraction = 0.0;
  const ml::Hierarchy hierarchy = ml::build_hierarchy(h, options);
  ASSERT_GE(hierarchy.num_levels(), 1U);
  VertexId prev = h.num_vertices();
  for (std::size_t i = 0; i < hierarchy.num_levels(); ++i) {
    const VertexId n = hierarchy.level(i).coarse.num_vertices();
    EXPECT_LT(n, prev) << "level " << i << " must shrink";
    prev = n;
  }
  // Capped clustering lands within a small factor of the target (exact
  // arrival is not promised: once every cluster weighs more than cap/2 no
  // pair is mergeable). Algorithm I is indifferent to 30 vs 60 vertices.
  EXPECT_LE(hierarchy.coarsest().num_vertices(), 2 * options.coarsest_size);
}

TEST(MultilevelCoarsen, StarInstanceStallsInsteadOfLooping) {
  // A star: one hub net connecting everything, no 2-pin locality at all.
  // rating_net_cap excludes the hub net, so no vertex has a partner and
  // coarsening must stop immediately rather than spin on max_levels.
  HypergraphBuilder b;
  std::vector<VertexId> all;
  for (int i = 0; i < 64; ++i) all.push_back(b.add_vertex());
  b.add_edge(std::span<const VertexId>(all));
  const Hypergraph h = std::move(b).build();
  ml::CoarseningOptions options;
  options.coarsest_size = 4;
  const ml::Hierarchy hierarchy = ml::build_hierarchy(h, options);
  EXPECT_EQ(hierarchy.num_levels(), 0U);
  EXPECT_EQ(&hierarchy.coarsest(), &h);
}

// ---------------------------------------------------------------------------
// Hierarchy projection

TEST(MultilevelHierarchy, ProjectionExpandsClustersAndIsAllocationFree) {
  const Hypergraph h = golden_instance("planted120");
  ml::CoarseningOptions options;
  options.coarsest_size = 20;
  options.coarsest_fraction = 0.0;
  ml::Hierarchy hierarchy = ml::build_hierarchy(h, options);
  ASSERT_GE(hierarchy.num_levels(), 2U);
  const std::size_t bytes = hierarchy.projection_bytes();
  EXPECT_GE(bytes, 2 * static_cast<std::size_t>(h.num_vertices()));

  // Alternate sides at the coarsest level, then walk down: every level's
  // output must satisfy fine[v] == coarse[cluster[v]], and the reserved
  // buffers must never grow.
  std::vector<std::uint8_t> sides(hierarchy.coarsest().num_vertices());
  for (std::size_t v = 0; v < sides.size(); ++v) sides[v] = v & 1U;
  for (std::size_t i = hierarchy.num_levels(); i-- > 0;) {
    const std::span<const std::uint8_t> fine = hierarchy.project(i, sides);
    const ml::Level& level = hierarchy.level(i);
    ASSERT_EQ(fine.size(), level.cluster.size());
    for (std::size_t v = 0; v < fine.size(); ++v) {
      ASSERT_EQ(fine[v], sides[level.cluster[v]]) << "level " << i;
    }
    sides.assign(fine.begin(), fine.end());
  }
  EXPECT_EQ(sides.size(), h.num_vertices());
  EXPECT_EQ(hierarchy.projection_bytes(), bytes);
}

// ---------------------------------------------------------------------------
// Refiner contract

TEST(MultilevelRefine, FmRefinerNeverWorsensAndReportsImprovement) {
  const Hypergraph h = test::two_cluster_hypergraph(20, 2);
  // Worst-case start: split each cluster down the middle.
  std::vector<std::uint8_t> sides(h.num_vertices());
  for (std::size_t v = 0; v < sides.size(); ++v) sides[v] = v & 1U;
  const EdgeId before = test::count_cut_edges(h, sides);
  ml::FmRefiner refiner;
  const Weight improvement = refiner.refine(h, sides, 17);
  const EdgeId after = test::count_cut_edges(h, sides);
  EXPECT_GE(improvement, 0);
  EXPECT_LE(after, before);
  EXPECT_EQ(std::string(refiner.name()), "fm");
}

TEST(MultilevelRefine, TrivialInputsAreNoOps) {
  const Hypergraph h = test::path_hypergraph(2);
  std::vector<std::uint8_t> sides = {0, 1};
  ml::FmRefinerOptions options;
  options.max_passes = 0;
  ml::FmRefiner refiner(options);
  EXPECT_EQ(refiner.refine(h, sides, 1), 0);
  EXPECT_EQ(sides, (std::vector<std::uint8_t>{0, 1}));
}

// ---------------------------------------------------------------------------
// Engine

TEST(MultilevelEngine, SolvesTwoClustersProperly) {
  const Hypergraph h = test::two_cluster_hypergraph(40, 2);
  ml::EngineOptions options;
  options.coarsening.coarsest_size = 20;
  options.coarsening.coarsest_fraction = 0.0;
  const ml::MultilevelResult r = ml::multilevel_partition(h, options);
  EXPECT_EQ(r.metrics.cut_edges, 2U);
  EXPECT_TRUE(r.metrics.proper);
  EXPECT_EQ(r.metrics.cut_edges, test::count_cut_edges(h, r.sides));
  EXPECT_GE(r.levels, 1);
  EXPECT_LE(r.coarsest_vertices, 20U);
}

TEST(MultilevelEngine, FindsPlantedCuts) {
  PlantedParams params;
  params.num_vertices = 600;
  params.num_edges = 900;
  params.planted_cut = 4;
  params.min_edge_size = 2;
  params.max_edge_size = 2;
  params.max_degree = 0;
  int wins = 0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const PlantedInstance inst = planted_instance(params, seed);
    ml::EngineOptions options;
    options.coarsening.coarsest_size = 60;
    options.seed = seed + 1;
    const ml::MultilevelResult r =
        ml::multilevel_partition(inst.hypergraph, options);
    EXPECT_TRUE(r.metrics.proper) << "seed " << seed;
    if (r.metrics.cut_edges <= inst.planted_cut + 2) ++wins;
  }
  EXPECT_GE(wins, 2);
}

TEST(MultilevelEngine, DiagnosticsAreConsistent) {
  const Hypergraph h = golden_instance("circuit150");
  ml::EngineOptions options;
  options.coarsening.coarsest_size = 40;
  const ml::MultilevelResult r = ml::multilevel_partition(h, options);
  EXPECT_EQ(r.sides.size(), h.num_vertices());
  EXPECT_GE(r.levels, 1);
  EXPECT_GE(r.refine_improvement, 0);
  // Refinement only ever removes cut weight from the projected start.
  EXPECT_LE(r.metrics.cut_weight, r.initial_cut_weight + 0);
  EXPECT_EQ(r.metrics.cut_edges, test::count_cut_edges(h, r.sides));
}

class MultilevelEngineIdentity : public ::testing::TestWithParam<int> {};

TEST_P(MultilevelEngineIdentity, BitIdenticalAcrossThreadsMemoReorder) {
  const int threads = GetParam();
  for (const char* name : kGoldenInstances) {
    const Hypergraph h = golden_instance(name);
    std::uint64_t reference = 0;
    bool have_reference = false;
    for (const bool memoize : {true, false}) {
      for (const bool reorder : {true, false}) {
        ml::EngineOptions options;
        options.coarsening.coarsest_size = 30;
        options.initial.num_starts = 8;
        options.initial.memoize_starts = memoize;
        options.initial.reorder = reorder;
        options.seed = 11;
        options.threads = threads;
        const ml::MultilevelResult r = ml::multilevel_partition(h, options);
        const std::uint64_t hash = fnv1a(r.sides);
        if (!have_reference) {
          reference = hash;
          have_reference = true;
        }
        EXPECT_EQ(hash, reference)
            << name << " threads=" << threads << " memoize=" << memoize
            << " reorder=" << reorder;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, MultilevelEngineIdentity,
                         ::testing::Values(1, 2, 8));

TEST(MultilevelEngineIdentitySerial, ReferenceHashesAreStableAcrossRuns) {
  // Same options, run twice: the engine is a pure function of
  // (instance, options) — no hidden global state.
  const Hypergraph h = golden_instance("grid9x9");
  ml::EngineOptions options;
  options.coarsening.coarsest_size = 30;
  options.seed = 23;
  const ml::MultilevelResult a = ml::multilevel_partition(h, options);
  const ml::MultilevelResult b = ml::multilevel_partition(h, options);
  EXPECT_EQ(a.sides, b.sides);
  EXPECT_EQ(a.metrics.cut_weight, b.metrics.cut_weight);
  EXPECT_EQ(a.refine_improvement, b.refine_improvement);
}

// ---------------------------------------------------------------------------
// partition_auto

TEST(PartitionAuto, RoutesSmallInstancesToFlat) {
  const Hypergraph h = golden_instance("circuit150");
  ml::PartitionPlan plan;  // kAuto, default threshold 2000 >> 150
  const ml::EngineResult r = ml::partition_auto(h, plan);
  EXPECT_EQ(r.engine_used, ml::EngineChoice::kFlat);
  EXPECT_EQ(r.levels, 0);
  // The flat path IS Algorithm I with the plan's options.
  const Algorithm1Result flat = algorithm1(h, plan.algorithm1);
  EXPECT_EQ(r.sides, flat.sides);
  EXPECT_EQ(r.metrics.cut_weight, flat.metrics.cut_weight);
}

TEST(PartitionAuto, ThresholdRoutesLargeInstancesToMultilevel) {
  const Hypergraph h = golden_instance("circuit150");
  ml::PartitionPlan plan;
  plan.multilevel_threshold = 100;  // below the instance size
  const ml::EngineResult r = ml::partition_auto(h, plan);
  EXPECT_EQ(r.engine_used, ml::EngineChoice::kMultilevel);
  EXPECT_GE(r.levels, 1);
  EXPECT_TRUE(r.metrics.proper);
  EXPECT_EQ(r.metrics.cut_edges, test::count_cut_edges(h, r.sides));
}

TEST(PartitionAuto, ExplicitEngineChoiceOverridesSize) {
  const Hypergraph h = golden_instance("planted120");
  ml::PartitionPlan forced_ml;
  forced_ml.engine = ml::EngineChoice::kMultilevel;
  EXPECT_EQ(ml::partition_auto(h, forced_ml).engine_used,
            ml::EngineChoice::kMultilevel);
  ml::PartitionPlan forced_flat;
  forced_flat.engine = ml::EngineChoice::kFlat;
  forced_flat.multilevel_threshold = 1;  // would route to multilevel on auto
  EXPECT_EQ(ml::partition_auto(h, forced_flat).engine_used,
            ml::EngineChoice::kFlat);
}

TEST(PartitionAuto, EngineNamesAreStable) {
  EXPECT_STREQ(ml::to_string(ml::EngineChoice::kFlat), "flat");
  EXPECT_STREQ(ml::to_string(ml::EngineChoice::kMultilevel), "multilevel");
  EXPECT_STREQ(ml::to_string(ml::EngineChoice::kAuto), "auto");
}

}  // namespace
}  // namespace fhp

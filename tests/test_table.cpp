#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace fhp {
namespace {

TEST(AsciiTable, RendersHeaderAndRows) {
  AsciiTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22    |"), std::string::npos);
}

TEST(AsciiTable, PadsShortRows) {
  AsciiTable t({"a", "b", "c"});
  t.add_row({"x"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| x |"), std::string::npos);
}

TEST(AsciiTable, RejectsOverlongRows) {
  AsciiTable t({"only"});
  EXPECT_THROW(t.add_row({"1", "2"}), PreconditionError);
}

TEST(AsciiTable, RejectsEmptyHeader) {
  EXPECT_THROW(AsciiTable({}), PreconditionError);
}

TEST(AsciiTable, SeparatorInsertsRule) {
  AsciiTable t({"h"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.render();
  // header rule + top + bottom + one inner separator = 4 rules.
  std::size_t rules = 0;
  std::size_t pos = 0;
  while ((pos = out.find("+--", pos)) != std::string::npos) {
    ++rules;
    pos = out.find('\n', pos);
  }
  EXPECT_EQ(rules, 4U);
}

TEST(AsciiTable, NumFormatsFixed) {
  EXPECT_EQ(AsciiTable::num(1.234, 2), "1.23");
  EXPECT_EQ(AsciiTable::num(2.0, 1), "2.0");
  EXPECT_EQ(AsciiTable::num(0.5), "0.50");
}

}  // namespace
}  // namespace fhp

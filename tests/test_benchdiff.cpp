/// Perf-regression sentinel (tools/benchdiff_core): identical reports
/// pass, a synthetic 2x slowdown fails naming the offending metric, cut
/// and counter drifts gate exactly, gates can be downgraded to advisory,
/// and coverage changes (missing/new labels) are handled per spec.
#include "benchdiff_core.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/error.hpp"
#include "util/json.hpp"

namespace fhp {
namespace {

using benchdiff::DiffResult;
using benchdiff::Entry;
using benchdiff::Options;
using benchdiff::Status;

/// Minimal but structurally faithful BENCH_*.json document.
std::string make_report(double alg1_min_seconds, double alg1_cut_median,
                        long long edges_scanned, bool tracing = true) {
  std::string json = "{\"bench\": \"synthetic\", \"env\": {";
  json += "\"git_sha\": \"abc\", \"tracing_compiled\": ";
  json += tracing ? "true" : "false";
  json += "}, \"peak_rss_bytes\": 104857600, \"series\": {";
  json += "\"alg1\": {\"runs\": 5, \"seconds\": {\"mean\": " +
          std::to_string(alg1_min_seconds * 1.1) +
          ", \"median\": " + std::to_string(alg1_min_seconds * 1.05) +
          ", \"min\": " + std::to_string(alg1_min_seconds) +
          ", \"max\": " + std::to_string(alg1_min_seconds * 1.3) +
          "}, \"cut\": {\"mean\": " + std::to_string(alg1_cut_median) +
          ", \"median\": " + std::to_string(alg1_cut_median) +
          ", \"min\": " + std::to_string(alg1_cut_median) +
          ", \"max\": " + std::to_string(alg1_cut_median) + "}}";
  json += "}, \"trace\": {\"counters\": {\"bfs/edges_scanned\": " +
          std::to_string(edges_scanned) + "}}}";
  return json;
}

const Entry* find_entry(const DiffResult& result, const std::string& metric) {
  for (const Entry& e : result.entries) {
    if (e.metric == metric) return &e;
  }
  return nullptr;
}

TEST(Benchdiff, IdenticalReportsPass) {
  const json::Value report = json::parse(make_report(0.5, 42, 100000));
  const DiffResult result = benchdiff::diff(report, report, Options{});
  EXPECT_FALSE(result.regressed);
  EXPECT_TRUE(result.regressions().empty());
  const Entry* time = find_entry(result, "series/alg1/seconds.min");
  ASSERT_NE(time, nullptr);
  EXPECT_EQ(time->status, Status::kOk);
}

TEST(Benchdiff, SyntheticTwoXSlowdownFailsNamingTheMetric) {
  const json::Value baseline = json::parse(make_report(0.5, 42, 100000));
  const json::Value slower = json::parse(make_report(1.0, 42, 100000));
  const DiffResult result = benchdiff::diff(baseline, slower, Options{});
  EXPECT_TRUE(result.regressed);
  const Entry* time = find_entry(result, "series/alg1/seconds.min");
  ASSERT_NE(time, nullptr);
  EXPECT_EQ(time->status, Status::kRegressed);
  // The markdown report names the offending metric and verdict.
  const std::string md =
      benchdiff::to_markdown(result, "baseline.json", "current.json");
  EXPECT_NE(md.find("REGRESSED"), std::string::npos);
  EXPECT_NE(md.find("series/alg1/seconds.min"), std::string::npos);
}

TEST(Benchdiff, SlowdownWithinToleranceIsOk) {
  const json::Value baseline = json::parse(make_report(0.5, 42, 100000));
  const json::Value current = json::parse(make_report(0.6, 42, 100000));
  EXPECT_FALSE(benchdiff::diff(baseline, current, Options{}).regressed);
}

TEST(Benchdiff, SpeedupIsReportedAsImprovement) {
  const json::Value baseline = json::parse(make_report(1.0, 42, 100000));
  const json::Value current = json::parse(make_report(0.4, 42, 100000));
  const DiffResult result = benchdiff::diff(baseline, current, Options{});
  EXPECT_FALSE(result.regressed);
  const Entry* time = find_entry(result, "series/alg1/seconds.min");
  ASSERT_NE(time, nullptr);
  EXPECT_EQ(time->status, Status::kImproved);
}

TEST(Benchdiff, CutIncreaseIsExactRegression) {
  const json::Value baseline = json::parse(make_report(0.5, 42, 100000));
  const json::Value worse = json::parse(make_report(0.5, 43, 100000));
  const DiffResult result = benchdiff::diff(baseline, worse, Options{});
  EXPECT_TRUE(result.regressed);
  const Entry* cut = find_entry(result, "series/alg1/cut.median");
  ASSERT_NE(cut, nullptr);
  EXPECT_EQ(cut->status, Status::kRegressed);
}

TEST(Benchdiff, CounterDriftIsExactRegression) {
  const json::Value baseline = json::parse(make_report(0.5, 42, 100000));
  const json::Value drifted = json::parse(make_report(0.5, 42, 100001));
  const DiffResult result = benchdiff::diff(baseline, drifted, Options{});
  EXPECT_TRUE(result.regressed);
  const Entry* counter = find_entry(result, "counter/bfs/edges_scanned");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->status, Status::kRegressed);
}

TEST(Benchdiff, WorkspaceCounterDriftIsAdvisory) {
  // workspace/* counters track per-lane allocator growth; an idle pool
  // lane never grows its workspace, so the totals depend on OS lane
  // scheduling — they must never fail the gate, only show as advisory.
  auto with_grows = [](long long grows) {
    std::string json = make_report(0.5, 42, 100000);
    const std::string needle = "\"trace\": {\"counters\": {";
    const std::size_t at = json.find(needle) + needle.size();
    return json.substr(0, at) +
           "\"workspace/buffer_grows\": " + std::to_string(grows) + ", " +
           json.substr(at);
  };
  const json::Value baseline = json::parse(with_grows(488));
  const json::Value drifted = json::parse(with_grows(487));
  const DiffResult result = benchdiff::diff(baseline, drifted, Options{});
  EXPECT_FALSE(result.regressed);
  const Entry* counter = find_entry(result, "counter/workspace/buffer_grows");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->status, Status::kAdvisory);
}

TEST(Benchdiff, ServeAndPoolCounterDriftIsAdvisory) {
  // serve/* and pool/* counters are daemon operational telemetry
  // (batches formed, connections, pending chunks) whose totals depend on
  // client/dispatcher timing — advisory, like workspace/*. cache/* stays
  // on the exact gate: single-flight coalescing makes hits/misses
  // timing-independent (docs/serving.md).
  auto with_counters = [](long long batches, long long hits) {
    std::string json = make_report(0.5, 42, 100000);
    const std::string needle = "\"trace\": {\"counters\": {";
    const std::size_t at = json.find(needle) + needle.size();
    return json.substr(0, at) +
           "\"serve/batches\": " + std::to_string(batches) +
           ", \"pool/pending_chunks\": " + std::to_string(batches) +
           ", \"cache/hits\": " + std::to_string(hits) + ", " +
           json.substr(at);
  };
  const json::Value baseline = json::parse(with_counters(4, 80));
  {  // serve/pool drift alone: advisory, verdict ok
    const json::Value drifted = json::parse(with_counters(5, 80));
    const DiffResult result = benchdiff::diff(baseline, drifted, Options{});
    EXPECT_FALSE(result.regressed);
    const Entry* serve = find_entry(result, "counter/serve/batches");
    ASSERT_NE(serve, nullptr);
    EXPECT_EQ(serve->status, Status::kAdvisory);
    const Entry* pool = find_entry(result, "counter/pool/pending_chunks");
    ASSERT_NE(pool, nullptr);
    EXPECT_EQ(pool->status, Status::kAdvisory);
  }
  {  // cache drift: exact regression
    const json::Value drifted = json::parse(with_counters(4, 81));
    const DiffResult result = benchdiff::diff(baseline, drifted, Options{});
    EXPECT_TRUE(result.regressed);
    const Entry* cache = find_entry(result, "counter/cache/hits");
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(cache->status, Status::kRegressed);
  }
}

TEST(Benchdiff, CounterGateSkippedWithoutTracing) {
  // Counter drift must not gate when either side lacks compiled tracing —
  // an OFF build legitimately reports no instrumentation work.
  const json::Value baseline = json::parse(make_report(0.5, 42, 100000));
  const json::Value untraced =
      json::parse(make_report(0.5, 42, 0, /*tracing=*/false));
  const DiffResult result = benchdiff::diff(baseline, untraced, Options{});
  EXPECT_FALSE(result.regressed);
  ASSERT_FALSE(result.notes.empty());
}

TEST(Benchdiff, DisabledGatesDowngradeToAdvisory) {
  Options options;
  options.gate_time = false;
  options.gate_counters = false;
  options.gate_quality = false;
  const json::Value baseline = json::parse(make_report(0.5, 42, 100000));
  const json::Value worse = json::parse(make_report(2.0, 50, 99999));
  const DiffResult result = benchdiff::diff(baseline, worse, options);
  EXPECT_FALSE(result.regressed);
  const Entry* time = find_entry(result, "series/alg1/seconds.min");
  ASSERT_NE(time, nullptr);
  EXPECT_EQ(time->status, Status::kAdvisory);
}

TEST(Benchdiff, MissingSeriesLabelRegresses) {
  const json::Value baseline = json::parse(
      R"({"env": {"tracing_compiled": true}, "series": {"alg1": {}, "fm": {}},
          "trace": {"counters": {}}})");
  const json::Value current = json::parse(
      R"({"env": {"tracing_compiled": true}, "series": {"alg1": {}},
          "trace": {"counters": {}}})");
  const DiffResult result = benchdiff::diff(baseline, current, Options{});
  EXPECT_TRUE(result.regressed);
  const Entry* missing = find_entry(result, "series/fm");
  ASSERT_NE(missing, nullptr);
  EXPECT_EQ(missing->status, Status::kRegressed);
}

TEST(Benchdiff, NewSeriesLabelIsANoteNotAFailure) {
  const json::Value baseline = json::parse(
      R"({"series": {"alg1": {}}, "trace": {"counters": {}}})");
  const json::Value current = json::parse(
      R"({"series": {"alg1": {}, "brand_new": {}},
          "trace": {"counters": {}}})");
  const DiffResult result = benchdiff::diff(baseline, current, Options{});
  EXPECT_FALSE(result.regressed);
  bool noted = false;
  for (const std::string& note : result.notes) {
    noted = noted || note.find("brand_new") != std::string::npos;
  }
  EXPECT_TRUE(noted);
}

TEST(Benchdiff, RssGrowthIsAdvisoryOnly) {
  const std::string big = R"({"env": {"tracing_compiled": true},
      "peak_rss_bytes": 999999999999, "series": {"alg1": {}},
      "trace": {"counters": {"bfs/edges_scanned": 100000}}})";
  const std::string small_series =
      R"({"env": {"tracing_compiled": true}, "peak_rss_bytes": 1000,
          "series": {"alg1": {}},
          "trace": {"counters": {"bfs/edges_scanned": 100000}}})";
  const DiffResult result = benchdiff::diff(
      json::parse(small_series), json::parse(big), Options{});
  EXPECT_FALSE(result.regressed);
  const Entry* rss = find_entry(result, "peak_rss_bytes");
  ASSERT_NE(rss, nullptr);
  EXPECT_EQ(rss->status, Status::kAdvisory);
}

TEST(Benchdiff, NonReportDocumentThrows) {
  const json::Value not_a_report = json::parse(R"({"hello": 1})");
  EXPECT_THROW(
      static_cast<void>(
          benchdiff::diff(not_a_report, not_a_report, Options{})),
      IoError);
}

}  // namespace
}  // namespace fhp

/// Edge-case battery across the whole stack: degenerate shapes (empty,
/// singleton, star, complete), extreme weights, adversarial nets — the
/// inputs that break partitioners in the field.
#include <gtest/gtest.h>

#include "baselines/fm.hpp"
#include "baselines/kl.hpp"
#include "baselines/multilevel.hpp"
#include "baselines/sa.hpp"
#include "core/algorithm1.hpp"
#include "core/intersection.hpp"
#include "core/recursive.hpp"
#include "graph/bfs.hpp"
#include "graph/components.hpp"
#include "hypergraph/transform.hpp"
#include "test_helpers.hpp"

namespace fhp {
namespace {

// ---------------------------------------------------------------------
// Degenerate netlist shapes.
// ---------------------------------------------------------------------

TEST(EdgeCases, TwoModulesOneNet) {
  const Hypergraph h = Hypergraph::from_edges(2, {{0, 1}});
  const Algorithm1Result r = algorithm1(h);
  EXPECT_TRUE(r.metrics.proper);
  EXPECT_EQ(r.metrics.cut_edges, 1U);  // the only proper cut severs it
}

TEST(EdgeCases, TwoModulesNoNets) {
  HypergraphBuilder b;
  b.add_vertices(2);
  const Hypergraph h = std::move(b).build();
  const Algorithm1Result r = algorithm1(h);
  EXPECT_TRUE(r.metrics.proper);
  EXPECT_EQ(r.metrics.cut_edges, 0U);
  EXPECT_TRUE(r.disconnected_shortcut);
}

TEST(EdgeCases, DuplicateNets) {
  // Five copies of the same net: cut them all or none.
  HypergraphBuilder b;
  b.add_vertices(4);
  for (int i = 0; i < 5; ++i) b.add_edge({0, 1});
  b.add_edge({2, 3});
  const Hypergraph h = std::move(b).build();
  const Algorithm1Result r = algorithm1(h);
  EXPECT_TRUE(r.metrics.proper);
  EXPECT_EQ(r.metrics.cut_edges, 0U);  // split {0,1} | {2,3}
}

TEST(EdgeCases, StarNetlistHubForcesCuts) {
  // Hub on every net: any proper cut severs at least one spoke.
  const Hypergraph h = test::star_hypergraph(12);
  const Algorithm1Result r = algorithm1(h);
  EXPECT_TRUE(r.metrics.proper);
  EXPECT_GE(r.metrics.cut_edges, 1U);
  // Intersection graph of a star is complete: BFS depth (eccentricity) 1.
  const Graph g = intersection_graph(h);
  EXPECT_EQ(bfs(g, 0).depth, 1U);
}

TEST(EdgeCases, NetCoveringAllModules) {
  HypergraphBuilder b;
  b.add_vertices(8);
  b.add_edge({0, 1, 2, 3, 4, 5, 6, 7});
  for (VertexId i = 0; i + 1 < 8; ++i) b.add_edge({i, i + 1});
  const Hypergraph h = std::move(b).build();
  Algorithm1Options options;
  options.large_edge_threshold = 6;  // the big net gets filtered
  const Algorithm1Result r = algorithm1(h, options);
  EXPECT_EQ(r.filtered_edges, 1U);
  // The big net crosses any proper cut; the chain should contribute 1.
  EXPECT_LE(r.metrics.cut_edges, 2U);
}

// ---------------------------------------------------------------------
// Extreme weights.
// ---------------------------------------------------------------------

TEST(EdgeCases, OneGiantModule) {
  HypergraphBuilder b;
  b.add_vertex(1000000);
  for (int i = 0; i < 9; ++i) b.add_vertex(1);
  for (VertexId i = 0; i + 1 < 10; ++i) b.add_edge({i, i + 1});
  const Hypergraph h = std::move(b).build();
  const Algorithm1Result r = algorithm1(h);
  EXPECT_TRUE(r.metrics.proper);
  // The giant must sit alone-ish: weight imbalance is unavoidable but
  // the cut should stay minimal.
  EXPECT_LE(r.metrics.cut_edges, 2U);
}

TEST(EdgeCases, ZeroWeightModulesEverywhere) {
  HypergraphBuilder b;
  for (int i = 0; i < 8; ++i) b.add_vertex(0);
  for (VertexId i = 0; i + 1 < 8; ++i) b.add_edge({i, i + 1});
  const Hypergraph h = std::move(b).build();
  const Algorithm1Result r = algorithm1(h);
  EXPECT_TRUE(r.metrics.proper);
  EXPECT_EQ(r.metrics.cut_edges, 1U);
}

TEST(EdgeCases, HeavyNetWeightsDominateFm) {
  HypergraphBuilder b;
  b.add_vertices(6);
  b.add_edge({0, 1, 2}, 1000);
  b.add_edge({3, 4, 5}, 1000);
  b.add_edge({2, 3}, 1);
  const Hypergraph h = std::move(b).build();
  FmOptions options;
  options.seed = 3;
  const BaselineResult r = fiduccia_mattheyses(h, options);
  EXPECT_EQ(r.metrics.cut_weight, 1);
}

// ---------------------------------------------------------------------
// Transform edge cases.
// ---------------------------------------------------------------------

TEST(EdgeCases, FilterEverything) {
  HypergraphBuilder b;
  b.add_vertices(6);
  b.add_edge({0, 1, 2});
  b.add_edge({3, 4, 5});
  const Hypergraph h = std::move(b).build();
  const EdgeFilterResult r = filter_large_edges(h, 2);
  EXPECT_EQ(r.hypergraph.num_edges(), 0U);
  // Algorithm I must still split the netlist (degenerate path).
  Algorithm1Options options;
  options.large_edge_threshold = 2;
  const Algorithm1Result result = algorithm1(h, options);
  EXPECT_TRUE(result.metrics.proper);
}

TEST(EdgeCases, GranularizeSingleHeavyModule) {
  HypergraphBuilder b;
  b.add_vertex(100);
  const Hypergraph h = std::move(b).build();
  const GranularizeResult g = granularize(h, 10);
  EXPECT_EQ(g.hypergraph.num_vertices(), 10U);
  EXPECT_EQ(g.hypergraph.num_edges(), 9U);  // the chain
  EXPECT_EQ(g.hypergraph.total_vertex_weight(), 100);
}

// ---------------------------------------------------------------------
// Recursive / baseline edge cases.
// ---------------------------------------------------------------------

TEST(EdgeCases, RecursiveOnDisconnectedNetlist) {
  HypergraphBuilder b;
  b.add_vertices(16);
  for (VertexId i = 0; i + 1 < 8; ++i) b.add_edge({i, i + 1});
  for (VertexId i = 8; i + 1 < 16; ++i) b.add_edge({i, i + 1});
  const Hypergraph h = std::move(b).build();
  const KWayResult r = recursive_partition(h, 4);
  std::vector<VertexId> counts(4, 0);
  for (std::uint32_t part : r.part) ++counts[part];
  for (VertexId c : counts) EXPECT_GT(c, 0U);
}

TEST(EdgeCases, SaOnTinyInstance) {
  const Hypergraph h = Hypergraph::from_edges(2, {{0, 1}});
  SaOptions options;
  options.moves_per_temperature = 50;
  options.max_temperatures = 10;
  const BaselineResult r = simulated_annealing(h, options);
  EXPECT_TRUE(r.metrics.proper);
}

TEST(EdgeCases, KlOnOddModuleCount) {
  const Hypergraph h = test::path_hypergraph(9);
  const BaselineResult r = kernighan_lin(h);
  EXPECT_TRUE(r.metrics.proper);
  EXPECT_LE(r.metrics.cardinality_imbalance, 1U);
}

TEST(EdgeCases, MultilevelOnStarStallsGracefully) {
  // Matching stalls on stars (every merge goes through the hub, capped by
  // cluster weight); the V-cycle must fall back cleanly.
  const Hypergraph h = test::star_hypergraph(200);
  const BaselineResult r = multilevel_bipartition(h);
  EXPECT_TRUE(r.metrics.proper);
}

TEST(EdgeCases, DisconnectedIntersectionGraphDetected) {
  HypergraphBuilder b;
  b.add_vertices(8);
  b.add_edge({0, 1});
  b.add_edge({2, 3});
  b.add_edge({4, 5, 6, 7});
  const Hypergraph h = std::move(b).build();
  const Graph g = intersection_graph(h);
  EXPECT_EQ(connected_components(g).count(), 3U);
  const Algorithm1Result r = algorithm1(h);
  EXPECT_TRUE(r.disconnected_shortcut);
  EXPECT_EQ(r.metrics.cut_edges, 0U);
}

TEST(EdgeCases, LevelSweepOnTwoNetInstance) {
  const Hypergraph h = test::path_hypergraph(3);  // G = two adjacent nets
  Algorithm1Options options;
  options.initial_cut = InitialCutStrategy::kLevelSweep;
  const Algorithm1Result r = algorithm1(h, options);
  EXPECT_TRUE(r.metrics.proper);
  EXPECT_EQ(r.metrics.cut_edges, 1U);
}

}  // namespace
}  // namespace fhp

#include "baselines/multilevel.hpp"

#include <gtest/gtest.h>

#include "baselines/random_cut.hpp"
#include "gen/circuit.hpp"
#include "gen/planted.hpp"
#include "test_helpers.hpp"

namespace fhp {
namespace {

TEST(Multilevel, SolvesTwoClusters) {
  const Hypergraph h = test::two_cluster_hypergraph(10, 2);
  const BaselineResult r = multilevel_bipartition(h);
  EXPECT_EQ(r.metrics.cut_edges, 2U);
  EXPECT_TRUE(r.metrics.proper);
}

TEST(Multilevel, ChainOptimal) {
  const Hypergraph h = test::path_hypergraph(200);
  const BaselineResult r = multilevel_bipartition(h);
  EXPECT_EQ(r.metrics.cut_edges, 1U);
}

TEST(Multilevel, BeatsFlatRandomByFar) {
  const Hypergraph h = generate_circuit(
      table2_params(500, 850, Technology::kStandardCell), 4);
  const BaselineResult ml = multilevel_bipartition(h);
  const BaselineResult random = best_random_bisection(h, 8, 4);
  EXPECT_LT(ml.metrics.cut_edges * 3, random.metrics.cut_edges);
  EXPECT_EQ(ml.metrics.cut_edges, test::count_cut_edges(h, ml.sides));
}

TEST(Multilevel, SmallInputSkipsHierarchy) {
  const Hypergraph h = test::path_hypergraph(8);
  MultilevelOptions options;
  options.coarsest_size = 60;  // larger than the instance
  const BaselineResult r = multilevel_bipartition(h, options);
  EXPECT_TRUE(r.metrics.proper);
  EXPECT_EQ(r.iterations, 1);  // no levels built
}

TEST(Multilevel, SolvesPlantedGraphs) {
  // The family where flat FM sticks: the V-cycle should get close to the
  // planted cut (this is why multilevel superseded single-level methods).
  PlantedParams params;
  params.num_vertices = 300;
  params.num_edges = 420;
  params.planted_cut = 4;
  params.min_edge_size = 2;
  params.max_edge_size = 2;
  params.max_degree = 0;
  int wins = 0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const PlantedInstance inst = planted_instance(params, seed);
    MultilevelOptions options;
    options.seed = seed;
    const BaselineResult r = multilevel_bipartition(inst.hypergraph, options);
    if (r.metrics.cut_edges <= inst.planted_cut + 2) ++wins;
  }
  EXPECT_GE(wins, 2);
}

TEST(Multilevel, DeterministicPerSeed) {
  const Hypergraph h =
      generate_circuit(table2_params(150, 260, Technology::kGateArray), 9);
  MultilevelOptions options;
  options.seed = 31;
  EXPECT_EQ(multilevel_bipartition(h, options).sides,
            multilevel_bipartition(h, options).sides);
}

TEST(Multilevel, KeepsTightBalanceWhenAsked) {
  const Hypergraph h =
      generate_circuit(table2_params(200, 340, Technology::kPcb), 6);
  MultilevelOptions options;
  options.max_weight_imbalance = 8;
  const BaselineResult r = multilevel_bipartition(h, options);
  // FM's tolerance stretches to its starting imbalance per level, so the
  // bound is approximate; it must still land well inside 10% of total.
  EXPECT_LE(static_cast<double>(r.metrics.weight_imbalance),
            0.1 * static_cast<double>(h.total_vertex_weight()));
}

TEST(Multilevel, Preconditions) {
  HypergraphBuilder b;
  b.add_vertex();
  EXPECT_THROW((void)multilevel_bipartition(std::move(b).build()),
               PreconditionError);
  const Hypergraph h = test::path_hypergraph(4);
  MultilevelOptions options;
  options.coarsest_size = 1;
  EXPECT_THROW((void)multilevel_bipartition(h, options), PreconditionError);
}

}  // namespace
}  // namespace fhp

#include "graph/components.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace fhp {
namespace {

TEST(Components, EmptyGraph) {
  const Components c = connected_components(Graph{});
  EXPECT_EQ(c.count(), 0U);
  EXPECT_EQ(c.largest(), 0U);
}

TEST(Components, SingleComponent) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  const Components c = connected_components(g);
  EXPECT_EQ(c.count(), 1U);
  EXPECT_EQ(c.size[0], 4U);
  EXPECT_TRUE(is_connected(g));
}

TEST(Components, MultipleComponentsAndIsolated) {
  const Graph g = Graph::from_edges(6, {{0, 1}, {2, 3}});
  const Components c = connected_components(g);
  EXPECT_EQ(c.count(), 4U);  // {0,1}, {2,3}, {4}, {5}
  EXPECT_FALSE(is_connected(g));
  EXPECT_EQ(c.label[0], c.label[1]);
  EXPECT_NE(c.label[0], c.label[2]);
  EXPECT_NE(c.label[4], c.label[5]);
}

TEST(Components, LabelsAreDense) {
  const Graph g = Graph::from_edges(5, {{0, 4}, {1, 3}});
  const Components c = connected_components(g);
  for (VertexId v = 0; v < 5; ++v) EXPECT_LT(c.label[v], c.count());
  VertexId total = 0;
  for (VertexId s : c.size) total += s;
  EXPECT_EQ(total, 5U);
}

TEST(Components, LargestPicksBiggest) {
  const Graph g = Graph::from_edges(7, {{0, 1}, {2, 3}, {3, 4}, {4, 5}});
  const Components c = connected_components(g);
  EXPECT_EQ(c.size[c.largest()], 4U);
}

TEST(Components, ConnectedRandomGraphIsConnected) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    EXPECT_TRUE(is_connected(test::connected_random_graph(50, 0.02, seed)));
  }
}

}  // namespace
}  // namespace fhp

/// \file test_helpers.hpp
/// Shared fixtures: tiny reference implementations (brute-force min cut,
/// brute-force vertex cover), canned instances (paths, cliques, the
/// reconstructed paper example), and small random generators for property
/// tests.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "hypergraph/hypergraph.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace fhp::test {

/// Chain netlist: modules 0..n-1, nets {i, i+1}. Its intersection graph is
/// a path of n-1 vertices.
inline Hypergraph path_hypergraph(VertexId n) {
  HypergraphBuilder b;
  b.add_vertices(n);
  for (VertexId i = 0; i + 1 < n; ++i) b.add_edge({i, i + 1});
  return std::move(b).build();
}

/// Star netlist: one hub, nets {hub, i}.
inline Hypergraph star_hypergraph(VertexId leaves) {
  HypergraphBuilder b;
  const VertexId hub = b.add_vertex();
  for (VertexId i = 0; i < leaves; ++i) {
    const VertexId leaf = b.add_vertex();
    b.add_edge({hub, leaf});
  }
  return std::move(b).build();
}

/// Two cliques of `half` modules (pairwise 2-pin nets) joined by `bridges`
/// crossing nets. Optimal cut = bridges.
inline Hypergraph two_cluster_hypergraph(VertexId half, EdgeId bridges) {
  HypergraphBuilder b;
  b.add_vertices(2 * half);
  for (VertexId c = 0; c < 2; ++c) {
    const VertexId base = c * half;
    for (VertexId i = 0; i < half; ++i) {
      for (VertexId j = i + 1; j < half; ++j) {
        b.add_edge({base + i, base + j});
      }
    }
  }
  for (EdgeId k = 0; k < bridges; ++k) {
    b.add_edge({static_cast<VertexId>(k % half),
                static_cast<VertexId>(half + (k + 1) % half)});
  }
  return std::move(b).build();
}

/// Reconstruction of the paper's §2 worked example (Figure 4): 12 modules,
/// 12 signals a..l. The source text is partially illegible; this instance
/// is built to satisfy every stated property: final partition separates
/// {1,2,4,8,11,12} from {3,5,6,7,9,10} with only signals c and h crossing
/// (cutsize 2), boundary set {c,d,e,f,g,h}, winners {d,e,f,g}, and k/l a
/// far-apart pair in G. Modules are 0-based (module m -> id m-1); signals
/// are indexed a=0 .. l=11.
inline Hypergraph figure4_hypergraph() {
  auto m = [](VertexId module) { return module - 1; };
  HypergraphBuilder b;
  b.add_vertices(12);
  b.add_edge({m(1), m(2), m(11)});          // a
  b.add_edge({m(2), m(4), m(11)});          // b
  b.add_edge({m(1), m(3), m(4), m(12)});    // c  (crosses: 3 right)
  b.add_edge({m(3), m(5)});                 // d  (winner, right)
  b.add_edge({m(5), m(6), m(7)});           // e  (winner, right)
  b.add_edge({m(6), m(3), m(7)});           // f  (winner, right)
  b.add_edge({m(3), m(5), m(9), m(10)});    // g  (winner, right)
  b.add_edge({m(6), m(7), m(8)});           // h  (crosses: 8 left)
  b.add_edge({m(6), m(7), m(9), m(10)});    // i
  b.add_edge({m(4), m(8), m(12)});          // j  (left)
  b.add_edge({m(1), m(2)});                 // k  (left extreme)
  b.add_edge({m(9), m(10)});                // l  (right extreme)
  return std::move(b).build();
}

/// The expected optimal sides of figure4_hypergraph() (module 1-based ids
/// {1,2,4,8,11,12} left).
inline std::vector<std::uint8_t> figure4_expected_sides() {
  std::vector<std::uint8_t> sides(12, 1);
  for (VertexId module : {1, 2, 4, 8, 11, 12}) sides[module - 1] = 0;
  return sides;
}

/// Erdos–Renyi G(n, p) random graph.
inline Graph random_graph(VertexId n, double p, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (rng.next_bool(p)) b.add_edge(u, v);
    }
  }
  return std::move(b).build();
}

/// Random bipartite graph with `left` + `right` vertices (left ids first)
/// and edge probability p. Returns the graph and its 2-coloring.
inline std::pair<Graph, std::vector<std::uint8_t>> random_bipartite_graph(
    VertexId left, VertexId right, double p, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(left + right);
  for (VertexId u = 0; u < left; ++u) {
    for (VertexId v = 0; v < right; ++v) {
      if (rng.next_bool(p)) b.add_edge(u, left + v);
    }
  }
  std::vector<std::uint8_t> side(left + right, 0);
  for (VertexId v = left; v < left + right; ++v) side[v] = 1;
  return {std::move(b).build(), std::move(side)};
}

/// Connected random graph: G(n, p) plus a random spanning path.
inline Graph connected_random_graph(VertexId n, double p, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(n);
  std::vector<VertexId> order(n);
  for (VertexId i = 0; i < n; ++i) order[i] = i;
  rng.shuffle(order);
  for (VertexId i = 0; i + 1 < n; ++i) b.add_edge(order[i], order[i + 1]);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (rng.next_bool(p)) b.add_edge(u, v);
    }
  }
  return std::move(b).build();
}

/// Brute-force minimum vertex cover size (exponential; <= ~24 vertices).
inline std::uint32_t brute_force_min_vertex_cover(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::uint32_t best = n;
  for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    bool covers = true;
    for (VertexId u = 0; u < n && covers; ++u) {
      for (VertexId v : g.neighbors(u)) {
        if (v < u) continue;  // check each edge once
        if (!((mask >> u) & 1) && !((mask >> v) & 1)) {
          covers = false;
          break;
        }
      }
    }
    if (!covers) continue;
    best = std::min(best,
                    static_cast<std::uint32_t>(__builtin_popcountll(mask)));
  }
  return best;
}

/// Brute-force minimum proper-cut size of a hypergraph (<= ~16 modules).
/// If max_imbalance >= 0, only partitions with cardinality imbalance at
/// most max_imbalance are considered.
inline EdgeId brute_force_min_cut(const Hypergraph& h,
                                  std::int64_t max_imbalance = -1) {
  const VertexId n = h.num_vertices();
  EdgeId best = std::numeric_limits<EdgeId>::max();
  for (std::uint64_t mask = 1; mask + 1 < (1ULL << n); ++mask) {
    const int left = __builtin_popcountll(mask);
    const int right = static_cast<int>(n) - left;
    if (max_imbalance >= 0 && std::abs(left - right) > max_imbalance) continue;
    EdgeId cut = 0;
    for (EdgeId e = 0; e < h.num_edges(); ++e) {
      bool l = false;
      bool r = false;
      for (VertexId v : h.pins(e)) {
        ((mask >> v) & 1 ? l : r) = true;
      }
      if (l && r) ++cut;
    }
    best = std::min(best, cut);
  }
  return best;
}

/// Counts cut hyperedges of `h` under `sides` from scratch.
inline EdgeId count_cut_edges(const Hypergraph& h,
                              const std::vector<std::uint8_t>& sides) {
  EdgeId cut = 0;
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    bool l = false;
    bool r = false;
    for (VertexId v : h.pins(e)) {
      (sides[v] == 0 ? l : r) = true;
    }
    if (l && r) ++cut;
  }
  return cut;
}

}  // namespace fhp::test

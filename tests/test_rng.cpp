#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace fhp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneIsZero) {
  Rng rng(9);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rng.next_below(1), 0U);
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBound = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.next_below(kBound)];
  for (int c : counts) {
    EXPECT_GT(c, kSamples / kBound * 0.9);
    EXPECT_LT(c, kSamples / kBound * 1.1);
  }
}

TEST(Rng, NextInClosedRange) {
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  // Degenerate range.
  EXPECT_EQ(rng.next_in(7, 7), 7);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  double min = 1.0;
  double max = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    min = std::min(min, x);
    max = std::max(max, x);
  }
  EXPECT_LT(min, 0.01);
  EXPECT_GT(max, 0.99);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, GeometricMeanMatches) {
  Rng rng(17);
  const double p = 0.25;
  double sum = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    const auto g = rng.next_geometric(p);
    EXPECT_GE(g, 1U);
    sum += static_cast<double>(g);
  }
  EXPECT_NEAR(sum / kSamples, 1.0 / p, 0.1);
}

TEST(Rng, GeometricWithCertainSuccess) {
  Rng rng(19);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(rng.next_geometric(1.0), 1U);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(29);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  const auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // probability of identity is astronomically small
}

TEST(Rng, SampleDistinctBasicProperties) {
  Rng rng(31);
  for (std::uint32_t n : {1U, 5U, 20U, 100U}) {
    for (std::uint32_t k : {0U, 1U, n / 2, n}) {
      const auto sample = rng.sample_distinct(n, k);
      EXPECT_EQ(sample.size(), k);
      std::set<std::uint32_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), k);
      for (std::uint32_t x : sample) EXPECT_LT(x, n);
    }
  }
}

TEST(Rng, SampleDistinctRejectsOversizedRequest) {
  Rng rng(37);
  EXPECT_THROW((void)rng.sample_distinct(3, 4), PreconditionError);
}

TEST(Rng, SampleDistinctCoversUniverse) {
  Rng rng(41);
  // Sampling 2 of 4 repeatedly should hit every element eventually.
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 200; ++i) {
    for (std::uint32_t x : rng.sample_distinct(4, 2)) seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 4U);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(43);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, ForkIsDeterministicAndLeavesParentUntouched) {
  const Rng parent(91);
  Rng a = parent.fork(5);
  Rng b = parent.fork(5);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a(), b());
  // fork() is const: the parent's own stream is unaffected by any number
  // of forks, and matches a never-forked twin.
  Rng forked(91);
  (void)forked.fork(1);
  (void)forked.fork(2);
  Rng pristine(91);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(forked(), pristine());
}

TEST(Rng, ForkStreamsAreMutuallyIndependent) {
  const Rng parent(17);
  Rng a = parent.fork(0);
  Rng b = parent.fork(1);
  Rng own(17);
  int equal_ab = 0;
  int equal_ap = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t x = a();
    if (x == b()) ++equal_ab;
    if (x == own()) ++equal_ap;
  }
  EXPECT_LT(equal_ab, 4);
  EXPECT_LT(equal_ap, 4);
}

TEST(Rng, ForkDependsOnParentState) {
  // Equal ids under different parent states give different streams: the
  // child is a function of (state, id), not of id alone.
  Rng a = Rng(1).fork(3);
  Rng b = Rng(2).fork(3);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Splitmix, KnownNonDegenerate) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(a, 0U);
}

}  // namespace
}  // namespace fhp

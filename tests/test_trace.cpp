/// Observability layer: span nesting and aggregation, counter/gauge
/// accumulation, exporter output shape, reset semantics, and
/// cross-validation of Algorithm I's result diagnostics against the
/// tracer counters on a fixed-seed planted instance.
///
/// The Tracer/Counters runtime API is compiled in both tracing modes, so
/// every direct-API test below runs under -DFHP_ENABLE_TRACING=OFF too;
/// only the macro-dependent sections are gated on FHP_TRACING_ENABLED.
#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "core/algorithm1.hpp"
#include "gen/planted.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace fhp {
namespace {

using obs::Counters;
using obs::ScopedSpan;
using obs::Tracer;
using obs::TraceReport;

/// Fresh observability state per test.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::reset(); }
  void TearDown() override { obs::reset(); }
};

TEST_F(TraceTest, SpansNestByScope) {
  {
    ScopedSpan outer("outer");
    {
      ScopedSpan inner("inner");
    }
  }
  const TraceReport report = obs::snapshot();
  ASSERT_EQ(report.spans.size(), 2U);
  EXPECT_EQ(report.spans[0].name, "outer");
  EXPECT_EQ(report.spans[0].parent, obs::kNoSpan);
  EXPECT_EQ(report.spans[1].name, "inner");
  EXPECT_EQ(report.spans[1].parent, 0U);
  // Parent time includes the child's.
  EXPECT_GE(report.spans[0].total_ns, report.spans[1].total_ns);
  EXPECT_EQ(Tracer::instance().open_depth(), 0U);
}

TEST_F(TraceTest, RepeatedSpansAggregateUnderSameParent) {
  {
    ScopedSpan run("run");
    for (int i = 0; i < 5; ++i) {
      ScopedSpan step("step");
    }
  }
  const TraceReport report = obs::snapshot();
  ASSERT_EQ(report.spans.size(), 2U);  // one node, not five
  EXPECT_EQ(report.span_calls("step"), 5U);
  EXPECT_EQ(report.span_calls("run"), 1U);
}

TEST_F(TraceTest, SameNameUnderDifferentParentsIsDistinct) {
  {
    ScopedSpan a("a");
    ScopedSpan shared("shared");
  }
  {
    ScopedSpan b("b");
    ScopedSpan shared("shared");
  }
  const TraceReport report = obs::snapshot();
  EXPECT_EQ(report.spans.size(), 4U);
  // span_ns()/span_calls() sum over all nodes with the name.
  EXPECT_EQ(report.span_calls("shared"), 2U);
}

TEST_F(TraceTest, RootTotalSumsTopLevelSpansOnly) {
  {
    ScopedSpan a("a");
    ScopedSpan child("child");
  }
  { ScopedSpan b("b"); }
  const TraceReport report = obs::snapshot();
  EXPECT_EQ(report.root_total_ns(),
            report.span_ns("a") + report.span_ns("b"));
}

TEST_F(TraceTest, OpenSpanContributesOnlyCompletedEntries) {
  ScopedSpan open("open");
  const TraceReport report = obs::snapshot();
  EXPECT_EQ(report.span_calls("open"), 0U);
  EXPECT_EQ(Tracer::instance().open_depth(), 1U);
}

TEST_F(TraceTest, CountersAccumulateAndGaugesOverwrite) {
  Counters& counters = Counters::instance();
  counters.add("test/events", 2);
  counters.add("test/events", 3);
  counters.set_gauge("test/level", 1.5);
  counters.set_gauge("test/level", 2.5);
  EXPECT_EQ(counters.value("test/events"), 5);
  EXPECT_DOUBLE_EQ(counters.gauge("test/level"), 2.5);
  // Untouched names read as zero rather than failing.
  EXPECT_EQ(counters.value("test/absent"), 0);
  EXPECT_DOUBLE_EQ(counters.gauge("test/absent"), 0.0);

  const TraceReport report = obs::snapshot();
  EXPECT_EQ(report.counter("test/events"), 5);
  EXPECT_DOUBLE_EQ(report.gauge("test/level"), 2.5);
}

TEST_F(TraceTest, ResetClearsEverything) {
  { ScopedSpan span("span"); }
  Counters::instance().add("test/count", 7);
  Counters::instance().set_gauge("test/gauge", 3.0);
  EXPECT_FALSE(obs::snapshot().empty());

  obs::reset();
  const TraceReport report = obs::snapshot();
  EXPECT_TRUE(report.empty());
  EXPECT_TRUE(report.events.empty());
  EXPECT_EQ(report.dropped_events, 0U);
  EXPECT_EQ(report.counter("test/count"), 0);
}

TEST_F(TraceTest, StaleCloseAfterResetIsIgnored) {
  // A ScopedSpan alive across a reset() must not corrupt the new tree.
  Tracer& tracer = Tracer::instance();
  const std::uint32_t node = tracer.open("doomed");
  const Tracer::Clock::time_point start = Tracer::Clock::now();
  obs::reset();
  tracer.close(node, start);  // stale handle: no effect
  EXPECT_EQ(tracer.open_depth(), 0U);
  EXPECT_TRUE(obs::snapshot().spans.empty());
}

TEST_F(TraceTest, JsonReportHasExpectedShape) {
  {
    ScopedSpan phase("phase");
    ScopedSpan sub("sub \"quoted\"");
  }
  Counters::instance().add("test/count", 4);
  Counters::instance().set_gauge("test/gauge", 0.5);

  const std::string json = obs::to_json(obs::snapshot());
  // The direct ScopedSpan API records in both build modes; only the flag
  // differs.
  EXPECT_NE(json.find(FHP_TRACING_ENABLED ? "\"tracing_compiled\": true"
                                          : "\"tracing_compiled\": false"),
            std::string::npos);
  EXPECT_NE(json.find("\"wall_total_ns\":"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"phase\""), std::string::npos);
  EXPECT_NE(json.find("\"sub \\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"test/count\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"test/gauge\":"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\": 0"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST_F(TraceTest, ChromeTraceHasCompleteEvents) {
  {
    ScopedSpan a("a");
    ScopedSpan b("b");
  }
  const TraceReport report = obs::snapshot();
  ASSERT_EQ(report.events.size(), 2U);
  const std::string trace = obs::to_chrome_trace(report);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\": \"a\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\": \"b\""), std::string::npos);
}

TEST_F(TraceTest, ExportersHandleEmptyReports) {
  const TraceReport report = obs::snapshot();
  EXPECT_TRUE(report.empty());
  EXPECT_NE(obs::to_json(report).find("\"spans\": []"), std::string::npos);
  EXPECT_NE(obs::to_chrome_trace(report).find("\"traceEvents\": []"),
            std::string::npos);
  EXPECT_FALSE(obs::to_tree_string(report).empty());
}

TEST_F(TraceTest, JsonEscapeCoversControlCharacters) {
  EXPECT_EQ(obs::json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(obs::json_escape(std::string_view("x\x01y", 3)), "x\\u0001y");
}

// The macro layer: exercised in both build modes so the OFF configuration
// is checked to compile and to record nothing.
TEST_F(TraceTest, MacrosFollowCompileTimeSwitch) {
  {
    FHP_TRACE_SCOPE("macro_span");
    FHP_COUNTER_ADD("macro/count", 3);
    FHP_GAUGE_SET("macro/gauge", 9.0);
  }
  const TraceReport report = obs::snapshot();
#if FHP_TRACING_ENABLED
  EXPECT_TRUE(report.tracing_compiled);
  EXPECT_EQ(report.span_calls("macro_span"), 1U);
  EXPECT_EQ(report.counter("macro/count"), 3);
  EXPECT_DOUBLE_EQ(report.gauge("macro/gauge"), 9.0);
#else
  EXPECT_FALSE(report.tracing_compiled);
  EXPECT_TRUE(report.empty());
#endif
}

/// Small connected planted instance used for the diagnostics
/// cross-validation; fixed seed so counter expectations are exact.
Hypergraph cross_validation_instance() {
  PlantedParams params;
  params.num_vertices = 24;
  params.num_edges = 40;
  params.planted_cut = 2;
  params.min_edge_size = 2;
  params.max_edge_size = 4;
  return planted_instance(params, 7).hypergraph;
}

TEST_F(TraceTest, Algorithm1DiagnosticsAgreeWithCounters) {
  const Hypergraph h = cross_validation_instance();
  Algorithm1Options options;
  options.seed = 11;
  options.num_starts = 1;  // per-start counters == best-start diagnostics
  options.large_edge_threshold = 3;
  options.collect_trace = true;
  const Algorithm1Result result = algorithm1(h, options);
  ASSERT_FALSE(result.disconnected_shortcut);
  EXPECT_EQ(result.starts_run, 1);

  const TraceReport& report = result.trace;
#if FHP_TRACING_ENABLED
  EXPECT_TRUE(report.tracing_compiled);
  EXPECT_EQ(report.counter("alg1/runs"), 1);
  EXPECT_EQ(report.counter("alg1/starts_examined"), result.starts_run);
  EXPECT_EQ(report.counter("alg1/filtered_nets"),
            static_cast<long long>(result.filtered_edges));
  EXPECT_EQ(report.counter("alg1/boundary_nodes"),
            static_cast<long long>(result.boundary_size));
  EXPECT_DOUBLE_EQ(report.gauge("alg1/boundary_size"),
                   static_cast<double>(result.boundary_size));
  EXPECT_EQ(report.counter("alg1/completion_winners"),
            static_cast<long long>(result.winner_count));
  EXPECT_EQ(report.counter("alg1/completion_losers"),
            static_cast<long long>(result.loser_count));
  EXPECT_DOUBLE_EQ(report.gauge("alg1/pseudo_diameter"),
                   static_cast<double>(result.pseudo_diameter));
  // Pipeline phases all appear in the tree, under the root span.
  EXPECT_EQ(report.span_calls("algorithm1"), 1U);
  EXPECT_EQ(report.span_calls("intersection"), 1U);
  EXPECT_EQ(report.span_calls("filter"), 1U);
  EXPECT_GE(report.span_calls("diameter"), 1U);
  EXPECT_GE(report.span_calls("initial_cut"), 1U);
  EXPECT_EQ(report.span_calls("boundary"), 1U);
  EXPECT_EQ(report.span_calls("complete_cut"), 1U);
  EXPECT_GE(report.span_calls("assemble"), 1U);
  EXPECT_EQ(report.span_calls("score"), 1U);
#else
  EXPECT_FALSE(report.tracing_compiled);
  EXPECT_TRUE(report.empty());
#endif
}

// ---- thread-safety: the registry APIs under concurrent pool workers.
// The direct Counters/ScopedSpan APIs record in both build modes, so these
// tests stress the locking in the -DFHP_ENABLE_TRACING=OFF configuration
// too (and they are the workload of the ThreadSanitizer CI job).

TEST_F(TraceTest, CountersAreExactUnderConcurrentAdds) {
  constexpr int kAddsPerTask = 1000;
  constexpr std::size_t kTasks = 64;
  ThreadPool pool(8);
  pool.parallel_for(kTasks, 1, [](std::size_t task, std::size_t) {
    for (int i = 0; i < kAddsPerTask; ++i) {
      Counters::instance().add("test/contended", 1);
      Counters::instance().add(task % 2 == 0 ? "test/even" : "test/odd", 1);
      Counters::instance().set_gauge("test/last_task",
                                     static_cast<double>(task));
    }
  });
  // No increment may be lost, however the adds interleaved.
  EXPECT_EQ(Counters::instance().value("test/contended"),
            static_cast<long long>(kTasks) * kAddsPerTask);
  EXPECT_EQ(Counters::instance().value("test/even") +
                Counters::instance().value("test/odd"),
            static_cast<long long>(kTasks) * kAddsPerTask);
  // The gauge holds *some* task's value (last write wins, no torn reads).
  const double last = Counters::instance().gauge("test/last_task");
  EXPECT_GE(last, 0.0);
  EXPECT_LT(last, static_cast<double>(kTasks));
}

TEST_F(TraceTest, MacroCountersFromPoolWorkers) {
  ThreadPool pool(4);
  pool.parallel_for(32, 1, [](std::size_t, std::size_t) {
    FHP_COUNTER_ADD("test/macro_concurrent", 2);
    FHP_GAUGE_SET("test/macro_gauge", 1.0);
  });
  const TraceReport report = obs::snapshot();
#if FHP_TRACING_ENABLED
  EXPECT_EQ(report.counter("test/macro_concurrent"), 64);
  EXPECT_DOUBLE_EQ(report.gauge("test/macro_gauge"), 1.0);
#else
  EXPECT_TRUE(report.empty());
#endif
}

TEST_F(TraceTest, ConcurrentNestedSpansMergeAcrossThreads) {
  constexpr std::size_t kTasks = 24;
  ThreadPool pool(4);
  pool.parallel_for(kTasks, 1, [](std::size_t, std::size_t) {
    ScopedSpan outer("worker");
    for (int i = 0; i < 3; ++i) {
      ScopedSpan inner("step");
    }
  });
  const TraceReport report = obs::snapshot();
  // Every thread's "worker" spans merge into one root; its "step" children
  // aggregate under it. Calls sum exactly — concurrency loses nothing.
  EXPECT_EQ(report.span_calls("worker"), kTasks);
  EXPECT_EQ(report.span_calls("step"), kTasks * 3);
  EXPECT_GE(report.threads, 1U);
  // "step" sits under "worker" in the merged tree.
  for (std::size_t i = 0; i < report.spans.size(); ++i) {
    if (report.spans[i].name == "step") {
      ASSERT_NE(report.spans[i].parent, obs::kNoSpan);
      EXPECT_EQ(report.spans[report.spans[i].parent].name, "worker");
    }
  }
  // Events carry their recording thread; ids stay within the thread count.
  for (const obs::TraceEvent& event : report.events) {
    EXPECT_LT(event.tid, 64U);
  }
}

TEST_F(TraceTest, SpanNestingStaysPerThread) {
  // Another thread's spans must NOT become children of whatever this
  // thread has open: nesting is per-thread by design.
  {
    ScopedSpan caller("caller_root");
    std::thread other([] { ScopedSpan span("other_span"); });
    other.join();
  }
  const TraceReport report = obs::snapshot();
  EXPECT_EQ(report.span_calls("caller_root"), 1U);
  EXPECT_EQ(report.span_calls("other_span"), 1U);
  for (const obs::TraceSpan& span : report.spans) {
    if (span.name == "other_span") {
      EXPECT_EQ(span.parent, obs::kNoSpan)
          << "a foreign thread's span leaked under caller_root";
    }
  }
}

TEST_F(TraceTest, RendezvousGuaranteesMultipleRecordingThreads) {
  // Each chunk spins until a second thread has entered the region, so at
  // least two distinct threads provably record spans — deterministic even
  // on a single hardware core (a lone thread cannot claim a second chunk
  // while spinning inside its first).
  ThreadPool pool(4);
  std::atomic<int> arrived{0};
  pool.parallel_for(4, 1, [&](std::size_t, std::size_t) {
    ScopedSpan span("rendezvous");
    arrived.fetch_add(1);
    while (arrived.load(std::memory_order_relaxed) < 2) {
      std::this_thread::yield();
    }
  });
  const TraceReport report = obs::snapshot();
  EXPECT_EQ(report.span_calls("rendezvous"), 4U);
  EXPECT_GE(report.threads, 2U);
}

TEST_F(TraceTest, SnapshotWhileWorkersRecord) {
  // snapshot() may run concurrently with recording; it must return a
  // consistent tree (no crashes, parents precede children) even while
  // workers are mid-span.
  ThreadPool pool(4);
  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const TraceReport report = obs::snapshot();
      for (std::size_t i = 0; i < report.spans.size(); ++i) {
        const std::uint32_t parent = report.spans[i].parent;
        if (parent != obs::kNoSpan) ASSERT_LT(parent, i);
      }
    }
  });
  pool.parallel_for(64, 1, [](std::size_t, std::size_t) {
    ScopedSpan outer("snap_outer");
    ScopedSpan inner("snap_inner");
    Counters::instance().add("test/snap", 1);
  });
  stop.store(true, std::memory_order_relaxed);
  snapshotter.join();
  EXPECT_EQ(obs::snapshot().span_calls("snap_outer"), 64U);
  EXPECT_EQ(Counters::instance().value("test/snap"), 64);
}

TEST_F(TraceTest, ResetPrunesExitedThreadBuffers) {
  {
    ThreadPool pool(4);
    pool.parallel_for(8, 1, [](std::size_t, std::size_t) {
      ScopedSpan span("ephemeral");
    });
  }  // pool destroyed: its workers have exited
  EXPECT_EQ(obs::snapshot().span_calls("ephemeral"), 8U);
  obs::reset();  // prunes dead-thread states along with the data
  EXPECT_TRUE(obs::snapshot().spans.empty());
  // Fresh recordings after the prune still work.
  { ScopedSpan span("after"); }
  EXPECT_EQ(obs::snapshot().span_calls("after"), 1U);
}

#if FHP_TRACING_ENABLED
TEST_F(TraceTest, ParallelAlgorithm1ReportsWorkerThreads) {
  const Hypergraph h = cross_validation_instance();
  Algorithm1Options options;
  options.seed = 11;
  options.num_starts = 8;
  options.threads = 4;
  options.collect_trace = true;
  // Pin the unmemoized loop: this test counts one full pipeline per start,
  // which start memoization deliberately collapses to one per unique pair.
  options.memoize_starts = false;
  const Algorithm1Result result = algorithm1(h, options);
  // Per-start span calls sum exactly no matter which lane ran which start.
  // (threads >= 2 is NOT asserted here: on a single hardware core the
  // caller lane can legitimately drain every start before a worker wakes;
  // RendezvousGuaranteesMultipleRecordingThreads covers the multi-thread
  // merge deterministically.)
  EXPECT_GE(result.trace.threads, 1U);
  EXPECT_EQ(result.trace.span_calls("boundary"), 8U);
  EXPECT_EQ(result.trace.counter("alg1/starts_examined"), 8);
  EXPECT_NE(obs::to_json(result.trace).find("\"threads\":"),
            std::string::npos);
}
#endif

TEST_F(TraceTest, MultiStartCountsEveryStart) {
  const Hypergraph h = cross_validation_instance();
  Algorithm1Options options;
  options.seed = 3;
  options.num_starts = 5;
  options.collect_trace = true;
  options.memoize_starts = false;  // count one full pipeline per start
  const Algorithm1Result result = algorithm1(h, options);
  EXPECT_EQ(result.starts_run, 5);
#if FHP_TRACING_ENABLED
  EXPECT_EQ(result.trace.counter("alg1/starts_examined"), 5);
  EXPECT_EQ(result.trace.span_calls("boundary"), 5U);
#endif
}

TEST_F(TraceTest, MemoizedMultiStartAccountsHitsAndMisses) {
  const Hypergraph h = cross_validation_instance();
  Algorithm1Options options;
  options.seed = 3;
  options.num_starts = 5;
  options.collect_trace = true;
  const Algorithm1Result result = algorithm1(h, options);
  EXPECT_EQ(result.starts_run, 5);
#if FHP_TRACING_ENABLED
  // Every start is still examined (its pseudo-diameter pair is found)...
  EXPECT_EQ(result.trace.counter("alg1/starts_examined"), 5);
  // ...and every start is either a memo hit or a completed miss; only the
  // misses run the boundary/completion pipeline.
  const long long hits = result.trace.counter("algorithm1/starts_memo_hits");
  const long long misses =
      result.trace.counter("algorithm1/starts_memo_misses");
  EXPECT_EQ(hits + misses, 5);
  EXPECT_GE(misses, 1);
  EXPECT_EQ(result.trace.span_calls("boundary"),
            static_cast<std::uint64_t>(misses));
#endif
}

}  // namespace
}  // namespace fhp

#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/error.hpp"

namespace fhp {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0U);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1U);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  for (double x : xs) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_EQ(stddev(std::vector<double>{1.0}), 0.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(median(xs), 25.0);
}

TEST(Stats, QuantileSingleElement) {
  const std::vector<double> xs{7.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.3), 7.0);
}

TEST(Stats, QuantilePreconditions) {
  EXPECT_THROW((void)quantile(std::vector<double>{}, 0.5), PreconditionError);
  EXPECT_THROW((void)quantile(std::vector<double>{1.0}, 1.5),
               PreconditionError);
}

TEST(Stats, GrowthExponentRecoversPower) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (double x : {10.0, 20.0, 40.0, 80.0, 160.0}) {
    xs.push_back(x);
    ys.push_back(3.0 * x * x);  // y = 3 x^2
  }
  EXPECT_NEAR(fit_growth_exponent(xs, ys), 2.0, 1e-9);
}

TEST(Stats, GrowthExponentLinear) {
  const std::vector<double> xs{1, 2, 4, 8};
  const std::vector<double> ys{5, 10, 20, 40};
  EXPECT_NEAR(fit_growth_exponent(xs, ys), 1.0, 1e-9);
}

TEST(Stats, GrowthExponentPreconditions) {
  const std::vector<double> one{1.0};
  EXPECT_THROW((void)fit_growth_exponent(one, one), PreconditionError);
  const std::vector<double> bad{1.0, -2.0};
  const std::vector<double> ok{1.0, 2.0};
  EXPECT_THROW((void)fit_growth_exponent(bad, ok), PreconditionError);
}

TEST(Stats, HistogramBinsAndClamps) {
  const std::vector<double> xs{-1.0, 0.1, 0.5, 0.9, 2.0};
  const auto h = histogram(xs, 0.0, 1.0, 2);
  ASSERT_EQ(h.size(), 2U);
  EXPECT_EQ(h[0], 2U);  // -1.0 clamped in, 0.1
  EXPECT_EQ(h[1], 3U);  // 0.5, 0.9, 2.0 clamped in
}

TEST(Stats, HistogramRejectsNonFiniteSamples) {
  // Casting NaN or an infinity to an integer is undefined behavior; the
  // histogram must refuse such samples instead of computing a bin from
  // them (exercised under -fsanitize=undefined in CI).
  const std::vector<double> with_nan{0.5, std::nan("")};
  EXPECT_THROW((void)histogram(with_nan, 0.0, 1.0, 4), PreconditionError);
  const std::vector<double> with_inf{
      0.5, std::numeric_limits<double>::infinity()};
  EXPECT_THROW((void)histogram(with_inf, 0.0, 1.0, 4), PreconditionError);
  const std::vector<double> with_ninf{
      0.5, -std::numeric_limits<double>::infinity()};
  EXPECT_THROW((void)histogram(with_ninf, 0.0, 1.0, 4), PreconditionError);
}

TEST(Stats, HistogramHandlesHugeFiniteValues) {
  // Huge-but-finite outliers must clamp into the end bins even when the
  // quotient (x - lo) / width overflows the integer range.
  const std::vector<double> xs{-1e300, 0.5, 1e300,
                               std::numeric_limits<double>::max()};
  const auto h = histogram(xs, 0.0, 1.0, 2);
  ASSERT_EQ(h.size(), 2U);
  EXPECT_EQ(h[0] + h[1], xs.size());
  EXPECT_EQ(h[0], 1U);  // -1e300 clamps low
  EXPECT_EQ(h[1], 3U);  // 0.5 sits on the bin edge; huge positives clamp high
}

}  // namespace
}  // namespace fhp

#include "graph/maxflow.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/rng.hpp"

namespace fhp {
namespace {

TEST(MaxFlow, SingleArc) {
  FlowNetwork net(2);
  net.add_arc(0, 1, 5);
  EXPECT_EQ(net.max_flow(0, 1), 5);
}

TEST(MaxFlow, SeriesTakesMinimum) {
  FlowNetwork net(3);
  net.add_arc(0, 1, 7);
  net.add_arc(1, 2, 3);
  EXPECT_EQ(net.max_flow(0, 2), 3);
}

TEST(MaxFlow, ParallelPathsAdd) {
  FlowNetwork net(4);
  net.add_arc(0, 1, 2);
  net.add_arc(1, 3, 2);
  net.add_arc(0, 2, 3);
  net.add_arc(2, 3, 3);
  EXPECT_EQ(net.max_flow(0, 3), 5);
}

TEST(MaxFlow, ClassicCrossNetwork) {
  // The textbook 6-node example with a cross arc; max flow 23.
  FlowNetwork net(6);
  net.add_arc(0, 1, 16);
  net.add_arc(0, 2, 13);
  net.add_arc(1, 2, 10);
  net.add_arc(2, 1, 4);
  net.add_arc(1, 3, 12);
  net.add_arc(3, 2, 9);
  net.add_arc(2, 4, 14);
  net.add_arc(4, 3, 7);
  net.add_arc(3, 5, 20);
  net.add_arc(4, 5, 4);
  EXPECT_EQ(net.max_flow(0, 5), 23);
}

TEST(MaxFlow, DisconnectedIsZero) {
  FlowNetwork net(3);
  net.add_arc(0, 1, 4);
  EXPECT_EQ(net.max_flow(0, 2), 0);
}

TEST(MaxFlow, MinCutSideSeparatesTerminals) {
  FlowNetwork net(4);
  net.add_arc(0, 1, 1);
  net.add_arc(1, 2, 10);
  net.add_arc(2, 3, 10);
  net.max_flow(0, 3);
  const auto side = net.min_cut_side();
  EXPECT_EQ(side[0], 1);
  EXPECT_EQ(side[3], 0);
  // The bottleneck (0,1) is the cut: 1,2 unreachable.
  EXPECT_EQ(side[1], 0);
  EXPECT_EQ(side[2], 0);
}

TEST(MaxFlow, CutCapacityEqualsFlowValue) {
  // Max-flow min-cut duality, fuzzed on random DAG-ish networks.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    const std::uint32_t n = 10;
    struct ArcSpec {
      std::uint32_t from;
      std::uint32_t to;
      FlowNetwork::Capacity cap;
    };
    std::vector<ArcSpec> specs;
    FlowNetwork net(n);
    for (int i = 0; i < 25; ++i) {
      const auto u = static_cast<std::uint32_t>(rng.next_below(n));
      const auto v = static_cast<std::uint32_t>(rng.next_below(n));
      if (u == v) continue;
      const auto cap = static_cast<FlowNetwork::Capacity>(rng.next_in(1, 9));
      net.add_arc(u, v, cap);
      specs.push_back({u, v, cap});
    }
    const FlowNetwork::Capacity flow = net.max_flow(0, n - 1);
    const auto side = net.min_cut_side();
    EXPECT_EQ(side[0], 1);
    EXPECT_EQ(side[n - 1], 0);
    FlowNetwork::Capacity cut = 0;
    for (const ArcSpec& a : specs) {
      if (side[a.from] && !side[a.to]) cut += a.cap;
    }
    EXPECT_EQ(cut, flow) << "seed " << seed;
  }
}

TEST(MaxFlow, Preconditions) {
  FlowNetwork net(2);
  EXPECT_THROW(net.add_arc(0, 2, 1), PreconditionError);
  EXPECT_THROW(net.add_arc(0, 1, -1), PreconditionError);
  EXPECT_THROW((void)net.max_flow(0, 0), PreconditionError);
  EXPECT_THROW((void)net.min_cut_side(), PreconditionError);
  net.add_arc(0, 1, 1);
  (void)net.max_flow(0, 1);
  EXPECT_THROW(net.add_arc(0, 1, 1), PreconditionError);  // solved
}

TEST(MaxFlow, CapacityCeilingIsTypedNotSaturating) {
  // kInfiniteCapacity itself is the uncuttable-arc sentinel and is
  // admitted; anything beyond it must fail typed so gadget builders in a
  // near-int64 weight regime cannot silently saturate past it.
  FlowNetwork net(2);
  net.add_arc(0, 1, FlowNetwork::kInfiniteCapacity);
  EXPECT_THROW(net.add_arc(0, 1, FlowNetwork::kInfiniteCapacity + 1),
               PreconditionError);
  EXPECT_THROW(net.add_arc(1, 0, std::numeric_limits<Weight>::max()),
               PreconditionError);
  EXPECT_EQ(net.num_arcs(), 2);  // forward + residual of the single arc
}

}  // namespace
}  // namespace fhp

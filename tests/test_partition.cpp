#include "partition/partition.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace fhp {
namespace {

TEST(Bipartition, DefaultAllOnSideZero) {
  const Hypergraph h = test::path_hypergraph(4);
  const Bipartition p(h);
  EXPECT_EQ(p.count(0), 4U);
  EXPECT_EQ(p.count(1), 0U);
  EXPECT_EQ(p.cut_edges(), 0U);
  EXPECT_FALSE(p.is_proper());
  p.validate();
}

TEST(Bipartition, ExplicitSidesCounted) {
  const Hypergraph h = test::path_hypergraph(4);
  const Bipartition p(h, {0, 0, 1, 1});
  EXPECT_EQ(p.count(0), 2U);
  EXPECT_EQ(p.count(1), 2U);
  EXPECT_EQ(p.cut_edges(), 1U);  // net {1,2}
  EXPECT_TRUE(p.is_cut(1));
  EXPECT_FALSE(p.is_cut(0));
  EXPECT_TRUE(p.is_proper());
  EXPECT_EQ(p.cardinality_imbalance(), 0U);
  p.validate();
}

TEST(Bipartition, RejectsBadSides) {
  const Hypergraph h = test::path_hypergraph(3);
  EXPECT_THROW(Bipartition(h, {0, 1}), PreconditionError);
  EXPECT_THROW(Bipartition(h, {0, 1, 2}), PreconditionError);
}

TEST(Bipartition, FlipUpdatesEverything) {
  const Hypergraph h = test::path_hypergraph(5);
  Bipartition p(h, {0, 0, 0, 1, 1});
  EXPECT_EQ(p.cut_edges(), 1U);
  p.flip(2);  // now 0 0 1 1 1
  EXPECT_EQ(p.side(2), 1);
  EXPECT_EQ(p.cut_edges(), 1U);  // cut moved to net {1,2}
  EXPECT_TRUE(p.is_cut(1));
  EXPECT_FALSE(p.is_cut(2));
  p.validate();
  p.flip(2);  // back
  EXPECT_EQ(p.cut_edges(), 1U);
  EXPECT_TRUE(p.is_cut(2));
  p.validate();
}

TEST(Bipartition, MoveToIsIdempotent) {
  const Hypergraph h = test::path_hypergraph(3);
  Bipartition p(h, {0, 0, 1});
  p.move_to(0, 0);
  EXPECT_EQ(p.side(0), 0);
  p.move_to(0, 1);
  EXPECT_EQ(p.side(0), 1);
  p.validate();
}

TEST(Bipartition, WeightsTracked) {
  HypergraphBuilder b;
  b.add_vertex(3);
  b.add_vertex(5);
  b.add_vertex(7);
  b.add_edge({0, 1, 2}, 2);
  const Hypergraph h = std::move(b).build();
  Bipartition p(h, {0, 0, 1});
  EXPECT_EQ(p.weight(0), 8);
  EXPECT_EQ(p.weight(1), 7);
  EXPECT_EQ(p.weight_imbalance(), 1);
  EXPECT_EQ(p.cut_weight(), 2);
  p.flip(0);
  EXPECT_EQ(p.weight(0), 5);
  EXPECT_EQ(p.weight(1), 10);
  EXPECT_EQ(p.weight_imbalance(), 5);
  p.validate();
}

TEST(Bipartition, PinsOnSideConsistent) {
  const Hypergraph h = Hypergraph::from_edges(5, {{0, 1, 2, 3, 4}});
  Bipartition p(h, {0, 0, 1, 1, 1});
  EXPECT_EQ(p.pins_on_side(0, 0), 2U);
  EXPECT_EQ(p.pins_on_side(0, 1), 3U);
  p.flip(0);
  EXPECT_EQ(p.pins_on_side(0, 0), 1U);
  EXPECT_EQ(p.pins_on_side(0, 1), 4U);
}

TEST(Bipartition, TrivialNetsNeverCut) {
  HypergraphBuilder b;
  b.add_vertices(3);
  b.allow_empty_edges();  // zero-pin nets are opt-in (docs/formats.md)
  b.add_edge({0});
  b.add_edge(std::span<const VertexId>{});
  const Hypergraph h = std::move(b).build();
  Bipartition p(h, {0, 1, 1});
  EXPECT_EQ(p.cut_edges(), 0U);
  p.flip(0);
  EXPECT_EQ(p.cut_edges(), 0U);
  p.validate();
}

TEST(Bipartition, RandomFlipFuzzAgainstRebuild) {
  const Hypergraph h = test::two_cluster_hypergraph(6, 4);
  Rng rng(77);
  std::vector<std::uint8_t> sides(h.num_vertices());
  for (auto& s : sides) s = static_cast<std::uint8_t>(rng.next_below(2));
  Bipartition p(h, sides);
  for (int i = 0; i < 500; ++i) {
    p.flip(static_cast<VertexId>(rng.next_below(h.num_vertices())));
    if (i % 50 == 0) p.validate();
  }
  p.validate();
}

TEST(Bipartition, CutEdgesMatchesNaiveCount) {
  const Hypergraph h = test::figure4_hypergraph();
  const auto sides = test::figure4_expected_sides();
  const Bipartition p(h, sides);
  EXPECT_EQ(p.cut_edges(), test::count_cut_edges(h, sides));
}

}  // namespace
}  // namespace fhp

/// Cross-module integration tests: file I/O feeding the partitioner,
/// granularization + projection round trips, refinement pipelines, and the
/// algorithm-vs-baseline ordering the paper reports.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "baselines/fm.hpp"
#include "baselines/kl.hpp"
#include "baselines/sa.hpp"
#include "core/algorithm1.hpp"
#include "core/recursive.hpp"
#include "gen/circuit.hpp"
#include "gen/planted.hpp"
#include "hypergraph/io.hpp"
#include "hypergraph/stats.hpp"
#include "hypergraph/transform.hpp"
#include "test_helpers.hpp"

namespace fhp {
namespace {

TEST(Integration, NetlistFileToPartitionFile) {
  // Parse a named netlist, partition it, write and re-read the partition.
  std::istringstream in(
      "n1: a b c\n"
      "n2: c d\n"
      "n3: d e f\n"
      "n4: f g\n"
      "n5: g h a\n");
  const NamedNetlist netlist = read_netlist(in);
  const Algorithm1Result r = algorithm1(netlist.hypergraph);
  std::ostringstream out;
  write_partition(out, r.sides);
  std::istringstream back(out.str());
  const auto sides = read_partition(back, netlist.hypergraph.num_vertices());
  EXPECT_EQ(sides, r.sides);
}

TEST(Integration, HmetisRoundTripPreservesCut) {
  const Hypergraph h =
      generate_circuit(table2_params(90, 160, Technology::kPcb), 12);
  std::ostringstream out;
  write_hmetis(out, h);
  std::istringstream in(out.str());
  const Hypergraph back = read_hmetis(in);
  Algorithm1Options options;
  options.seed = 1;
  const Algorithm1Result a = algorithm1(h, options);
  const Algorithm1Result b = algorithm1(back, options);
  EXPECT_EQ(a.metrics.cut_edges, b.metrics.cut_edges);
}

TEST(Integration, GranularizePartitionProject) {
  // Heavy modules: granularize, partition chunks, project back — the
  // paper's extension for better weight balance.
  CircuitParams params = hybrid_params(0.6);
  params.weight_geometric_p = 0.25;  // heavy spread
  const Hypergraph h = generate_circuit(params, 5);
  const GranularizeResult g = granularize(h, 2, /*link_weight=*/8);
  const Algorithm1Result chunked = algorithm1(g.hypergraph);
  const auto sides = project_granularized_sides(g, chunked.sides);
  const Bipartition projected(h, sides);
  EXPECT_TRUE(projected.is_proper());
  // Projection onto original modules keeps imbalance moderate.
  EXPECT_LT(static_cast<double>(projected.weight_imbalance()),
            0.35 * static_cast<double>(h.total_vertex_weight()));
}

TEST(Integration, FmRefinesAlgorithm1) {
  // Using Algorithm I's output as FM's initial partition can only improve
  // the cut — a natural hybrid the paper's speed makes attractive.
  const Hypergraph h =
      generate_circuit(table2_params(250, 430, Technology::kStandardCell), 8);
  const Algorithm1Result seed_cut = algorithm1(h);
  FmOptions fm;
  fm.initial = seed_cut.sides;
  const BaselineResult refined = fiduccia_mattheyses(h, fm);
  EXPECT_LE(refined.metrics.cut_weight,
            static_cast<Weight>(seed_cut.metrics.cut_weight));
}

TEST(Integration, DifficultInstancesAlgorithm1BeatsLocalSearch) {
  // The paper's §4 headline: on planted difficult inputs Algorithm I finds
  // the minimum while KL-style local search from random starts often
  // sticks. Aggregate over seeds to keep the test robust.
  // Sparse planted-bisection graphs (2-pin nets): the family where local
  // search demonstrably sticks while the dual BFS cut sails through.
  PlantedParams params;
  params.num_vertices = 500;
  params.num_edges = 750;
  params.planted_cut = 6;
  params.min_edge_size = 2;
  params.max_edge_size = 2;
  params.max_degree = 0;
  int alg1_optimal = 0;
  long kl_total = 0;
  long alg1_total = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const PlantedInstance inst = planted_instance(params, seed);
    Algorithm1Options options;
    options.seed = seed;
    const Algorithm1Result alg = algorithm1(inst.hypergraph, options);
    KlOptions kl;
    kl.seed = seed;
    const BaselineResult klr = kernighan_lin(inst.hypergraph, kl);
    if (alg.metrics.cut_edges <= inst.planted_cut) ++alg1_optimal;
    alg1_total += alg.metrics.cut_edges;
    kl_total += klr.metrics.cut_edges;
  }
  EXPECT_GE(alg1_optimal, 4);       // nearly always optimal
  EXPECT_LE(alg1_total, kl_total);  // never worse in aggregate
}

TEST(Integration, RecursivePlacementPipeline) {
  // 4-way placement-style flow on a generated netlist.
  const Hypergraph h =
      generate_circuit(table2_params(160, 280, Technology::kGateArray), 2);
  const KWayResult r = recursive_partition(h, 4);
  // Every part non-empty and the 4-way cut is at least the 2-way cut.
  std::vector<VertexId> counts(4, 0);
  for (std::uint32_t part : r.part) ++counts[part];
  for (VertexId c : counts) EXPECT_GT(c, 0U);
  const Algorithm1Result two_way = algorithm1(h);
  EXPECT_GE(r.cut_edges, two_way.metrics.cut_edges);
}

TEST(Integration, LargeNetFilterKeepsQualityOnBusyDesigns) {
  // Threshold-10 filtering (the paper's default) should not degrade the
  // cut materially on designs with buses, while shrinking G.
  CircuitParams params = standard_cell_params(0.5);
  params.bus_fraction = 0.04;
  const Hypergraph h = generate_circuit(params, 19);
  Algorithm1Options with_filter;
  with_filter.large_edge_threshold = 10;
  Algorithm1Options no_filter;
  no_filter.large_edge_threshold = 0;
  const Algorithm1Result filtered = algorithm1(h, with_filter);
  const Algorithm1Result unfiltered = algorithm1(h, no_filter);
  EXPECT_GT(filtered.filtered_edges, 0U);
  // What the §3 relaxation promises: on the *small* nets — the ones both
  // configurations actually optimize — ignoring buses costs at most a
  // little (buses themselves cross almost any cut; bench A2 quantifies
  // that), and the result stays balanced.
  auto small_net_cut = [&](const std::vector<std::uint8_t>& sides) {
    EdgeId cut = 0;
    for (EdgeId e = 0; e < h.num_edges(); ++e) {
      if (h.edge_size(e) > with_filter.large_edge_threshold) continue;
      bool l = false;
      bool r = false;
      for (VertexId v : h.pins(e)) {
        (sides[v] == 0 ? l : r) = true;
      }
      if (l && r) ++cut;
    }
    return cut;
  };
  EXPECT_LE(small_net_cut(filtered.sides),
            small_net_cut(unfiltered.sides) + 8);
  EXPECT_LT(filtered.metrics.cardinality_imbalance,
            h.num_vertices() / 4);
}

TEST(Integration, StatsDescribeGeneratedCircuits) {
  const Hypergraph h = generate_circuit(pcb_params(), 21);
  const auto s = compute_stats(h);
  EXPECT_EQ(s.num_vertices, h.num_vertices());
  EXPECT_EQ(s.num_edges, h.num_edges());
}

}  // namespace
}  // namespace fhp

/// Differential tests: the mmap/SWAR parsers (io_scan.cpp,
/// bookshelf_scan.cpp) must be bit-identical to the legacy istream oracles
/// on every well-formed input we can produce — writer round-trips across
/// the generator zoo and the sharded streaming writers.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "gen/circuit.hpp"
#include "gen/grid.hpp"
#include "gen/planted.hpp"
#include "gen/random_hypergraph.hpp"
#include "gen/sharded.hpp"
#include "gen/structured.hpp"
#include "hypergraph/bookshelf.hpp"
#include "hypergraph/io.hpp"
#include "test_helpers.hpp"
#include "util/mmap.hpp"

namespace fhp {
namespace {

void expect_same_hypergraph(const Hypergraph& fast, const Hypergraph& oracle) {
  ASSERT_EQ(fast.num_vertices(), oracle.num_vertices());
  ASSERT_EQ(fast.num_edges(), oracle.num_edges());
  ASSERT_EQ(fast.num_pins(), oracle.num_pins());
  for (EdgeId e = 0; e < fast.num_edges(); ++e) {
    const auto pf = fast.pins(e);
    const auto po = oracle.pins(e);
    ASSERT_EQ(pf.size(), po.size()) << "edge " << e;
    for (std::size_t i = 0; i < pf.size(); ++i) {
      ASSERT_EQ(pf[i], po[i]) << "edge " << e << " pin " << i;
    }
    ASSERT_EQ(fast.edge_weight(e), oracle.edge_weight(e)) << "edge " << e;
  }
  for (VertexId v = 0; v < fast.num_vertices(); ++v) {
    ASSERT_EQ(fast.vertex_weight(v), oracle.vertex_weight(v)) << "vertex " << v;
  }
}

/// Runs both hMETIS parsers over \p text and asserts identity.
void expect_hmetis_agreement(const std::string& text) {
  std::istringstream in(text);
  const Hypergraph oracle = read_hmetis(in);
  const Hypergraph fast = read_hmetis(std::string_view(text));
  expect_same_hypergraph(fast, oracle);
}

TEST(IoDifferential, HandWrittenHmetisVariants) {
  expect_hmetis_agreement("3 4\n1 2\n2 3 4\n1 4\n");
  expect_hmetis_agreement("2 2 1\n5 1 2\n3 1 2\n");      // edge weights
  expect_hmetis_agreement("1 2 10\n1 2\n7\n9\n");        // vertex weights
  expect_hmetis_agreement("1 2 11\n4 1 2\n7\n9\n");      // both
  expect_hmetis_agreement("% c\n\n2 3\n% e\n1 2\n\n2 3\n");
  expect_hmetis_agreement("1 3\n2 1 2 1\n");             // duplicate pins
  expect_hmetis_agreement("2 3\r\n1 2\r\n2 3\r\n");      // CRLF
  expect_hmetis_agreement("1 2\n1 2");                   // no trailing newline
}

TEST(IoDifferential, GeneratorRoundTripsHmetis) {
  const Hypergraph instances[] = {
      generate_circuit(gate_array_params(0.1), 7),
      random_hypergraph({.num_vertices = 80,
                         .num_edges = 120,
                         .min_edge_size = 2,
                         .max_edge_size = 6},
                        11),
      planted_instance({.num_vertices = 60, .num_edges = 90}, 3).hypergraph,
      grid_circuit({.rows = 8, .cols = 9}),
  };
  for (const Hypergraph& h : instances) {
    std::ostringstream out;
    write_hmetis(out, h);
    expect_hmetis_agreement(out.str());
  }
}

TEST(IoDifferential, BookshelfAgreesOnWriterRoundTrip) {
  const Hypergraph h = generate_circuit(gate_array_params(0.1), 5);
  BookshelfDesign d;
  d.netlist.hypergraph = h;
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    d.netlist.vertex_names.push_back("m" + std::to_string(v));
  }
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    d.netlist.edge_names.push_back("n" + std::to_string(e));
  }
  d.is_terminal.assign(h.num_vertices(), 0);
  std::ostringstream nodes_out;
  std::ostringstream nets_out;
  write_bookshelf(nodes_out, nets_out, d);
  const std::string nodes = nodes_out.str();
  const std::string nets = nets_out.str();

  std::istringstream nodes_in(nodes);
  std::istringstream nets_in(nets);
  const BookshelfDesign oracle = read_bookshelf(nodes_in, nets_in);
  const BookshelfDesign fast =
      read_bookshelf(std::string_view(nodes), std::string_view(nets));
  expect_same_hypergraph(fast.netlist.hypergraph, oracle.netlist.hypergraph);
  EXPECT_EQ(fast.netlist.vertex_names, oracle.netlist.vertex_names);
  EXPECT_EQ(fast.netlist.edge_names, oracle.netlist.edge_names);
  EXPECT_EQ(fast.is_terminal, oracle.is_terminal);
}

class ShardedRoundTrip : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "fhp_test_sharded";
    std::filesystem::create_directories(dir_);
    params_ = gate_array_params(1.0);
    params_.num_modules = 3000;
    params_.num_nets = 4200;
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
  CircuitParams params_;
};

TEST_F(ShardedRoundTrip, HmetisParsersAgreeAndMatchStats) {
  const std::string path = (dir_ / "sharded.hgr").string();
  // Small chunks so the test crosses several chunk boundaries.
  const ShardedNetlistStats stats =
      write_sharded_hmetis(path, params_, 99, /*nets_per_chunk=*/512);
  EXPECT_EQ(stats.num_modules, 3000U);
  EXPECT_GE(stats.num_chunks, 8U);

  const Hypergraph fast = read_hmetis_file(path);
  std::ifstream in(path);
  const Hypergraph oracle = read_hmetis(in);
  expect_same_hypergraph(fast, oracle);
  EXPECT_EQ(fast.num_vertices(), stats.num_modules);
  EXPECT_EQ(fast.num_edges(), stats.num_nets);
  // Dedupe can only shrink the pin count relative to what was written.
  EXPECT_LE(fast.num_pins(), stats.num_pins);
  fast.validate();
}

TEST_F(ShardedRoundTrip, HmetisOutputIsDeterministic) {
  const std::string a = (dir_ / "a.hgr").string();
  const std::string b = (dir_ / "b.hgr").string();
  (void)write_sharded_hmetis(a, params_, 99, 512);
  (void)write_sharded_hmetis(b, params_, 99, 512);
  const MappedFile fa(a);
  const MappedFile fb(b);
  EXPECT_EQ(fa.view(), fb.view());

  const std::string c = (dir_ / "c.hgr").string();
  (void)write_sharded_hmetis(c, params_, 100, 512);  // different seed
  const MappedFile fc(c);
  EXPECT_NE(fa.view(), fc.view());
}

TEST_F(ShardedRoundTrip, BookshelfParsersAgree) {
  const std::string nodes = (dir_ / "sharded.nodes").string();
  const std::string nets = (dir_ / "sharded.nets").string();
  const ShardedNetlistStats stats =
      write_sharded_bookshelf(nodes, nets, params_, 99, 512);

  const BookshelfDesign fast = read_bookshelf_files(nodes, nets);
  std::ifstream nodes_in(nodes);
  std::ifstream nets_in(nets);
  const BookshelfDesign oracle = read_bookshelf(nodes_in, nets_in);
  expect_same_hypergraph(fast.netlist.hypergraph, oracle.netlist.hypergraph);
  EXPECT_EQ(fast.netlist.vertex_names, oracle.netlist.vertex_names);
  EXPECT_EQ(fast.netlist.edge_names, oracle.netlist.edge_names);
  EXPECT_EQ(fast.is_terminal, oracle.is_terminal);
  EXPECT_EQ(fast.netlist.hypergraph.num_vertices(), stats.num_modules);
  EXPECT_EQ(fast.netlist.hypergraph.num_edges(), stats.num_nets);
}

TEST_F(ShardedRoundTrip, HmetisAndBookshelfDescribeTheSameNetlist) {
  const std::string hgr = (dir_ / "same.hgr").string();
  const std::string nodes = (dir_ / "same.nodes").string();
  const std::string nets = (dir_ / "same.nets").string();
  (void)write_sharded_hmetis(hgr, params_, 7, 512);
  (void)write_sharded_bookshelf(nodes, nets, params_, 7, 512);

  const Hypergraph from_hgr = read_hmetis_file(hgr);
  const BookshelfDesign from_bs = read_bookshelf_files(nodes, nets);
  expect_same_hypergraph(from_bs.netlist.hypergraph, from_hgr);
}

TEST_F(ShardedRoundTrip, RejectsUnsupportedParams) {
  const std::string path = (dir_ / "bad.hgr").string();
  CircuitParams weighted = params_;
  weighted.weight_geometric_p = 0.5;  // streaming writers are unit-weight
  EXPECT_THROW((void)write_sharded_hmetis(path, weighted, 1),
               PreconditionError);
  CircuitParams tiny = params_;
  tiny.num_modules = 2;
  EXPECT_THROW((void)write_sharded_hmetis(path, tiny, 1), PreconditionError);
  EXPECT_THROW((void)write_sharded_hmetis(path, params_, 1,
                                          /*nets_per_chunk=*/0),
               PreconditionError);
}

}  // namespace
}  // namespace fhp

/// Golden tests for the paper's worked examples.
///
/// Figure 1 shows an 8-module / 5-net hypergraph with its intersection
/// graph; Figure 4 and the §2 walkthrough show a 12-module netlist whose
/// partition finishes with exactly signals c and h crossing (cut 2). The
/// source text of the netlist is partially illegible, so
/// test_helpers.hpp reconstructs an instance satisfying every stated
/// property (see DESIGN.md); these tests pin the whole pipeline to that
/// reconstruction.
#include <gtest/gtest.h>

#include "core/algorithm1.hpp"
#include "core/boundary.hpp"
#include "core/intersection.hpp"
#include "graph/bfs.hpp"
#include "graph/components.hpp"
#include "test_helpers.hpp"

namespace fhp {
namespace {

// Signal indices of the reconstructed Figure 4 netlist.
enum Signal : EdgeId { A, B, C, D, E, F, G, H, I, J, K, L };

TEST(PaperFigure1, IntersectionGraphShape) {
  // Figure 1's hypergraph: 8 modules, 5 nets A..E. We reconstruct one with
  // the same counts and verify the duality property the figure
  // illustrates: G-vertices = nets, adjacency = shared module.
  HypergraphBuilder b;
  b.add_vertices(8);
  b.add_edge({0, 1, 2});     // A
  b.add_edge({2, 3});        // B
  b.add_edge({3, 4, 5});     // C
  b.add_edge({5, 6});        // D
  b.add_edge({6, 7, 0});     // E
  const Hypergraph h = std::move(b).build();
  const Graph g = intersection_graph(h);
  EXPECT_EQ(g.num_vertices(), 5U);
  // Ring of overlaps: A-B (module 2), B-C (3), C-D (5), D-E (6), E-A (0).
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_TRUE(g.has_edge(3, 4));
  EXPECT_TRUE(g.has_edge(4, 0));
  EXPECT_EQ(g.num_edges(), 5U);
}

TEST(PaperFigure4, IntersectionGraphAdjacency) {
  const Hypergraph h = test::figure4_hypergraph();
  ASSERT_EQ(h.num_vertices(), 12U);
  ASSERT_EQ(h.num_edges(), 12U);
  const Graph g = intersection_graph(h);
  // Hand-checked adjacencies.
  EXPECT_TRUE(g.has_edge(A, B));   // share modules 2, 11
  EXPECT_TRUE(g.has_edge(A, K));   // share 1, 2
  EXPECT_TRUE(g.has_edge(C, D));   // share 3
  EXPECT_TRUE(g.has_edge(E, F));   // share 6, 7
  EXPECT_TRUE(g.has_edge(G, L));   // share 9, 10
  EXPECT_TRUE(g.has_edge(H, J));   // share 8
  EXPECT_FALSE(g.has_edge(K, L));  // far ends share nothing
  EXPECT_FALSE(g.has_edge(A, E));
  EXPECT_FALSE(g.has_edge(B, I));
  EXPECT_TRUE(is_connected(g));
}

TEST(PaperFigure4, FarEndsAreDistant) {
  // The walkthrough picks signals k, l as a furthest-removed pair.
  const Graph g = intersection_graph(test::figure4_hypergraph());
  const BfsResult from_k = bfs(g, K);
  const std::uint32_t dist_kl = from_k.distance[L];
  EXPECT_GE(dist_kl, 3U);
  EXPECT_EQ(dist_kl, from_k.depth);  // l realizes k's eccentricity
}

TEST(PaperFigure4, AlgorithmFindsCutTwo) {
  const Hypergraph h = test::figure4_hypergraph();
  Algorithm1Options options;
  options.large_edge_threshold = 0;
  const Algorithm1Result r = algorithm1(h, options);
  EXPECT_EQ(r.metrics.cut_edges, 2U);
  EXPECT_EQ(r.metrics.cardinality_imbalance, 0U);
  // The achieved partition matches the paper's (up to side naming).
  const auto expected = test::figure4_expected_sides();
  bool same = true;
  bool flipped = true;
  for (VertexId v = 0; v < 12; ++v) {
    same = same && (r.sides[v] == expected[v]);
    flipped = flipped && (r.sides[v] != expected[v]);
  }
  EXPECT_TRUE(same || flipped);
}

TEST(PaperFigure4, CrossingSignalsAreCAndH) {
  const Hypergraph h = test::figure4_hypergraph();
  const auto sides = test::figure4_expected_sides();
  const Bipartition p(h, sides);
  EXPECT_EQ(p.cut_edges(), 2U);
  EXPECT_TRUE(p.is_cut(C));
  EXPECT_TRUE(p.is_cut(H));
  for (EdgeId e = 0; e < 12; ++e) {
    if (e != C && e != H) EXPECT_FALSE(p.is_cut(e)) << "signal " << e;
  }
}

TEST(PaperFigure4, ExpectedPartitionIsOptimal) {
  // Brute force: no proper near-balanced partition beats cut 2.
  const Hypergraph h = test::figure4_hypergraph();
  EXPECT_EQ(test::brute_force_min_cut(h, 2), 2U);
}

TEST(PaperFigure4, BoundaryPipelineFromKL) {
  // Running the dual-cut pipeline from the (k, l) pair reproduces the
  // walkthrough's shape: a nonempty bipartite boundary whose completion
  // loses at most 2 nets.
  const Hypergraph h = test::figure4_hypergraph();
  const Graph g = intersection_graph(h);
  const BidirectionalCut cut = bidirectional_bfs_cut(g, K, L);
  const BoundaryStructure boundary = extract_boundary(g, cut.side);
  EXPECT_GT(boundary.size(), 0U);
  const CompletionResult completion =
      complete_cut_greedy(boundary.boundary_graph);
  validate_completion(boundary.boundary_graph, completion);
  EXPECT_LE(completion.loser_count, 2U);
}

}  // namespace
}  // namespace fhp

#include "hypergraph/bookshelf.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/algorithm1.hpp"
#include "test_helpers.hpp"

namespace fhp {
namespace {

constexpr const char* kNodes =
    "UCLA nodes 1.0\n"
    "# generated\n"
    "\n"
    "NumNodes : 5\n"
    "NumTerminals : 2\n"
    "  a1 2 3\n"
    "  a2 1 1\n"
    "  a3 4 2\n"
    "  p1 0 0 terminal\n"
    "  p2 0 0 terminal\n";

constexpr const char* kNets =
    "UCLA nets 1.0\n"
    "\n"
    "NumNets : 2\n"
    "NumPins : 5\n"
    "NetDegree : 3 sig0\n"
    "  a1 O : 0.5 0.5\n"
    "  a2 I\n"
    "  p1 I\n"
    "NetDegree : 2\n"
    "  a3 B\n"
    "  p2 B\n";

BookshelfDesign parse_sample() {
  std::istringstream nodes(kNodes);
  std::istringstream nets(kNets);
  return read_bookshelf(nodes, nets);
}

TEST(Bookshelf, ParsesNodesAndNets) {
  const BookshelfDesign d = parse_sample();
  const Hypergraph& h = d.netlist.hypergraph;
  EXPECT_EQ(h.num_vertices(), 5U);
  EXPECT_EQ(h.num_edges(), 2U);
  EXPECT_EQ(h.num_pins(), 5U);
  EXPECT_EQ(h.vertex_weight(d.netlist.vertex("a1")), 6);  // 2 x 3
  EXPECT_EQ(h.vertex_weight(d.netlist.vertex("p1")), 1);  // clamped
  EXPECT_EQ(d.netlist.edge_names[0], "sig0");
  EXPECT_EQ(d.netlist.edge_names[1], "n1");  // auto-named
  EXPECT_EQ(d.is_terminal[d.netlist.vertex("p1")], 1);
  EXPECT_EQ(d.is_terminal[d.netlist.vertex("a1")], 0);
  h.validate();
}

TEST(Bookshelf, RoundTrip) {
  const BookshelfDesign d = parse_sample();
  std::ostringstream nodes_out;
  std::ostringstream nets_out;
  write_bookshelf(nodes_out, nets_out, d);
  std::istringstream nodes_in(nodes_out.str());
  std::istringstream nets_in(nets_out.str());
  const BookshelfDesign back = read_bookshelf(nodes_in, nets_in);
  EXPECT_EQ(back.netlist.hypergraph.num_vertices(), 5U);
  EXPECT_EQ(back.netlist.hypergraph.num_pins(), 5U);
  EXPECT_EQ(back.is_terminal, d.is_terminal);
  EXPECT_EQ(back.netlist.vertex_names, d.netlist.vertex_names);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(back.netlist.hypergraph.vertex_weight(v),
              d.netlist.hypergraph.vertex_weight(v));
  }
}

TEST(Bookshelf, PartitionsDirectly) {
  const BookshelfDesign d = parse_sample();
  const Algorithm1Result r = algorithm1(d.netlist.hypergraph);
  EXPECT_TRUE(r.metrics.proper);
}

TEST(Bookshelf, RejectsMalformedInput) {
  {
    std::istringstream nodes("not a header\n");
    std::istringstream nets(kNets);
    EXPECT_THROW((void)read_bookshelf(nodes, nets), IoError);
  }
  {
    std::istringstream nodes(
        "UCLA nodes 1.0\nNumNodes : 1\nNumTerminals : 0\n a 1 1\n");
    std::istringstream nets(
        "UCLA nets 1.0\nNumNets : 1\nNumPins : 1\nNetDegree : 1\n zzz B\n");
    EXPECT_THROW((void)read_bookshelf(nodes, nets), IoError);  // unknown node
  }
  {
    std::istringstream nodes(
        "UCLA nodes 1.0\nNumNodes : 2\nNumTerminals : 0\n a 1 1\n a 1 1\n");
    std::istringstream nets("UCLA nets 1.0\nNumNets : 0\nNumPins : 0\n");
    EXPECT_THROW((void)read_bookshelf(nodes, nets), IoError);  // dup node
  }
  {
    std::istringstream nodes(
        "UCLA nodes 1.0\nNumNodes : 1\nNumTerminals : 0\n a 1 1\n");
    std::istringstream nets(
        "UCLA nets 1.0\nNumNets : 1\nNumPins : 5\nNetDegree : 1\n a B\n");
    EXPECT_THROW((void)read_bookshelf(nodes, nets), IoError);  // pin count
  }
  {
    std::istringstream nodes(
        "UCLA nodes 1.0\nNumNodes : 1\nNumTerminals : 5\n a 1 1\n");
    std::istringstream nets("UCLA nets 1.0\nNumNets : 0\nNumPins : 0\n");
    EXPECT_THROW((void)read_bookshelf(nodes, nets), IoError);  // terminals
  }
}

TEST(Bookshelf, MissingFilesThrow) {
  EXPECT_THROW((void)read_bookshelf_files("/nonexistent/a.nodes",
                                          "/nonexistent/a.nets"),
               IoError);
}

}  // namespace
}  // namespace fhp

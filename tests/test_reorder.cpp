/// \file test_reorder.cpp
/// Cache-locality layer tests: Permutation bijection contract,
/// Graph::permuted structural invariants (via the validate auditor), the
/// two ordering constructions, and the end-to-end property that
/// Algorithm1Options::reorder never changes a partition — 50 seeded
/// generator instances, threads {1, 8} x memoization on/off.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/algorithm1.hpp"
#include "gen/circuit.hpp"
#include "gen/planted.hpp"
#include "graph/bfs.hpp"
#include "graph/graph.hpp"
#include "graph/reorder.hpp"
#include "util/error.hpp"
#include "validate/audit.hpp"

namespace fhp {
namespace {

Graph path_graph(VertexId n) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  return Graph::from_edges(n, edges);
}

// ---------------------------------------------------------------------
// Permutation: bijection + round-trip contract.
// ---------------------------------------------------------------------

TEST(Permutation, IdentityIsIdentity) {
  const Permutation p = Permutation::identity(5);
  p.validate();
  EXPECT_TRUE(p.is_identity());
  EXPECT_EQ(p.size(), 5U);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(p.to_new[v], v);
    EXPECT_EQ(p.to_old[v], v);
  }
}

TEST(Permutation, FromOrderRoundTrips) {
  const Permutation p = Permutation::from_order({3, 1, 4, 0, 2});
  p.validate();
  EXPECT_FALSE(p.is_identity());
  // to_old is the order itself; to_new is its inverse.
  for (VertexId fresh = 0; fresh < p.size(); ++fresh) {
    EXPECT_EQ(p.to_new[p.to_old[fresh]], fresh);
  }
  for (VertexId old = 0; old < p.size(); ++old) {
    EXPECT_EQ(p.to_old[p.to_new[old]], old);
  }
  EXPECT_EQ(p.to_new[3], 0U);  // first visited -> new id 0
}

TEST(Permutation, EmptyIsIdentity) {
  const Permutation p = Permutation::from_order({});
  p.validate();
  EXPECT_TRUE(p.is_identity());
  EXPECT_EQ(p.size(), 0U);
}

TEST(Permutation, FromOrderRejectsDuplicates) {
  EXPECT_THROW(static_cast<void>(Permutation::from_order({0, 0, 1})),
               PreconditionError);
}

TEST(Permutation, FromOrderRejectsOutOfRange) {
  EXPECT_THROW(static_cast<void>(Permutation::from_order({0, 3})),
               PreconditionError);
}

// ---------------------------------------------------------------------
// Graph::permuted: relabeled CSR keeps every structural invariant and is
// isomorphic to the original.
// ---------------------------------------------------------------------

Graph sample_graph() {
  // Two components: a 6-cycle with a chord, plus a triangle.
  return Graph::from_edges(9, {{0, 1},
                               {1, 2},
                               {2, 3},
                               {3, 4},
                               {4, 5},
                               {5, 0},
                               {1, 4},
                               {6, 7},
                               {7, 8},
                               {8, 6}});
}

TEST(GraphPermuted, KeepsAuditInvariants) {
  const Graph g = sample_graph();
  for (const Permutation& perm :
       {degree_bucketed_bfs_order(g), pseudo_diameter_bfs_order(g),
        Permutation::from_order({8, 7, 6, 5, 4, 3, 2, 1, 0})}) {
    perm.validate();
    const Graph h = g.permuted(perm);
    const validate::AuditReport report = validate::audit_graph(h);
    EXPECT_TRUE(report.ok()) << report.to_string();
    EXPECT_EQ(h.num_vertices(), g.num_vertices());
    EXPECT_EQ(h.num_edges(), g.num_edges());
  }
}

TEST(GraphPermuted, RowsAreRelabeledNeighborSets) {
  const Graph g = sample_graph();
  const Permutation perm = degree_bucketed_bfs_order(g);
  const Graph h = g.permuted(perm);
  for (VertexId old = 0; old < g.num_vertices(); ++old) {
    std::vector<VertexId> expected;
    for (VertexId w : g.neighbors(old)) expected.push_back(perm.to_new[w]);
    std::sort(expected.begin(), expected.end());
    const auto row = h.neighbors(perm.to_new[old]);
    ASSERT_EQ(row.size(), expected.size());
    EXPECT_TRUE(std::equal(row.begin(), row.end(), expected.begin()));
    // Rows of the permuted CSR are sorted (required by bsearch users and
    // the auditor's adjacency_sorted predicate).
    EXPECT_TRUE(std::is_sorted(row.begin(), row.end()));
  }
}

TEST(GraphPermuted, PreservesBfsDistances) {
  const Graph g = sample_graph();
  const Permutation perm = pseudo_diameter_bfs_order(g);
  const Graph h = g.permuted(perm);
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    const BfsResult orig = bfs(g, s);
    const BfsResult relab = bfs(h, perm.to_new[s]);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(relab.distance[perm.to_new[v]], orig.distance[v]);
    }
    EXPECT_EQ(relab.depth, orig.depth);
    EXPECT_EQ(relab.reached, orig.reached);
  }
}

// ---------------------------------------------------------------------
// Ordering constructions.
// ---------------------------------------------------------------------

TEST(Orderings, AreValidPermutations) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Hypergraph hg = generate_circuit(
        table2_params(120, 210, Technology::kStandardCell), seed);
    // A quick proxy graph: nets sharing a module.
    std::vector<std::pair<VertexId, VertexId>> edges;
    for (VertexId v = 0; v < hg.num_vertices(); ++v) {
      const auto nets = hg.nets_of(v);
      for (std::size_t i = 0; i + 1 < nets.size(); ++i) {
        edges.emplace_back(nets[i], nets[i + 1]);
      }
    }
    const Graph g = Graph::from_edges(hg.num_edges(), edges);
    degree_bucketed_bfs_order(g).validate();
    pseudo_diameter_bfs_order(g).validate();
  }
}

TEST(Orderings, PathGraphBecomesSequential) {
  // On a path, both orderings renumber one end to 0 and walk to the other
  // end: the permuted adjacency is perfectly banded (bandwidth 1).
  const Graph g = path_graph(16);
  for (const Permutation& perm :
       {degree_bucketed_bfs_order(g), pseudo_diameter_bfs_order(g)}) {
    const Graph h = g.permuted(perm);
    for (VertexId v = 0; v < h.num_vertices(); ++v) {
      for (VertexId w : h.neighbors(v)) {
        EXPECT_LE(v > w ? v - w : w - v, 1U);
      }
    }
  }
}

TEST(Orderings, ComponentsStayContiguous) {
  const Graph g = sample_graph();  // 6-cycle+chord, then a triangle
  const Permutation perm = degree_bucketed_bfs_order(g);
  // First component (vertices 0..5) occupies new ids 0..5; the triangle
  // occupies 6..8.
  for (VertexId v = 0; v < 6; ++v) EXPECT_LT(perm.to_new[v], 6U);
  for (VertexId v = 6; v < 9; ++v) EXPECT_GE(perm.to_new[v], 6U);
}

TEST(Orderings, ReduceProfileOnCircuitGraphs) {
  // The point of the layer: the relabeled intersection graph should have
  // a (weakly) smaller mean absolute id gap across edges than the
  // input numbering on every generated instance.
  for (std::uint64_t seed : {3ULL, 7ULL, 11ULL}) {
    const Hypergraph hg = generate_circuit(
        table2_params(200, 350, Technology::kStandardCell), seed);
    Algorithm1Options options;
    const Algorithm1Context ctx(hg, options);
    if (ctx.is_degenerate()) continue;
    const Graph& g = ctx.intersection();
    auto profile = [](const Graph& graph) {
      double total = 0;
      for (VertexId v = 0; v < graph.num_vertices(); ++v) {
        for (VertexId w : graph.neighbors(v)) {
          total += v > w ? v - w : w - v;
        }
      }
      return total;
    };
    const Permutation perm = degree_bucketed_bfs_order(g);
    EXPECT_LE(profile(g.permuted(perm)), profile(g))
        << "seed " << seed << ": reordering widened the profile";
  }
}

// ---------------------------------------------------------------------
// End-to-end property: reorder on/off is bit-identical — 50 seeded
// instances x threads {1, 8} x memoization on/off.
// ---------------------------------------------------------------------

class ReorderIdentity
    : public testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(ReorderIdentity, PartitionUnchangedAcrossInstances) {
  const int threads = std::get<0>(GetParam());
  const bool memoize = std::get<1>(GetParam());
  int exercised = 0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Hypergraph h;
    if (seed % 3 == 0) {
      PlantedParams params;
      params.num_vertices = 60 + static_cast<VertexId>(seed * 4);
      params.num_edges = 100 + static_cast<EdgeId>(seed * 6);
      params.planted_cut = 2 + static_cast<EdgeId>(seed % 5);
      params.min_edge_size = 2;
      params.max_edge_size = 3;
      params.max_degree = 0;
      h = planted_instance(params, seed).hypergraph;
    } else {
      h = generate_circuit(
          table2_params(60 + static_cast<VertexId>(seed * 5),
                        100 + static_cast<EdgeId>(seed * 8),
                        seed % 2 == 0 ? Technology::kStandardCell
                                      : Technology::kPcb),
          seed);
    }
    Algorithm1Options on;
    on.num_starts = 6;
    on.seed = seed;
    on.threads = threads;
    on.memoize_starts = memoize;
    on.reorder = true;
    Algorithm1Options off = on;
    off.reorder = false;

    const Algorithm1Result with = algorithm1(h, on);
    const Algorithm1Result without = algorithm1(h, off);
    ASSERT_EQ(with.sides, without.sides)
        << "seed " << seed << " threads " << threads << " memo " << memoize;
    ASSERT_EQ(with.metrics.cut_edges, without.metrics.cut_edges)
        << "seed " << seed;
    ASSERT_EQ(with.metrics.weight_imbalance, without.metrics.weight_imbalance)
        << "seed " << seed;
    ++exercised;
  }
  EXPECT_EQ(exercised, 50);
}

INSTANTIATE_TEST_SUITE_P(ThreadsMemo, ReorderIdentity,
                         testing::Combine(testing::Values(1, 8),
                                          testing::Bool()));

}  // namespace
}  // namespace fhp

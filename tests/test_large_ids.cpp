/// Large-id boundary matrix: counts near the id-range limits must either
/// parse (when the build's fhp::Index admits them and the body is really
/// present) or fail with a *typed* IoError — never a bad_alloc from
/// trusting a hostile header, and never silent truncation. Every case runs
/// through both parser stacks (istream oracle and the zero-copy overload)
/// so their error classification stays aligned.
///
/// Deliberate constraint: no test here feeds a parser a header whose
/// declared counts are both admissible *and* backed by a matching body —
/// that would genuinely allocate count-proportional memory (a 2^31-vertex
/// weight vector is 16 GiB). Near-limit counts appear only in inputs that
/// must be rejected before any count-proportional allocation happens.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <string>
#include <string_view>

#include "graph/maxflow.hpp"
#include "hypergraph/bookshelf.hpp"
#include "hypergraph/io.hpp"
#include "test_helpers.hpp"
#include "util/ids.hpp"

namespace fhp {
namespace {

void expect_both_hmetis_parsers_throw(const std::string& text) {
  std::istringstream in(text);
  EXPECT_THROW((void)read_hmetis(in), IoError) << "istream: " << text;
  EXPECT_THROW((void)read_hmetis(std::string_view(text)), IoError)
      << "string_view: " << text;
}

void expect_both_bookshelf_parsers_throw(const std::string& nodes,
                                         const std::string& nets) {
  std::istringstream nodes_in(nodes);
  std::istringstream nets_in(nets);
  EXPECT_THROW((void)read_bookshelf(nodes_in, nets_in), IoError);
  EXPECT_THROW(
      (void)read_bookshelf(std::string_view(nodes), std::string_view(nets)),
      IoError);
}

TEST(LargeIds, IndexWidthMatchesBuildConfiguration) {
#if FHP_INDEX_64
  static_assert(sizeof(Index) == 8, "FHP_INDEX_64 implies 64-bit ids");
#else
  static_assert(sizeof(Index) == 4, "default build uses 32-bit ids");
#endif
  static_assert(sizeof(VertexId) == sizeof(Index));
  static_assert(sizeof(EdgeId) == sizeof(Index));
  EXPECT_EQ(kMaxIndexCount,
            static_cast<unsigned long long>(std::numeric_limits<Index>::max()));
}

TEST(LargeIds, HmetisCountsBeyondInt32AreRejectedOn32BitBuilds) {
  // 2^31 exceeds kMaxIndexCount only when Index is int32; on 64-bit builds
  // this header is admissible and would honestly allocate gigabytes, so
  // the case is gated to the narrow build.
  if constexpr (sizeof(VertexId) == 4) {
    expect_both_hmetis_parsers_throw("1 2147483648\n1 2\n");
    expect_both_hmetis_parsers_throw("2147483648 4\n1 2\n");
  }
}

TEST(LargeIds, HmetisCountsBeyondInt64AreRejectedOnEveryBuild) {
  expect_both_hmetis_parsers_throw("1 9999999999999999999\n1 2\n");
  expect_both_hmetis_parsers_throw("9999999999999999999 4\n1 2\n");
  expect_both_hmetis_parsers_throw("1 99999999999999999999\n1 2\n");  // >u64
}

TEST(LargeIds, HostileEdgeCountFailsBeforeAllocation) {
  // A billion declared edges backed by one body line: the census must
  // reject this as truncation *before* any edge-proportional allocation.
  // A bad_alloc instead of IoError fails the EXPECT_THROW type match.
  expect_both_hmetis_parsers_throw("1000000000 4\n1 2\n");
  // Same with edge weights (fmt 1) so the weighted sizing path is covered.
  expect_both_hmetis_parsers_throw("1000000000 4 1\n5 1 2\n");
}

TEST(LargeIds, HmetisPinValuesBeyondRangeAreTyped) {
  expect_both_hmetis_parsers_throw("1 4\n1 2147483647\n");  // pin >> n
  expect_both_hmetis_parsers_throw("1 2\n1 99999999999999999999\n");
  expect_both_hmetis_parsers_throw("1 2 10\n1 2\n1\n99999999999999999999\n");
}

TEST(LargeIds, ModerateLargeInstanceRoundTripsIdentically) {
  // Positive control at a size that is big for ids but small for memory:
  // three million vertices, one edge touching the extremes.
  const std::string text = "1 3000000\n1 3000000\n";
  std::istringstream in(text);
  const Hypergraph oracle = read_hmetis(in);
  const Hypergraph fast = read_hmetis(std::string_view(text));
  ASSERT_EQ(oracle.num_vertices(), 3000000U);
  ASSERT_EQ(fast.num_vertices(), 3000000U);
  ASSERT_EQ(fast.num_edges(), 1U);
  EXPECT_EQ(fast.pins(0)[0], oracle.pins(0)[0]);
  EXPECT_EQ(fast.pins(0)[1], oracle.pins(0)[1]);
  EXPECT_EQ(fast.pins(0)[1], 2999999U);
}

constexpr const char* kSmallNodes =
    "UCLA nodes 1.0\nNumNodes : 1\nNumTerminals : 0\n  a 1 1\n";
constexpr const char* kSmallNets =
    "UCLA nets 1.0\nNumNets : 1\nNumPins : 1\nNetDegree : 1\n  a B\n";

TEST(LargeIds, BookshelfCountsBeyondInt32AreRejectedOn32BitBuilds) {
  if constexpr (sizeof(VertexId) == 4) {
    expect_both_bookshelf_parsers_throw(
        "UCLA nodes 1.0\nNumNodes : 2147483648\nNumTerminals : 0\n  a 1 1\n",
        kSmallNets);
    expect_both_bookshelf_parsers_throw(
        kSmallNodes,
        "UCLA nets 1.0\nNumNets : 2147483648\nNumPins : 1\n"
        "NetDegree : 1\n  a B\n");
  }
}

TEST(LargeIds, BookshelfCountsBeyondInt64AreRejectedOnEveryBuild) {
  expect_both_bookshelf_parsers_throw(
      "UCLA nodes 1.0\nNumNodes : 9999999999999999999\nNumTerminals : 0\n"
      "  a 1 1\n",
      kSmallNets);
  expect_both_bookshelf_parsers_throw(
      kSmallNodes,
      "UCLA nets 1.0\nNumNets : 9999999999999999999\nNumPins : 1\n"
      "NetDegree : 1\n  a B\n");
}

TEST(LargeIds, FlowNetworkNodeCountBeyondIndexRangeIsRejected) {
  // The Lawler gadget sizes a FlowNetwork at 2·|corridor| + 2·nets + 2
  // nodes; on 32-bit-index builds a corridor past 2^31 nodes must fail
  // typed in the constructor *before* any per-node allocation. (On idx64
  // builds the same count is admissible — and a multi-GiB adjacency — so
  // the hostile probe only runs where rejection is the contract.)
  if constexpr (sizeof(VertexId) == 4) {
    EXPECT_THROW(FlowNetwork net(static_cast<Count>(2147483648ULL)),
                 PreconditionError);
  }
  static_assert(FlowNetwork::kInfiniteCapacity <
                std::numeric_limits<FlowNetwork::Capacity>::max() / 2);
}

TEST(LargeIds, HostileBookshelfCountsFailBeforeAllocation) {
  // A billion declared nodes / pins backed by a couple of lines: the line
  // census rejects before any count-proportional reservation.
  expect_both_bookshelf_parsers_throw(
      "UCLA nodes 1.0\nNumNodes : 1000000000\nNumTerminals : 0\n  a 1 1\n",
      kSmallNets);
  expect_both_bookshelf_parsers_throw(
      kSmallNodes,
      "UCLA nets 1.0\nNumNets : 2\nNumPins : 1000000000\n"
      "NetDegree : 1\n  a B\n");
}

}  // namespace
}  // namespace fhp

#include "baselines/flow.hpp"

#include <gtest/gtest.h>

#include "baselines/exact.hpp"
#include "gen/circuit.hpp"
#include "test_helpers.hpp"

namespace fhp {
namespace {

TEST(FlowBaseline, SolvesTwoClusters) {
  const Hypergraph h = test::two_cluster_hypergraph(8, 2);
  const BaselineResult r = flow_bipartition(h);
  EXPECT_EQ(r.metrics.cut_edges, 2U);
  EXPECT_TRUE(r.metrics.proper);
}

TEST(FlowBaseline, ChainMinCutIsOne) {
  const Hypergraph h = test::path_hypergraph(30);
  const BaselineResult r = flow_bipartition(h);
  EXPECT_EQ(r.metrics.cut_edges, 1U);
}

TEST(FlowBaseline, PerPairOptimalityOnSmallInstances) {
  // A flow cut can never beat the unconstrained exact optimum, and for a
  // far-apart pair on these instances it should reach it.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Hypergraph h =
        generate_circuit(table2_params(18, 26, Technology::kPcb), seed);
    FlowOptions options;
    options.seed = seed;
    options.pairs = 6;
    options.balance_fraction = 1.0;  // accept any proper cut
    const BaselineResult flow = flow_bipartition(h, options);
    const BaselineResult exact = exact_bipartition(h);
    EXPECT_GE(flow.metrics.cut_weight, exact.metrics.cut_weight);
    EXPECT_LE(flow.metrics.cut_weight, exact.metrics.cut_weight + 2)
        << "seed " << seed;
  }
}

TEST(FlowBaseline, RespectsBalancePreference) {
  // Dumbbell with a cheap pendant: the globally minimum cut slices off
  // one module; with a balance tolerance the flow partitioner must prefer
  // the 2-net bridge cut between the clusters.
  const Hypergraph h = test::two_cluster_hypergraph(6, 2);
  FlowOptions options;
  options.balance_fraction = 0.34;
  options.pairs = 10;
  const BaselineResult r = flow_bipartition(h, options);
  EXPECT_LE(r.metrics.cardinality_imbalance, 4U);
}

TEST(FlowBaseline, WeightedNetsRespected) {
  HypergraphBuilder b;
  b.add_vertices(4);
  b.add_edge({0, 1}, 10);
  b.add_edge({1, 2}, 1);
  b.add_edge({2, 3}, 10);
  const Hypergraph h = std::move(b).build();
  FlowOptions options;
  options.balance_fraction = 1.0;
  const BaselineResult r = flow_bipartition(h, options);
  EXPECT_EQ(r.metrics.cut_weight, 1);
}

TEST(FlowBaseline, HandlesIsolatedModules) {
  HypergraphBuilder b;
  b.add_vertices(6);
  b.add_edge({0, 1});
  b.add_edge({1, 2});
  const Hypergraph h = std::move(b).build();
  const BaselineResult r = flow_bipartition(h);
  EXPECT_TRUE(r.metrics.proper);
}

TEST(FlowBaseline, DeterministicPerSeed) {
  const Hypergraph h =
      generate_circuit(table2_params(60, 110, Technology::kHybrid), 4);
  FlowOptions options;
  options.seed = 9;
  EXPECT_EQ(flow_bipartition(h, options).sides,
            flow_bipartition(h, options).sides);
}

TEST(FlowBaseline, Preconditions) {
  HypergraphBuilder b;
  b.add_vertex();
  const Hypergraph one = std::move(b).build();
  EXPECT_THROW((void)flow_bipartition(one), PreconditionError);
  const Hypergraph h = test::path_hypergraph(4);
  FlowOptions options;
  options.pairs = 0;
  EXPECT_THROW((void)flow_bipartition(h, options), PreconditionError);
}

}  // namespace
}  // namespace fhp

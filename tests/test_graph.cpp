#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace fhp {
namespace {

TEST(Graph, EmptyByDefault) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0U);
  EXPECT_EQ(g.num_edges(), 0U);
  g.validate();
}

TEST(Graph, FromEdgesBasic) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(g.num_vertices(), 4U);
  EXPECT_EQ(g.num_edges(), 3U);
  EXPECT_EQ(g.degree(1), 2U);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  g.validate();
}

TEST(Graph, DuplicateEdgesMerged) {
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 0}, {0, 1}});
  EXPECT_EQ(g.num_edges(), 1U);
  EXPECT_EQ(g.degree(0), 1U);
}

TEST(Graph, SelfLoopRejected) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(1, 1), PreconditionError);
}

TEST(Graph, OutOfRangeEndpointRejected) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 2), PreconditionError);
}

TEST(Graph, NeighborsSorted) {
  const Graph g = Graph::from_edges(5, {{2, 4}, {2, 0}, {2, 3}, {2, 1}});
  const auto ns = g.neighbors(2);
  ASSERT_EQ(ns.size(), 4U);
  for (std::size_t i = 0; i + 1 < ns.size(); ++i) EXPECT_LT(ns[i], ns[i + 1]);
}

TEST(Graph, MaxDegreeTracked) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_EQ(g.max_degree(), 3U);
}

TEST(Graph, IsolatedVerticesAllowed) {
  const Graph g = Graph::from_edges(5, {{0, 1}});
  EXPECT_EQ(g.degree(4), 0U);
  EXPECT_TRUE(g.neighbors(4).empty());
  g.validate();
}

TEST(Graph, RandomGraphsValidate) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = test::random_graph(40, 0.15, seed);
    g.validate();
    // Handshake: sum of degrees = 2 |E|.
    std::size_t total = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) total += g.degree(v);
    EXPECT_EQ(total, 2 * g.num_edges());
  }
}

TEST(Graph, AdjacencySymmetry) {
  const Graph g = test::random_graph(30, 0.2, 99);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      EXPECT_TRUE(g.has_edge(v, u));
    }
  }
}

}  // namespace
}  // namespace fhp

#include "gen/grid.hpp"

#include <gtest/gtest.h>

#include "baselines/multilevel.hpp"
#include "core/algorithm1.hpp"
#include "test_helpers.hpp"

namespace fhp {
namespace {

TEST(Grid, MeshShape) {
  GridParams params;
  params.rows = 4;
  params.cols = 5;
  const Hypergraph h = grid_circuit(params);
  EXPECT_EQ(h.num_vertices(), 20U);
  // Horizontal: 4 * 4; vertical: 5 * 3.
  EXPECT_EQ(h.num_edges(), 31U);
  EXPECT_TRUE(h.is_graph());
  h.validate();
}

TEST(Grid, TorusAddsWrapNets) {
  GridParams params;
  params.rows = 4;
  params.cols = 4;
  params.torus = true;
  const Hypergraph h = grid_circuit(params);
  // 4 rows * 4 horizontal (incl. wrap) + 4 cols * 4 vertical.
  EXPECT_EQ(h.num_edges(), 32U);
}

TEST(Grid, SegmentsAddThreePinNets) {
  GridParams params;
  params.rows = 8;
  params.cols = 8;
  params.segment_fraction = 0.5;
  const Hypergraph h = grid_circuit(params, 3);
  EXPECT_GT(h.max_edge_size(), 2U);
  h.validate();
}

TEST(Grid, LineGrid) {
  GridParams params;
  params.rows = 1;
  params.cols = 10;
  const Hypergraph h = grid_circuit(params);
  EXPECT_EQ(h.num_edges(), 9U);
}

TEST(Grid, Algorithm1FindsNearMinimalMeshCut) {
  // A balanced bisection of a 12x12 mesh cuts >= 12 nets (one per row or
  // column crossing the cutline); Algorithm I should land close to that.
  GridParams params;
  params.rows = 12;
  params.cols = 12;
  const Hypergraph h = grid_circuit(params);
  Algorithm1Options options;
  options.num_starts = 50;
  const Algorithm1Result r = algorithm1(h, options);
  EXPECT_GE(r.metrics.cut_edges, 12U);
  EXPECT_LE(r.metrics.cut_edges, 24U);  // within 2x of the geometric floor
  EXPECT_LE(r.metrics.cardinality_imbalance, 24U);
}

TEST(Grid, MultilevelFindsNearMinimalMeshCut) {
  GridParams params;
  params.rows = 12;
  params.cols = 12;
  const Hypergraph h = grid_circuit(params);
  MultilevelOptions options;
  const BaselineResult r = multilevel_bipartition(h, options);
  EXPECT_GE(r.metrics.cut_edges, 12U);
  EXPECT_LE(r.metrics.cut_edges, 18U);
}

TEST(Grid, Preconditions) {
  GridParams params;
  params.rows = 0;
  EXPECT_THROW((void)grid_circuit(params), PreconditionError);
  params.rows = 1;
  params.cols = 1;
  EXPECT_THROW((void)grid_circuit(params), PreconditionError);
  params.cols = 4;
  params.segment_fraction = 2.0;
  EXPECT_THROW((void)grid_circuit(params), PreconditionError);
}

}  // namespace
}  // namespace fhp

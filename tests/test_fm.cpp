#include "baselines/fm.hpp"

#include <gtest/gtest.h>

#include "baselines/random_cut.hpp"
#include "gen/circuit.hpp"
#include "test_helpers.hpp"

namespace fhp {
namespace {

TEST(Fm, SolvesTwoClusters) {
  const Hypergraph h = test::two_cluster_hypergraph(8, 2);
  const BaselineResult r = fiduccia_mattheyses(h);
  EXPECT_EQ(r.metrics.cut_edges, 2U);
  EXPECT_TRUE(r.metrics.proper);
}

TEST(Fm, NeverWorseThanItsStart) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Hypergraph h =
        generate_circuit(table2_params(100, 180, Technology::kPcb), seed);
    const BaselineResult start = random_bisection(h, seed);
    FmOptions options;
    options.seed = seed;
    options.initial = start.sides;
    const BaselineResult r = fiduccia_mattheyses(h, options);
    EXPECT_LE(r.metrics.cut_weight, start.metrics.cut_weight)
        << "seed " << seed;
  }
}

TEST(Fm, RespectsBalanceTolerance) {
  const Hypergraph h =
      generate_circuit(table2_params(120, 200, Technology::kGateArray), 3);
  FmOptions options;
  options.max_weight_imbalance = 4;
  const BaselineResult r = fiduccia_mattheyses(h, options);
  EXPECT_LE(r.metrics.weight_imbalance, 4);
}

TEST(Fm, AcceptsInitialPartition) {
  const Hypergraph h = test::path_hypergraph(12);
  std::vector<std::uint8_t> initial(12, 0);
  for (VertexId v = 6; v < 12; ++v) initial[v] = 1;
  FmOptions options;
  options.initial = initial;
  const BaselineResult r = fiduccia_mattheyses(h, options);
  // The chain's optimal contiguous split is already optimal: cut 1.
  EXPECT_EQ(r.metrics.cut_edges, 1U);
}

TEST(Fm, RejectsBadInitial) {
  const Hypergraph h = test::path_hypergraph(4);
  FmOptions options;
  options.initial = std::vector<std::uint8_t>{0, 1};
  EXPECT_THROW((void)fiduccia_mattheyses(h, options), PreconditionError);
}

TEST(Fm, ImprovesRandomStartOnPath) {
  const Hypergraph h = test::path_hypergraph(40);
  FmOptions options;
  options.seed = 11;
  const BaselineResult r = fiduccia_mattheyses(h, options);
  // Random bisections of a chain cut ~half the nets; FM should get far
  // below that even if not always to the optimum of 1.
  EXPECT_LT(r.metrics.cut_edges, 8U);
}

TEST(Fm, DeterministicPerSeed) {
  const Hypergraph h =
      generate_circuit(table2_params(80, 150, Technology::kStandardCell), 5);
  FmOptions options;
  options.seed = 42;
  const BaselineResult a = fiduccia_mattheyses(h, options);
  const BaselineResult b = fiduccia_mattheyses(h, options);
  EXPECT_EQ(a.sides, b.sides);
}

TEST(Fm, HandlesWeightedNets) {
  HypergraphBuilder b;
  b.add_vertices(4);
  b.add_edge({0, 1}, 10);
  b.add_edge({1, 2}, 1);
  b.add_edge({2, 3}, 10);
  const Hypergraph h = std::move(b).build();
  FmOptions options;
  options.seed = 2;
  const BaselineResult r = fiduccia_mattheyses(h, options);
  // Optimal: cut the cheap middle net only.
  EXPECT_EQ(r.metrics.cut_weight, 1);
}

TEST(Fm, FixedModulesNeverMove) {
  const Hypergraph h =
      generate_circuit(table2_params(80, 140, Technology::kPcb), 8);
  std::vector<std::uint8_t> initial(h.num_vertices(), 0);
  for (VertexId v = h.num_vertices() / 2; v < h.num_vertices(); ++v) {
    initial[v] = 1;
  }
  std::vector<std::uint8_t> fixed(h.num_vertices(), 0);
  fixed[0] = 1;
  fixed[h.num_vertices() - 1] = 1;
  FmOptions options;
  options.initial = initial;
  options.fixed = fixed;
  const BaselineResult r = fiduccia_mattheyses(h, options);
  EXPECT_EQ(r.sides[0], initial[0]);
  EXPECT_EQ(r.sides[h.num_vertices() - 1], initial[h.num_vertices() - 1]);
}

TEST(Fm, AllFixedIsIdentity) {
  const Hypergraph h = test::path_hypergraph(8);
  std::vector<std::uint8_t> initial{0, 1, 0, 1, 0, 1, 0, 1};
  FmOptions options;
  options.initial = initial;
  options.fixed.assign(8, 1);
  const BaselineResult r = fiduccia_mattheyses(h, options);
  EXPECT_EQ(r.sides, initial);
}

TEST(Fm, FixedMaskSizeChecked) {
  const Hypergraph h = test::path_hypergraph(4);
  FmOptions options;
  options.fixed = {1};
  EXPECT_THROW((void)fiduccia_mattheyses(h, options), PreconditionError);
}

TEST(Fm, ReportsPassCount) {
  const Hypergraph h = test::two_cluster_hypergraph(6, 1);
  const BaselineResult r = fiduccia_mattheyses(h);
  EXPECT_GE(r.iterations, 1);
  EXPECT_LE(r.iterations, 32);
}

}  // namespace
}  // namespace fhp

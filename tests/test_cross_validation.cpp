/// Cross-validation: every partitioner in the library against the exact
/// branch-and-bound optimum on small instances from four different
/// families. Guards against silent quality regressions anywhere in the
/// stack (parameterized over family x seed).
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "baselines/exact.hpp"
#include "baselines/flow.hpp"
#include "baselines/fm.hpp"
#include "baselines/kl.hpp"
#include "baselines/multilevel.hpp"
#include "baselines/sa.hpp"
#include "core/algorithm1.hpp"
#include "gen/circuit.hpp"
#include "gen/grid.hpp"
#include "gen/planted.hpp"
#include "gen/random_hypergraph.hpp"
#include "test_helpers.hpp"

namespace fhp {
namespace {

enum class Family { kRandom, kPlanted, kGrid, kCircuit };

Hypergraph make_small_instance(Family family, std::uint64_t seed) {
  switch (family) {
    case Family::kRandom: {
      RandomHypergraphParams params;
      params.num_vertices = 14;
      params.num_edges = 22;
      params.max_edge_size = 4;
      params.max_degree = 6;
      return random_hypergraph(params, seed);
    }
    case Family::kPlanted: {
      PlantedParams params;
      params.num_vertices = 14;
      params.num_edges = 20;
      params.planted_cut = 2;
      params.max_edge_size = 3;
      return planted_instance(params, seed).hypergraph;
    }
    case Family::kGrid: {
      GridParams params;
      params.rows = 3;
      params.cols = 5;
      params.segment_fraction = 0.2;
      return grid_circuit(params, seed);
    }
    case Family::kCircuit:
      return generate_circuit(table2_params(15, 22, Technology::kPcb), seed);
  }
  return {};
}

class CrossValidation
    : public testing::TestWithParam<std::tuple<Family, std::uint64_t>> {};

TEST_P(CrossValidation, HeuristicsNearTheExactOptimum) {
  const auto [family, seed] = GetParam();
  const Hypergraph h = make_small_instance(family, seed);
  if (h.num_vertices() < 2 || h.num_edges() == 0) GTEST_SKIP();

  // Two references: the unconstrained minimum (what free-balance methods
  // chase) and the near-bisection minimum (what the balanced methods
  // chase — comparing them to the unconstrained optimum would punish
  // them for honoring their balance constraint).
  const EdgeId optimum_any = exact_bipartition(h).metrics.cut_edges;
  ExactOptions balanced_opt;
  balanced_opt.max_cardinality_imbalance = 2;
  const EdgeId optimum_balanced =
      exact_bipartition(h, balanced_opt).metrics.cut_edges;

  auto check = [&](const std::vector<std::uint8_t>& sides, EdgeId reference,
                   EdgeId slack, const std::string& name) {
    const EdgeId cut = test::count_cut_edges(h, sides);
    EXPECT_GE(cut, optimum_any) << name;
    EXPECT_LE(cut, reference + slack) << name << " too far from optimum";
  };

  {
    Algorithm1Options o;
    o.seed = seed;
    o.large_edge_threshold = 0;
    o.consider_floating_split = true;
    check(algorithm1(h, o).sides, optimum_balanced, 2, "algorithm1");
  }
  {
    FmOptions o;
    o.seed = seed;
    check(fiduccia_mattheyses(h, o).sides, optimum_balanced, 4, "fm");
  }
  {
    KlOptions o;
    o.seed = seed;
    check(kernighan_lin(h, o).sides, optimum_balanced, 6, "kl");
  }
  {
    SaOptions o;
    o.seed = seed;
    o.moves_per_temperature = 200;
    o.max_temperatures = 40;
    check(simulated_annealing(h, o).sides, optimum_balanced, 3, "sa");
  }
  {
    FlowOptions o;
    o.seed = seed;
    o.balance_fraction = 1.0;
    check(flow_bipartition(h, o).sides, optimum_any, 2, "flow");
  }
  {
    MultilevelOptions o;
    o.seed = seed;
    check(multilevel_bipartition(h, o).sides, optimum_balanced, 4,
          "multilevel");
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndSeeds, CrossValidation,
    testing::Combine(testing::Values(Family::kRandom, Family::kPlanted,
                                     Family::kGrid, Family::kCircuit),
                     testing::Values<std::uint64_t>(1, 2, 3, 4)));

}  // namespace
}  // namespace fhp

#include "place/route.hpp"

#include <gtest/gtest.h>

#include "gen/circuit.hpp"
#include "test_helpers.hpp"

namespace fhp {
namespace {

/// Hand-made placement over a grid.
Placement make_placement(std::uint32_t cols, std::uint32_t rows,
                         std::vector<std::uint32_t> region) {
  Placement p;
  p.grid_cols = cols;
  p.grid_rows = rows;
  p.region = std::move(region);
  p.x.assign(p.region.size(), 0.0);
  p.y.assign(p.region.size(), 0.0);
  for (std::size_t v = 0; v < p.region.size(); ++v) {
    p.x[v] = p.region[v] % cols + 0.5;
    p.y[v] = p.region[v] / cols + 0.5;
  }
  return p;
}

TEST(Route, TwoPinStraightNet) {
  const Hypergraph h = Hypergraph::from_edges(2, {{0, 1}});
  // Modules in regions (0,0) and (0,2) of a 3x1 grid: 2 crossings.
  const Placement p = make_placement(3, 1, {0, 2});
  const RoutingResult r = route_global(h, p);
  EXPECT_EQ(r.wirelength, 2U);
  EXPECT_EQ(r.routed_nets, 1U);
  EXPECT_EQ(r.max_usage, 1U);
  EXPECT_EQ(r.overflow(0), 2U);
  EXPECT_EQ(r.overflow(1), 0U);
}

TEST(Route, LShapeUsesManhattanLength) {
  const Hypergraph h = Hypergraph::from_edges(2, {{0, 1}});
  // (0,0) to (1,1) on a 2x2 grid: wirelength 2.
  const Placement p = make_placement(2, 2, {0, 3});
  const RoutingResult r = route_global(h, p);
  EXPECT_EQ(r.wirelength, 2U);
}

TEST(Route, LocalNetsAreFree) {
  const Hypergraph h = Hypergraph::from_edges(3, {{0, 1, 2}});
  const Placement p = make_placement(2, 2, {1, 1, 1});
  const RoutingResult r = route_global(h, p);
  EXPECT_EQ(r.wirelength, 0U);
  EXPECT_EQ(r.routed_nets, 0U);
}

TEST(Route, CongestionAwareElbowChoice) {
  // Two identical diagonal nets: the second should take the other elbow,
  // keeping peak usage at 1.
  const Hypergraph h = Hypergraph::from_edges(4, {{0, 1}, {2, 3}});
  const Placement p = make_placement(2, 2, {0, 3, 0, 3});
  const RoutingResult r = route_global(h, p);
  EXPECT_EQ(r.wirelength, 4U);
  EXPECT_EQ(r.max_usage, 1U);
}

TEST(Route, MultiPinStarFromMedian) {
  // Net spanning regions 0,1,2 of a 3x1 grid: star hub at the median
  // (middle) region -> wirelength 2.
  const Hypergraph h = Hypergraph::from_edges(3, {{0, 1, 2}});
  const Placement p = make_placement(3, 1, {0, 1, 2});
  const RoutingResult r = route_global(h, p);
  EXPECT_EQ(r.wirelength, 2U);
}

TEST(Route, MincutPlacementRoutesBetterThanRandom) {
  const Hypergraph h = generate_circuit(
      table2_params(300, 520, Technology::kStandardCell), 7);
  PlacementOptions options;
  options.seed = 7;
  const RoutingResult mincut = route_global(h, place_mincut(h, options));
  const RoutingResult random = route_global(h, place_random(h, 4, 4, 7));
  EXPECT_LT(mincut.wirelength, random.wirelength);
  EXPECT_LE(mincut.max_usage, random.max_usage);
}

TEST(Route, SingleRegionGrid) {
  const Hypergraph h = test::path_hypergraph(5);
  const Placement p = make_placement(1, 1, {0, 0, 0, 0, 0});
  const RoutingResult r = route_global(h, p);
  EXPECT_EQ(r.wirelength, 0U);
  EXPECT_EQ(r.overflow(0), 0U);
}

TEST(Route, MismatchedPlacementRejected) {
  const Hypergraph h = test::path_hypergraph(3);
  const Placement p = make_placement(2, 1, {0, 1});
  EXPECT_THROW((void)route_global(h, p), PreconditionError);
}

}  // namespace
}  // namespace fhp

/// JSON reader (util/json): syntax coverage, member-order preservation,
/// navigation helpers, error reporting, and a round-trip through the run
/// reports our own exporters emit.
#include "util/json.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <random>
#include <string>

#include "obs/report.hpp"
#include "util/error.hpp"

namespace fhp {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(json::parse("null").is_null());
  EXPECT_TRUE(json::parse("true").as_bool());
  EXPECT_FALSE(json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(json::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(json::parse("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const json::Value v = json::parse(
      R"({"a": [1, 2, {"b": true}], "c": {"d": null}, "e": "x"})");
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.members().size(), 3U);
  const json::Value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items().size(), 3U);
  EXPECT_DOUBLE_EQ(a->items()[0].as_number(), 1.0);
  EXPECT_TRUE(a->items()[2].find("b")->as_bool());
  EXPECT_TRUE(v.find_path({"c", "d"})->is_null());
  EXPECT_EQ(v.find_path({"c", "missing"}), nullptr);
  EXPECT_EQ(v.find_path({"e", "not_an_object"}), nullptr);
}

TEST(Json, PreservesMemberOrder) {
  const json::Value v = json::parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(v.members().size(), 3U);
  EXPECT_EQ(v.members()[0].first, "z");
  EXPECT_EQ(v.members()[1].first, "a");
  EXPECT_EQ(v.members()[2].first, "m");
}

TEST(Json, DecodesStringEscapes) {
  const json::Value v =
      json::parse(R"("line\nquote\"slash\\u: é")");
  EXPECT_EQ(v.as_string(), "line\nquote\"slash\\u: \xc3\xa9");
}

TEST(Json, NumberOrFallsBack) {
  const json::Value v = json::parse(R"({"n": 7, "s": "x"})");
  EXPECT_DOUBLE_EQ(v.number_or("n", -1.0), 7.0);
  EXPECT_DOUBLE_EQ(v.number_or("s", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(v.number_or("missing", -1.0), -1.0);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(static_cast<void>(json::parse("")), IoError);
  EXPECT_THROW(static_cast<void>(json::parse("{")), IoError);
  EXPECT_THROW(static_cast<void>(json::parse("[1, 2,]")), IoError);
  EXPECT_THROW(static_cast<void>(json::parse("{\"a\" 1}")), IoError);
  EXPECT_THROW(static_cast<void>(json::parse("tru")), IoError);
  EXPECT_THROW(static_cast<void>(json::parse("1 2")), IoError);
  EXPECT_THROW(static_cast<void>(json::parse("\"unterminated")), IoError);
}

/// Emits one random JSON value into \p w and appends an expectation
/// script: scalar leaves are recorded so the parsed tree can be checked
/// against what the Writer was told to write.
void write_random_value(json::Writer& w, std::mt19937_64& rng, int depth) {
  // Shallower trees as depth grows; leaves only at the cap.
  const int kind = depth >= 4 ? static_cast<int>(rng() % 5)
                              : static_cast<int>(rng() % 7);
  switch (kind) {
    case 0: w.null(); break;
    case 1: w.value(rng() % 2 == 0); break;
    case 2: w.value(static_cast<long long>(rng() % 2000) - 1000); break;
    case 3:
      // Dyadic fractions round-trip exactly through double formatting.
      w.value(static_cast<double>(static_cast<int>(rng() % 4096) - 2048) /
              64.0);
      break;
    case 4: {
      // Hostile-ish strings: quotes, backslashes, control chars, UTF-8.
      static const char* kStrings[] = {"", "plain", "with \"quotes\"",
                                       "back\\slash", "tab\there\n",
                                       "caf\xc3\xa9", "\x01\x1f control"};
      w.value(kStrings[rng() % 7]);
      break;
    }
    case 5: {
      w.begin_array();
      const std::uint64_t n = rng() % 4;
      for (std::uint64_t i = 0; i < n; ++i) {
        write_random_value(w, rng, depth + 1);
      }
      w.end_array();
      break;
    }
    default: {
      w.begin_object();
      const std::uint64_t n = rng() % 4;
      for (std::uint64_t i = 0; i < n; ++i) {
        w.key("k" + std::to_string(i));
        write_random_value(w, rng, depth + 1);
      }
      w.end_object();
      break;
    }
  }
}

TEST(Json, FuzzedWriterOutputRoundTrips) {
  // The Writer's contract: everything it emits, the reader accepts, and
  // dump(parse(x)) is a fixpoint (so re-serialization is stable).
  std::mt19937_64 rng(20260808);
  for (int doc = 0; doc < 200; ++doc) {
    json::Writer w;
    write_random_value(w, rng, 0);
    const std::string text = std::move(w).take();
    const json::Value parsed = json::parse(text);
    const std::string dumped = json::dump(parsed);
    EXPECT_EQ(json::dump(json::parse(dumped)), dumped)
        << "document " << doc << ": " << text;
  }
}

TEST(Json, WriterNonFiniteDoublesBecomeNull) {
  json::Writer w;
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.end_array();
  const json::Value v = json::parse(std::move(w).take());
  ASSERT_EQ(v.items().size(), 2U);
  EXPECT_TRUE(v.items()[0].is_null());
  EXPECT_TRUE(v.items()[1].is_null());
}

TEST(Json, WriterMisuseThrowsTyped) {
  {
    json::Writer w;
    EXPECT_THROW(w.key("orphan"), PreconditionError);  // key outside object
  }
  {
    json::Writer w;
    w.begin_array();
    EXPECT_THROW(w.end_object(), PreconditionError);  // mismatched close
  }
  {
    json::Writer w;
    w.begin_object();
    EXPECT_THROW(static_cast<void>(std::move(w).take()),
                 PreconditionError);  // incomplete document
  }
}

TEST(Json, ReadsOwnExporterOutput) {
  // The parser's real contract: whatever obs::to_json emits must read
  // back, including escaped names and the histogram section.
  obs::reset();
  obs::Counters::instance().add("json/\"tricky\\name\"", 3);
  const std::string text = obs::to_json(obs::snapshot());
  obs::reset();
  const json::Value v = json::parse(text);
  const json::Value* counters = v.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->number_or("json/\"tricky\\name\"", -1.0), 3.0);
}

}  // namespace
}  // namespace fhp

/// JSON reader (util/json): syntax coverage, member-order preservation,
/// navigation helpers, error reporting, and a round-trip through the run
/// reports our own exporters emit.
#include "util/json.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/report.hpp"
#include "util/error.hpp"

namespace fhp {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(json::parse("null").is_null());
  EXPECT_TRUE(json::parse("true").as_bool());
  EXPECT_FALSE(json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(json::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(json::parse("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const json::Value v = json::parse(
      R"({"a": [1, 2, {"b": true}], "c": {"d": null}, "e": "x"})");
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.members().size(), 3U);
  const json::Value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items().size(), 3U);
  EXPECT_DOUBLE_EQ(a->items()[0].as_number(), 1.0);
  EXPECT_TRUE(a->items()[2].find("b")->as_bool());
  EXPECT_TRUE(v.find_path({"c", "d"})->is_null());
  EXPECT_EQ(v.find_path({"c", "missing"}), nullptr);
  EXPECT_EQ(v.find_path({"e", "not_an_object"}), nullptr);
}

TEST(Json, PreservesMemberOrder) {
  const json::Value v = json::parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(v.members().size(), 3U);
  EXPECT_EQ(v.members()[0].first, "z");
  EXPECT_EQ(v.members()[1].first, "a");
  EXPECT_EQ(v.members()[2].first, "m");
}

TEST(Json, DecodesStringEscapes) {
  const json::Value v =
      json::parse(R"("line\nquote\"slash\\u: é")");
  EXPECT_EQ(v.as_string(), "line\nquote\"slash\\u: \xc3\xa9");
}

TEST(Json, NumberOrFallsBack) {
  const json::Value v = json::parse(R"({"n": 7, "s": "x"})");
  EXPECT_DOUBLE_EQ(v.number_or("n", -1.0), 7.0);
  EXPECT_DOUBLE_EQ(v.number_or("s", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(v.number_or("missing", -1.0), -1.0);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(static_cast<void>(json::parse("")), IoError);
  EXPECT_THROW(static_cast<void>(json::parse("{")), IoError);
  EXPECT_THROW(static_cast<void>(json::parse("[1, 2,]")), IoError);
  EXPECT_THROW(static_cast<void>(json::parse("{\"a\" 1}")), IoError);
  EXPECT_THROW(static_cast<void>(json::parse("tru")), IoError);
  EXPECT_THROW(static_cast<void>(json::parse("1 2")), IoError);
  EXPECT_THROW(static_cast<void>(json::parse("\"unterminated")), IoError);
}

TEST(Json, ReadsOwnExporterOutput) {
  // The parser's real contract: whatever obs::to_json emits must read
  // back, including escaped names and the histogram section.
  obs::reset();
  obs::Counters::instance().add("json/\"tricky\\name\"", 3);
  const std::string text = obs::to_json(obs::snapshot());
  obs::reset();
  const json::Value v = json::parse(text);
  const json::Value* counters = v.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->number_or("json/\"tricky\\name\"", -1.0), 3.0);
}

}  // namespace
}  // namespace fhp

/// \file test_workspace.cpp
/// The workspace substrate: EpochArray semantics, growth accounting, and
/// the long-haul property that workspace-backed kernels stay bit-identical
/// to their allocating counterparts across thousands of reuses with
/// interleaved shrink-then-grow problem sizes (the epoch-stamp trick's
/// dangerous regime: stale stamps from a larger, older epoch must never
/// leak into a smaller, newer one and vice versa).
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "util/workspace.hpp"

namespace fhp {
namespace {

TEST(EpochArrayTest, UnwrittenSlotsReadTheEpochDefault) {
  EpochArray<std::uint32_t> a;
  a.reset(4, 7U);
  EXPECT_EQ(a.size(), 4U);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(a.is_set(i));
    EXPECT_EQ(a.get(i), 7U);
  }
  a.set(2, 99U);
  EXPECT_TRUE(a.is_set(2));
  EXPECT_EQ(a.get(2), 99U);
  EXPECT_EQ(a.get(1), 7U);
}

TEST(EpochArrayTest, ResetClearsInConstantTimeWithNewDefault) {
  EpochArray<std::uint8_t> a;
  a.reset(8, 0);
  for (std::size_t i = 0; i < 8; ++i) a.set(i, 1);
  a.reset(8, 2);  // same size, new epoch: every write forgotten
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_FALSE(a.is_set(i));
    EXPECT_EQ(a.get(i), 2);
  }
}

TEST(EpochArrayTest, ShrinkThenGrowNeverResurrectsStaleWrites) {
  EpochArray<std::uint32_t> a;
  a.reset(10, 0U);
  for (std::size_t i = 0; i < 10; ++i) {
    a.set(i, 100U + static_cast<std::uint32_t>(i));
  }
  a.reset(3, 0U);  // shrink: slots 3..9 keep old stamps
  a.reset(10, 5U);  // grow back: old stamps are from an older generation
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_FALSE(a.is_set(i)) << i;
    EXPECT_EQ(a.get(i), 5U) << i;
  }
}

TEST(WorkspaceTest, AccountsGrowthOnceAndStopsWhenWarm) {
  Workspace ws;
  EXPECT_EQ(ws.grow_events(), 0U);
  ws.distance.reset(100, 0U);
  const std::size_t after_first = ws.grow_events();
  EXPECT_GE(after_first, 1U);
  EXPECT_GT(ws.allocated_bytes(), 0U);
  // Same-or-smaller epochs and warm plain buffers add nothing.
  ws.distance.reset(100, 1U);
  ws.distance.reset(40, 2U);
  ws.reset_buffer(ws.queue, 50);
  const std::size_t after_queue = ws.grow_events();
  ws.reset_buffer(ws.queue, 50);
  EXPECT_EQ(ws.grow_events(), after_queue);
  EXPECT_EQ(ws.distance.size(), 40U);
}

/// Deterministic random connected graph on n vertices: a Hamiltonian-ish
/// chain plus extra random edges, so BFS has nontrivial depth and shape.
Graph random_connected_graph(VertexId n, Rng& rng) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId v = 1; v < n; ++v) {
    edges.emplace_back(static_cast<VertexId>(rng.next_below(v)), v);
  }
  const std::size_t extra = static_cast<std::size_t>(n);
  for (std::size_t i = 0; i < extra; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(n));
    const auto v = static_cast<VertexId>(rng.next_below(n));
    if (u != v) edges.emplace_back(u, v);
  }
  return Graph::from_edges(n, edges);
}

TEST(WorkspaceTest, TenThousandReusesMatchAllocatingKernels) {
  // One workspace (and one BidirectionalCut output) survives 10,000
  // iterations over graphs whose sizes interleave shrink-then-grow; every
  // iteration must agree exactly with the allocating kernels.
  Workspace ws;
  BidirectionalCut ws_cut;
  Rng rng(2026);
  // A fixed bank of graphs with deliberately alternating sizes.
  constexpr VertexId kSizes[] = {120, 7, 260, 2, 33, 500, 9, 64};
  std::vector<Graph> graphs;
  for (const VertexId n : kSizes) graphs.push_back(random_connected_graph(n, rng));

  for (int iter = 0; iter < 10000; ++iter) {
    const Graph& g = graphs[static_cast<std::size_t>(iter) % graphs.size()];
    const auto source = static_cast<VertexId>(rng.next_below(g.num_vertices()));

    const BfsResult expect = bfs(g, source);
    const BfsSummary got = bfs_scan(g, source, ws);
    ASSERT_EQ(got.farthest, expect.farthest);
    ASSERT_EQ(got.depth, expect.depth);
    ASSERT_EQ(got.reached, expect.reached);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(ws.distance.get(v), expect.distance[v]) << "iter " << iter;
    }

    // Exercise the composite kernels on a sparser cadence (they run many
    // BFS passes internally, so every iteration would be overkill).
    if (iter % 10 == 0 && g.num_vertices() >= 2) {
      const DiameterPair expect_pair = longest_path_from(g, source, 2);
      const DiameterPair got_pair = longest_path_from(g, source, 2, ws);
      ASSERT_EQ(got_pair.s, expect_pair.s);
      ASSERT_EQ(got_pair.t, expect_pair.t);
      ASSERT_EQ(got_pair.distance, expect_pair.distance);

      const BidirectionalCut expect_cut =
          bidirectional_bfs_cut(g, expect_pair.s, expect_pair.t);
      bidirectional_bfs_cut(g, expect_pair.s, expect_pair.t, ws, ws_cut);
      ASSERT_EQ(ws_cut.side, expect_cut.side) << "iter " << iter;
      ASSERT_EQ(ws_cut.reached_s, expect_cut.reached_s);
      ASSERT_EQ(ws_cut.reached_t, expect_cut.reached_t);
    }
  }

  // Warmed up long ago: the growth tally is bounded by the size bank, not
  // by the iteration count (reuse actually reused).
  EXPECT_LT(ws.grow_events(), 64U);
}

}  // namespace
}  // namespace fhp

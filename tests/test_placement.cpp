#include "place/placement.hpp"

#include <gtest/gtest.h>

#include "gen/circuit.hpp"
#include "test_helpers.hpp"

namespace fhp {
namespace {

TEST(Placement, EveryModulePlacedInBounds) {
  const Hypergraph h = generate_circuit(
      table2_params(120, 210, Technology::kStandardCell), 3);
  PlacementOptions options;
  options.grid_cols = 4;
  options.grid_rows = 2;
  const Placement p = place_mincut(h, options);
  ASSERT_EQ(p.region.size(), h.num_vertices());
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    EXPECT_LT(p.region[v], 8U);
    EXPECT_GE(p.x[v], 0.0);
    EXPECT_LT(p.x[v], 4.0);
    EXPECT_GE(p.y[v], 0.0);
    EXPECT_LT(p.y[v], 2.0);
    // Coordinates must sit inside the module's region square.
    EXPECT_EQ(static_cast<std::uint32_t>(p.x[v]), p.col(v));
    EXPECT_EQ(static_cast<std::uint32_t>(p.y[v]), p.row(v));
  }
}

TEST(Placement, OccupancyRoughlyEven) {
  const Hypergraph h = generate_circuit(
      table2_params(256, 450, Technology::kGateArray), 5);
  PlacementOptions options;
  options.grid_cols = 4;
  options.grid_rows = 4;
  const Placement p = place_mincut(h, options);
  std::vector<VertexId> counts(16, 0);
  for (std::uint32_t region : p.region) ++counts[region];
  for (VertexId c : counts) {
    EXPECT_GT(c, 4U);   // ideal 16
    EXPECT_LT(c, 40U);
  }
}

TEST(Placement, BeatsRandomOnWirelength) {
  const Hypergraph h = generate_circuit(
      table2_params(300, 520, Technology::kStandardCell), 7);
  PlacementOptions options;
  options.seed = 7;
  const Placement mincut = place_mincut(h, options);
  const Placement random = place_random(h, 4, 4, 7);
  EXPECT_LT(half_perimeter_wirelength(h, mincut),
            0.8 * half_perimeter_wirelength(h, random));
  EXPECT_LT(spanning_nets(h, mincut), spanning_nets(h, random));
}

TEST(Placement, ChainPlacesContiguously) {
  // A chain netlist placed on a 1x2... use 2x1: wirelength near minimal
  // means almost all nets stay within one region.
  const Hypergraph h = test::path_hypergraph(64);
  PlacementOptions options;
  options.grid_cols = 2;
  options.grid_rows = 1;
  const Placement p = place_mincut(h, options);
  EXPECT_EQ(spanning_nets(h, p), 1U);
}

TEST(Placement, AllEnginesProduceValidPlacements) {
  const Hypergraph h =
      generate_circuit(table2_params(100, 170, Technology::kPcb), 11);
  for (PlacementEngine engine :
       {PlacementEngine::kAlgorithm1, PlacementEngine::kFm,
        PlacementEngine::kKl, PlacementEngine::kRandom}) {
    PlacementOptions options;
    options.engine = engine;
    options.grid_cols = 2;
    options.grid_rows = 2;
    const Placement p = place_mincut(h, options);
    std::vector<int> used(4, 0);
    for (std::uint32_t region : p.region) {
      ASSERT_LT(region, 4U);
      used[region] = 1;
    }
    EXPECT_EQ(used[0] + used[1] + used[2] + used[3], 4)
        << "engine " << static_cast<int>(engine);
  }
}

TEST(Placement, TerminalPropagationHelpsOnAverage) {
  // Orientation selection can only use information the blind placer
  // ignores; over several seeds it should not lose.
  const Hypergraph h = generate_circuit(
      table2_params(300, 520, Technology::kStandardCell), 19);
  double with_tp = 0.0;
  double without_tp = 0.0;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    PlacementOptions options;
    options.seed = seed;
    options.terminal_propagation = true;
    with_tp += half_perimeter_wirelength(h, place_mincut(h, options));
    options.terminal_propagation = false;
    without_tp += half_perimeter_wirelength(h, place_mincut(h, options));
  }
  EXPECT_LE(with_tp, without_tp * 1.02);
}

TEST(Placement, DeterministicPerSeed) {
  const Hypergraph h =
      generate_circuit(table2_params(90, 150, Technology::kHybrid), 2);
  PlacementOptions options;
  options.seed = 13;
  options.grid_cols = 2;
  options.grid_rows = 2;
  const Placement a = place_mincut(h, options);
  const Placement b = place_mincut(h, options);
  EXPECT_EQ(a.region, b.region);
  EXPECT_EQ(a.x, b.x);
}

TEST(Placement, Preconditions) {
  const Hypergraph h = test::path_hypergraph(8);
  PlacementOptions options;
  options.grid_cols = 3;  // not a power of two
  EXPECT_THROW((void)place_mincut(h, options), PreconditionError);
  options.grid_cols = 8;
  options.grid_rows = 8;  // 64 regions > 8 modules
  EXPECT_THROW((void)place_mincut(h, options), PreconditionError);
  EXPECT_THROW((void)place_random(h, 0, 1, 1), PreconditionError);
}

TEST(Placement, HpwlOfKnownLayout) {
  // Two modules at region centers (0.5, 0.5) and (1.5, 0.5): HPWL = 1.
  HypergraphBuilder b;
  b.add_vertices(2);
  b.add_edge({0, 1});
  const Hypergraph h = std::move(b).build();
  Placement p;
  p.grid_cols = 2;
  p.grid_rows = 1;
  p.region = {0, 1};
  p.x = {0.5, 1.5};
  p.y = {0.5, 0.5};
  EXPECT_DOUBLE_EQ(half_perimeter_wirelength(h, p), 1.0);
  EXPECT_EQ(spanning_nets(h, p), 1U);
}

TEST(Placement, TrivialNetsContributeNothing) {
  HypergraphBuilder b;
  b.add_vertices(4);
  b.add_edge({0});
  b.add_edge({0, 1});
  const Hypergraph h = std::move(b).build();
  const Placement p = place_random(h, 2, 1, 3);
  // Only the 2-pin net contributes; HPWL finite and >= 0.
  EXPECT_GE(half_perimeter_wirelength(h, p), 0.0);
}

}  // namespace
}  // namespace fhp

/// Difficult-inputs demo (paper §4): generate a sparse planted-bisection
/// instance — minimum cut far below the random expectation — and watch
/// Algorithm I walk straight to it while Kernighan–Lin and
/// Fiduccia–Mattheyses stick at local minima an order of magnitude worse.
///
/// Usage: difficult_inputs [n] [edges] [planted_cut] [seed]
#include <cstdio>
#include <cstdlib>

#include "baselines/fm.hpp"
#include "baselines/kl.hpp"
#include "baselines/sa.hpp"
#include "core/algorithm1.hpp"
#include "gen/planted.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace fhp;

  PlantedParams params;
  params.num_vertices = argc > 1 ? static_cast<VertexId>(std::atoi(argv[1]))
                                 : 500;
  params.num_edges =
      argc > 2 ? static_cast<EdgeId>(std::atoi(argv[2])) : 700;
  params.planted_cut =
      argc > 3 ? static_cast<EdgeId>(std::atoi(argv[3])) : 4;
  params.min_edge_size = 2;
  params.max_edge_size = 2;
  params.max_degree = 0;
  const std::uint64_t seed =
      argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 7;

  const PlantedInstance inst = planted_instance(params, seed);
  std::printf(
      "planted instance: %u modules, %u nets, hidden bisection of cut %u\n\n",
      inst.hypergraph.num_vertices(), inst.hypergraph.num_edges(),
      inst.planted_cut);

  {
    Algorithm1Options options;
    options.seed = seed;
    Timer timer;
    const Algorithm1Result r = algorithm1(inst.hypergraph, options);
    std::printf("Algorithm I        : cut %4u (%.0f ms)%s\n",
                r.metrics.cut_edges, timer.millis(),
                r.metrics.cut_edges <= inst.planted_cut
                    ? "   <- found the planted cut"
                    : "");
  }
  {
    KlOptions options;
    options.seed = seed;
    Timer timer;
    const BaselineResult r = kernighan_lin(inst.hypergraph, options);
    std::printf("Kernighan-Lin      : cut %4u (%.0f ms)\n",
                r.metrics.cut_edges, timer.millis());
  }
  {
    FmOptions options;
    options.seed = seed;
    Timer timer;
    const BaselineResult r = fiduccia_mattheyses(inst.hypergraph, options);
    std::printf("Fiduccia-Mattheyses: cut %4u (%.0f ms)\n",
                r.metrics.cut_edges, timer.millis());
  }
  {
    SaOptions options;
    options.seed = seed;
    Timer timer;
    const BaselineResult r = simulated_annealing(inst.hypergraph, options);
    std::printf("Simulated annealing: cut %4u (%.0f ms)\n",
                r.metrics.cut_edges, timer.millis());
  }

  std::printf(
      "\nWhy: the intersection graph of a sparse planted instance has a"
      "\nlong diameter across the hidden cut, so the random-longest-path"
      "\nBFS almost always straddles it and the boundary completion only"
      "\nhas the planted nets left to lose. Local search from a random"
      "\nbisection must fix Theta(n) misplaced modules through zero-gain"
      "\nplateaus instead.\n");
  return 0;
}

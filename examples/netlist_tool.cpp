/// fhp-partition — command-line netlist bipartitioner.
///
/// Reads a hypergraph (hMETIS `.hgr` or named `signal: modules` netlist),
/// partitions it with Algorithm I or one of the baselines, prints quality
/// metrics, and optionally writes a partition file (one 0/1 per module).
///
/// Usage:
///   netlist_tool [options] <input>
///     --format hmetis|netlist     input format        (default hmetis)
///     --algorithm alg1|fm|kl|sa|random                (default alg1)
///     --engine flat|multilevel|auto   alg1 engine routing (default auto:
///                                 multilevel V-cycle at scale, flat below)
///     --flat                      shorthand for --engine flat
///     --refiner fm|flow|flow+fm   alg1 engine refinement (default fm)
///     --starts N                  Alg I start budget  (default 50)
///     --threads N                 Alg I execution lanes (default serial)
///     --threshold K               ignore nets with > K pins; 0 = keep all
///                                                     (default 10)
///     --completion greedy|weighted|exact              (default greedy)
///     --objective cut|quotient                        (default cut)
///     --seed S                    RNG seed            (default 1)
///     --no-reorder                skip the cache-locality reordering
///     --output FILE               write partition file
///     --refine                    FM-refine the result
///     --trace                     print the phase tree + counters
///     --json FILE                 write the trace report as JSON
///     --chrome-trace FILE         write a chrome://tracing event file
///     --metrics-out FILE          write a machine-readable JSON summary
///                                 (input, config, quality metrics,
///                                 runtime, peak RSS, trace report)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "baselines/flow.hpp"
#include "baselines/fm.hpp"
#include "baselines/kl.hpp"
#include "baselines/multilevel.hpp"
#include "baselines/random_cut.hpp"
#include "baselines/sa.hpp"
#include "baselines/spectral.hpp"
#include "core/algorithm1.hpp"
#include "core/recursive.hpp"
#include "hypergraph/bookshelf.hpp"
#include "hypergraph/io.hpp"
#include "hypergraph/stats.hpp"
#include "multilevel/engine.hpp"
#include "obs/report.hpp"
#include "partition/report.hpp"
#include "util/json.hpp"
#include "util/memory.hpp"
#include "util/timer.hpp"

namespace {

using namespace fhp;

struct CliOptions {
  std::string input;
  std::string format = "hmetis";
  std::string algorithm = "alg1";
  std::string engine = "auto";
  std::string completion = "greedy";
  std::string objective = "cut";
  std::string refiner = "fm";
  std::string output;
  std::string json_path;
  std::string chrome_trace_path;
  std::string metrics_path;
  int starts = 50;
  int threads = 0;
  std::uint32_t kway = 2;
  std::uint32_t threshold = 10;
  std::uint64_t seed = 1;
  bool reorder = true;
  bool refine = false;
  bool verbose = false;
  bool trace = false;
};

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "error: %s\n(run with --help for usage)\n",
               message.c_str());
  std::exit(2);
}

void print_usage() {
  std::printf(
      "usage: netlist_tool [options] <input>\n"
      "  --format hmetis|netlist|bookshelf   (default hmetis; bookshelf\n"
      "                            takes the .nodes file, .nets beside it)\n"
      "  --algorithm alg1|fm|kl|sa|flow|multilevel|spectral|random\n"
      "  --engine flat|multilevel|auto  alg1 engine routing (default auto:\n"
      "                            instances with >= 2000 modules run the\n"
      "                            multilevel V-cycle, smaller ones flat\n"
      "                            Algorithm I; see docs/multilevel.md)\n"
      "  --flat                    shorthand for --engine flat\n"
      "  --refiner fm|flow|flow+fm alg1 engine refinement: per-level FM,\n"
      "                            corridor flow, or flow then FM polish\n"
      "                            (flat runs get a flow post-pass;\n"
      "                            default fm)\n"
      "  --starts N                Alg I multi-start budget (default 50)\n"
      "  --threads N               Alg I execution lanes (default: the\n"
      "                            FHP_THREADS env var, else serial); the\n"
      "                            partition is identical at any setting\n"
      "  --kway N                  recursive N-way partition (default 2;\n"
      "                            alg1 engine only, one part id per line)\n"
      "  --threshold K             ignore nets with > K pins, 0 keeps all\n"
      "  --completion greedy|weighted|exact (default greedy)\n"
      "  --objective cut|quotient  start-selection objective\n"
      "  --seed S                  RNG seed (default 1)\n"
      "  --no-reorder              skip the cache-locality reordering of\n"
      "                            the intersection graph (identical\n"
      "                            partition, slower traversals; for\n"
      "                            benchmarking)\n"
      "  --output FILE             write the partition (one 0/1 per line)\n"
      "  --refine                  FM-refine the chosen partition\n"
      "  --verbose                 print the full cut analysis\n"
      "  --trace                   print the phase tree and counters\n"
      "  --json FILE               write the trace report as JSON\n"
      "  --chrome-trace FILE       write a chrome://tracing event file\n"
      "  --metrics-out FILE        write a machine-readable JSON summary\n"
      "                            (input, config, quality metrics,\n"
      "                            runtime, peak RSS, trace report)\n");
}

CliOptions parse(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      std::exit(0);
    } else if (arg == "--format") {
      options.format = value();
    } else if (arg == "--algorithm") {
      options.algorithm = value();
    } else if (arg == "--engine") {
      options.engine = value();
    } else if (arg == "--flat") {
      options.engine = "flat";
    } else if (arg == "--refiner") {
      options.refiner = value();
    } else if (arg == "--completion") {
      options.completion = value();
    } else if (arg == "--objective") {
      options.objective = value();
    } else if (arg == "--output") {
      options.output = value();
    } else if (arg == "--starts") {
      options.starts = std::atoi(value().c_str());
    } else if (arg == "--threads") {
      options.threads = std::atoi(value().c_str());
    } else if (arg == "--kway") {
      options.kway = static_cast<std::uint32_t>(std::atoi(value().c_str()));
    } else if (arg == "--threshold") {
      options.threshold = static_cast<std::uint32_t>(
          std::atoi(value().c_str()));
    } else if (arg == "--seed") {
      options.seed = static_cast<std::uint64_t>(
          std::atoll(value().c_str()));
    } else if (arg == "--no-reorder") {
      options.reorder = false;
    } else if (arg == "--refine") {
      options.refine = true;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--trace") {
      options.trace = true;
    } else if (arg == "--json") {
      options.json_path = value();
    } else if (arg == "--chrome-trace") {
      options.chrome_trace_path = value();
    } else if (arg == "--metrics-out") {
      options.metrics_path = value();
    } else if (!arg.empty() && arg[0] == '-') {
      usage_error("unknown option " + arg);
    } else if (options.input.empty()) {
      options.input = arg;
    } else {
      usage_error("multiple inputs given");
    }
  }
  if (options.input.empty()) usage_error("no input file");
  return options;
}

/// What partitioned the input: the sides plus the engine that produced
/// them ("flat" / "multilevel" for the alg1 path, the baseline's name
/// otherwise) and the hierarchy depth (0 off the multilevel path).
struct RunResult {
  std::vector<std::uint8_t> sides;
  std::string engine;
  int ml_levels = 0;
};

RunResult run(const CliOptions& cli, const Hypergraph& h) {
  if (cli.algorithm == "alg1") {
    Algorithm1Options options;
    options.num_starts = cli.starts;
    options.large_edge_threshold = cli.threshold;
    options.seed = cli.seed;
    options.threads = cli.threads;
    options.reorder = cli.reorder;
    if (cli.completion == "weighted") {
      options.completion = CompletionStrategy::kWeightedGreedy;
    } else if (cli.completion == "exact") {
      options.completion = CompletionStrategy::kExact;
    } else if (cli.completion != "greedy") {
      usage_error("unknown completion " + cli.completion);
    }
    if (cli.objective == "quotient") {
      options.objective = Objective::kQuotient;
    } else if (cli.objective != "cut") {
      usage_error("unknown objective " + cli.objective);
    }
    ml::PartitionPlan plan;
    plan.algorithm1 = options;
    if (cli.engine == "flat") {
      plan.engine = ml::EngineChoice::kFlat;
    } else if (cli.engine == "multilevel") {
      plan.engine = ml::EngineChoice::kMultilevel;
    } else if (cli.engine != "auto") {
      usage_error("unknown engine " + cli.engine);
    }
    if (cli.refiner == "flow") {
      plan.refiner = ml::RefinerChoice::kFlow;
    } else if (cli.refiner == "flow+fm") {
      plan.refiner = ml::RefinerChoice::kFlowFm;
    } else if (cli.refiner != "fm") {
      usage_error("unknown refiner " + cli.refiner);
    }
    ml::EngineResult r = ml::partition_auto(h, plan);
    return {std::move(r.sides), ml::to_string(r.engine_used), r.levels};
  }
  if (cli.algorithm == "fm") {
    FmOptions options;
    options.seed = cli.seed;
    return {fiduccia_mattheyses(h, options).sides, cli.algorithm};
  }
  if (cli.algorithm == "kl") {
    KlOptions options;
    options.seed = cli.seed;
    return {kernighan_lin(h, options).sides, cli.algorithm};
  }
  if (cli.algorithm == "sa") {
    SaOptions options;
    options.seed = cli.seed;
    return {simulated_annealing(h, options).sides, cli.algorithm};
  }
  if (cli.algorithm == "random") {
    return {random_bisection(h, cli.seed).sides, cli.algorithm};
  }
  if (cli.algorithm == "flow") {
    FlowOptions options;
    options.seed = cli.seed;
    return {flow_bipartition(h, options).sides, cli.algorithm};
  }
  if (cli.algorithm == "multilevel") {
    MultilevelOptions options;
    options.seed = cli.seed;
    return {multilevel_bipartition(h, options).sides, cli.algorithm};
  }
  if (cli.algorithm == "spectral") {
    SpectralOptions options;
    options.seed = cli.seed;
    return {spectral_bipartition(h, options).sides, cli.algorithm};
  }
  usage_error("unknown algorithm " + cli.algorithm);
}

/// Writes \p text to \p path; returns false (with a message) on failure.
bool write_text_file(const std::string& path, const std::string& text,
                     const char* what) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  out << text;
  std::printf("%s written to %s\n", what, path.c_str());
  return true;
}

/// Emits the phase tree / JSON / Chrome trace requested on the command
/// line. Returns false if a requested file could not be written.
bool emit_observability(const CliOptions& cli) {
  if (!cli.trace && cli.json_path.empty() && cli.chrome_trace_path.empty()) {
    return true;
  }
  const obs::TraceReport report = obs::snapshot();
  if (cli.trace) {
    if (report.tracing_compiled) {
      std::printf("\n%s", obs::to_tree_string(report).c_str());
    } else {
      std::printf("\n(tracing compiled out; rebuild with "
                  "-DFHP_ENABLE_TRACING=ON for the phase tree)\n");
    }
  }
  bool ok = true;
  if (!cli.json_path.empty()) {
    ok &= write_text_file(cli.json_path, obs::to_json(report),
                          "trace report");
  }
  if (!cli.chrome_trace_path.empty()) {
    ok &= write_text_file(cli.chrome_trace_path, obs::to_chrome_trace(report),
                          "chrome trace");
  }
  return ok;
}

/// Common prefix of the --metrics-out document: the invocation that
/// produced the run, so a metrics file is self-describing. The returned
/// writer holds an open root object for the caller to extend and close.
json::Writer metrics_prelude(const CliOptions& cli, double seconds) {
  json::Writer w;
  w.begin_object();
  w.member("tool", "netlist_tool");
  w.member("input", cli.input);
  w.member("format", cli.format);
  w.member("algorithm", cli.algorithm);
  w.member("kway", cli.kway > 2 ? cli.kway : 2);
  w.member("starts", cli.starts);
  w.member("threshold", cli.threshold);
  w.member("seed", cli.seed);
  w.member("refined", cli.refine);
  w.member("runtime_seconds", seconds);
  w.member("peak_rss_bytes", peak_rss_bytes());
  return w;
}

/// Writes the --metrics-out document for the bipartition path. \p engine
/// is what actually partitioned ("flat"/"multilevel" for alg1, the
/// baseline name otherwise); \p ml_levels the hierarchy depth (0 off the
/// multilevel path).
bool write_metrics_file(const CliOptions& cli, const PartitionMetrics& m,
                        double seconds, const std::string& engine,
                        int ml_levels) {
  if (cli.metrics_path.empty()) return true;
  json::Writer w = metrics_prelude(cli, seconds);
  w.member("engine", engine);
  w.member("ml_levels", ml_levels);
  w.key("metrics").begin_object();
  w.member("cut_edges", m.cut_edges);
  w.member("cut_weight", m.cut_weight);
  w.member("left_count", m.left_count);
  w.member("right_count", m.right_count);
  w.member("left_weight", m.left_weight);
  w.member("right_weight", m.right_weight);
  w.member("cardinality_imbalance", m.cardinality_imbalance);
  w.member("weight_imbalance", m.weight_imbalance);
  w.member("quotient_cut", m.quotient_cut);
  w.member("ratio_cut", m.ratio_cut);
  w.member("proper", m.proper);
  w.end_object();
  w.member_raw("trace", obs::to_json(obs::snapshot()));
  w.end_object();
  return write_text_file(cli.metrics_path, std::move(w).take() + "\n",
                         "metrics");
}

/// Writes the --metrics-out document for the recursive k-way path.
bool write_metrics_file(const CliOptions& cli, const KWayResult& r,
                        double seconds) {
  if (cli.metrics_path.empty()) return true;
  json::Writer w = metrics_prelude(cli, seconds);
  w.key("metrics").begin_object();
  w.member("parts", cli.kway);
  w.member("spanning_nets", r.cut_edges);
  w.member("min_part_weight", static_cast<long long>(r.min_part_weight));
  w.member("max_part_weight", static_cast<long long>(r.max_part_weight));
  w.end_object();
  w.member_raw("trace", obs::to_json(obs::snapshot()));
  w.end_object();
  return write_text_file(cli.metrics_path, std::move(w).take() + "\n",
                         "metrics");
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = parse(argc, argv);
  try {
    Hypergraph h;
    if (cli.format == "hmetis") {
      h = read_hmetis_file(cli.input);
    } else if (cli.format == "netlist") {
      h = read_netlist_file(cli.input).hypergraph;
    } else if (cli.format == "bookshelf") {
      // Input names the .nodes file; the .nets file sits beside it.
      std::string nets_path = cli.input;
      const std::size_t ext = nets_path.rfind(".nodes");
      if (ext != std::string::npos) {
        nets_path.replace(ext, 6, ".nets");
      } else {
        nets_path += ".nets";
      }
      h = read_bookshelf_files(cli.input, nets_path).netlist.hypergraph;
    } else {
      usage_error("unknown format " + cli.format);
    }
    std::printf("%s", to_string(compute_stats(h)).c_str());

    if (cli.kway > 2) {
      // Recursive k-way mode (Algorithm I engine).
      Algorithm1Options a1;
      a1.num_starts = cli.starts;
      a1.large_edge_threshold = cli.threshold;
      a1.seed = cli.seed;
      a1.threads = cli.threads;
      a1.reorder = cli.reorder;
      RecursiveOptions recursive;
      recursive.algorithm1 = a1;
      recursive.rebalance = true;
      Timer timer;
      const KWayResult r = recursive_partition(h, cli.kway, recursive);
      const double kway_seconds = timer.seconds();
      std::printf("k-way partition: %u parts, %u spanning nets, part "
                  "weights %lld..%lld\n",
                  cli.kway, r.cut_edges,
                  static_cast<long long>(r.min_part_weight),
                  static_cast<long long>(r.max_part_weight));
      std::printf("runtime: %.3f s\n", kway_seconds);
      if (!cli.output.empty()) {
        std::ofstream out(cli.output);
        if (!out) {
          std::fprintf(stderr, "error: cannot write %s\n",
                       cli.output.c_str());
          return 1;
        }
        for (std::uint32_t part : r.part) out << part << '\n';
        std::printf("part ids written to %s\n", cli.output.c_str());
      }
      bool ok = write_metrics_file(cli, r, kway_seconds);
      ok &= emit_observability(cli);
      return ok ? 0 : 1;
    }

    Timer timer;
    RunResult result = run(cli, h);
    std::vector<std::uint8_t> sides = std::move(result.sides);
    if (cli.refine) {
      FmOptions fm;
      fm.seed = cli.seed;
      fm.initial = sides;
      sides = fiduccia_mattheyses(h, fm).sides;
    }
    const double seconds = timer.seconds();

    const Bipartition partition(h, sides);
    const PartitionMetrics metrics = compute_metrics(partition);
    if (cli.verbose) {
      std::printf("%s", to_string(analyze(partition)).c_str());
    } else {
      std::printf("partition: %s\n", to_string(metrics).c_str());
    }
    if (result.ml_levels > 0) {
      std::printf("engine: %s (%d level%s)\n", result.engine.c_str(),
                  result.ml_levels, result.ml_levels == 1 ? "" : "s");
    } else {
      std::printf("engine: %s\n", result.engine.c_str());
    }
    std::printf("runtime: %.3f s\n", seconds);

    if (!cli.output.empty()) {
      std::ofstream out(cli.output);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", cli.output.c_str());
        return 1;
      }
      write_partition(out, sides);
      std::printf("partition written to %s\n", cli.output.c_str());
    }
    if (!write_metrics_file(cli, metrics, seconds, result.engine,
                            result.ml_levels)) {
      return 1;
    }
    if (!emit_observability(cli)) return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

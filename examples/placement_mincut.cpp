/// Min-cut placement demo — the application that motivated the paper
/// (Breuer's min-cut placement, §1): recursively bisect a netlist into a
/// grid of placement regions with Algorithm I, then report wirelength-
/// style statistics and draw the region map.
///
/// Usage: placement_mincut [modules] [grid] [seed]   (grid must be 2/4/8)
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/recursive.hpp"
#include "gen/circuit.hpp"
#include "util/timer.hpp"

namespace {

using namespace fhp;

/// Half-perimeter-like span: number of distinct grid columns + rows a
/// net touches (1x1 net = span 2 = fully local).
double average_span(const Hypergraph& h, const std::vector<std::uint32_t>& part,
                    std::uint32_t grid) {
  double total = 0;
  EdgeId counted = 0;
  std::vector<std::uint8_t> col_used(grid);
  std::vector<std::uint8_t> row_used(grid);
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    if (h.edge_size(e) < 2) continue;
    std::fill(col_used.begin(), col_used.end(), 0);
    std::fill(row_used.begin(), row_used.end(), 0);
    for (VertexId v : h.pins(e)) {
      col_used[part[v] % grid] = 1;
      row_used[part[v] / grid] = 1;
    }
    int span = 0;
    for (std::uint32_t i = 0; i < grid; ++i) span += col_used[i] + row_used[i];
    total += span;
    ++counted;
  }
  return counted ? total / static_cast<double>(counted) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fhp;

  const VertexId modules =
      argc > 1 ? static_cast<VertexId>(std::atoi(argv[1])) : 800;
  const std::uint32_t grid =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 4;
  const std::uint64_t seed =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 3;
  if (grid != 2 && grid != 4 && grid != 8) {
    std::fprintf(stderr, "grid must be 2, 4 or 8\n");
    return 2;
  }
  const std::uint32_t parts = grid * grid;

  const Hypergraph h = generate_circuit(
      table2_params(modules, static_cast<EdgeId>(modules * 7 / 4),
                    Technology::kStandardCell),
      seed);
  std::printf("placing %u modules / %u nets onto a %ux%u grid (%u regions)\n",
              h.num_vertices(), h.num_edges(), grid, grid, parts);

  RecursiveOptions options;
  options.algorithm1.seed = seed;
  options.rebalance = true;  // placement wants even region occupancy
  options.balance_tolerance = 0.08;
  Timer timer;
  const KWayResult result = recursive_partition(h, parts, options);
  std::printf("recursive min-cut placement finished in %.0f ms\n\n",
              timer.millis());

  std::printf("region occupancy (modules):\n");
  std::vector<VertexId> counts(parts, 0);
  for (std::uint32_t part : result.part) ++counts[part];
  for (std::uint32_t r = 0; r < grid; ++r) {
    std::printf("  ");
    for (std::uint32_t c = 0; c < grid; ++c) {
      std::printf("%5u", counts[r * grid + c]);
    }
    std::printf("\n");
  }

  std::printf("\nnets spanning multiple regions: %u of %u (%.1f%%)\n",
              result.cut_edges, h.num_edges(),
              100.0 * static_cast<double>(result.cut_edges) /
                  static_cast<double>(h.num_edges()));
  std::printf("average net span (cols+rows touched): %.2f (min 2.00)\n",
              average_span(h, result.part, grid));
  std::printf("region weight min/max: %lld / %lld\n",
              static_cast<long long>(result.min_part_weight),
              static_cast<long long>(result.max_part_weight));
  std::printf(
      "\nEach level of the recursion is one Algorithm I bipartition —"
      "\nthe min-cut placement loop Breuer proposed, with the paper's"
      "\nO(n^2) heuristic replacing Kernighan-Lin at every node.\n");
  return 0;
}

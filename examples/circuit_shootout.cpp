/// Circuit shoot-out: generate one netlist per technology preset and race
/// every partitioner in the library on it — Algorithm I (with and without
/// FM refinement), Fiduccia–Mattheyses, Kernighan–Lin, simulated
/// annealing, and the random-bisection yardstick.
///
/// Usage: circuit_shootout [scale] [seed]
#include <cstdio>
#include <cstdlib>

#include "baselines/flow.hpp"
#include "baselines/fm.hpp"
#include "baselines/multilevel.hpp"
#include "baselines/kl.hpp"
#include "baselines/random_cut.hpp"
#include "baselines/sa.hpp"
#include "baselines/spectral.hpp"
#include "core/algorithm1.hpp"
#include "gen/circuit.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace fhp;

  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 11;

  for (Technology tech : {Technology::kPcb, Technology::kStandardCell,
                          Technology::kGateArray, Technology::kHybrid}) {
    const Hypergraph h = generate_circuit(params_for(tech, scale), seed);
    std::printf("\n%s: %u modules, %u nets\n", technology_name(tech).c_str(),
                h.num_vertices(), h.num_edges());

    AsciiTable table({"algorithm", "cut", "quotient", "|w_L - w_R|", "ms"});
    auto add = [&](const char* name, EdgeId cut, double quotient,
                   Weight imbalance, double ms) {
      table.add_row({name, std::to_string(cut),
                     AsciiTable::num(quotient, 4),
                     std::to_string(static_cast<long long>(imbalance)),
                     AsciiTable::num(ms, 1)});
    };

    {
      Algorithm1Options options;
      options.seed = seed;
      Timer timer;
      const Algorithm1Result r = algorithm1(h, options);
      const double ms = timer.millis();
      add("Algorithm I (50 starts)", r.metrics.cut_edges,
          r.metrics.quotient_cut, r.metrics.weight_imbalance, ms);

      Timer refine_timer;
      FmOptions fm;
      fm.seed = seed;
      fm.initial = r.sides;
      const BaselineResult refined = fiduccia_mattheyses(h, fm);
      add("Algorithm I + FM refine", refined.metrics.cut_edges,
          refined.metrics.quotient_cut, refined.metrics.weight_imbalance,
          ms + refine_timer.millis());
    }
    {
      FmOptions options;
      options.seed = seed;
      Timer timer;
      const BaselineResult r = fiduccia_mattheyses(h, options);
      add("Fiduccia-Mattheyses", r.metrics.cut_edges, r.metrics.quotient_cut,
          r.metrics.weight_imbalance, timer.millis());
    }
    {
      KlOptions options;
      options.seed = seed;
      Timer timer;
      const BaselineResult r = kernighan_lin(h, options);
      add("Kernighan-Lin", r.metrics.cut_edges, r.metrics.quotient_cut,
          r.metrics.weight_imbalance, timer.millis());
    }
    {
      SaOptions options;
      options.seed = seed;
      Timer timer;
      const BaselineResult r = simulated_annealing(h, options);
      add("Simulated annealing", r.metrics.cut_edges, r.metrics.quotient_cut,
          r.metrics.weight_imbalance, timer.millis());
    }
    {
      FlowOptions options;
      options.seed = seed;
      Timer timer;
      const BaselineResult r = flow_bipartition(h, options);
      add("Network flow (8 pairs)", r.metrics.cut_edges,
          r.metrics.quotient_cut, r.metrics.weight_imbalance, timer.millis());
    }
    {
      MultilevelOptions options;
      options.seed = seed;
      Timer timer;
      const BaselineResult r = multilevel_bipartition(h, options);
      add("Multilevel V-cycle", r.metrics.cut_edges, r.metrics.quotient_cut,
          r.metrics.weight_imbalance, timer.millis());
    }
    {
      SpectralOptions options;
      options.seed = seed;
      Timer timer;
      const BaselineResult r = spectral_bipartition(h, options);
      add("Spectral sweep", r.metrics.cut_edges, r.metrics.quotient_cut,
          r.metrics.weight_imbalance, timer.millis());
    }
    {
      Timer timer;
      const BaselineResult r = best_random_bisection(h, 50, seed);
      add("Random (best of 50)", r.metrics.cut_edges, r.metrics.quotient_cut,
          r.metrics.weight_imbalance, timer.millis());
    }
    std::printf("%s", table.render().c_str());
  }
  return 0;
}

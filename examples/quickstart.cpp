/// Quickstart: partition the paper's §2 worked example end-to-end and
/// print every intermediate object — the intersection graph, the BFS cut,
/// the boundary set, the Complete-Cut winners/losers, and the final
/// module partition with its crossing signals.
///
/// Build & run:  ./examples/quickstart
#include <cstdio>
#include <sstream>
#include <string>

#include "core/algorithm1.hpp"
#include "core/boundary.hpp"
#include "core/complete_cut.hpp"
#include "core/intersection.hpp"
#include "graph/bfs.hpp"
#include "hypergraph/io.hpp"
#include "partition/partition.hpp"

namespace {

// Reconstruction of the paper's Figure-4 netlist (12 modules, signals
// a..l); the partially illegible rows are filled to satisfy every
// property the walkthrough states (see DESIGN.md).
constexpr const char* kNetlist =
    "a: m1 m2 m11\n"
    "b: m2 m4 m11\n"
    "c: m1 m3 m4 m12\n"
    "d: m3 m5\n"
    "e: m5 m6 m7\n"
    "f: m6 m3 m7\n"
    "g: m3 m5 m9 m10\n"
    "h: m6 m7 m8\n"
    "i: m6 m7 m9 m10\n"
    "j: m4 m8 m12\n"
    "k: m1 m2\n"
    "l: m9 m10\n";

}  // namespace

int main() {
  using namespace fhp;

  std::istringstream in(kNetlist);
  const NamedNetlist netlist = read_netlist(in);
  const Hypergraph& h = netlist.hypergraph;
  std::printf("netlist: %u modules, %u signals\n\n", h.num_vertices(),
              h.num_edges());

  // --- Step 1: the dual intersection graph.
  const Graph g = intersection_graph(h);
  std::printf("intersection graph G: %u vertices (one per signal), %zu "
              "edges (shared modules)\n",
              g.num_vertices(), g.num_edges());
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    std::printf("  %s:", netlist.edge_names[e].c_str());
    for (VertexId w : g.neighbors(e)) {
      std::printf(" %s", netlist.edge_names[w].c_str());
    }
    std::printf("\n");
  }

  // --- Step 2: far-apart pair and bidirectional BFS cut.
  const VertexId k = netlist.edge("k");
  const DiameterPair pair = longest_path_from(g, k, 2);
  std::printf("\npseudo-diameter pair: (%s, %s), distance %u\n",
              netlist.edge_names[pair.s].c_str(),
              netlist.edge_names[pair.t].c_str(), pair.distance);
  const BidirectionalCut cut = bidirectional_bfs_cut(g, pair.s, pair.t);

  // --- Step 3: boundary structure.
  const BoundaryStructure boundary = extract_boundary(g, cut.side);
  std::printf("boundary set B (signals adjacent across the graph cut):");
  for (VertexId b : boundary.boundary_nodes) {
    std::printf(" %s", netlist.edge_names[b].c_str());
  }
  std::printf("\n");

  // --- Step 4: Complete-Cut.
  const CompletionResult completion =
      complete_cut_greedy(boundary.boundary_graph);
  std::printf("winners (uncut boundary signals):");
  for (VertexId idx = 0; idx < boundary.size(); ++idx) {
    if (completion.winner[idx]) {
      std::printf(" %s",
                  netlist.edge_names[boundary.boundary_nodes[idx]].c_str());
    }
  }
  std::printf("\nlosers (signals that will cross):");
  for (VertexId idx = 0; idx < boundary.size(); ++idx) {
    if (!completion.winner[idx]) {
      std::printf(" %s",
                  netlist.edge_names[boundary.boundary_nodes[idx]].c_str());
    }
  }
  std::printf("\n");

  // --- Step 5: the full driver (multi-start) for the final answer.
  Algorithm1Options options;
  options.large_edge_threshold = 0;
  const Algorithm1Result result = algorithm1(h, options);
  std::printf("\nfinal partition (cut = %u, sides %u/%u):\n",
              result.metrics.cut_edges, result.metrics.left_count,
              result.metrics.right_count);
  for (int side = 0; side < 2; ++side) {
    std::printf("  side %d:", side);
    for (VertexId v = 0; v < h.num_vertices(); ++v) {
      if (result.sides[v] == side) {
        std::printf(" %s", netlist.vertex_names[v].c_str());
      }
    }
    std::printf("\n");
  }
  const Bipartition partition(h, result.sides);
  std::printf("crossing signals:");
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    if (partition.is_cut(e)) {
      std::printf(" %s", netlist.edge_names[e].c_str());
    }
  }
  std::printf("\n\nThe paper's walkthrough ends the same way: only signals "
              "c and h cross, cutsize 2.\n");
  return 0;
}

/// \file bench_multilevel.cpp
/// Proof harness of the multilevel engine (src/multilevel/): at scale, on
/// the paper's difficult planted family, the V-cycle must be *both* at
/// least as good and faster than flat Algorithm I. Wired into CI as a
/// gate — it ABORTS (nonzero exit) when
///   - the coarsener's clustering is not bit-identical across thread
///     counts {1, 2, 8},
///   - the engine's partition is not bit-identical across thread counts,
///   - the multilevel median cut (across seeds) exceeds the flat
///     Algorithm I median cut on any gated instance, or
///   - the multilevel min-of-k wall time is not strictly below the flat
///     min-of-k wall time on any gated instance.
/// FM and the mini-multilevel baseline run as informational comparison
/// legs (recorded, never gated — FM latency is noise-prone at this size).
/// Timing series land in BENCH_multilevel.json for the perf ledger and
/// the benchdiff sentinel (bench/baselines/BENCH_multilevel.json).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/fm.hpp"
#include "baselines/multilevel.hpp"
#include "bench_common.hpp"
#include "multilevel/coarsen.hpp"
#include "multilevel/engine.hpp"
#include "obs/counters.hpp"

namespace {

using namespace fhp;
using namespace fhp::bench;

int failures = 0;

void check(bool ok, const std::string& what) {
  if (ok) {
    std::printf("  [ok]   %s\n", what.c_str());
  } else {
    std::printf("  [FAIL] %s\n", what.c_str());
    ++failures;
  }
}

/// The gated instances: difficult planted-bisection rows (2-pin nets,
/// ~3-regular — the family where iterative improvement sticks) scaled
/// above kDefaultMultilevelThreshold, so they exercise exactly the regime
/// partition_auto routes to the engine.
struct GatedInstance {
  Table2Instance spec;
  int seeds;      ///< independent instance+algorithm seeds
  int timed_reps; ///< min-of-k repetitions per seed
};

std::vector<GatedInstance> gated_instances() {
  return {
      {{"DiffXL1", 2500, 3800, Technology::kStandardCell, true, 6}, 3, 2},
      {{"DiffXL2", 4000, 6000, Technology::kStandardCell, true, 8}, 3, 2},
  };
}

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

/// Coarsener + engine bit-identity across thread counts — the structural
/// promise (parallel rating is a pure map) checked end to end at bench
/// scale, where chunk boundaries actually differ per lane count.
void check_thread_identity(const Hypergraph& h, const std::string& name) {
  print_header("bit-identity across thread counts: " + name);

  const ml::ClusteringResult serial = ml::heavy_edge_clustering(h, {}, {});
  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    const ml::ClusteringResult parallel =
        ml::heavy_edge_clustering(h, {}, {}, &pool);
    check(parallel.cluster == serial.cluster &&
              parallel.num_clusters == serial.num_clusters,
          name + ": clustering threads=" + std::to_string(threads) +
              " == serial");
  }

  ml::EngineOptions options;
  options.threads = 1;
  const ml::MultilevelResult reference = ml::multilevel_partition(h, options);
  for (int threads : {2, 8}) {
    options.threads = threads;
    const ml::MultilevelResult r = ml::multilevel_partition(h, options);
    check(r.sides == reference.sides &&
              r.metrics.cut_weight == reference.metrics.cut_weight,
          name + ": engine threads=" + std::to_string(threads) +
              " == threads=1");
  }
}

/// The headline race on one instance: flat Algorithm I vs the engine
/// (identical Algorithm1Options at the coarsest level), with FM and the
/// mini-multilevel baseline as informational legs.
void race(const GatedInstance& gated) {
  const Table2Instance& spec = gated.spec;
  print_header("race: " + spec.name + " (" + std::to_string(spec.modules) +
               " modules, planted cut " + std::to_string(spec.planted_cut) +
               ")");

  std::vector<double> flat_cuts, ml_cuts, flat_times, ml_times;
  for (int seed = 1; seed <= gated.seeds; ++seed) {
    const Hypergraph h = make_instance(spec, static_cast<std::uint64_t>(seed));

    Algorithm1Options flat_options;
    flat_options.seed = static_cast<std::uint64_t>(seed);
    const TimedRun flat = measure(
        ("flat_alg1/" + spec.name).c_str(),
        [&] { return algorithm1(h, flat_options); }, /*warmup=*/0,
        gated.timed_reps);

    // Default engine configuration (reduced coarse-start budget, relative
    // coarsening floor) vs the default flat path — exactly the two
    // configurations partition_auto routes between.
    ml::EngineOptions engine_options;
    engine_options.seed = static_cast<std::uint64_t>(seed);
    const TimedRun ml = measure(
        ("multilevel/" + spec.name).c_str(),
        [&] { return ml::multilevel_partition(h, engine_options); },
        /*warmup=*/0, gated.timed_reps);

    FmOptions fm_options;
    fm_options.seed = static_cast<std::uint64_t>(seed);
    const TimedRun fm = measure(
        ("fm/" + spec.name).c_str(),
        [&] { return fiduccia_mattheyses(h, fm_options); }, /*warmup=*/0, 1);

    MultilevelOptions mini_options;
    mini_options.seed = static_cast<std::uint64_t>(seed);
    const TimedRun mini = measure(
        ("mini_multilevel/" + spec.name).c_str(),
        [&] { return multilevel_bipartition(h, mini_options); },
        /*warmup=*/0, 1);

    std::printf(
        "  seed %d: flat cut %4u (%7.1f ms) | ml cut %4u (%7.1f ms) | "
        "fm cut %4u | mini cut %4u\n",
        seed, static_cast<unsigned>(flat.cut), flat.seconds * 1e3,
        static_cast<unsigned>(ml.cut), ml.seconds * 1e3,
        static_cast<unsigned>(fm.cut), static_cast<unsigned>(mini.cut));

    flat_cuts.push_back(static_cast<double>(flat.cut));
    ml_cuts.push_back(static_cast<double>(ml.cut));
    flat_times.push_back(flat.seconds);
    ml_times.push_back(ml.seconds);
  }

  const double flat_cut_median = median(flat_cuts);
  const double ml_cut_median = median(ml_cuts);
  const double flat_best = *std::min_element(flat_times.begin(),
                                             flat_times.end());
  const double ml_best = *std::min_element(ml_times.begin(), ml_times.end());
  std::printf("  median cut: flat %.0f vs ml %.0f;  best time: flat %.1f ms "
              "vs ml %.1f ms (%.1fx)\n",
              flat_cut_median, ml_cut_median, flat_best * 1e3, ml_best * 1e3,
              flat_best / ml_best);
  obs::Counters::instance().set_gauge(
      ("multilevel/" + spec.name + "/speedup").c_str(), flat_best / ml_best);

  check(ml_cut_median <= flat_cut_median,
        spec.name + ": multilevel median cut <= flat median cut");
  check(ml_best < flat_best,
        spec.name + ": multilevel min-of-k wall time < flat");
}

}  // namespace

int main() {
  BenchSession session("multilevel");

  const std::vector<GatedInstance> gated = gated_instances();

  // Determinism legs on the first (smaller) gated instance: the full
  // matrix at bench scale; the tests cover the golden instances.
  check_thread_identity(make_instance(gated[0].spec, 1), gated[0].spec.name);

  for (const GatedInstance& g : gated) race(g);

  if (failures > 0) {
    std::printf("\nbench_multilevel: %d check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("\nbench_multilevel: all checks passed\n");
  return 0;
}

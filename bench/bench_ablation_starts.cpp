/// Ablation A1 (paper §4 "Extensions"): examining more random longest
/// paths improves the selected cut — the paper's production configuration
/// examined 50. Sweep the start count on circuit and difficult instances.
#include <cstdio>

#include "bench_common.hpp"
#include "util/stats.hpp"

int main() {
  using namespace fhp;
  using namespace fhp::bench;
  fhp::bench::BenchSession session("ablation_starts");

  print_header("A1 — multi-start count vs cut quality");

  AsciiTable table({"starts", "circuit mean cut", "circuit best-seed cut",
                    "difficult mean cut"});

  const Hypergraph circuit = generate_circuit(
      table2_params(561, 800, Technology::kStandardCell), 5);
  PlantedParams planted_params;
  planted_params.num_vertices = 500;
  planted_params.num_edges = 700;
  planted_params.planted_cut = 6;
  planted_params.min_edge_size = 2;
  planted_params.max_edge_size = 2;
  planted_params.max_degree = 0;
  const Hypergraph difficult = planted_instance(planted_params, 5).hypergraph;

  for (int starts : {1, 2, 5, 10, 20, 50}) {
    RunningStats circuit_cut;
    RunningStats difficult_cut;
    EdgeId best = 0;
    bool have_best = false;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      const TimedRun c = run_algorithm1(circuit, seed, starts);
      circuit_cut.add(c.cut);
      if (!have_best || c.cut < best) {
        best = c.cut;
        have_best = true;
      }
      difficult_cut.add(run_algorithm1(difficult, seed, starts).cut);
    }
    table.add_row({std::to_string(starts),
                   AsciiTable::num(circuit_cut.mean(), 1),
                   std::to_string(best),
                   AsciiTable::num(difficult_cut.mean(), 1)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: quality improves monotonically in expectation with the"
      "\nstart budget and saturates near the paper's choice of 50; on"
      "\ndifficult instances even few starts suffice because almost every"
      "\nlongest path straddles the planted cut.\n");
  return 0;
}

/// \file bench_serve.cpp
/// Load generator and gate for the partition daemon (docs/serving.md).
/// Starts an in-process Server on a real unix socket and drives it
/// through the client library in three phases:
///
///   1. cold vs cached (serial): distinct std-cell instances requested
///      cold, then re-requested hot. GATE: cached p50 latency at least
///      10x below cold p50 — the result cache must make repeat requests
///      qualitatively cheaper than recomputation.
///   2. open-loop hot/cold mix: two pipelined client connections replay
///      100 requests, 75% over 4 hot instances / 25% over 16 cold ones.
///      Single-flight coalescing makes the cache totals exact: misses ==
///      20 unique keys, hits == 80. GATE: hit rate >= 50%; and an audit
///      replays every unique key through partition_auto directly — each
///      daemon response must be bit-identical (sides, cut) to the direct
///      call, with reported metrics re-verified from the sides.
///   3. deadline (serial): a 2471-module instance with a latency budget
///      and a pinned per-start cost, making the truncated start budget a
///      pure function of the request. GATE: response within 2x the
///      deadline, degraded flag set, never cached, and bit-identical to
///      a direct run at the truncated budget.
///
/// The run report (BENCH_serve.json) carries the latency series and the
/// cache/ counters; benchdiff gates cache/{hits,misses} exactly while
/// serve/ and pool/ operational counters stay advisory.
#include <algorithm>
#include <cstdio>
#include <sstream>
#include <thread>

#include "bench_common.hpp"
#include "hypergraph/io.hpp"
#include "multilevel/engine.hpp"
#include "serve/client.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"
#include "util/timer.hpp"
#include "validate/audit.hpp"

using namespace fhp;
using namespace fhp::bench;

namespace {

int g_failures = 0;

void expect(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++g_failures;
  }
}

/// A generated instance plus its wire form.
struct Instance {
  Hypergraph hypergraph;
  std::string text;
};

Instance make_std_cell(VertexId modules, EdgeId nets, std::uint64_t seed) {
  Instance inst;
  inst.hypergraph = generate_circuit(
      table2_params(modules, nets, Technology::kStandardCell), seed);
  std::ostringstream out;
  write_hmetis(out, inst.hypergraph);
  inst.text = std::move(out).str();
  return inst;
}

double median_of(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

/// Replays \p options through the engine directly and checks the daemon's
/// response is bit-identical (the cache/scheduler must never change an
/// answer) and that its reported metrics match the sides.
void audit_response(const Hypergraph& h, const serve::RequestOptions& options,
                    const serve::Response& response,
                    const serve::BudgetDecision& budget) {
  const ml::PartitionPlan plan = serve::make_plan(options, budget);
  const ml::EngineResult direct = ml::partition_auto(h, plan);
  expect(direct.sides == response.sides,
         "daemon sides differ from direct partition_auto");
  expect(direct.metrics.cut_weight == response.cut_weight &&
             direct.metrics.cut_edges == response.cut_edges,
         "daemon cut differs from direct partition_auto");
  const validate::AuditReport report =
      validate::audit_metrics(h, response.sides, direct.metrics);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.to_string().c_str());
    ++g_failures;
  }
}

}  // namespace

int main() {
  BenchSession session("serve");

  const std::string socket_path =
      std::filesystem::temp_directory_path() / "fhp_bench_serve.sock";
  serve::ServerOptions server_options;
  server_options.socket_path = socket_path;
  server_options.scheduler.threads = 2;
  // Every request of the open-loop phase may be outstanding at once; the
  // admission bound must not trigger here (rejection timing would be
  // nondeterministic — the rejection path is gated in tests/test_serve).
  server_options.scheduler.max_queue = 256;
  serve::Server server(server_options);
  server.start();

  // ---- Phase 1: cold vs cached -----------------------------------------
  print_header("phase 1: cold vs cached latency (serial)");
  std::vector<Instance> cold_set;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    cold_set.push_back(make_std_cell(561, 800, seed));
  }
  serve::Client client;
  client.connect(socket_path);
  std::vector<double> cold_seconds;
  std::vector<double> cached_seconds;
  for (const Instance& inst : cold_set) {
    serve::RequestOptions options;
    options.seed = 1;
    Timer cold_timer;
    const serve::Response cold = client.partition(inst.text, options);
    const double cold_s = cold_timer.seconds();
    expect(cold.ok() && !cold.cached, "cold request must miss the cache");
    BenchRecorder::instance().add("serve_cold", cold_s,
                                  static_cast<double>(cold.cut_edges));
    cold_seconds.push_back(cold_s);
    for (int rep = 0; rep < 3; ++rep) {
      Timer hot_timer;
      const serve::Response hot = client.partition(inst.text, options);
      const double hot_s = hot_timer.seconds();
      expect(hot.ok() && hot.cached, "repeat request must hit the cache");
      expect(hot.cut_weight == cold.cut_weight &&
                 hot.sides == cold.sides,
             "cached response must equal the cold response");
      BenchRecorder::instance().add("serve_cached", hot_s,
                                    static_cast<double>(hot.cut_edges));
      cached_seconds.push_back(hot_s);
    }
  }
  const double cold_p50 = median_of(cold_seconds);
  const double cached_p50 = median_of(cached_seconds);
  std::printf("  cold p50 %.3f ms, cached p50 %.3f ms (%.1fx)\n",
              cold_p50 * 1e3, cached_p50 * 1e3, cold_p50 / cached_p50);
  FHP_GAUGE_SET("serve/cold_p50_us", cold_p50 * 1e6);
  FHP_GAUGE_SET("serve/cached_p50_us", cached_p50 * 1e6);
  expect(cached_p50 * 10.0 <= cold_p50,
         "cached p50 must be >= 10x below cold p50");

  // ---- Phase 2: open-loop hot/cold mix ---------------------------------
  print_header("phase 2: open-loop mix, 2 pipelined clients, 100 requests");
  std::vector<Instance> hot_instances;
  for (std::uint64_t seed = 101; seed <= 104; ++seed) {
    hot_instances.push_back(make_std_cell(561, 800, seed));
  }
  std::vector<Instance> mix_cold;
  for (std::uint64_t seed = 201; seed <= 216; ++seed) {
    mix_cold.push_back(make_std_cell(561, 800, seed));
  }
  // Request schedule: every 4th request is a cold instance (cycled), the
  // rest cycle the hot set (offset by the round so all four hot instances
  // appear) -> 25 cold / 75 hot. Unique keys: 4 + 16 = 20.
  const auto instance_for = [&](int i) -> const Instance& {
    if (i % 4 == 3) return mix_cold[static_cast<std::size_t>(i / 4) %
                                    mix_cold.size()];
    return hot_instances[static_cast<std::size_t>(i / 4 + i % 4) %
                         hot_instances.size()];
  };
  constexpr int kMixRequests = 100;
  constexpr int kClients = 2;
  serve::RequestOptions mix_options;
  mix_options.seed = 7;

  std::vector<serve::Response> responses(kMixRequests);
  Timer mix_timer;
  {
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        // Each client owns requests i with i % kClients == c; one sender
        // and one receiver thread share its connection full-duplex.
        serve::Client mix_client;
        mix_client.connect(socket_path);
        std::vector<int> owned;
        for (int i = c; i < kMixRequests; i += kClients) owned.push_back(i);
        std::thread sender([&] {
          for (const int i : owned) {
            serve::Request request;
            request.op = serve::Request::Op::kPartition;
            request.id = i;
            request.hypergraph = instance_for(i).text;
            request.options = mix_options;
            mix_client.send(request);
          }
        });
        for (std::size_t done = 0; done < owned.size(); ++done) {
          serve::Response response = mix_client.receive();
          // Responses come back in request order per connection.
          expect(response.id == owned[done],
                 "response ids must match request order");
          responses[static_cast<std::size_t>(response.id)] =
              std::move(response);
        }
        sender.join();
      });
    }
    for (std::thread& t : threads) t.join();
  }
  const double mix_seconds = mix_timer.seconds();
  FHP_GAUGE_SET("serve/mix_qps",
                static_cast<double>(kMixRequests) / mix_seconds);

  int hits = 0;
  for (int i = 0; i < kMixRequests; ++i) {
    const serve::Response& response = responses[static_cast<std::size_t>(i)];
    expect(response.ok(), "mix request must succeed");
    if (response.cached) ++hits;
    BenchRecorder::instance().add(
        "serve_mix", static_cast<double>(response.latency_us) * 1e-6,
        static_cast<double>(response.cut_edges));
  }
  std::printf("  %d/%d served from cache (%.0f%%), %.0f req/s\n", hits,
              kMixRequests, 100.0 * hits / kMixRequests,
              kMixRequests / mix_seconds);
  expect(hits * 2 >= kMixRequests, "hot-mix cache hit rate must be >= 50%");
  expect(hits == 80, "single-flight must make exactly 80 of 100 hits");

  // Audit every unique key: the daemon answer must be bit-identical to a
  // direct engine call (cache misses and hits alike — hits returned the
  // miss's stored result).
  const serve::BudgetDecision full_budget{mix_options.starts, false};
  for (int i = 0; i < kMixRequests; ++i) {
    if (responses[static_cast<std::size_t>(i)].cached) continue;
    audit_response(instance_for(i).hypergraph, mix_options,
                   responses[static_cast<std::size_t>(i)], full_budget);
  }
  std::printf("  audit: every unique key bit-identical to partition_auto\n");

  // ---- Phase 3: deadline-capped request (serial) -----------------------
  print_header("phase 3: deadline-capped large instance (serial)");
  const Instance large = make_std_cell(2471, 3496, 9);
  serve::RequestOptions deadline_options;
  deadline_options.seed = 3;
  deadline_options.starts = 50;
  deadline_options.engine = ml::EngineChoice::kFlat;
  deadline_options.deadline_us = 50'000;
  // Pinned per-start cost makes the truncation deterministic: the budget
  // becomes (50000/2)/5000 = 5 starts, degraded.
  deadline_options.assume_start_cost_us = 5'000;

  Timer deadline_timer;
  const serve::Response capped =
      client.partition(large.text, deadline_options);
  const double deadline_s = deadline_timer.seconds();
  BenchRecorder::instance().add("serve_deadline", deadline_s,
                                static_cast<double>(capped.cut_edges));
  expect(capped.ok(), "deadline request must succeed");
  expect(capped.degraded, "truncated request must carry the degraded flag");
  expect(!capped.cached, "deadline requests must bypass the cache");
  const serve::BudgetDecision capped_budget = serve::map_deadline(
      deadline_options.starts, deadline_options.deadline_us,
      deadline_options.assume_start_cost_us);
  expect(capped.starts_used == capped_budget.effective_starts,
         "daemon must report the mapped start budget");
  expect(deadline_s * 1e6 <=
             2.0 * static_cast<double>(deadline_options.deadline_us),
         "deadline response must land within 2x the deadline");
  std::printf("  deadline 50 ms -> %d starts, answered in %.1f ms\n",
              capped.starts_used, deadline_s * 1e3);
  audit_response(large.hypergraph, deadline_options, capped, capped_budget);
  std::printf("  audit: degraded response bit-identical at the truncated "
              "budget\n");

  // Re-requesting without a deadline must recompute at full quality (the
  // degraded answer was never cached).
  serve::RequestOptions full_options = deadline_options;
  full_options.deadline_us = 0;
  full_options.assume_start_cost_us = 0;
  const serve::Response full = client.partition(large.text, full_options);
  expect(full.ok() && !full.cached && !full.degraded,
         "full-quality rerun must recompute");
  expect(full.cut_weight <= capped.cut_weight,
         "full budget must not be worse than the degraded cut");

  client.close();
  server.shutdown();
  return g_failures == 0 ? 0 : 1;
}

/// \file bench_parallel_scaling.cpp
/// Thread-scaling sweep of the parallel Algorithm I substrate
/// (docs/parallelism.md): runs the same fixed-seed instance at 1/2/4/8
/// execution lanes, verifies the chosen partition is bit-identical at every
/// lane count (the substrate's central guarantee), and records the speedup
/// curve into BENCH_parallel_scaling.json.
///
/// Interpreting the curve requires knowing the host: on a single-core
/// container every setting time-slices one CPU and the "speedup" hovers
/// around 1.0 (the gauges still record it); the scaling target (>= 2.5x at
/// 4 lanes) is only observable on a host with >= 4 hardware threads.
#include <string>

#include "bench_common.hpp"

using namespace fhp;
using namespace fhp::bench;

int main() {
  BenchSession session("parallel_scaling");
  print_header("Algorithm I thread scaling (fixed seed, identical answers)");

  PlantedParams params;
  params.num_vertices = 1500;
  params.num_edges = 2600;
  params.planted_cut = 6;
  const Hypergraph h = planted_instance(params, 42).hypergraph;

  constexpr int kThreadCounts[] = {1, 2, 4, 8};
  constexpr int kReps = 3;
  double mean_seconds[4] = {0, 0, 0, 0};
  EdgeId cuts[4] = {0, 0, 0, 0};
  std::vector<std::uint8_t> reference_sides;

  for (int ti = 0; ti < 4; ++ti) {
    const int threads = kThreadCounts[ti];
    const std::string label = "alg1_threads=" + std::to_string(threads);
    TimedRun last;
    for (int rep = 0; rep < kReps; ++rep) {
      last = measure(label.c_str(), [&] {
        Algorithm1Options options;
        options.seed = 1;
        options.num_starts = 50;
        options.threads = threads;
        return algorithm1(h, options);
      });
      mean_seconds[ti] += last.seconds / kReps;
    }
    cuts[ti] = last.cut;
    std::printf("  %2d lane%s  %8.3f ms/run   cut %u\n", threads,
                threads == 1 ? " " : "s", mean_seconds[ti] * 1e3, last.cut);
    if (ti == 0) {
      reference_sides = last.sides;
    } else if (last.sides != reference_sides) {
      std::fprintf(stderr,
                   "FAIL: partition at %d lanes differs from serial\n",
                   threads);
      return 1;
    }
  }
  std::printf("  partitions bit-identical across every lane count\n");

  const double s2 = mean_seconds[0] / mean_seconds[1];
  const double s4 = mean_seconds[0] / mean_seconds[2];
  const double s8 = mean_seconds[0] / mean_seconds[3];
  std::printf("  speedup: %.2fx @2, %.2fx @4, %.2fx @8\n", s2, s4, s8);
  FHP_GAUGE_SET("bench/speedup_2t", s2);
  FHP_GAUGE_SET("bench/speedup_4t", s4);
  FHP_GAUGE_SET("bench/speedup_8t", s8);

  // Speedup gates scale to the host: on a box that cannot physically show
  // parallel speedup (single-core CI containers time-slice one CPU and
  // every ratio hovers around 1.0) the thresholds become advisory prints
  // instead of failures — the gauges above still record the curve.
  const unsigned hw = std::thread::hardware_concurrency();
  FHP_GAUGE_SET("bench/hardware_threads", static_cast<double>(hw));
  if (hw >= 4) {
    if (s4 < 1.8) {
      std::fprintf(stderr,
                   "FAIL: %.2fx speedup at 4 lanes on a %u-thread host "
                   "(expected >= 1.8x)\n",
                   s4, hw);
      return 1;
    }
  } else if (hw >= 2) {
    if (s2 < 1.2) {
      std::fprintf(stderr,
                   "FAIL: %.2fx speedup at 2 lanes on a %u-thread host "
                   "(expected >= 1.2x)\n",
                   s2, hw);
      return 1;
    }
  } else {
    std::printf(
        "  advisory: single hardware thread; speedup thresholds skipped\n");
  }

  // Orthogonal use of the substrate: independent *trials* (distinct seeds,
  // each run serial) spread across a pool via measure_trials — the
  // repetition-level parallelism mode of the harness.
  print_header("independent trials across a 4-lane pool");
  ThreadPool pool(4);
  const std::vector<TimedRun> trials =
      measure_trials("alg1_trial_seeds", 8, &pool, [&](std::size_t i) {
        Algorithm1Options options;
        options.seed = 100 + i;
        options.num_starts = 10;
        return algorithm1(h, options);
      });
  for (std::size_t i = 0; i < trials.size(); ++i) {
    std::printf("  seed %llu: cut %u\n",
                static_cast<unsigned long long>(100 + i), trials[i].cut);
  }
  return 0;
}

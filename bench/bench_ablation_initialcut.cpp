/// Ablation (paper §4 "alternative greedy methods"): how the initial cut
/// of G is generated. The paper's bidirectional BFS meet-in-the-middle is
/// compared against the exhaustive level-prefix sweep from one endpoint
/// (better cut positions, more work per start) at equal start budgets.
#include <cstdio>

#include "bench_common.hpp"
#include "util/stats.hpp"

int main() {
  using namespace fhp;
  using namespace fhp::bench;
  fhp::bench::BenchSession session("ablation_initialcut");

  print_header("A4 — initial-cut strategy: bidirectional BFS vs level sweep");

  AsciiTable table({"instance", "starts", "bidirectional cut", "ms",
                    "level sweep cut", "ms"});

  const Table2Instance picks[] = {
      {"Bd3", 242, 502, Technology::kPcb, false, 0},
      {"IC1", 561, 800, Technology::kStandardCell, false, 0},
      {"Diff1", 500, 700, Technology::kStandardCell, true, 4},
  };

  for (const Table2Instance& inst : picks) {
    const Hypergraph h = make_instance(inst, 42);
    for (int starts : {1, 10}) {
      RunningStats bidi_cut;
      RunningStats bidi_ms;
      RunningStats sweep_cut;
      RunningStats sweep_ms;
      for (std::uint64_t seed = 0; seed < 5; ++seed) {
        Algorithm1Options options;
        options.seed = seed;
        options.num_starts = starts;
        {
          Timer timer;
          bidi_cut.add(algorithm1(h, options).metrics.cut_edges);
          bidi_ms.add(timer.millis());
        }
        options.initial_cut = InitialCutStrategy::kLevelSweep;
        {
          Timer timer;
          sweep_cut.add(algorithm1(h, options).metrics.cut_edges);
          sweep_ms.add(timer.millis());
        }
      }
      table.add_row({inst.name, std::to_string(starts),
                     AsciiTable::num(bidi_cut.mean(), 1),
                     AsciiTable::num(bidi_ms.mean(), 1),
                     AsciiTable::num(sweep_cut.mean(), 1),
                     AsciiTable::num(sweep_ms.mean(), 1)});
    }
    table.add_separator();
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: with a balance guard the sweep explores more cut"
      "\npositions per start and wins on hierarchical circuits once a few"
      "\nstarts are pooled (at ~3x the cost); the paper's bidirectional"
      "\nrule remains better on planted difficult instances, where the"
      "\nmeet-in-the-middle frontier lands on the hidden bisection.\n");
  return 0;
}

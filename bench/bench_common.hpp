/// \file bench_common.hpp
/// Shared plumbing for the experiment harness: canonical instance
/// definitions matching the paper's test suite, baseline invocation
/// wrappers, and report formatting.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/fm.hpp"
#include "baselines/kl.hpp"
#include "baselines/random_cut.hpp"
#include "baselines/sa.hpp"
#include "core/algorithm1.hpp"
#include "gen/circuit.hpp"
#include "gen/planted.hpp"
#include "hypergraph/hypergraph.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace fhp::bench {

/// One instance of the paper's Table 2 test suite. Bd2's size is not
/// legible in the available text; a value between Bd1 and Bd3 is used and
/// documented in EXPERIMENTS.md.
struct Table2Instance {
  std::string name;
  VertexId modules;
  EdgeId signals;
  Technology technology;
  bool difficult;      ///< planted "Diff" instance
  EdgeId planted_cut;  ///< only for difficult instances
};

/// The paper's Table 2 rows.
inline std::vector<Table2Instance> table2_instances() {
  return {
      {"Bd1", 103, 211, Technology::kPcb, false, 0},
      {"Bd2", 170, 350, Technology::kPcb, false, 0},
      {"Bd3", 242, 502, Technology::kPcb, false, 0},
      {"IC1", 561, 800, Technology::kStandardCell, false, 0},
      {"IC2", 2471, 3496, Technology::kStandardCell, false, 0},
      {"Diff1", 500, 700, Technology::kStandardCell, true, 4},
      {"Diff2", 500, 700, Technology::kStandardCell, true, 8},
      {"Diff3", 500, 700, Technology::kStandardCell, true, 2},
  };
}

/// Materializes a Table 2 instance deterministically.
inline Hypergraph make_instance(const Table2Instance& inst,
                                std::uint64_t seed) {
  if (inst.difficult) {
    // Sparse planted-bisection graphs (2-pin nets, ~3-regular) — the Bui
    // et al. family the paper invokes: c = o(n^{1-1/d}) with d = 3. This
    // is the regime where iterative-improvement heuristics demonstrably
    // stick in poor local minima.
    PlantedParams params;
    params.num_vertices = inst.modules;
    params.num_edges = inst.signals;
    params.planted_cut = inst.planted_cut;
    params.min_edge_size = 2;
    params.max_edge_size = 2;
    params.max_degree = 0;
    return planted_instance(params, seed).hypergraph;
  }
  return generate_circuit(
      table2_params(inst.modules, inst.signals, inst.technology), seed);
}

/// Timed run of Algorithm I with the paper's configuration.
struct TimedRun {
  EdgeId cut = 0;
  double seconds = 0.0;
  PartitionMetrics metrics;
  std::vector<std::uint8_t> sides;
};

inline TimedRun run_algorithm1(const Hypergraph& h, std::uint64_t seed,
                               int starts = 50) {
  Algorithm1Options options;
  options.seed = seed;
  options.num_starts = starts;
  Timer timer;
  const Algorithm1Result r = algorithm1(h, options);
  TimedRun out;
  out.seconds = timer.seconds();
  out.cut = r.metrics.cut_edges;
  out.metrics = r.metrics;
  out.sides = r.sides;
  return out;
}

inline TimedRun run_sa(const Hypergraph& h, std::uint64_t seed) {
  SaOptions options;
  options.seed = seed;
  Timer timer;
  const BaselineResult r = simulated_annealing(h, options);
  TimedRun out;
  out.seconds = timer.seconds();
  out.cut = r.metrics.cut_edges;
  out.metrics = r.metrics;
  out.sides = r.sides;
  return out;
}

inline TimedRun run_kl(const Hypergraph& h, std::uint64_t seed) {
  KlOptions options;
  options.seed = seed;
  Timer timer;
  const BaselineResult r = kernighan_lin(h, options);
  TimedRun out;
  out.seconds = timer.seconds();
  out.cut = r.metrics.cut_edges;
  out.metrics = r.metrics;
  out.sides = r.sides;
  return out;
}

inline TimedRun run_fm(const Hypergraph& h, std::uint64_t seed) {
  FmOptions options;
  options.seed = seed;
  Timer timer;
  const BaselineResult r = fiduccia_mattheyses(h, options);
  TimedRun out;
  out.seconds = timer.seconds();
  out.cut = r.metrics.cut_edges;
  out.metrics = r.metrics;
  out.sides = r.sides;
  return out;
}

/// Prints a titled section header.
inline void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n\n", title.c_str());
}

}  // namespace fhp::bench

/// \file bench_common.hpp
/// Shared plumbing for the experiment harness: canonical instance
/// definitions matching the paper's test suite, baseline invocation
/// wrappers, report formatting, and the machine-readable run-report
/// recorder (BENCH_<name>.json artifacts; see docs/observability.md).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <system_error>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "baselines/fm.hpp"
#include "baselines/kl.hpp"
#include "baselines/random_cut.hpp"
#include "baselines/sa.hpp"
#include "core/algorithm1.hpp"
#include "gen/circuit.hpp"
#include "gen/planted.hpp"
#include "hypergraph/hypergraph.hpp"
#include "obs/report.hpp"
#include "util/json.hpp"
#include "util/memory.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace fhp::bench {

/// One instance of the paper's Table 2 test suite. Bd2's size is not
/// legible in the available text; a value between Bd1 and Bd3 is used and
/// documented in EXPERIMENTS.md.
struct Table2Instance {
  std::string name;
  VertexId modules;
  EdgeId signals;
  Technology technology;
  bool difficult;      ///< planted "Diff" instance
  EdgeId planted_cut;  ///< only for difficult instances
};

/// The paper's Table 2 rows.
inline std::vector<Table2Instance> table2_instances() {
  return {
      {"Bd1", 103, 211, Technology::kPcb, false, 0},
      {"Bd2", 170, 350, Technology::kPcb, false, 0},
      {"Bd3", 242, 502, Technology::kPcb, false, 0},
      {"IC1", 561, 800, Technology::kStandardCell, false, 0},
      {"IC2", 2471, 3496, Technology::kStandardCell, false, 0},
      {"Diff1", 500, 700, Technology::kStandardCell, true, 4},
      {"Diff2", 500, 700, Technology::kStandardCell, true, 8},
      {"Diff3", 500, 700, Technology::kStandardCell, true, 2},
  };
}

/// Materializes a Table 2 instance deterministically.
inline Hypergraph make_instance(const Table2Instance& inst,
                                std::uint64_t seed) {
  if (inst.difficult) {
    // Sparse planted-bisection graphs (2-pin nets, ~3-regular) — the Bui
    // et al. family the paper invokes: c = o(n^{1-1/d}) with d = 3. This
    // is the regime where iterative-improvement heuristics demonstrably
    // stick in poor local minima.
    PlantedParams params;
    params.num_vertices = inst.modules;
    params.num_edges = inst.signals;
    params.planted_cut = inst.planted_cut;
    params.min_edge_size = 2;
    params.max_edge_size = 2;
    params.max_degree = 0;
    return planted_instance(params, seed).hypergraph;
  }
  return generate_circuit(
      table2_params(inst.modules, inst.signals, inst.technology), seed);
}

/// Timed run of Algorithm I with the paper's configuration.
struct TimedRun {
  EdgeId cut = 0;
  double seconds = 0.0;
  PartitionMetrics metrics;
  std::vector<std::uint8_t> sides;
};

/// Per-label sample series collected by measure(); the raw material of the
/// BENCH_<name>.json artifact.
class BenchRecorder {
 public:
  struct Series {
    std::vector<double> seconds;
    std::vector<double> cuts;
  };

  static BenchRecorder& instance() {
    static BenchRecorder recorder;
    return recorder;
  }

  /// Thread-safe: trials running on pool workers may record concurrently
  /// (they take the recorder mutex only for the push, not the timed work).
  void add(const std::string& label, double seconds, double cut) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = series_.try_emplace(label);
    if (inserted) order_.push_back(label);
    it->second.seconds.push_back(seconds);
    it->second.cuts.push_back(cut);
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    series_.clear();
    order_.clear();
  }

  [[nodiscard]] bool empty() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return order_.empty();
  }

  /// Serializes every series as {"label": {"runs", "seconds": {stats},
  /// "cut": {stats}}, ...} in first-recorded order. Stats carry the
  /// distribution (p50/p90/p99), not just the range, so the ledger and
  /// benchdiff can reason about tails.
  [[nodiscard]] std::string to_json() const {
    std::lock_guard<std::mutex> lock(mutex_);
    json::Writer w;
    const auto stats_object = [&w](const std::vector<double>& xs) {
      w.begin_object();
      w.member("mean", mean(xs));
      w.member("median", quantile(xs, 0.5));
      w.member("min", quantile(xs, 0.0));
      w.member("max", quantile(xs, 1.0));
      w.member("p90", quantile(xs, 0.9));
      w.member("p99", quantile(xs, 0.99));
      w.end_object();
    };
    w.begin_object();
    for (const std::string& label : order_) {
      const Series& series = series_.at(label);
      w.key(label).begin_object();
      w.member("runs", series.seconds.size());
      w.key("seconds");
      stats_object(series.seconds);
      w.key("cut");
      stats_object(series.cuts);
      w.end_object();
    }
    w.end_object();
    return std::move(w).take();
  }

 private:
  BenchRecorder() = default;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Series> series_;
  std::vector<std::string> order_;  ///< stable first-recorded label order
};

/// Times one partitioner invocation and records the sample under \p label.
/// \p run must return an Algorithm1Result or BaselineResult (anything with
/// `metrics` and `sides`).
///
/// \p warmup un-timed invocations run first (cache/allocator/branch-
/// predictor warm-up — and for workspace-backed paths, the one-time buffer
/// growths); then \p timed_reps timed invocations run and the *minimum*
/// wall time is recorded as the sample. Min-of-k is the standard estimator
/// for deterministic kernels: every source of error (scheduler preemption,
/// frequency ramps, interrupts) only ever adds time, so the minimum is the
/// least-noisy observation. Defaults preserve the historical
/// single-shot-no-warmup behavior for existing call sites.
template <typename RunFn>
TimedRun measure(const char* label, RunFn&& run, int warmup = 0,
                 int timed_reps = 1) {
  for (int i = 0; i < warmup; ++i) static_cast<void>(run());
  TimedRun out;
  double best = 0.0;
  for (int rep = 0; rep < timed_reps; ++rep) {
    Timer timer;
    auto r = run();
    const double seconds = timer.seconds();
    if (rep == 0 || seconds < best) {
      best = seconds;
      out.cut = r.metrics.cut_edges;
      out.metrics = r.metrics;
      out.sides = std::move(r.sides);
    }
  }
  out.seconds = best;
  BenchRecorder::instance().add(label, out.seconds,
                                static_cast<double>(out.cut));
  return out;
}

/// Runs \p trials independent invocations of \p run (callable taking the
/// trial index, returning anything with `metrics` and `sides`) across the
/// lanes of \p pool (null or 1-lane = serial), then records every trial
/// under \p label *in trial order*, so the artifact series is deterministic
/// no matter how the trials were scheduled. Trials must be independent —
/// e.g. repetitions over distinct seeds. Note that under contention each
/// per-trial wall time reflects CPU sharing with the other lanes; use the
/// serial path when per-trial latency itself is the measurement.
///
/// \p warmup extra invocations of run(0) execute un-timed and un-recorded
/// before the trials (serial, even when a pool is given), absorbing
/// first-touch effects so trial 0 is not systematically the slowest.
template <typename RunFn>
std::vector<TimedRun> measure_trials(const char* label, int trials,
                                     ThreadPool* pool, RunFn&& run,
                                     int warmup = 0) {
  for (int i = 0; i < warmup; ++i) static_cast<void>(run(0));
  auto one = [&run](std::size_t i) {
    Timer timer;
    auto r = run(i);
    TimedRun out;
    out.seconds = timer.seconds();
    out.cut = r.metrics.cut_edges;
    out.metrics = r.metrics;
    out.sides = std::move(r.sides);
    return out;
  };
  std::vector<TimedRun> runs;
  const auto n = static_cast<std::size_t>(trials);
  if (pool != nullptr && pool->thread_count() > 1 && trials > 1) {
    // Same `pool/` gauges the serving layer publishes (docs/serving.md),
    // so run reports state which pool shape produced the trials.
    FHP_GAUGE_SET("pool/lanes", pool->lane_count());
    runs = pool->parallel_map<TimedRun>(n, one);
    FHP_GAUGE_SET("pool/pending_chunks",
                  static_cast<double>(pool->pending_chunks()));
  } else {
    runs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) runs.push_back(one(i));
  }
  for (const TimedRun& r : runs) {
    BenchRecorder::instance().add(label, r.seconds,
                                  static_cast<double>(r.cut));
  }
  return runs;
}

inline TimedRun run_algorithm1(const Hypergraph& h, std::uint64_t seed,
                               int starts = 50) {
  return measure("alg1", [&] {
    Algorithm1Options options;
    options.seed = seed;
    options.num_starts = starts;
    return algorithm1(h, options);
  });
}

inline TimedRun run_sa(const Hypergraph& h, std::uint64_t seed) {
  return measure("sa", [&] {
    SaOptions options;
    options.seed = seed;
    return simulated_annealing(h, options);
  });
}

inline TimedRun run_kl(const Hypergraph& h, std::uint64_t seed) {
  return measure("kl", [&] {
    KlOptions options;
    options.seed = seed;
    return kernighan_lin(h, options);
  });
}

inline TimedRun run_fm(const Hypergraph& h, std::uint64_t seed) {
  return measure("fm", [&] {
    FmOptions options;
    options.seed = seed;
    return fiduccia_mattheyses(h, options);
  });
}

/// Prints a titled section header.
inline void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n\n", title.c_str());
}

// Build attribution stamped by CMake (see the top-level CMakeLists.txt);
// fallbacks keep out-of-band compiles (IDE single-file checks) building.
#ifndef FHP_GIT_SHA
#define FHP_GIT_SHA "unknown"
#endif
#ifndef FHP_BUILD_TYPE
#define FHP_BUILD_TYPE "unknown"
#endif

/// Build/environment fingerprint embedded in every run report, so that two
/// BENCH_*.json files are only ever compared apples-to-apples. Besides the
/// compiler/build flags it stamps the producing commit (so ledger records
/// are attributable) and the hardware the run saw: the machine's thread
/// capacity and what resolve_threads() turns a default request into —
/// scan-rate numbers from a 4-thread laptop and a 64-thread server are
/// not comparable, and the artifact must say which one it was.
inline std::string env_fingerprint_json() {
  json::Writer w;
  w.begin_object();
  w.member("git_sha", FHP_GIT_SHA);
  w.member("build_type", FHP_BUILD_TYPE);
  w.member("compiler", __VERSION__);
  w.member("cxx_standard", static_cast<long long>(__cplusplus));
#ifdef NDEBUG
  w.member("assertions", false);
#else
  w.member("assertions", true);
#endif
  w.member("tracing_compiled", FHP_TRACING_ENABLED != 0);
  w.member("pointer_bits", sizeof(void*) * 8);
  w.member("index_bits", sizeof(Index) * 8);
  w.member("hardware_threads", std::thread::hardware_concurrency());
  w.member("resolved_default_threads", resolve_threads(0));
  w.end_object();
  return std::move(w).take();
}

/// RAII run-report scope for a bench executable. Construct first thing in
/// main(); on destruction it prints the phase tree (tracing builds only)
/// and writes BENCH_<name>.json — per-label timing/cut stats from every
/// measure() call plus the phase tree, counters, histograms, peak RSS and
/// the env fingerprint — into $FHP_BENCH_JSON_DIR (default: the working
/// directory).
///
/// The same record is additionally APPENDED as one line to the run ledger
/// `$FHP_BENCH_LEDGER_DIR/<name>.jsonl` (default: `<json dir>/ledger/`),
/// so repeated runs accumulate a queryable perf trajectory — commit SHA,
/// build type, wall times, counters and RSS per run — instead of each run
/// overwriting the last snapshot. Set FHP_BENCH_LEDGER_DIR=none to skip
/// the ledger (e.g. throwaway experiments).
class BenchSession {
 public:
  explicit BenchSession(std::string name) : name_(std::move(name)) {
    obs::reset();
    BenchRecorder::instance().clear();
  }

  BenchSession(const BenchSession&) = delete;
  BenchSession& operator=(const BenchSession&) = delete;

  ~BenchSession() { finish(); }

  /// Idempotent; called automatically on destruction.
  void finish() {
    if (finished_) return;
    finished_ = true;
    const obs::TraceReport report = obs::snapshot();
    if (report.tracing_compiled && !report.spans.empty()) {
      std::printf("\n%s", obs::to_tree_string(report).c_str());
    }

    json::Writer w;
    w.begin_object();
    w.member("bench", name_);
    w.member("generated_unix",
             static_cast<long long>(std::time(nullptr)));
    w.member_raw("env", env_fingerprint_json());
    // Top-level copy of the RSS sample (it also sits in the trace gauges)
    // so ledger queries and benchdiff reach it without digging.
    w.member("peak_rss_bytes", peak_rss_bytes());
    w.member_raw("series", BenchRecorder::instance().to_json());
    w.member_raw("trace", obs::to_json(report));
    w.end_object();
    const std::string json = std::move(w).take() + "\n";

    const char* dir = std::getenv("FHP_BENCH_JSON_DIR");
    const std::string json_dir =
        std::string(dir != nullptr && *dir != '\0' ? dir : ".");
    const std::string path = json_dir + "/BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write run report %s\n",
                   path.c_str());
    } else {
      out << json;
      std::printf("run report written to %s\n", path.c_str());
    }
    append_ledger_record(json_dir, json);
  }

 private:
  /// Appends \p record (one line, trailing newline included) to the run
  /// ledger. Failures warn and continue: the ledger is telemetry, and a
  /// read-only artifact directory must not fail the bench itself.
  void append_ledger_record(const std::string& json_dir,
                            const std::string& record) const {
    const char* env = std::getenv("FHP_BENCH_LEDGER_DIR");
    std::string ledger_dir =
        env != nullptr && *env != '\0' ? env : json_dir + "/ledger";
    if (ledger_dir == "none") return;
    std::error_code ec;
    std::filesystem::create_directories(ledger_dir, ec);
    const std::string path = ledger_dir + "/" + name_ + ".jsonl";
    std::ofstream ledger(path, std::ios::app);
    if (!ledger) {
      std::fprintf(stderr, "warning: cannot append ledger record %s\n",
                   path.c_str());
      return;
    }
    ledger << record;
    std::printf("ledger record appended to %s\n", path.c_str());
  }

  std::string name_;
  bool finished_ = false;
};

}  // namespace fhp::bench

/// Reproduces **Table 1** of the paper: the percentage of large signals
/// (k >= 20, k >= 14, k >= 8 pins) that cross the best simulated-annealing
/// partition, per technology, averaged over 10 SA runs per example.
///
/// Paper values (percent crossing):
///   PCB       99 / 98 / 97
///   Std-cell  (high 90s; exact digits illegible in the source scan)
///   Gate-array / Hybrid rows likewise high-90s
///
/// The claim under test: nets above a small pin-count threshold almost
/// always contribute to the cut, which justifies ignoring them during
/// partitioning (§3).
#include <cstdio>

#include "bench_common.hpp"
#include "util/stats.hpp"

namespace {

using namespace fhp;
using namespace fhp::bench;

struct CrossingStats {
  RunningStats k20;
  RunningStats k14;
  RunningStats k8;
};

/// Fraction (%) of nets with >= k pins crossing under `sides`; returns -1
/// when the instance has no such net.
double crossing_percent(const Hypergraph& h,
                        const std::vector<std::uint8_t>& sides,
                        std::uint32_t k) {
  EdgeId large = 0;
  EdgeId crossing = 0;
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    if (h.edge_size(e) < k) continue;
    ++large;
    bool l = false;
    bool r = false;
    for (VertexId v : h.pins(e)) {
      (sides[v] == 0 ? l : r) = true;
    }
    if (l && r) ++crossing;
  }
  if (large == 0) return -1.0;
  return 100.0 * static_cast<double>(crossing) / static_cast<double>(large);
}

}  // namespace

int main() {
  fhp::bench::BenchSession session("table1");
  print_header(
      "Table 1 — % of large signals crossing the best SA partition "
      "(10 SA runs per example)");

  const struct {
    Technology tech;
    double scale;
    double bus_fraction;  // enough buses that the k >= 20 bucket is filled
  } rows[] = {
      {Technology::kPcb, 1.5, 0.04},
      {Technology::kStandardCell, 1.0, 0.03},
      {Technology::kGateArray, 0.8, 0.03},
      {Technology::kHybrid, 2.0, 0.06},
  };

  AsciiTable table({"Technology", "k>=20 %", "k>=14 %", "k>=8 %",
                    "paper (k>=20/14/8)"});
  const char* paper[] = {"99 / 98 / 97", "high 90s", "high 90s", "high 90s"};

  int row_idx = 0;
  for (const auto& row : rows) {
    CircuitParams params = params_for(row.tech, row.scale);
    params.bus_fraction = row.bus_fraction;
    params.bus_size_min = 14;
    params.bus_size_max = 36;
    CrossingStats stats;
    // "Results averaged over 10 simulated annealing runs for each example."
    for (std::uint64_t run = 0; run < 10; ++run) {
      const Hypergraph h = generate_circuit(params, 1000 + run);
      const TimedRun sa = run_sa(h, 7000 + run);
      const double c20 = crossing_percent(h, sa.sides, 20);
      const double c14 = crossing_percent(h, sa.sides, 14);
      const double c8 = crossing_percent(h, sa.sides, 8);
      if (c20 >= 0) stats.k20.add(c20);
      if (c14 >= 0) stats.k14.add(c14);
      if (c8 >= 0) stats.k8.add(c8);
    }
    table.add_row({technology_name(row.tech), AsciiTable::num(stats.k20.mean(), 1),
                   AsciiTable::num(stats.k14.mean(), 1),
                   AsciiTable::num(stats.k8.mean(), 1), paper[row_idx]});
    ++row_idx;
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: nets above ~14 pins cross the best heuristic partition"
      "\nnearly always, so the large-net filter of Algorithm I forfeits"
      "\nalmost nothing (paper section 3).\n");
  return 0;
}

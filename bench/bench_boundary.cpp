/// Claim C3 (paper §3 corollary): the expected boundary-set size |B| is a
/// constant *fraction* of |G| for bounded-degree intersection graphs —
/// partition quality does not degrade with instance size.
///
/// We sweep instance sizes for two families (hierarchical circuits and
/// bounded-degree random hypergraphs) and report |B|/|G| of the chosen
/// (best) start of Algorithm I.
#include <cstdio>

#include "bench_common.hpp"
#include "gen/random_hypergraph.hpp"
#include "util/stats.hpp"

int main() {
  using namespace fhp;
  using namespace fhp::bench;
  fhp::bench::BenchSession session("boundary");

  print_header("C3 — boundary fraction |B| / |G| across instance sizes");

  AsciiTable table({"family", "modules", "|G|", "|B|", "|B|/|G|"});

  for (VertexId n : {100U, 200U, 400U, 800U, 1600U}) {
    RunningStats fraction;
    RunningStats bsize;
    RunningStats gsize;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      const Hypergraph h = generate_circuit(
          table2_params(n, static_cast<EdgeId>(n * 7 / 4),
                        Technology::kStandardCell),
          seed);
      Algorithm1Options options;
      options.seed = seed;
      Algorithm1Context ctx(h, options);
      if (ctx.is_degenerate()) continue;
      const Algorithm1Result r = ctx.run_single(0);
      gsize.add(ctx.intersection().num_vertices());
      bsize.add(r.boundary_size);
      fraction.add(static_cast<double>(r.boundary_size) /
                   static_cast<double>(ctx.intersection().num_vertices()));
    }
    table.add_row({"circuit", std::to_string(n),
                   AsciiTable::num(gsize.mean(), 0),
                   AsciiTable::num(bsize.mean(), 0),
                   AsciiTable::num(fraction.mean(), 3)});
  }
  table.add_separator();
  for (VertexId n : {100U, 200U, 400U, 800U, 1600U}) {
    RunningStats fraction;
    RunningStats bsize;
    RunningStats gsize;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      RandomHypergraphParams params;
      params.num_vertices = n;
      params.num_edges = static_cast<EdgeId>(n);
      params.max_edge_size = 3;
      params.max_degree = 3;
      const Hypergraph h = random_hypergraph(params, seed);
      Algorithm1Options options;
      options.seed = seed;
      Algorithm1Context ctx(h, options);
      if (ctx.is_degenerate()) continue;
      const Algorithm1Result r = ctx.run_single(0);
      gsize.add(ctx.intersection().num_vertices());
      bsize.add(r.boundary_size);
      fraction.add(static_cast<double>(r.boundary_size) /
                   static_cast<double>(ctx.intersection().num_vertices()));
    }
    if (gsize.count() == 0) continue;
    table.add_row({"random H(n,3,3)", std::to_string(n),
                   AsciiTable::num(gsize.mean(), 0),
                   AsciiTable::num(bsize.mean(), 0),
                   AsciiTable::num(fraction.mean(), 3)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: the fraction stays bounded (and for hierarchical"
      "\ncircuits, small) as n grows 16x — the corollary behind the"
      "\npaper's 'partition quality does not vary with input size'.\n");
  return 0;
}

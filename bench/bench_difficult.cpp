/// Claim C5 (paper §4): on difficult inputs — planted bisections with
/// c = o(n^{1-1/d}) — Algorithm I always finds a min-cut bipartition,
/// while KL and annealing often stick at poor local minima; at c = 0 the
/// BFS detects unconnectedness outright.
///
/// Sweep the planted cutsize c on dense 500-module instances and report,
/// per algorithm: success rate (cut <= planted c) and mean cut found.
#include <cstdio>

#include "bench_common.hpp"
#include "util/stats.hpp"

int main() {
  using namespace fhp;
  using namespace fhp::bench;
  fhp::bench::BenchSession session("difficult");

  print_header("C5 — planted difficult instances: who finds the min cut?");

  AsciiTable table({"planted c", "AlgI found", "AlgI mean", "KL found",
                    "KL mean", "SA found", "SA mean", "FM found", "FM mean"});

  constexpr int kRuns = 5;
  for (EdgeId c : {0U, 2U, 4U, 8U, 16U}) {
    int found[4] = {0, 0, 0, 0};
    RunningStats mean_cut[4];
    for (std::uint64_t seed = 0; seed < kRuns; ++seed) {
      // The paper's Diff shape: (500, 700) with 2-pin nets — a sparse
      // ~3-regular planted-bisection graph, the classic family where
      // local search sticks (Bui et al. [5]).
      PlantedParams params;
      params.num_vertices = 500;
      params.num_edges = 700;
      params.planted_cut = c;
      params.min_edge_size = 2;
      params.max_edge_size = 2;
      params.max_degree = 0;
      const PlantedInstance inst = planted_instance(params, 100 + seed);
      const Hypergraph& h = inst.hypergraph;

      const TimedRun runs[4] = {run_algorithm1(h, seed), run_kl(h, seed),
                                run_sa(h, seed), run_fm(h, seed)};
      for (int a = 0; a < 4; ++a) {
        if (runs[a].cut <= inst.planted_cut) ++found[a];
        mean_cut[a].add(runs[a].cut);
      }
    }
    table.add_row({std::to_string(c),
                   std::to_string(found[0]) + "/" + std::to_string(kRuns),
                   AsciiTable::num(mean_cut[0].mean(), 1),
                   std::to_string(found[1]) + "/" + std::to_string(kRuns),
                   AsciiTable::num(mean_cut[1].mean(), 1),
                   std::to_string(found[2]) + "/" + std::to_string(kRuns),
                   AsciiTable::num(mean_cut[2].mean(), 1),
                   std::to_string(found[3]) + "/" + std::to_string(kRuns),
                   AsciiTable::num(mean_cut[3].mean(), 1)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: Algorithm I recovers the planted cut essentially always"
      "\n(the paper's 'performance is almost always optimum' on difficult"
      "\nrandom hypergraphs); the local-search baselines degrade as the"
      "\nplanted cut gets small relative to instance density. c = 0 is the"
      "\npathological disconnected case handled by the BFS shortcut.\n");
  return 0;
}

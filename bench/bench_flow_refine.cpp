/// \file bench_flow_refine.cpp
/// Quality-vs-time Pareto harness of the corridor flow refiner
/// (src/multilevel/flow_refine.*): four engine configurations — flat
/// Algorithm I, flat + corridor-flow post-pass, multilevel + FM, and
/// multilevel + flow + FM — raced on standard-cell and multi-pin planted
/// instances, with simulated annealing as the expensive-metaheuristic
/// yardstick. Wired into CI as a gate — it ABORTS (nonzero exit) when
///   - `ml+flow+fm` median cut (across seeds) exceeds the `ml+fm` median
///     cut on any gated instance,
///   - `ml+flow+fm` is not *strictly* better than `ml+fm` on at least one
///     gated instance (the refiner must earn its keep, not just not hurt),
///   - `flat+flow` does not reach an equal-or-better median cut than SA,
///   - `flat+flow` min-of-k wall time is not below 25% of SA's, or
///   - the engine partition with the flow refiner in the seat is not
///     bit-identical across thread counts {1, 2, 8}.
/// Timing series land in BENCH_flow_refine.json for the perf ledger and
/// the benchdiff sentinel (bench/baselines/BENCH_flow_refine.json).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "multilevel/engine.hpp"
#include "multilevel/flow_refine.hpp"
#include "obs/counters.hpp"

namespace {

using namespace fhp;
using namespace fhp::bench;

int failures = 0;
int strictly_better = 0;  ///< gated instances where ml+flow+fm beat ml+fm

void check(bool ok, const std::string& what) {
  if (ok) {
    std::printf("  [ok]   %s\n", what.c_str());
  } else {
    std::printf("  [FAIL] %s\n", what.c_str());
    ++failures;
  }
}

/// The gated instances. Two families, chosen for where flow pays off:
/// hierarchical standard-cell circuits (multi-pin nets whose boundary FM
/// walks one vertex at a time) and multi-pin planted bisections (the
/// 2-to-4-pin variant of the paper's difficult family — unlike the 2-pin
/// rows of bench_multilevel, FM does *not* reliably reach the planted cut
/// here, so the corridor solve has real mistakes to repair).
struct FlowInstance {
  std::string name;
  bool planted;         ///< multi-pin planted bisection vs standard cell
  VertexId modules;
  EdgeId nets;
  EdgeId planted_cut;   ///< planted instances only
  int seeds;            ///< independent instance+algorithm seeds
  int timed_reps;       ///< min-of-k repetitions per seed
};

std::vector<FlowInstance> gated_instances() {
  return {
      {"FlowSC1", false, 900, 1400, 0, 3, 2},
      {"FlowSC2", false, 1600, 2400, 0, 3, 2},
      {"FlowPl1", true, 1200, 1900, 6, 3, 2},
      {"FlowPl2", true, 2000, 3200, 8, 3, 2},
  };
}

Hypergraph make_flow_instance(const FlowInstance& inst, std::uint64_t seed) {
  if (inst.planted) {
    PlantedParams params;
    params.num_vertices = inst.modules;
    params.num_edges = inst.nets;
    params.planted_cut = inst.planted_cut;
    params.min_edge_size = 2;
    params.max_edge_size = 4;
    params.max_degree = 6;
    return planted_instance(params, seed).hypergraph;
  }
  return generate_circuit(
      table2_params(inst.modules, inst.nets, Technology::kStandardCell),
      seed);
}

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

/// Engine bit-identity across thread counts with the flow refiner in the
/// per-level seat — the corridor BFS, gadget build and Dinic are all
/// serial fixed-order code, so the engine's identity contract must be
/// unchanged by the premium refiner.
void check_thread_identity(const Hypergraph& h, const std::string& name) {
  print_header("bit-identity across thread counts: " + name + " (flow+fm)");
  ml::EngineOptions options;
  options.refiner = ml::RefinerChoice::kFlowFm;
  options.threads = 1;
  const ml::MultilevelResult reference = ml::multilevel_partition(h, options);
  for (int threads : {2, 8}) {
    options.threads = threads;
    const ml::MultilevelResult r = ml::multilevel_partition(h, options);
    check(r.sides == reference.sides &&
              r.metrics.cut_weight == reference.metrics.cut_weight,
          name + ": flow+fm engine threads=" + std::to_string(threads) +
              " == threads=1");
  }
}

/// One Pareto row: the four configurations plus the SA yardstick.
void pareto(const FlowInstance& inst) {
  print_header("pareto: " + inst.name + " (" + std::to_string(inst.modules) +
               " modules, " +
               (inst.planted ? "multi-pin planted cut " +
                                   std::to_string(inst.planted_cut)
                             : std::string("standard cell")) +
               ")");

  std::vector<double> flat_cuts, flatflow_cuts, mlfm_cuts, mlflow_cuts,
      sa_cuts;
  std::vector<double> flatflow_times, sa_times;
  for (int seed = 1; seed <= inst.seeds; ++seed) {
    const Hypergraph h =
        make_flow_instance(inst, static_cast<std::uint64_t>(seed));

    auto run_plan = [&](ml::EngineChoice engine, ml::RefinerChoice refiner,
                        const char* label) {
      ml::PartitionPlan plan;
      plan.engine = engine;
      plan.refiner = refiner;
      plan.algorithm1.seed = static_cast<std::uint64_t>(seed);
      plan.algorithm1.threads = 1;
      return measure((std::string(label) + "/" + inst.name).c_str(),
                     [&] { return ml::partition_auto(h, plan); },
                     /*warmup=*/0, inst.timed_reps);
    };

    const TimedRun flat = run_plan(ml::EngineChoice::kFlat,
                                   ml::RefinerChoice::kFm, "flat");
    const TimedRun flatflow = run_plan(ml::EngineChoice::kFlat,
                                       ml::RefinerChoice::kFlow, "flat_flow");
    const TimedRun mlfm = run_plan(ml::EngineChoice::kMultilevel,
                                   ml::RefinerChoice::kFm, "ml_fm");
    const TimedRun mlflow = run_plan(ml::EngineChoice::kMultilevel,
                                     ml::RefinerChoice::kFlowFm,
                                     "ml_flow_fm");
    const TimedRun sa = run_sa(h, static_cast<std::uint64_t>(seed));

    std::printf(
        "  seed %d: flat %4u | flat+flow %4u (%6.1f ms) | ml+fm %4u | "
        "ml+flow+fm %4u | sa %4u (%6.1f ms)\n",
        seed, static_cast<unsigned>(flat.cut),
        static_cast<unsigned>(flatflow.cut), flatflow.seconds * 1e3,
        static_cast<unsigned>(mlfm.cut), static_cast<unsigned>(mlflow.cut),
        static_cast<unsigned>(sa.cut), sa.seconds * 1e3);

    flat_cuts.push_back(static_cast<double>(flat.cut));
    flatflow_cuts.push_back(static_cast<double>(flatflow.cut));
    mlfm_cuts.push_back(static_cast<double>(mlfm.cut));
    mlflow_cuts.push_back(static_cast<double>(mlflow.cut));
    sa_cuts.push_back(static_cast<double>(sa.cut));
    flatflow_times.push_back(flatflow.seconds);
    sa_times.push_back(sa.seconds);
  }

  const double flat_median = median(flat_cuts);
  const double flatflow_median = median(flatflow_cuts);
  const double mlfm_median = median(mlfm_cuts);
  const double mlflow_median = median(mlflow_cuts);
  const double sa_median = median(sa_cuts);
  const double flatflow_best =
      *std::min_element(flatflow_times.begin(), flatflow_times.end());
  const double sa_best = *std::min_element(sa_times.begin(), sa_times.end());

  std::printf(
      "  median cut: flat %.0f | flat+flow %.0f | ml+fm %.0f | "
      "ml+flow+fm %.0f | sa %.0f;  flat+flow %.1f ms vs sa %.1f ms "
      "(%.1f%% of sa)\n",
      flat_median, flatflow_median, mlfm_median, mlflow_median, sa_median,
      flatflow_best * 1e3, sa_best * 1e3,
      100.0 * flatflow_best / sa_best);
  obs::Counters::instance().set_gauge(
      ("flow_refine/" + inst.name + "/sa_time_fraction").c_str(),
      flatflow_best / sa_best);
  obs::Counters::instance().set_gauge(
      ("flow_refine/" + inst.name + "/ml_flow_gain").c_str(),
      mlfm_median - mlflow_median);

  check(mlflow_median <= mlfm_median,
        inst.name + ": ml+flow+fm median cut <= ml+fm median cut");
  if (mlflow_median < mlfm_median) ++strictly_better;
  check(flatflow_median <= flat_median,
        inst.name + ": the flat flow post-pass never worsens flat");
  check(flatflow_median <= sa_median,
        inst.name + ": flat+flow median cut <= SA median cut");
  check(flatflow_best < 0.25 * sa_best,
        inst.name + ": flat+flow wall time < 25% of SA");
}

}  // namespace

int main() {
  BenchSession session("flow_refine");

  const std::vector<FlowInstance> gated = gated_instances();

  check_thread_identity(make_flow_instance(gated[0], 1), gated[0].name);

  for (const FlowInstance& inst : gated) pareto(inst);

  check(strictly_better >= 1,
        "ml+flow+fm strictly better than ml+fm on >= 1 gated instance (" +
            std::to_string(strictly_better) + ")");

  if (failures > 0) {
    std::printf("\nbench_flow_refine: %d check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("\nbench_flow_refine: all checks passed\n");
  return 0;
}

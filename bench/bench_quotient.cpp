/// Quotient-cut study (paper §4: "we are examining the performance of
/// Algorithm I for different metrics, especially the quotient cut").
/// Compares the quotient achieved by Algorithm I under both selection
/// objectives against the baselines across technology presets.
#include <cstdio>

#include "baselines/multilevel.hpp"
#include "baselines/spectral.hpp"
#include "bench_common.hpp"
#include "partition/metrics.hpp"
#include "util/stats.hpp"

int main() {
  using namespace fhp;
  using namespace fhp::bench;
  fhp::bench::BenchSession session("quotient");

  print_header("Quotient cut — objective study across technologies");

  AsciiTable table({"technology", "algorithm", "mean quotient x1e3",
                    "mean cut", "mean imbalance"});

  for (Technology tech : {Technology::kPcb, Technology::kStandardCell,
                          Technology::kGateArray}) {
    struct Entry {
      const char* name;
      RunningStats quotient;
      RunningStats cut;
      RunningStats imbalance;
    };
    Entry entries[] = {{"Alg I (cut objective)", {}, {}, {}},
                       {"Alg I (quotient objective)", {}, {}, {}},
                       {"FM", {}, {}, {}},
                       {"Multilevel", {}, {}, {}},
                       {"SA", {}, {}, {}},
                       {"Spectral sweep", {}, {}, {}}};
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      const Hypergraph h = generate_circuit(params_for(tech, 0.6), seed);
      auto record = [](Entry& entry, const PartitionMetrics& m) {
        entry.quotient.add(m.quotient_cut * 1e3);
        entry.cut.add(m.cut_edges);
        entry.imbalance.add(m.cardinality_imbalance);
      };
      {
        Algorithm1Options o;
        o.seed = seed;
        record(entries[0], algorithm1(h, o).metrics);
        o.objective = Objective::kQuotient;
        record(entries[1], algorithm1(h, o).metrics);
      }
      {
        FmOptions o;
        o.seed = seed;
        record(entries[2], fiduccia_mattheyses(h, o).metrics);
      }
      {
        MultilevelOptions o;
        o.seed = seed;
        record(entries[3], multilevel_bipartition(h, o).metrics);
      }
      {
        SaOptions o;
        o.seed = seed;
        record(entries[4], simulated_annealing(h, o).metrics);
      }
      {
        SpectralOptions o;
        o.seed = seed;
        record(entries[5], spectral_bipartition(h, o).metrics);
      }
    }
    for (Entry& entry : entries) {
      table.add_row({technology_name(tech), entry.name,
                     AsciiTable::num(entry.quotient.mean(), 3),
                     AsciiTable::num(entry.cut.mean(), 1),
                     AsciiTable::num(entry.imbalance.mean(), 1)});
    }
    table.add_separator();
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: selecting starts by quotient instead of raw cutsize"
      "\ntrades a few extra cut nets for measurably better balance-"
      "\nnormalized quality, closing most of the gap to the iterative"
      "\nmethods on the metric the ratio-cut literature optimizes.\n");
  return 0;
}

/// Forward-looking comparison (beyond the paper): where does the 1989
/// dual-BFS heuristic stand against the families that followed it —
/// flat FM, FM-refined Algorithm I, the FBB flow method, and the
/// multilevel V-cycle that eventually dominated (hMETIS lineage)?
///
/// Cutsizes normalized to Algorithm I = 1.00 on the Table-2 suite.
#include <cstdio>

#include "baselines/multilevel.hpp"
#include "bench_common.hpp"
#include "util/stats.hpp"

int main() {
  using namespace fhp;
  using namespace fhp::bench;
  fhp::bench::BenchSession session("successors");

  print_header("Successors — Alg I vs FM vs Alg I+FM vs multilevel");

  AsciiTable table({"Example", "Alg I", "FM / norm", "AlgI+FM / norm",
                    "Multilevel / norm", "ML ms", "AlgI ms"});

  for (const Table2Instance& inst : table2_instances()) {
    const Hypergraph h = make_instance(inst, 42);

    const TimedRun alg = run_algorithm1(h, 1);
    const TimedRun fm = run_fm(h, 2);

    Timer hybrid_timer;
    FmOptions hybrid_options;
    hybrid_options.seed = 3;
    hybrid_options.initial = alg.sides;
    const BaselineResult hybrid = fiduccia_mattheyses(h, hybrid_options);
    const double hybrid_seconds = alg.seconds + hybrid_timer.seconds();
    (void)hybrid_seconds;

    MultilevelOptions ml_options;
    ml_options.seed = 4;
    Timer ml_timer;
    const BaselineResult ml = multilevel_bipartition(h, ml_options);
    const double ml_seconds = ml_timer.seconds();

    const double base = alg.cut > 0 ? static_cast<double>(alg.cut) : 1.0;
    auto norm = [&](EdgeId cut) {
      return std::to_string(cut) + " / " +
             AsciiTable::num(static_cast<double>(cut) / base, 2);
    };
    table.add_row({inst.name, std::to_string(alg.cut), norm(fm.cut),
                   norm(hybrid.metrics.cut_edges),
                   norm(ml.metrics.cut_edges),
                   AsciiTable::num(ml_seconds * 1e3, 1),
                   AsciiTable::num(alg.seconds * 1e3, 1)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: flat FM alone sticks badly on the planted Diff rows —"
      "\nthe paper's point. But a cheap FM polish on top of Algorithm I"
      "\nmatches or beats everything of its era, and the multilevel"
      "\nV-cycle solves *both* regimes (coarsening exposes the planted"
      "\nstructure to local search), which is precisely why it made"
      "\nsingle-level heuristics like this paper's obsolete.\n");
  return 0;
}

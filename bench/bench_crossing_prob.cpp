/// Claim C1 (paper §3 theorem): in a random hypergraph, a net with k pins
/// crosses the min-cut bipartition with probability 1 - O(2^-k).
///
/// We measure, per net size k, the fraction of nets crossing the best
/// partition found (multi-start Algorithm I refined by FM — the strongest
/// cut we can produce), on netlists with a wide net-size mix, and print it
/// against the 1 - 2^(1-k) reference curve.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "util/stats.hpp"

int main() {
  using namespace fhp;
  using namespace fhp::bench;
  fhp::bench::BenchSession session("crossing_prob");

  print_header("C1 — P(net of size k crosses the best cut) vs 1 - O(2^-k)");

  constexpr Count kMaxSize = 24;
  std::vector<double> crossing(kMaxSize + 1, 0.0);
  std::vector<double> count(kMaxSize + 1, 0.0);

  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    // The theorem addresses *random* hypergraphs — pins placed uniformly,
    // no hierarchy. (On hierarchical netlists, small local nets cross far
    // more rarely; that is the §4 observation, not this theorem.)
    CircuitParams params = standard_cell_params(0.6);
    params.locality = 0.0;
    params.window_fraction = 1.0;  // every net drawn design-wide
    params.size_geometric_p = 0.35;
    params.max_net_size = 18;
    params.bus_fraction = 0.03;
    params.bus_size_min = 18;
    params.bus_size_max = kMaxSize;
    const Hypergraph h = generate_circuit(params, seed);

    // Best near-*bisection* we can find (the theorem is about min-cut
    // bisections): FM with the classic tight tolerance, best of 3 starts.
    BaselineResult best;
    for (std::uint64_t attempt = 0; attempt < 3; ++attempt) {
      FmOptions fm;
      fm.seed = seed * 17 + attempt;
      BaselineResult r = fiduccia_mattheyses(h, fm);
      if (attempt == 0 || r.metrics.cut_edges < best.metrics.cut_edges) {
        best = std::move(r);
      }
    }

    for (EdgeId e = 0; e < h.num_edges(); ++e) {
      const Count size = std::min(h.edge_size(e), kMaxSize);
      if (size < 2) continue;
      bool l = false;
      bool r = false;
      for (VertexId v : h.pins(e)) {
        (best.sides[v] == 0 ? l : r) = true;
      }
      count[size] += 1.0;
      if (l && r) crossing[size] += 1.0;
    }
  }

  AsciiTable table({"net size k", "#nets", "crossing %", "1 - 2^(1-k) %"});
  for (std::uint32_t k = 2; k <= kMaxSize; ++k) {
    if (count[k] < 1) continue;
    const double measured = 100.0 * crossing[k] / count[k];
    const double reference = 100.0 * (1.0 - std::pow(2.0, 1.0 - double(k)));
    table.add_row({std::to_string(k) + (k == kMaxSize ? "+" : ""),
                   AsciiTable::num(count[k], 0), AsciiTable::num(measured, 1),
                   AsciiTable::num(reference, 1)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: crossing probability climbs toward 100%% as k grows,"
      "\ntracking the 1 - O(2^-k) bound; by k ~ 10 nearly every net"
      "\ncrosses, so the paper's threshold-10 filter loses almost no"
      "\ncut accuracy.\n");
  return 0;
}

/// Application-level evaluation (paper §1 motivation): min-cut placement
/// quality as a function of the bisection engine. The paper's pitch is
/// that Algorithm I makes a drop-in, much faster engine for Breuer-style
/// placement; here we race the engines on half-perimeter wirelength,
/// region-spanning nets, and placer runtime across technology presets.
#include <cstdio>

#include "bench_common.hpp"
#include "place/placement.hpp"
#include "place/route.hpp"
#include "util/stats.hpp"

int main() {
  using namespace fhp;
  using namespace fhp::bench;
  fhp::bench::BenchSession session("placement");

  print_header("Placement — engine comparison (4x4 grid, HPWL)");

  const struct {
    PlacementEngine engine;
    int starts;  // Algorithm I start budget (ignored by other engines)
    bool terminal_propagation;
    const char* name;
  } engines[] = {
      {PlacementEngine::kAlgorithm1, 50, true, "Algorithm I (50 starts)"},
      {PlacementEngine::kAlgorithm1, 5, true, "Algorithm I (5 starts)"},
      {PlacementEngine::kAlgorithm1, 50, false, "Algorithm I (no term-prop)"},
      {PlacementEngine::kFm, 50, true, "Fiduccia-Mattheyses"},
      {PlacementEngine::kKl, 50, true, "Kernighan-Lin"},
      {PlacementEngine::kRandom, 50, true, "Random"},
  };

  for (Technology tech : {Technology::kStandardCell, Technology::kGateArray}) {
    const Hypergraph h = generate_circuit(params_for(tech, 1.0), 31);
    std::printf("\n%s: %u modules, %u nets\n", technology_name(tech).c_str(),
                h.num_vertices(), h.num_edges());
    AsciiTable table({"engine", "HPWL", "vs random", "spanning nets",
                      "route WL", "peak cong", "ms"});

    // Random baseline first so every row can be normalized against it.
    double random_hpwl = 0.0;
    {
      RunningStats hpwl;
      for (std::uint64_t seed = 0; seed < 3; ++seed) {
        PlacementOptions options;
        options.engine = PlacementEngine::kRandom;
        options.seed = seed;
        hpwl.add(half_perimeter_wirelength(h, place_mincut(h, options)));
      }
      random_hpwl = hpwl.mean();
    }
    for (const auto& entry : engines) {
      RunningStats hpwl;
      RunningStats spanning;
      RunningStats millis;
      RunningStats route_wl;
      RunningStats congestion;
      for (std::uint64_t seed = 0; seed < 3; ++seed) {
        PlacementOptions options;
        options.engine = entry.engine;
        options.algorithm1.num_starts = entry.starts;
        options.terminal_propagation = entry.terminal_propagation;
        options.seed = seed;
        Timer timer;
        const Placement p = place_mincut(h, options);
        millis.add(timer.millis());
        hpwl.add(half_perimeter_wirelength(h, p));
        spanning.add(spanning_nets(h, p));
        const RoutingResult routed = route_global(h, p);
        route_wl.add(static_cast<double>(routed.wirelength));
        congestion.add(routed.max_usage);
      }
      if (entry.engine == PlacementEngine::kRandom) random_hpwl = hpwl.mean();
      table.add_row({entry.name, AsciiTable::num(hpwl.mean(), 0),
                     random_hpwl > 0
                         ? AsciiTable::num(hpwl.mean() / random_hpwl, 2)
                         : "-",
                     AsciiTable::num(spanning.mean(), 0),
                     AsciiTable::num(route_wl.mean(), 0),
                     AsciiTable::num(congestion.mean(), 0),
                     AsciiTable::num(millis.mean(), 1)});
    }
    std::printf("%s", table.render().c_str());
  }
  std::printf(
      "\nReading: the recursive min-cut loop with Algorithm I lands in the"
      "\nsame wirelength band as the iterative-improvement engines and far"
      "\nbelow random placement; trimming the start budget buys most of"
      "\nthe speed back with little wirelength loss — the engine trade"
      "\nthe paper's speed claim enables.\n");
  return 0;
}

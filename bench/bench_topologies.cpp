/// Topology study (beyond the paper's tables, within its motivation):
/// how do the algorithm families behave across *structured* circuit
/// topologies with known cut geometry? Datapaths (adder) should be nearly
/// free to cut, arrays cost Θ(side), butterflies are expanders (every
/// balanced cut is expensive), trees cost O(1).
#include <cstdio>

#include "baselines/multilevel.hpp"
#include "bench_common.hpp"
#include "gen/grid.hpp"
#include "gen/structured.hpp"
#include "util/stats.hpp"

int main() {
  using namespace fhp;
  using namespace fhp::bench;
  fhp::bench::BenchSession session("topologies");

  print_header("Topologies — cutsize by circuit structure");

  struct Row {
    const char* name;
    Hypergraph h;
    const char* floor;  // geometric intuition for the minimum
  };
  Row rows[] = {
      {"ripple adder (64b)", ripple_carry_adder(64), "O(1) carry chain"},
      {"array multiplier 16x16", array_multiplier(16), "~n fwd nets + buses"},
      {"mesh 24x24", grid_circuit({24, 24, 0.0, false}), "~24 rails"},
      {"butterfly 2^5 x 5", butterfly_network(5, 5), "Theta(n) expander"},
      {"H-tree depth 9", h_tree(9), "1 subtree net"},
  };

  AsciiTable table({"topology", "modules/nets", "Alg I", "FM", "Multilevel",
                    "SA", "expected floor"});
  for (Row& row : rows) {
    const Hypergraph& h = row.h;
    const TimedRun alg = run_algorithm1(h, 1);
    const TimedRun fm = run_fm(h, 2);
    MultilevelOptions ml_options;
    ml_options.seed = 3;
    const BaselineResult ml = multilevel_bipartition(h, ml_options);
    const TimedRun sa = run_sa(h, 4);
    table.add_row({row.name,
                   std::to_string(h.num_vertices()) + "/" +
                       std::to_string(h.num_edges()),
                   std::to_string(alg.cut), std::to_string(fm.cut),
                   std::to_string(ml.metrics.cut_edges),
                   std::to_string(sa.cut), row.floor});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: every method tracks the geometric floor on easy"
      "\ntopologies (adder, tree); arrays separate the methods that"
      "\nexploit structure from those that don't; the butterfly is"
      "\nuniformly expensive — no heuristic can beat an expander's"
      "\nbisection width.\n");
  return 0;
}

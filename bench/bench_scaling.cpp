/// Claim C6 (paper §1/§5): Algorithm I runs in O(n²) where n is the
/// number of signals, and is "significantly faster than all existing
/// heuristics".
///
/// Part 1 fits the empirical growth exponent of the full pipeline
/// (intersection-graph build + 50 starts) over a 16x size sweep — the
/// exponent should land well below 3 and near 2 or lower (sparse
/// instances often behave sub-quadratically).
/// Part 2 is a google-benchmark timing comparison of all algorithms at a
/// fixed, Table-2-sized instance.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "util/stats.hpp"

namespace {

using namespace fhp;
using namespace fhp::bench;

Hypergraph sized_instance(VertexId n, std::uint64_t seed) {
  return generate_circuit(
      table2_params(n, static_cast<EdgeId>(n * 7 / 4),
                    Technology::kStandardCell),
      seed);
}

void growth_report() {
  print_header("C6a — growth exponent of Algorithm I (50 starts)");
  AsciiTable table({"modules", "signals", "seconds"});
  std::vector<double> ns;
  std::vector<double> ts;
  for (VertexId n : {250U, 500U, 1000U, 2000U, 4000U}) {
    const Hypergraph h = sized_instance(n, 17);
    // Median of three runs to tame scheduler noise.
    std::vector<double> times;
    for (int rep = 0; rep < 3; ++rep) {
      times.push_back(run_algorithm1(h, rep).seconds);
    }
    const double t = median(times);
    ns.push_back(static_cast<double>(h.num_edges()));
    ts.push_back(t);
    table.add_row({std::to_string(n), std::to_string(h.num_edges()),
                   AsciiTable::num(t * 1e3, 2) + " ms"});
  }
  std::printf("%s", table.render().c_str());
  std::printf("fitted runtime exponent b (t ~ n^b): %.2f  (paper bound: 2)\n",
              fit_growth_exponent(ns, ts));
}

const Hypergraph& fixed_instance() {
  static const Hypergraph h = sized_instance(561, 23);  // IC1-sized
  return h;
}

void BM_Algorithm1(benchmark::State& state) {
  const Hypergraph& h = fixed_instance();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_algorithm1(h, seed++).cut);
  }
}
BENCHMARK(BM_Algorithm1)->Unit(benchmark::kMillisecond);

void BM_Algorithm1SingleStart(benchmark::State& state) {
  const Hypergraph& h = fixed_instance();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_algorithm1(h, seed++, /*starts=*/1).cut);
  }
}
BENCHMARK(BM_Algorithm1SingleStart)->Unit(benchmark::kMillisecond);

void BM_FiducciaMattheyses(benchmark::State& state) {
  const Hypergraph& h = fixed_instance();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_fm(h, seed++).cut);
  }
}
BENCHMARK(BM_FiducciaMattheyses)->Unit(benchmark::kMillisecond);

void BM_KernighanLin(benchmark::State& state) {
  const Hypergraph& h = fixed_instance();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_kl(h, seed++).cut);
  }
}
BENCHMARK(BM_KernighanLin)->Unit(benchmark::kMillisecond);

void BM_SimulatedAnnealing(benchmark::State& state) {
  const Hypergraph& h = fixed_instance();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_sa(h, seed++).cut);
  }
}
BENCHMARK(BM_SimulatedAnnealing)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  fhp::bench::BenchSession session("scaling");
  growth_report();
  print_header("C6b — wall-clock comparison at IC1 size (561 modules)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

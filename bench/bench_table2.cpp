/// Reproduces **Table 2** of the paper: cutsize of Algorithm I vs
/// simulated annealing vs MinCut-KL on the industry-style suite
/// (Bd1-3, IC1-2) and planted difficult instances (Diff1-3), with
/// cutsizes normalized to Algorithm I = 1.00, plus the CPU-ratio row.
///
/// Paper's qualitative shape: Algorithm I is as good as or better than SA
/// and KL on circuit instances, always optimal on the difficult ones, and
/// two orders of magnitude faster (CPU row 1.0 : ~110 : ~120).
#include <cstdio>

#include "bench_common.hpp"
#include "util/stats.hpp"

int main() {
  using namespace fhp;
  using namespace fhp::bench;
  fhp::bench::BenchSession session("table2");

  print_header(
      "Table 2 — normalized cutsize: Algorithm I vs SA vs MinCut-KL");

  AsciiTable table({"Example", "(Mods,Sigs)", "Alg I cut", "SA cut / norm",
                    "KL cut / norm"});
  RunningStats sa_cpu_ratio;
  RunningStats kl_cpu_ratio;

  for (const Table2Instance& inst : table2_instances()) {
    const Hypergraph h = make_instance(inst, 42);

    const TimedRun alg = run_algorithm1(h, 1);
    const TimedRun sa = run_sa(h, 2);
    const TimedRun kl = run_kl(h, 3);

    if (alg.seconds > 1e-6) {
      sa_cpu_ratio.add(sa.seconds / alg.seconds);
      kl_cpu_ratio.add(kl.seconds / alg.seconds);
    }

    const double base = alg.cut > 0 ? static_cast<double>(alg.cut) : 1.0;
    auto norm = [&](EdgeId cut) {
      return AsciiTable::num(static_cast<double>(cut) / base, 2);
    };
    table.add_row({inst.name,
                   "(" + std::to_string(inst.modules) + "," +
                       std::to_string(inst.signals) + ")",
                   std::to_string(alg.cut),
                   std::to_string(sa.cut) + " / " + norm(sa.cut),
                   std::to_string(kl.cut) + " / " + norm(kl.cut)});
  }
  table.add_separator();
  table.add_row({"CPU (avg ratio)", "", "1.0",
                 AsciiTable::num(sa_cpu_ratio.mean(), 1),
                 AsciiTable::num(kl_cpu_ratio.mean(), 1)});
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nPaper reference: Alg I normalized to 1.0 everywhere; SA/KL"
      "\ncomparable or worse on Bd/IC rows, far worse on Diff rows;"
      "\nCPU row 1.0 : ~110 : ~120 (VAX-era implementations)."
      "\nBd2's size is illegible in the source text; (170,350) is an"
      "\ninterpolation (see EXPERIMENTS.md).\n");
  return 0;
}

/// Ablation A2 (paper §3): sweep the large-net threshold k. Measures the
/// realized total cut, the cut restricted to small nets, the dropped-net
/// count, the dual-graph size, and runtime. The paper argues k >= 10
/// suffices ("very small expected error in cutsize") and that the sparser
/// dual has a larger diameter / smaller boundary.
#include <cstdio>

#include "bench_common.hpp"
#include "util/stats.hpp"

int main() {
  using namespace fhp;
  using namespace fhp::bench;
  fhp::bench::BenchSession session("ablation_threshold");

  print_header("A2 — large-net threshold sweep");

  CircuitParams params = standard_cell_params(1.0);
  params.bus_fraction = 0.03;
  params.bus_size_min = 12;
  params.bus_size_max = 36;

  AsciiTable table({"threshold", "dropped nets", "|G| edges", "total cut",
                    "small-net cut", "imbalance", "ms"});

  for (std::uint32_t threshold : {6U, 8U, 10U, 14U, 20U, 0U}) {
    RunningStats dropped;
    RunningStats gedges;
    RunningStats total_cut;
    RunningStats small_cut;
    RunningStats imbalance;
    RunningStats millis;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      const Hypergraph h = generate_circuit(params, seed);
      Algorithm1Options options;
      options.seed = seed;
      options.large_edge_threshold = threshold;
      Timer timer;
      const Algorithm1Result r = algorithm1(h, options);
      millis.add(timer.millis());
      dropped.add(r.filtered_edges);
      total_cut.add(r.metrics.cut_edges);
      imbalance.add(r.metrics.cardinality_imbalance);

      Algorithm1Context ctx(h, options);
      gedges.add(static_cast<double>(ctx.intersection().num_edges()));

      EdgeId small = 0;
      for (EdgeId e = 0; e < h.num_edges(); ++e) {
        if (h.edge_size(e) > 10) continue;  // fixed yardstick
        bool l = false;
        bool r2 = false;
        for (VertexId v : h.pins(e)) {
          (r.sides[v] == 0 ? l : r2) = true;
        }
        if (l && r2) ++small;
      }
      small_cut.add(small);
    }
    table.add_row({threshold == 0 ? "none" : std::to_string(threshold),
                   AsciiTable::num(dropped.mean(), 1),
                   AsciiTable::num(gedges.mean(), 0),
                   AsciiTable::num(total_cut.mean(), 1),
                   AsciiTable::num(small_cut.mean(), 1),
                   AsciiTable::num(imbalance.mean(), 1),
                   AsciiTable::num(millis.mean(), 1)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: thresholds in the 8-14 band drop only the bus tail, keep"
      "\nthe small-net cut near its unfiltered value, and shrink the dual"
      "\ngraph markedly — the paper's k >= 10 recommendation.\n");
  return 0;
}

/// Ablation C4/A3-part (paper §2.2 theorem + §4 "alternative greedy
/// methods"): compare the three boundary-completion strategies.
///
/// Part 1 — loser counts on raw bipartite boundary graphs: greedy vs the
/// König-exact optimum (empirically probing the paper's "within 1 of
/// optimum when G' is connected" theorem; we report the gap distribution,
/// which stays tiny on pipeline-generated boundary graphs even where the
/// literal within-1 bound can be exceeded on adversarial inputs).
/// Part 2 — end-to-end effect on cut and balance on circuit instances.
#include <cstdio>

#include "bench_common.hpp"
#include "core/boundary.hpp"
#include "core/intersection.hpp"
#include "graph/bfs.hpp"
#include "graph/components.hpp"
#include "util/stats.hpp"

int main() {
  using namespace fhp;
  using namespace fhp::bench;
  fhp::bench::BenchSession session("ablation_completion");

  print_header("C4 — Complete-Cut greedy vs exact (König) on real boundaries");

  RunningStats gap;
  RunningStats gap_connected;
  std::size_t within_one_connected = 0;
  std::size_t connected_cases = 0;
  RunningStats boundary_sizes;

  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const Hypergraph h = generate_circuit(
        table2_params(400, 700, Technology::kStandardCell), seed);
    Algorithm1Options options;
    options.seed = seed;
    Algorithm1Context ctx(h, options);
    if (ctx.is_degenerate()) continue;
    const Graph& g = ctx.intersection();
    const DiameterPair pair = longest_path_from(g, 0, 2);
    const BidirectionalCut cut = bidirectional_bfs_cut(g, pair.s, pair.t);
    const BoundaryStructure b = extract_boundary(g, cut.side);
    boundary_sizes.add(b.size());

    const CompletionResult greedy = complete_cut_greedy(b.boundary_graph);
    const CompletionResult exact =
        complete_cut_exact(b.boundary_graph, b.boundary_side);
    const double delta =
        static_cast<double>(greedy.loser_count) - exact.loser_count;
    gap.add(delta);
    if (is_connected(b.boundary_graph)) {
      ++connected_cases;
      gap_connected.add(delta);
      if (delta <= 1.0) ++within_one_connected;
    }
  }
  std::printf("boundary graphs measured: %zu (mean |B| = %.0f)\n",
              gap.count(), boundary_sizes.mean());
  std::printf("greedy - exact losers: mean %.2f, max %.0f\n", gap.mean(),
              gap.max());
  if (connected_cases > 0) {
    std::printf(
        "connected boundary graphs: %zu; within-1 of optimum in %zu "
        "(mean gap %.2f)\n",
        connected_cases, within_one_connected, gap_connected.mean());
  }

  print_header("A3a — end-to-end completion strategy comparison");
  AsciiTable table(
      {"strategy", "mean cut", "mean weight imbalance", "mean ms"});
  const CompletionStrategy strategies[] = {CompletionStrategy::kGreedy,
                                           CompletionStrategy::kWeightedGreedy,
                                           CompletionStrategy::kExact};
  const char* names[] = {"greedy (paper)", "weighted (engineer's rule)",
                         "exact (Konig)"};
  int idx = 0;
  for (CompletionStrategy strategy : strategies) {
    RunningStats cut;
    RunningStats imbalance;
    RunningStats millis;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      CircuitParams params = standard_cell_params(0.8);
      params.weight_geometric_p = 0.4;
      const Hypergraph h = generate_circuit(params, seed);
      Algorithm1Options options;
      options.seed = seed;
      options.completion = strategy;
      Timer timer;
      const Algorithm1Result r = algorithm1(h, options);
      millis.add(timer.millis());
      cut.add(r.metrics.cut_edges);
      imbalance.add(static_cast<double>(r.metrics.weight_imbalance));
    }
    table.add_row({names[idx++], AsciiTable::num(cut.mean(), 1),
                    AsciiTable::num(imbalance.mean(), 1),
                    AsciiTable::num(millis.mean(), 1)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: exact completion shaves little off the greedy cut (the"
      "\npaper's theorem in practice); the weighted rule trades a slightly"
      "\nlarger cut for a tighter weight balance, 'much as one would"
      "\nsuspect' (paper section 3).\n");
  return 0;
}

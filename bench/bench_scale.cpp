/// \file bench_scale.cpp
/// Million-module ingest gate: sharded generation + mmap parsing at scale.
///
/// The harness synthesizes a ~1M-module hMETIS netlist chunk-by-chunk to
/// disk (write_sharded_hmetis — peak memory one chunk), then races the two
/// parser stacks over it:
///   - legacy: ifstream + the istream oracle (io.cpp), and
///   - mmap:   MappedFile + the zero-copy SWAR scanner (io_scan.cpp).
/// Wired into CI as a gate — it ABORTS (nonzero exit) when
///   - either parse disagrees structurally with the other (vertex, edge,
///     pin counts, per-edge pin lists, weights), or
///   - the mmap parser is not at least 2x faster (min-of-k) than the
///     legacy parser on the 1M-module instance. The margin in practice is
///     ~10x; 2x keeps scheduler noise out of CI while still catching a
///     real regression of the zero-copy path.
/// A Bookshelf leg runs the same differential check at smaller scale
/// (informational timing only — the .nets pin lines make legacy costs
/// name-lookup-bound, a different fight).
/// Throughput lands as modules/sec gauges, wall times and module counts
/// as BENCH_scale.json series (module counts double as the deterministic
/// "cut" channel the benchdiff sentinel gates hard), peak RSS in the
/// session footer.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "bench_common.hpp"
#include "gen/sharded.hpp"
#include "hypergraph/bookshelf.hpp"
#include "hypergraph/io.hpp"
#include "obs/counters.hpp"
#include "util/mmap.hpp"

namespace {

using namespace fhp;
using namespace fhp::bench;

int failures = 0;

void check(bool ok, const std::string& what) {
  if (ok) {
    std::printf("  [ok]   %s\n", what.c_str());
  } else {
    std::printf("  [FAIL] %s\n", what.c_str());
    ++failures;
  }
}

/// Structural equality of two parses (ids, pins, weights). The mmap parser
/// must be indistinguishable from the oracle, not merely similar.
bool same_hypergraph(const Hypergraph& a, const Hypergraph& b) {
  if (a.num_vertices() != b.num_vertices() || a.num_edges() != b.num_edges() ||
      a.num_pins() != b.num_pins()) {
    return false;
  }
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    const auto pa = a.pins(e);
    const auto pb = b.pins(e);
    if (pa.size() != pb.size() || a.edge_weight(e) != b.edge_weight(e)) {
      return false;
    }
    for (std::size_t i = 0; i < pa.size(); ++i) {
      if (pa[i] != pb[i]) return false;
    }
  }
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    if (a.vertex_weight(v) != b.vertex_weight(v)) return false;
  }
  return true;
}

/// Min-of-k wall time of \p run; records (seconds, modules) under \p label
/// so the series' "cut" channel is deterministic for the sentinel.
template <typename RunFn>
double time_parse(const char* label, double modules, int reps, RunFn&& run) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    Timer timer;
    static_cast<void>(run());
    const double seconds = timer.seconds();
    if (rep == 0 || seconds < best) best = seconds;
  }
  BenchRecorder::instance().add(label, best, modules);
  return best;
}

void hmetis_leg() {
  print_header("hMETIS ingest: 1M modules, sharded generation");
  const std::string dir =
      (std::filesystem::temp_directory_path() / "fhp_bench_scale").string();
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/scale_1m.hgr";

  CircuitParams params = gate_array_params(1.0);
  params.num_modules = 1'000'000;
  params.num_nets = 1'300'000;

  Timer gen_timer;
  const ShardedNetlistStats stats = write_sharded_hmetis(path, params, 42);
  const double gen_seconds = gen_timer.seconds();
  const auto modules = static_cast<double>(stats.num_modules);
  BenchRecorder::instance().add("generate/hgr_1m", gen_seconds, modules);
  std::printf(
      "  generated %llu modules / %llu nets / %llu pins in %.2fs "
      "(%llu chunks, %.0f modules/sec)\n",
      static_cast<unsigned long long>(stats.num_modules),
      static_cast<unsigned long long>(stats.num_nets),
      static_cast<unsigned long long>(stats.num_pins),
      gen_seconds,
      static_cast<unsigned long long>(stats.num_chunks),
      modules / gen_seconds);
  check(stats.num_modules >= 1'000'000, "instance has >= 1M modules");

  // Warm the page cache once so both parsers read memory, not disk.
  Hypergraph mmap_parsed = read_hmetis_file(path);

  const double mmap_seconds =
      time_parse("parse_mmap/hgr_1m", modules, 3,
                 [&] { mmap_parsed = read_hmetis_file(path); });

  Hypergraph legacy_parsed;
  const double legacy_seconds =
      time_parse("parse_legacy/hgr_1m", modules, 2, [&] {
        std::ifstream in(path);
        legacy_parsed = read_hmetis(in);
      });

  std::printf("  legacy: %.3fs (%.0f modules/sec)\n", legacy_seconds,
              modules / legacy_seconds);
  std::printf("  mmap:   %.3fs (%.0f modules/sec, %.1fx)\n", mmap_seconds,
              modules / mmap_seconds, legacy_seconds / mmap_seconds);
  FHP_GAUGE_SET("scale.hgr.modules", modules);
  FHP_GAUGE_SET("scale.hgr.pins", static_cast<double>(stats.num_pins));
  FHP_GAUGE_SET("scale.hgr.modules_per_sec_mmap", modules / mmap_seconds);
  FHP_GAUGE_SET("scale.hgr.modules_per_sec_legacy", modules / legacy_seconds);
  FHP_GAUGE_SET("scale.hgr.speedup", legacy_seconds / mmap_seconds);

  check(same_hypergraph(mmap_parsed, legacy_parsed),
        "mmap parse == istream oracle (1M-module instance)");
  check(mmap_parsed.num_vertices() == stats.num_modules &&
            mmap_parsed.num_edges() == stats.num_nets &&
            mmap_parsed.num_pins() <= stats.num_pins,
        "parsed shape matches generator stats");
  check(mmap_seconds * 2.0 <= legacy_seconds,
        "mmap parser >= 2x faster than legacy istream parser");

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

void bookshelf_leg() {
  print_header("Bookshelf ingest: 200k modules (differential)");
  const std::string dir =
      (std::filesystem::temp_directory_path() / "fhp_bench_scale_bs").string();
  std::filesystem::create_directories(dir);
  const std::string nodes_path = dir + "/scale.nodes";
  const std::string nets_path = dir + "/scale.nets";

  CircuitParams params = gate_array_params(1.0);
  params.num_modules = 200'000;
  params.num_nets = 260'000;

  Timer gen_timer;
  const ShardedNetlistStats stats =
      write_sharded_bookshelf(nodes_path, nets_path, params, 42);
  const double gen_seconds = gen_timer.seconds();
  const auto modules = static_cast<double>(stats.num_modules);
  BenchRecorder::instance().add("generate/bookshelf_200k", gen_seconds,
                                modules);

  BookshelfDesign mmap_design = read_bookshelf_files(nodes_path, nets_path);
  const double mmap_seconds =
      time_parse("parse_mmap/bookshelf_200k", modules, 2, [&] {
        mmap_design = read_bookshelf_files(nodes_path, nets_path);
      });
  BookshelfDesign legacy_design;
  const double legacy_seconds =
      time_parse("parse_legacy/bookshelf_200k", modules, 2, [&] {
        std::ifstream nodes(nodes_path);
        std::ifstream nets(nets_path);
        legacy_design = read_bookshelf(nodes, nets);
      });
  std::printf("  legacy: %.3fs   mmap: %.3fs (%.1fx)\n", legacy_seconds,
              mmap_seconds, legacy_seconds / mmap_seconds);
  FHP_GAUGE_SET("scale.bookshelf.modules_per_sec_mmap",
                modules / mmap_seconds);
  FHP_GAUGE_SET("scale.bookshelf.modules_per_sec_legacy",
                modules / legacy_seconds);

  check(same_hypergraph(mmap_design.netlist.hypergraph,
                        legacy_design.netlist.hypergraph) &&
            mmap_design.netlist.vertex_names ==
                legacy_design.netlist.vertex_names &&
            mmap_design.netlist.edge_names ==
                legacy_design.netlist.edge_names &&
            mmap_design.is_terminal == legacy_design.is_terminal,
        "mmap Bookshelf parse == istream oracle (200k-module design)");

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace

int main() {
  BenchSession session("scale");
  hmetis_leg();
  bookshelf_leg();

  FHP_GAUGE_SET("scale.peak_rss_bytes",
                static_cast<double>(peak_rss_bytes()));
  std::printf("\n%s\n", failures == 0 ? "bench_scale: ALL GATES PASSED"
                                      : "bench_scale: GATE FAILURES");
  return failures == 0 ? 0 : 1;
}

/// Ablation A3 (paper §3 "The r-bipartition Constraint" + §4
/// "Extensions"): weight-balance mechanisms.
///
///  - engineer's weighted completion vs plain greedy on weighted modules;
///  - granularization of heavy modules ("replacing larger modules with
///    linked uniform small modules ... the weight bipartition is more
///    balanced");
///  - the quotient-cut start-selection objective vs raw cutsize.
#include <cstdio>

#include "bench_common.hpp"
#include "hypergraph/transform.hpp"
#include "partition/partition.hpp"
#include "util/stats.hpp"

int main() {
  using namespace fhp;
  using namespace fhp::bench;
  fhp::bench::BenchSession session("ablation_balance");

  print_header("A3 — weight-balance mechanisms on heavy-module circuits");

  AsciiTable table({"configuration", "mean cut", "mean |w_L - w_R|",
                    "imbalance / total %"});

  CircuitParams params = standard_cell_params(0.8);
  params.weight_geometric_p = 0.25;  // strong area spread

  struct Row {
    const char* name;
    RunningStats cut;
    RunningStats imbalance;
    RunningStats fraction;
  };
  Row rows[] = {{"greedy completion", {}, {}, {}},
                {"weighted completion", {}, {}, {}},
                {"greedy + granularization", {}, {}, {}},
                {"quotient-cut objective", {}, {}, {}}};

  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Hypergraph h = generate_circuit(params, seed);
    const auto total = static_cast<double>(h.total_vertex_weight());

    auto record = [&](Row& row, EdgeId cut, Weight imbalance) {
      row.cut.add(cut);
      row.imbalance.add(static_cast<double>(imbalance));
      row.fraction.add(100.0 * static_cast<double>(imbalance) / total);
    };

    Algorithm1Options base;
    base.seed = seed;
    {
      const Algorithm1Result r = algorithm1(h, base);
      record(rows[0], r.metrics.cut_edges, r.metrics.weight_imbalance);
    }
    {
      Algorithm1Options o = base;
      o.completion = CompletionStrategy::kWeightedGreedy;
      const Algorithm1Result r = algorithm1(h, o);
      record(rows[1], r.metrics.cut_edges, r.metrics.weight_imbalance);
    }
    {
      const GranularizeResult g = granularize(h, 2, /*link_weight=*/6);
      const Algorithm1Result r = algorithm1(g.hypergraph, base);
      const auto sides = project_granularized_sides(g, r.sides);
      const Bipartition projected(h, sides);
      record(rows[2], projected.cut_edges(), projected.weight_imbalance());
    }
    {
      Algorithm1Options o = base;
      o.objective = Objective::kQuotient;
      const Algorithm1Result r = algorithm1(h, o);
      record(rows[3], r.metrics.cut_edges, r.metrics.weight_imbalance);
    }
  }

  for (Row& row : rows) {
    table.add_row({row.name, AsciiTable::num(row.cut.mean(), 1),
                   AsciiTable::num(row.imbalance.mean(), 1),
                   AsciiTable::num(row.fraction.mean(), 1)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: each mechanism tightens the weight balance relative to"
      "\nplain greedy at a modest cutsize premium — the paper's 'improved"
      "\nweight partition is obtained at the cost of slightly higher"
      "\ncutsizes'.\n");
  return 0;
}

/// Claim C2 (paper §3): for connected random bounded-degree graphs,
/// (a) BFS from a random vertex reaches depth diam(G) - O(1) whp, and
/// (b) the diameter is Θ(log n).
///
/// We build intersection graphs of random bounded-degree hypergraphs,
/// compare single-BFS depth and double-sweep estimates against the exact
/// diameter, and track diam / log2(n) across sizes.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/intersection.hpp"
#include "gen/random_hypergraph.hpp"
#include "graph/bfs.hpp"
#include "graph/components.hpp"
#include "graph/diameter.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

int main() {
  using namespace fhp;
  using namespace fhp::bench;
  fhp::bench::BenchSession session("diameter");

  print_header("C2 — BFS depth vs exact diameter; diam = O(log n)");

  AsciiTable table({"|G|", "exact diam", "1-BFS depth", "2-sweep est",
                    "diam/log2(n)", "mean gap (exact - 1-BFS)"});

  for (VertexId n : {100U, 200U, 400U, 800U, 1600U}) {
    RunningStats diam_stats;
    RunningStats bfs_stats;
    RunningStats sweep_stats;
    RunningStats gap_stats;
    RunningStats ratio_stats;
    int measured = 0;
    for (std::uint64_t seed = 0; seed < 40 && measured < 10; ++seed) {
      RandomHypergraphParams params;
      params.num_vertices = n;
      params.num_edges = static_cast<EdgeId>(n);
      params.max_edge_size = 3;
      params.max_degree = 3;  // sparse: bounded-degree dual
      const Hypergraph h = random_hypergraph(params, seed);
      const Graph g = intersection_graph(h);
      if (g.num_vertices() < n / 2 || !is_connected(g)) continue;
      ++measured;

      const std::uint32_t exact = exact_diameter(g);
      Rng rng(seed);
      const auto start = static_cast<VertexId>(
          rng.next_below(g.num_vertices()));
      const std::uint32_t one_bfs = bfs(g, start).depth;
      const std::uint32_t sweep = longest_path_from(g, start, 2).distance;

      diam_stats.add(exact);
      bfs_stats.add(one_bfs);
      sweep_stats.add(sweep);
      gap_stats.add(static_cast<double>(exact) - one_bfs);
      ratio_stats.add(static_cast<double>(exact) /
                      std::log2(static_cast<double>(g.num_vertices())));
    }
    if (measured == 0) continue;
    table.add_row({std::to_string(n), AsciiTable::num(diam_stats.mean(), 1),
                   AsciiTable::num(bfs_stats.mean(), 1),
                   AsciiTable::num(sweep_stats.mean(), 1),
                   AsciiTable::num(ratio_stats.mean(), 2),
                   AsciiTable::num(gap_stats.mean(), 2)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: the single-BFS depth sits within a small constant of the"
      "\nexact diameter (gap column), the double sweep closes most of the"
      "\nrest, and diam/log2(n) stays near-constant — the two §3 theorems"
      "\nthe O(n^2) bound rests on.\n");
  return 0;
}

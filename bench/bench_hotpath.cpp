/// \file bench_hotpath.cpp
/// Hot-path regression harness for the workspace substrate, the counting
/// intersection build and start memoization. Unlike the experiment benches
/// this one is also a correctness gate wired into CI: it ABORTS (nonzero
/// exit) when
///   - the memoized / workspace-backed pipeline is not bit-identical to the
///     naive allocate-per-start loop,
///   - the cache-locality reordering (Algorithm1Options::reorder) changes
///     the partition in any threads x memoization configuration,
///   - per-lane workspace reuse does not cut buffer growths by >= 2x versus
///     allocate-per-call (tracing builds), or
///   - a 50-start run records no memo hits (tracing builds).
/// Timing numbers (ns/start, build times, scratch footprint) go into
/// BENCH_hotpath.json; the asserts are about counters and bytes, never
/// about wall time, so the gate is scheduler-noise free.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/intersection.hpp"
#include "gen/grid.hpp"
#include "obs/counters.hpp"
#include "util/timer.hpp"

namespace {

using namespace fhp;
using namespace fhp::bench;

int failures = 0;

void check(bool ok, const char* what) {
  if (ok) {
    std::printf("  [ok]   %s\n", what);
  } else {
    std::printf("  [FAIL] %s\n", what);
    ++failures;
  }
}

long long counter(const char* name) {
  return obs::Counters::instance().value(name);
}

/// Bit-identity of the full options matrix legs: memo on, memo off, and a
/// hand-rolled allocate-per-start loop over run_single (the pre-workspace
/// code path, reduced exactly like algorithm1_impl's serial loop).
void check_bit_identity(const Hypergraph& h) {
  print_header("bit-identity: memoized vs unmemoized vs naive loop");
  for (const int threads : {1, 2, 8}) {
    Algorithm1Options options;
    options.num_starts = 50;
    options.seed = 7;
    options.threads = threads;

    options.memoize_starts = true;
    const Algorithm1Result memoized = algorithm1(h, options);
    options.memoize_starts = false;
    const Algorithm1Result plain = algorithm1(h, options);

    std::string label = "threads=" + std::to_string(threads) +
                        ": memoized == unmemoized partition";
    check(memoized.sides == plain.sides &&
              memoized.metrics.cut_edges == plain.metrics.cut_edges,
          label.c_str());
  }

  // Naive loop leg (serial, threads=1 context), reproducing the reduction.
  Algorithm1Options options;
  options.num_starts = 50;
  options.seed = 7;
  options.threads = 1;
  const Algorithm1Result full = algorithm1(h, options);

  const Algorithm1Context context(h, options);
  if (context.is_degenerate()) {
    // Disconnected G takes the degenerate shortcut: no per-start pipeline
    // to compare against (the memo on/off legs above still had to agree).
    std::printf("  [skip] naive loop (degenerate instance)\n");
    return;
  }
  Rng rng(options.seed);
  std::vector<VertexId> starts(context.intersection().num_vertices());
  for (VertexId i = 0; i < starts.size(); ++i) starts[i] = i;
  rng.shuffle(starts);
  if (static_cast<std::uint64_t>(options.num_starts) < starts.size()) {
    starts.resize(static_cast<std::size_t>(options.num_starts));
  }
  Algorithm1Result naive;
  bool have = false;
  for (const VertexId start : starts) {
    Algorithm1Result candidate = context.run_single(start);
    const bool take =
        !have ||
        candidate.metrics.cut_edges < naive.metrics.cut_edges ||
        (candidate.metrics.cut_edges == naive.metrics.cut_edges &&
         candidate.metrics.weight_imbalance < naive.metrics.weight_imbalance);
    if (take) {
      naive = std::move(candidate);
      have = true;
    }
  }
  check(have && naive.sides == full.sides,
        "naive run_single loop == algorithm1 partition");
}

/// Bit-identity of the cache-locality reordering: the permuted-traversal
/// pipeline must reproduce the exact partition of the original-order
/// pipeline in every configuration — the reordering is a pure memory-layout
/// change (see Algorithm1Options::reorder).
void check_reorder_identity(const Hypergraph& h) {
  print_header("bit-identity: reorder on vs off");
  for (const int threads : {1, 8}) {
    for (const bool memoize : {true, false}) {
      Algorithm1Options options;
      options.num_starts = 50;
      options.seed = 7;
      options.threads = threads;
      options.memoize_starts = memoize;

      options.reorder = true;
      const Algorithm1Result reordered = algorithm1(h, options);
      options.reorder = false;
      const Algorithm1Result original = algorithm1(h, options);

      const std::string label = "threads=" + std::to_string(threads) +
                                " memo=" + (memoize ? "on" : "off") +
                                ": reordered == original partition";
      check(reordered.sides == original.sides &&
                reordered.metrics.cut_edges == original.metrics.cut_edges,
            label.c_str());
    }
  }
}

/// Allocation accounting: the naive loop pays workspace growths on every
/// start; the per-lane loop pays them once per lane. Requires tracing.
void check_allocation_reduction(const Hypergraph& h) {
  print_header("allocation accounting: per-call vs per-lane workspaces");
#if FHP_TRACING_ENABLED
  Algorithm1Options options;
  options.num_starts = 50;
  options.seed = 7;
  options.threads = 1;
  const Algorithm1Context context(h, options);

  obs::Counters::instance().reset();
  for (VertexId start = 0;
       start < std::min<VertexId>(50U, context.intersection().num_vertices());
       ++start) {
    static_cast<void>(context.run_single(start));
  }
  const long long naive_grows = counter("workspace/buffer_grows");

  obs::Counters::instance().reset();
  static_cast<void>(algorithm1(h, options));
  const long long reused_grows = counter("workspace/buffer_grows");
  const double scratch_bytes =
      obs::Counters::instance().gauge("alg1/scratch_bytes");

  std::printf("  buffer grows: naive=%lld reused=%lld (scratch %.0f bytes)\n",
              naive_grows, reused_grows, scratch_bytes);
  obs::Counters::instance().set_gauge("hotpath/naive_buffer_grows",
                                      static_cast<double>(naive_grows));
  obs::Counters::instance().set_gauge("hotpath/reused_buffer_grows",
                                      static_cast<double>(reused_grows));
  check(reused_grows > 0 && naive_grows >= 2 * reused_grows,
        "per-lane reuse cuts buffer growths by >= 2x");
#else
  std::printf("  tracing compiled out; allocation counters unavailable\n");
#endif
}

/// Memo effectiveness: a 50-start run must register hits (distinct starts
/// converge onto few pseudo-diameter pairs). Requires tracing.
void check_memo_hits(const Hypergraph& h) {
  print_header("memoization: hits on a 50-start run");
#if FHP_TRACING_ENABLED
  obs::Counters::instance().reset();
  Algorithm1Options options;
  options.num_starts = 50;
  options.seed = 7;
  options.threads = 1;
  static_cast<void>(algorithm1(h, options));
  const long long hits = counter("algorithm1/starts_memo_hits");
  const long long misses = counter("algorithm1/starts_memo_misses");
  std::printf("  memo: %lld hits / %lld misses\n", hits, misses);
  check(hits > 0, "memo hit counter > 0 on 50 starts");
  check(hits + misses == counter("alg1/starts_examined"),
        "every examined start is a hit or a miss");
#else
  std::printf("  tracing compiled out; memo counters unavailable\n");
#endif
}

/// Timing legs: ns/start for the three pipeline variants and the two
/// intersection builders. Informational (recorded, never asserted).
void measure_timings(const Hypergraph& h) {
  print_header("timings (informational)");
  constexpr int kStarts = 50;
  auto run = [&](const char* label, bool memoize) {
    Algorithm1Options options;
    options.num_starts = kStarts;
    options.seed = 7;
    options.threads = 1;
    options.memoize_starts = memoize;
    const TimedRun r = measure(label, [&] { return algorithm1(h, options); });
    const double ns_per_start = r.seconds * 1e9 / kStarts;
    obs::Counters::instance().set_gauge(
        (std::string(label) + "/ns_per_start").c_str(), ns_per_start);
    std::printf("  %-24s %8.3f ms  (%9.0f ns/start, cut %u)\n", label,
                r.seconds * 1e3, ns_per_start, static_cast<unsigned>(r.cut));
  };
  for (int rep = 0; rep < 5; ++rep) {
    run("alg1_memoized", true);
    run("alg1_unmemoized", false);
  }

  for (int rep = 0; rep < 5; ++rep) {
    Timer counting;
    const Graph g1 = intersection_graph(h, {});
    const double counting_s = counting.seconds();
    Timer reference;
    const Graph g2 = intersection_graph_reference(h, {});
    const double reference_s = reference.seconds();
    BenchRecorder::instance().add("intersection_counting", counting_s,
                                  static_cast<double>(g1.num_edges()));
    BenchRecorder::instance().add("intersection_reference", reference_s,
                                  static_cast<double>(g2.num_edges()));
    if (rep == 0) {
      obs::Counters::instance().set_gauge("hotpath/intersection_counting_s",
                                          counting_s);
      obs::Counters::instance().set_gauge("hotpath/intersection_reference_s",
                                          reference_s);
      std::printf("  intersection build:      counting %.3f ms, reference "
                  "%.3f ms (%zu edges)\n",
                  counting_s * 1e3, reference_s * 1e3, g1.num_edges());
    }
  }
}

}  // namespace

int main() {
  BenchSession session("hotpath");

  // Three shapes: a standard-cell circuit (the paper's regime), a planted
  // bisection (dense G), and a grid (deep BFS, many levels).
  const Hypergraph circuit = make_instance(
      {"IC", 800, 1200, Technology::kStandardCell, false, 0}, 13);
  const Hypergraph planted = make_instance(
      {"Diff", 400, 600, Technology::kStandardCell, true, 6}, 13);
  const Hypergraph grid = grid_circuit({16, 16, 0.3, false}, 3);

  for (const auto* leg : {&circuit, &planted, &grid}) {
    check_bit_identity(*leg);
    check_reorder_identity(*leg);
  }
  check_allocation_reduction(circuit);
  check_memo_hits(circuit);
  measure_timings(circuit);

  if (failures > 0) {
    std::printf("\nbench_hotpath: %d check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("\nbench_hotpath: all checks passed\n");
  return 0;
}

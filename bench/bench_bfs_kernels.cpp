/// \file bench_bfs_kernels.cpp
/// Differential harness for the BFS traversal kernels: top-down-only vs
/// direction-optimizing, original vertex order vs cache-locality reordered
/// (graph/reorder.hpp). Like bench_hotpath this is a CI correctness gate:
/// it ABORTS (nonzero exit) when
///   - the direction-optimizing kernel does not reproduce the top-down
///     kernel's distance labels, farthest election, or bidirectional cut,
///   - traversing the reordered graph changes any of those results after
///     mapping back through the permutation, or
///   - (tracing builds) direction optimization does not cut total edge
///     scans by >= 1.5x on the dense difficult planted instances — the
///     large-frontier regime it exists for.
/// Timing numbers (ns/traversal for every kernel x order leg) are recorded
/// into BENCH_bfs_kernels.json; only counters are asserted, never wall
/// time, so the gate is scheduler-noise free.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/intersection.hpp"
#include "gen/grid.hpp"
#include "graph/bfs.hpp"
#include "graph/reorder.hpp"
#include "obs/counters.hpp"
#include "util/timer.hpp"

namespace {

using namespace fhp;
using namespace fhp::bench;

int failures = 0;

void check(bool ok, const std::string& what) {
  if (ok) {
    std::printf("  [ok]   %s\n", what.c_str());
  } else {
    std::printf("  [FAIL] %s\n", what.c_str());
    ++failures;
  }
}

constexpr int kSources = 16;  ///< deterministic source spread per graph

/// Evenly spread BFS sources (deterministic, covers the id range).
std::vector<VertexId> pick_sources(const Graph& g) {
  std::vector<VertexId> sources;
  const VertexId n = g.num_vertices();
  for (int i = 0; i < kSources; ++i) {
    sources.push_back(static_cast<VertexId>(
        (static_cast<std::uint64_t>(i) * n) / kSources));
  }
  return sources;
}

BfsKernelOptions top_down_only() {
  BfsKernelOptions kernel;
  kernel.direction_optimizing = false;
  return kernel;
}

/// One traversal workload: full BFS from every source plus a bidirectional
/// cut between the first source's double-sweep endpoints. Returns a
/// checksum of reached counts and depths (defeats dead-code elimination;
/// also a cheap cross-kernel consistency probe).
std::uint64_t workload(const Graph& g, const std::vector<VertexId>& sources,
                       Workspace& ws, const BfsKernelOptions& kernel) {
  std::uint64_t checksum = 0;
  for (VertexId s : sources) {
    const BfsSummary r = bfs_scan(g, s, ws, kernel);
    checksum = checksum * 1099511628211ULL + r.reached * 31 + r.depth;
  }
  const DiameterPair pair = longest_path_from(g, sources.front(), 2, ws,
                                              kernel);
  if (pair.s != pair.t) {
    BidirectionalCut cut;
    bidirectional_bfs_cut(g, pair.s, pair.t, ws, cut, kernel);
    checksum = checksum * 1099511628211ULL + cut.reached_s * 31 +
               cut.reached_t;
  }
  return checksum;
}

/// Cross-kernel / cross-order identity: DO and top-down must agree on the
/// original graph, and the reordered graph must agree with the original
/// after mapping labels back through the permutation.
void check_identity(const std::string& name, const Graph& g,
                    const Graph& g_perm, const Permutation& perm) {
  Workspace ws;
  const std::vector<VertexId> sources = pick_sources(g);
  BfsKernelOptions reordered_kernel;  // ties in original-id space
  reordered_kernel.tie_rank = perm.to_old.data();

  bool distances_ok = true;
  bool farthest_ok = true;
  bool cut_ok = true;
  for (VertexId s : sources) {
    const BfsResult td = [&] {
      Workspace local;
      const BfsSummary summary = bfs_scan(g, s, local, top_down_only());
      BfsResult r;
      r.distance.resize(g.num_vertices());
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        r.distance[v] = local.distance.get(v);
      }
      r.farthest = summary.farthest;
      r.depth = summary.depth;
      r.reached = summary.reached;
      return r;
    }();

    // Leg 1: direction-optimizing on the original order.
    const BfsSummary dopt = bfs_scan(g, s, ws, {});
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      distances_ok &= ws.distance.get(v) == td.distance[v];
    }
    farthest_ok &= dopt.farthest == td.farthest && dopt.depth == td.depth &&
                   dopt.reached == td.reached;

    // Leg 2: direction-optimizing on the reordered graph, mapped back.
    const BfsSummary rd =
        bfs_scan(g_perm, perm.to_new[s], ws, reordered_kernel);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      distances_ok &= ws.distance.get(perm.to_new[v]) == td.distance[v];
    }
    farthest_ok &= perm.to_old[rd.farthest] == td.farthest &&
                   rd.depth == td.depth && rd.reached == td.reached;
  }
  check(distances_ok, name + ": distance labels identical across kernels");
  check(farthest_ok, name + ": farthest/depth/reached identical");

  // Bidirectional cut across kernels and orders.
  const DiameterPair pair = longest_path_from(g, sources.front(), 2, ws);
  if (pair.s != pair.t) {
    const BidirectionalCut td = bidirectional_bfs_cut(g, pair.s, pair.t);
    BidirectionalCut dopt;
    bidirectional_bfs_cut(g, pair.s, pair.t, ws, dopt, {});
    cut_ok &= dopt.side == td.side;
    BidirectionalCut rd;
    bidirectional_bfs_cut(g_perm, perm.to_new[pair.s], perm.to_new[pair.t],
                          ws, rd, reordered_kernel);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      cut_ok &= rd.side[perm.to_new[v]] == td.side[v];
    }
    check(cut_ok, name + ": bidirectional cut identical across kernels");
  }
}

#if FHP_TRACING_ENABLED
/// Total edge inspections of one workload under \p kernel.
long long count_scans(const Graph& g, const std::vector<VertexId>& sources,
                      const BfsKernelOptions& kernel) {
  Workspace ws;
  obs::Counters::instance().reset();
  static_cast<void>(workload(g, sources, ws, kernel));
  return obs::Counters::instance().value("bfs/edges_scanned_topdown") +
         obs::Counters::instance().value("bfs/edges_scanned_bottomup");
}
#endif

/// Timing legs: ns per workload for kernel x order, min-of-k after warmup.
void measure_legs(const std::string& name, const Graph& g,
                  const Graph& g_perm, const Permutation& perm) {
  const std::vector<VertexId> sources = pick_sources(g);
  std::vector<VertexId> perm_sources;
  for (VertexId s : sources) perm_sources.push_back(perm.to_new[s]);
  BfsKernelOptions reordered_kernel;
  reordered_kernel.tie_rank = perm.to_old.data();

  struct Leg {
    const char* label;
    const Graph* graph;
    const std::vector<VertexId>* sources;
    BfsKernelOptions kernel;
  };
  const Leg legs[] = {
      {"topdown_original", &g, &sources, top_down_only()},
      {"diropt_original", &g, &sources, {}},
      {"topdown_reordered", &g_perm, &perm_sources,
       [&] {
         BfsKernelOptions k = top_down_only();
         k.tie_rank = perm.to_old.data();
         return k;
       }()},
      {"diropt_reordered", &g_perm, &perm_sources, reordered_kernel},
  };
  constexpr int kWarmup = 2;
  constexpr int kReps = 7;
  for (const Leg& leg : legs) {
    Workspace ws;
    std::uint64_t checksum = 0;
    for (int i = 0; i < kWarmup; ++i) {
      checksum ^= workload(*leg.graph, *leg.sources, ws, leg.kernel);
    }
    double best = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      Timer timer;
      checksum ^= workload(*leg.graph, *leg.sources, ws, leg.kernel);
      const double seconds = timer.seconds();
      if (rep == 0 || seconds < best) best = seconds;
    }
    const std::string label = name + "/" + leg.label;
    BenchRecorder::instance().add(label, best,
                                  static_cast<double>(checksum & 0xff));
    std::printf("  %-28s %9.1f us/workload\n", label.c_str(), best * 1e6);
  }
}

}  // namespace

int main() {
  BenchSession session("bfs_kernels");

  // Gate shapes: dense difficult planted bisections, whose intersection
  // graphs have low diameter and mid-BFS frontiers that swallow most of
  // the graph — the regime bottom-up expansion exists for. The sparse
  // 2-pin table2 "Diff" family and a grid ride along informationally
  // (deep, thin frontiers; the heuristic must not lose there, but the
  // achievable saving is bounded well under the gate's 1.5x), as does a
  // standard-cell circuit.
  struct Shape {
    std::string name;
    Hypergraph h;
    bool gated;
  };
  auto dense_planted = [](VertexId n, EdgeId nets, EdgeId cut,
                          std::uint64_t seed) {
    PlantedParams params;
    params.num_vertices = n;
    params.num_edges = nets;
    params.planted_cut = cut;
    params.min_edge_size = 2;
    params.max_edge_size = 4;
    params.max_degree = 0;
    return planted_instance(params, seed).hypergraph;
  };
  std::vector<Shape> shapes;
  shapes.push_back({"DiffDense1", dense_planted(500, 1500, 8, 13), true});
  shapes.push_back({"DiffDense2", dense_planted(800, 3200, 4, 17), true});
  for (const Table2Instance& inst : table2_instances()) {
    if (inst.difficult) {
      shapes.push_back({inst.name, make_instance(inst, 13), false});
    }
  }
  shapes.push_back(
      {"IC", make_instance({"IC", 800, 1200, Technology::kStandardCell, false,
                            0}, 13),
       false});
  shapes.push_back({"grid16", grid_circuit({16, 16, 0.3, false}, 3), false});

  long long scans_topdown = 0;
  long long scans_diropt = 0;
  struct ScanRow {
    std::string name;
    long long topdown = 0;
    long long diropt = 0;
  };
  std::vector<ScanRow> scan_rows;  // gauges written after the loop:
                                   // count_scans() resets the registry,
                                   // so mid-loop writes would be wiped
  for (const Shape& shape : shapes) {
    print_header("instance " + shape.name);
    const Graph g = intersection_graph(shape.h, {});
    if (g.num_vertices() < 2) {
      std::printf("  [skip] intersection graph too small\n");
      continue;
    }
    const Permutation perm = degree_bucketed_bfs_order(g);
    const Graph g_perm = g.permuted(perm);
    check_identity(shape.name, g, g_perm, perm);
#if FHP_TRACING_ENABLED
    const std::vector<VertexId> sources = pick_sources(g);
    const long long td = count_scans(g, sources, top_down_only());
    const long long dopt = count_scans(g, sources, {});
    std::printf("  edge scans: topdown-only %lld, direction-opt %lld "
                "(%.2fx fewer)\n",
                td, dopt, dopt > 0 ? static_cast<double>(td) /
                                         static_cast<double>(dopt)
                                   : 0.0);
    scan_rows.push_back({shape.name, td, dopt});
    if (shape.gated) {
      scans_topdown += td;
      scans_diropt += dopt;
    }
#endif
    measure_legs(shape.name, g, g_perm, perm);
  }

#if FHP_TRACING_ENABLED
  print_header("edge-scan gate (dense difficult planted instances)");
  const double ratio = scans_diropt > 0
                           ? static_cast<double>(scans_topdown) /
                                 static_cast<double>(scans_diropt)
                           : 0.0;
  std::printf("  total: topdown-only %lld, direction-opt %lld (%.2fx)\n",
              scans_topdown, scans_diropt, ratio);
  for (const ScanRow& row : scan_rows) {
    obs::Counters::instance().set_gauge(
        ("bfs_kernels/" + row.name + "/scans_topdown_only").c_str(),
        static_cast<double>(row.topdown));
    obs::Counters::instance().set_gauge(
        ("bfs_kernels/" + row.name + "/scans_dirop").c_str(),
        static_cast<double>(row.diropt));
  }
  obs::Counters::instance().set_gauge("bfs_kernels/difficult_scan_ratio",
                                      ratio);
  check(ratio >= 1.5,
        "direction optimization scans >= 1.5x fewer edges on difficult "
        "planted instances");
#else
  std::printf("\ntracing compiled out; edge-scan counters unavailable\n");
#endif

  if (failures > 0) {
    std::printf("\nbench_bfs_kernels: %d check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("\nbench_bfs_kernels: all checks passed\n");
  return 0;
}

/// \file benchdiff_core.hpp
/// Perf-regression sentinel: compares a freshly produced BENCH_<name>.json
/// run report against a committed baseline (bench/baselines/) and decides
/// whether the change regressed.
///
/// Comparison rules (noise-aware by construction):
///   - *Wall time*: per series label, `seconds.min` — the min-of-k
///     estimator measure() records — gated by a multiplicative tolerance
///     (default 1.5x). Minima are the least-noisy wall observation, but
///     they still move across machines, so the gate can be downgraded to
///     advisory (`gate_time = false`) for cross-machine CI while counters
///     carry the regression signal.
///   - *Quality*: per series label, `cut.median` must not increase.
///     Cuts are deterministic given the seeds the bench hard-codes, so
///     this is an exact gate.
///   - *Counters*: exact equality, but only when BOTH reports were
///     produced with tracing compiled in (`env.tracing_compiled`).
///     Work counters ("bfs/edges_scanned", "workspace/grows", ...) are
///     deterministic — the pool's chunk decomposition depends only on
///     (n, grain) — so any drift is a real algorithmic change, on any
///     machine. Counters present on one side only are reported as notes,
///     not failures (instrumentation legitimately moves between commits).
///   - *Peak RSS*: advisory only; reported, never gated (allocator and
///     kernel page accounting differ across hosts).
///   - A baseline series label missing from the current report is a
///     regression (a bench silently dropping coverage must not pass);
///     labels only in the current report are notes.
///
/// The library surface is exercised directly by tests/test_benchdiff.cpp;
/// tools/benchdiff.cpp is the thin CLI over it (exit 0 = ok,
/// 1 = regression, 2 = usage/io error).
#pragma once

#include <string>
#include <vector>

#include "util/json.hpp"

namespace fhp::benchdiff {

/// Gate configuration. Defaults match the local workflow: everything on,
/// 1.5x wall-time headroom (well under the 2x an accidental complexity
/// regression typically costs, well over run-to-run min-of-k noise).
struct Options {
  double time_tolerance = 1.5;  ///< fail when current > baseline * tol
  bool gate_time = true;        ///< false: wall-time deltas are advisory
  bool gate_counters = true;    ///< false: counter drift is advisory
  bool gate_quality = true;     ///< false: cut deltas are advisory
};

/// Verdict for one compared metric.
enum class Status {
  kOk,        ///< within tolerance / unchanged
  kImproved,  ///< better than baseline (informational)
  kRegressed, ///< outside tolerance — fails the diff when its gate is on
  kAdvisory,  ///< outside tolerance but its gate is off (or never gated)
};

/// One compared metric, e.g. "series/alg1/seconds.min".
struct Entry {
  std::string metric;
  double baseline = 0.0;
  double current = 0.0;
  Status status = Status::kOk;
  std::string detail;  ///< human-readable delta, e.g. "1.07x"
};

/// Full comparison outcome. `regressed` is true iff any entry carries
/// Status::kRegressed — the CLI's exit-1 condition.
struct DiffResult {
  std::vector<Entry> entries;
  std::vector<std::string> notes;  ///< coverage changes, skipped gates
  bool regressed = false;

  /// The entries that caused failure, in report order.
  [[nodiscard]] std::vector<const Entry*> regressions() const;
};

/// Compares two parsed BENCH_*.json documents. Throws fhp::IoError when a
/// document is structurally not a run report (no "series" object).
[[nodiscard]] DiffResult diff(const json::Value& baseline,
                              const json::Value& current,
                              const Options& options);

/// Renders the comparison as a markdown delta report (table of metrics,
/// then notes) suitable for a CI artifact or PR comment.
[[nodiscard]] std::string to_markdown(const DiffResult& result,
                                      const std::string& baseline_name,
                                      const std::string& current_name);

}  // namespace fhp::benchdiff

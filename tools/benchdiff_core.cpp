#include "benchdiff_core.hpp"

#include <cmath>
#include <cstdio>
#include <string_view>

#include "util/error.hpp"

namespace fhp::benchdiff {

namespace {

std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", v);
  return std::string(buffer);
}

std::string format_ratio(double baseline, double current) {
  if (baseline <= 0.0) return "n/a";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.2fx", current / baseline);
  return std::string(buffer);
}

const char* status_label(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kImproved: return "improved";
    case Status::kRegressed: return "REGRESSED";
    case Status::kAdvisory: return "advisory";
  }
  return "?";
}

/// Pushes one ratio-gated wall-time entry. Minima never regress by
/// accident below the tolerance, so anything above it is flagged; a
/// symmetric improvement margin keeps the report from celebrating noise.
void diff_time(const std::string& label, double base, double cur,
               const Options& options, DiffResult& out) {
  Entry e;
  e.metric = "series/" + label + "/seconds.min";
  e.baseline = base;
  e.current = cur;
  e.detail = format_ratio(base, cur);
  if (base > 0.0 && cur > base * options.time_tolerance) {
    e.status = options.gate_time ? Status::kRegressed : Status::kAdvisory;
  } else if (base > 0.0 && cur < base / options.time_tolerance) {
    e.status = Status::kImproved;
  } else {
    e.status = Status::kOk;
  }
  out.entries.push_back(std::move(e));
}

/// Pushes one exact quality entry (cut medians; deterministic given the
/// seeds the benches hard-code).
void diff_quality(const std::string& label, double base, double cur,
                  const Options& options, DiffResult& out) {
  Entry e;
  e.metric = "series/" + label + "/cut.median";
  e.baseline = base;
  e.current = cur;
  if (cur > base) {
    e.status = options.gate_quality ? Status::kRegressed : Status::kAdvisory;
    e.detail = "+" + format_double(cur - base);
  } else if (cur < base) {
    e.status = Status::kImproved;
    e.detail = format_double(cur - base);
  } else {
    e.status = Status::kOk;
    e.detail = "=";
  }
  out.entries.push_back(std::move(e));
}

void diff_series(const json::Value& baseline, const json::Value& current,
                 const Options& options, DiffResult& out) {
  const json::Value* base_series = baseline.find("series");
  const json::Value* cur_series = current.find("series");
  if (base_series == nullptr || !base_series->is_object() ||
      cur_series == nullptr || !cur_series->is_object()) {
    throw IoError("benchdiff: document is not a run report (no \"series\")");
  }
  for (const auto& [label, base_entry] : base_series->members()) {
    const json::Value* cur_entry = cur_series->find(label);
    if (cur_entry == nullptr) {
      Entry e;
      e.metric = "series/" + label;
      e.status = Status::kRegressed;  // dropped coverage must not pass
      e.detail = "label missing from current report";
      out.entries.push_back(std::move(e));
      continue;
    }
    const json::Value* base_sec = base_entry.find_path({"seconds"});
    const json::Value* cur_sec = cur_entry->find_path({"seconds"});
    if (base_sec != nullptr && base_sec->is_object() && cur_sec != nullptr &&
        cur_sec->is_object()) {
      diff_time(label, base_sec->number_or("min", 0.0),
                cur_sec->number_or("min", 0.0), options, out);
    }
    const json::Value* base_cut = base_entry.find_path({"cut"});
    const json::Value* cur_cut = cur_entry->find_path({"cut"});
    if (base_cut != nullptr && base_cut->is_object() && cur_cut != nullptr &&
        cur_cut->is_object()) {
      diff_quality(label, base_cut->number_or("median", 0.0),
                   cur_cut->number_or("median", 0.0), options, out);
    }
  }
  for (const auto& [label, entry] : cur_series->members()) {
    static_cast<void>(entry);
    if (base_series->find(label) == nullptr) {
      out.notes.push_back("new series label \"" + label +
                          "\" has no baseline (run the baseline-update "
                          "recipe in docs/observability.md)");
    }
  }
}

void diff_counters(const json::Value& baseline, const json::Value& current,
                   const Options& options, DiffResult& out) {
  const json::Value* base_traced =
      baseline.find_path({"env", "tracing_compiled"});
  const json::Value* cur_traced =
      current.find_path({"env", "tracing_compiled"});
  const bool both_traced = base_traced != nullptr && base_traced->is_bool() &&
                           base_traced->as_bool() && cur_traced != nullptr &&
                           cur_traced->is_bool() && cur_traced->as_bool();
  if (!both_traced) {
    out.notes.push_back(
        "counter gate skipped: tracing not compiled into both reports");
    return;
  }
  const json::Value* base_counters =
      baseline.find_path({"trace", "counters"});
  const json::Value* cur_counters = current.find_path({"trace", "counters"});
  if (base_counters == nullptr || !base_counters->is_object() ||
      cur_counters == nullptr || !cur_counters->is_object()) {
    return;
  }
  for (const auto& [name, base_value] : base_counters->members()) {
    if (!base_value.is_number()) continue;
    const json::Value* cur_value = cur_counters->find(name);
    if (cur_value == nullptr || !cur_value->is_number()) {
      out.notes.push_back("counter \"" + name +
                          "\" absent from current report");
      continue;
    }
    // Unchanged counters are the common case; recording hundreds of "="
    // rows would bury the signal, so only drifts become entries.
    if (base_value.as_number() == cur_value->as_number()) continue;
    // workspace/* counters track per-lane allocator growth, which depends
    // on how the OS schedules pool lanes (an idle lane never grows its
    // workspace) — machine- and run-dependent, so advisory like RSS.
    // serve/* and pool/* counters are daemon operational telemetry
    // (connections, batches formed, queue rejections) whose totals depend
    // on client/dispatcher timing. Algorithm-work counters — including
    // cache/{hits,misses}, which single-flight coalescing makes exact
    // (docs/serving.md) — stay on the exact gate.
    const bool scheduling_dependent = name.rfind("workspace/", 0) == 0 ||
                                      name.rfind("serve/", 0) == 0 ||
                                      name.rfind("pool/", 0) == 0;
    Entry e;
    e.metric = "counter/" + name;
    e.baseline = base_value.as_number();
    e.current = cur_value->as_number();
    e.status = options.gate_counters && !scheduling_dependent
                   ? Status::kRegressed
                   : Status::kAdvisory;
    e.detail = (e.current > e.baseline ? "+" : "") +
               format_double(e.current - e.baseline) +
               (scheduling_dependent ? " (advisory: lane-scheduling "
                                       "dependent)"
                                     : " (exact gate)");
    out.entries.push_back(std::move(e));
  }
  for (const auto& [name, value] : cur_counters->members()) {
    static_cast<void>(value);
    if (base_counters->find(name) == nullptr) {
      out.notes.push_back("counter \"" + name + "\" is new (no baseline)");
    }
  }
}

void diff_rss(const json::Value& baseline, const json::Value& current,
              DiffResult& out) {
  const json::Value* base_rss = baseline.find("peak_rss_bytes");
  const json::Value* cur_rss = current.find("peak_rss_bytes");
  if (base_rss == nullptr || !base_rss->is_number() || cur_rss == nullptr ||
      !cur_rss->is_number()) {
    return;
  }
  Entry e;
  e.metric = "peak_rss_bytes";
  e.baseline = base_rss->as_number();
  e.current = cur_rss->as_number();
  e.detail = format_ratio(e.baseline, e.current);
  // Never gated: allocator arenas and kernel page accounting differ
  // across hosts. Large growth is still worth a visible advisory row.
  if (e.baseline > 0.0 && e.current > e.baseline * 1.5) {
    e.status = Status::kAdvisory;
  } else if (e.baseline > 0.0 && e.current < e.baseline / 1.5) {
    e.status = Status::kImproved;
  } else {
    e.status = Status::kOk;
  }
  out.entries.push_back(std::move(e));
}

}  // namespace

std::vector<const Entry*> DiffResult::regressions() const {
  std::vector<const Entry*> out;
  for (const Entry& e : entries) {
    if (e.status == Status::kRegressed) out.push_back(&e);
  }
  return out;
}

DiffResult diff(const json::Value& baseline, const json::Value& current,
                const Options& options) {
  if (!baseline.is_object() || !current.is_object()) {
    throw IoError("benchdiff: run reports must be JSON objects");
  }
  DiffResult out;
  diff_series(baseline, current, options, out);
  diff_counters(baseline, current, options, out);
  diff_rss(baseline, current, out);
  if (!options.gate_time) {
    out.notes.push_back("wall-time gate disabled (--no-time-gate): timing "
                        "rows are advisory");
  }
  for (const Entry& e : out.entries) {
    if (e.status == Status::kRegressed) {
      out.regressed = true;
      break;
    }
  }
  return out;
}

std::string to_markdown(const DiffResult& result,
                        const std::string& baseline_name,
                        const std::string& current_name) {
  std::string md = "# benchdiff: " + current_name + " vs " + baseline_name +
                   "\n\n";
  md += result.regressed
            ? "**Verdict: REGRESSED** — at least one gated metric moved "
              "outside tolerance.\n\n"
            : "**Verdict: ok** — every gated metric within tolerance.\n\n";
  if (!result.entries.empty()) {
    md += "| metric | baseline | current | delta | status |\n";
    md += "|---|---:|---:|---:|---|\n";
    for (const Entry& e : result.entries) {
      md += "| `" + e.metric + "` | " + format_double(e.baseline) + " | " +
            format_double(e.current) + " | " + e.detail + " | " +
            status_label(e.status) + " |\n";
    }
    md += "\n";
  }
  if (!result.notes.empty()) {
    md += "## Notes\n\n";
    for (const std::string& note : result.notes) {
      md += "- " + note + "\n";
    }
    md += "\n";
  }
  return md;
}

}  // namespace fhp::benchdiff

/// \file fhp_serve.cpp
/// The partition daemon (docs/serving.md): binds a unix-domain socket and
/// serves framed-JSON partition requests until a shutdown request arrives
/// (or SIGINT/SIGTERM).
///
///   fhp_serve --socket PATH [options]
///     --socket PATH        unix socket path to listen on (required)
///     --threads N          pool lanes (default FHP_THREADS; 0 = all cores)
///     --queue N            admission bound on queued jobs (default 64)
///     --cache-bytes N      result-cache budget in bytes (default 64 MiB;
///                          0 disables caching)
///     --batch N            max small jobs dispatched per pool batch
///                          (default 8)
///     --max-frame-bytes N  largest admissible request frame (default
///                          64 MiB)
///
/// Exit codes: 0 = clean shutdown, 2 = usage/bind error.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "serve/server.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--threads N] [--queue N] "
               "[--cache-bytes N] [--batch N] [--max-frame-bytes N]\n",
               argv0);
  return 2;
}

fhp::serve::Server* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->shutdown();
}

}  // namespace

int main(int argc, char** argv) {
  fhp::serve::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (arg == "--socket") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      options.socket_path = value;
    } else if (arg == "--threads") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      options.scheduler.threads = std::atoi(value);
    } else if (arg == "--queue") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      options.scheduler.max_queue =
          static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (arg == "--cache-bytes") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      options.scheduler.cache_bytes = std::strtoull(value, nullptr, 10);
    } else if (arg == "--batch") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      options.scheduler.max_batch =
          static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (arg == "--max-frame-bytes") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      options.limits.max_frame_bytes =
          static_cast<std::uint32_t>(std::strtoull(value, nullptr, 10));
    } else {
      return usage(argv[0]);
    }
  }
  if (options.socket_path.empty()) return usage(argv[0]);

  try {
    fhp::serve::Server server(std::move(options));
    server.start();
    g_server = &server;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    std::fprintf(stderr, "fhp_serve: listening on %s\n",
                 server.socket_path().c_str());
    server.wait();
    g_server = nullptr;
    std::fprintf(stderr, "fhp_serve: shut down\n");
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fhp_serve: %s\n", error.what());
    return 2;
  }
}

/// \file fhp_client.cpp
/// Command-line client for the partition daemon (docs/serving.md).
///
///   fhp_client --socket PATH ping
///   fhp_client --socket PATH stats
///   fhp_client --socket PATH shutdown
///   fhp_client --socket PATH partition FILE.hgr [options]
///     --seed N        partitioning seed (default 1)
///     --starts N      multi-start budget (default 50)
///     --engine E      flat | multilevel | auto (default auto)
///     --refiner R     fm | flow | flow+fm (default fm)
///     --deadline-us N latency budget; quality degrades, SLA holds
///     --sides-out F   write the '0'/'1' side string to F
///
/// Exit codes: 0 = ok response, 1 = rejected/error response, 2 = usage or
/// transport failure.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>

#include "serve/client.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket PATH (ping | stats | shutdown | partition FILE "
      "[--seed N] [--starts N] [--engine E] [--refiner R] "
      "[--deadline-us N] [--sides-out F])\n",
      argv0);
  return 2;
}

[[nodiscard]] std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw fhp::IoError("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string command;
  std::string netlist_path;
  std::string sides_out;
  fhp::serve::RequestOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    try {
      if (arg == "--socket") {
        const char* value = next();
        if (value == nullptr) return usage(argv[0]);
        socket_path = value;
      } else if (arg == "--seed") {
        const char* value = next();
        if (value == nullptr) return usage(argv[0]);
        options.seed = std::strtoull(value, nullptr, 10);
      } else if (arg == "--starts") {
        const char* value = next();
        if (value == nullptr) return usage(argv[0]);
        options.starts = std::atoi(value);
      } else if (arg == "--engine") {
        const char* value = next();
        if (value == nullptr) return usage(argv[0]);
        options.engine = fhp::serve::parse_engine(value);
      } else if (arg == "--refiner") {
        const char* value = next();
        if (value == nullptr) return usage(argv[0]);
        options.refiner = fhp::serve::parse_refiner(value);
      } else if (arg == "--deadline-us") {
        const char* value = next();
        if (value == nullptr) return usage(argv[0]);
        options.deadline_us = std::strtoll(value, nullptr, 10);
      } else if (arg == "--sides-out") {
        const char* value = next();
        if (value == nullptr) return usage(argv[0]);
        sides_out = value;
      } else if (command.empty()) {
        command = arg;
      } else if (command == "partition" && netlist_path.empty()) {
        netlist_path = arg;
      } else {
        return usage(argv[0]);
      }
    } catch (const std::exception& error) {
      std::fprintf(stderr, "fhp_client: %s\n", error.what());
      return 2;
    }
  }
  if (socket_path.empty() || command.empty()) return usage(argv[0]);
  if (command == "partition" && netlist_path.empty()) return usage(argv[0]);

  try {
    fhp::serve::Client client;
    client.connect(socket_path);

    fhp::serve::Response response;
    if (command == "ping") {
      response = client.ping();
      std::printf("pong (%lld us)\n",
                  static_cast<long long>(response.latency_us));
    } else if (command == "stats") {
      response = client.stats();
      std::printf("%s\n", response.stats_json.c_str());
    } else if (command == "shutdown") {
      response = client.shutdown_server();
      std::printf("daemon acknowledged shutdown\n");
    } else if (command == "partition") {
      response = client.partition(read_file(netlist_path), options);
      if (response.ok()) {
        std::printf(
            "cut_weight=%lld cut_edges=%lld engine=%s levels=%d "
            "starts_used=%d cached=%d degraded=%d latency_us=%lld\n",
            static_cast<long long>(response.cut_weight),
            static_cast<long long>(response.cut_edges),
            response.engine.c_str(), response.levels, response.starts_used,
            response.cached ? 1 : 0, response.degraded ? 1 : 0,
            static_cast<long long>(response.latency_us));
        if (!sides_out.empty()) {
          std::ofstream out(sides_out, std::ios::binary);
          for (const auto side : response.sides) {
            out.put(side != 0 ? '1' : '0');
          }
          out.put('\n');
          if (!out) throw fhp::IoError("cannot write " + sides_out);
        }
      }
    } else {
      return usage(argv[0]);
    }

    if (!response.ok()) {
      std::fprintf(stderr, "fhp_client: daemon said %s: %s\n",
                   response.status.c_str(), response.error.c_str());
      return 1;
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fhp_client: %s\n", error.what());
    return 2;
  }
}

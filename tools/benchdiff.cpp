/// \file benchdiff.cpp
/// CLI over benchdiff_core: compare a fresh BENCH_*.json against a
/// committed baseline. See docs/observability.md for the workflow.
///
///   benchdiff [options] <baseline.json> <current.json>
///     --report FILE        also write the markdown delta report to FILE
///     --time-tolerance X   wall-time ratio gate (default 1.5)
///     --no-time-gate       wall-time deltas advisory (cross-machine CI)
///     --no-counter-gate    counter drift advisory
///     --no-quality-gate    cut deltas advisory
///
/// Exit codes: 0 = within tolerance, 1 = regression, 2 = usage/io error.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <string>

#include "benchdiff_core.hpp"
#include "util/json.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--report FILE] [--time-tolerance X] "
               "[--no-time-gate] [--no-counter-gate] [--no-quality-gate] "
               "<baseline.json> <current.json>\n",
               argv0);
  return 2;
}

/// Trailing path component, for readable report headings.
std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

int main(int argc, char** argv) {
  fhp::benchdiff::Options options;
  std::string report_path;
  std::string baseline_path;
  std::string current_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--report") {
      if (++i >= argc) return usage(argv[0]);
      report_path = argv[i];
    } else if (arg == "--time-tolerance") {
      if (++i >= argc) return usage(argv[0]);
      options.time_tolerance = std::strtod(argv[i], nullptr);
      if (options.time_tolerance <= 1.0) {
        std::fprintf(stderr, "benchdiff: --time-tolerance must be > 1\n");
        return 2;
      }
    } else if (arg == "--no-time-gate") {
      options.gate_time = false;
    } else if (arg == "--no-counter-gate") {
      options.gate_counters = false;
    } else if (arg == "--no-quality-gate") {
      options.gate_quality = false;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (current_path.empty()) {
      current_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (baseline_path.empty() || current_path.empty()) return usage(argv[0]);

  try {
    const fhp::json::Value baseline = fhp::json::parse_file(baseline_path);
    const fhp::json::Value current = fhp::json::parse_file(current_path);
    const fhp::benchdiff::DiffResult result =
        fhp::benchdiff::diff(baseline, current, options);
    const std::string markdown = fhp::benchdiff::to_markdown(
        result, basename_of(baseline_path), basename_of(current_path));
    std::fputs(markdown.c_str(), stdout);
    if (!report_path.empty()) {
      std::ofstream out(report_path);
      if (!out) {
        std::fprintf(stderr, "benchdiff: cannot write report %s\n",
                     report_path.c_str());
        return 2;
      }
      out << markdown;
    }
    if (result.regressed) {
      for (const fhp::benchdiff::Entry* e : result.regressions()) {
        std::fprintf(stderr, "benchdiff: regression in %s (%s)\n",
                     e->metric.c_str(), e->detail.c_str());
      }
      return 1;
    }
    return 0;
  } catch (const std::exception& err) {
    std::fprintf(stderr, "benchdiff: %s\n", err.what());
    return 2;
  }
}

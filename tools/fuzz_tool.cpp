/// \file fuzz_tool.cpp
/// CLI front end of the differential fuzzing harness (src/validate/).
///
///   fuzz_tool [--instances N] [--seed S] [--starts K]
///             [--generator NAME] [--instance I] [--mutate P]
///
/// Exit status 0 iff every invariant held. A reported failure replays
/// exactly with the same --seed plus the printed --generator/--instance
/// pair (see docs/validation.md).
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "validate/fuzz.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--instances N] [--seed S] [--starts K] [--mutate P]\n"
               "       [--generator circuit|grid|planted|random|structured]\n"
               "       [--instance I]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  fhp::validate::FuzzOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    try {
      if (arg == "--instances") {
        options.instances_per_generator = std::stoi(value());
      } else if (arg == "--seed") {
        options.seed = std::stoull(value());
      } else if (arg == "--starts") {
        options.algorithm_starts = std::stoi(value());
      } else if (arg == "--mutate") {
        options.mutate_probability = std::stod(value());
      } else if (arg == "--generator") {
        options.only_generator = value();
      } else if (arg == "--instance") {
        options.only_instance = std::stoll(value());
      } else {
        usage(argv[0]);
      }
    } catch (const std::exception&) {
      usage(argv[0]);
    }
  }
  if (!options.only_generator.empty()) {
    bool known = false;
    for (const std::string& name : fhp::validate::fuzz_generator_names()) {
      known = known || name == options.only_generator;
    }
    if (!known) usage(argv[0]);
  }

  const fhp::validate::FuzzStats stats = fhp::validate::run_fuzz(options);
  std::cout << stats.to_string() << '\n';
  return stats.ok() ? 0 : 1;
}

#include "util/parallel.hpp"

#include <algorithm>
#include <cstdlib>

namespace fhp {

namespace {

/// Lane id of this thread. Workers stamp theirs once at spawn; the caller
/// of a region is normalized to 0 for the region's duration so that an
/// outer pool's worker driving an inner pool cannot collide with the inner
/// pool's worker of the same index.
thread_local int tl_lane = 0;

/// Saves/normalizes the caller's lane id across a region (exception-safe).
class CallerLaneScope {
 public:
  CallerLaneScope() noexcept : saved_(tl_lane) { tl_lane = 0; }
  ~CallerLaneScope() { tl_lane = saved_; }
  CallerLaneScope(const CallerLaneScope&) = delete;
  CallerLaneScope& operator=(const CallerLaneScope&) = delete;

 private:
  int saved_;
};

}  // namespace

int ThreadPool::current_lane() noexcept { return tl_lane; }

std::size_t ThreadPool::pending_chunks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (job_ == nullptr) return 0;
  return job_chunks_ - std::min(chunks_done_, job_chunks_);
}

bool ThreadPool::busy() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return job_ != nullptr;
}

int resolve_threads(int requested) {
  constexpr int kMaxLanes = 512;
  if (requested >= 1) return std::min(requested, kMaxLanes);
  const char* env = std::getenv("FHP_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const long parsed = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || parsed < 0) return 1;
  if (parsed == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : std::min<int>(static_cast<int>(hw), kMaxLanes);
  }
  return std::min<int>(static_cast<int>(parsed), kMaxLanes);
}

ThreadPool::ThreadPool(int threads) : lanes_(resolve_threads(threads)) {
  workers_.reserve(static_cast<std::size_t>(lanes_ - 1));
  for (int i = 1; i < lanes_; ++i) {
    workers_.emplace_back([this, i] {
      tl_lane = i;
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::run_chunks() {
  for (;;) {
    const std::size_t chunk =
        next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job_chunks_) return;
    if (!failed_.load(std::memory_order_relaxed)) {
      const std::size_t begin = chunk * job_grain_;
      const std::size_t end = std::min(job_n_, begin + job_grain_);
      try {
        (*job_)(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!error_) error_ = std::current_exception();
        failed_.store(true, std::memory_order_relaxed);
      }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (++chunks_done_ == job_chunks_) done_cv_.notify_all();
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || job_id_ != seen; });
      if (stop_) return;
      seen = job_id_;
      ++active_workers_;
    }
    run_chunks();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--active_workers_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n, std::size_t grain,
                              const RangeFn& fn) {
  FHP_REQUIRE(static_cast<bool>(fn), "parallel_for requires a callable");
  if (n == 0) return;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t chunks = (n + grain - 1) / grain;

  if (lanes_ == 1 || chunks == 1) {
    const CallerLaneScope lane_scope;
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
      const std::size_t begin = chunk * grain;
      fn(begin, std::min(n, begin + grain));
    }
    return;
  }
  const CallerLaneScope lane_scope;

  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Late-waking workers of the previous region may still be draining an
    // empty cursor; region state must not change under them.
    done_cv_.wait(lock, [&] { return active_workers_ == 0; });
    job_ = &fn;
    job_n_ = n;
    job_grain_ = grain;
    job_chunks_ = chunks;
    chunks_done_ = 0;
    error_ = nullptr;
    failed_.store(false, std::memory_order_relaxed);
    next_chunk_.store(0, std::memory_order_relaxed);
    ++job_id_;
  }
  work_cv_.notify_all();

  run_chunks();

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock,
                [&] { return chunks_done_ == job_chunks_ &&
                             active_workers_ == 0; });
  job_ = nullptr;
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace fhp

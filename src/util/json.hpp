/// \file json.hpp
/// Minimal read-only JSON parser for the tooling layer (benchdiff, ledger
/// queries). Parses a complete document into an immutable Value tree;
/// object member order is preserved (BENCH_*.json series are recorded in
/// first-measured order and reports should render them the same way).
///
/// Scope: full JSON syntax (objects, arrays, strings with escapes,
/// numbers, true/false/null). Numbers are stored as double — counters in
/// run reports stay well under 2^53, so round-tripping is exact for every
/// value the harness emits. Malformed input throws fhp::IoError with the
/// byte offset of the problem. This is a reader for our own artifacts, not
/// a general-purpose serialization layer: no writer, no mutation.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fhp::json {

/// One JSON value; a tagged tree node.
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }

  /// Value accessors; each requires the matching kind (FHP_REQUIRE).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  /// Array elements in document order.
  [[nodiscard]] const std::vector<Value>& items() const;
  /// Object members in document order (duplicate keys keep every entry).
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& members()
      const;

  /// First member named \p key of an object; nullptr when absent. Requires
  /// an object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// find() chained over several keys, tolerating absence at any level:
  /// nullptr as soon as a key is missing or the node is not an object.
  [[nodiscard]] const Value* find_path(
      std::initializer_list<std::string_view> keys) const;

  /// Number member \p key of an object; \p fallback when absent or not a
  /// number. Requires an object.
  [[nodiscard]] double number_or(std::string_view key, double fallback) const;

 private:
  friend class Parser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> members_;
};

/// Parses \p text as one complete JSON document (trailing whitespace
/// allowed, trailing content not). Throws fhp::IoError on malformed input.
[[nodiscard]] Value parse(std::string_view text);

/// Reads and parses the JSON file at \p path. Throws fhp::IoError when the
/// file cannot be read or does not parse.
[[nodiscard]] Value parse_file(const std::string& path);

}  // namespace fhp::json

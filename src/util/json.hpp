/// \file json.hpp
/// Minimal JSON layer for the tooling and serving paths: a read-only
/// parser (benchdiff, ledger queries, the serving protocol) plus a
/// streaming Writer (run reports, --metrics-out, protocol frames). The
/// reader parses a complete document into an immutable Value tree; object
/// member order is preserved (BENCH_*.json series are recorded in
/// first-measured order and reports should render them the same way).
///
/// Scope: full JSON syntax (objects, arrays, strings with escapes,
/// numbers, true/false/null). Numbers are stored as double — counters in
/// run reports stay well under 2^53, so round-tripping is exact for every
/// value the harness emits. Malformed input throws fhp::IoError with the
/// byte offset of the problem. The Writer emits only what the reader
/// accepts (fuzzed round-trip in tests/test_json.cpp); it is a
/// serializer for our own artifacts, not a general pretty-printer.
#pragma once

#include <concepts>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fhp::json {

/// One JSON value; a tagged tree node.
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }

  /// Value accessors; each requires the matching kind (FHP_REQUIRE).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  /// Array elements in document order.
  [[nodiscard]] const std::vector<Value>& items() const;
  /// Object members in document order (duplicate keys keep every entry).
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& members()
      const;

  /// First member named \p key of an object; nullptr when absent. Requires
  /// an object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// find() chained over several keys, tolerating absence at any level:
  /// nullptr as soon as a key is missing or the node is not an object.
  [[nodiscard]] const Value* find_path(
      std::initializer_list<std::string_view> keys) const;

  /// Number member \p key of an object; \p fallback when absent or not a
  /// number. Requires an object.
  [[nodiscard]] double number_or(std::string_view key, double fallback) const;

 private:
  friend class Parser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> members_;
};

/// Parses \p text as one complete JSON document (trailing whitespace
/// allowed, trailing content not). Throws fhp::IoError on malformed input.
[[nodiscard]] Value parse(std::string_view text);

/// Reads and parses the JSON file at \p path. Throws fhp::IoError when the
/// file cannot be read or does not parse.
[[nodiscard]] Value parse_file(const std::string& path);

/// Escapes \p text for inclusion inside a JSON string literal: quote,
/// backslash and control characters become their escape sequences; all
/// other bytes (including UTF-8 multibyte sequences) pass through.
[[nodiscard]] std::string escape(std::string_view text);

/// Streaming JSON writer: builds one complete document in memory with
/// correct string escaping, number formatting, and nesting bookkeeping
/// (commas and colons are emitted automatically). Misuse — a key outside
/// an object, mismatched end_*, taking an incomplete document — throws
/// fhp::PreconditionError, so emitter bugs fail loudly instead of
/// producing unparseable artifacts.
///
/// Number policy: integers are emitted exactly; doubles use the shortest
/// representation that round-trips through the reader (std::to_chars).
/// JSON has no NaN/Infinity, so non-finite doubles serialize as null —
/// a report with a degenerate statistic must still parse.
///
///   Writer w;
///   w.begin_object();
///   w.member("cut", 42).member("name", "IC2");
///   w.key("series").begin_array().value(1.5).value(2).end_array();
///   w.end_object();
///   std::string doc = std::move(w).take();
class Writer {
 public:
  Writer() = default;

  Writer& begin_object() { return open('{', Frame::kObjectKey); }
  Writer& end_object() { return close('}', Frame::kObjectKey); }
  Writer& begin_array() { return open('[', Frame::kArray); }
  Writer& end_array() { return close(']', Frame::kArray); }

  /// Member name; must be directly inside an object, and must be followed
  /// by exactly one value (or container).
  Writer& key(std::string_view k);

  Writer& value(std::string_view v);
  Writer& value(const char* v) { return value(std::string_view(v)); }
  Writer& value(bool v);
  /// Integral overload (int, long long, VertexId, std::size_t, ...).
  template <std::integral T>
    requires(!std::same_as<T, bool>)
  Writer& value(T v) {
    if constexpr (std::is_signed_v<T>) {
      return integer(static_cast<long long>(v));
    } else {
      return unsigned_integer(static_cast<unsigned long long>(v));
    }
  }
  Writer& value(double v);
  Writer& null();

  /// Splices \p already_json verbatim in value position — the escape
  /// hatch for composing with pre-rendered exporter output (e.g.
  /// obs::to_json). The caller vouches that the text is one well-formed
  /// JSON value.
  Writer& raw(std::string_view already_json);

  /// key(k) + value(v) in one call.
  template <typename T>
  Writer& member(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }
  /// key(k) + raw(v) in one call.
  Writer& member_raw(std::string_view k, std::string_view already_json) {
    key(k);
    return raw(already_json);
  }

  /// Finalizes and returns the document. Requires every container closed
  /// and exactly one root value written.
  [[nodiscard]] std::string take() &&;

 private:
  enum class Frame : std::uint8_t {
    kObjectKey,    ///< inside an object, expecting a key or '}'
    kObjectValue,  ///< inside an object, key written, expecting the value
    kArray,        ///< inside an array, expecting a value or ']'
  };

  /// Bookkeeping before any value (scalar or container open) is emitted.
  void on_value();
  Writer& open(char bracket, Frame frame);
  Writer& close(char bracket, Frame frame);
  Writer& integer(long long v);
  Writer& unsigned_integer(unsigned long long v);

  std::string out_;
  std::vector<Frame> stack_;
  bool root_written_ = false;
  bool comma_pending_ = false;
};

/// Serializes a parsed Value tree back to text (numbers via the Writer's
/// shortest-round-trip policy, member order preserved). parse(dump(v))
/// reproduces v exactly for any tree the reader can produce.
[[nodiscard]] std::string dump(const Value& value);

}  // namespace fhp::json

/// \file table.hpp
/// Minimal ASCII table renderer used by the benchmark harness to print the
/// reproduced paper tables in a shape directly comparable to the original.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fhp {

/// Column-aligned ASCII table. Rows are added as vectors of pre-formatted
/// cells; the renderer right-pads to the widest cell per column.
class AsciiTable {
 public:
  /// Creates a table with the given column headers.
  explicit AsciiTable(std::vector<std::string> headers);

  /// Appends a data row. Short rows are padded with empty cells; rows longer
  /// than the header are a precondition violation.
  void add_row(std::vector<std::string> cells);

  /// Inserts a horizontal separator line before the next row.
  void add_separator();

  /// Renders the table (with a header separator) to a string.
  [[nodiscard]] std::string render() const;

  /// Formats a double with fixed precision — convenience for bench code.
  [[nodiscard]] static std::string num(double value, int precision = 2);

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };
  std::vector<std::string> headers_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

}  // namespace fhp

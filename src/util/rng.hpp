/// \file rng.hpp
/// Deterministic pseudo-random number generation for the fhp library.
///
/// Every stochastic algorithm in this library takes an explicit 64-bit seed
/// so that runs are reproducible bit-for-bit across machines. We implement
/// xoshiro256** seeded through SplitMix64 (the reference recommendation)
/// rather than relying on std::mt19937, whose seeding and distribution
/// implementations are not portable across standard libraries.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/error.hpp"

namespace fhp {

/// SplitMix64 step: used to expand a single seed into xoshiro state, and
/// handy on its own for cheap hash-style mixing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator with convenience sampling helpers.
///
/// Satisfies std::uniform_random_bit_generator, so it can also be plugged
/// into standard algorithms (std::shuffle, distributions) if ever needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator whose entire state is derived from \p seed.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept {
    FHP_DEBUG_ASSERT(bound > 0, "next_below requires positive bound");
    // 128-bit multiply; rejection only in the rare biased band.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the closed range [lo, hi]. Requires lo <= hi.
  [[nodiscard]] std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept {
    FHP_DEBUG_ASSERT(lo <= hi, "next_in requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability \p p (clamped to [0,1]).
  [[nodiscard]] bool next_bool(double p) noexcept { return next_double() < p; }

  /// Geometric sample >= 1 with success probability \p p in (0, 1]:
  /// the number of trials up to and including the first success.
  [[nodiscard]] std::uint64_t next_geometric(double p) noexcept;

  /// Fisher–Yates shuffle of \p items.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = next_below(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Samples \p k distinct values from [0, n) in uniformly random order.
  /// Requires k <= n. O(k) expected time via Floyd's algorithm for small k,
  /// falling back to a shuffle when k is a large fraction of n.
  [[nodiscard]] std::vector<std::uint32_t> sample_distinct(std::uint32_t n,
                                                           std::uint32_t k);

  /// Derives an independent child generator; useful for giving each of a
  /// family of tasks its own stream from one master seed. Note split()
  /// *advances* this generator — sequential use only. For concurrent or
  /// order-independent derivation use fork().
  [[nodiscard]] Rng split() noexcept { return Rng((*this)()); }

  /// Derives the \p stream_id'th child stream of this generator's current
  /// state via SplitMix64 hashing, without advancing (or reading mutable)
  /// parent state.
  ///
  /// Determinism contract: generators with equal state yield bit-equal
  /// children for equal stream ids; children for distinct stream ids are
  /// statistically independent of each other and of the parent's own
  /// output stream; and because fork() is const, a family of parallel
  /// tasks can each derive fork(task_index) from one master generator in
  /// any order — or concurrently — and always reproduce the same streams.
  /// This is the substrate for per-start RNGs in multi-start drivers
  /// (seed the master from the run seed, fork per start index).
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const noexcept {
    std::uint64_t sm = state_[0] ^ (stream_id + 0x9e3779b97f4a7c15ULL);
    std::uint64_t seed = splitmix64(sm);
    sm ^= state_[1];
    seed ^= splitmix64(sm);
    sm ^= state_[2];
    seed ^= splitmix64(sm);
    sm ^= state_[3];
    seed ^= splitmix64(sm);
    return Rng(seed);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace fhp

/// \file mmap.hpp
/// Read-only memory-mapped file access for the streaming parsers.
///
/// A MappedFile exposes a file's bytes as one contiguous string_view
/// without copying them through userspace buffers — the kernel pages data
/// in on demand and `madvise(MADV_SEQUENTIAL)` tells it to read ahead and
/// drop pages behind the scan, so peak RSS stays far below file size even
/// on multi-gigabyte netlists. When mmap is unavailable (exotic
/// filesystems, non-POSIX hosts) the constructor transparently falls back
/// to reading the whole file into an owned buffer; callers never see the
/// difference.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace fhp {

/// Move-only RAII mapping of one file, opened read-only.
/// Throws fhp::IoError when the file cannot be opened or read.
class MappedFile {
 public:
  explicit MappedFile(const std::string& path);
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// The file's bytes. Valid for the lifetime of this object.
  [[nodiscard]] std::string_view view() const noexcept {
    return {static_cast<const char*>(data_), size_};
  }
  /// File size in bytes.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// True when the bytes come from an actual mmap (false: fallback buffer).
  [[nodiscard]] bool is_mapped() const noexcept { return mapped_; }

 private:
  void release() noexcept;

  const void* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::vector<char> fallback_;  ///< owns the bytes when !mapped_
};

}  // namespace fhp

/// \file ids.hpp
/// Shared index types for hypergraphs and graphs.
///
/// Vertices and (hyper)edges are dense 32-bit indices into CSR arrays.
/// 32 bits comfortably covers the netlist sizes this library targets
/// (the largest instance in the reproduced paper has ~3.5k nets) while
/// keeping adjacency arrays cache-friendly.
#pragma once

#include <cstdint>
#include <limits>

namespace fhp {

/// Index of a module (hypergraph vertex) or graph vertex.
using VertexId = std::uint32_t;
/// Index of a signal net (hyperedge) or graph edge.
using EdgeId = std::uint32_t;
/// Additive weight type for modules/nets (e.g. cell area, net criticality).
using Weight = std::int64_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();
/// Sentinel for "no edge".
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

}  // namespace fhp

/// \file ids.hpp
/// Shared index types for hypergraphs and graphs.
///
/// Vertices and (hyper)edges are dense indices into CSR arrays. The index
/// width is a build-time choice (the "64-bit-clean core" of the scale
/// roadmap):
///
///   - default: 32-bit ids — adjacency arrays stay cache-friendly, which
///     is the right trade for every instance below ~2 billion modules;
///   - `-DFHP_INDEX_64=ON`: 64-bit ids — module/net/pin counts above 2^31
///     (million-module shards, synthetic 10M+ stress instances) index
///     without overflow.
///
/// `fhp::Index` is the *signed* arithmetic type of that width (pointer
/// differences, signed loop arithmetic); `VertexId` / `EdgeId` are the
/// unsigned id types actually stored in CSR arrays; `Count` is the
/// unsigned type for derived magnitudes (degrees, edge sizes) that are
/// bounded by an id count. Parsers must reject inputs whose declared
/// counts exceed `kMaxIndexCount` *before* allocating (see
/// docs/formats.md, "Large instances"); everything downstream may then
/// assume ids fit.
///
/// BFS distances deliberately stay 32-bit (`graph/bfs.hpp`): a distance
/// only exceeds 2^32 - 2 on a path of four billion hops, which no
/// realizable netlist produces, and halving the distance-array footprint
/// matters at scale.
#pragma once

#include <cstdint>
#include <limits>
#include <type_traits>

// CMake defines FHP_INDEX_64=0/1 globally; default to the 32-bit core for
// out-of-band compiles (IDE single-file checks).
#ifndef FHP_INDEX_64
#define FHP_INDEX_64 0
#endif

namespace fhp {

#if FHP_INDEX_64
/// Signed index arithmetic type (configurable int32/int64).
using Index = std::int64_t;
#else
using Index = std::int32_t;
#endif

/// Index of a module (hypergraph vertex) or graph vertex.
using VertexId = std::make_unsigned_t<Index>;
/// Index of a signal net (hyperedge) or graph edge.
using EdgeId = std::make_unsigned_t<Index>;
/// Count of ids: degrees, edge sizes, pin tallies per side — anything
/// bounded above by a number of vertices or edges.
using Count = std::make_unsigned_t<Index>;
/// Additive weight type for modules/nets (e.g. cell area, net criticality).
using Weight = std::int64_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();
/// Sentinel for "no edge".
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

/// Largest module/net/pin count a parser may admit: every id in
/// [0, count) must fit the signed Index (so pointer/offset arithmetic
/// never overflows) and stay clear of the unsigned sentinels above.
inline constexpr std::uint64_t kMaxIndexCount =
    static_cast<std::uint64_t>(std::numeric_limits<Index>::max());

}  // namespace fhp

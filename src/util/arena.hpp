/// \file arena.hpp
/// Bump-pointer arena for parse-time scratch.
///
/// The streaming parsers make many short-lived allocations whose lifetime
/// is exactly one parse (line-span indexes, per-record staging). A bump
/// arena turns each of those into a pointer increment, returns
/// *uninitialized* storage (the parser overwrites every slot anyway), and
/// frees everything at once — no per-allocation bookkeeping, no destructor
/// walks, O(1) reset between parses. Restricted to trivially copyable,
/// trivially destructible element types so "free by forgetting" is sound.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace fhp {

/// Growable bump allocator. Blocks double in size as needed and are kept
/// across reset() so a reused arena stops allocating once warmed up.
class Arena {
 public:
  /// \p initial_block_bytes sizes the first block (default 1 MiB).
  explicit Arena(std::size_t initial_block_bytes = std::size_t{1} << 20)
      : next_block_bytes_(initial_block_bytes < kMinBlock ? kMinBlock
                                                          : initial_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Returns uninitialized storage for \p count objects of type T, aligned
  /// for T. The span is valid until reset() or destruction.
  template <typename T>
  [[nodiscard]] std::span<T> alloc(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "Arena storage is never constructed or destroyed");
    if (count == 0) return {};
    const std::size_t bytes = count * sizeof(T);
    void* p = bump(bytes, alignof(T));
    return {static_cast<T*>(p), count};
  }

  /// Invalidates every outstanding allocation; keeps the blocks.
  void reset() noexcept {
    block_ = 0;
    offset_ = 0;
    used_ = 0;
  }

  /// Total bytes handed out since the last reset (diagnostics).
  [[nodiscard]] std::size_t bytes_used() const noexcept { return used_; }

 private:
  static constexpr std::size_t kMinBlock = 4096;

  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* bump(std::size_t bytes, std::size_t align) {
    while (true) {
      if (block_ < blocks_.size()) {
        Block& b = blocks_[block_];
        const std::size_t aligned =
            (offset_ + align - 1) & ~(align - 1);
        if (aligned + bytes <= b.size) {
          offset_ = aligned + bytes;
          used_ += bytes;
          return b.data.get() + aligned;
        }
        // Current block exhausted; move on (its tail is wasted, bounded by
        // the doubling policy).
        ++block_;
        offset_ = 0;
        continue;
      }
      // Need a new block big enough for this request.
      std::size_t size = next_block_bytes_;
      while (size < bytes + align) size *= 2;
      next_block_bytes_ = size * 2;
      blocks_.push_back(
          Block{std::make_unique<std::byte[]>(size), size});
    }
  }

  std::vector<Block> blocks_;
  std::size_t block_ = 0;             ///< index of the active block
  std::size_t offset_ = 0;            ///< bump cursor within the active block
  std::size_t next_block_bytes_;      ///< size of the next block to allocate
  std::size_t used_ = 0;
};

}  // namespace fhp

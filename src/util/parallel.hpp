/// \file parallel.hpp
/// Parallel execution substrate: a fixed-size thread pool with
/// parallel_for / parallel_map primitives (see docs/parallelism.md).
///
/// Design constraints:
///   - *Deterministic decomposition.* Chunk boundaries depend only on
///     (n, grain), never on the thread count or on scheduling, so
///     chunk-indexed outputs can be merged in chunk order and reproduce
///     bit-identical results at any FHP_THREADS setting.
///   - *No work stealing, no futures.* One blocking parallel region at a
///     time per pool; chunks are claimed from a single atomic cursor and
///     the calling thread participates, so a pool of N lanes runs N - 1
///     workers plus the caller.
///   - *Serial fallback.* thread_count() == 1 spawns no workers and runs
///     every region inline on the caller with zero synchronization, which
///     keeps the default (serial) configuration on the historical code
///     path.
///   - *Exception propagation.* The first exception thrown by any chunk
///     is captured and rethrown on the calling thread once the region
///     drains; chunks not yet started are skipped. The pool stays usable
///     afterwards.
///
/// parallel_for is NOT reentrant: submitting a region from inside a
/// region of the same pool deadlocks. Use a separate pool (or restructure)
/// for nested parallelism.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace fhp {

/// Lane-count selection shared by every parallel entry point.
struct ParallelOptions {
  /// Execution lanes: 1 = serial, N > 1 = pool of N lanes, 0 = resolve
  /// from the FHP_THREADS environment variable (unset/empty/invalid -> 1,
  /// i.e. the default stays serial; "0" -> all hardware threads).
  int threads = 0;
};

/// Resolves a requested lane count. \p requested >= 1 wins as-is; 0 reads
/// FHP_THREADS with the semantics documented on ParallelOptions::threads.
/// The result is clamped to [1, 512].
[[nodiscard]] int resolve_threads(int requested);

/// Fixed-size blocking thread pool. Workers are spawned once in the
/// constructor and live until destruction; between regions they sleep on a
/// condition variable.
class ThreadPool {
 public:
  /// Creates a pool with resolve_threads(threads) lanes. One lane means
  /// no worker threads at all (pure serial execution).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (worker threads + the calling thread); >= 1.
  [[nodiscard]] int thread_count() const noexcept { return lanes_; }

  /// Alias of thread_count() under the name the serving layer's `pool/`
  /// gauges use (docs/serving.md).
  [[nodiscard]] int lane_count() const noexcept { return lanes_; }

  /// Chunks of the currently executing region not yet completed; 0 when
  /// the pool is quiescent. Takes the pool mutex briefly, so it is safe
  /// to sample from any thread (the daemon's admission control and the
  /// benches publish it as the `pool/pending_chunks` gauge) — but it is a
  /// snapshot, not a synchronization primitive: by the time the caller
  /// acts on it the region may have drained. Regions that run inline on
  /// the serial fast path (one lane, or a single chunk) never appear
  /// here — instrumenting them would put a lock on the serial hot path.
  [[nodiscard]] std::size_t pending_chunks() const;

  /// True while a parallel region is executing. Same snapshot caveat as
  /// pending_chunks().
  [[nodiscard]] bool busy() const;

  /// Lane index of the calling thread: pool workers are 1..N-1 (stable for
  /// the worker's lifetime), the thread driving a parallel_for is 0 while
  /// the region runs (even if it is itself a worker of an *outer* pool),
  /// and threads outside any region read 0. Within one region every
  /// executing thread therefore sees a distinct value in [0, N) — the
  /// index used to hand each lane its own Workspace (docs/performance.md).
  [[nodiscard]] static int current_lane() noexcept;

  using RangeFn = std::function<void(std::size_t, std::size_t)>;

  /// Runs fn(begin, end) over every chunk [k*grain, min(n, (k+1)*grain))
  /// of [0, n). Chunks are disjoint, cover [0, n) exactly once, and their
  /// boundaries depend only on (n, grain) — never on the lane count.
  /// A grain of 0 is treated as 1. Blocks until the region drains;
  /// rethrows the first chunk exception.
  void parallel_for(std::size_t n, std::size_t grain, const RangeFn& fn);

  /// Maps fn(i) over [0, n): result[i] = fn(i). T must be
  /// default-constructible; each index is its own chunk so heavy items
  /// load-balance across lanes. Output order is by index, independent of
  /// the lane count.
  template <typename T, typename Fn>
  [[nodiscard]] std::vector<T> parallel_map(std::size_t n, Fn&& fn) {
    std::vector<T> results(n);
    parallel_for(n, 1, [&results, &fn](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) results[i] = fn(i);
    });
    return results;
  }

 private:
  void worker_loop();
  /// Claims and executes chunks of the current region until exhausted.
  void run_chunks();

  const int lanes_;
  std::vector<std::thread> workers_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  ///< wakes workers for a region/shutdown
  std::condition_variable done_cv_;  ///< wakes the caller when chunks drain

  // Region state; written by parallel_for under mutex_ while the pool is
  // quiescent, read by engaged workers without locks (publication happens
  // through the mutex at engagement time).
  const RangeFn* job_ = nullptr;
  std::size_t job_n_ = 0;
  std::size_t job_grain_ = 1;
  std::size_t job_chunks_ = 0;
  std::uint64_t job_id_ = 0;  ///< bumped per region so workers engage once

  std::atomic<std::size_t> next_chunk_{0};
  std::atomic<bool> failed_{false};
  std::size_t chunks_done_ = 0;   ///< guarded by mutex_
  int active_workers_ = 0;        ///< workers inside run_chunks (mutex_)
  std::exception_ptr error_;      ///< first chunk exception (mutex_)
  bool stop_ = false;             ///< guarded by mutex_
};

}  // namespace fhp

/// \file timer.hpp
/// Wall-clock timing helpers used by the benchmark harness and the
/// CPU-ratio rows of the reproduced tables.
#pragma once

#include <chrono>

namespace fhp {

/// Simple monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fhp

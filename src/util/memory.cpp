#include "util/memory.hpp"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace fhp {

namespace {

/// Reads the "<key>:  <n> kB" line of /proc/self/status; 0 when absent
/// (non-Linux, or a kernel without the field).
std::uint64_t proc_status_kb(const char* key) {
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return 0;
  const std::size_t key_len = std::strlen(key);
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      unsigned long long value = 0;
      if (std::sscanf(line + key_len + 1, " %llu", &value) == 1) {
        kb = value;
      }
      break;
    }
  }
  std::fclose(file);
  return kb;
}

std::uint64_t getrusage_peak_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // ru_maxrss is kilobytes on Linux, bytes on macOS.
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024ULL;
#endif
#else
  return 0;
#endif
}

}  // namespace

std::uint64_t current_rss_bytes() { return proc_status_kb("VmRSS") * 1024ULL; }

std::uint64_t peak_rss_bytes() {
  const std::uint64_t hwm = proc_status_kb("VmHWM") * 1024ULL;
  return hwm != 0 ? hwm : getrusage_peak_bytes();
}

}  // namespace fhp

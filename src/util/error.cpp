#include "util/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace fhp::detail {

void throw_precondition(const char* expr, const char* file, int line,
                        const std::string& msg) {
  throw PreconditionError(std::string("precondition failed: ") + expr + " at " +
                          file + ":" + std::to_string(line) + ": " + msg);
}

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& msg) {
  std::fprintf(stderr, "fhp internal invariant violated: %s at %s:%d: %s\n",
               expr, file, line, msg.c_str());
  std::abort();
}

}  // namespace fhp::detail

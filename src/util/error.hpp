/// \file error.hpp
/// Precondition / invariant checking for the fhp library.
///
/// Two severities are distinguished, following the library-wide convention
/// (see DESIGN.md §6):
///   - FHP_REQUIRE: a *precondition* on a public API. Violations are caller
///     bugs or bad input; they throw fhp::PreconditionError so that callers
///     (tools, tests) can recover and report.
///   - FHP_ASSERT: an *internal invariant*. Violations are library bugs;
///     they abort with a diagnostic (and are checked in all build types —
///     the algorithms here are cheap enough that we never trade the checks
///     for speed in inner loops; hot paths use FHP_DEBUG_ASSERT).
#pragma once

#include <stdexcept>
#include <string>

namespace fhp {

/// Thrown when a documented precondition of a public function is violated.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown on malformed external input (file parsing, etc.).
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] void throw_precondition(const char* expr, const char* file,
                                     int line, const std::string& msg);
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace fhp

/// Check a public-API precondition; throws fhp::PreconditionError on failure.
#define FHP_REQUIRE(expr, msg)                                          \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::fhp::detail::throw_precondition(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                   \
  } while (false)

/// Check an internal invariant; aborts with a diagnostic on failure.
#define FHP_ASSERT(expr, msg)                                         \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::fhp::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));   \
    }                                                                 \
  } while (false)

/// Invariant check compiled out in NDEBUG builds (for hot inner loops).
#ifdef NDEBUG
#define FHP_DEBUG_ASSERT(expr, msg) \
  do {                              \
  } while (false)
#else
#define FHP_DEBUG_ASSERT(expr, msg) FHP_ASSERT(expr, msg)
#endif

/// \file stats.hpp
/// Small descriptive-statistics helpers shared by generators, benches and
/// the experiment harness (means, quantiles, histogram summaries, and a
/// least-squares growth-exponent fit used by the O(n^2) scaling bench).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace fhp {

/// Running mean/variance accumulator (Welford). Numerically stable.
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Number of observations added so far.
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  /// Mean of the observations (0 when empty).
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance (0 with fewer than two observations).
  [[nodiscard]] double variance() const noexcept;
  /// Sample standard deviation.
  [[nodiscard]] double stddev() const noexcept;
  /// Smallest observation seen (+inf when empty).
  [[nodiscard]] double min() const noexcept { return min_; }
  /// Largest observation seen (-inf when empty).
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean of \p xs; 0 when empty.
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Sample standard deviation of \p xs; 0 with fewer than two values.
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// Linear-interpolation quantile (q in [0,1]) of a copy of \p xs.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Median shortcut.
[[nodiscard]] double median(std::span<const double> xs);

/// Fits y = a * x^b by least squares in log-log space and returns the
/// exponent b. Used to verify the O(n^2) runtime claim empirically.
/// Requires xs.size() == ys.size() >= 2 and strictly positive values.
[[nodiscard]] double fit_growth_exponent(std::span<const double> xs,
                                         std::span<const double> ys);

/// Builds a fixed-width integer histogram over [lo, hi] with \p bins bins;
/// values outside the range are clamped into the end bins.
[[nodiscard]] std::vector<std::size_t> histogram(std::span<const double> xs,
                                                 double lo, double hi,
                                                 std::size_t bins);

}  // namespace fhp

#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace fhp::json {

bool Value::as_bool() const {
  FHP_REQUIRE(kind_ == Kind::kBool, "JSON value is not a bool");
  return bool_;
}

double Value::as_number() const {
  FHP_REQUIRE(kind_ == Kind::kNumber, "JSON value is not a number");
  return number_;
}

const std::string& Value::as_string() const {
  FHP_REQUIRE(kind_ == Kind::kString, "JSON value is not a string");
  return string_;
}

const std::vector<Value>& Value::items() const {
  FHP_REQUIRE(kind_ == Kind::kArray, "JSON value is not an array");
  return items_;
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
  FHP_REQUIRE(kind_ == Kind::kObject, "JSON value is not an object");
  return members_;
}

const Value* Value::find(std::string_view key) const {
  FHP_REQUIRE(kind_ == Kind::kObject, "JSON value is not an object");
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const Value* Value::find_path(
    std::initializer_list<std::string_view> keys) const {
  const Value* node = this;
  for (const std::string_view key : keys) {
    if (node == nullptr || node->kind_ != Kind::kObject) return nullptr;
    node = node->find(key);
  }
  return node;
}

double Value::number_or(std::string_view key, double fallback) const {
  const Value* member = find(key);
  return member != nullptr && member->is_number() ? member->number_
                                                  : fallback;
}

/// Recursive-descent parser over the input span. Depth is bounded so a
/// pathological "[[[[..." input fails cleanly instead of overflowing the
/// stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value root = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return root;
  }

 private:
  static constexpr int kMaxDepth = 128;

  [[noreturn]] void fail(const std::string& what) const {
    throw IoError("JSON parse error at byte " + std::to_string(pos_) + ": " +
                  what);
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_whitespace() {
    while (!at_end() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                         peek() == '\r')) {
      ++pos_;
    }
  }

  void expect(char c) {
    if (at_end() || peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_whitespace();
    if (at_end()) fail("unexpected end of input");
    Value out;
    switch (peek()) {
      case '{':
        parse_object(out, depth);
        break;
      case '[':
        parse_array(out, depth);
        break;
      case '"':
        out.kind_ = Value::Kind::kString;
        out.string_ = parse_string();
        break;
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        out.kind_ = Value::Kind::kBool;
        out.bool_ = true;
        break;
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        out.kind_ = Value::Kind::kBool;
        out.bool_ = false;
        break;
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        out.kind_ = Value::Kind::kNull;
        break;
      default:
        out.kind_ = Value::Kind::kNumber;
        out.number_ = parse_number();
        break;
    }
    return out;
  }

  void parse_object(Value& out, int depth) {
    out.kind_ = Value::Kind::kObject;
    expect('{');
    skip_whitespace();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      out.members_.emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      if (at_end()) fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return;
    }
  }

  void parse_array(Value& out, int depth) {
    out.kind_ = Value::Kind::kArray;
    expect('[');
    skip_whitespace();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return;
    }
    while (true) {
      out.items_.push_back(parse_value(depth + 1));
      skip_whitespace();
      if (at_end()) fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (at_end()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out += esc;
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u':
          append_utf8(out, parse_hex4());
          break;
        default:
          fail("invalid escape");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (at_end()) fail("unterminated \\u escape");
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape digit");
      }
    }
    return code;
  }

  /// Encodes a BMP code point as UTF-8. Surrogate halves (which our own
  /// emitters never produce) degrade to U+FFFD rather than failing.
  static void append_utf8(std::string& out, unsigned code) {
    if (code >= 0xD800 && code <= 0xDFFF) code = 0xFFFD;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    while (!at_end() && ((peek() >= '0' && peek() <= '9') || peek() == '.' ||
                         peek() == 'e' || peek() == 'E' || peek() == '+' ||
                         peek() == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      pos_ = start;
      fail("invalid number");
    }
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Value parse(std::string_view text) { return Parser(text).run(); }

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Writer::on_value() {
  if (stack_.empty()) {
    FHP_REQUIRE(!root_written_,
                "JSON writer: only one root value per document");
    root_written_ = true;
    return;
  }
  switch (stack_.back()) {
    case Frame::kObjectKey:
      FHP_REQUIRE(false, "JSON writer: object member needs key() first");
      break;
    case Frame::kObjectValue:
      // The key already placed the comma and colon; the value completes
      // the member and the object goes back to expecting a key.
      stack_.back() = Frame::kObjectKey;
      break;
    case Frame::kArray:
      if (comma_pending_) out_ += ", ";
      break;
  }
  comma_pending_ = false;
}

Writer& Writer::open(char bracket, Frame frame) {
  on_value();
  out_ += bracket;
  stack_.push_back(frame);
  comma_pending_ = false;
  return *this;
}

Writer& Writer::close(char bracket, Frame frame) {
  FHP_REQUIRE(!stack_.empty() && stack_.back() == frame,
              "JSON writer: mismatched container close");
  stack_.pop_back();
  out_ += bracket;
  comma_pending_ = true;
  return *this;
}

Writer& Writer::key(std::string_view k) {
  FHP_REQUIRE(!stack_.empty() && stack_.back() == Frame::kObjectKey,
              "JSON writer: key() only directly inside an object");
  if (comma_pending_) out_ += ", ";
  comma_pending_ = false;
  out_ += '"';
  out_ += escape(k);
  out_ += "\": ";
  stack_.back() = Frame::kObjectValue;
  return *this;
}

Writer& Writer::value(std::string_view v) {
  on_value();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  comma_pending_ = true;
  return *this;
}

Writer& Writer::value(bool v) {
  on_value();
  out_ += v ? "true" : "false";
  comma_pending_ = true;
  return *this;
}

Writer& Writer::integer(long long v) {
  on_value();
  out_ += std::to_string(v);
  comma_pending_ = true;
  return *this;
}

Writer& Writer::unsigned_integer(unsigned long long v) {
  on_value();
  out_ += std::to_string(v);
  comma_pending_ = true;
  return *this;
}

Writer& Writer::value(double v) {
  on_value();
  if (!std::isfinite(v)) {
    // JSON has no NaN/Infinity; a degenerate statistic must not make the
    // whole artifact unparseable.
    out_ += "null";
  } else {
    char buffer[32];
    const auto [end, ec] =
        std::to_chars(buffer, buffer + sizeof(buffer), v);
    FHP_ASSERT(ec == std::errc(), "double formatting cannot fail");
    out_.append(buffer, end);
  }
  comma_pending_ = true;
  return *this;
}

Writer& Writer::null() {
  on_value();
  out_ += "null";
  comma_pending_ = true;
  return *this;
}

Writer& Writer::raw(std::string_view already_json) {
  on_value();
  out_ += already_json;
  comma_pending_ = true;
  return *this;
}

std::string Writer::take() && {
  FHP_REQUIRE(stack_.empty() && root_written_,
              "JSON writer: document incomplete");
  return std::move(out_);
}

namespace {

void dump_value(Writer& w, const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kNull:
      w.null();
      break;
    case Value::Kind::kBool:
      w.value(v.as_bool());
      break;
    case Value::Kind::kNumber:
      w.value(v.as_number());
      break;
    case Value::Kind::kString:
      w.value(v.as_string());
      break;
    case Value::Kind::kArray:
      w.begin_array();
      for (const Value& item : v.items()) dump_value(w, item);
      w.end_array();
      break;
    case Value::Kind::kObject:
      w.begin_object();
      for (const auto& [key, member] : v.members()) {
        w.key(key);
        dump_value(w, member);
      }
      w.end_object();
      break;
  }
}

}  // namespace

std::string dump(const Value& value) {
  Writer w;
  dump_value(w, value);
  return std::move(w).take();
}

Value parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return parse(buffer.str());
  } catch (const IoError& e) {
    throw IoError(path + ": " + e.what());
  }
}

}  // namespace fhp::json

#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace fhp {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double quantile(std::span<const double> xs, double q) {
  FHP_REQUIRE(!xs.empty(), "quantile of an empty sample");
  FHP_REQUIRE(q >= 0.0 && q <= 1.0, "quantile order must be in [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double fit_growth_exponent(std::span<const double> xs,
                           std::span<const double> ys) {
  FHP_REQUIRE(xs.size() == ys.size(), "mismatched sample sizes");
  FHP_REQUIRE(xs.size() >= 2, "need at least two points to fit an exponent");
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const auto n = static_cast<double>(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    FHP_REQUIRE(xs[i] > 0.0 && ys[i] > 0.0,
                "growth fit requires positive samples");
    const double lx = std::log(xs[i]);
    const double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = n * sxx - sx * sx;
  FHP_REQUIRE(std::abs(denom) > 1e-12, "degenerate x values in growth fit");
  return (n * sxy - sx * sy) / denom;
}

std::vector<std::size_t> histogram(std::span<const double> xs, double lo,
                                   double hi, std::size_t bins) {
  FHP_REQUIRE(bins > 0, "histogram needs at least one bin");
  FHP_REQUIRE(hi > lo, "histogram range must be nonempty");
  std::vector<std::size_t> counts(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  const auto last = static_cast<double>(bins - 1);
  for (double x : xs) {
    FHP_REQUIRE(std::isfinite(x), "histogram sample must be finite");
    // Clamp in the floating domain: casting a non-representable double
    // (NaN, +-inf, or a huge finite quotient) to an integer is UB.
    const double pos = std::clamp((x - lo) / width, 0.0, last);
    ++counts[static_cast<std::size_t>(pos)];
  }
  return counts;
}

}  // namespace fhp

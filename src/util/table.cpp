#include "util/table.hpp"

#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace fhp {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  FHP_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  FHP_REQUIRE(cells.size() <= headers_.size(),
              "row has more cells than the table has columns");
  cells.resize(headers_.size());
  rows_.push_back(Row{std::move(cells), pending_separator_});
  pending_separator_ = false;
}

void AsciiTable::add_separator() { pending_separator_ = true; }

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto rule = [&widths]() {
    std::string line = "+";
    for (std::size_t w : widths) {
      line += std::string(w + 2, '-');
      line += "+";
    }
    line += "\n";
    return line;
  };
  auto emit_row = [&widths](const std::vector<std::string>& cells) {
    std::ostringstream os;
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " |";
    }
    os << '\n';
    return os.str();
  };

  std::string out = rule();
  out += emit_row(headers_);
  out += rule();
  for (const Row& row : rows_) {
    if (row.separator_before) out += rule();
    out += emit_row(row.cells);
  }
  out += rule();
  return out;
}

std::string AsciiTable::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace fhp

#include "util/rng.hpp"

#include <cmath>
#include <numeric>
#include <unordered_set>

namespace fhp {

std::uint64_t Rng::next_geometric(double p) noexcept {
  FHP_DEBUG_ASSERT(p > 0.0 && p <= 1.0, "geometric parameter out of range");
  if (p >= 1.0) return 1;
  // Inversion method: ceil(log(U) / log(1-p)) with U in (0,1).
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  const double value = std::ceil(std::log(u) / std::log1p(-p));
  if (value < 1.0) return 1;
  if (value > 1e18) return static_cast<std::uint64_t>(1e18);
  return static_cast<std::uint64_t>(value);
}

std::vector<std::uint32_t> Rng::sample_distinct(std::uint32_t n,
                                                std::uint32_t k) {
  FHP_REQUIRE(k <= n, "cannot sample " + std::to_string(k) +
                          " distinct values from a universe of " +
                          std::to_string(n));
  std::vector<std::uint32_t> result;
  result.reserve(k);
  if (k == 0) return result;
  // For dense requests a shuffle of the whole universe is cheaper and has
  // no hash-set overhead.
  if (k > n / 2) {
    std::vector<std::uint32_t> all(n);
    std::iota(all.begin(), all.end(), 0U);
    shuffle(all);
    all.resize(k);
    return all;
  }
  // Floyd's algorithm, then a final shuffle to make the *order* uniform too.
  std::unordered_set<std::uint32_t> seen;
  seen.reserve(k * 2);
  for (std::uint32_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::uint32_t>(next_below(j + 1));
    if (seen.insert(t).second) {
      result.push_back(t);
    } else {
      seen.insert(j);
      result.push_back(j);
    }
  }
  shuffle(result);
  return result;
}

}  // namespace fhp

/// \file memory.hpp
/// Process memory accounting: current and peak resident-set size.
///
/// The scale roadmap (million-module ingest, partition-as-a-service) gates
/// on peak RSS the same way the kernel work gates on edge scans, so the
/// sampler lives in util where both the observability layer and the bench
/// harness can reach it. On Linux the values come from /proc/self/status
/// (VmRSS / VmHWM, page-granular and cheap to read); elsewhere peak RSS
/// falls back to getrusage(RUSAGE_SELF) and current RSS reads 0 when no
/// source exists. Both functions return 0 rather than failing when the
/// platform offers nothing — callers treat 0 as "unavailable".
#pragma once

#include <cstdint>

namespace fhp {

/// Bytes of the process's current resident set; 0 when unavailable.
[[nodiscard]] std::uint64_t current_rss_bytes();

/// Bytes of the process's peak (high-water-mark) resident set; 0 when
/// unavailable. Monotone over the process lifetime.
[[nodiscard]] std::uint64_t peak_rss_bytes();

}  // namespace fhp

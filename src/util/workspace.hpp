/// \file workspace.hpp
/// Reusable per-lane scratch memory for the Algorithm I hot loop.
///
/// The per-start kernel (BFS sweeps, bidirectional cut, boundary
/// extraction, completion) historically allocated its visited/distance
/// arrays and frontier/queue/bucket buffers afresh on every call — dozens
/// of allocations per start, run 50 times per instance. A Workspace owns
/// those buffers once per execution lane and hands them out allocation-free
/// after warm-up:
///
///   - EpochArray gives O(1) logical clears: instead of `assign(n, init)`
///     (an O(n) write per call), every element carries a generation stamp
///     and a clear just bumps the workspace generation — stale stamps read
///     as the default value.
///   - Plain buffers (queues, frontiers, degree/bucket storage) are
///     `clear()`ed between uses, which keeps their capacity.
///
/// Ownership contract (see docs/performance.md): a Workspace is
/// single-threaded state. Parallel callers keep one Workspace per
/// execution lane, indexed by ThreadPool::current_lane(), so lanes never
/// share scratch. Workspace contents never influence results — the
/// epoch-stamped reads are semantically identical to freshly-initialized
/// arrays — so reuse preserves bit-identical outputs at any lane count.
///
/// Allocation accounting: every buffer growth is counted (events and
/// bytes) so benches can compare allocate-per-call against per-lane reuse
/// via the obs layer without util depending on obs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/ids.hpp"

namespace fhp {

/// Tally of buffer growths, shared by a Workspace and its epoch arrays.
struct WorkspaceStats {
  std::size_t grow_events = 0;     ///< number of underlying (re)allocations
  std::size_t allocated_bytes = 0;  ///< cumulative bytes those growths added

  void note_grow(std::size_t bytes) noexcept {
    ++grow_events;
    allocated_bytes += bytes;
  }
};

/// Fixed-default array with O(1) clear via generation stamps.
///
/// reset(n) starts a new epoch over [0, n): every slot logically holds the
/// default value until set(). Shrinking then growing across epochs is safe:
/// slots beyond an epoch's size keep stamps from older generations, which
/// can never equal a newer generation (the 64-bit counter does not wrap in
/// any realistic run).
template <typename T>
class EpochArray {
 public:
  explicit EpochArray(WorkspaceStats* stats = nullptr) noexcept
      : stats_(stats) {}

  /// Binds the accounting sink (used by Workspace; harmless to re-bind).
  void bind_stats(WorkspaceStats* stats) noexcept { stats_ = stats; }

  /// Starts a new epoch of logical size \p n with every slot = \p init.
  /// O(1) unless the backing store must grow.
  void reset(std::size_t n, T init) {
    if (n > values_.size()) {
      const std::size_t grown =
          (n - values_.size()) * (sizeof(T) + sizeof(std::uint64_t));
      if (stats_ != nullptr) stats_->note_grow(grown);
      values_.resize(n);
      stamp_.resize(n, 0);
    }
    init_ = init;
    size_ = n;
    ++generation_;
  }

  /// Logical size of the current epoch.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// True iff slot \p i was written this epoch.
  [[nodiscard]] bool is_set(std::size_t i) const noexcept {
    return stamp_[i] == generation_;
  }

  /// Value of slot \p i (the epoch default when unwritten).
  [[nodiscard]] T get(std::size_t i) const noexcept {
    return stamp_[i] == generation_ ? values_[i] : init_;
  }

  /// Writes slot \p i for this epoch.
  void set(std::size_t i, T value) noexcept {
    values_[i] = value;
    stamp_[i] = generation_;
  }

 private:
  std::vector<T> values_;
  std::vector<std::uint64_t> stamp_;
  std::uint64_t generation_ = 0;
  std::size_t size_ = 0;
  T init_{};
  WorkspaceStats* stats_ = nullptr;
};

/// Per-lane scratch bundle for the graph/partitioning hot paths. Members
/// are plain buffers on purpose: callers clear() and refill them, and the
/// named roles document the conventional users (several callees may share
/// a buffer as long as their lifetimes do not overlap within one call
/// chain — the call sites in bfs.cpp / boundary.cpp / complete_cut.cpp
/// keep to disjoint members).
class Workspace {
 public:
  Workspace() {
    distance.bind_stats(&stats_);
    mark.bind_stats(&stats_);
    edge_mark.bind_stats(&stats_);
  }
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  // ---- epoch-stamped arrays (O(1) clear) ----
  EpochArray<std::uint32_t> distance;  ///< BFS distance labels
  EpochArray<std::uint8_t> mark;       ///< generic visited/side marks
  EpochArray<std::uint64_t> edge_mark;  ///< per-edge dedup stamps

  // ---- reusable plain buffers (capacity persists across uses) ----
  std::vector<VertexId> queue;        ///< BFS current-level frontier
  std::vector<VertexId> frontier[2];  ///< bidirectional BFS frontiers
  std::vector<VertexId> next;         ///< next-level staging buffer
  /// Frontier membership bitset for bottom-up BFS steps: one bit per
  /// vertex, rebuilt from the flat frontier array at each bottom-up level
  /// (an O(n/64) clear + O(|frontier|) fill).
  std::vector<std::uint64_t> frontier_bits;
  std::vector<VertexId> order;        ///< sort scratch (balance passes)
  std::vector<std::uint32_t> degree;  ///< bucket-queue degree array
  std::vector<std::vector<VertexId>> buckets;  ///< bucket-queue storage
  std::vector<std::uint8_t> flags;    ///< liveness/membership bytes
  std::vector<std::pair<VertexId, VertexId>> pairs;  ///< edge-list scratch

  /// Grows \p v to capacity >= \p n (content untouched), with accounting.
  template <typename T>
  void ensure_capacity(std::vector<T>& v, std::size_t n) {
    if (v.capacity() < n) {
      stats_.note_grow((n - v.capacity()) * sizeof(T));
      v.reserve(n);
    }
  }

  /// clear() + accounted reserve: the usual prologue for a plain buffer.
  template <typename T>
  void reset_buffer(std::vector<T>& v, std::size_t n) {
    v.clear();
    ensure_capacity(v, n);
  }

  /// Number of underlying buffer growths since construction. A warmed-up
  /// workspace stops growing: steady-state hot-loop iterations add zero.
  [[nodiscard]] std::size_t grow_events() const noexcept {
    return stats_.grow_events;
  }

  /// Cumulative bytes added by those growths — for a long-lived workspace
  /// this tracks the high-water scratch footprint.
  [[nodiscard]] std::size_t allocated_bytes() const noexcept {
    return stats_.allocated_bytes;
  }

 private:
  WorkspaceStats stats_;
};

}  // namespace fhp

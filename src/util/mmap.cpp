#include "util/mmap.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/error.hpp"

namespace fhp {

namespace {

/// Stable non-null byte for zero-length views.
constexpr char kEmpty[] = "";

}  // namespace

MappedFile::MappedFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw IoError("cannot open '" + path + "' for reading: " +
                  std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw IoError("cannot stat '" + path + "': " + std::strerror(err));
  }
  if (S_ISDIR(st.st_mode)) {
    ::close(fd);
    throw IoError("'" + path + "' is a directory, not a file");
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    data_ = kEmpty;
    size_ = 0;
    return;
  }

  void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  if (mapping != MAP_FAILED) {
    // Advisory only; ignore failures (e.g. on filesystems without readahead).
    (void)::madvise(mapping, size, MADV_SEQUENTIAL);
    ::close(fd);
    data_ = mapping;
    size_ = size;
    mapped_ = true;
    return;
  }

  // Fallback: pipes, some network/pseudo filesystems. Read it all.
  fallback_.resize(size);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, fallback_.data() + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      throw IoError("read failed on '" + path + "': " + std::strerror(err));
    }
    if (n == 0) break;  // file shrank under us; expose what we got
    got += static_cast<std::size_t>(n);
  }
  ::close(fd);
  fallback_.resize(got);
  data_ = fallback_.empty() ? kEmpty : fallback_.data();
  size_ = fallback_.size();
}

MappedFile::~MappedFile() { release(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      fallback_(std::move(other.fallback_)) {
  if (!mapped_ && !fallback_.empty()) data_ = fallback_.data();
  other.data_ = kEmpty;
  other.size_ = 0;
  other.mapped_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    release();
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    fallback_ = std::move(other.fallback_);
    if (!mapped_ && !fallback_.empty()) data_ = fallback_.data();
    other.data_ = kEmpty;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

void MappedFile::release() noexcept {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<void*>(data_), size_);
  }
  data_ = kEmpty;
  size_ = 0;
  mapped_ = false;
  fallback_.clear();
}

}  // namespace fhp

/// \file fuzz.hpp
/// Structure-aware differential fuzzing harness.
///
/// Each instance is drawn from one of the library's generators with a
/// deterministically forked RNG stream (Rng::fork of the run seed), then
/// driven through three channels:
///
///  1. **hMETIS text**: serialize, optionally mutate the text, and parse.
///     Malformed text must be rejected with a typed IoError — any other
///     exception, or a parse that yields an ill-formed hypergraph (per
///     audit_hypergraph), is a failure. Unmutated text must round-trip
///     byte-identically. Surviving instances with >= 2 modules run
///     Algorithm I, whose output is audited (audit_algorithm1: legality,
///     recomputed-cut cross-check, completion dominance) and whose
///     intersection graph is differentially checked against the
///     intersection_graph_reference() oracle.
///  2. **named netlist text**: the same serialize/mutate/parse/audit loop
///     through write_netlist/read_netlist, with a fixed-point check
///     (write . read idempotent) instead of byte equality — the named
///     format relabels modules by first appearance.
///  3. **partition text**: write_partition/read_partition with an exact
///     read-back check on unmutated text.
///
/// Every failure records the generator and instance index, so any finding
/// reproduces exactly via FuzzOptions::only_generator /
/// FuzzOptions::only_instance (or the fuzz_tool --generator/--instance
/// flags) with the same seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fhp::validate {

/// Knobs of the fuzz run. Defaults match the CI smoke configuration
/// except instances_per_generator, which defaults to the full run.
struct FuzzOptions {
  /// Instances drawn from each generator family.
  int instances_per_generator = 200;
  /// Master seed; every (seed, generator, instance) triple is reproducible
  /// in isolation.
  std::uint64_t seed = 1;
  /// Algorithm I multi-start breadth on surviving instances (small: the
  /// audit holds per start, more starts only cost time).
  int algorithm_starts = 4;
  /// Probability that an instance's serialized text is mutated before
  /// parsing. Unmutated instances exercise the round-trip invariants.
  double mutate_probability = 0.5;
  /// Restrict the run to one generator family (empty = all; see
  /// fuzz_generator_names()).
  std::string only_generator;
  /// Run a single instance index (-1 = all). With only_generator this
  /// replays exactly one pipeline for debugging.
  std::int64_t only_instance = -1;
};

/// One reproducible failure.
struct FuzzFailure {
  std::string generator;   ///< family name
  std::uint64_t instance;  ///< fork index within the family
  std::string what;        ///< which invariant broke, with detail
};

/// Aggregate outcome of a fuzz run.
struct FuzzStats {
  std::size_t instances = 0;    ///< generated instances
  std::size_t mutated = 0;      ///< serializations mutated before parsing
  std::size_t parsed = 0;       ///< successful parses across channels
  std::size_t rejected = 0;     ///< typed IoError rejections (expected)
  std::size_t partitioned = 0;  ///< instances driven through Algorithm I
  std::size_t flow_refined = 0;  ///< partitions driven through FlowRefiner
  std::size_t round_trips = 0;  ///< byte-identical / fixed-point re-reads
  std::vector<FuzzFailure> failures;

  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
  /// One-line counts plus one line per failure.
  [[nodiscard]] std::string to_string() const;
};

/// The generator family names accepted by FuzzOptions::only_generator:
/// "circuit", "grid", "planted", "random", "structured".
[[nodiscard]] const std::vector<std::string>& fuzz_generator_names();

/// Runs the harness. Deterministic: equal options give equal stats,
/// including the failure list.
[[nodiscard]] FuzzStats run_fuzz(const FuzzOptions& options = {});

}  // namespace fhp::validate

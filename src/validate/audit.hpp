/// \file audit.hpp
/// Invariant auditor: checkable predicates over the library's core data
/// structures and algorithm outputs.
///
/// Unlike `Hypergraph::validate()` / `Graph::validate()` (which abort on
/// the first violation — the right behavior for "this is a library bug"),
/// the auditor *collects* findings and returns them, so harnesses — the
/// differential fuzzer, the corpus tests, external tools — can report
/// every violated predicate of an instance and keep going. Each finding
/// names the predicate that failed, which doubles as documentation of the
/// structure's contract (see docs/validation.md for the full catalogue).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/algorithm1.hpp"
#include "core/boundary.hpp"
#include "graph/graph.hpp"
#include "hypergraph/hypergraph.hpp"
#include "partition/metrics.hpp"

namespace fhp::validate {

/// One violated predicate.
struct AuditFinding {
  std::string predicate;  ///< stable identifier, e.g. "pins_sorted"
  std::string message;    ///< instance-specific detail
};

/// Outcome of an audit: empty findings == all predicates hold.
struct AuditReport {
  std::vector<AuditFinding> findings;

  [[nodiscard]] bool ok() const noexcept { return findings.empty(); }
  /// Appends a finding.
  void fail(std::string predicate, std::string message);
  /// Appends every finding of \p other.
  void merge(AuditReport other);
  /// Human-readable multi-line summary ("ok" when clean).
  [[nodiscard]] std::string to_string() const;
};

/// Policy knobs for hypergraph well-formedness. The defaults encode the
/// library-wide degenerate-input policy of docs/formats.md.
struct HypergraphAuditPolicy {
  /// Zero-pin nets are rejected by HypergraphBuilder unless explicitly
  /// opted into; audits of builder output therefore treat them as
  /// violations by default.
  bool allow_empty_edges = false;
  /// Single-pin nets are legal (they can never be cut).
  bool allow_single_pin_edges = true;
};

/// Well-formedness of a hypergraph: pin ranges, per-edge sortedness and
/// distinctness (the duplicate-pin policy), incidence-array consistency
/// (every pin appears in its module's net list and vice versa), weight
/// non-negativity, cached aggregate consistency, and the empty-edge
/// policy.
[[nodiscard]] AuditReport audit_hypergraph(
    const Hypergraph& h, const HypergraphAuditPolicy& policy = {});

/// CSR integrity of a graph as Graph::from_csr requires it: rows sorted
/// ascending, duplicate- and self-loop-free, in range, and symmetric
/// (u in row v iff v in row u); cached max degree consistent.
[[nodiscard]] AuditReport audit_graph(const Graph& g);

/// Legality of a partition vector for \p h: one entry per module, every
/// entry 0 or 1.
[[nodiscard]] AuditReport audit_partition(const Hypergraph& h,
                                          std::span<const std::uint8_t> sides);

/// Cross-checks reported metrics against values recomputed from scratch
/// (cut, side counts/weights, imbalances, properness). The recomputation
/// shares no code with the incremental bookkeeping in Bipartition, so a
/// double-counting bug (e.g. duplicate pins) shows up as a mismatch.
[[nodiscard]] AuditReport audit_metrics(const Hypergraph& h,
                                        std::span<const std::uint8_t> sides,
                                        const PartitionMetrics& reported);

/// Structural correctness of a boundary extraction over intersection
/// graph \p g: the boundary set B separates the cut (every edge of g
/// crossing g_side has both endpoints in B; every B member has a cross
/// neighbor), the boundary graph is bipartite under boundary_side, and
/// the index arrays are mutually consistent.
[[nodiscard]] AuditReport audit_boundary(const Graph& g,
                                         const BoundaryStructure& b);

/// Postconditions of a full Algorithm I run on \p h with \p options:
/// the output is a legal bipartition (proper whenever h has >= 2
/// modules), its metrics match a from-scratch recomputation, and — per
/// the paper's completion theorem — the cut on the *filtered* hypergraph
/// is dominated by the completion's loser count (each cut net must have
/// lost) whenever a non-degenerate start produced the result.
[[nodiscard]] AuditReport audit_algorithm1(const Hypergraph& h,
                                           const Algorithm1Options& options,
                                           const Algorithm1Result& result);

/// Exact CSR equality of two graphs (the differential predicate between
/// intersection_graph() and the intersection_graph_reference() oracle).
[[nodiscard]] AuditReport audit_graphs_identical(const Graph& actual,
                                                 const Graph& expected);

}  // namespace fhp::validate

#include "validate/audit.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "hypergraph/transform.hpp"

namespace fhp::validate {

namespace {

/// Formats "<what> <index>: <detail>" without dragging <format> in.
template <typename... Parts>
std::string cat(Parts&&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}

}  // namespace

void AuditReport::fail(std::string predicate, std::string message) {
  findings.push_back({std::move(predicate), std::move(message)});
}

void AuditReport::merge(AuditReport other) {
  findings.insert(findings.end(),
                  std::make_move_iterator(other.findings.begin()),
                  std::make_move_iterator(other.findings.end()));
}

std::string AuditReport::to_string() const {
  if (ok()) return "ok";
  std::ostringstream os;
  for (const AuditFinding& f : findings) {
    os << f.predicate << ": " << f.message << '\n';
  }
  return os.str();
}

AuditReport audit_hypergraph(const Hypergraph& h,
                             const HypergraphAuditPolicy& policy) {
  AuditReport report;
  const VertexId n = h.num_vertices();
  const EdgeId m = h.num_edges();

  std::size_t pin_total = 0;
  for (EdgeId e = 0; e < m; ++e) {
    const auto pins = h.pins(e);
    pin_total += pins.size();
    if (pins.empty() && !policy.allow_empty_edges) {
      report.fail("no_empty_edges", cat("edge ", e, " has no pins"));
    }
    if (pins.size() == 1 && !policy.allow_single_pin_edges) {
      report.fail("no_single_pin_edges", cat("edge ", e, " has one pin"));
    }
    for (std::size_t i = 0; i < pins.size(); ++i) {
      if (pins[i] >= n) {
        report.fail("pin_in_range",
                    cat("edge ", e, " pin ", pins[i], " >= ", n, " modules"));
        continue;
      }
      if (i > 0 && pins[i] <= pins[i - 1]) {
        report.fail(pins[i] == pins[i - 1] ? "pins_distinct" : "pins_sorted",
                    cat("edge ", e, " pins ", pins[i - 1], ", ", pins[i]));
      }
      const auto nets = h.nets_of(pins[i]);
      if (!std::binary_search(nets.begin(), nets.end(), e)) {
        report.fail("incidence_symmetric",
                    cat("edge ", e, " not in nets_of(", pins[i], ")"));
      }
    }
    if (h.edge_weight(e) < 0) {
      report.fail("edge_weight_nonnegative",
                  cat("edge ", e, " weight ", h.edge_weight(e)));
    }
  }
  if (pin_total != h.num_pins()) {
    report.fail("pin_count_consistent",
                cat("edge spans cover ", pin_total, " pins, num_pins() says ",
                    h.num_pins()));
  }

  std::size_t degree_total = 0;
  Weight vertex_weight_total = 0;
  for (VertexId v = 0; v < n; ++v) {
    const auto nets = h.nets_of(v);
    degree_total += nets.size();
    for (std::size_t i = 0; i < nets.size(); ++i) {
      if (nets[i] >= m) {
        report.fail("incident_net_in_range",
                    cat("module ", v, " net ", nets[i], " >= ", m, " nets"));
        continue;
      }
      if (i > 0 && nets[i] <= nets[i - 1]) {
        report.fail("incident_nets_sorted_distinct",
                    cat("module ", v, " nets ", nets[i - 1], ", ", nets[i]));
      }
      const auto pins = h.pins(nets[i]);
      if (!std::binary_search(pins.begin(), pins.end(), v)) {
        report.fail("incidence_symmetric",
                    cat("module ", v, " not in pins(", nets[i], ")"));
      }
    }
    if (h.vertex_weight(v) < 0) {
      report.fail("vertex_weight_nonnegative",
                  cat("module ", v, " weight ", h.vertex_weight(v)));
    }
    vertex_weight_total += h.vertex_weight(v);
  }
  if (degree_total != h.num_pins()) {
    report.fail("pin_count_consistent",
                cat("incidence spans cover ", degree_total,
                    " pins, num_pins() says ", h.num_pins()));
  }

  if (vertex_weight_total != h.total_vertex_weight()) {
    report.fail("total_vertex_weight_cached",
                cat("sum ", vertex_weight_total, " != cached ",
                    h.total_vertex_weight()));
  }
  Weight edge_weight_total = 0;
  Count max_edge_size = 0;
  for (EdgeId e = 0; e < m; ++e) {
    edge_weight_total += h.edge_weight(e);
    max_edge_size = std::max(max_edge_size, h.edge_size(e));
  }
  if (edge_weight_total != h.total_edge_weight()) {
    report.fail("total_edge_weight_cached",
                cat("sum ", edge_weight_total, " != cached ",
                    h.total_edge_weight()));
  }
  if (max_edge_size != h.max_edge_size()) {
    report.fail("max_edge_size_cached",
                cat("scan ", max_edge_size, " != cached ", h.max_edge_size()));
  }
  Count max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    max_degree = std::max(max_degree, h.degree(v));
  }
  if (max_degree != h.max_degree()) {
    report.fail("max_degree_cached",
                cat("scan ", max_degree, " != cached ", h.max_degree()));
  }
  return report;
}

AuditReport audit_graph(const Graph& g) {
  AuditReport report;
  const VertexId n = g.num_vertices();
  std::size_t directed = 0;
  Count max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    const auto row = g.neighbors(v);
    directed += row.size();
    max_degree = std::max(max_degree, g.degree(v));
    for (std::size_t i = 0; i < row.size(); ++i) {
      const VertexId u = row[i];
      if (u >= n) {
        report.fail("csr_in_range", cat("row ", v, " neighbor ", u));
        continue;
      }
      if (u == v) {
        report.fail("csr_no_self_loops", cat("row ", v));
      }
      if (i > 0 && u <= row[i - 1]) {
        report.fail("csr_rows_sorted_unique",
                    cat("row ", v, ": ", row[i - 1], ", ", u));
      }
      const auto back = g.neighbors(u);
      if (!std::binary_search(back.begin(), back.end(), v)) {
        report.fail("csr_symmetric", cat(u, " in row ", v, " but not back"));
      }
    }
  }
  if (directed != 2 * g.num_edges()) {
    report.fail("csr_edge_count",
                cat("rows hold ", directed, " entries, num_edges() says ",
                    g.num_edges()));
  }
  if (max_degree != g.max_degree()) {
    report.fail("max_degree_cached",
                cat("scan ", max_degree, " != cached ", g.max_degree()));
  }
  return report;
}

AuditReport audit_partition(const Hypergraph& h,
                            std::span<const std::uint8_t> sides) {
  AuditReport report;
  if (sides.size() != h.num_vertices()) {
    report.fail("one_side_per_module",
                cat(sides.size(), " sides for ", h.num_vertices(), " modules"));
    return report;  // indexed checks below would be meaningless
  }
  for (std::size_t v = 0; v < sides.size(); ++v) {
    if (sides[v] != 0 && sides[v] != 1) {
      report.fail("sides_binary",
                  cat("module ", v, " side ", static_cast<int>(sides[v])));
    }
  }
  return report;
}

AuditReport audit_metrics(const Hypergraph& h,
                          std::span<const std::uint8_t> sides,
                          const PartitionMetrics& reported) {
  AuditReport report = audit_partition(h, sides);
  if (!report.ok()) return report;

  // From-scratch recomputation, deliberately sharing no code with the
  // incremental Bipartition bookkeeping.
  PartitionMetrics fresh;
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    bool on[2] = {false, false};
    for (VertexId v : h.pins(e)) on[sides[v]] = true;
    if (on[0] && on[1]) {
      ++fresh.cut_edges;
      fresh.cut_weight += h.edge_weight(e);
    }
  }
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    if (sides[v] == 0) {
      ++fresh.left_count;
      fresh.left_weight += h.vertex_weight(v);
    } else {
      ++fresh.right_count;
      fresh.right_weight += h.vertex_weight(v);
    }
  }
  fresh.cardinality_imbalance = fresh.left_count > fresh.right_count
                                    ? fresh.left_count - fresh.right_count
                                    : fresh.right_count - fresh.left_count;
  fresh.weight_imbalance = fresh.left_weight > fresh.right_weight
                               ? fresh.left_weight - fresh.right_weight
                               : fresh.right_weight - fresh.left_weight;
  fresh.proper = fresh.left_count > 0 && fresh.right_count > 0;
  if (fresh.proper) {
    fresh.quotient_cut = static_cast<double>(fresh.cut_weight) /
                         (static_cast<double>(fresh.left_count) *
                          static_cast<double>(fresh.right_count));
    fresh.ratio_cut =
        static_cast<double>(fresh.cut_weight) /
        static_cast<double>(std::min(fresh.left_count, fresh.right_count));
  } else {
    fresh.quotient_cut = std::numeric_limits<double>::infinity();
    fresh.ratio_cut = std::numeric_limits<double>::infinity();
  }

  const auto check = [&](const char* predicate, auto got, auto expect) {
    if (got != expect) {
      report.fail(predicate, cat("reported ", got, ", recomputed ", expect));
    }
  };
  check("cut_edges_match", reported.cut_edges, fresh.cut_edges);
  check("cut_weight_match", reported.cut_weight, fresh.cut_weight);
  check("side_counts_match", reported.left_count, fresh.left_count);
  check("side_counts_match", reported.right_count, fresh.right_count);
  check("side_weights_match", reported.left_weight, fresh.left_weight);
  check("side_weights_match", reported.right_weight, fresh.right_weight);
  check("cardinality_imbalance_match", reported.cardinality_imbalance,
        fresh.cardinality_imbalance);
  check("weight_imbalance_match", reported.weight_imbalance,
        fresh.weight_imbalance);
  check("proper_match", reported.proper, fresh.proper);
  check("quotient_cut_match", reported.quotient_cut, fresh.quotient_cut);
  check("ratio_cut_match", reported.ratio_cut, fresh.ratio_cut);
  return report;
}

AuditReport audit_boundary(const Graph& g, const BoundaryStructure& b) {
  AuditReport report;
  const VertexId n = g.num_vertices();
  if (b.g_side.size() != n || b.is_boundary.size() != n ||
      b.boundary_index.size() != n) {
    report.fail("boundary_arrays_sized",
                cat("g_side/is_boundary/boundary_index sized ",
                    b.g_side.size(), "/", b.is_boundary.size(), "/",
                    b.boundary_index.size(), " for ", n, " G-vertices"));
    return report;
  }

  // The boundary set must separate the cut: a cut edge with a non-boundary
  // endpoint would mean a net crossing the partition undetected.
  for (VertexId v = 0; v < n; ++v) {
    bool has_cross_neighbor = false;
    for (VertexId u : g.neighbors(v)) {
      if (b.g_side[u] != b.g_side[v]) has_cross_neighbor = true;
    }
    if (has_cross_neighbor && !b.is_boundary[v]) {
      report.fail("boundary_separates_cut",
                  cat("G-vertex ", v, " crosses the cut but is not in B"));
    }
    if (!has_cross_neighbor && b.is_boundary[v]) {
      report.fail("boundary_minimal",
                  cat("G-vertex ", v, " is in B without a cross neighbor"));
    }
  }

  // Index arrays: boundary_nodes ascending, boundary_index its inverse.
  for (std::size_t i = 0; i < b.boundary_nodes.size(); ++i) {
    const VertexId v = b.boundary_nodes[i];
    if (v >= n || !b.is_boundary[v] ||
        b.boundary_index[v] != static_cast<VertexId>(i)) {
      report.fail("boundary_index_consistent", cat("boundary_nodes[", i, "]"));
    }
    if (i > 0 && b.boundary_nodes[i - 1] >= v) {
      report.fail("boundary_nodes_sorted", cat("position ", i));
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    if (!b.is_boundary[v] && b.boundary_index[v] != kInvalidVertex) {
      report.fail("boundary_index_consistent",
                  cat("non-boundary G-vertex ", v, " has an index"));
    }
  }

  // The boundary graph must be bipartite under boundary_side, and its
  // sides must agree with the g_side of the underlying G-vertices.
  const Graph& bg = b.boundary_graph;
  if (bg.num_vertices() != b.boundary_nodes.size() ||
      b.boundary_side.size() != b.boundary_nodes.size()) {
    report.fail("boundary_graph_sized",
                cat(bg.num_vertices(), " G' vertices / ",
                    b.boundary_side.size(), " sides for ",
                    b.boundary_nodes.size(), " boundary nodes"));
    return report;
  }
  for (VertexId i = 0; i < bg.num_vertices(); ++i) {
    if (b.boundary_side[i] != b.g_side[b.boundary_nodes[i]]) {
      report.fail("boundary_side_consistent", cat("boundary index ", i));
    }
    for (VertexId j : bg.neighbors(i)) {
      if (b.boundary_side[i] == b.boundary_side[j]) {
        report.fail("boundary_graph_bipartite",
                    cat("G' edge {", i, ", ", j, "} inside one side"));
      }
      if (!g.has_edge(b.boundary_nodes[i], b.boundary_nodes[j])) {
        report.fail("boundary_graph_subgraph",
                    cat("G' edge {", i, ", ", j, "} absent from G"));
      }
    }
  }
  return report;
}

AuditReport audit_algorithm1(const Hypergraph& h,
                             const Algorithm1Options& options,
                             const Algorithm1Result& result) {
  AuditReport report = audit_metrics(h, result.sides, result.metrics);
  if (!report.ok()) return report;

  if (h.num_vertices() >= 2 && !result.metrics.proper) {
    report.fail("result_proper",
                "Algorithm I must return a proper bipartition when one exists");
  }

  // Completion theorem (paper §2.2): on the filtered instance every cut
  // net is a loser, so the filtered cut is dominated by the loser count.
  // Skipped on paths that bypass completion: the disconnected shortcut,
  // the single-net corner case, and results where one side holds a single
  // module (a possible ensure_proper rescue, which may cut nets the
  // completion never saw).
  const EdgeFilterResult filtered =
      options.large_edge_threshold > 0
          ? filter_large_edges(h, options.large_edge_threshold)
          : filter_trivial_edges(h);
  if (!result.disconnected_shortcut && filtered.hypergraph.num_edges() >= 2 &&
      std::min(result.metrics.left_count, result.metrics.right_count) > 1) {
    EdgeId filtered_cut = 0;
    for (EdgeId e = 0; e < filtered.hypergraph.num_edges(); ++e) {
      bool on[2] = {false, false};
      for (VertexId v : filtered.hypergraph.pins(e)) on[result.sides[v]] = true;
      if (on[0] && on[1]) ++filtered_cut;
    }
    if (filtered_cut > result.loser_count) {
      report.fail("losers_dominate_filtered_cut",
                  cat("filtered cut ", filtered_cut, " > losers ",
                      result.loser_count));
    }
  }

  const EdgeId dropped = h.num_edges() - filtered.hypergraph.num_edges();
  if (result.filtered_edges != dropped) {
    report.fail("filtered_edge_count_match",
                cat("reported ", result.filtered_edges, ", recomputed ",
                    dropped));
  }
  return report;
}

AuditReport audit_graphs_identical(const Graph& actual, const Graph& expected) {
  AuditReport report;
  if (actual.num_vertices() != expected.num_vertices()) {
    report.fail("graphs_identical",
                cat(actual.num_vertices(), " vs ", expected.num_vertices(),
                    " vertices"));
    return report;
  }
  for (VertexId v = 0; v < actual.num_vertices(); ++v) {
    const auto a = actual.neighbors(v);
    const auto b = expected.neighbors(v);
    if (!std::equal(a.begin(), a.end(), b.begin(), b.end())) {
      report.fail("graphs_identical", cat("row ", v, " differs"));
    }
  }
  return report;
}

}  // namespace fhp::validate

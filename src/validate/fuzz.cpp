#include "validate/fuzz.hpp"

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "core/algorithm1.hpp"
#include "core/intersection.hpp"
#include "gen/circuit.hpp"
#include "gen/grid.hpp"
#include "gen/planted.hpp"
#include "gen/random_hypergraph.hpp"
#include "gen/structured.hpp"
#include "hypergraph/io.hpp"
#include "multilevel/flow_refine.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"
#include "validate/audit.hpp"

namespace fhp::validate {

namespace {

/// Draws one small instance of the named family. Parameter ranges are
/// deliberately tiny (tens of modules): the invariants are size-agnostic
/// and small instances let a 200-per-family run finish in seconds.
Hypergraph make_instance(const std::string& family, Rng& rng) {
  if (family == "circuit") {
    CircuitParams p;
    p.num_modules = static_cast<VertexId>(10 + rng.next_below(50));
    p.num_nets = static_cast<EdgeId>(p.num_modules + rng.next_below(40));
    p.max_net_size = static_cast<std::uint32_t>(4 + rng.next_below(8));
    p.bus_fraction = rng.next_bool(0.5) ? 0.05 : 0.0;
    p.bus_size_min = 6;
    p.bus_size_max = 12;
    p.weight_geometric_p = rng.next_bool(0.5) ? 0.4 : 0.0;
    return generate_circuit(p, rng());
  }
  if (family == "grid") {
    GridParams p;
    p.rows = static_cast<std::uint32_t>(1 + rng.next_below(8));
    p.cols = static_cast<std::uint32_t>(1 + rng.next_below(8));
    if (p.rows * p.cols < 2) p.cols = 2;
    p.segment_fraction = 0.5 * rng.next_double();
    p.torus = rng.next_bool(0.3);
    return grid_circuit(p, rng());
  }
  if (family == "planted") {
    PlantedParams p;
    p.num_vertices = static_cast<VertexId>(8 + rng.next_below(40));
    p.num_edges = static_cast<EdgeId>(10 + rng.next_below(50));
    p.planted_cut = static_cast<EdgeId>(rng.next_below(5));
    p.max_edge_size = static_cast<std::uint32_t>(2 + rng.next_below(3));
    p.max_degree = rng.next_bool(0.5) ? 0 : 6;
    return planted_instance(p, rng()).hypergraph;
  }
  if (family == "random") {
    RandomHypergraphParams p;
    p.num_vertices = static_cast<VertexId>(2 + rng.next_below(50));
    p.num_edges = static_cast<EdgeId>(rng.next_below(80));
    p.max_edge_size = static_cast<std::uint32_t>(2 + rng.next_below(4));
    p.max_degree = rng.next_bool(0.5) ? 0 : 5;
    return random_hypergraph(p, rng());
  }
  // "structured": rotate through the four deterministic topologies.
  switch (rng.next_below(4)) {
    case 0:
      return ripple_carry_adder(static_cast<std::uint32_t>(1 + rng.next_below(6)));
    case 1:
      return array_multiplier(static_cast<std::uint32_t>(2 + rng.next_below(4)));
    case 2:
      return butterfly_network(static_cast<std::uint32_t>(1 + rng.next_below(3)),
                               static_cast<std::uint32_t>(1 + rng.next_below(4)));
    default:
      return h_tree(static_cast<std::uint32_t>(2 + rng.next_below(4)));
  }
}

/// Replacement tokens for the token-swap mutation. Values stay small so a
/// mutated header cannot demand a multi-gigabyte allocation from a parser
/// that (correctly) accepts large-but-representable counts.
const char* const kTokenPool[] = {"0",  "1",   "2",  "-1", "999",
                                  "13", "x7f", ":",  "%",  ""};

/// Applies 1-3 random text mutations: line duplication/deletion, token
/// replacement, garbage/comment insertion, truncation, extra tokens.
std::string mutate_text(std::string text, Rng& rng) {
  const int ops = 1 + static_cast<int>(rng.next_below(3));
  for (int op = 0; op < ops; ++op) {
    // Split into lines fresh each op (earlier ops change the layout).
    std::vector<std::string> lines;
    std::istringstream is(text);
    for (std::string line; std::getline(is, line);) lines.push_back(line);
    if (lines.empty()) lines.emplace_back();
    const std::size_t row = rng.next_below(lines.size());
    switch (rng.next_below(7)) {
      case 0:  // duplicate a line
        lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(row),
                     lines[row]);
        break;
      case 1:  // delete a line
        lines.erase(lines.begin() + static_cast<std::ptrdiff_t>(row));
        break;
      case 2: {  // replace one whitespace-separated token
        std::istringstream ts(lines[row]);
        std::vector<std::string> tokens;
        for (std::string t; ts >> t;) tokens.push_back(t);
        if (!tokens.empty()) {
          tokens[rng.next_below(tokens.size())] =
              kTokenPool[rng.next_below(std::size(kTokenPool))];
          std::string rebuilt;
          for (const std::string& t : tokens) {
            if (!rebuilt.empty()) rebuilt += ' ';
            rebuilt += t;
          }
          lines[row] = rebuilt;
        }
        break;
      }
      case 3:  // insert a garbage line
        lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(row),
                     "!! garbage 1 2 three");
        break;
      case 4:  // insert a blank or comment line (often semantics-preserving)
        lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(row),
                     rng.next_bool(0.5) ? "" : "% comment # comment");
        break;
      case 5:  // append an extra token to a line
        lines[row] += ' ';
        lines[row] += kTokenPool[rng.next_below(std::size(kTokenPool))];
        break;
      default: {  // truncate the whole text mid-line
        std::string joined;
        for (const std::string& line : lines) {
          joined += line;
          joined += '\n';
        }
        if (!joined.empty()) joined.resize(rng.next_below(joined.size()));
        text = std::move(joined);
        continue;
      }
    }
    std::string joined;
    for (const std::string& line : lines) {
      joined += line;
      joined += '\n';
    }
    text = std::move(joined);
  }
  return text;
}

/// Shared state of one run.
struct Harness {
  const FuzzOptions& options;
  FuzzStats stats;
  std::string family;
  std::uint64_t instance = 0;

  void fail(std::string what) {
    stats.failures.push_back({family, instance, std::move(what)});
  }

  /// Algorithm I + postcondition audit + intersection-build differential.
  void partition_checks(const Hypergraph& h, Rng& rng) {
    Algorithm1Options a1;
    a1.num_starts = options.algorithm_starts;
    a1.threads = 1;
    a1.seed = rng();
    try {
      const Algorithm1Result result = algorithm1(h, a1);
      AuditReport report = audit_algorithm1(h, a1, result);
      const Graph fast = intersection_graph(h);
      report.merge(audit_graph(fast));
      report.merge(audit_graphs_identical(fast, intersection_graph_reference(h)));
      if (!report.ok()) {
        fail("algorithm1 audit: " + report.to_string());
        return;
      }
      ++stats.partitioned;
      flow_refine_checks(h, result.sides, rng);
    } catch (const std::exception& ex) {
      fail(std::string("algorithm1 raised on a well-formed instance: ") +
           ex.what());
    }
  }

  /// The corridor-flow leg of the partition stage: refine the audited
  /// Algorithm I result and hold the refiner to its contract — the cut
  /// never grows, the reported improvement is exactly the cut delta, and
  /// the refined assignment still audits clean.
  void flow_refine_checks(const Hypergraph& h,
                          const std::vector<std::uint8_t>& start, Rng& rng) {
    std::vector<std::uint8_t> sides = start;
    try {
      const Weight before = Bipartition(h, sides).cut_weight();
      ml::FlowRefiner refiner;
      const Weight improvement = refiner.refine(h, sides, rng());
      const Weight after = Bipartition(h, sides).cut_weight();
      if (improvement < 0) {
        fail("flow refiner reported negative improvement");
        return;
      }
      if (after > before || improvement != before - after) {
        std::ostringstream os;
        os << "flow refiner broke its cut contract: before " << before
           << ", after " << after << ", claimed improvement " << improvement;
        fail(os.str());
        return;
      }
      const AuditReport report = audit_partition(h, sides);
      if (!report.ok()) {
        fail("flow-refined partition failed audit: " + report.to_string());
        return;
      }
      ++stats.flow_refined;
    } catch (const std::exception& ex) {
      fail(std::string("flow refiner raised on a well-formed instance: ") +
           ex.what());
    }
  }

  /// Channel 1: hMETIS serialize -> (mutate) -> parse -> audit -> run.
  void hmetis_channel(const Hypergraph& h, Rng& rng) {
    std::ostringstream os;
    write_hmetis(os, h);
    std::string text = os.str();
    const bool mutated = rng.next_bool(options.mutate_probability);
    if (mutated) {
      text = mutate_text(std::move(text), rng);
      ++stats.mutated;
    }
    try {
      std::istringstream is(text);
      const Hypergraph parsed = read_hmetis(is);
      ++stats.parsed;
      const AuditReport report = audit_hypergraph(parsed);
      if (!report.ok()) {
        fail("hmetis parse produced ill-formed hypergraph: " +
             report.to_string());
        return;
      }
      if (!mutated) {
        std::ostringstream os2;
        write_hmetis(os2, parsed);
        if (os2.str() != text) {
          fail("hmetis round-trip not byte-identical");
          return;
        }
        ++stats.round_trips;
      }
      if (parsed.num_vertices() >= 2 && parsed.num_edges() >= 1) {
        partition_checks(parsed, rng);
      }
    } catch (const IoError& ex) {
      ++stats.rejected;
      if (!mutated) {
        fail(std::string("parser rejected writer output: ") + ex.what());
      }
    } catch (const std::exception& ex) {
      fail(std::string("read_hmetis raised non-IoError: ") + ex.what());
    }
  }

  /// Channel 2: named netlist with a fixed-point (idempotence) check.
  void netlist_channel(const Hypergraph& h, Rng& rng) {
    if (h.num_edges() == 0) return;  // the format holds no vertex-only info
    NamedNetlist nl;
    nl.hypergraph = h;
    for (VertexId v = 0; v < h.num_vertices(); ++v) {
      nl.vertex_names.push_back("m" + std::to_string(v));
    }
    for (EdgeId e = 0; e < h.num_edges(); ++e) {
      nl.edge_names.push_back("s" + std::to_string(e));
    }
    std::ostringstream os;
    write_netlist(os, nl);
    std::string text = os.str();
    const bool mutated = rng.next_bool(options.mutate_probability);
    if (mutated) {
      text = mutate_text(std::move(text), rng);
      ++stats.mutated;
    }
    try {
      std::istringstream is(text);
      const NamedNetlist parsed = read_netlist(is);
      ++stats.parsed;
      const AuditReport report = audit_hypergraph(parsed.hypergraph);
      if (!report.ok()) {
        fail("netlist parse produced ill-formed hypergraph: " +
             report.to_string());
        return;
      }
      if (!mutated) {
        // One read may relabel modules (ids follow first appearance), but
        // a second write/read must be a fixed point of that relabeling.
        if (parsed.hypergraph.num_edges() != h.num_edges() ||
            parsed.hypergraph.num_pins() != h.num_pins()) {
          fail("netlist round-trip changed edge or pin counts");
          return;
        }
        std::ostringstream once;
        write_netlist(once, parsed);
        std::istringstream again(once.str());
        const NamedNetlist reparsed = read_netlist(again);
        std::ostringstream twice;
        write_netlist(twice, reparsed);
        if (once.str() != twice.str()) {
          fail("netlist write/read is not idempotent");
          return;
        }
        ++stats.round_trips;
      }
    } catch (const IoError& ex) {
      ++stats.rejected;
      if (!mutated) {
        fail(std::string("parser rejected writer output: ") + ex.what());
      }
    } catch (const std::exception& ex) {
      fail(std::string("read_netlist raised non-IoError: ") + ex.what());
    }
  }

  /// Channel 3: partition files with an exact read-back check.
  void partition_channel(const Hypergraph& h, Rng& rng) {
    std::vector<std::uint8_t> sides(h.num_vertices());
    for (auto& s : sides) s = rng.next_bool(0.5) ? 1 : 0;
    std::ostringstream os;
    write_partition(os, sides);
    std::string text = os.str();
    const bool mutated = rng.next_bool(options.mutate_probability);
    if (mutated) {
      text = mutate_text(std::move(text), rng);
      ++stats.mutated;
    }
    try {
      std::istringstream is(text);
      const auto got = read_partition(is, h.num_vertices());
      ++stats.parsed;
      if (!mutated) {
        if (got != sides) {
          fail("partition round-trip changed sides");
          return;
        }
        ++stats.round_trips;
      }
    } catch (const IoError& ex) {
      ++stats.rejected;
      if (!mutated) {
        fail(std::string("parser rejected writer output: ") + ex.what());
      }
    } catch (const std::exception& ex) {
      fail(std::string("read_partition raised non-IoError: ") + ex.what());
    }
  }

  void run_instance(std::uint64_t family_index) {
    // The fork stream id encodes (family, instance) so every triple is
    // independently reproducible at any instances_per_generator setting.
    Rng rng = Rng(options.seed).fork((family_index << 32) | instance);
    Hypergraph h;
    try {
      h = make_instance(family, rng);
    } catch (const std::exception& ex) {
      fail(std::string("generator raised: ") + ex.what());
      return;
    }
    ++stats.instances;
    const AuditReport report = audit_hypergraph(h);
    if (!report.ok()) {
      fail("generator produced ill-formed hypergraph: " + report.to_string());
      return;
    }
    hmetis_channel(h, rng);
    netlist_channel(h, rng);
    partition_channel(h, rng);
  }
};

}  // namespace

const std::vector<std::string>& fuzz_generator_names() {
  static const std::vector<std::string> names = {"circuit", "grid", "planted",
                                                 "random", "structured"};
  return names;
}

FuzzStats run_fuzz(const FuzzOptions& options) {
  Harness harness{options, {}, {}, 0};
  const auto& families = fuzz_generator_names();
  for (std::size_t f = 0; f < families.size(); ++f) {
    if (!options.only_generator.empty() &&
        families[f] != options.only_generator) {
      continue;
    }
    harness.family = families[f];
    for (int i = 0; i < options.instances_per_generator; ++i) {
      if (options.only_instance >= 0 &&
          options.only_instance != static_cast<std::int64_t>(i)) {
        continue;
      }
      harness.instance = static_cast<std::uint64_t>(i);
      harness.run_instance(f);
    }
  }
  return harness.stats;
}

std::string FuzzStats::to_string() const {
  std::ostringstream os;
  os << instances << " instances, " << mutated << " mutated, " << parsed
     << " parsed, " << rejected << " rejected, " << partitioned
     << " partitioned, " << flow_refined << " flow-refined, " << round_trips
     << " round-trips, " << failures.size() << " failures";
  for (const FuzzFailure& f : failures) {
    os << "\n  [" << f.generator << " #" << f.instance << "] " << f.what;
  }
  return os.str();
}

}  // namespace fhp::validate

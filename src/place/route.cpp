#include "place/route.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fhp {

namespace {

/// Router working state with L-shape congestion-aware embedding.
class GridRouter {
 public:
  GridRouter(RoutingResult& result)
      : r_(result),
        cols_(result.grid_cols),
        rows_(result.grid_rows) {}

  /// Usage of the horizontal step from (row, col) to (row, col+1).
  std::uint32_t& h_edge(std::uint32_t row, std::uint32_t col) {
    return r_.h_usage[row * (cols_ - 1) + col];
  }
  /// Usage of the vertical step from (row, col) to (row+1, col).
  std::uint32_t& v_edge(std::uint32_t row, std::uint32_t col) {
    return r_.v_usage[col * (rows_ - 1) + row];
  }

  /// Max usage along the horizontal run at `row` between columns.
  std::uint32_t h_run_peak(std::uint32_t row, std::uint32_t c0,
                           std::uint32_t c1) {
    std::uint32_t peak = 0;
    for (std::uint32_t c = std::min(c0, c1); c < std::max(c0, c1); ++c) {
      peak = std::max(peak, h_edge(row, c));
    }
    return peak;
  }
  std::uint32_t v_run_peak(std::uint32_t col, std::uint32_t r0,
                           std::uint32_t r1) {
    std::uint32_t peak = 0;
    for (std::uint32_t r = std::min(r0, r1); r < std::max(r0, r1); ++r) {
      peak = std::max(peak, v_edge(col, r));
    }
    return peak;
  }

  void commit_h(std::uint32_t row, std::uint32_t c0, std::uint32_t c1) {
    for (std::uint32_t c = std::min(c0, c1); c < std::max(c0, c1); ++c) {
      ++h_edge(row, c);
      ++r_.wirelength;
    }
  }
  void commit_v(std::uint32_t col, std::uint32_t r0, std::uint32_t r1) {
    for (std::uint32_t r = std::min(r0, r1); r < std::max(r0, r1); ++r) {
      ++v_edge(col, r);
      ++r_.wirelength;
    }
  }

  /// Routes one two-pin connection as the less congested of the two
  /// L-shapes.
  void route_two_pin(std::uint32_t r0, std::uint32_t c0, std::uint32_t r1,
                     std::uint32_t c1) {
    if (r0 == r1 && c0 == c1) return;
    if (r0 == r1) {
      commit_h(r0, c0, c1);
      return;
    }
    if (c0 == c1) {
      commit_v(c0, r0, r1);
      return;
    }
    // Elbow A: horizontal at r0, then vertical at c1.
    const std::uint32_t peak_a =
        std::max(h_run_peak(r0, c0, c1), v_run_peak(c1, r0, r1));
    // Elbow B: vertical at c0, then horizontal at r1.
    const std::uint32_t peak_b =
        std::max(v_run_peak(c0, r0, r1), h_run_peak(r1, c0, c1));
    if (peak_a <= peak_b) {
      commit_h(r0, c0, c1);
      commit_v(c1, r0, r1);
    } else {
      commit_v(c0, r0, r1);
      commit_h(r1, c0, c1);
    }
  }

 private:
  RoutingResult& r_;
  std::uint32_t cols_;
  std::uint32_t rows_;
};

}  // namespace

std::uint32_t RoutingResult::overflow(std::uint32_t capacity) const {
  std::uint32_t count = 0;
  for (std::uint32_t u : h_usage) {
    if (u > capacity) ++count;
  }
  for (std::uint32_t u : v_usage) {
    if (u > capacity) ++count;
  }
  return count;
}

RoutingResult route_global(const Hypergraph& h, const Placement& placement) {
  FHP_REQUIRE(placement.region.size() == h.num_vertices(),
              "placement does not cover this netlist");
  FHP_REQUIRE(placement.grid_cols >= 1 && placement.grid_rows >= 1,
              "empty routing grid");
  RoutingResult result;
  result.grid_cols = placement.grid_cols;
  result.grid_rows = placement.grid_rows;
  result.h_usage.assign(
      placement.grid_rows * (std::max(placement.grid_cols, 1U) - 1), 0);
  result.v_usage.assign(
      placement.grid_cols * (std::max(placement.grid_rows, 1U) - 1), 0);
  GridRouter router(result);

  std::vector<std::uint32_t> cols;
  std::vector<std::uint32_t> rows;
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    const auto pins = h.pins(e);
    if (pins.size() < 2) continue;
    cols.clear();
    rows.clear();
    for (VertexId v : pins) {
      cols.push_back(placement.col(v));
      rows.push_back(placement.row(v));
    }
    // Skip fully local nets.
    bool local = true;
    for (std::size_t i = 1; i < cols.size(); ++i) {
      if (cols[i] != cols[0] || rows[i] != rows[0]) {
        local = false;
        break;
      }
    }
    if (local) continue;
    ++result.routed_nets;

    // Star decomposition from the median region (robust Steiner proxy).
    auto median_of = [](std::vector<std::uint32_t>& xs) {
      std::nth_element(xs.begin(), xs.begin() + xs.size() / 2, xs.end());
      return xs[xs.size() / 2];
    };
    std::vector<std::uint32_t> cs = cols;
    std::vector<std::uint32_t> rs = rows;
    const std::uint32_t hub_c = median_of(cs);
    const std::uint32_t hub_r = median_of(rs);
    // Route each distinct pin region to the hub once.
    std::vector<std::uint64_t> seen;
    for (std::size_t i = 0; i < cols.size(); ++i) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(rows[i]) << 32) | cols[i];
      if (std::find(seen.begin(), seen.end(), key) != seen.end()) continue;
      seen.push_back(key);
      router.route_two_pin(rows[i], cols[i], hub_r, hub_c);
    }
  }

  for (std::uint32_t u : result.h_usage) {
    result.max_usage = std::max(result.max_usage, u);
  }
  for (std::uint32_t u : result.v_usage) {
    result.max_usage = std::max(result.max_usage, u);
  }
  return result;
}

}  // namespace fhp

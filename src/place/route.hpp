/// \file route.hpp
/// Pattern-based global routing over the placement grid — the downstream
/// consumer of a min-cut placement and the reason cutsize is the right
/// placement objective (Breuer's bounding-box argument, paper §1).
///
/// Each net is decomposed into two-pin connections by a star from its
/// median region; each connection is routed as an L-shape over the grid's
/// horizontal/vertical boundary edges, choosing the elbow with the lower
/// current congestion. Outputs per-edge usage, from which wirelength,
/// peak congestion and overflow are derived.
#pragma once

#include <cstdint>
#include <vector>

#include "place/placement.hpp"

namespace fhp {

/// Routing state over a cols x rows grid.
struct RoutingResult {
  std::uint32_t grid_cols = 0;
  std::uint32_t grid_rows = 0;
  /// h_usage[r * (cols-1) + c]: wires crossing the vertical boundary
  /// between regions (r, c) and (r, c+1).
  std::vector<std::uint32_t> h_usage;
  /// v_usage[c * (rows-1) + r]: wires crossing the horizontal boundary
  /// between regions (r, c) and (r+1, c).
  std::vector<std::uint32_t> v_usage;
  std::uint64_t wirelength = 0;     ///< total boundary crossings
  std::uint32_t max_usage = 0;      ///< peak edge congestion
  EdgeId routed_nets = 0;           ///< nets that needed routing at all

  /// Number of boundary edges whose usage exceeds \p capacity.
  [[nodiscard]] std::uint32_t overflow(std::uint32_t capacity) const;
};

/// Routes every net of \p h under \p placement. Requires the placement to
/// cover the netlist.
[[nodiscard]] RoutingResult route_global(const Hypergraph& h,
                                         const Placement& placement);

}  // namespace fhp

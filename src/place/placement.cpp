#include "place/placement.hpp"

#include <algorithm>
#include <cmath>

#include "baselines/fm.hpp"
#include "baselines/kl.hpp"
#include "baselines/random_cut.hpp"
#include "core/recursive.hpp"
#include "hypergraph/transform.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace fhp {

namespace {

bool is_power_of_two(std::uint32_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// One bisection of the induced sub-netlist with the selected engine.
std::vector<std::uint8_t> bisect(const Hypergraph& sub,
                                 const PlacementOptions& options,
                                 std::uint64_t seed) {
  switch (options.engine) {
    case PlacementEngine::kAlgorithm1: {
      Algorithm1Options a1 = options.algorithm1;
      a1.seed = seed;
      return algorithm1(sub, a1).sides;
    }
    case PlacementEngine::kFm: {
      FmOptions fm;
      fm.seed = seed;
      return fiduccia_mattheyses(sub, fm).sides;
    }
    case PlacementEngine::kKl: {
      KlOptions kl;
      kl.seed = seed;
      return kernighan_lin(sub, kl).sides;
    }
    case PlacementEngine::kRandom:
      return random_bisection(sub, seed).sides;
  }
  FHP_ASSERT(false, "unknown placement engine");
  return {};
}

/// Work item of the level-order splitter: a block of modules bound to a
/// region rectangle [col0, col1) x [row0, row1).
struct Block {
  std::vector<VertexId> vertices;
  std::uint32_t col0, col1, row0, row1;
  std::uint64_t seed;
};

/// Orientation cost of mapping `first` onto the sub-rectangle centered at
/// `center_a` and `second` onto `center_b` along the split axis: nets
/// with pins outside the block pull their internal pins toward the
/// external pins' current coordinates (terminal propagation).
double orientation_cost(const Hypergraph& h,
                        const std::vector<std::uint8_t>& in_block,
                        const std::vector<std::uint8_t>& in_first,
                        const std::vector<double>& coord, double center_a,
                        double center_b) {
  double cost = 0.0;
  std::vector<std::uint8_t> visited(h.num_edges(), 0);
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    if (!in_block[v]) continue;
    for (EdgeId e : h.nets_of(v)) {
      if (visited[e]) continue;
      visited[e] = 1;
      double external_sum = 0.0;
      std::uint32_t external = 0;
      std::uint32_t first_pins = 0;
      std::uint32_t second_pins = 0;
      for (VertexId w : h.pins(e)) {
        if (!in_block[w]) {
          external_sum += coord[w];
          ++external;
        } else if (in_first[w]) {
          ++first_pins;
        } else {
          ++second_pins;
        }
      }
      if (external == 0) continue;
      const double pull = external_sum / external;
      cost += first_pins * std::abs(pull - center_a) +
              second_pins * std::abs(pull - center_b);
    }
  }
  return cost;
}

/// Level-order region splitter with optional terminal propagation.
void split_all(const Hypergraph& h, const PlacementOptions& options,
               Placement& placement) {
  // Current block-center coordinate per module, refined level by level.
  std::vector<double> cx(h.num_vertices(),
                         static_cast<double>(placement.grid_cols) / 2.0);
  std::vector<double> cy(h.num_vertices(),
                         static_cast<double>(placement.grid_rows) / 2.0);

  std::vector<Block> queue;
  {
    Block root;
    root.vertices.resize(h.num_vertices());
    for (VertexId v = 0; v < h.num_vertices(); ++v) root.vertices[v] = v;
    root.col0 = 0;
    root.col1 = placement.grid_cols;
    root.row0 = 0;
    root.row1 = placement.grid_rows;
    root.seed = options.seed;
    queue.push_back(std::move(root));
  }

  std::vector<std::uint8_t> in_block(h.num_vertices(), 0);
  std::vector<std::uint8_t> in_first(h.num_vertices(), 0);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    // NOTE: take a copy, queue.push_back below may reallocate.
    const Block block = std::move(queue[head]);
    const std::uint32_t width = block.col1 - block.col0;
    const std::uint32_t height = block.row1 - block.row0;
    if (width == 1 && height == 1) {
      const std::uint32_t region =
          block.row0 * placement.grid_cols + block.col0;
      for (VertexId v : block.vertices) placement.region[v] = region;
      continue;
    }

    // Bisect the block's induced sub-netlist.
    std::vector<std::uint8_t> sides;
    if (block.vertices.size() >= 2) {
      std::vector<std::uint8_t> keep(h.num_vertices(), 0);
      for (VertexId v : block.vertices) keep[v] = 1;
      const InducedResult sub = induced_subhypergraph(h, keep);
      if (sub.hypergraph.num_vertices() >= 2) {
        std::vector<std::uint8_t> sub_sides =
            bisect(sub.hypergraph, options, block.seed);
        Bipartition p(sub.hypergraph, std::move(sub_sides));
        rebalance_bipartition(p, 0.5, options.balance_tolerance / 2.0);
        sides.assign(block.vertices.size(), 0);
        for (VertexId u = 0; u < sub.hypergraph.num_vertices(); ++u) {
          // kept_vertices ascends, as does block.vertices: map by position.
          sides[u] = p.side(u);
        }
      }
    }
    if (sides.empty()) sides.assign(block.vertices.size(), 0);

    Block first;
    Block second;
    for (std::size_t i = 0; i < block.vertices.size(); ++i) {
      (sides[i] == 0 ? first : second).vertices.push_back(block.vertices[i]);
    }

    // Sub-rectangles along the longer axis.
    const bool vertical = width >= height;
    double center_a;
    double center_b;
    if (vertical) {
      const std::uint32_t mid = block.col0 + width / 2;
      first.col0 = block.col0, first.col1 = mid;
      second.col0 = mid, second.col1 = block.col1;
      first.row0 = second.row0 = block.row0;
      first.row1 = second.row1 = block.row1;
      center_a = (block.col0 + mid) / 2.0;
      center_b = (mid + block.col1) / 2.0;
    } else {
      const std::uint32_t mid = block.row0 + height / 2;
      first.row0 = block.row0, first.row1 = mid;
      second.row0 = mid, second.row1 = block.row1;
      first.col0 = second.col0 = block.col0;
      first.col1 = second.col1 = block.col1;
      center_a = (block.row0 + mid) / 2.0;
      center_b = (mid + block.row1) / 2.0;
    }

    // Terminal propagation: choose which half lands on which sub-rect.
    if (options.terminal_propagation) {
      for (VertexId v : block.vertices) in_block[v] = 1;
      for (VertexId v : first.vertices) in_first[v] = 1;
      const std::vector<double>& coord = vertical ? cx : cy;
      const double keep_cost = orientation_cost(h, in_block, in_first, coord,
                                                center_a, center_b);
      const double swap_cost = orientation_cost(h, in_block, in_first, coord,
                                                center_b, center_a);
      if (swap_cost < keep_cost) first.vertices.swap(second.vertices);
      for (VertexId v : block.vertices) in_block[v] = 0;
      for (VertexId v : first.vertices) in_first[v] = 0;
      for (VertexId v : second.vertices) in_first[v] = 0;
    }

    // Refine current coordinates to the new sub-rect centers.
    for (VertexId v : first.vertices) {
      cx[v] = (first.col0 + first.col1) / 2.0;
      cy[v] = (first.row0 + first.row1) / 2.0;
    }
    for (VertexId v : second.vertices) {
      cx[v] = (second.col0 + second.col1) / 2.0;
      cy[v] = (second.row0 + second.row1) / 2.0;
    }

    std::uint64_t sm = block.seed;
    first.seed = splitmix64(sm);
    second.seed = splitmix64(sm);
    queue.push_back(std::move(first));
    queue.push_back(std::move(second));
  }
}

/// Lays the modules of each region out on a local mini-grid inside the
/// region's unit square, producing continuous coordinates.
void assign_coordinates(const Hypergraph& h, Placement& placement) {
  const std::uint32_t regions = placement.grid_cols * placement.grid_rows;
  std::vector<std::vector<VertexId>> members(regions);
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    members[placement.region[v]].push_back(v);
  }
  placement.x.assign(h.num_vertices(), 0.0);
  placement.y.assign(h.num_vertices(), 0.0);
  for (std::uint32_t r = 0; r < regions; ++r) {
    const auto& block = members[r];
    if (block.empty()) continue;
    const auto side_len = static_cast<std::uint32_t>(
        std::ceil(std::sqrt(static_cast<double>(block.size()))));
    const double origin_x = static_cast<double>(r % placement.grid_cols);
    const double origin_y = static_cast<double>(r / placement.grid_cols);
    for (std::size_t i = 0; i < block.size(); ++i) {
      const auto sx = static_cast<double>(i % side_len);
      const auto sy = static_cast<double>(i / side_len);
      placement.x[block[i]] = origin_x + (sx + 0.5) / side_len;
      placement.y[block[i]] = origin_y + (sy + 0.5) / side_len;
    }
  }
}

}  // namespace

Placement place_mincut(const Hypergraph& h, const PlacementOptions& options) {
  FHP_REQUIRE(is_power_of_two(options.grid_cols) &&
                  is_power_of_two(options.grid_rows),
              "grid dimensions must be powers of two");
  FHP_REQUIRE(options.grid_cols * options.grid_rows <= h.num_vertices(),
              "more regions than modules");
  Placement placement;
  placement.grid_cols = options.grid_cols;
  placement.grid_rows = options.grid_rows;
  placement.region.assign(h.num_vertices(), 0);
  split_all(h, options, placement);
  assign_coordinates(h, placement);
  return placement;
}

Placement place_random(const Hypergraph& h, std::uint32_t grid_cols,
                       std::uint32_t grid_rows, std::uint64_t seed) {
  FHP_REQUIRE(grid_cols > 0 && grid_rows > 0, "grid must be nonempty");
  FHP_REQUIRE(grid_cols * grid_rows <= h.num_vertices(),
              "more regions than modules");
  Placement placement;
  placement.grid_cols = grid_cols;
  placement.grid_rows = grid_rows;
  placement.region.assign(h.num_vertices(), 0);

  Rng rng(seed);
  std::vector<VertexId> order(h.num_vertices());
  for (VertexId v = 0; v < h.num_vertices(); ++v) order[v] = v;
  rng.shuffle(order);
  const std::uint32_t regions = grid_cols * grid_rows;
  for (std::size_t i = 0; i < order.size(); ++i) {
    placement.region[order[i]] =
        static_cast<std::uint32_t>(i % regions);
  }
  assign_coordinates(h, placement);
  return placement;
}

double half_perimeter_wirelength(const Hypergraph& h,
                                 const Placement& placement) {
  FHP_REQUIRE(placement.region.size() == h.num_vertices(),
              "placement does not cover this netlist");
  double total = 0.0;
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    const auto pins = h.pins(e);
    if (pins.size() < 2) continue;
    double min_x = placement.x[pins.front()];
    double max_x = min_x;
    double min_y = placement.y[pins.front()];
    double max_y = min_y;
    for (VertexId v : pins) {
      min_x = std::min(min_x, placement.x[v]);
      max_x = std::max(max_x, placement.x[v]);
      min_y = std::min(min_y, placement.y[v]);
      max_y = std::max(max_y, placement.y[v]);
    }
    total += (max_x - min_x) + (max_y - min_y);
  }
  return total;
}

EdgeId spanning_nets(const Hypergraph& h, const Placement& placement) {
  FHP_REQUIRE(placement.region.size() == h.num_vertices(),
              "placement does not cover this netlist");
  EdgeId count = 0;
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    const auto pins = h.pins(e);
    if (pins.empty()) continue;
    for (VertexId v : pins) {
      if (placement.region[v] != placement.region[pins.front()]) {
        ++count;
        break;
      }
    }
  }
  return count;
}

}  // namespace fhp

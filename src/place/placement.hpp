/// \file placement.hpp
/// Min-cut placement — the application that motivated the paper (§1,
/// Breuer [4]; Dunlop–Kernighan [8]).
///
/// The netlist is placed onto a cols x rows grid of regions by recursive
/// bisection with alternating cut directions (vertical first), each
/// bisection performed by a pluggable engine — Algorithm I by default,
/// or any baseline for comparison (`bench_placement` races them on
/// wirelength). Region occupancy is kept even by the core rebalancer.
/// Modules receive concrete (x, y) coordinates: region slots on a unit
/// grid, filled row-major within each region.
#pragma once

#include <cstdint>
#include <vector>

#include "core/algorithm1.hpp"
#include "hypergraph/hypergraph.hpp"

namespace fhp {

/// Which bipartitioner drives each recursive split.
enum class PlacementEngine {
  kAlgorithm1,  ///< the paper's heuristic (default)
  kFm,          ///< Fiduccia–Mattheyses
  kKl,          ///< Kernighan–Lin pair swaps
  kRandom,      ///< random bisection (calibration floor)
};

/// Knobs for the placer.
struct PlacementOptions {
  std::uint32_t grid_cols = 4;  ///< power of two
  std::uint32_t grid_rows = 4;  ///< power of two
  PlacementEngine engine = PlacementEngine::kAlgorithm1;
  /// Engine configuration for Algorithm I splits.
  Algorithm1Options algorithm1;
  /// Per-split occupancy tolerance (fraction of the block's weight).
  double balance_tolerance = 0.08;
  /// Terminal propagation (Dunlop–Kernighan [8], cited by the paper §1):
  /// when a block is bisected, orient the two halves onto the two
  /// sub-rectangles so that nets with pins *outside* the block pull their
  /// internal pins toward the external pins' current positions. Splits
  /// are processed level by level so external positions are meaningful.
  bool terminal_propagation = true;
  std::uint64_t seed = 1;
};

/// A placed netlist.
struct Placement {
  std::uint32_t grid_cols = 0;
  std::uint32_t grid_rows = 0;
  std::vector<std::uint32_t> region;  ///< region id = row * cols + col
  std::vector<double> x;              ///< per-module coordinates
  std::vector<double> y;

  /// Column of module \p v's region.
  [[nodiscard]] std::uint32_t col(VertexId v) const {
    return region[v] % grid_cols;
  }
  /// Row of module \p v's region.
  [[nodiscard]] std::uint32_t row(VertexId v) const {
    return region[v] / grid_cols;
  }
};

/// Places \p h onto the grid by recursive min-cut bisection.
/// Requires grid dimensions to be powers of two and
/// grid_cols * grid_rows <= num_vertices.
[[nodiscard]] Placement place_mincut(const Hypergraph& h,
                                     const PlacementOptions& options = {});

/// Random placement baseline: modules shuffled onto regions evenly.
[[nodiscard]] Placement place_random(const Hypergraph& h,
                                     std::uint32_t grid_cols,
                                     std::uint32_t grid_rows,
                                     std::uint64_t seed);

/// Half-perimeter wirelength of all nets under \p placement (the standard
/// placement quality proxy; bounding-box net model, as in Breuer [4]).
[[nodiscard]] double half_perimeter_wirelength(const Hypergraph& h,
                                               const Placement& placement);

/// Number of nets spanning more than one region.
[[nodiscard]] EdgeId spanning_nets(const Hypergraph& h,
                                   const Placement& placement);

}  // namespace fhp

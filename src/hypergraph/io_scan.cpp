/// \file io_scan.cpp
/// Zero-copy hMETIS parser over an in-memory buffer (mmap'ed file).
///
/// Strategy: three cheap passes over the bytes instead of one expensive
/// istream pass.
///   1. Count content lines and parse the header. Truncated input is
///      rejected here with the same typed IoError the legacy parser
///      throws, *before* any edge/pin-proportional allocation — a header
///      declaring a billion edges over a three-line body fails in
///      microseconds instead of attempting a multi-GB allocation.
///   2. Record each needed line's span (arena scratch) and count pin
///      tokens, so the CSR arrays are allocated exactly once at final
///      size — no vector<vector> staging, no reallocation.
///   3. Parse tokens with the SWAR integer decoder straight into the CSR
///      arrays, sorting + deduping each edge's pins in place with a
///      single write cursor.
/// The result is assembled with Hypergraph::from_csr, skipping
/// HypergraphBuilder entirely. Differential tests assert bit-identical
/// results against the legacy istream parser (the oracle) on the full
/// corpus and on generator round-trips.
#include <algorithm>
#include <string_view>

#include "hypergraph/io.hpp"
#include "hypergraph/scan.hpp"
#include "util/arena.hpp"
#include "util/mmap.hpp"

namespace fhp {

namespace {

struct HmetisHeader {
  std::int64_t num_edges = 0;
  std::int64_t num_vertices = 0;
  std::int64_t fmt = 0;
};

HmetisHeader parse_header(LineSpan line) {
  TokenScanner tokens(line);
  std::string_view tok;
  std::int64_t values[3] = {0, 0, 0};
  std::size_t n = 0;
  while (tokens.next(tok)) {
    if (n == 3) throw IoError("hMETIS header must be 'edges vertices [fmt]'");
    values[n++] = parse_i64(tok, "hMETIS header");
  }
  if (n < 2) throw IoError("hMETIS header must be 'edges vertices [fmt]'");
  HmetisHeader h;
  h.num_edges = values[0];
  h.num_vertices = values[1];
  h.fmt = n == 3 ? values[2] : 0;
  if (h.num_edges < 0 || h.num_vertices < 0) {
    throw IoError("negative counts in hMETIS header");
  }
  if (static_cast<std::uint64_t>(h.num_vertices) > kMaxIndexCount ||
      static_cast<std::uint64_t>(h.num_edges) > kMaxIndexCount) {
    throw IoError(
        "hMETIS header counts exceed the supported id range (" +
        std::to_string(kMaxIndexCount) +
        "); rebuild with -DFHP_INDEX_64=ON for larger instances");
  }
  if (h.fmt != 0 && h.fmt != 1 && h.fmt != 10 && h.fmt != 11) {
    throw IoError("unsupported hMETIS fmt " + std::to_string(h.fmt));
  }
  return h;
}

}  // namespace

Hypergraph read_hmetis(std::string_view text) {
  // ---- Pass 1: header + line census (no allocations yet) ----
  ByteScanner counter(text, '%');
  LineSpan line;
  if (!counter.next(line)) throw IoError("empty hMETIS input");
  const HmetisHeader header = parse_header(line);
  const bool has_edge_weights = header.fmt == 1 || header.fmt == 11;
  const bool has_vertex_weights = header.fmt == 10 || header.fmt == 11;
  const auto num_edges = static_cast<std::uint64_t>(header.num_edges);
  const auto num_vertices = static_cast<std::uint64_t>(header.num_vertices);

  std::uint64_t remaining = 0;
  while (counter.next(line)) ++remaining;
  if (remaining < num_edges) {
    throw IoError("hMETIS input ends before edge " +
                  std::to_string(remaining + 1));
  }
  const std::uint64_t needed =
      num_edges + (has_vertex_weights ? num_vertices : 0);
  if (remaining < needed) {
    throw IoError("hMETIS input ends before vertex weight " +
                  std::to_string(remaining - num_edges + 1));
  }

  // ---- Pass 2: line spans + exact pin counts (arena scratch) ----
  // `needed <= remaining <= bytes(text)`, so this scratch is bounded by the
  // real file size, never by the header's claims.
  Arena arena;
  const std::span<LineSpan> spans =
      arena.alloc<LineSpan>(static_cast<std::size_t>(needed));
  ByteScanner filler(text, '%');
  (void)filler.next(line);  // header, already parsed
  std::uint64_t total_tokens = 0;
  for (std::uint64_t i = 0; i < needed; ++i) {
    (void)filler.next(spans[static_cast<std::size_t>(i)]);
    if (i < num_edges) {
      total_tokens += count_tokens(spans[static_cast<std::size_t>(i)]);
    }
  }
  // Content lines are non-empty, so a weighted edge line holds >= 1 token
  // (its weight) and the subtraction cannot underflow.
  const std::uint64_t max_pins =
      total_tokens - (has_edge_weights ? num_edges : 0);

  // ---- Allocate the CSR at exact (pre-dedupe) size ----
  std::vector<std::size_t> edge_offsets(static_cast<std::size_t>(num_edges) +
                                        1);
  std::vector<VertexId> edge_pins(static_cast<std::size_t>(max_pins));
  std::vector<Weight> edge_weights(static_cast<std::size_t>(num_edges),
                                   Weight{1});
  std::vector<Weight> vertex_weights(static_cast<std::size_t>(num_vertices),
                                     Weight{1});

  // ---- Pass 3: parse straight into the arrays ----
  std::string_view tok;
  std::size_t write = 0;
  for (std::uint64_t e = 0; e < num_edges; ++e) {
    TokenScanner tokens(spans[static_cast<std::size_t>(e)]);
    if (has_edge_weights) {
      if (!tokens.next(tok)) throw IoError("missing edge weight");
      const std::int64_t w = parse_i64(tok, "hMETIS edge line");
      if (w < 0) throw IoError("negative edge weight");
      edge_weights[static_cast<std::size_t>(e)] = w;
    }
    const std::size_t row_begin = write;
    edge_offsets[static_cast<std::size_t>(e)] = row_begin;
    while (tokens.next(tok)) {
      const std::int64_t pin = parse_i64(tok, "hMETIS edge line");
      if (pin < 1 || pin > header.num_vertices) {
        throw IoError("pin " + std::to_string(pin) + " out of range in edge " +
                      std::to_string(e + 1));
      }
      edge_pins[write++] = static_cast<VertexId>(pin - 1);
    }
    if (write == row_begin) {
      throw IoError("edge " + std::to_string(e + 1) + " has no pins");
    }
    // Sort + dedupe this row in place; the write cursor absorbs the shrink.
    const auto row = edge_pins.begin() + static_cast<std::ptrdiff_t>(row_begin);
    const auto row_end = edge_pins.begin() + static_cast<std::ptrdiff_t>(write);
    std::sort(row, row_end);
    write = static_cast<std::size_t>(
        std::distance(edge_pins.begin(), std::unique(row, row_end)));
  }
  edge_offsets[static_cast<std::size_t>(num_edges)] = write;
  edge_pins.resize(write);

  if (has_vertex_weights) {
    for (std::uint64_t v = 0; v < num_vertices; ++v) {
      const LineSpan weight_line = spans[static_cast<std::size_t>(num_edges + v)];
      TokenScanner tokens(weight_line);
      std::int64_t w = -1;
      bool ok = tokens.next(tok);
      if (ok) {
        w = parse_i64(tok, "hMETIS vertex weight");
        ok = !tokens.next(tok);  // exactly one token
      }
      if (!ok || w < 0) {
        throw IoError("bad vertex weight line '" +
                      std::string(weight_line.view()) + "'");
      }
      vertex_weights[static_cast<std::size_t>(v)] = w;
    }
  }

  return Hypergraph::from_csr(std::move(edge_offsets), std::move(edge_pins),
                              std::move(vertex_weights),
                              std::move(edge_weights));
}

Hypergraph read_hmetis_file(const std::string& path) {
  const MappedFile file(path);
  return read_hmetis(file.view());
}

}  // namespace fhp

#include "hypergraph/contract.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/rng.hpp"

namespace fhp {

namespace {

/// Order-independent hash of a sorted pin vector.
std::uint64_t hash_pins(const std::vector<VertexId>& pins) {
  std::uint64_t state = 0x51ed2701a3c5e891ULL + pins.size();
  for (VertexId v : pins) {
    state ^= v + 0x9e3779b97f4a7c15ULL + (state << 6) + (state >> 2);
    state = splitmix64(state);
  }
  return state;
}

}  // namespace

ContractionResult contract(const Hypergraph& h, std::vector<VertexId> cluster,
                           VertexId num_clusters) {
  FHP_REQUIRE(cluster.size() == h.num_vertices(),
              "one cluster id per fine vertex expected");
  FHP_REQUIRE(num_clusters >= 1, "need at least one cluster");
  for (VertexId c : cluster) {
    FHP_REQUIRE(c < num_clusters, "cluster id out of range");
  }

  HypergraphBuilder builder;
  builder.add_vertices(num_clusters);
  {
    std::vector<Weight> weights(num_clusters, 0);
    for (VertexId v = 0; v < h.num_vertices(); ++v) {
      weights[cluster[v]] += h.vertex_weight(v);
    }
    for (VertexId c = 0; c < num_clusters; ++c) {
      builder.set_vertex_weight(c, weights[c]);
    }
  }

  // Re-pin nets; coalesce identical coarse nets (hash + verify).
  std::unordered_map<std::uint64_t, std::vector<EdgeId>> buckets;
  std::vector<std::vector<VertexId>> net_pins;
  std::vector<Weight> net_weight;
  std::vector<VertexId> scratch;
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    scratch.clear();
    for (VertexId v : h.pins(e)) scratch.push_back(cluster[v]);
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    if (scratch.size() < 2) continue;

    const std::uint64_t key = hash_pins(scratch);
    bool merged = false;
    for (EdgeId candidate : buckets[key]) {
      if (net_pins[candidate] == scratch) {
        net_weight[candidate] += h.edge_weight(e);
        merged = true;
        break;
      }
    }
    if (!merged) {
      buckets[key].push_back(static_cast<EdgeId>(net_pins.size()));
      net_pins.push_back(scratch);
      net_weight.push_back(h.edge_weight(e));
    }
  }
  for (std::size_t i = 0; i < net_pins.size(); ++i) {
    builder.add_edge(std::span<const VertexId>(net_pins[i]), net_weight[i]);
  }

  ContractionResult result;
  result.hypergraph = std::move(builder).build();
  result.cluster = std::move(cluster);
  return result;
}

std::vector<std::uint8_t> project_sides(
    const std::vector<VertexId>& cluster,
    const std::vector<std::uint8_t>& coarse_sides) {
  std::vector<std::uint8_t> sides(cluster.size(), 0);
  for (std::size_t v = 0; v < cluster.size(); ++v) {
    FHP_REQUIRE(cluster[v] < coarse_sides.size(),
                "cluster id outside the coarse partition");
    sides[v] = coarse_sides[cluster[v]];
  }
  return sides;
}

}  // namespace fhp

#include "hypergraph/hypergraph.hpp"

#include <algorithm>
#include <numeric>

namespace fhp {

Hypergraph Hypergraph::from_edges(
    VertexId num_vertices, const std::vector<std::vector<VertexId>>& edges) {
  HypergraphBuilder builder;
  builder.add_vertices(num_vertices);
  for (const auto& pins : edges) {
    builder.add_edge(std::span<const VertexId>(pins));
  }
  return std::move(builder).build();
}

bool Hypergraph::is_graph() const noexcept {
  for (EdgeId e = 0; e < num_edges(); ++e) {
    if (edge_size(e) != 2) return false;
  }
  return true;
}

void Hypergraph::validate() const {
  FHP_ASSERT(edge_offsets_.size() == static_cast<std::size_t>(num_edges()) + 1,
             "edge offset array size mismatch");
  FHP_ASSERT(
      vertex_offsets_.size() == static_cast<std::size_t>(num_vertices()) + 1,
      "vertex offset array size mismatch");
  FHP_ASSERT(edge_offsets_.front() == 0 && edge_offsets_.back() == num_pins(),
             "edge offsets must span the pin array");
  FHP_ASSERT(vertex_offsets_.front() == 0 &&
                 vertex_offsets_.back() == vertex_edges_.size(),
             "vertex offsets must span the incidence array");
  FHP_ASSERT(edge_pins_.size() == vertex_edges_.size(),
             "pin and incidence arrays must have equal length");
  FHP_ASSERT(vertex_weights_.size() == num_vertices(),
             "one weight per vertex");
  FHP_ASSERT(edge_weights_.size() == num_edges(), "one weight per edge");

  std::size_t pin_count = 0;
  for (EdgeId e = 0; e < num_edges(); ++e) {
    const auto ps = pins(e);
    pin_count += ps.size();
    FHP_ASSERT(std::is_sorted(ps.begin(), ps.end()), "pins must be sorted");
    FHP_ASSERT(std::adjacent_find(ps.begin(), ps.end()) == ps.end(),
               "pins must be distinct");
    for (VertexId v : ps) {
      FHP_ASSERT(v < num_vertices(), "pin references unknown vertex");
      const auto nets = nets_of(v);
      FHP_ASSERT(std::binary_search(nets.begin(), nets.end(), e),
                 "incidence arrays out of sync");
    }
  }
  FHP_ASSERT(pin_count == num_pins(), "pin count mismatch");

  Weight vw = 0;
  for (Weight w : vertex_weights_) vw += w;
  Weight ew = 0;
  for (Weight w : edge_weights_) ew += w;
  FHP_ASSERT(vw == total_vertex_weight_, "cached vertex weight total stale");
  FHP_ASSERT(ew == total_edge_weight_, "cached edge weight total stale");
}

VertexId HypergraphBuilder::add_vertex(Weight weight) {
  FHP_REQUIRE(weight >= 0, "vertex weight must be non-negative");
  vertex_weights_.push_back(weight);
  return static_cast<VertexId>(vertex_weights_.size() - 1);
}

VertexId HypergraphBuilder::add_vertices(VertexId count) {
  const auto first = static_cast<VertexId>(vertex_weights_.size());
  vertex_weights_.resize(vertex_weights_.size() + count, Weight{1});
  return first;
}

EdgeId HypergraphBuilder::add_edge(std::span<const VertexId> pins,
                                   Weight weight) {
  FHP_REQUIRE(weight >= 0, "edge weight must be non-negative");
  FHP_REQUIRE(!pins.empty() || allow_empty_edges_,
              "zero-pin net rejected (see allow_empty_edges())");
  const std::size_t start = edge_pins_.size();
  for (VertexId v : pins) {
    FHP_REQUIRE(v < vertex_weights_.size(),
                "edge pin references a vertex that was never added");
    edge_pins_.push_back(v);
  }
  // Sort + dedupe this edge's pins in place.
  const auto begin = edge_pins_.begin() + static_cast<std::ptrdiff_t>(start);
  std::sort(begin, edge_pins_.end());
  edge_pins_.erase(std::unique(begin, edge_pins_.end()), edge_pins_.end());
  edge_offsets_.push_back(edge_pins_.size());
  edge_weights_.push_back(weight);
  return static_cast<EdgeId>(edge_weights_.size() - 1);
}

EdgeId HypergraphBuilder::add_edge(std::initializer_list<VertexId> pins,
                                   Weight weight) {
  return add_edge(std::span<const VertexId>(pins.begin(), pins.size()),
                  weight);
}

void HypergraphBuilder::set_vertex_weight(VertexId v, Weight weight) {
  FHP_REQUIRE(v < vertex_weights_.size(), "unknown vertex");
  FHP_REQUIRE(weight >= 0, "vertex weight must be non-negative");
  vertex_weights_[v] = weight;
}

Hypergraph HypergraphBuilder::build() && {
  Hypergraph h;
  h.edge_offsets_ = std::move(edge_offsets_);
  h.edge_pins_ = std::move(edge_pins_);
  h.vertex_weights_ = std::move(vertex_weights_);
  h.edge_weights_ = std::move(edge_weights_);
  h.finalize_from_edge_csr();
  return h;
}

Hypergraph Hypergraph::from_csr(std::vector<std::size_t> edge_offsets,
                                std::vector<VertexId> edge_pins,
                                std::vector<Weight> vertex_weights,
                                std::vector<Weight> edge_weights) {
  FHP_REQUIRE(!edge_offsets.empty() && edge_offsets.front() == 0 &&
                  edge_offsets.back() == edge_pins.size(),
              "edge offsets must span the pin array");
  FHP_REQUIRE(edge_offsets.size() == edge_weights.size() + 1,
              "one weight per edge");
  const auto nv = vertex_weights.size();
#if !defined(NDEBUG)
  for (std::size_t e = 0; e + 1 < edge_offsets.size(); ++e) {
    FHP_DEBUG_ASSERT(edge_offsets[e] <= edge_offsets[e + 1],
                     "edge offsets must be non-decreasing");
    for (std::size_t i = edge_offsets[e]; i < edge_offsets[e + 1]; ++i) {
      FHP_DEBUG_ASSERT(edge_pins[i] < nv, "pin references unknown vertex");
      FHP_DEBUG_ASSERT(i == edge_offsets[e] || edge_pins[i - 1] < edge_pins[i],
                       "pins must be sorted and distinct");
    }
  }
#else
  (void)nv;
#endif
  Hypergraph h;
  h.edge_offsets_ = std::move(edge_offsets);
  h.edge_pins_ = std::move(edge_pins);
  h.vertex_weights_ = std::move(vertex_weights);
  h.edge_weights_ = std::move(edge_weights);
  h.finalize_from_edge_csr();
  return h;
}

void Hypergraph::finalize_from_edge_csr() {
  const VertexId nv = static_cast<VertexId>(vertex_weights_.size());
  const EdgeId ne = static_cast<EdgeId>(edge_weights_.size());

  // Build the inverse incidence (vertex -> nets) by counting sort, which
  // also leaves each vertex's net list sorted because edges are scanned in
  // ascending id order.
  std::vector<std::size_t> counts(static_cast<std::size_t>(nv) + 1, 0);
  for (VertexId v : edge_pins_) ++counts[v + 1];
  std::partial_sum(counts.begin(), counts.end(), counts.begin());
  vertex_offsets_ = counts;
  vertex_edges_.resize(edge_pins_.size());
  std::vector<std::size_t> cursor(counts.begin(), counts.end() - 1);
  for (EdgeId e = 0; e < ne; ++e) {
    for (std::size_t i = edge_offsets_[e]; i < edge_offsets_[e + 1]; ++i) {
      vertex_edges_[cursor[edge_pins_[i]]++] = e;
    }
  }

  total_vertex_weight_ = 0;
  for (Weight w : vertex_weights_) total_vertex_weight_ += w;
  total_edge_weight_ = 0;
  for (Weight w : edge_weights_) total_edge_weight_ += w;
  max_edge_size_ = 0;
  for (EdgeId e = 0; e < ne; ++e) {
    max_edge_size_ = std::max(max_edge_size_, edge_size(e));
  }
  max_degree_ = 0;
  for (VertexId v = 0; v < nv; ++v) {
    max_degree_ = std::max(max_degree_, degree(v));
  }
}

namespace {

/// splitmix64 finalizer — the standard full-avalanche 64-bit mixer.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// One streaming hash lane: absorb whole 64-bit words.
struct HashLane {
  std::uint64_t state;
  constexpr void absorb(std::uint64_t word) noexcept {
    state = mix64(state ^ word);
  }
};

}  // namespace

Hypergraph::Fingerprint Hypergraph::fingerprint() const noexcept {
  // Two lanes with distinct seeds: a collision must fool two independent
  // mixing chains at once. Every value is widened to uint64 before being
  // absorbed so the fingerprint is identical across FHP_INDEX_64 builds.
  HashLane a{0x8bad'f00d'1234'5678ULL};
  HashLane b{0xc0ff'ee00'9abc'def0ULL};
  const auto absorb = [&](std::uint64_t word) {
    a.absorb(word);
    b.absorb(word + 0x6a09'e667'f3bc'c909ULL);
  };
  absorb(static_cast<std::uint64_t>(num_vertices()));
  absorb(static_cast<std::uint64_t>(num_edges()));
  // The edge CSR determines the inverse incidence, so hashing offsets and
  // pins covers the full structure; weights carry the rest of the content.
  for (const std::size_t offset : edge_offsets_) {
    absorb(static_cast<std::uint64_t>(offset));
  }
  for (const VertexId pin : edge_pins_) {
    absorb(static_cast<std::uint64_t>(pin));
  }
  for (const Weight w : vertex_weights_) {
    absorb(static_cast<std::uint64_t>(w));
  }
  for (const Weight w : edge_weights_) {
    absorb(static_cast<std::uint64_t>(w));
  }
  return Fingerprint{a.state, b.state};
}

}  // namespace fhp

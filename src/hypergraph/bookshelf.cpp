#include "hypergraph/bookshelf.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <unordered_map>

namespace fhp {

namespace {

/// Next non-empty, non-comment line; returns false at end of stream.
bool next_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    const std::size_t cut = line.find('#');
    if (cut != std::string::npos) line.erase(cut);
    const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
    while (!line.empty() && is_space(static_cast<unsigned char>(line.back())))
      line.pop_back();
    std::size_t start = 0;
    while (start < line.size() &&
           is_space(static_cast<unsigned char>(line[start])))
      ++start;
    line.erase(0, start);
    if (!line.empty()) return true;
  }
  return false;
}

/// Parses a `Key : value` line; returns the numeric value.
long long parse_count(const std::string& line, const std::string& key) {
  const std::size_t pos = line.find(':');
  if (pos == std::string::npos || line.find(key) == std::string::npos) {
    throw IoError("expected '" + key + " : N', got '" + line + "'");
  }
  std::istringstream value(line.substr(pos + 1));
  long long count = -1;
  value >> count;
  if (count < 0) {
    throw IoError("bad count in '" + line + "'");
  }
  return count;
}

void expect_header(std::istream& in, const char* kind, std::string& line) {
  if (!next_line(in, line) || line.rfind("UCLA", 0) != 0 ||
      line.find(kind) == std::string::npos) {
    throw IoError(std::string("missing 'UCLA ") + kind + "' header");
  }
}

}  // namespace

BookshelfDesign read_bookshelf(std::istream& nodes, std::istream& nets) {
  BookshelfDesign design;
  HypergraphBuilder builder;
  std::unordered_map<std::string, VertexId> ids;

  // ---- .nodes ----
  std::string line;
  expect_header(nodes, "nodes", line);
  if (!next_line(nodes, line)) throw IoError("missing NumNodes");
  const long long num_nodes = parse_count(line, "NumNodes");
  if (!next_line(nodes, line)) throw IoError("missing NumTerminals");
  const long long num_terminals = parse_count(line, "NumTerminals");
  if (num_terminals > num_nodes) {
    throw IoError("more terminals than nodes");
  }
  if (static_cast<unsigned long long>(num_nodes) > kMaxIndexCount) {
    throw IoError(
        "NumNodes exceeds the supported id range (" +
        std::to_string(kMaxIndexCount) +
        "); rebuild with -DFHP_INDEX_64=ON for larger instances");
  }

  for (long long i = 0; i < num_nodes; ++i) {
    if (!next_line(nodes, line)) {
      throw IoError(".nodes ends before node " + std::to_string(i + 1));
    }
    std::istringstream is(line);
    std::string name;
    double width = 0;
    double height = 0;
    std::string terminal;
    if (!(is >> name >> width >> height)) {
      throw IoError("bad node line '" + line + "'");
    }
    is >> terminal;
    if (width < 0 || height < 0) {
      throw IoError("negative dimensions in '" + line + "'");
    }
    if (ids.contains(name)) {
      throw IoError("duplicate node '" + name + "'");
    }
    const double area_f = width * height;
    // Guard the double->Weight cast: converting NaN/inf or a value beyond
    // the integer range is undefined behavior, not just a bad weight.
    if (!std::isfinite(area_f) ||
        area_f >= static_cast<double>(std::numeric_limits<Weight>::max())) {
      throw IoError("node area out of range in '" + line + "'");
    }
    const auto area = static_cast<Weight>(area_f);
    const VertexId v = builder.add_vertex(std::max<Weight>(1, area));
    ids.emplace(name, v);
    design.netlist.vertex_names.push_back(name);
    design.is_terminal.push_back(terminal == "terminal" ? 1 : 0);
  }

  // ---- .nets ----
  expect_header(nets, "nets", line);
  if (!next_line(nets, line)) throw IoError("missing NumNets");
  const long long num_nets = parse_count(line, "NumNets");
  if (!next_line(nets, line)) throw IoError("missing NumPins");
  const long long num_pins = parse_count(line, "NumPins");
  if (static_cast<unsigned long long>(num_nets) > kMaxIndexCount) {
    throw IoError(
        "NumNets exceeds the supported id range (" +
        std::to_string(kMaxIndexCount) +
        "); rebuild with -DFHP_INDEX_64=ON for larger instances");
  }

  long long pins_seen = 0;
  for (long long n = 0; n < num_nets; ++n) {
    if (!next_line(nets, line)) {
      throw IoError(".nets ends before net " + std::to_string(n + 1));
    }
    if (line.find("NetDegree") == std::string::npos) {
      throw IoError("expected NetDegree line, got '" + line + "'");
    }
    const std::size_t colon = line.find(':');
    std::istringstream header(line.substr(colon + 1));
    long long degree = -1;
    std::string net_name;
    header >> degree >> net_name;
    if (degree <= 0) throw IoError("bad NetDegree in '" + line + "'");
    if (net_name.empty()) net_name = "n" + std::to_string(n);

    std::vector<VertexId> pins;
    for (long long p = 0; p < degree; ++p) {
      if (!next_line(nets, line)) {
        throw IoError("net '" + net_name + "' ends early");
      }
      std::istringstream pin(line);
      std::string node;
      pin >> node;
      const auto it = ids.find(node);
      if (it == ids.end()) {
        throw IoError("net '" + net_name + "' references unknown node '" +
                      node + "'");
      }
      pins.push_back(it->second);
      ++pins_seen;
    }
    design.netlist.edge_names.push_back(net_name);
    builder.add_edge(std::span<const VertexId>(pins));
  }
  if (pins_seen != num_pins) {
    throw IoError("NumPins says " + std::to_string(num_pins) + " but " +
                  std::to_string(pins_seen) + " pins were listed");
  }

  design.netlist.hypergraph = std::move(builder).build();
  return design;
}

// read_bookshelf_files lives in bookshelf_scan.cpp: the disk entry point
// maps both files and runs the zero-copy parser; this translation unit
// keeps the istream oracle and the writer.

void write_bookshelf(std::ostream& nodes, std::ostream& nets,
                     const BookshelfDesign& design) {
  const Hypergraph& h = design.netlist.hypergraph;
  FHP_REQUIRE(design.netlist.vertex_names.size() == h.num_vertices() &&
                  design.netlist.edge_names.size() == h.num_edges() &&
                  design.is_terminal.size() == h.num_vertices(),
              "design names/markers must cover the netlist");

  long long terminals = 0;
  for (std::uint8_t t : design.is_terminal) terminals += t;
  nodes << "UCLA nodes 1.0\n\n";
  nodes << "NumNodes : " << h.num_vertices() << '\n';
  nodes << "NumTerminals : " << terminals << '\n';
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    nodes << "  " << design.netlist.vertex_names[v] << ' '
          << h.vertex_weight(v) << " 1";
    if (design.is_terminal[v]) nodes << " terminal";
    nodes << '\n';
  }

  nets << "UCLA nets 1.0\n\n";
  nets << "NumNets : " << h.num_edges() << '\n';
  nets << "NumPins : " << h.num_pins() << '\n';
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    nets << "NetDegree : " << h.edge_size(e) << ' '
         << design.netlist.edge_names[e] << '\n';
    for (VertexId v : h.pins(e)) {
      nets << "  " << design.netlist.vertex_names[v] << " B\n";
    }
  }
}

}  // namespace fhp

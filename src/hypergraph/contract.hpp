/// \file contract.hpp
/// Hypergraph contraction (clustering) — the substrate for multilevel
/// partitioning, the direction that ultimately superseded the paper's
/// single-level heuristic (and a natural "future work" comparison point;
/// see `baselines/multilevel.hpp`).
#pragma once

#include <vector>

#include "hypergraph/hypergraph.hpp"

namespace fhp {

/// Result of contracting a hypergraph by a cluster map.
struct ContractionResult {
  Hypergraph hypergraph;           ///< the coarse hypergraph
  std::vector<VertexId> cluster;   ///< fine vertex -> coarse vertex
};

/// Contracts \p h: fine vertices with equal \p cluster id become one
/// coarse vertex whose weight is the sum of its members. Nets are
/// re-pinned to clusters; nets left with fewer than two distinct pins are
/// dropped, and nets with identical pin sets are merged with summed
/// weights (essential for multilevel quality — parallel nets otherwise
/// hide cut cost from the coarse level).
///
/// \p cluster must map every fine vertex to an id in [0, num_clusters).
[[nodiscard]] ContractionResult contract(const Hypergraph& h,
                                         std::vector<VertexId> cluster,
                                         VertexId num_clusters);

/// Projects a coarse side assignment back to the fine hypergraph.
[[nodiscard]] std::vector<std::uint8_t> project_sides(
    const std::vector<VertexId>& cluster,
    const std::vector<std::uint8_t>& coarse_sides);

}  // namespace fhp

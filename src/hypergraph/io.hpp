/// \file io.hpp
/// Netlist and partition file I/O.
///
/// Two netlist formats are supported:
///
/// 1. **hMETIS format** (the de-facto standard for hypergraph partitioning
///    benchmarks): first line `num_edges num_vertices [fmt]`, then one line
///    of 1-indexed pins per edge. fmt = 1 adds edge weights as a leading
///    token per edge line; fmt = 10 appends one vertex-weight line per
///    vertex; fmt = 11 does both.
///
/// 2. **Named netlist format**, matching the paper's worked example
///    (§2, Figure 4): lines of `signal: module module ...`, where names are
///    arbitrary identifiers. Comment lines start with '#'.
///
/// Partition files hold one side (0/1) per vertex per line.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "hypergraph/hypergraph.hpp"

namespace fhp {

/// A hypergraph plus the human names of its modules and nets.
struct NamedNetlist {
  Hypergraph hypergraph;
  std::vector<std::string> vertex_names;  ///< index = VertexId
  std::vector<std::string> edge_names;    ///< index = EdgeId

  /// Id of the named module; throws IoError if unknown.
  [[nodiscard]] VertexId vertex(const std::string& name) const;
  /// Id of the named net; throws IoError if unknown.
  [[nodiscard]] EdgeId edge(const std::string& name) const;
};

/// Parses hMETIS format from a stream. Throws IoError on malformed input.
/// This is the legacy istream path, kept as the differential oracle for the
/// zero-copy overload below; prefer read_hmetis_file / the string_view
/// overload for anything performance-sensitive.
[[nodiscard]] Hypergraph read_hmetis(std::istream& in);
/// Parses hMETIS format from an in-memory buffer (typically an mmap'ed
/// file) with the zero-copy scanner: two passes, the first counting lines
/// and pins so every array is allocated exactly once at its final size.
/// A truncated edge section fails with a typed IoError *before* any
/// edge- or pin-proportional allocation happens; only the declared vertex
/// count is trusted up front (bounded by kMaxIndexCount — ~16 bytes per
/// declared vertex, see docs/formats.md "Large instances"). Bit-identical
/// to the istream parser on well-formed input (enforced by differential
/// tests).
[[nodiscard]] Hypergraph read_hmetis(std::string_view text);
/// Parses an hMETIS file from disk via mmap (string_view overload above).
[[nodiscard]] Hypergraph read_hmetis_file(const std::string& path);
/// Writes hMETIS format (fmt 11 when any weight differs from 1, else plain).
void write_hmetis(std::ostream& out, const Hypergraph& h);
/// Writes an hMETIS file to disk.
void write_hmetis_file(const std::string& path, const Hypergraph& h);

/// Parses the named `signal: modules` format. Module ids are assigned in
/// order of first appearance. Throws IoError on malformed input.
[[nodiscard]] NamedNetlist read_netlist(std::istream& in);
/// Parses a named netlist file from disk.
[[nodiscard]] NamedNetlist read_netlist_file(const std::string& path);
/// Writes the named `signal: modules` format.
void write_netlist(std::ostream& out, const NamedNetlist& netlist);

/// Reads a partition file (one 0/1 per line). Throws IoError unless exactly
/// \p expected_vertices values in {0,1} are present.
[[nodiscard]] std::vector<std::uint8_t> read_partition(
    std::istream& in, VertexId expected_vertices);
/// Writes a partition file.
void write_partition(std::ostream& out, const std::vector<std::uint8_t>& sides);

}  // namespace fhp

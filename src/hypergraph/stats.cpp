#include "hypergraph/stats.hpp"

#include <sstream>

namespace fhp {

HypergraphStats compute_stats(const Hypergraph& h) {
  HypergraphStats s;
  s.num_vertices = h.num_vertices();
  s.num_edges = h.num_edges();
  s.num_pins = h.num_pins();
  s.max_edge_size = h.max_edge_size();
  s.max_degree = h.max_degree();
  s.edge_size_histogram.assign(h.max_edge_size() + 1, 0);
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    const Count size = h.edge_size(e);
    ++s.edge_size_histogram[size];
    if (size < 2) ++s.num_trivial_edges;
  }
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    if (h.degree(v) == 0) ++s.num_isolated_vertices;
  }
  s.avg_edge_size =
      s.num_edges == 0
          ? 0.0
          : static_cast<double>(s.num_pins) / static_cast<double>(s.num_edges);
  s.avg_degree = s.num_vertices == 0
                     ? 0.0
                     : static_cast<double>(s.num_pins) /
                           static_cast<double>(s.num_vertices);
  return s;
}

double fraction_edges_at_least(const Hypergraph& h, Count k) {
  if (h.num_edges() == 0) return 0.0;
  EdgeId count = 0;
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    if (h.edge_size(e) >= k) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(h.num_edges());
}

std::string to_string(const HypergraphStats& stats) {
  std::ostringstream os;
  os << "hypergraph: " << stats.num_vertices << " modules, " << stats.num_edges
     << " nets, " << stats.num_pins << " pins\n"
     << "  avg net size " << stats.avg_edge_size << " (max "
     << stats.max_edge_size << "), avg degree " << stats.avg_degree << " (max "
     << stats.max_degree << ")\n"
     << "  " << stats.num_isolated_vertices << " isolated modules, "
     << stats.num_trivial_edges << " trivial nets\n";
  return os.str();
}

}  // namespace fhp

/// \file bookshelf_scan.cpp
/// Zero-copy Bookshelf (.nodes/.nets) parser over in-memory buffers.
///
/// Same playbook as io_scan.cpp: a counting pass verifies the file body
/// against the declared NumNodes/NumNets/NumPins before anything
/// count-proportional is allocated (every array here is backed by real
/// lines, so a hostile header cannot force a large allocation), then a
/// parse pass decodes tokens in place. Node names are looked up through a
/// string_view map into the buffer — the per-pin std::string allocation of
/// the istream parser (one per pin line, the dominant cost on large
/// designs) disappears entirely. The istream parser in bookshelf.cpp is
/// the differential oracle.
#include <algorithm>
#include <charconv>
#include <cmath>
#include <limits>
#include <string_view>
#include <unordered_map>

#include "hypergraph/bookshelf.hpp"
#include "hypergraph/scan.hpp"
#include "util/mmap.hpp"

namespace fhp {

namespace {

/// Matches the legacy header check: line starts with "UCLA" and mentions
/// \p kind ("nodes" or "nets").
void expect_header(ByteScanner& scanner, const char* kind) {
  LineSpan line;
  if (!scanner.next(line) || !line.view().starts_with("UCLA") ||
      line.view().find(kind) == std::string_view::npos) {
    throw IoError(std::string("missing 'UCLA ") + kind + "' header");
  }
}

/// Parses a `Key : N` line (legacy parse_count semantics: key and colon
/// must both appear; the first token after the colon is the value; extra
/// trailing tokens are ignored).
std::int64_t parse_count(LineSpan line, const char* key) {
  const std::string_view text = line.view();
  const std::size_t colon = text.find(':');
  if (colon == std::string_view::npos ||
      text.find(key) == std::string_view::npos) {
    throw IoError(std::string("expected '") + key + " : N', got '" +
                  std::string(text) + "'");
  }
  TokenScanner tokens(LineSpan{line.begin + colon + 1, line.end});
  std::string_view tok;
  std::int64_t count = -1;
  if (tokens.next(tok)) {
    try {
      count = parse_i64(tok, key);
    } catch (const IoError&) {
      count = -1;
    }
  }
  if (count < 0) {
    throw IoError("bad count in '" + std::string(text) + "'");
  }
  return count;
}

/// Module weight from node dimensions: max(1, width * height), with the
/// product guarded against NaN/overflow before the integer cast (casting
/// a non-finite or out-of-range double to Weight is undefined behavior).
Weight node_area(double width, double height, std::string_view line) {
  const double area = width * height;
  if (!std::isfinite(area) ||
      area >= static_cast<double>(std::numeric_limits<Weight>::max())) {
    throw IoError("node area out of range in '" + std::string(line) + "'");
  }
  return std::max<Weight>(1, static_cast<Weight>(area));
}

/// std::from_chars double parse of a whole token; false on trailing junk.
bool parse_double(std::string_view tok, double& out) {
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), out);
  return ec == std::errc{} && ptr == tok.data() + tok.size();
}

std::uint64_t count_content_lines(std::string_view text) {
  ByteScanner scanner(text, '#');
  LineSpan line;
  while (scanner.next(line)) {
  }
  return scanner.content_lines();
}

}  // namespace

BookshelfDesign read_bookshelf(std::string_view nodes_text,
                               std::string_view nets_text) {
  BookshelfDesign design;

  // ---- .nodes: header + census ----
  ByteScanner nodes(nodes_text, '#');
  LineSpan line;
  expect_header(nodes, "nodes");
  if (!nodes.next(line)) throw IoError("missing NumNodes");
  const std::int64_t num_nodes = parse_count(line, "NumNodes");
  if (!nodes.next(line)) throw IoError("missing NumTerminals");
  const std::int64_t num_terminals = parse_count(line, "NumTerminals");
  if (num_terminals > num_nodes) {
    throw IoError("more terminals than nodes");
  }
  if (static_cast<std::uint64_t>(num_nodes) > kMaxIndexCount) {
    throw IoError(
        "NumNodes exceeds the supported id range (" +
        std::to_string(kMaxIndexCount) +
        "); rebuild with -DFHP_INDEX_64=ON for larger instances");
  }
  {
    const std::uint64_t total = count_content_lines(nodes_text);
    // Header + two count lines precede the node records.
    if (total < 3 + static_cast<std::uint64_t>(num_nodes)) {
      throw IoError(".nodes ends before node " + std::to_string(total - 2));
    }
  }

  // ---- .nodes: parse records ----
  std::vector<Weight> vertex_weights;
  vertex_weights.reserve(static_cast<std::size_t>(num_nodes));
  design.netlist.vertex_names.reserve(static_cast<std::size_t>(num_nodes));
  design.is_terminal.reserve(static_cast<std::size_t>(num_nodes));
  std::unordered_map<std::string_view, VertexId> ids;
  ids.reserve(static_cast<std::size_t>(num_nodes));
  for (std::int64_t i = 0; i < num_nodes; ++i) {
    (void)nodes.next(line);  // presence verified by the census
    TokenScanner tokens(line);
    std::string_view name, width_tok, height_tok, terminal;
    double width = 0;
    double height = 0;
    if (!tokens.next(name) || !tokens.next(width_tok) ||
        !tokens.next(height_tok) || !parse_double(width_tok, width) ||
        !parse_double(height_tok, height)) {
      throw IoError("bad node line '" + std::string(line.view()) + "'");
    }
    (void)tokens.next(terminal);
    if (width < 0 || height < 0) {
      throw IoError("negative dimensions in '" + std::string(line.view()) +
                    "'");
    }
    const auto v = static_cast<VertexId>(vertex_weights.size());
    if (!ids.emplace(name, v).second) {
      throw IoError("duplicate node '" + std::string(name) + "'");
    }
    vertex_weights.push_back(node_area(width, height, line.view()));
    design.netlist.vertex_names.emplace_back(name);
    design.is_terminal.push_back(terminal == "terminal" ? 1 : 0);
  }

  // ---- .nets: header + census ----
  ByteScanner nets(nets_text, '#');
  expect_header(nets, "nets");
  if (!nets.next(line)) throw IoError("missing NumNets");
  const std::int64_t num_nets = parse_count(line, "NumNets");
  if (!nets.next(line)) throw IoError("missing NumPins");
  const std::int64_t num_pins = parse_count(line, "NumPins");
  if (static_cast<std::uint64_t>(num_nets) > kMaxIndexCount) {
    throw IoError(
        "NumNets exceeds the supported id range (" +
        std::to_string(kMaxIndexCount) +
        "); rebuild with -DFHP_INDEX_64=ON for larger instances");
  }
  {
    const std::uint64_t total = count_content_lines(nets_text);
    // Header + two count lines + one NetDegree line per net + one line per
    // listed pin. (A pin total below NumPins surfaces here as truncation;
    // the legacy parser reports the same file as a NumPins mismatch — both
    // are typed IoErrors.)
    const std::uint64_t needed = 3 + static_cast<std::uint64_t>(num_nets) +
                                 static_cast<std::uint64_t>(num_pins);
    if (total < needed) {
      throw IoError(".nets is truncated: " + std::to_string(total) +
                    " content lines, but NumNets/NumPins imply at least " +
                    std::to_string(needed));
    }
  }

  // ---- .nets: parse records into the CSR ----
  std::vector<std::size_t> edge_offsets;
  edge_offsets.reserve(static_cast<std::size_t>(num_nets) + 1);
  std::vector<VertexId> edge_pins(static_cast<std::size_t>(num_pins));
  design.netlist.edge_names.reserve(static_cast<std::size_t>(num_nets));
  std::int64_t pins_seen = 0;
  std::size_t write = 0;
  for (std::int64_t n = 0; n < num_nets; ++n) {
    // The census guarantees enough lines for a well-formed body, but a net
    // over-declaring its degree can exhaust them early — recheck.
    if (!nets.next(line)) {
      throw IoError(".nets ends before net " + std::to_string(n + 1));
    }
    const std::string_view text = line.view();
    if (text.find("NetDegree") == std::string_view::npos) {
      throw IoError("expected NetDegree line, got '" + std::string(text) +
                    "'");
    }
    const std::size_t colon = text.find(':');
    std::int64_t degree = -1;
    std::string_view net_name;
    if (colon != std::string_view::npos) {
      TokenScanner tokens(LineSpan{line.begin + colon + 1, line.end});
      std::string_view tok;
      if (tokens.next(tok)) {
        try {
          degree = parse_i64(tok, "NetDegree");
        } catch (const IoError&) {
          degree = -1;
        }
        (void)tokens.next(net_name);
      }
    }
    if (degree <= 0) {
      throw IoError("bad NetDegree in '" + std::string(text) + "'");
    }
    design.netlist.edge_names.emplace_back(
        net_name.empty() ? "n" + std::to_string(n) : std::string(net_name));

    const std::size_t row_begin = write;
    edge_offsets.push_back(row_begin);
    for (std::int64_t p = 0; p < degree; ++p) {
      if (!nets.next(line)) {
        throw IoError("net '" + design.netlist.edge_names.back() +
                      "' ends early");
      }
      TokenScanner tokens(line);
      std::string_view node;
      (void)tokens.next(node);  // content lines always hold >= 1 token
      const auto it = ids.find(node);
      if (it == ids.end()) {
        throw IoError("net '" + design.netlist.edge_names.back() +
                      "' references unknown node '" + std::string(node) + "'");
      }
      if (write == edge_pins.size()) {
        // More pins listed than NumPins declared; keep going so the final
        // mismatch diagnostic reports the true total, like the oracle.
        edge_pins.push_back(it->second);
        ++write;
      } else {
        edge_pins[write++] = it->second;
      }
      ++pins_seen;
    }
    // Sort + dedupe this net's pins in place (HypergraphBuilder semantics).
    const auto row = edge_pins.begin() + static_cast<std::ptrdiff_t>(row_begin);
    const auto row_end = edge_pins.begin() + static_cast<std::ptrdiff_t>(write);
    std::sort(row, row_end);
    write = static_cast<std::size_t>(
        std::distance(edge_pins.begin(), std::unique(row, row_end)));
  }
  if (pins_seen != num_pins) {
    throw IoError("NumPins says " + std::to_string(num_pins) + " but " +
                  std::to_string(pins_seen) + " pins were listed");
  }
  edge_offsets.push_back(write);
  edge_pins.resize(write);

  const auto num_edges = edge_offsets.size() - 1;
  design.netlist.hypergraph = Hypergraph::from_csr(
      std::move(edge_offsets), std::move(edge_pins),
      std::move(vertex_weights), std::vector<Weight>(num_edges, Weight{1}));
  return design;
}

BookshelfDesign read_bookshelf_files(const std::string& nodes_path,
                                     const std::string& nets_path) {
  const MappedFile nodes(nodes_path);
  const MappedFile nets(nets_path);
  return read_bookshelf(nodes.view(), nets.view());
}

}  // namespace fhp

/// \file hypergraph.hpp
/// Immutable CSR hypergraph: the netlist model of the paper.
///
/// Vertices model circuit modules, hyperedges model signal nets; each net is
/// a set of distinct modules ("pins"). Both directions of incidence are
/// stored in compressed sparse row form so that `pins(e)` and `nets_of(v)`
/// are O(1) span lookups — the intersection-graph construction and all cut
/// metrics iterate these heavily.
#pragma once

#include <span>
#include <vector>

#include "util/error.hpp"
#include "util/ids.hpp"

namespace fhp {

/// Immutable weighted hypergraph. Build instances via HypergraphBuilder or
/// the from_edges() convenience factory; an already-built hypergraph never
/// changes (transforms produce new hypergraphs).
class Hypergraph {
 public:
  /// Empty hypergraph (no vertices, no edges).
  Hypergraph() = default;

  /// Convenience factory: unit-weight hypergraph over \p num_vertices
  /// vertices with the given pin lists. Pins must be valid vertex ids;
  /// duplicate pins within an edge are merged. Zero-pin edges are rejected
  /// (see HypergraphBuilder::add_edge and docs/formats.md).
  [[nodiscard]] static Hypergraph from_edges(
      VertexId num_vertices, const std::vector<std::vector<VertexId>>& edges);

  /// Adopts a prebuilt edge CSR without copying: \p edge_offsets has
  /// num_edges + 1 entries with edge_offsets[0] == 0 and
  /// edge_offsets.back() == edge_pins.size(); each row
  /// [edge_offsets[e], edge_offsets[e+1]) must be sorted ascending, free
  /// of duplicates, and reference vertices below vertex_weights.size().
  /// The streaming parsers produce rows in exactly this form, skipping the
  /// per-edge vector staging of HypergraphBuilder entirely. The inverse
  /// incidence is derived here by counting sort. Row preconditions are
  /// checked in debug builds only; size/shape preconditions always.
  [[nodiscard]] static Hypergraph from_csr(
      std::vector<std::size_t> edge_offsets, std::vector<VertexId> edge_pins,
      std::vector<Weight> vertex_weights, std::vector<Weight> edge_weights);

  /// Number of modules.
  [[nodiscard]] VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(vertex_offsets_.empty()
                                     ? 0
                                     : vertex_offsets_.size() - 1);
  }
  /// Number of nets.
  [[nodiscard]] EdgeId num_edges() const noexcept {
    return static_cast<EdgeId>(edge_offsets_.empty() ? 0
                                                     : edge_offsets_.size() - 1);
  }
  /// Total pin count (sum of edge sizes).
  [[nodiscard]] std::size_t num_pins() const noexcept {
    return edge_pins_.size();
  }

  /// Pins (modules) of net \p e, sorted ascending.
  [[nodiscard]] std::span<const VertexId> pins(EdgeId e) const {
    FHP_DEBUG_ASSERT(e < num_edges(), "edge id out of range");
    return {edge_pins_.data() + edge_offsets_[e],
            edge_pins_.data() + edge_offsets_[e + 1]};
  }
  /// Number of pins of net \p e.
  [[nodiscard]] Count edge_size(EdgeId e) const {
    FHP_DEBUG_ASSERT(e < num_edges(), "edge id out of range");
    return static_cast<Count>(edge_offsets_[e + 1] - edge_offsets_[e]);
  }
  /// Nets incident to module \p v, sorted ascending.
  [[nodiscard]] std::span<const EdgeId> nets_of(VertexId v) const {
    FHP_DEBUG_ASSERT(v < num_vertices(), "vertex id out of range");
    return {vertex_edges_.data() + vertex_offsets_[v],
            vertex_edges_.data() + vertex_offsets_[v + 1]};
  }
  /// Number of nets incident to module \p v (its degree).
  [[nodiscard]] Count degree(VertexId v) const {
    FHP_DEBUG_ASSERT(v < num_vertices(), "vertex id out of range");
    return static_cast<Count>(vertex_offsets_[v + 1] - vertex_offsets_[v]);
  }

  /// Weight (e.g. area) of module \p v.
  [[nodiscard]] Weight vertex_weight(VertexId v) const {
    FHP_DEBUG_ASSERT(v < num_vertices(), "vertex id out of range");
    return vertex_weights_[v];
  }
  /// Weight of net \p e (cut cost contribution).
  [[nodiscard]] Weight edge_weight(EdgeId e) const {
    FHP_DEBUG_ASSERT(e < num_edges(), "edge id out of range");
    return edge_weights_[e];
  }
  /// Sum of all module weights.
  [[nodiscard]] Weight total_vertex_weight() const noexcept {
    return total_vertex_weight_;
  }
  /// Sum of all net weights.
  [[nodiscard]] Weight total_edge_weight() const noexcept {
    return total_edge_weight_;
  }
  /// Largest net size (0 for an edgeless hypergraph).
  [[nodiscard]] Count max_edge_size() const noexcept { return max_edge_size_; }
  /// Largest module degree (0 for a vertexless hypergraph).
  [[nodiscard]] Count max_degree() const noexcept { return max_degree_; }
  /// True if every edge has exactly two pins, i.e. the hypergraph is a
  /// plain graph (the paper's definition in §1).
  [[nodiscard]] bool is_graph() const noexcept;

  /// Full structural self-check (CSR consistency, sortedness, weights);
  /// aborts on violation. Intended for tests and post-transform paranoia.
  void validate() const;

  /// 128-bit content fingerprint: two independently seeded 64-bit mixing
  /// lanes absorbed over the shape and the edge CSR + weight arrays.
  struct Fingerprint {
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;
    bool operator==(const Fingerprint&) const = default;
  };

  /// Content hash of this hypergraph: two structurally identical
  /// hypergraphs (same vertex/edge counts, pin rows, and weights) have
  /// equal fingerprints no matter how they were built (builder, from_csr,
  /// either parser stack) or which index width the build uses — every
  /// absorbed word is widened to 64 bits first, so a 32-bit client and a
  /// 64-bit server agree. O(pins + vertices + edges); nothing is cached,
  /// callers that key caches on it (the serving layer's result cache,
  /// docs/serving.md) compute it once per ingest.
  [[nodiscard]] Fingerprint fingerprint() const noexcept;

 private:
  friend class HypergraphBuilder;

  /// Derives the inverse incidence, weight totals and maxima from the edge
  /// CSR + weight vectors already moved into place. Shared tail of
  /// HypergraphBuilder::build() and from_csr().
  void finalize_from_edge_csr();

  std::vector<std::size_t> edge_offsets_{0};    // size num_edges+1
  std::vector<VertexId> edge_pins_;             // size num_pins
  std::vector<std::size_t> vertex_offsets_{0};  // size num_vertices+1
  std::vector<EdgeId> vertex_edges_;            // size num_pins
  std::vector<Weight> vertex_weights_;
  std::vector<Weight> edge_weights_;
  Weight total_vertex_weight_ = 0;
  Weight total_edge_weight_ = 0;
  Count max_edge_size_ = 0;
  Count max_degree_ = 0;
};

/// Incremental constructor for Hypergraph. Typical use:
///
///   HypergraphBuilder b;
///   b.add_vertices(12);
///   b.add_edge({0, 1, 10});
///   Hypergraph h = std::move(b).build();
class HypergraphBuilder {
 public:
  /// Adds one module of weight \p weight (default 1); returns its id.
  VertexId add_vertex(Weight weight = 1);
  /// Adds \p count unit-weight modules; returns the id of the first.
  VertexId add_vertices(VertexId count);
  /// Adds a net over \p pins with weight \p weight; duplicate pins are
  /// merged. All pins must reference vertices already added. Zero-pin nets
  /// are rejected (they are unrepresentable in hMETIS and silently break
  /// write/read round-trips) unless allow_empty_edges() opted in. Returns
  /// the new net's id.
  EdgeId add_edge(std::span<const VertexId> pins, Weight weight = 1);
  /// Initializer-list convenience overload.
  EdgeId add_edge(std::initializer_list<VertexId> pins, Weight weight = 1);

  /// Opts in to zero-pin nets (for experiments that need them; the text
  /// writers still refuse to serialize such hypergraphs). Returns *this.
  HypergraphBuilder& allow_empty_edges(bool allow = true) noexcept {
    allow_empty_edges_ = allow;
    return *this;
  }

  /// Overrides the weight of an existing vertex.
  void set_vertex_weight(VertexId v, Weight weight);

  /// Number of vertices added so far.
  [[nodiscard]] VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(vertex_weights_.size());
  }
  /// Number of edges added so far.
  [[nodiscard]] EdgeId num_edges() const noexcept {
    return static_cast<EdgeId>(edge_weights_.size());
  }

  /// Finalizes into an immutable Hypergraph. The builder is consumed.
  [[nodiscard]] Hypergraph build() &&;

 private:
  std::vector<std::size_t> edge_offsets_{0};
  std::vector<VertexId> edge_pins_;
  std::vector<Weight> vertex_weights_;
  std::vector<Weight> edge_weights_;
  bool allow_empty_edges_ = false;
};

}  // namespace fhp

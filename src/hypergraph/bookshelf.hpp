/// \file bookshelf.hpp
/// GSRC/UCLA "Bookshelf" netlist I/O (.nodes / .nets pair) — the standard
/// interchange format of the academic placement community, which makes
/// this library usable directly on published placement benchmarks.
///
/// Supported subset:
///   .nodes  — `UCLA nodes 1.0` header, `NumNodes : N`,
///             `NumTerminals : T`, then `name width height [terminal]`
///             per node. Module weight = max(1, width * height).
///   .nets   — `UCLA nets 1.0` header, `NumNets : N`, `NumPins : P`,
///             then per net `NetDegree : k [name]` followed by k pin
///             lines `nodename [I|O|B] [: xoff yoff]` (directions and
///             offsets are accepted and ignored — partitioning only needs
///             connectivity).
/// Comment lines start with '#'. Parsers throw fhp::IoError with precise
/// messages on malformed input.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "hypergraph/io.hpp"

namespace fhp {

/// A parsed bookshelf design: netlist plus terminal (pad) markers.
struct BookshelfDesign {
  NamedNetlist netlist;
  /// is_terminal[v] = 1 for pad/terminal nodes.
  std::vector<std::uint8_t> is_terminal;
};

/// Parses a .nodes / .nets stream pair.
[[nodiscard]] BookshelfDesign read_bookshelf(std::istream& nodes,
                                             std::istream& nets);

/// Parses a .nodes / .nets file pair from disk.
[[nodiscard]] BookshelfDesign read_bookshelf_files(
    const std::string& nodes_path, const std::string& nets_path);

/// Writes the design back out in bookshelf form (unit square area per
/// weight unit: width = weight, height = 1).
void write_bookshelf(std::ostream& nodes, std::ostream& nets,
                     const BookshelfDesign& design);

}  // namespace fhp

/// \file bookshelf.hpp
/// GSRC/UCLA "Bookshelf" netlist I/O (.nodes / .nets pair) — the standard
/// interchange format of the academic placement community, which makes
/// this library usable directly on published placement benchmarks.
///
/// Supported subset:
///   .nodes  — `UCLA nodes 1.0` header, `NumNodes : N`,
///             `NumTerminals : T`, then `name width height [terminal]`
///             per node. Module weight = max(1, width * height).
///   .nets   — `UCLA nets 1.0` header, `NumNets : N`, `NumPins : P`,
///             then per net `NetDegree : k [name]` followed by k pin
///             lines `nodename [I|O|B] [: xoff yoff]` (directions and
///             offsets are accepted and ignored — partitioning only needs
///             connectivity).
/// Comment lines start with '#'. Parsers throw fhp::IoError with precise
/// messages on malformed input.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "hypergraph/io.hpp"

namespace fhp {

/// A parsed bookshelf design: netlist plus terminal (pad) markers.
struct BookshelfDesign {
  NamedNetlist netlist;
  /// is_terminal[v] = 1 for pad/terminal nodes.
  std::vector<std::uint8_t> is_terminal;
};

/// Parses a .nodes / .nets stream pair. This is the legacy istream path,
/// kept as the differential oracle for the zero-copy overload below.
[[nodiscard]] BookshelfDesign read_bookshelf(std::istream& nodes,
                                             std::istream& nets);

/// Parses a .nodes / .nets pair from in-memory buffers (typically mmap'ed
/// files) with the zero-copy scanner. Line counts are verified against the
/// declared NumNodes/NumNets/NumPins before any count-proportional
/// allocation, so truncated input fails with a typed IoError instead of an
/// OOM attempt. Identical results to the istream parser on well-formed
/// input (enforced by differential tests).
[[nodiscard]] BookshelfDesign read_bookshelf(std::string_view nodes_text,
                                             std::string_view nets_text);

/// Parses a .nodes / .nets file pair from disk via mmap (overload above).
[[nodiscard]] BookshelfDesign read_bookshelf_files(
    const std::string& nodes_path, const std::string& nets_path);

/// Writes the design back out in bookshelf form (unit square area per
/// weight unit: width = weight, height = 1).
void write_bookshelf(std::ostream& nodes, std::ostream& nets,
                     const BookshelfDesign& design);

}  // namespace fhp

#include "hypergraph/io.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>

namespace fhp {

namespace {

/// Strips comments ('%' for hMETIS, '#' for named netlists) and trailing
/// whitespace; returns false at end of stream.
bool next_content_line(std::istream& in, std::string& line, char comment) {
  while (std::getline(in, line)) {
    const std::size_t cut = line.find(comment);
    if (cut != std::string::npos) line.erase(cut);
    // Trim.
    const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
    while (!line.empty() && is_space(static_cast<unsigned char>(line.back())))
      line.pop_back();
    std::size_t start = 0;
    while (start < line.size() &&
           is_space(static_cast<unsigned char>(line[start])))
      ++start;
    line.erase(0, start);
    if (!line.empty()) return true;
  }
  return false;
}

std::vector<long long> parse_ints(const std::string& line,
                                  const char* context) {
  // Tokenize, then convert with from_chars: `is >> v` would consume an
  // overflowing token, set eofbit, and silently drop the value — turning
  // an out-of-range pin into truncated-but-accepted input.
  std::istringstream is(line);
  std::vector<long long> values;
  std::string tok;
  while (is >> tok) {
    long long v = 0;
    const auto [ptr, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), v);
    if (ec == std::errc::result_out_of_range) {
      throw IoError(std::string("integer overflow in ") + context + ": '" +
                    tok + "'");
    }
    if (ec != std::errc() || ptr != tok.data() + tok.size()) {
      throw IoError(std::string("non-numeric token in ") + context + ": '" +
                    line + "'");
    }
    values.push_back(v);
  }
  return values;
}

}  // namespace

VertexId NamedNetlist::vertex(const std::string& name) const {
  const auto it = std::find(vertex_names.begin(), vertex_names.end(), name);
  if (it == vertex_names.end()) {
    throw IoError("unknown module name '" + name + "'");
  }
  return static_cast<VertexId>(it - vertex_names.begin());
}

EdgeId NamedNetlist::edge(const std::string& name) const {
  const auto it = std::find(edge_names.begin(), edge_names.end(), name);
  if (it == edge_names.end()) {
    throw IoError("unknown signal name '" + name + "'");
  }
  return static_cast<EdgeId>(it - edge_names.begin());
}

Hypergraph read_hmetis(std::istream& in) {
  std::string line;
  if (!next_content_line(in, line, '%')) {
    throw IoError("empty hMETIS input");
  }
  const auto header = parse_ints(line, "hMETIS header");
  if (header.size() < 2 || header.size() > 3) {
    throw IoError("hMETIS header must be 'edges vertices [fmt]'");
  }
  const long long num_edges = header[0];
  const long long num_vertices = header[1];
  const long long fmt = header.size() == 3 ? header[2] : 0;
  if (num_edges < 0 || num_vertices < 0) {
    throw IoError("negative counts in hMETIS header");
  }
  if (static_cast<unsigned long long>(num_vertices) > kMaxIndexCount ||
      static_cast<unsigned long long>(num_edges) > kMaxIndexCount) {
    throw IoError(
        "hMETIS header counts exceed the supported id range (" +
        std::to_string(kMaxIndexCount) +
        "); rebuild with -DFHP_INDEX_64=ON for larger instances");
  }
  if (fmt != 0 && fmt != 1 && fmt != 10 && fmt != 11) {
    throw IoError("unsupported hMETIS fmt " + std::to_string(fmt));
  }
  const bool edge_weights = (fmt == 1 || fmt == 11);
  const bool vertex_weights = (fmt == 10 || fmt == 11);

  HypergraphBuilder builder;
  builder.add_vertices(static_cast<VertexId>(num_vertices));

  for (long long e = 0; e < num_edges; ++e) {
    if (!next_content_line(in, line, '%')) {
      throw IoError("hMETIS input ends before edge " + std::to_string(e + 1));
    }
    auto values = parse_ints(line, "hMETIS edge line");
    Weight weight = 1;
    std::size_t first_pin = 0;
    if (edge_weights) {
      if (values.empty()) throw IoError("missing edge weight");
      weight = values[0];
      if (weight < 0) throw IoError("negative edge weight");
      first_pin = 1;
    }
    std::vector<VertexId> pins;
    for (std::size_t i = first_pin; i < values.size(); ++i) {
      const long long pin = values[i];
      if (pin < 1 || pin > num_vertices) {
        throw IoError("pin " + std::to_string(pin) + " out of range in edge " +
                      std::to_string(e + 1));
      }
      pins.push_back(static_cast<VertexId>(pin - 1));
    }
    if (pins.empty()) {
      throw IoError("edge " + std::to_string(e + 1) + " has no pins");
    }
    builder.add_edge(std::span<const VertexId>(pins), weight);
  }
  if (vertex_weights) {
    for (long long v = 0; v < num_vertices; ++v) {
      if (!next_content_line(in, line, '%')) {
        throw IoError("hMETIS input ends before vertex weight " +
                      std::to_string(v + 1));
      }
      const auto values = parse_ints(line, "hMETIS vertex weight");
      if (values.size() != 1 || values[0] < 0) {
        throw IoError("bad vertex weight line '" + line + "'");
      }
      builder.set_vertex_weight(static_cast<VertexId>(v), values[0]);
    }
  }
  return std::move(builder).build();
}

// read_hmetis_file lives in io_scan.cpp: the disk entry point maps the file
// and runs the zero-copy parser; this translation unit keeps the istream
// oracle and the writers.

void write_hmetis(std::ostream& out, const Hypergraph& h) {
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    FHP_REQUIRE(h.edge_size(e) > 0,
                "hMETIS format cannot represent zero-pin nets");
  }
  bool weighted = false;
  for (EdgeId e = 0; e < h.num_edges() && !weighted; ++e) {
    weighted = h.edge_weight(e) != 1;
  }
  for (VertexId v = 0; v < h.num_vertices() && !weighted; ++v) {
    weighted = h.vertex_weight(v) != 1;
  }
  out << h.num_edges() << ' ' << h.num_vertices();
  if (weighted) out << " 11";
  out << '\n';
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    if (weighted) out << h.edge_weight(e) << ' ';
    bool first = true;
    for (VertexId v : h.pins(e)) {
      if (!first) out << ' ';
      out << (v + 1);
      first = false;
    }
    out << '\n';
  }
  if (weighted) {
    for (VertexId v = 0; v < h.num_vertices(); ++v) {
      out << h.vertex_weight(v) << '\n';
    }
  }
}

void write_hmetis_file(const std::string& path, const Hypergraph& h) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open '" + path + "' for writing");
  write_hmetis(out, h);
}

NamedNetlist read_netlist(std::istream& in) {
  NamedNetlist netlist;
  HypergraphBuilder builder;
  std::unordered_map<std::string, VertexId> vertex_ids;
  std::unordered_map<std::string, EdgeId> edge_ids;

  std::string line;
  while (next_content_line(in, line, '#')) {
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      throw IoError("netlist line missing ':' separator: '" + line + "'");
    }
    std::istringstream name_stream(line.substr(0, colon));
    std::string signal;
    name_stream >> signal;
    std::string extra;
    if (signal.empty() || (name_stream >> extra)) {
      throw IoError("bad signal name in line '" + line + "'");
    }
    if (edge_ids.contains(signal)) {
      throw IoError("duplicate signal '" + signal + "'");
    }

    std::istringstream pin_stream(line.substr(colon + 1));
    std::vector<VertexId> pins;
    std::string module;
    while (pin_stream >> module) {
      auto [it, inserted] =
          vertex_ids.try_emplace(module, builder.num_vertices());
      if (inserted) {
        builder.add_vertex();
        netlist.vertex_names.push_back(module);
      }
      pins.push_back(it->second);
    }
    if (pins.empty()) {
      throw IoError("signal '" + signal + "' has no pins");
    }
    edge_ids.emplace(signal, builder.num_edges());
    netlist.edge_names.push_back(signal);
    builder.add_edge(std::span<const VertexId>(pins));
  }
  netlist.hypergraph = std::move(builder).build();
  return netlist;
}

NamedNetlist read_netlist_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open '" + path + "' for reading");
  return read_netlist(in);
}

void write_netlist(std::ostream& out, const NamedNetlist& netlist) {
  const Hypergraph& h = netlist.hypergraph;
  FHP_REQUIRE(netlist.vertex_names.size() == h.num_vertices() &&
                  netlist.edge_names.size() == h.num_edges(),
              "names must cover every module and signal");
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    FHP_REQUIRE(h.edge_size(e) > 0,
                "netlist format cannot represent zero-pin signals");
  }
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    out << netlist.edge_names[e] << ':';
    for (VertexId v : h.pins(e)) out << ' ' << netlist.vertex_names[v];
    out << '\n';
  }
}

std::vector<std::uint8_t> read_partition(std::istream& in,
                                         VertexId expected_vertices) {
  std::vector<std::uint8_t> sides;
  std::string line;
  while (next_content_line(in, line, '#')) {
    const auto values = parse_ints(line, "partition line");
    for (long long v : values) {
      if (v != 0 && v != 1) {
        throw IoError("partition entries must be 0 or 1, got " +
                      std::to_string(v));
      }
      sides.push_back(static_cast<std::uint8_t>(v));
    }
  }
  if (sides.size() != expected_vertices) {
    throw IoError("partition has " + std::to_string(sides.size()) +
                  " entries, expected " + std::to_string(expected_vertices));
  }
  return sides;
}

void write_partition(std::ostream& out,
                     const std::vector<std::uint8_t>& sides) {
  for (std::uint8_t s : sides) out << static_cast<int>(s) << '\n';
}

}  // namespace fhp

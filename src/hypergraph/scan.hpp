/// \file scan.hpp
/// Zero-copy byte scanning for the streaming netlist parsers.
///
/// The legacy istream parsers (io.cpp, bookshelf.cpp) copy every line into
/// a std::string, then re-tokenize it through istringstream — two copies
/// and a heap allocation per line, which caps ingest around tens of MB/s.
/// The scanners here walk the mapped bytes in place: lines and tokens are
/// string_views into the file mapping, and integers are decoded eight
/// digits at a time with the SWAR technique of Lemire's simdjson paper
/// ("Parsing Gigabytes of JSON per Second", VLDB J. 2019) — a single
/// 64-bit load classifies eight bytes as digits and two multiplies fold
/// them into a number, no per-character branching.
///
/// Semantics deliberately mirror the legacy line discipline so the fast
/// and slow parsers are bit-identical on well-formed input: a comment
/// character truncates the rest of its line, lines are trimmed of ASCII
/// whitespace, and blank lines vanish.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <string_view>

#include "util/error.hpp"

namespace fhp {

/// One trimmed, comment-stripped, non-empty line of input.
struct LineSpan {
  const char* begin = nullptr;
  const char* end = nullptr;

  [[nodiscard]] std::string_view view() const noexcept {
    return {begin, static_cast<std::size_t>(end - begin)};
  }
  [[nodiscard]] bool empty() const noexcept { return begin == end; }
};

namespace detail {

inline bool is_ascii_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' ||
         c == '\f';
}

}  // namespace detail

/// Forward iterator over the content lines of a text buffer. Never
/// allocates; every LineSpan points into the original buffer.
class ByteScanner {
 public:
  /// \p comment truncates a line at its first occurrence ('%' for hMETIS,
  /// '#' for named netlists and Bookshelf).
  ByteScanner(std::string_view text, char comment) noexcept
      : cur_(text.data()), end_(text.data() + text.size()), comment_(comment) {}

  /// Advances to the next non-empty content line. Returns false at end of
  /// input (and leaves \p out untouched).
  bool next(LineSpan& out) noexcept {
    while (cur_ != end_) {
      const char* line_begin = cur_;
      const char* nl = static_cast<const char*>(
          std::memchr(cur_, '\n', static_cast<std::size_t>(end_ - cur_)));
      const char* line_end = nl != nullptr ? nl : end_;
      cur_ = nl != nullptr ? nl + 1 : end_;
      // Strip comment.
      if (const char* c = static_cast<const char*>(std::memchr(
              line_begin, comment_,
              static_cast<std::size_t>(line_end - line_begin)));
          c != nullptr) {
        line_end = c;
      }
      // Trim.
      while (line_begin != line_end && detail::is_ascii_space(*line_begin))
        ++line_begin;
      while (line_end != line_begin && detail::is_ascii_space(line_end[-1]))
        --line_end;
      if (line_begin != line_end) {
        out = {line_begin, line_end};
        ++content_lines_;
        return true;
      }
    }
    return false;
  }

  /// Content lines returned so far.
  [[nodiscard]] std::size_t content_lines() const noexcept {
    return content_lines_;
  }

 private:
  const char* cur_;
  const char* end_;
  char comment_;
  std::size_t content_lines_ = 0;
};

/// Splits one LineSpan into whitespace-separated tokens, in place.
class TokenScanner {
 public:
  explicit TokenScanner(LineSpan line) noexcept
      : cur_(line.begin), end_(line.end) {}

  /// Advances to the next token. Returns false when the line is exhausted.
  bool next(std::string_view& out) noexcept {
    while (cur_ != end_ && detail::is_ascii_space(*cur_)) ++cur_;
    if (cur_ == end_) return false;
    const char* tok_begin = cur_;
    while (cur_ != end_ && !detail::is_ascii_space(*cur_)) ++cur_;
    out = {tok_begin, static_cast<std::size_t>(cur_ - tok_begin)};
    return true;
  }

 private:
  const char* cur_;
  const char* end_;
};

/// Number of whitespace-separated tokens on \p line.
inline std::size_t count_tokens(LineSpan line) noexcept {
  TokenScanner scanner(line);
  std::string_view tok;
  std::size_t n = 0;
  while (scanner.next(tok)) ++n;
  return n;
}

// ---------------------------------------------------------------------------
// SWAR digit parsing (Lemire). Little-endian only; the scalar loop below is
// the portable fallback and the correctness oracle in tests.
// ---------------------------------------------------------------------------

/// True iff all eight bytes of \p chunk (a little-endian 64-bit load of
/// eight input characters) are ASCII digits '0'..'9'.
inline bool is_made_of_eight_digits_fast(std::uint64_t chunk) noexcept {
  return ((chunk & 0xF0F0F0F0F0F0F0F0ULL) |
          (((chunk + 0x0606060606060606ULL) & 0xF0F0F0F0F0F0F0F0ULL) >> 4)) ==
         0x3333333333333333ULL;
}

/// Folds eight ASCII digits (validated by is_made_of_eight_digits_fast)
/// into their numeric value: pairwise, then 4-digit, then 8-digit
/// combination via two multiplies.
inline std::uint32_t parse_eight_digits_unrolled(std::uint64_t chunk) noexcept {
  const std::uint64_t mask = 0x000000FF000000FFULL;
  const std::uint64_t mul1 = 0x000F424000000064ULL;  // 100 + (1000000 << 32)
  const std::uint64_t mul2 = 0x0000271000000001ULL;  // 1 + (10000 << 32)
  chunk -= 0x3030303030303030ULL;
  chunk = (chunk * 10) + (chunk >> 8);  // pairs of digits
  chunk = (((chunk & mask) * mul1) + (((chunk >> 16) & mask) * mul2)) >> 32;
  return static_cast<std::uint32_t>(chunk);
}

/// Parses \p tok as an unsigned decimal integer. Throws IoError (naming
/// \p context) on empty tokens, non-digit characters, or values beyond
/// uint64 range. Signs are not accepted; use parse_i64 where the format
/// admits them.
inline std::uint64_t parse_u64(std::string_view tok, const char* context) {
  const char* p = tok.data();
  const char* const end = p + tok.size();
  if (p == end) {
    throw IoError(std::string("empty numeric token in ") + context);
  }
  std::uint64_t acc = 0;
  if constexpr (std::endian::native == std::endian::little) {
    while (end - p >= 8) {
      std::uint64_t chunk;
      std::memcpy(&chunk, p, 8);
      if (!is_made_of_eight_digits_fast(chunk)) break;
      const std::uint32_t block = parse_eight_digits_unrolled(chunk);
      if (acc > (std::numeric_limits<std::uint64_t>::max() - block) /
                    100000000ULL) {
        throw IoError(std::string("integer overflow in ") + context + ": '" +
                      std::string(tok) + "'");
      }
      acc = acc * 100000000ULL + block;
      p += 8;
    }
  }
  while (p != end) {
    const unsigned digit = static_cast<unsigned char>(*p) - unsigned{'0'};
    if (digit > 9) {
      throw IoError(std::string("non-numeric token in ") + context + ": '" +
                    std::string(tok) + "'");
    }
    if (acc > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      throw IoError(std::string("integer overflow in ") + context + ": '" +
                    std::string(tok) + "'");
    }
    acc = acc * 10 + digit;
    ++p;
  }
  return acc;
}

/// Parses \p tok as a signed decimal integer with optional leading sign.
/// Throws IoError on malformed tokens or values outside int64 range —
/// matching the legacy istream parsers, which fail the stream (and throw)
/// on the same inputs.
inline std::int64_t parse_i64(std::string_view tok, const char* context) {
  bool negative = false;
  if (!tok.empty() && (tok.front() == '-' || tok.front() == '+')) {
    negative = tok.front() == '-';
    tok.remove_prefix(1);
  }
  const std::uint64_t magnitude = parse_u64(tok, context);
  const std::uint64_t limit =
      static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max()) +
      (negative ? 1 : 0);
  if (magnitude > limit) {
    throw IoError(std::string("integer overflow in ") + context + ": '" +
                  (negative ? "-" : "") + std::string(tok) + "'");
  }
  return negative ? -static_cast<std::int64_t>(magnitude - 1) - 1
                  : static_cast<std::int64_t>(magnitude);
}

}  // namespace fhp

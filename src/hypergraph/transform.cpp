#include "hypergraph/transform.hpp"

#include <algorithm>

namespace fhp {

namespace {

EdgeFilterResult filter_edges_by_size(const Hypergraph& h,
                                      Count min_size,
                                      Count max_size) {
  HypergraphBuilder builder;
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    builder.add_vertex(h.vertex_weight(v));
  }
  std::vector<EdgeId> kept;
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    const Count size = h.edge_size(e);
    if (size < min_size || size > max_size) continue;
    builder.add_edge(h.pins(e), h.edge_weight(e));
    kept.push_back(e);
  }
  return {std::move(builder).build(), std::move(kept)};
}

}  // namespace

EdgeFilterResult filter_large_edges(const Hypergraph& h,
                                    Count max_size) {
  FHP_REQUIRE(max_size >= 2, "edge-size threshold below 2 drops every net");
  return filter_edges_by_size(h, 2, max_size);
}

EdgeFilterResult filter_trivial_edges(const Hypergraph& h) {
  return filter_edges_by_size(h, 2,
                              std::numeric_limits<Count>::max());
}

GranularizeResult granularize(const Hypergraph& h, Weight max_chunk_weight,
                              Weight link_weight) {
  FHP_REQUIRE(max_chunk_weight > 0, "chunk weight must be positive");
  GranularizeResult result;
  result.chunks_of.resize(h.num_vertices());

  HypergraphBuilder builder;
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    const Weight w = h.vertex_weight(v);
    // Number of chunks: ceil(w / max_chunk_weight), at least one even for
    // zero-weight modules (they must still exist to carry their pins).
    const Weight chunks =
        std::max<Weight>(1, (w + max_chunk_weight - 1) / max_chunk_weight);
    Weight remaining = w;
    for (Weight c = 0; c < chunks; ++c) {
      const Weight cw = (c + 1 == chunks)
                            ? remaining
                            : std::min(remaining, max_chunk_weight);
      remaining -= cw;
      const VertexId id = builder.add_vertex(cw);
      result.chunk_of.push_back(v);
      result.chunks_of[v].push_back(id);
    }
  }
  // Chain nets linking consecutive chunks of the same module.
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    const auto& chunks = result.chunks_of[v];
    for (std::size_t i = 1; i < chunks.size(); ++i) {
      builder.add_edge({chunks[i - 1], chunks[i]}, link_weight);
    }
  }
  // Original nets pin the head chunk of each module.
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    std::vector<VertexId> pins;
    pins.reserve(h.pins(e).size());
    for (VertexId v : h.pins(e)) pins.push_back(result.chunks_of[v].front());
    builder.add_edge(std::span<const VertexId>(pins), h.edge_weight(e));
  }
  result.hypergraph = std::move(builder).build();
  return result;
}

std::vector<std::uint8_t> project_granularized_sides(
    const GranularizeResult& g, const std::vector<std::uint8_t>& chunk_sides) {
  FHP_REQUIRE(chunk_sides.size() == g.chunk_of.size(),
              "one side per granularized chunk expected");
  std::vector<std::uint8_t> sides(g.chunks_of.size(), 0);
  for (VertexId v = 0; v < g.chunks_of.size(); ++v) {
    Weight w0 = 0;
    Weight w1 = 0;
    for (VertexId chunk : g.chunks_of[v]) {
      const Weight cw = g.hypergraph.vertex_weight(chunk);
      // Count chunk multiplicity even for zero-weight chunks so that
      // zero-weight modules still follow the majority of their chunks.
      const Weight unit = cw > 0 ? cw : 1;
      if (chunk_sides[chunk] == 0) {
        w0 += unit;
      } else {
        w1 += unit;
      }
    }
    sides[v] = (w1 > w0) ? std::uint8_t{1} : std::uint8_t{0};
  }
  return sides;
}

InducedResult induced_subhypergraph(const Hypergraph& h,
                                    const std::vector<std::uint8_t>& keep) {
  FHP_REQUIRE(keep.size() == h.num_vertices(),
              "keep mask must cover every vertex");
  InducedResult result;
  result.vertex_map.assign(h.num_vertices(), kInvalidVertex);

  HypergraphBuilder builder;
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    if (!keep[v]) continue;
    result.vertex_map[v] = builder.add_vertex(h.vertex_weight(v));
    result.kept_vertices.push_back(v);
  }
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    std::vector<VertexId> pins;
    for (VertexId v : h.pins(e)) {
      if (keep[v]) pins.push_back(result.vertex_map[v]);
    }
    if (pins.size() < 2) continue;
    builder.add_edge(std::span<const VertexId>(pins), h.edge_weight(e));
    result.kept_edges.push_back(e);
  }
  result.hypergraph = std::move(builder).build();
  return result;
}

}  // namespace fhp

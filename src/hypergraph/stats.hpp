/// \file stats.hpp (hypergraph)
/// Descriptive statistics of a netlist, used by the generators' self-checks
/// and the experiment harness (e.g. reporting average net size per
/// technology preset, matching the paper's §3 discussion).
#pragma once

#include <string>
#include <vector>

#include "hypergraph/hypergraph.hpp"

namespace fhp {

/// Summary statistics of a hypergraph.
struct HypergraphStats {
  VertexId num_vertices = 0;
  EdgeId num_edges = 0;
  std::size_t num_pins = 0;
  double avg_edge_size = 0.0;
  Count max_edge_size = 0;
  double avg_degree = 0.0;
  Count max_degree = 0;
  VertexId num_isolated_vertices = 0;  ///< modules on no net
  EdgeId num_trivial_edges = 0;        ///< nets with < 2 pins
  /// edge_size_histogram[k] = number of nets with exactly k pins
  /// (index 0..max_edge_size).
  std::vector<EdgeId> edge_size_histogram;
};

/// Computes summary statistics in one pass over the hypergraph.
[[nodiscard]] HypergraphStats compute_stats(const Hypergraph& h);

/// Fraction of nets with size >= k (0 when there are no nets). This is the
/// quantity thresholded by the paper's large-net relaxation.
[[nodiscard]] double fraction_edges_at_least(const Hypergraph& h, Count k);

/// Renders the stats as a short human-readable report.
[[nodiscard]] std::string to_string(const HypergraphStats& stats);

}  // namespace fhp

/// \file transform.hpp
/// Structure-preserving hypergraph rewrites used by Algorithm I's
/// preprocessing stages (§3 of the paper) and by the generators.
#pragma once

#include <vector>

#include "hypergraph/hypergraph.hpp"

namespace fhp {

/// Result of an edge-filtering transform. `kept_edges[i]` is the id, in the
/// *original* hypergraph, of edge `i` of the filtered hypergraph, so that
/// results computed on the filtered instance can be mapped back.
struct EdgeFilterResult {
  Hypergraph hypergraph;
  std::vector<EdgeId> kept_edges;
};

/// Drops every net with more than \p max_size pins (and, always, nets with
/// fewer than 2 pins, which can never be cut). This is the paper's
/// "heuristically ignore large edges" relaxation: a net of size k crosses
/// the min-cut bipartition with probability 1 - O(2^-k), so excluding nets
/// above a small threshold barely perturbs the optimum while bounding the
/// intersection-graph degree. The vertex set is unchanged.
[[nodiscard]] EdgeFilterResult filter_large_edges(const Hypergraph& h,
                                                  Count max_size);

/// Drops nets with fewer than 2 pins only.
[[nodiscard]] EdgeFilterResult filter_trivial_edges(const Hypergraph& h);

/// Result of granularization. `chunk_of[u]` maps each new vertex to its
/// original module; `chunks_of` gives, per original module, the list of new
/// vertex ids that replace it.
struct GranularizeResult {
  Hypergraph hypergraph;
  std::vector<VertexId> chunk_of;
  std::vector<std::vector<VertexId>> chunks_of;
};

/// The paper's *granularization* extension (§4 "Extensions"): every module
/// whose weight exceeds \p max_chunk_weight is replaced by
/// ceil(weight / max_chunk_weight) unit-linked chunks connected in a chain
/// of 2-pin "linking" nets of weight \p link_weight. Each original net is
/// rewired to pin the first chunk of each of its modules. A high link
/// weight discourages partitioners from splitting a module; the finer
/// granularity lets the weight balance come out much closer to even.
[[nodiscard]] GranularizeResult granularize(const Hypergraph& h,
                                            Weight max_chunk_weight,
                                            Weight link_weight = 1);

/// Projects a per-chunk side assignment back to original modules by
/// majority weight (ties go to side 0). Used after partitioning a
/// granularized instance. `chunk_sides[u]` in {0,1}.
[[nodiscard]] std::vector<std::uint8_t> project_granularized_sides(
    const GranularizeResult& g, const std::vector<std::uint8_t>& chunk_sides);

/// Returns the sub-hypergraph induced by `keep[v] == true` vertices:
/// every net is restricted to kept pins; restricted nets with < 2 pins are
/// dropped. `vertex_map` gives old→new vertex ids (kInvalidVertex when
/// dropped); `kept_vertices` is new→old.
struct InducedResult {
  Hypergraph hypergraph;
  std::vector<VertexId> vertex_map;
  std::vector<VertexId> kept_vertices;
  std::vector<EdgeId> kept_edges;
};
[[nodiscard]] InducedResult induced_subhypergraph(
    const Hypergraph& h, const std::vector<std::uint8_t>& keep);

}  // namespace fhp

/// \file report.hpp
/// Detailed partition analysis and human-readable reporting — what an
/// engineer inspects after a cut: which nets cross, how the crossing
/// probability grows with net size (the paper's Table 1 view of a single
/// partition), and the per-side composition.
#pragma once

#include <string>
#include <vector>

#include "partition/metrics.hpp"
#include "partition/partition.hpp"

namespace fhp {

/// Per-net-size crossing statistics of one partition.
struct CutProfile {
  /// nets_of_size[k] = number of nets with exactly k pins.
  std::vector<EdgeId> nets_of_size;
  /// cut_of_size[k] = how many of them cross the cut.
  std::vector<EdgeId> cut_of_size;

  /// Crossing fraction for size k (0 when no such net exists).
  [[nodiscard]] double crossing_fraction(Count k) const {
    if (k >= nets_of_size.size() || nets_of_size[k] == 0) return 0.0;
    return static_cast<double>(cut_of_size[k]) /
           static_cast<double>(nets_of_size[k]);
  }
};

/// Computes the crossing profile of \p p.
[[nodiscard]] CutProfile cut_profile(const Bipartition& p);

/// Full analysis of a bipartition.
struct PartitionReport {
  PartitionMetrics metrics;
  CutProfile profile;
  std::vector<EdgeId> cut_nets;         ///< ids of crossing nets, ascending
  Count min_cut_net_size = 0;   ///< smallest crossing net
  Count max_cut_net_size = 0;   ///< largest crossing net
  double avg_cut_net_size = 0.0;
  /// Pins of crossing nets stranded on the minority side (a router-load
  /// proxy): sum over cut nets of min(pins left, pins right).
  std::size_t minority_pins = 0;
};

/// Builds the full report for \p p.
[[nodiscard]] PartitionReport analyze(const Bipartition& p);

/// Renders the report as a multi-line human-readable string.
[[nodiscard]] std::string to_string(const PartitionReport& report);

}  // namespace fhp

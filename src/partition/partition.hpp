/// \file partition.hpp
/// Two-way partition representation for hypergraphs.
///
/// A Bipartition assigns every module a side in {0, 1} and incrementally
/// maintains per-net side pin counts and per-side weights, so that cut
/// queries and single-vertex moves (the workhorse of FM/SA baselines) are
/// O(degree) instead of O(pins).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hypergraph/hypergraph.hpp"
#include "util/ids.hpp"

namespace fhp {

/// A two-way partition of a hypergraph's vertex set, bound to the
/// hypergraph it partitions (held by reference — the hypergraph must
/// outlive the partition).
class Bipartition {
 public:
  /// Creates a partition with every module on side 0.
  explicit Bipartition(const Hypergraph& h);

  /// Creates a partition from explicit side assignments (0/1 per vertex).
  Bipartition(const Hypergraph& h, std::vector<std::uint8_t> sides);

  /// The partitioned hypergraph.
  [[nodiscard]] const Hypergraph& hypergraph() const noexcept { return *h_; }

  /// Side of module \p v.
  [[nodiscard]] std::uint8_t side(VertexId v) const {
    FHP_DEBUG_ASSERT(v < sides_.size(), "vertex out of range");
    return sides_[v];
  }
  /// All side assignments.
  [[nodiscard]] const std::vector<std::uint8_t>& sides() const noexcept {
    return sides_;
  }

  /// Moves module \p v to the opposite side, updating all incremental
  /// state in O(degree(v)).
  void flip(VertexId v);
  /// Moves module \p v to side \p to (no-op when already there).
  void move_to(VertexId v, std::uint8_t to);

  /// Number of pins of net \p e on side \p s.
  [[nodiscard]] Count pins_on_side(EdgeId e, std::uint8_t s) const {
    FHP_DEBUG_ASSERT(e < pins_on_side_[0].size(), "edge out of range");
    return pins_on_side_[s][e];
  }
  /// True iff net \p e has pins on both sides.
  [[nodiscard]] bool is_cut(EdgeId e) const {
    return pins_on_side_[0][e] > 0 && pins_on_side_[1][e] > 0;
  }

  /// Number of nets crossing the cut (unweighted; trivial nets never cut).
  [[nodiscard]] EdgeId cut_edges() const noexcept { return cut_edges_; }
  /// Total weight of nets crossing the cut.
  [[nodiscard]] Weight cut_weight() const noexcept { return cut_weight_; }

  /// Number of modules on side \p s.
  [[nodiscard]] VertexId count(std::uint8_t s) const noexcept {
    return counts_[s];
  }
  /// Total module weight on side \p s.
  [[nodiscard]] Weight weight(std::uint8_t s) const noexcept {
    return weights_[s];
  }
  /// | |V_L| - |V_R| | — the paper's r-bipartition slack in cardinality.
  [[nodiscard]] VertexId cardinality_imbalance() const noexcept {
    return counts_[0] > counts_[1] ? counts_[0] - counts_[1]
                                   : counts_[1] - counts_[0];
  }
  /// | w(V_L) - w(V_R) | — weight imbalance.
  [[nodiscard]] Weight weight_imbalance() const noexcept {
    return weights_[0] > weights_[1] ? weights_[0] - weights_[1]
                                     : weights_[1] - weights_[0];
  }
  /// True iff both sides are nonempty (a *cut* per the paper's §1
  /// definition requires disjoint nonempty sets).
  [[nodiscard]] bool is_proper() const noexcept {
    return counts_[0] > 0 && counts_[1] > 0;
  }

  /// Recomputes all incremental state from scratch and checks it against
  /// the maintained values; aborts on mismatch. For tests.
  void validate() const;

 private:
  void rebuild();

  const Hypergraph* h_;
  std::vector<std::uint8_t> sides_;
  std::vector<Count> pins_on_side_[2];
  VertexId counts_[2] = {0, 0};
  Weight weights_[2] = {0, 0};
  EdgeId cut_edges_ = 0;
  Weight cut_weight_ = 0;
};

}  // namespace fhp

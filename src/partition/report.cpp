#include "partition/report.hpp"

#include <algorithm>
#include <sstream>

#include "partition/metrics.hpp"

namespace fhp {

CutProfile cut_profile(const Bipartition& p) {
  const Hypergraph& h = p.hypergraph();
  CutProfile profile;
  profile.nets_of_size.assign(h.max_edge_size() + 1, 0);
  profile.cut_of_size.assign(h.max_edge_size() + 1, 0);
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    const Count size = h.edge_size(e);
    ++profile.nets_of_size[size];
    if (p.is_cut(e)) ++profile.cut_of_size[size];
  }
  return profile;
}

PartitionReport analyze(const Bipartition& p) {
  const Hypergraph& h = p.hypergraph();
  PartitionReport report;
  report.metrics = compute_metrics(p);
  report.profile = cut_profile(p);

  std::size_t size_sum = 0;
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    if (!p.is_cut(e)) continue;
    report.cut_nets.push_back(e);
    const Count size = h.edge_size(e);
    size_sum += size;
    if (report.cut_nets.size() == 1) {
      report.min_cut_net_size = size;
      report.max_cut_net_size = size;
    } else {
      report.min_cut_net_size = std::min(report.min_cut_net_size, size);
      report.max_cut_net_size = std::max(report.max_cut_net_size, size);
    }
    report.minority_pins +=
        std::min(p.pins_on_side(e, 0), p.pins_on_side(e, 1));
  }
  report.avg_cut_net_size =
      report.cut_nets.empty()
          ? 0.0
          : static_cast<double>(size_sum) /
                static_cast<double>(report.cut_nets.size());
  return report;
}

std::string to_string(const PartitionReport& report) {
  std::ostringstream os;
  os << to_string(report.metrics) << '\n';
  if (report.cut_nets.empty()) {
    os << "no crossing nets\n";
    return os.str();
  }
  os << "crossing nets: " << report.cut_nets.size() << " (sizes "
     << report.min_cut_net_size << ".." << report.max_cut_net_size
     << ", avg " << report.avg_cut_net_size << "), minority pins "
     << report.minority_pins << '\n';
  os << "crossing fraction by net size:";
  for (Count k = 2; k < report.profile.nets_of_size.size(); ++k) {
    if (report.profile.nets_of_size[k] == 0) continue;
    os << "  " << k << ":" << report.profile.cut_of_size[k] << '/'
       << report.profile.nets_of_size[k];
  }
  os << '\n';
  return os.str();
}

}  // namespace fhp

#include "partition/metrics.hpp"

#include <limits>
#include <sstream>

namespace fhp {

PartitionMetrics compute_metrics(const Bipartition& p) {
  PartitionMetrics m;
  m.cut_edges = p.cut_edges();
  m.cut_weight = p.cut_weight();
  m.left_count = p.count(0);
  m.right_count = p.count(1);
  m.left_weight = p.weight(0);
  m.right_weight = p.weight(1);
  m.cardinality_imbalance = p.cardinality_imbalance();
  m.weight_imbalance = p.weight_imbalance();
  m.proper = p.is_proper();
  m.quotient_cut = quotient_cut(p);
  m.ratio_cut = ratio_cut(p);
  return m;
}

double quotient_cut(const Bipartition& p) {
  if (!p.is_proper()) return std::numeric_limits<double>::infinity();
  return static_cast<double>(p.cut_weight()) /
         (static_cast<double>(p.count(0)) * static_cast<double>(p.count(1)));
}

double ratio_cut(const Bipartition& p) {
  if (!p.is_proper()) return std::numeric_limits<double>::infinity();
  return static_cast<double>(p.cut_weight()) /
         static_cast<double>(std::min(p.count(0), p.count(1)));
}

bool satisfies_r_balance(const Bipartition& p, VertexId r) {
  return p.cardinality_imbalance() <= r;
}

bool is_bisection(const Bipartition& p) { return satisfies_r_balance(p, 1); }

std::string to_string(const PartitionMetrics& m) {
  std::ostringstream os;
  os << "cut=" << m.cut_edges << " (weight " << m.cut_weight << "), sides "
     << m.left_count << "/" << m.right_count << " (weights " << m.left_weight
     << "/" << m.right_weight << "), quotient=" << m.quotient_cut;
  return os.str();
}

}  // namespace fhp

/// \file metrics.hpp
/// Partition quality metrics from the paper: hyperedge cutsize, the
/// r-bipartition balance criterion (Fiduccia–Mattheyses), the quotient-cut
/// objective of Leighton–Rao (§1), and ratio variants.
#pragma once

#include <string>

#include "partition/partition.hpp"

namespace fhp {

/// Quality summary of a bipartition.
struct PartitionMetrics {
  EdgeId cut_edges = 0;                ///< nets crossing the cut
  Weight cut_weight = 0;               ///< weighted cut
  VertexId left_count = 0;             ///< |V_L|
  VertexId right_count = 0;            ///< |V_R|
  Weight left_weight = 0;              ///< w(V_L)
  Weight right_weight = 0;             ///< w(V_R)
  VertexId cardinality_imbalance = 0;  ///< ||V_L| - |V_R||
  Weight weight_imbalance = 0;         ///< |w(V_L) - w(V_R)|
  double quotient_cut = 0.0;           ///< cut / (|V_L| * |V_R|)
  double ratio_cut = 0.0;              ///< cut / min(|V_L|, |V_R|)
  bool proper = false;                 ///< both sides nonempty
};

/// Computes all metrics of \p p.
[[nodiscard]] PartitionMetrics compute_metrics(const Bipartition& p);

/// The paper's quotient-cut objective e(V_L, V_R) / (|V_L| * |V_R|);
/// +infinity for improper cuts (so minimization never picks them).
[[nodiscard]] double quotient_cut(const Bipartition& p);

/// cut / min(|V_L|, |V_R|); +infinity for improper cuts.
[[nodiscard]] double ratio_cut(const Bipartition& p);

/// True iff the partition satisfies the r-bipartition criterion of
/// Fiduccia–Mattheyses: cardinality difference at most \p r.
[[nodiscard]] bool satisfies_r_balance(const Bipartition& p, VertexId r);

/// True iff the partition is a bisection per the paper's §1 definition:
/// | |V_L| - |V_R| | <= 1.
[[nodiscard]] bool is_bisection(const Bipartition& p);

/// One-line human-readable rendering of the metrics.
[[nodiscard]] std::string to_string(const PartitionMetrics& m);

}  // namespace fhp

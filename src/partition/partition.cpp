#include "partition/partition.hpp"

namespace fhp {

Bipartition::Bipartition(const Hypergraph& h)
    : Bipartition(h, std::vector<std::uint8_t>(h.num_vertices(), 0)) {}

Bipartition::Bipartition(const Hypergraph& h, std::vector<std::uint8_t> sides)
    : h_(&h), sides_(std::move(sides)) {
  FHP_REQUIRE(sides_.size() == h.num_vertices(),
              "one side per module expected");
  for (std::uint8_t s : sides_) {
    FHP_REQUIRE(s == 0 || s == 1, "sides must be 0 or 1");
  }
  rebuild();
}

void Bipartition::rebuild() {
  const Hypergraph& h = *h_;
  pins_on_side_[0].assign(h.num_edges(), 0);
  pins_on_side_[1].assign(h.num_edges(), 0);
  counts_[0] = counts_[1] = 0;
  weights_[0] = weights_[1] = 0;
  cut_edges_ = 0;
  cut_weight_ = 0;
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    const std::uint8_t s = sides_[v];
    ++counts_[s];
    weights_[s] += h.vertex_weight(v);
  }
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    for (VertexId v : h.pins(e)) ++pins_on_side_[sides_[v]][e];
    if (is_cut(e)) {
      ++cut_edges_;
      cut_weight_ += h.edge_weight(e);
    }
  }
}

void Bipartition::flip(VertexId v) {
  FHP_REQUIRE(v < sides_.size(), "vertex out of range");
  const Hypergraph& h = *h_;
  const std::uint8_t from = sides_[v];
  const std::uint8_t to = static_cast<std::uint8_t>(1 - from);
  sides_[v] = to;
  --counts_[from];
  ++counts_[to];
  weights_[from] -= h.vertex_weight(v);
  weights_[to] += h.vertex_weight(v);
  for (EdgeId e : h.nets_of(v)) {
    const bool was_cut = is_cut(e);
    --pins_on_side_[from][e];
    ++pins_on_side_[to][e];
    const bool now_cut = is_cut(e);
    if (was_cut != now_cut) {
      if (now_cut) {
        ++cut_edges_;
        cut_weight_ += h.edge_weight(e);
      } else {
        --cut_edges_;
        cut_weight_ -= h.edge_weight(e);
      }
    }
  }
}

void Bipartition::move_to(VertexId v, std::uint8_t to) {
  FHP_REQUIRE(to == 0 || to == 1, "side must be 0 or 1");
  if (side(v) != to) flip(v);
}

void Bipartition::validate() const {
  Bipartition fresh(*h_, sides_);
  FHP_ASSERT(fresh.cut_edges_ == cut_edges_, "stale cut edge count");
  FHP_ASSERT(fresh.cut_weight_ == cut_weight_, "stale cut weight");
  FHP_ASSERT(fresh.counts_[0] == counts_[0] && fresh.counts_[1] == counts_[1],
             "stale side counts");
  FHP_ASSERT(
      fresh.weights_[0] == weights_[0] && fresh.weights_[1] == weights_[1],
      "stale side weights");
  for (int s = 0; s < 2; ++s) {
    FHP_ASSERT(fresh.pins_on_side_[s] == pins_on_side_[s],
               "stale pin distribution");
  }
}

}  // namespace fhp

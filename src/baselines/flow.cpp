#include "baselines/flow.hpp"

#include <algorithm>

#include "graph/maxflow.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace fhp {

namespace {

/// BFS over the hypergraph itself (module → nets → modules); returns the
/// farthest module from \p source (modules in other components excluded).
VertexId farthest_module(const Hypergraph& h, VertexId source) {
  std::vector<std::uint8_t> seen_vertex(h.num_vertices(), 0);
  std::vector<std::uint8_t> seen_edge(h.num_edges(), 0);
  std::vector<VertexId> queue{source};
  seen_vertex[source] = 1;
  VertexId last = source;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const VertexId u = queue[head];
    last = u;
    for (EdgeId e : h.nets_of(u)) {
      if (seen_edge[e]) continue;
      seen_edge[e] = 1;
      for (VertexId w : h.pins(e)) {
        if (seen_vertex[w]) continue;
        seen_vertex[w] = 1;
        queue.push_back(w);
      }
    }
  }
  return last;
}

/// One min-cut solve with collapsed terminal sets: every module marked in
/// \p in_s (\p in_t) is wired to the super source (sink) with uncuttable
/// arcs. Returns the source-side marker per module and the cut weight.
struct CutResult {
  std::vector<std::uint8_t> source_side;
  FlowNetwork::Capacity cut = 0;
};

CutResult solve_cut(const Hypergraph& h, const std::vector<std::uint8_t>& in_s,
                    const std::vector<std::uint8_t>& in_t) {
  FHP_TRACE_SCOPE("maxflow_solve");
  FHP_COUNTER_ADD("flow/maxflow_solves", 1);
  // Gadget sizing in 64-bit so a node count past the index range fails
  // typed in FlowNetwork's admission instead of wrapping on the way there.
  const std::uint64_t nodes64 = static_cast<std::uint64_t>(h.num_vertices()) +
                                2 * static_cast<std::uint64_t>(h.num_edges()) +
                                2;
  FHP_REQUIRE(nodes64 <= kMaxIndexCount,
              "flow gadget node count exceeds the index range");
  const Count n = h.num_vertices();
  const Count super_s = n + 2 * h.num_edges();
  const Count super_t = super_s + 1;
  FlowNetwork net(super_t + 1);
  // Standard hyperedge gadget: cutting net e costs edge_weight(e) once.
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    const Count in = n + 2 * e;
    const Count out = in + 1;
    net.add_arc(in, out, h.edge_weight(e));
    for (VertexId v : h.pins(e)) {
      net.add_arc(v, in, FlowNetwork::kInfiniteCapacity);
      net.add_arc(out, v, FlowNetwork::kInfiniteCapacity);
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    if (in_s[v]) net.add_arc(super_s, v, FlowNetwork::kInfiniteCapacity);
    if (in_t[v]) net.add_arc(v, super_t, FlowNetwork::kInfiniteCapacity);
  }
  CutResult result;
  result.cut = net.max_flow(super_s, super_t);
  const std::vector<std::uint8_t> reach = net.min_cut_side();
  result.source_side.assign(n, 0);
  for (VertexId v = 0; v < n; ++v) result.source_side[v] = reach[v];
  return result;
}

/// A module outside \p region (and outside \p forbidden) sharing a net
/// with it, or any unclaimed module as a fallback; kInvalidVertex if all
/// modules are claimed.
VertexId pick_adjacent(const Hypergraph& h,
                       const std::vector<std::uint8_t>& region,
                       const std::vector<std::uint8_t>& forbidden) {
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    if (!region[v]) continue;
    for (EdgeId e : h.nets_of(v)) {
      for (VertexId w : h.pins(e)) {
        if (!region[w] && !forbidden[w]) return w;
      }
    }
  }
  for (VertexId w = 0; w < h.num_vertices(); ++w) {
    if (!region[w] && !forbidden[w]) return w;
  }
  return kInvalidVertex;
}

/// Flow-Balanced-Bipartition loop for one terminal pair: repeatedly solve
/// the min cut and, while the source side is outside the target occupancy
/// band, collapse it (plus one adjacent module, forcing progress) into
/// its terminal. Returns the final sides (source side = 0).
std::vector<std::uint8_t> fbb(const Hypergraph& h, VertexId s, VertexId t,
                              VertexId lo, VertexId hi) {
  const VertexId n = h.num_vertices();
  std::vector<std::uint8_t> in_s(n, 0);
  std::vector<std::uint8_t> in_t(n, 0);
  in_s[s] = 1;
  in_t[t] = 1;

  std::vector<std::uint8_t> sides(n, 1);
  for (VertexId round = 0; round < n; ++round) {
    const CutResult cut = solve_cut(h, in_s, in_t);
    VertexId source_count = 0;
    for (VertexId v = 0; v < n; ++v) {
      sides[v] = cut.source_side[v] ? 0 : 1;
      source_count += cut.source_side[v];
    }
    if (source_count >= lo && source_count <= hi) break;

    if (source_count < lo) {
      // Source side too small: absorb it into S and grab one neighbor.
      for (VertexId v = 0; v < n; ++v) {
        if (cut.source_side[v]) in_s[v] = 1;
      }
      const VertexId extra = pick_adjacent(h, in_s, in_t);
      if (extra == kInvalidVertex) break;
      in_s[extra] = 1;
    } else {
      // Sink side too small: absorb it into T and grab one neighbor.
      std::vector<std::uint8_t> sink_side(n, 0);
      for (VertexId v = 0; v < n; ++v) sink_side[v] = !cut.source_side[v];
      for (VertexId v = 0; v < n; ++v) {
        if (sink_side[v]) in_t[v] = 1;
      }
      const VertexId extra = pick_adjacent(h, in_t, in_s);
      if (extra == kInvalidVertex) break;
      in_t[extra] = 1;
    }
  }
  return sides;
}

}  // namespace

BaselineResult flow_bipartition(const Hypergraph& h,
                                const FlowOptions& options) {
  FHP_TRACE_SCOPE("flow");
  FHP_COUNTER_ADD("flow/runs", 1);
  FHP_REQUIRE(h.num_vertices() >= 2, "need at least two modules");
  FHP_REQUIRE(options.pairs >= 1, "need at least one terminal pair");
  FHP_REQUIRE(options.balance_fraction > 0.0 &&
                  options.balance_fraction <= 1.0,
              "balance fraction must be in (0, 1]");
  Rng rng(options.seed);

  const VertexId n = h.num_vertices();
  const auto slack = static_cast<VertexId>(
      options.balance_fraction * static_cast<double>(n) / 2.0);
  const VertexId lo = (n / 2 > slack) ? n / 2 - slack : 1;
  const VertexId hi = std::min<VertexId>(n - 1, (n + 1) / 2 + slack);

  BaselineResult best;
  bool have_best = false;
  int solved = 0;
  for (int attempt = 0; attempt < options.pairs; ++attempt) {
    const auto s = static_cast<VertexId>(rng.next_below(n));
    VertexId t = farthest_module(h, s);
    if (t == s) t = (s == 0) ? 1 : 0;
    ++solved;

    BaselineResult candidate;
    candidate.sides = fbb(h, s, t, lo, hi);
    candidate.metrics = compute_metrics(Bipartition(h, candidate.sides));
    if (!candidate.metrics.proper) continue;

    const bool take =
        !have_best ||
        candidate.metrics.cut_weight < best.metrics.cut_weight ||
        (candidate.metrics.cut_weight == best.metrics.cut_weight &&
         candidate.metrics.cardinality_imbalance <
             best.metrics.cardinality_imbalance);
    if (take) {
      best = std::move(candidate);
      have_best = true;
    }
  }

  if (!have_best) {
    // Only reachable on degenerate inputs; fall back to a random bisection.
    best = random_bisection(h, options.seed);
  }
  FHP_COUNTER_ADD("flow/terminal_pairs", solved);
  best.iterations = solved;
  return best;
}

}  // namespace fhp

/// \file kl.hpp
/// Kernighan–Lin style pair-swap bipartitioning ("MinCut-KL" in the
/// paper's Table 2), with the Schweikert–Kernighan net model: gains are
/// computed on hyperedges directly rather than on a clique expansion.
///
/// Each pass tentatively swaps module pairs — the highest-gain unlocked
/// module on each side — locking both, and finally rolls back to the best
/// prefix of swaps. Cardinality balance is preserved exactly by
/// construction (every step moves one module each way), which matches the
/// bisection variant Kernighan–Lin define. Passes repeat until no
/// improvement, the classic O(n² log n)-per-pass regime the paper cites.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "baselines/random_cut.hpp"
#include "hypergraph/hypergraph.hpp"

namespace fhp {

/// Tuning knobs for the KL baseline.
struct KlOptions {
  int max_passes = 16;  ///< stop after this many passes regardless
  std::uint64_t seed = 1;
  /// Optional starting partition (defaults to a random bisection).
  std::optional<std::vector<std::uint8_t>> initial;
};

/// Runs pair-swap Kernighan–Lin on \p h. Requires >= 2 modules.
/// `iterations` counts completed passes.
[[nodiscard]] BaselineResult kernighan_lin(const Hypergraph& h,
                                           const KlOptions& options = {});

}  // namespace fhp

/// \file multilevel.hpp
/// Mini-multilevel hypergraph bipartitioner — the "future work" successor
/// family to the paper's single-level heuristic (heavy-edge coarsening →
/// initial partition at the coarsest level → uncoarsen with FM
/// refinement, the V-cycle popularized by hMETIS).
///
/// Included as a forward-looking comparison point: `bench_table2` shows
/// where the 1989 heuristic stands against its successors, and the
/// shootout example races it against everything else.
#pragma once

#include <cstdint>

#include "baselines/random_cut.hpp"
#include "hypergraph/hypergraph.hpp"

namespace fhp {

/// Tuning knobs for the multilevel partitioner.
struct MultilevelOptions {
  /// Stop coarsening when at most this many vertices remain.
  VertexId coarsest_size = 60;
  /// Stop coarsening when one level shrinks by less than this factor.
  double min_shrink = 0.9;
  /// Nets larger than this are ignored while *rating* merges (they carry
  /// no locality signal); 0 disables the cap.
  std::uint32_t rating_net_cap = 16;
  /// Random initial-partition attempts at the coarsest level.
  int initial_attempts = 8;
  /// FM passes per uncoarsening level.
  int refine_passes = 8;
  /// Weight-imbalance tolerance passed to the refinement; 0 = auto.
  Weight max_weight_imbalance = 0;
  std::uint64_t seed = 1;
};

/// Runs the multilevel V-cycle on \p h. Requires >= 2 modules.
/// `iterations` reports the number of levels in the hierarchy.
[[nodiscard]] BaselineResult multilevel_bipartition(
    const Hypergraph& h, const MultilevelOptions& options = {});

}  // namespace fhp

#include "baselines/random_cut.hpp"

#include <numeric>

#include "util/rng.hpp"

namespace fhp {

bool is_degenerate_instance(const Hypergraph& h) noexcept {
  return h.num_vertices() < 2;
}

BaselineResult trivial_baseline_result(const Hypergraph& h) {
  BaselineResult result;
  result.sides.assign(h.num_vertices(), 0);
  result.metrics = compute_metrics(Bipartition(h, result.sides));
  result.iterations = 0;
  return result;
}

BaselineResult random_bisection(const Hypergraph& h, std::uint64_t seed) {
  FHP_REQUIRE(h.num_vertices() >= 2, "need at least two modules");
  Rng rng(seed);
  std::vector<VertexId> order(h.num_vertices());
  std::iota(order.begin(), order.end(), 0U);
  rng.shuffle(order);

  BaselineResult result;
  result.sides.assign(h.num_vertices(), 0);
  for (std::size_t i = order.size() / 2; i < order.size(); ++i) {
    result.sides[order[i]] = 1;
  }
  result.metrics = compute_metrics(Bipartition(h, result.sides));
  result.iterations = 1;
  return result;
}

BaselineResult best_random_bisection(const Hypergraph& h, int tries,
                                     std::uint64_t seed) {
  FHP_REQUIRE(tries >= 1, "need at least one try");
  Rng rng(seed);
  BaselineResult best;
  for (int i = 0; i < tries; ++i) {
    BaselineResult candidate = random_bisection(h, rng());
    if (i == 0 || candidate.metrics.cut_edges < best.metrics.cut_edges) {
      best = std::move(candidate);
    }
  }
  best.iterations = tries;
  return best;
}

}  // namespace fhp

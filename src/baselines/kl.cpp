#include "baselines/kl.hpp"

#include <algorithm>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "partition/partition.hpp"

namespace fhp {

namespace {

/// Single-module move gain under the hyperedge cut model (identical to the
/// FM cell gain; KL uses it per side when choosing swap halves).
Weight move_gain(const Bipartition& p, VertexId v) {
  const Hypergraph& h = p.hypergraph();
  const std::uint8_t s = p.side(v);
  Weight gain = 0;
  for (EdgeId e : h.nets_of(v)) {
    if (p.pins_on_side(e, s) == 1) gain += h.edge_weight(e);
    if (p.pins_on_side(e, static_cast<std::uint8_t>(1 - s)) == 0) {
      gain -= h.edge_weight(e);
    }
  }
  return gain;
}

/// Best unlocked vertex on side \p s by move gain; kInvalidVertex if none.
VertexId best_on_side(const Bipartition& p,
                      const std::vector<std::uint8_t>& locked,
                      std::uint8_t s) {
  VertexId best = kInvalidVertex;
  Weight best_gain = 0;
  for (VertexId v = 0; v < p.hypergraph().num_vertices(); ++v) {
    if (locked[v] || p.side(v) != s) continue;
    const Weight g = move_gain(p, v);
    if (best == kInvalidVertex || g > best_gain) {
      best = v;
      best_gain = g;
    }
  }
  return best;
}

}  // namespace

BaselineResult kernighan_lin(const Hypergraph& h, const KlOptions& options) {
  FHP_TRACE_SCOPE("kl");
  FHP_COUNTER_ADD("kl/runs", 1);
  FHP_REQUIRE(options.max_passes >= 1, "need at least one pass");
  if (is_degenerate_instance(h)) return trivial_baseline_result(h);

  std::vector<std::uint8_t> sides;
  if (options.initial.has_value()) {
    sides = *options.initial;
    FHP_REQUIRE(sides.size() == h.num_vertices(),
                "initial partition must cover every module");
  } else {
    sides = random_bisection(h, options.seed).sides;
  }
  Bipartition p(h, std::move(sides));

  int passes = 0;
  for (; passes < options.max_passes; ++passes) {
    std::vector<std::uint8_t> locked(h.num_vertices(), 0);
    std::vector<std::pair<VertexId, VertexId>> swaps;
    const Weight start_cut = p.cut_weight();
    Weight best_cut = start_cut;
    std::size_t best_prefix = 0;

    for (;;) {
      // Pick the two halves of the swap greedily by single-move gain;
      // applying sequentially makes the second choice see the first move's
      // effect, approximating the D_a + D_b - 2 c_ab pair gain.
      const VertexId a = best_on_side(p, locked, 0);
      if (a == kInvalidVertex) break;
      p.flip(a);
      const VertexId b = best_on_side(p, locked, 1);
      if (b == kInvalidVertex) {
        p.flip(a);  // no partner: undo and end the pass
        break;
      }
      p.flip(b);
      locked[a] = 1;
      locked[b] = 1;
      swaps.emplace_back(a, b);
      if (p.cut_weight() < best_cut) {
        best_cut = p.cut_weight();
        best_prefix = swaps.size();
      }
    }

    FHP_COUNTER_ADD("kl/swaps", static_cast<long long>(swaps.size()));
    FHP_COUNTER_ADD("kl/swaps_rolled_back",
                    static_cast<long long>(swaps.size() - best_prefix));
    while (swaps.size() > best_prefix) {
      const auto [a, b] = swaps.back();
      swaps.pop_back();
      p.flip(a);
      p.flip(b);
    }
    if (best_cut >= start_cut) break;
  }
  FHP_COUNTER_ADD("kl/passes", passes);

  BaselineResult result;
  result.sides = p.sides();
  result.metrics = compute_metrics(p);
  result.iterations = passes;
  return result;
}

}  // namespace fhp

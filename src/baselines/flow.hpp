/// \file flow.hpp
/// Network-flow bipartitioning (the family the paper lists among its
/// competitors: Chopra [7], Hu–Moerder multiterminal hypergraph flows
/// [16]; the approach later popularized as FBB).
///
/// Each net is modeled by the standard two-node gadget (in → out arc of
/// capacity = net weight, uncuttable arcs from/to its pins), so a minimum
/// s-t cut of the flow network is exactly a minimum net cut separating
/// modules s and t. Balance is enforced FBB-style: while the source side
/// of the min cut is outside the target occupancy band, it is collapsed
/// into its terminal together with one adjacent module (forcing progress)
/// and the cut is re-solved. Several far-apart terminal pairs are tried
/// and the best balanced cut wins. The repeated max-flow solves are the
/// "O(n^3) or higher complexity" cost the paper attributes to this
/// family.
#pragma once

#include <cstdint>

#include "baselines/random_cut.hpp"
#include "hypergraph/hypergraph.hpp"

namespace fhp {

/// Tuning knobs for the flow baseline.
struct FlowOptions {
  /// Number of (s, t) terminal pairs to try.
  int pairs = 8;
  /// Maximum acceptable |count_L - count_R| as a fraction of the module
  /// count; cuts beyond it only win if nothing meets the tolerance.
  double balance_fraction = 0.5;
  std::uint64_t seed = 1;
};

/// Runs the flow-based bipartitioner on \p h. Requires >= 2 modules.
/// `iterations` counts terminal pairs solved.
[[nodiscard]] BaselineResult flow_bipartition(const Hypergraph& h,
                                              const FlowOptions& options = {});

}  // namespace fhp

#include "baselines/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace fhp {

namespace {

/// Sparse symmetric weighted adjacency in CSR form.
struct WeightedGraph {
  std::vector<std::size_t> offsets;
  std::vector<VertexId> neighbors;
  std::vector<double> weights;
  std::vector<double> degree;  ///< weighted degree per vertex
};

/// Clique expansion with per-net weight w(e)/(|e|-1) (the standard net
/// model for spectral methods: total weight of a net's clique ~ w(e)).
WeightedGraph clique_expand(const Hypergraph& h, std::uint32_t net_cap) {
  const VertexId n = h.num_vertices();
  std::unordered_map<std::uint64_t, double> pair_weight;
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    const auto pins = h.pins(e);
    if (pins.size() < 2) continue;
    if (net_cap > 0 && pins.size() > net_cap) continue;
    const double w = static_cast<double>(h.edge_weight(e)) /
                     static_cast<double>(pins.size() - 1);
    for (std::size_t i = 0; i < pins.size(); ++i) {
      for (std::size_t j = i + 1; j < pins.size(); ++j) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(pins[i]) << 32) | pins[j];
        pair_weight[key] += w;
      }
    }
  }

  WeightedGraph g;
  g.degree.assign(n, 0.0);
  std::vector<std::size_t> counts(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [key, w] : pair_weight) {
    const auto u = static_cast<VertexId>(key >> 32);
    const auto v = static_cast<VertexId>(key & 0xffffffffU);
    ++counts[u + 1];
    ++counts[v + 1];
    g.degree[u] += w;
    g.degree[v] += w;
  }
  std::partial_sum(counts.begin(), counts.end(), counts.begin());
  g.offsets = counts;
  g.neighbors.resize(pair_weight.size() * 2);
  g.weights.resize(pair_weight.size() * 2);
  std::vector<std::size_t> cursor(counts.begin(), counts.end() - 1);
  for (const auto& [key, w] : pair_weight) {
    const auto u = static_cast<VertexId>(key >> 32);
    const auto v = static_cast<VertexId>(key & 0xffffffffU);
    g.neighbors[cursor[u]] = v;
    g.weights[cursor[u]++] = w;
    g.neighbors[cursor[v]] = u;
    g.weights[cursor[v]++] = w;
  }
  return g;
}

/// Approximates the Fiedler vector of L = D - W by power iteration on the
/// shifted operator M = c I - L (largest eigenvector of M among vectors
/// orthogonal to the constant vector = smallest nontrivial of L).
std::vector<double> fiedler_vector(const WeightedGraph& g, int iterations,
                                   Rng& rng) {
  const std::size_t n = g.degree.size();
  double max_degree = 0.0;
  for (double d : g.degree) max_degree = std::max(max_degree, d);
  const double shift = 2.0 * max_degree + 1.0;

  std::vector<double> x(n);
  for (double& v : x) v = rng.next_double() - 0.5;
  std::vector<double> y(n);

  auto orthogonalize_normalize = [&](std::vector<double>& v) {
    double mean = 0.0;
    for (double a : v) mean += a;
    mean /= static_cast<double>(n);
    double norm = 0.0;
    for (double& a : v) {
      a -= mean;
      norm += a * a;
    }
    norm = std::sqrt(norm);
    if (norm < 1e-30) {
      // Degenerate (constant) vector; re-randomize.
      for (double& a : v) a = rng.next_double() - 0.5;
      return false;
    }
    for (double& a : v) a /= norm;
    return true;
  };
  (void)orthogonalize_normalize(x);

  for (int iter = 0; iter < iterations; ++iter) {
    // y = (shift I - L) x = (shift - deg) x + W x
    for (std::size_t u = 0; u < n; ++u) {
      double acc = (shift - g.degree[u]) * x[u];
      for (std::size_t k = g.offsets[u]; k < g.offsets[u + 1]; ++k) {
        acc += g.weights[k] * x[g.neighbors[k]];
      }
      y[u] = acc;
    }
    x.swap(y);
    if (!orthogonalize_normalize(x)) continue;
  }
  return x;
}

}  // namespace

BaselineResult spectral_bipartition(const Hypergraph& h,
                                    const SpectralOptions& options) {
  FHP_TRACE_SCOPE("spectral");
  FHP_COUNTER_ADD("spectral/runs", 1);
  FHP_REQUIRE(h.num_vertices() >= 2, "need at least two modules");
  FHP_REQUIRE(options.iterations >= 1, "need at least one iteration");
  FHP_REQUIRE(options.min_side_fraction > 0.0 &&
                  options.min_side_fraction <= 0.5,
              "side fraction must be in (0, 0.5]");
  Rng rng(options.seed);

  const WeightedGraph g = [&] {
    FHP_TRACE_SCOPE("clique_expand");
    return clique_expand(h, options.clique_net_cap);
  }();
  const std::vector<double> fiedler = [&] {
    FHP_TRACE_SCOPE("fiedler");
    FHP_COUNTER_ADD("spectral/power_iterations", options.iterations);
    return fiedler_vector(g, options.iterations, rng);
  }();

  // Sweep cut: order modules by Fiedler value and take the best prefix
  // within the balance band. The incremental Bipartition makes the whole
  // sweep O(pins).
  std::vector<VertexId> order(h.num_vertices());
  std::iota(order.begin(), order.end(), 0U);
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return fiedler[a] != fiedler[b] ? fiedler[a] < fiedler[b] : a < b;
  });

  Bipartition p(h, std::vector<std::uint8_t>(h.num_vertices(), 1));
  const double total = static_cast<double>(h.total_vertex_weight());
  const double lo = options.min_side_fraction * total;

  std::vector<std::uint8_t> best_sides;
  Weight best_cut = 0;
  Weight best_imbalance = 0;
  bool have_best = false;
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    p.flip(order[i]);  // move to side 0
    const auto w0 = static_cast<double>(p.weight(0));
    const auto w1 = static_cast<double>(p.weight(1));
    if (w0 < lo || w1 < lo) continue;
    if (!have_best || p.cut_weight() < best_cut ||
        (p.cut_weight() == best_cut &&
         p.weight_imbalance() < best_imbalance)) {
      best_sides = p.sides();
      best_cut = p.cut_weight();
      best_imbalance = p.weight_imbalance();
      have_best = true;
    }
  }
  if (!have_best) {
    // Balance band empty (e.g. one module dominates the weight): take
    // the median split of the ordering.
    Bipartition median(h, std::vector<std::uint8_t>(h.num_vertices(), 1));
    for (std::size_t i = 0; i < order.size() / 2; ++i) {
      median.flip(order[i]);
    }
    best_sides = median.sides();
  }

  BaselineResult result;
  result.sides = std::move(best_sides);
  result.metrics = compute_metrics(Bipartition(h, result.sides));
  result.iterations = options.iterations;
  return result;
}

}  // namespace fhp

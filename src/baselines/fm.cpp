#include "baselines/fm.hpp"

#include <algorithm>
#include <queue>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace fhp {

namespace {

/// Gain of moving \p v to the other side: net weight uncut minus net
/// weight newly cut (the Fiduccia–Mattheyses cell gain).
Weight cell_gain(const Bipartition& p, VertexId v) {
  const Hypergraph& h = p.hypergraph();
  const std::uint8_t s = p.side(v);
  Weight gain = 0;
  for (EdgeId e : h.nets_of(v)) {
    if (p.pins_on_side(e, s) == 1) gain += h.edge_weight(e);
    if (p.pins_on_side(e, static_cast<std::uint8_t>(1 - s)) == 0) {
      gain -= h.edge_weight(e);
    }
  }
  return gain;
}

/// Lazy max-heap entry: (gain, vertex). Entries go stale when the vertex
/// moves, locks, or its gain changes; staleness is detected at pop time
/// against the authoritative gain/lock arrays.
using HeapEntry = std::pair<Weight, VertexId>;
using GainHeap = std::priority_queue<HeapEntry>;

class FmPass {
 public:
  FmPass(Bipartition& p, Weight tolerance, int& moves_budget,
         const std::vector<std::uint8_t>& fixed)
      : p_(p),
        tolerance_(tolerance),
        moves_budget_(moves_budget),
        fixed_(fixed) {}

  /// Runs one pass; returns true if the cut (or, at equal cut, the weight
  /// imbalance) improved.
  bool run() {
    const Hypergraph& h = p_.hypergraph();
    const VertexId n = h.num_vertices();
    if (fixed_.empty()) {
      locked_.assign(n, 0);
    } else {
      locked_ = fixed_;  // fixed modules start (and stay) locked
    }
    gain_.resize(n);
    heap_[0] = GainHeap();
    heap_[1] = GainHeap();
    for (VertexId v = 0; v < n; ++v) {
      if (locked_[v]) continue;
      gain_[v] = cell_gain(p_, v);
      heap_[p_.side(v)].emplace(gain_[v], v);
    }

    const Weight start_cut = p_.cut_weight();
    const Weight start_imbalance = p_.weight_imbalance();
    Weight best_cut = start_cut;
    Weight best_imbalance = start_imbalance;
    std::size_t best_prefix = 0;
    std::vector<VertexId> moves;

    while (moves_budget_ > 0) {
      const VertexId v = pick_move();
      if (v == kInvalidVertex) break;
      --moves_budget_;
      apply_move(v);
      moves.push_back(v);
      const Weight cut = p_.cut_weight();
      const Weight imbalance = p_.weight_imbalance();
      if (cut < best_cut || (cut == best_cut && imbalance < best_imbalance)) {
        best_cut = cut;
        best_imbalance = imbalance;
        best_prefix = moves.size();
      }
    }

    FHP_COUNTER_ADD("fm/moves", static_cast<long long>(moves.size()));
    FHP_COUNTER_ADD("fm/moves_rolled_back",
                    static_cast<long long>(moves.size() - best_prefix));

    // Roll back to the best prefix.
    while (moves.size() > best_prefix) {
      p_.flip(moves.back());
      moves.pop_back();
    }
    return best_cut < start_cut ||
           (best_cut == start_cut && best_imbalance < start_imbalance &&
            best_prefix > 0);
  }

 private:
  /// True iff moving \p v keeps the partition within tolerance.
  [[nodiscard]] bool legal(VertexId v) const {
    const Hypergraph& h = p_.hypergraph();
    const std::uint8_t s = p_.side(v);
    const Weight w = h.vertex_weight(v);
    const Weight from = p_.weight(s) - w;
    const Weight to = p_.weight(static_cast<std::uint8_t>(1 - s)) + w;
    return std::max(from, to) - std::min(from, to) <= tolerance_;
  }

  /// Highest-gain unlocked legal move across both side heaps.
  VertexId pick_move() {
    HeapEntry best{0, kInvalidVertex};
    bool have = false;
    std::vector<HeapEntry> stash;
    for (int s = 0; s < 2; ++s) {
      GainHeap& heap = heap_[s];
      stash.clear();
      while (!heap.empty()) {
        const HeapEntry top = heap.top();
        const VertexId v = top.second;
        if (locked_[v] || p_.side(v) != s || gain_[v] != top.first) {
          heap.pop();  // stale
          continue;
        }
        if (!legal(v)) {
          stash.push_back(top);  // valid but currently illegal: keep
          heap.pop();
          continue;
        }
        if (!have || top.first > best.first) {
          best = top;
          have = true;
        }
        break;
      }
      for (const HeapEntry& entry : stash) heap.push(entry);
    }
    return have ? best.second : kInvalidVertex;
  }

  /// Executes the move and refreshes gains of affected unlocked pins.
  void apply_move(VertexId v) {
    const Hypergraph& h = p_.hypergraph();
    locked_[v] = 1;
    p_.flip(v);
    for (EdgeId e : h.nets_of(v)) {
      for (VertexId u : h.pins(e)) {
        if (locked_[u]) continue;
        const Weight g = cell_gain(p_, u);
        if (g != gain_[u]) {
          gain_[u] = g;
          heap_[p_.side(u)].emplace(g, u);
        }
      }
    }
  }

  Bipartition& p_;
  Weight tolerance_;
  int& moves_budget_;
  const std::vector<std::uint8_t>& fixed_;
  std::vector<std::uint8_t> locked_;
  std::vector<Weight> gain_;
  GainHeap heap_[2];
};

}  // namespace

BaselineResult fiduccia_mattheyses(const Hypergraph& h,
                                   const FmOptions& options) {
  FHP_TRACE_SCOPE("fm");
  FHP_COUNTER_ADD("fm/runs", 1);
  FHP_REQUIRE(options.max_passes >= 1, "need at least one pass");
  if (is_degenerate_instance(h)) return trivial_baseline_result(h);

  std::vector<std::uint8_t> sides;
  if (options.initial.has_value()) {
    sides = *options.initial;
    FHP_REQUIRE(sides.size() == h.num_vertices(),
                "initial partition must cover every module");
  } else {
    sides = random_bisection(h, options.seed).sides;
  }
  Bipartition p(h, std::move(sides));

  Weight tolerance = options.max_weight_imbalance;
  if (tolerance <= 0) {
    Weight max_w = 1;
    for (VertexId v = 0; v < h.num_vertices(); ++v) {
      max_w = std::max(max_w, h.vertex_weight(v));
    }
    tolerance = 2 * max_w;
  }
  // Never demand a tighter balance than the starting partition satisfies,
  // or no move could ever be rolled into a legal prefix.
  tolerance = std::max(tolerance, p.weight_imbalance());

  BaselineResult result;
  // Global move budget keeps the baseline politely bounded on adversarial
  // instances; ordinary runs converge long before it is reached.
  int moves_budget =
      options.max_passes * static_cast<int>(h.num_vertices()) * 2;
  FHP_REQUIRE(options.fixed.empty() ||
                  options.fixed.size() == h.num_vertices(),
              "fixed mask must be empty or cover every module");
  int passes = 0;
  for (; passes < options.max_passes; ++passes) {
    FmPass pass(p, tolerance, moves_budget, options.fixed);
    if (!pass.run()) break;
  }
  FHP_COUNTER_ADD("fm/passes", passes);
  result.sides = p.sides();
  result.metrics = compute_metrics(p);
  result.iterations = passes;
  return result;
}

}  // namespace fhp

/// \file fm.hpp
/// Fiduccia–Mattheyses iterative-improvement bipartitioning [9].
///
/// The linear-time cell-gain heuristic the paper lists among the min-cut
/// improvements (§1). Pass structure: starting from a (random or given)
/// partition, repeatedly move the highest-gain unlocked module whose move
/// keeps the partition within the balance tolerance, lock it, update
/// neighbor gains; at the end of the pass roll back to the best prefix.
/// Passes repeat until one fails to improve the cut.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "baselines/random_cut.hpp"
#include "hypergraph/hypergraph.hpp"

namespace fhp {

/// Tuning knobs for the FM baseline.
struct FmOptions {
  /// Maximum |w(V_L) - w(V_R)| a move may create. 0 = auto: the largest
  /// module weight (so some move is always legal), i.e. the classic
  /// Fiduccia–Mattheyses tolerance.
  Weight max_weight_imbalance = 0;
  /// Give up after this many passes even if still improving.
  int max_passes = 32;
  /// Seed for the initial random bisection (and tie-breaking).
  std::uint64_t seed = 1;
  /// Optional starting partition; when set, its sides are used instead of
  /// a random bisection (e.g. to refine Algorithm I's output).
  std::optional<std::vector<std::uint8_t>> initial;
  /// Optional fixed-module mask (1 = module may never move). Supports
  /// pad-constrained partitioning and terminal propagation: fix the
  /// pseudo-terminals to their sides and refine the rest. Must be empty
  /// or one entry per module; fixed modules keep their `initial` side.
  std::vector<std::uint8_t> fixed;
};

/// Runs Fiduccia–Mattheyses on \p h. Requires >= 2 modules.
/// `iterations` in the result counts completed passes.
[[nodiscard]] BaselineResult fiduccia_mattheyses(const Hypergraph& h,
                                                 const FmOptions& options = {});

}  // namespace fhp

#include "baselines/multilevel.hpp"

#include <algorithm>
#include <numeric>

#include "baselines/fm.hpp"
#include "hypergraph/contract.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace fhp {

namespace {

/// One heavy-edge-matching coarsening step. Vertices are visited in
/// random order; each unmatched vertex merges with the unmatched neighbor
/// of highest connectivity rating sum(w(e) / (|e|-1)) subject to a
/// cluster-weight cap. Returns the cluster map and cluster count.
std::pair<std::vector<VertexId>, VertexId> heavy_edge_matching(
    const Hypergraph& h, const MultilevelOptions& options, Rng& rng) {
  const VertexId n = h.num_vertices();
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0U);
  rng.shuffle(order);

  Weight max_vertex = 1;
  for (VertexId v = 0; v < n; ++v) {
    max_vertex = std::max(max_vertex, h.vertex_weight(v));
  }
  const Weight cluster_cap =
      std::max(max_vertex, h.total_vertex_weight() / 32 + 1);

  std::vector<VertexId> partner(n, kInvalidVertex);
  std::vector<double> rating(n, 0.0);
  std::vector<VertexId> touched;
  for (VertexId v : order) {
    if (partner[v] != kInvalidVertex) continue;
    touched.clear();
    for (EdgeId e : h.nets_of(v)) {
      const std::uint32_t size = h.edge_size(e);
      if (size < 2) continue;
      if (options.rating_net_cap > 0 && size > options.rating_net_cap) {
        continue;
      }
      const double score = static_cast<double>(h.edge_weight(e)) /
                           static_cast<double>(size - 1);
      for (VertexId u : h.pins(e)) {
        if (u == v || partner[u] != kInvalidVertex) continue;
        if (h.vertex_weight(u) + h.vertex_weight(v) > cluster_cap) continue;
        if (rating[u] == 0.0) touched.push_back(u);
        rating[u] += score;
      }
    }
    VertexId best = kInvalidVertex;
    double best_rating = 0.0;
    for (VertexId u : touched) {
      if (rating[u] > best_rating ||
          (rating[u] == best_rating && best != kInvalidVertex && u < best)) {
        best = u;
        best_rating = rating[u];
      }
      rating[u] = 0.0;
    }
    if (best != kInvalidVertex) {
      partner[v] = best;
      partner[best] = v;
    }
  }

  std::vector<VertexId> cluster(n, kInvalidVertex);
  VertexId next = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (cluster[v] != kInvalidVertex) continue;
    cluster[v] = next;
    if (partner[v] != kInvalidVertex) cluster[partner[v]] = next;
    ++next;
  }
  return {std::move(cluster), next};
}

}  // namespace

BaselineResult multilevel_bipartition(const Hypergraph& h,
                                      const MultilevelOptions& options) {
  FHP_TRACE_SCOPE("multilevel");
  FHP_COUNTER_ADD("multilevel/runs", 1);
  FHP_REQUIRE(h.num_vertices() >= 2, "need at least two modules");
  FHP_REQUIRE(options.coarsest_size >= 2, "coarsest size must be >= 2");
  FHP_REQUIRE(options.initial_attempts >= 1, "need at least one attempt");
  Rng rng(options.seed);

  // ---- Coarsening phase: build the hierarchy.
  std::vector<ContractionResult> levels;
  // Reserve the maximum possible depth: `current` points into the vector,
  // so it must never reallocate.
  levels.reserve(65);
  const Hypergraph* current = &h;
  {
    FHP_TRACE_SCOPE("coarsen");
    while (current->num_vertices() > options.coarsest_size &&
           levels.size() + 1 < levels.capacity()) {
      auto [cluster, count] = heavy_edge_matching(*current, options, rng);
      if (static_cast<double>(count) >
          options.min_shrink * static_cast<double>(current->num_vertices())) {
        break;  // matching stalled (e.g. star-shaped netlists)
      }
      levels.push_back(contract(*current, std::move(cluster), count));
      current = &levels.back().hypergraph;
    }
  }
  FHP_COUNTER_ADD("multilevel/levels", static_cast<long long>(levels.size()));

  // ---- Initial partition at the coarsest level.
  const Hypergraph& coarsest = *current;
  std::vector<std::uint8_t> sides;
  {
    FHP_TRACE_SCOPE("initial_partition");
    Weight best_cut = 0;
    Weight best_imbalance = 0;
    for (int attempt = 0; attempt < options.initial_attempts; ++attempt) {
      FmOptions fm;
      fm.seed = rng();
      fm.max_weight_imbalance = options.max_weight_imbalance;
      const BaselineResult r = fiduccia_mattheyses(coarsest, fm);
      if (sides.empty() || r.metrics.cut_weight < best_cut ||
          (r.metrics.cut_weight == best_cut &&
           r.metrics.weight_imbalance < best_imbalance)) {
        sides = r.sides;
        best_cut = r.metrics.cut_weight;
        best_imbalance = r.metrics.weight_imbalance;
      }
    }
  }

  // ---- Uncoarsening phase: project and refine level by level.
  {
    FHP_TRACE_SCOPE("uncoarsen");
    for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
      sides = project_sides(it->cluster, sides);
      const Hypergraph& fine =
          (it + 1 == levels.rend()) ? h : (it + 1)->hypergraph;
      FmOptions fm;
      fm.seed = rng();
      fm.initial = sides;
      fm.max_passes = options.refine_passes;
      fm.max_weight_imbalance = options.max_weight_imbalance;
      sides = fiduccia_mattheyses(fine, fm).sides;
    }
  }
  BaselineResult result;
  result.sides = std::move(sides);
  result.metrics = compute_metrics(Bipartition(h, result.sides));
  result.iterations = static_cast<long>(levels.size()) + 1;
  return result;
}

}  // namespace fhp

#include "baselines/multilevel.hpp"

#include <utility>

#include "baselines/fm.hpp"
#include "multilevel/coarsen.hpp"
#include "multilevel/hierarchy.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace fhp {

BaselineResult multilevel_bipartition(const Hypergraph& h,
                                      const MultilevelOptions& options) {
  FHP_TRACE_SCOPE("multilevel");
  FHP_COUNTER_ADD("multilevel/runs", 1);
  FHP_REQUIRE(h.num_vertices() >= 2, "need at least two modules");
  FHP_REQUIRE(options.coarsest_size >= 2, "coarsest size must be >= 2");
  FHP_REQUIRE(options.initial_attempts >= 1, "need at least one attempt");
  Rng rng(options.seed);

  // ---- Coarsening phase: the engine's heavy-edge coarsener
  // (multilevel/coarsen.hpp) builds the hierarchy — serial here, the mini
  // baseline is a comparison point, not the scale path. build_hierarchy
  // emits its own ml_coarsen span and ml/coarsen_us histogram.
  ml::CoarseningOptions coarsening;
  coarsening.coarsest_size = options.coarsest_size;
  coarsening.coarsest_fraction = 0.0;  // absolute target: the deep V-cycle
  coarsening.min_shrink = options.min_shrink;
  coarsening.rating_net_cap = options.rating_net_cap;
  ml::Hierarchy hierarchy = ml::build_hierarchy(h, coarsening);
  FHP_COUNTER_ADD("multilevel/levels",
                  static_cast<long long>(hierarchy.num_levels()));

  // ---- Initial partition at the coarsest level: best of k FM runs from
  // random starts.
  const Hypergraph& coarsest = hierarchy.coarsest();
  std::vector<std::uint8_t> sides;
  {
    FHP_TRACE_SCOPE("initial_partition");
    Weight best_cut = 0;
    Weight best_imbalance = 0;
    for (int attempt = 0; attempt < options.initial_attempts; ++attempt) {
      FmOptions fm;
      fm.seed = rng();
      fm.max_weight_imbalance = options.max_weight_imbalance;
      const BaselineResult r = fiduccia_mattheyses(coarsest, fm);
      if (sides.empty() || r.metrics.cut_weight < best_cut ||
          (r.metrics.cut_weight == best_cut &&
           r.metrics.weight_imbalance < best_imbalance)) {
        sides = r.sides;
        best_cut = r.metrics.cut_weight;
        best_imbalance = r.metrics.weight_imbalance;
      }
    }
  }

  // ---- Uncoarsening phase: project and refine level by level.
  {
    FHP_TRACE_SCOPE("uncoarsen");
    for (std::size_t i = hierarchy.num_levels(); i-- > 0;) {
      const std::span<const std::uint8_t> projected =
          hierarchy.project(i, sides);
      sides.assign(projected.begin(), projected.end());
      FmOptions fm;
      fm.seed = rng();
      fm.initial = sides;
      fm.max_passes = options.refine_passes;
      fm.max_weight_imbalance = options.max_weight_imbalance;
      sides = fiduccia_mattheyses(hierarchy.input_of(i), fm).sides;
    }
  }
  BaselineResult result;
  result.sides = std::move(sides);
  result.metrics = compute_metrics(Bipartition(h, result.sides));
  result.iterations = static_cast<long>(hierarchy.num_levels()) + 1;
  return result;
}

}  // namespace fhp

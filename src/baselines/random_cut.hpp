/// \file random_cut.hpp
/// Random balanced bisection — the "even a random cut is within a constant
/// factor on easy instances" reference point the paper cites from Bollobás
/// (§1), used to calibrate how hard an instance family really is.
#pragma once

#include <cstdint>
#include <vector>

#include "hypergraph/hypergraph.hpp"
#include "partition/metrics.hpp"

namespace fhp {

/// Result of a baseline partitioner.
struct BaselineResult {
  std::vector<std::uint8_t> sides;
  PartitionMetrics metrics;
  long iterations = 0;  ///< algorithm-specific effort counter
};

/// True iff \p h is too small for any proper bipartition to exist
/// (fewer than two modules). Iterative baselines return
/// trivial_baseline_result() for such instances instead of sampling
/// moves from an empty vertex set.
[[nodiscard]] bool is_degenerate_instance(const Hypergraph& h) noexcept;

/// The only partition a degenerate instance admits: every module (0 or 1
/// of them) on side 0, metrics computed honestly (never proper). Shared
/// by the SA / KL / FM degenerate guards.
[[nodiscard]] BaselineResult trivial_baseline_result(const Hypergraph& h);

/// Uniformly random bisection: a random half of the modules (by count)
/// goes left. Requires >= 2 modules.
[[nodiscard]] BaselineResult random_bisection(const Hypergraph& h,
                                              std::uint64_t seed);

/// Best of \p tries random bisections by cutsize.
[[nodiscard]] BaselineResult best_random_bisection(const Hypergraph& h,
                                                   int tries,
                                                   std::uint64_t seed);

}  // namespace fhp

#include "baselines/exact.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "partition/partition.hpp"

namespace fhp {

namespace {

/// Depth-first branch and bound with incremental per-net pin counts.
class ExactSolver {
 public:
  ExactSolver(const Hypergraph& h, const ExactOptions& options)
      : h_(h), options_(options) {
    // Branch on high-degree modules first: their assignment decides many
    // nets early, making the cut lower bound bite sooner.
    order_.resize(h.num_vertices());
    std::iota(order_.begin(), order_.end(), 0U);
    std::sort(order_.begin(), order_.end(), [&](VertexId a, VertexId b) {
      const auto da = h.degree(a);
      const auto db = h.degree(b);
      return da != db ? da > db : a < b;
    });
    pins_on_side_[0].assign(h.num_edges(), 0);
    pins_on_side_[1].assign(h.num_edges(), 0);
    sides_.assign(h.num_vertices(), 0);
    best_sides_.assign(h.num_vertices(), 0);
  }

  BaselineResult solve() {
    // Symmetry breaking: the first branching module is fixed to side 0.
    assign(order_[0], 0);
    dfs(1);
    unassign(order_[0], 0);
    FHP_ASSERT(found_, "every hypergraph with >= 2 modules has a proper cut");
    BaselineResult result;
    result.sides = best_sides_;
    result.metrics = compute_metrics(Bipartition(h_, best_sides_));
    result.iterations = static_cast<long>(
        std::min<std::uint64_t>(nodes_, std::numeric_limits<long>::max()));
    return result;
  }

 private:
  void assign(VertexId v, std::uint8_t side) {
    sides_[v] = side;
    ++counts_[side];
    for (EdgeId e : h_.nets_of(v)) {
      if (++pins_on_side_[side][e] == 1 &&
          pins_on_side_[1 - side][e] > 0) {
        cut_ += h_.edge_weight(e);
      }
    }
  }

  void unassign(VertexId v, std::uint8_t side) {
    for (EdgeId e : h_.nets_of(v)) {
      if (pins_on_side_[side][e]-- == 1 && pins_on_side_[1 - side][e] > 0) {
        cut_ -= h_.edge_weight(e);
      }
    }
    --counts_[side];
  }

  /// True iff balance/properness can still be reached with `remaining`
  /// unassigned modules.
  [[nodiscard]] bool feasible(VertexId remaining) const {
    if (counts_[1] == 0 && remaining == 0) return false;  // improper
    if (options_.max_cardinality_imbalance >= 0) {
      const auto diff = static_cast<std::int64_t>(
          counts_[0] > counts_[1] ? counts_[0] - counts_[1]
                                  : counts_[1] - counts_[0]);
      if (diff - static_cast<std::int64_t>(remaining) >
          options_.max_cardinality_imbalance) {
        return false;
      }
    }
    return true;
  }

  void dfs(VertexId depth) {
    FHP_REQUIRE(++nodes_ <= options_.node_limit,
                "exact solver exceeded its node budget");
    if (found_ && cut_ >= best_cut_) return;  // bound
    const auto remaining = static_cast<VertexId>(h_.num_vertices() - depth);
    if (!feasible(remaining)) return;
    if (depth == h_.num_vertices()) {
      if (counts_[1] == 0) return;
      if (!found_ || cut_ < best_cut_) {
        found_ = true;
        best_cut_ = cut_;
        best_sides_ = sides_;
      }
      return;
    }
    const VertexId v = order_[depth];
    for (std::uint8_t side : {std::uint8_t{0}, std::uint8_t{1}}) {
      assign(v, side);
      dfs(depth + 1);
      unassign(v, side);
    }
  }

  const Hypergraph& h_;
  const ExactOptions& options_;
  std::vector<VertexId> order_;
  std::vector<std::uint32_t> pins_on_side_[2];
  std::vector<std::uint8_t> sides_;
  std::vector<std::uint8_t> best_sides_;
  VertexId counts_[2] = {0, 0};
  Weight cut_ = 0;
  Weight best_cut_ = 0;
  bool found_ = false;
  std::uint64_t nodes_ = 0;
};

}  // namespace

BaselineResult exact_bipartition(const Hypergraph& h,
                                 const ExactOptions& options) {
  FHP_REQUIRE(h.num_vertices() >= 2, "need at least two modules");
  FHP_REQUIRE(h.num_vertices() <= 63,
              "exact solver is exponential; limit is 63 modules");
  if (options.max_cardinality_imbalance >= 0) {
    FHP_REQUIRE(
        options.max_cardinality_imbalance >= h.num_vertices() % 2,
        "imbalance bound unreachable for this module count");
  }
  ExactSolver solver(h, options);
  return solver.solve();
}

}  // namespace fhp

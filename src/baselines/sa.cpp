#include "baselines/sa.hpp"

#include <algorithm>
#include <cmath>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace fhp {

namespace {

/// Soft-penalized cost of the current state.
double state_cost(const Bipartition& p, Weight tolerance, double penalty) {
  const Weight excess = std::max<Weight>(0, p.weight_imbalance() - tolerance);
  return static_cast<double>(p.cut_weight()) +
         penalty * static_cast<double>(excess);
}

/// Cost delta of flipping \p v, evaluated by flipping and flipping back.
/// O(degree); the annealer attempts millions of moves, but module degrees
/// are small in every workload here.
double move_delta(Bipartition& p, VertexId v, Weight tolerance,
                  double penalty) {
  const double before = state_cost(p, tolerance, penalty);
  p.flip(v);
  const double after = state_cost(p, tolerance, penalty);
  p.flip(v);
  return after - before;
}

}  // namespace

BaselineResult simulated_annealing(const Hypergraph& h,
                                   const SaOptions& options) {
  FHP_TRACE_SCOPE("sa");
  FHP_COUNTER_ADD("sa/runs", 1);
  FHP_REQUIRE(options.cooling > 0.0 && options.cooling < 1.0,
              "cooling factor must be in (0, 1)");
  if (is_degenerate_instance(h)) return trivial_baseline_result(h);
  Rng rng(options.seed);

  Weight tolerance = options.imbalance_tolerance;
  if (tolerance <= 0) {
    Weight max_w = 1;
    for (VertexId v = 0; v < h.num_vertices(); ++v) {
      max_w = std::max(max_w, h.vertex_weight(v));
    }
    tolerance = 2 * max_w;
  }
  const double penalty = options.imbalance_penalty;

  Bipartition p(h, random_bisection(h, rng()).sides);

  // Calibrate T0 so that a typical uphill move is accepted with the
  // requested initial probability.
  double uphill_sum = 0.0;
  int uphill_count = 0;
  for (int i = 0; i < 128; ++i) {
    const auto v = static_cast<VertexId>(rng.next_below(h.num_vertices()));
    const double delta = move_delta(p, v, tolerance, penalty);
    if (delta > 0) {
      uphill_sum += delta;
      ++uphill_count;
    }
  }
  const double mean_uphill =
      uphill_count > 0 ? uphill_sum / uphill_count : 1.0;
  double temperature =
      -mean_uphill / std::log(std::clamp(options.initial_acceptance, 0.01, 0.99));
  if (!(temperature > 0.0)) temperature = 1.0;

  const long moves_per_t =
      options.moves_per_temperature > 0
          ? options.moves_per_temperature
          : 8L * static_cast<long>(h.num_vertices());

  BaselineResult best;
  best.sides = p.sides();
  best.metrics = compute_metrics(p);
  double best_cost = state_cost(p, tolerance, penalty);
  long attempts = 0;

  long total_accepted = 0;
  int temperatures = 0;
  for (int step = 0; step < options.max_temperatures; ++step) {
    ++temperatures;
    long accepted = 0;
    for (long i = 0; i < moves_per_t; ++i) {
      ++attempts;
      const auto v = static_cast<VertexId>(rng.next_below(h.num_vertices()));
      const double delta = move_delta(p, v, tolerance, penalty);
      if (delta <= 0 ||
          rng.next_double() < std::exp(-delta / temperature)) {
        p.flip(v);
        ++accepted;
        const double cost = state_cost(p, tolerance, penalty);
        if (cost < best_cost && p.is_proper()) {
          best_cost = cost;
          best.sides = p.sides();
        }
      }
    }
    total_accepted += accepted;
    temperature *= options.cooling;
    const double acceptance =
        static_cast<double>(accepted) / static_cast<double>(moves_per_t);
    if (step + 1 >= options.min_temperatures &&
        acceptance < options.freeze_acceptance) {
      break;
    }
  }

  FHP_COUNTER_ADD("sa/attempts", attempts);
  FHP_COUNTER_ADD("sa/accepted", total_accepted);
  FHP_COUNTER_ADD("sa/temperatures", temperatures);
  best.metrics = compute_metrics(Bipartition(h, best.sides));
  best.iterations = attempts;
  return best;
}

}  // namespace fhp

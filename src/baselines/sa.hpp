/// \file sa.hpp
/// Simulated-annealing bipartitioning (Kirkpatrick–Gelatt–Vecchi [18]),
/// the stochastic baseline of the paper's Tables 1 and 2.
///
/// State: a side per module. Move: flip one uniformly random module.
/// Cost: weighted cutsize plus a soft penalty on weight imbalance beyond a
/// tolerance (the relaxed balance treatment of §1 — Fukunaga-style penalty
/// terms rather than a hard bisection constraint). Geometric cooling with
/// an automatically calibrated starting temperature.
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/random_cut.hpp"
#include "hypergraph/hypergraph.hpp"

namespace fhp {

/// Tuning knobs for the simulated-annealing baseline.
struct SaOptions {
  std::uint64_t seed = 1;
  /// Moves attempted per temperature step; 0 = auto (8 * num modules).
  long moves_per_temperature = 0;
  /// Geometric cooling factor in (0, 1).
  double cooling = 0.95;
  /// Initial acceptance probability used to calibrate T0 from a sample of
  /// random uphill moves.
  double initial_acceptance = 0.8;
  /// Stop when fewer than this fraction of moves are accepted at one
  /// temperature (after cooling at least min_temperatures times).
  double freeze_acceptance = 0.01;
  /// Minimum / maximum number of temperature steps.
  int min_temperatures = 8;
  int max_temperatures = 200;
  /// Allowed weight imbalance before the penalty kicks in; 0 = auto
  /// (2 * max module weight).
  Weight imbalance_tolerance = 0;
  /// Cost per unit of weight imbalance beyond the tolerance.
  double imbalance_penalty = 1.0;
};

/// Runs simulated annealing on \p h. Requires >= 2 modules. The returned
/// partition is the best (lowest-cost proper) state visited;
/// `iterations` counts attempted moves.
[[nodiscard]] BaselineResult simulated_annealing(const Hypergraph& h,
                                                 const SaOptions& options = {});

}  // namespace fhp

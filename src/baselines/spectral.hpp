/// \file spectral.hpp
/// Spectral bipartitioning — the "graph space mapping" family the paper
/// lists among its competitors (§1: Fukunaga–Yamada–Stone–Kasai [11]).
///
/// The netlist is clique-expanded into a weighted graph (each k-pin net
/// contributes weight w(e)/(k-1) to every pin pair), the Fiedler vector
/// (second-smallest Laplacian eigenvector) is computed by shifted power
/// iteration with deflation of the constant vector, and the best prefix
/// of the resulting 1-D module ordering — the classic *sweep cut* — is
/// taken subject to a balance band. Eigen-solve cost is what the paper
/// means by "O(n^3) or higher ... impractical for large problem
/// instances"; power iteration makes it tractable here but it remains the
/// slowest method in the library after annealing.
#pragma once

#include <cstdint>

#include "baselines/random_cut.hpp"
#include "hypergraph/hypergraph.hpp"

namespace fhp {

/// Tuning knobs for the spectral baseline.
struct SpectralOptions {
  /// Power-iteration steps for the Fiedler vector.
  int iterations = 300;
  /// Nets larger than this are skipped in the clique expansion (they add
  /// O(k^2) edges and almost no spectral signal); 0 disables the cap.
  std::uint32_t clique_net_cap = 32;
  /// Sweep-cut balance band: the lighter side must hold at least this
  /// fraction of the total module weight.
  double min_side_fraction = 0.25;
  std::uint64_t seed = 1;
};

/// Runs spectral sweep-cut bipartitioning on \p h. Requires >= 2 modules.
/// `iterations` reports power-iteration steps executed.
[[nodiscard]] BaselineResult spectral_bipartition(
    const Hypergraph& h, const SpectralOptions& options = {});

}  // namespace fhp

/// \file exact.hpp
/// Exact minimum-cut bipartitioning by branch and bound.
///
/// Hypergraph min-cut bisection is NP-complete (§1, Garey–Johnson), so
/// this is exponential — but with incremental cut counting, degree-order
/// branching and cut/balance pruning it comfortably handles the 20-30
/// module instances used to certify the heuristics' optimality claims in
/// tests and benches.
#pragma once

#include <cstdint>

#include "baselines/random_cut.hpp"
#include "hypergraph/hypergraph.hpp"

namespace fhp {

/// Tuning knobs for the exact solver.
struct ExactOptions {
  /// Maximum allowed |count_L - count_R|; -1 = any proper cut.
  std::int64_t max_cardinality_imbalance = -1;
  /// Search-node budget; the solver throws PreconditionError if exceeded
  /// (so a silent wrong "optimum" can never be reported).
  std::uint64_t node_limit = 200'000'000;
};

/// Finds a minimum weighted-cut proper bipartition of \p h.
/// Requires 2 <= num_vertices <= 63 (and practically <= ~32).
/// `iterations` reports search nodes expanded.
[[nodiscard]] BaselineResult exact_bipartition(const Hypergraph& h,
                                               const ExactOptions& options = {});

}  // namespace fhp

/// \file trace.hpp
/// Hierarchical scoped-span tracer — the timing half of the observability
/// layer (see docs/observability.md and docs/parallelism.md).
///
/// Usage at an instrumentation site:
///
///     void step() {
///       FHP_TRACE_SCOPE("boundary");
///       ...
///     }
///
/// Spans nest by scope: a span opened while another is active becomes its
/// child in the aggregated phase tree. Repeated entries of the same name
/// under the same parent accumulate into one tree node (total time + call
/// count), so a 50-start run shows one "diameter" row with calls = 50, not
/// 50 rows. Every span additionally appends one event to a bounded log so
/// the run can be replayed in `chrome://tracing` (see obs/report.hpp).
///
/// Threading model: the tracer is a process-wide singleton and THREAD-SAFE.
/// Each thread records into its own span tree and event buffer (spans nest
/// within their thread only — a worker's spans do not become children of
/// whatever the spawning thread had open), and snapshot() merges every
/// thread's tree by (parent path, name) into one aggregate. The per-thread
/// buffers make open/close effectively uncontended: they lock only their
/// own thread's mutex, which snapshot()/reset() take when they walk all
/// threads. Do not reset() while spans are open anywhere.
///
/// Compile-time kill switch: configure with -DFHP_ENABLE_TRACING=OFF and
/// every FHP_TRACE_SCOPE / FHP_COUNTER_* call site compiles to nothing —
/// zero instructions, zero data. The runtime classes below stay defined in
/// both modes so exporters, tests and tools always compile and link.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#ifndef FHP_TRACING_ENABLED
#define FHP_TRACING_ENABLED 1
#endif

namespace fhp::obs {

/// Sentinel parent index of top-level spans.
inline constexpr std::uint32_t kNoSpan = 0xffffffffU;

/// One aggregated node of a span tree.
struct SpanNode {
  std::string name;                ///< span label (a string literal upstream)
  std::uint32_t parent = kNoSpan;  ///< index into the owning tree, or kNoSpan
  std::uint64_t total_ns = 0;      ///< wall time over all entries (incl. children)
  std::uint64_t calls = 0;         ///< completed entries
  /// Child lookup by name; values index the owning tree. A parent is always
  /// created before its children, so parent index < child index everywhere.
  std::unordered_map<std::string, std::uint32_t> children;
};

/// One raw span entry for the chrome://tracing event log.
struct RawEvent {
  std::uint32_t node = 0;      ///< index into the owning span tree
  std::uint32_t tid = 0;       ///< recording thread (registration order)
  std::uint64_t start_us = 0;  ///< microseconds since the tracer epoch
  std::uint64_t dur_us = 0;
};

/// Merged view over every thread's recordings; see Tracer::snapshot().
struct TracerSnapshot {
  /// Merged span tree; parents precede children, and the first-registered
  /// thread's creation order is preserved (later threads' novel spans
  /// append after).
  std::vector<SpanNode> nodes;
  std::vector<RawEvent> events;  ///< node indices refer to `nodes`
  std::uint64_t dropped_events = 0;
  /// Number of threads that recorded at least one span or event.
  std::uint32_t threads = 0;
};

/// Process-wide span registry. Use via FHP_TRACE_SCOPE / ScopedSpan; the
/// direct open()/close() API exists for tests and custom integrations.
class Tracer {
 public:
  using Clock = std::chrono::steady_clock;
  /// Per-thread event-log bound; entries past it are dropped (aggregates
  /// still count).
  static constexpr std::size_t kMaxEvents = std::size_t{1} << 18;

  static Tracer& instance();

  /// Finds or creates the child \p name of the calling thread's innermost
  /// open span (or a top-level node of its tree) and marks it open.
  /// Returns its node index within the calling thread's tree.
  std::uint32_t open(const char* name);

  /// Closes the calling thread's innermost open span, which must be
  /// \p node with entry time \p start. Calls that do not match (e.g. after
  /// a mid-span reset) are ignored so a stray ScopedSpan can never corrupt
  /// the tree.
  void close(std::uint32_t node, Clock::time_point start);

  /// Drops all spans, events and open-span stacks of every thread;
  /// restarts the epoch and prunes buffers of threads that have exited.
  void reset();

  /// Merges every thread's tree/events into one aggregate view.
  [[nodiscard]] TracerSnapshot snapshot() const;

  /// Number of spans the CALLING thread currently has open (0 between
  /// well-nested regions).
  [[nodiscard]] std::size_t open_depth() const;

 private:
  /// One thread's private recording buffers. `mutex` is uncontended in
  /// steady state (only its own thread takes it) except while snapshot()
  /// or reset() walk the registry.
  struct ThreadState {
    mutable std::mutex mutex;
    std::vector<SpanNode> nodes;
    std::unordered_map<std::string, std::uint32_t> roots;
    std::vector<std::uint32_t> stack;  ///< open node ids
    std::vector<RawEvent> events;
    std::uint64_t dropped_events = 0;
    std::uint32_t tid = 0;  ///< registration index (stable across reset)
  };

  Tracer();
  /// The calling thread's state, registering it on first use.
  ThreadState& local_state();
  [[nodiscard]] const ThreadState* local_state_if_any() const;

  mutable std::mutex registry_mutex_;
  std::vector<std::shared_ptr<ThreadState>> states_;  ///< registration order
  std::uint32_t next_tid_ = 0;
  std::atomic<Clock::rep> epoch_ns_;  ///< epoch as steady_clock ticks
};

/// RAII span handle: opens on construction, closes on destruction.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name)
      : node_(Tracer::instance().open(name)), start_(Tracer::Clock::now()) {}
  ~ScopedSpan() { Tracer::instance().close(node_, start_); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  std::uint32_t node_;
  Tracer::Clock::time_point start_;
};

}  // namespace fhp::obs

#define FHP_OBS_CONCAT_IMPL(a, b) a##b
#define FHP_OBS_CONCAT(a, b) FHP_OBS_CONCAT_IMPL(a, b)

#if FHP_TRACING_ENABLED
/// Times the enclosing scope as span \p name of the process-wide tracer.
#define FHP_TRACE_SCOPE(name) \
  ::fhp::obs::ScopedSpan FHP_OBS_CONCAT(fhp_trace_span_, __COUNTER__)(name)
#else
#define FHP_TRACE_SCOPE(name) static_cast<void>(0)
#endif

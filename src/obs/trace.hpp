/// \file trace.hpp
/// Hierarchical scoped-span tracer — the timing half of the observability
/// layer (see docs/observability.md).
///
/// Usage at an instrumentation site:
///
///     void step() {
///       FHP_TRACE_SCOPE("boundary");
///       ...
///     }
///
/// Spans nest by scope: a span opened while another is active becomes its
/// child in the aggregated phase tree. Repeated entries of the same name
/// under the same parent accumulate into one tree node (total time + call
/// count), so a 50-start run shows one "diameter" row with calls = 50, not
/// 50 rows. Every span additionally appends one event to a bounded log so
/// the run can be replayed in `chrome://tracing` (see obs/report.hpp).
///
/// Compile-time kill switch: configure with -DFHP_ENABLE_TRACING=OFF and
/// every FHP_TRACE_SCOPE / FHP_COUNTER_* call site compiles to nothing —
/// zero instructions, zero data. The runtime classes below stay defined in
/// both modes so exporters, tests and tools always compile and link.
///
/// The tracer is a process-wide singleton and is NOT thread-safe, matching
/// the single-threaded algorithms in this repository; revisit when a
/// parallelism PR lands. Do not reset() while spans are open.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#ifndef FHP_TRACING_ENABLED
#define FHP_TRACING_ENABLED 1
#endif

namespace fhp::obs {

/// Sentinel parent index of top-level spans.
inline constexpr std::uint32_t kNoSpan = 0xffffffffU;

/// One aggregated node of the span tree.
struct SpanNode {
  std::string name;                ///< span label (a string literal upstream)
  std::uint32_t parent = kNoSpan;  ///< index into Tracer::nodes(), or kNoSpan
  std::uint64_t total_ns = 0;      ///< wall time over all entries (incl. children)
  std::uint64_t calls = 0;         ///< completed entries
  /// Child lookup by name; values index Tracer::nodes(). A parent is always
  /// created before its children, so parent index < child index everywhere.
  std::unordered_map<std::string, std::uint32_t> children;
};

/// One raw span entry for the chrome://tracing event log.
struct RawEvent {
  std::uint32_t node = 0;      ///< index into Tracer::nodes()
  std::uint64_t start_us = 0;  ///< microseconds since the tracer epoch
  std::uint64_t dur_us = 0;
};

/// Process-wide span registry. Use via FHP_TRACE_SCOPE / ScopedSpan; the
/// direct open()/close() API exists for tests and custom integrations.
class Tracer {
 public:
  using Clock = std::chrono::steady_clock;
  /// Event-log bound; entries past it are dropped (aggregates still count).
  static constexpr std::size_t kMaxEvents = std::size_t{1} << 18;

  static Tracer& instance();

  /// Finds or creates the child \p name of the innermost open span (or a
  /// top-level node) and marks it open. Returns its node index.
  std::uint32_t open(const char* name);

  /// Closes the innermost open span, which must be \p node with entry time
  /// \p start. Calls that do not match (e.g. after a mid-span reset) are
  /// ignored so a stray ScopedSpan can never corrupt the tree.
  void close(std::uint32_t node, Clock::time_point start);

  /// Drops all spans, events and the open-span stack; restarts the epoch.
  void reset();

  [[nodiscard]] const std::vector<SpanNode>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] const std::vector<RawEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::uint64_t dropped_events() const noexcept {
    return dropped_events_;
  }
  /// Number of currently open spans (0 between well-nested regions).
  [[nodiscard]] std::size_t open_depth() const noexcept {
    return stack_.size();
  }

 private:
  Tracer();

  std::vector<SpanNode> nodes_;
  std::unordered_map<std::string, std::uint32_t> roots_;  ///< top-level lookup
  std::vector<std::uint32_t> stack_;                      ///< open node ids
  std::vector<RawEvent> events_;
  std::uint64_t dropped_events_ = 0;
  Clock::time_point epoch_;
};

/// RAII span handle: opens on construction, closes on destruction.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name)
      : node_(Tracer::instance().open(name)), start_(Tracer::Clock::now()) {}
  ~ScopedSpan() { Tracer::instance().close(node_, start_); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  std::uint32_t node_;
  Tracer::Clock::time_point start_;
};

}  // namespace fhp::obs

#define FHP_OBS_CONCAT_IMPL(a, b) a##b
#define FHP_OBS_CONCAT(a, b) FHP_OBS_CONCAT_IMPL(a, b)

#if FHP_TRACING_ENABLED
/// Times the enclosing scope as span \p name of the process-wide tracer.
#define FHP_TRACE_SCOPE(name) \
  ::fhp::obs::ScopedSpan FHP_OBS_CONCAT(fhp_trace_span_, __COUNTER__)(name)
#else
#define FHP_TRACE_SCOPE(name) static_cast<void>(0)
#endif

#include "obs/trace.hpp"

namespace fhp::obs {

namespace {

/// Calling thread's slot, shared with the registry so recordings survive
/// thread exit (a pool may be destroyed before the report is taken).
thread_local std::shared_ptr<void> tls_state;

}  // namespace

Tracer::Tracer() : epoch_ns_(Clock::now().time_since_epoch().count()) {}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

Tracer::ThreadState& Tracer::local_state() {
  if (!tls_state) {
    auto fresh = std::make_shared<ThreadState>();
    std::lock_guard<std::mutex> lock(registry_mutex_);
    fresh->tid = next_tid_++;
    states_.push_back(fresh);
    tls_state = fresh;
  }
  return *static_cast<ThreadState*>(tls_state.get());
}

const Tracer::ThreadState* Tracer::local_state_if_any() const {
  return static_cast<const ThreadState*>(tls_state.get());
}

std::uint32_t Tracer::open(const char* name) {
  ThreadState& st = local_state();
  std::lock_guard<std::mutex> lock(st.mutex);
  auto& lookup = st.stack.empty() ? st.roots : st.nodes[st.stack.back()].children;
  const auto it = lookup.find(name);
  std::uint32_t node;
  if (it != lookup.end()) {
    node = it->second;
  } else {
    node = static_cast<std::uint32_t>(st.nodes.size());
    SpanNode fresh;
    fresh.name = name;
    fresh.parent = st.stack.empty() ? kNoSpan : st.stack.back();
    // Note: push_back may reallocate st.nodes, invalidating `lookup` —
    // insert through the map freshly fetched afterwards.
    st.nodes.push_back(std::move(fresh));
    auto& lookup_after =
        st.stack.empty() ? st.roots : st.nodes[st.stack.back()].children;
    lookup_after.emplace(name, node);
  }
  st.stack.push_back(node);
  return node;
}

void Tracer::close(std::uint32_t node, Clock::time_point start) {
  ThreadState& st = local_state();
  std::lock_guard<std::mutex> lock(st.mutex);
  // Defensive: a reset() between open and close leaves a stale handle; drop
  // the close silently rather than corrupting the fresh tree.
  if (st.stack.empty() || st.stack.back() != node || node >= st.nodes.size()) {
    return;
  }
  st.stack.pop_back();
  const Clock::time_point end = Clock::now();
  const auto elapsed_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count());
  SpanNode& span = st.nodes[node];
  span.total_ns += elapsed_ns;
  ++span.calls;
  if (st.events.size() < kMaxEvents) {
    const Clock::time_point epoch{Clock::duration{
        epoch_ns_.load(std::memory_order_relaxed)}};
    RawEvent event;
    event.node = node;
    event.tid = st.tid;
    event.start_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(start - epoch)
            .count());
    event.dur_us = elapsed_ns / 1000;
    st.events.push_back(event);
  } else {
    ++st.dropped_events;
  }
}

void Tracer::reset() {
  std::lock_guard<std::mutex> registry_lock(registry_mutex_);
  for (const auto& state : states_) {
    std::lock_guard<std::mutex> lock(state->mutex);
    state->nodes.clear();
    state->roots.clear();
    state->stack.clear();
    state->events.clear();
    state->dropped_events = 0;
  }
  // Buffers of exited threads (registry holds the only reference) would
  // otherwise accumulate across pool lifetimes.
  std::erase_if(states_,
                [](const std::shared_ptr<ThreadState>& state) {
                  return state.use_count() == 1;
                });
  epoch_ns_.store(Clock::now().time_since_epoch().count(),
                  std::memory_order_relaxed);
}

TracerSnapshot Tracer::snapshot() const {
  TracerSnapshot out;
  std::unordered_map<std::string, std::uint32_t> merged_roots;
  std::lock_guard<std::mutex> registry_lock(registry_mutex_);
  for (const auto& state : states_) {
    std::lock_guard<std::mutex> lock(state->mutex);
    if (state->nodes.empty() && state->events.empty() &&
        state->dropped_events == 0) {
      continue;
    }
    ++out.threads;
    // Remap this thread's nodes into the merged tree by (parent, name);
    // nodes are created parents-first, so a forward scan always finds the
    // remapped parent before its children.
    std::vector<std::uint32_t> remap(state->nodes.size());
    for (std::uint32_t i = 0; i < state->nodes.size(); ++i) {
      const SpanNode& local = state->nodes[i];
      const std::uint32_t parent =
          local.parent == kNoSpan ? kNoSpan : remap[local.parent];
      auto& lookup =
          parent == kNoSpan ? merged_roots : out.nodes[parent].children;
      const auto it = lookup.find(local.name);
      std::uint32_t merged;
      if (it != lookup.end()) {
        merged = it->second;
        out.nodes[merged].total_ns += local.total_ns;
        out.nodes[merged].calls += local.calls;
      } else {
        merged = static_cast<std::uint32_t>(out.nodes.size());
        SpanNode fresh;
        fresh.name = local.name;
        fresh.parent = parent;
        fresh.total_ns = local.total_ns;
        fresh.calls = local.calls;
        // push_back may reallocate out.nodes, invalidating `lookup` —
        // insert through the map freshly fetched afterwards.
        out.nodes.push_back(std::move(fresh));
        auto& lookup_after =
            parent == kNoSpan ? merged_roots : out.nodes[parent].children;
        lookup_after.emplace(local.name, merged);
      }
      remap[i] = merged;
    }
    for (const RawEvent& raw : state->events) {
      RawEvent event = raw;
      event.node = remap[raw.node];
      out.events.push_back(event);
    }
    out.dropped_events += state->dropped_events;
  }
  return out;
}

std::size_t Tracer::open_depth() const {
  const ThreadState* st = local_state_if_any();
  if (st == nullptr) return 0;
  std::lock_guard<std::mutex> lock(st->mutex);
  return st->stack.size();
}

}  // namespace fhp::obs

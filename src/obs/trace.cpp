#include "obs/trace.hpp"

namespace fhp::obs {

Tracer::Tracer() : epoch_(Clock::now()) {}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

std::uint32_t Tracer::open(const char* name) {
  auto& lookup = stack_.empty() ? roots_ : nodes_[stack_.back()].children;
  const auto it = lookup.find(name);
  std::uint32_t node;
  if (it != lookup.end()) {
    node = it->second;
  } else {
    node = static_cast<std::uint32_t>(nodes_.size());
    SpanNode fresh;
    fresh.name = name;
    fresh.parent = stack_.empty() ? kNoSpan : stack_.back();
    // Note: push_back may reallocate nodes_, invalidating `lookup` — insert
    // through the map freshly fetched afterwards.
    nodes_.push_back(std::move(fresh));
    auto& lookup_after =
        stack_.empty() ? roots_ : nodes_[stack_.back()].children;
    lookup_after.emplace(name, node);
  }
  stack_.push_back(node);
  return node;
}

void Tracer::close(std::uint32_t node, Clock::time_point start) {
  // Defensive: a reset() between open and close leaves a stale handle; drop
  // the close silently rather than corrupting the fresh tree.
  if (stack_.empty() || stack_.back() != node || node >= nodes_.size()) {
    return;
  }
  stack_.pop_back();
  const Clock::time_point end = Clock::now();
  const auto elapsed_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count());
  SpanNode& span = nodes_[node];
  span.total_ns += elapsed_ns;
  ++span.calls;
  if (events_.size() < kMaxEvents) {
    RawEvent event;
    event.node = node;
    event.start_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(start - epoch_)
            .count());
    event.dur_us = elapsed_ns / 1000;
    events_.push_back(event);
  } else {
    ++dropped_events_;
  }
}

void Tracer::reset() {
  nodes_.clear();
  roots_.clear();
  stack_.clear();
  events_.clear();
  dropped_events_ = 0;
  epoch_ = Clock::now();
}

}  // namespace fhp::obs

/// \file counters.hpp
/// Counters/gauges registry — the event half of the observability layer.
///
/// Counters are monotonically accumulating integers for discrete algorithm
/// events (starts examined, BFS levels visited, completion losers, filtered
/// nets); gauges are last-write-wins doubles for levels sampled at a point
/// in time (boundary size of the final cut, pseudo-diameter).
///
/// Naming convention (see docs/observability.md): `component/event` in
/// snake_case, e.g. "alg1/starts_examined", "bfs/vertices_reached". Keep
/// names to string literals: the registry stores one map entry per distinct
/// name, and literals make call sites greppable.
///
/// The registry is a process-wide singleton and is THREAD-SAFE: values are
/// std::atomic, so FHP_COUNTER_ADD / FHP_GAUGE_SET may be issued
/// concurrently from thread-pool workers (see docs/parallelism.md); adds
/// never lose updates and gauges are last-write-wins with no torn reads.
/// The macros compile to nothing under -DFHP_ENABLE_TRACING=OFF (macro
/// arguments must therefore be side-effect free). The class API itself is
/// always available.
#pragma once

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#ifndef FHP_TRACING_ENABLED
#define FHP_TRACING_ENABLED 1
#endif

namespace fhp::obs {

/// Process-wide counter/gauge registry. Use via the macros below; the
/// direct API exists for tests, exporters and custom integrations.
class Counters {
 public:
  static Counters& instance();

  /// Adds \p delta to counter \p name (creating it at zero). Thread-safe;
  /// concurrent adds to the same counter never lose increments.
  void add(const char* name, long long delta);

  /// Sets gauge \p name to \p value (last write wins). Thread-safe.
  void set_gauge(const char* name, double value);

  /// Current value of counter \p name; 0 when it was never touched.
  [[nodiscard]] long long value(std::string_view name) const;

  /// Current value of gauge \p name; 0.0 when it was never set.
  [[nodiscard]] double gauge(std::string_view name) const;

  /// Drops every counter and gauge. Do not race with concurrent writers
  /// (reset between parallel regions, not inside them).
  void reset();

  /// Copies every counter out (unsorted). Thread-safe.
  [[nodiscard]] std::vector<std::pair<std::string, long long>>
  counters_snapshot() const;

  /// Copies every gauge out (unsorted). Thread-safe.
  [[nodiscard]] std::vector<std::pair<std::string, double>> gauges_snapshot()
      const;

 private:
  Counters() = default;

  /// Map nodes are pointer-stable, so a slot found under the shared lock
  /// stays valid for the lock-free atomic update.
  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string, std::atomic<long long>> counters_;
  std::unordered_map<std::string, std::atomic<double>> gauges_;
};

}  // namespace fhp::obs

#if FHP_TRACING_ENABLED
/// Adds \p delta to the process-wide counter \p name.
#define FHP_COUNTER_ADD(name, delta) \
  ::fhp::obs::Counters::instance().add((name), (delta))
/// Sets the process-wide gauge \p name to \p value.
#define FHP_GAUGE_SET(name, value) \
  ::fhp::obs::Counters::instance().set_gauge((name), (value))
#else
#define FHP_COUNTER_ADD(name, delta) static_cast<void>(0)
#define FHP_GAUGE_SET(name, value) static_cast<void>(0)
#endif

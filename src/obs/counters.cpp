#include "obs/counters.hpp"

namespace fhp::obs {

Counters& Counters::instance() {
  static Counters counters;
  return counters;
}

void Counters::add(const char* name, long long delta) {
  counters_[name] += delta;
}

void Counters::set_gauge(const char* name, double value) {
  gauges_[name] = value;
}

long long Counters::value(std::string_view name) const {
  const auto it = counters_.find(std::string(name));
  return it == counters_.end() ? 0 : it->second;
}

double Counters::gauge(std::string_view name) const {
  const auto it = gauges_.find(std::string(name));
  return it == gauges_.end() ? 0.0 : it->second;
}

void Counters::reset() {
  counters_.clear();
  gauges_.clear();
}

}  // namespace fhp::obs

#include "obs/counters.hpp"

#include <mutex>

namespace fhp::obs {

Counters& Counters::instance() {
  static Counters counters;
  return counters;
}

void Counters::add(const char* name, long long delta) {
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    const auto it = counters_.find(name);
    if (it != counters_.end()) {
      it->second.fetch_add(delta, std::memory_order_relaxed);
      return;
    }
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  counters_[name].fetch_add(delta, std::memory_order_relaxed);
}

void Counters::set_gauge(const char* name, double value) {
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    const auto it = gauges_.find(name);
    if (it != gauges_.end()) {
      it->second.store(value, std::memory_order_relaxed);
      return;
    }
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  gauges_[name].store(value, std::memory_order_relaxed);
}

long long Counters::value(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = counters_.find(std::string(name));
  return it == counters_.end()
             ? 0
             : it->second.load(std::memory_order_relaxed);
}

double Counters::gauge(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = gauges_.find(std::string(name));
  return it == gauges_.end() ? 0.0
                             : it->second.load(std::memory_order_relaxed);
}

void Counters::reset() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
}

std::vector<std::pair<std::string, long long>> Counters::counters_snapshot()
    const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<std::pair<std::string, long long>> out;
  out.reserve(counters_.size());
  for (const auto& [name, value] : counters_) {
    out.emplace_back(name, value.load(std::memory_order_relaxed));
  }
  return out;
}

std::vector<std::pair<std::string, double>> Counters::gauges_snapshot()
    const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, value] : gauges_) {
    out.emplace_back(name, value.load(std::memory_order_relaxed));
  }
  return out;
}

}  // namespace fhp::obs

/// \file report.hpp
/// TraceReport — an immutable snapshot of the tracer + counter + histogram
/// state — and its three exporters:
///   - to_tree_string():   human-readable phase tree with percentages;
///   - to_json():          machine-readable report (spans, counters,
///                         gauges, histograms);
///   - to_chrome_trace():  Trace Event Format for chrome://tracing /
///                         Perfetto (histograms ride along as counter
///                         samples).
///
/// A snapshot is plain copyable data, safe to attach to results and ship
/// across layers; it reflects everything recorded since the last
/// obs::reset(). All three exporters work on empty reports (producing an
/// empty tree / valid JSON), so code paths stay identical when tracing is
/// compiled out. Every snapshot additionally samples the process's
/// resident-set size (peak + current) at capture time; the exporters list
/// those alongside the gauges under `process/` names, but they are ambient
/// environment, not recordings — empty() ignores them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"

namespace fhp::obs {

/// One aggregated span of a snapshot. Parents precede children, so a
/// forward scan visits the tree top-down.
struct TraceSpan {
  std::string name;
  std::uint32_t parent = kNoSpan;  ///< index into TraceReport::spans
  std::uint64_t total_ns = 0;      ///< wall time including children
  std::uint64_t calls = 0;
};

/// One raw event of a snapshot (for the chrome trace exporter).
struct TraceEvent {
  std::uint32_t span = 0;  ///< index into TraceReport::spans
  std::uint32_t tid = 0;   ///< recording thread (registration order)
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
};

/// Snapshot of the observability state.
struct TraceReport {
  /// Whether the producing build compiled the instrumentation macros in
  /// (FHP_ENABLE_TRACING). When false the report is typically empty.
  bool tracing_compiled = false;
  std::vector<TraceSpan> spans;
  /// Counters, gauges and histograms, sorted by name for stable output.
  std::vector<std::pair<std::string, long long>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
  std::vector<TraceEvent> events;
  std::uint64_t dropped_events = 0;
  /// Process resident-set size sampled when the snapshot was taken (0 when
  /// the platform offers no source). Ambient environment, not a recording:
  /// exporters render these as `process/peak_rss_bytes` /
  /// `process/current_rss_bytes` gauges, but empty() ignores them.
  std::uint64_t peak_rss_bytes = 0;
  std::uint64_t current_rss_bytes = 0;
  /// Number of threads that recorded spans or events. Under parallel
  /// execution each worker's spans are their own roots, so root_total_ns()
  /// aggregates CPU time across threads, not wall time (see
  /// docs/parallelism.md).
  std::uint32_t threads = 0;

  /// Sum of wall time over top-level spans (the tree's 100% reference).
  [[nodiscard]] std::uint64_t root_total_ns() const;
  /// Total time / completed calls summed over every span named \p name
  /// (a name can appear under several parents).
  [[nodiscard]] std::uint64_t span_ns(std::string_view name) const;
  [[nodiscard]] std::uint64_t span_calls(std::string_view name) const;
  /// Counter value by name; 0 when absent.
  [[nodiscard]] long long counter(std::string_view name) const;
  /// Gauge value by name; 0.0 when absent. The ambient
  /// `process/peak_rss_bytes` / `process/current_rss_bytes` names resolve
  /// to the sampled RSS fields.
  [[nodiscard]] double gauge(std::string_view name) const;
  /// Histogram by name; nullptr when the site never recorded.
  [[nodiscard]] const HistogramSnapshot* histogram(
      std::string_view name) const;
  /// True when nothing was recorded (the ambient RSS sample is ignored).
  [[nodiscard]] bool empty() const {
    return spans.empty() && counters.empty() && gauges.empty() &&
           histograms.empty();
  }
};

/// Captures the current tracer + counter + histogram state and samples the
/// process RSS. Spans still open at the time of the call contribute only
/// their already-completed entries.
[[nodiscard]] TraceReport snapshot();

/// Resets the tracer, the counter registry and the histogram registry
/// (and the event epoch).
void reset();

/// Renders the phase tree, counters, gauges and histograms as
/// human-readable text. Span columns: total ms, % of the root total, % of
/// the parent, call count; histogram columns: count, p50/p90/p99, max.
[[nodiscard]] std::string to_tree_string(const TraceReport& report);

/// Renders the report as a JSON object:
///   {"tracing_compiled": bool, "wall_total_ns": int, "threads": int,
///    "spans": [{"name", "parent", "total_ns", "calls"}...],
///    "counters": {...}, "gauges": {...},
///    "histograms": {"name": {"count", "sum", "min", "max", "mean",
///                            "p50", "p90", "p99"}...},
///    "dropped_events": int}
/// The gauges object includes the ambient process/{peak,current}_rss_bytes
/// samples when available.
[[nodiscard]] std::string to_json(const TraceReport& report);

/// Renders the event log in Chrome Trace Event Format ("X" complete
/// events); load via chrome://tracing or https://ui.perfetto.dev.
[[nodiscard]] std::string to_chrome_trace(const TraceReport& report);

/// Escapes \p text for inclusion inside a JSON string literal.
[[nodiscard]] std::string json_escape(std::string_view text);

}  // namespace fhp::obs

#include "obs/report.hpp"

#include "util/json.hpp"

#include <algorithm>
#include <cstdio>

#include "util/memory.hpp"

namespace fhp::obs {

namespace {

/// printf into a std::string tail.
template <typename... Args>
void appendf(std::string& out, const char* fmt, Args... args) {
  char buffer[256];
  const int written = std::snprintf(buffer, sizeof(buffer), fmt, args...);
  if (written > 0) {
    out.append(buffer, std::min<std::size_t>(static_cast<std::size_t>(written),
                                             sizeof(buffer) - 1));
  }
}

double percent(std::uint64_t part, std::uint64_t whole) {
  if (whole == 0) return 0.0;
  return 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

}  // namespace

std::uint64_t TraceReport::root_total_ns() const {
  std::uint64_t total = 0;
  for (const TraceSpan& span : spans) {
    if (span.parent == kNoSpan) total += span.total_ns;
  }
  return total;
}

std::uint64_t TraceReport::span_ns(std::string_view name) const {
  std::uint64_t total = 0;
  for (const TraceSpan& span : spans) {
    if (span.name == name) total += span.total_ns;
  }
  return total;
}

std::uint64_t TraceReport::span_calls(std::string_view name) const {
  std::uint64_t calls = 0;
  for (const TraceSpan& span : spans) {
    if (span.name == name) calls += span.calls;
  }
  return calls;
}

long long TraceReport::counter(std::string_view name) const {
  for (const auto& [key, value] : counters) {
    if (key == name) return value;
  }
  return 0;
}

double TraceReport::gauge(std::string_view name) const {
  for (const auto& [key, value] : gauges) {
    if (key == name) return value;
  }
  if (name == "process/peak_rss_bytes") {
    return static_cast<double>(peak_rss_bytes);
  }
  if (name == "process/current_rss_bytes") {
    return static_cast<double>(current_rss_bytes);
  }
  return 0.0;
}

const HistogramSnapshot* TraceReport::histogram(std::string_view name) const {
  for (const HistogramSnapshot& hist : histograms) {
    if (hist.name == name) return &hist;
  }
  return nullptr;
}

TraceReport snapshot() {
  const TracerSnapshot merged = Tracer::instance().snapshot();
  const Counters& registry = Counters::instance();
  TraceReport report;
  report.tracing_compiled = FHP_TRACING_ENABLED != 0;

  report.spans.reserve(merged.nodes.size());
  for (const SpanNode& node : merged.nodes) {
    TraceSpan span;
    span.name = node.name;
    span.parent = node.parent;
    span.total_ns = node.total_ns;
    span.calls = node.calls;
    report.spans.push_back(std::move(span));
  }

  report.events.reserve(merged.events.size());
  for (const RawEvent& raw : merged.events) {
    TraceEvent event;
    event.span = raw.node;
    event.tid = raw.tid;
    event.start_us = raw.start_us;
    event.dur_us = raw.dur_us;
    report.events.push_back(event);
  }
  report.dropped_events = merged.dropped_events;
  report.threads = merged.threads;

  report.counters = registry.counters_snapshot();
  std::sort(report.counters.begin(), report.counters.end());
  report.gauges = registry.gauges_snapshot();
  std::sort(report.gauges.begin(), report.gauges.end());
  report.histograms = Histograms::instance().snapshot();
  std::sort(report.histograms.begin(), report.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  report.peak_rss_bytes = fhp::peak_rss_bytes();
  report.current_rss_bytes = fhp::current_rss_bytes();
  return report;
}

void reset() {
  Tracer::instance().reset();
  Counters::instance().reset();
  Histograms::instance().reset();
}

std::string to_tree_string(const TraceReport& report) {
  std::string out;
  const std::uint64_t root_total = report.root_total_ns();
  appendf(out, "phase tree — wall total %.3f ms\n",
          static_cast<double>(root_total) / 1e6);
  if (report.threads > 1) {
    appendf(out,
            "  (%u recording threads; root totals sum CPU time, not wall)\n",
            report.threads);
  }
  if (report.spans.empty()) {
    out += "  (no spans recorded";
    out += report.tracing_compiled
               ? ")\n"
               : "; build compiled with FHP_ENABLE_TRACING=OFF)\n";
  }

  // Children lists in creation order (stable, parents precede children).
  std::vector<std::vector<std::uint32_t>> children(report.spans.size());
  std::vector<std::uint32_t> roots;
  for (std::uint32_t i = 0; i < report.spans.size(); ++i) {
    const std::uint32_t parent = report.spans[i].parent;
    if (parent == kNoSpan) {
      roots.push_back(i);
    } else {
      children[parent].push_back(i);
    }
  }

  // Iterative preorder walk carrying the indent depth.
  std::vector<std::pair<std::uint32_t, int>> work;
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    work.emplace_back(*it, 0);
  }
  while (!work.empty()) {
    const auto [index, depth] = work.back();
    work.pop_back();
    const TraceSpan& span = report.spans[index];
    const std::uint64_t parent_total = span.parent == kNoSpan
                                           ? root_total
                                           : report.spans[span.parent].total_ns;
    std::string label(static_cast<std::size_t>(depth) * 2, ' ');
    label += span.name;
    appendf(out, "  %-32s %10.3f ms %5.1f%% %5.1f%% of parent %8llu calls\n",
            label.c_str(), static_cast<double>(span.total_ns) / 1e6,
            percent(span.total_ns, root_total),
            percent(span.total_ns, parent_total),
            static_cast<unsigned long long>(span.calls));
    for (auto it = children[index].rbegin(); it != children[index].rend();
         ++it) {
      work.emplace_back(*it, depth + 1);
    }
  }

  if (!report.counters.empty()) {
    out += "counters\n";
    for (const auto& [name, value] : report.counters) {
      appendf(out, "  %-40s %12lld\n", name.c_str(), value);
    }
  }
  if (!report.gauges.empty() || report.peak_rss_bytes > 0) {
    out += "gauges\n";
    for (const auto& [name, value] : report.gauges) {
      appendf(out, "  %-40s %12.3f\n", name.c_str(), value);
    }
    if (report.peak_rss_bytes > 0) {
      appendf(out, "  %-40s %12.3f\n", "process/current_rss_bytes",
              static_cast<double>(report.current_rss_bytes));
      appendf(out, "  %-40s %12.3f\n", "process/peak_rss_bytes",
              static_cast<double>(report.peak_rss_bytes));
    }
  }
  if (!report.histograms.empty()) {
    out += "histograms                                  count       p50"
           "       p90       p99       max\n";
    for (const HistogramSnapshot& hist : report.histograms) {
      appendf(out, "  %-36s %9llu %9llu %9llu %9llu %9llu\n",
              hist.name.c_str(),
              static_cast<unsigned long long>(hist.count),
              static_cast<unsigned long long>(hist.percentile(0.50)),
              static_cast<unsigned long long>(hist.percentile(0.90)),
              static_cast<unsigned long long>(hist.percentile(0.99)),
              static_cast<unsigned long long>(hist.max));
    }
  }
  if (report.dropped_events > 0) {
    appendf(out, "note: %llu span events dropped (log cap reached)\n",
            static_cast<unsigned long long>(report.dropped_events));
  }
  return out;
}

std::string to_json(const TraceReport& report) {
  std::string out = "{";
  out += "\"tracing_compiled\": ";
  out += report.tracing_compiled ? "true" : "false";
  appendf(out, ", \"wall_total_ns\": %llu",
          static_cast<unsigned long long>(report.root_total_ns()));
  appendf(out, ", \"threads\": %u", report.threads);

  out += ", \"spans\": [";
  for (std::size_t i = 0; i < report.spans.size(); ++i) {
    const TraceSpan& span = report.spans[i];
    if (i > 0) out += ", ";
    out += "{\"name\": \"";
    out += json_escape(span.name);
    out += "\"";
    if (span.parent == kNoSpan) {
      out += ", \"parent\": -1";
    } else {
      appendf(out, ", \"parent\": %u", span.parent);
    }
    appendf(out, ", \"total_ns\": %llu, \"calls\": %llu}",
            static_cast<unsigned long long>(span.total_ns),
            static_cast<unsigned long long>(span.calls));
  }
  out += "]";

  out += ", \"counters\": {";
  for (std::size_t i = 0; i < report.counters.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"";
    out += json_escape(report.counters[i].first);
    out += "\": ";
    appendf(out, "%lld", report.counters[i].second);
  }
  out += "}";

  out += ", \"gauges\": {";
  for (std::size_t i = 0; i < report.gauges.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"";
    out += json_escape(report.gauges[i].first);
    out += "\": ";
    appendf(out, "%.17g", report.gauges[i].second);
  }
  if (report.peak_rss_bytes > 0) {
    if (!report.gauges.empty()) out += ", ";
    appendf(out, "\"process/current_rss_bytes\": %llu",
            static_cast<unsigned long long>(report.current_rss_bytes));
    appendf(out, ", \"process/peak_rss_bytes\": %llu",
            static_cast<unsigned long long>(report.peak_rss_bytes));
  }
  out += "}";

  out += ", \"histograms\": {";
  for (std::size_t i = 0; i < report.histograms.size(); ++i) {
    const HistogramSnapshot& hist = report.histograms[i];
    if (i > 0) out += ", ";
    out += "\"";
    out += json_escape(hist.name);
    out += "\": ";
    appendf(out,
            "{\"count\": %llu, \"sum\": %llu, \"min\": %llu, "
            "\"max\": %llu, \"mean\": %.9g, \"p50\": %llu, "
            "\"p90\": %llu, \"p99\": %llu}",
            static_cast<unsigned long long>(hist.count),
            static_cast<unsigned long long>(hist.sum),
            static_cast<unsigned long long>(hist.min),
            static_cast<unsigned long long>(hist.max), hist.mean(),
            static_cast<unsigned long long>(hist.percentile(0.50)),
            static_cast<unsigned long long>(hist.percentile(0.90)),
            static_cast<unsigned long long>(hist.percentile(0.99)));
  }
  out += "}";

  appendf(out, ", \"dropped_events\": %llu}",
          static_cast<unsigned long long>(report.dropped_events));
  return out;
}

std::string to_chrome_trace(const TraceReport& report) {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& event : report.events) {
    if (event.span >= report.spans.size()) continue;
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": \"";
    out += json_escape(report.spans[event.span].name);
    out += "\", \"cat\": \"fhp\", \"ph\": \"X\"";
    appendf(out, ", \"ts\": %llu, \"dur\": %llu, \"pid\": 0, \"tid\": %u}",
            static_cast<unsigned long long>(event.start_us),
            static_cast<unsigned long long>(event.dur_us), event.tid);
  }
  // Histograms ride along as counter samples so a Perfetto view shows the
  // percentile summary next to the span rows.
  for (const HistogramSnapshot& hist : report.histograms) {
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": \"";
    out += json_escape(hist.name);
    out += "\", \"cat\": \"fhp\", \"ph\": \"C\", \"ts\": 0, \"pid\": 0";
    appendf(out, ", \"args\": {\"p50\": %llu, \"p90\": %llu, "
                 "\"p99\": %llu, \"max\": %llu}}",
            static_cast<unsigned long long>(hist.percentile(0.50)),
            static_cast<unsigned long long>(hist.percentile(0.90)),
            static_cast<unsigned long long>(hist.percentile(0.99)),
            static_cast<unsigned long long>(hist.max));
  }
  out += "]}";
  return out;
}

std::string json_escape(std::string_view text) {
  // One escaper for the whole codebase: the util/json Writer owns the
  // escaping rules, and the obs exporters ride on it.
  return json::escape(text);
}

}  // namespace fhp::obs

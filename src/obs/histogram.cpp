#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>

namespace fhp::obs {

std::uint64_t HistogramSnapshot::percentile(double q) const {
  if (count == 0 || counts.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(
          std::ceil(q * static_cast<double>(count))),
      1, count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (cumulative >= rank) {
      return std::clamp(hist_bucket_upper(i), min, max);
    }
  }
  return max;
}

Histograms& Histograms::instance() {
  static Histograms histograms;
  return histograms;
}

void Histograms::Hist::record(std::uint64_t v) {
  buckets[hist_bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  sum.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t seen = min.load(std::memory_order_relaxed);
  while (v < seen &&
         !min.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  seen = max.load(std::memory_order_relaxed);
  while (v > seen &&
         !max.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histograms::Hist::to_snapshot(std::string name) const {
  HistogramSnapshot out;
  out.name = std::move(name);
  out.counts.resize(kHistBuckets);
  for (std::size_t i = 0; i < kHistBuckets; ++i) {
    out.counts[i] = buckets[i].load(std::memory_order_relaxed);
    out.count += out.counts[i];
  }
  out.sum = sum.load(std::memory_order_relaxed);
  out.max = max.load(std::memory_order_relaxed);
  const std::uint64_t low = min.load(std::memory_order_relaxed);
  out.min = out.count == 0 ? 0 : low;
  if (out.count == 0) out.counts.clear();
  return out;
}

void Histograms::record(const char* name, long long value) {
  const std::uint64_t v =
      value < 0 ? 0 : static_cast<std::uint64_t>(value);
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) {
      it->second.record(v);
      return;
    }
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  histograms_[name].record(v);
}

std::vector<HistogramSnapshot> Histograms::snapshot() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<HistogramSnapshot> out;
  out.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    out.push_back(hist.to_snapshot(name));
  }
  return out;
}

HistogramSnapshot Histograms::snapshot_of(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = histograms_.find(std::string(name));
  if (it == histograms_.end()) {
    HistogramSnapshot empty;
    empty.name = std::string(name);
    return empty;
  }
  return it->second.to_snapshot(std::string(name));
}

void Histograms::reset() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  histograms_.clear();
}

}  // namespace fhp::obs

/// \file histogram.hpp
/// Log-bucketed latency/value histograms — the distribution half of the
/// observability layer (counters say how often, spans say how long in
/// total; histograms say how long *each time*, so a report can state p50
/// and p99 instead of a mean that hides the tail).
///
/// Usage at an instrumentation site:
///
///     FHP_HIST_RECORD("alg1/start_latency_us", elapsed_us);
///
///     void complete_start() {
///       FHP_HIST_SCOPE_US("alg1/start_latency_us");  // times the scope
///       ...
///     }
///
/// Bucketing is HDR-style: each power-of-two range splits into
/// kSubBuckets = 16 linear sub-buckets, so any recorded value lands in a
/// bucket whose width is at most 1/16 of its magnitude — percentile
/// queries are exact for values below 32 and within 6.25% relative error
/// everywhere else, over the full uint64 range, in a fixed 976-slot
/// table. No allocation ever happens on the record path.
///
/// Threading model: the registry is a process-wide singleton and
/// THREAD-SAFE. A histogram's buckets are atomics; concurrent record()
/// calls never lose observations, and because bucket increments commute,
/// the merged counts a snapshot sees are exactly the same whatever order
/// the threads interleaved in (multi-thread determinism is tested).
/// Snapshots merge the live atomics into plain copyable data; percentile
/// math runs on the snapshot, never on the hot registry.
///
/// Compile-time kill switch: under -DFHP_ENABLE_TRACING=OFF both macros
/// compile to `static_cast<void>(0)` — zero instructions, zero data, and
/// the value/name arguments are never evaluated. The classes stay defined
/// in both modes so exporters, tests and tools always compile and link.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#ifndef FHP_TRACING_ENABLED
#define FHP_TRACING_ENABLED 1
#endif

namespace fhp::obs {

/// Number of linear sub-buckets per power-of-two range (and its log2).
inline constexpr std::uint64_t kHistSubBuckets = 16;
inline constexpr int kHistSubBucketLog2 = 4;

/// Total bucket count covering every uint64 value: shifts run 0..59 and
/// each contributes kHistSubBuckets slots past the initial 2*16 exact ones.
inline constexpr std::size_t kHistBuckets =
    static_cast<std::size_t>((64 - (kHistSubBucketLog2 + 1)) *
                                 kHistSubBuckets +
                             2 * kHistSubBuckets);

/// Bucket index of value \p v; monotone in v.
[[nodiscard]] constexpr std::size_t hist_bucket_index(std::uint64_t v) {
  if (v < kHistSubBuckets) return static_cast<std::size_t>(v);
  const int shift =
      static_cast<int>(std::bit_width(v)) - (kHistSubBucketLog2 + 1);
  return static_cast<std::size_t>(shift) *
             static_cast<std::size_t>(kHistSubBuckets) +
         static_cast<std::size_t>(v >> shift);
}

/// Smallest value mapping to bucket \p index.
[[nodiscard]] constexpr std::uint64_t hist_bucket_lower(std::size_t index) {
  if (index < 2 * kHistSubBuckets) return index;
  const std::size_t shift = index / kHistSubBuckets - 1;
  const std::uint64_t sub =
      static_cast<std::uint64_t>(index - shift * kHistSubBuckets);
  return sub << shift;
}

/// Largest value mapping to bucket \p index.
[[nodiscard]] constexpr std::uint64_t hist_bucket_upper(std::size_t index) {
  if (index < 2 * kHistSubBuckets) return index;
  const std::size_t shift = index / kHistSubBuckets - 1;
  const std::uint64_t sub =
      static_cast<std::uint64_t>(index - shift * kHistSubBuckets);
  return ((sub + 1) << shift) - 1;
}

/// Immutable copy of one histogram's state; all queries run here.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;  ///< observations recorded
  std::uint64_t sum = 0;    ///< exact sum of observations
  std::uint64_t min = 0;    ///< exact smallest observation (0 when empty)
  std::uint64_t max = 0;    ///< exact largest observation
  /// Dense bucket counts (kHistBuckets entries; empty when count == 0).
  std::vector<std::uint64_t> counts;

  /// Value at quantile \p q in [0, 1]: the upper bound of the bucket where
  /// the cumulative count first reaches ceil(q * count), clamped into
  /// [min, max] so the answer is always an observed magnitude. Exact for
  /// values < 32, within 1/16 relative error above. Returns 0 when empty.
  [[nodiscard]] std::uint64_t percentile(double q) const;

  /// Arithmetic mean (exact, from sum/count); 0 when empty.
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Process-wide histogram registry. Use via the macros below; the direct
/// API exists for tests, exporters and custom integrations.
class Histograms {
 public:
  static Histograms& instance();

  /// Records one observation of \p value into histogram \p name (creating
  /// it empty). Negative values clamp to 0. Thread-safe and
  /// allocation-free except the first record of a new name.
  void record(const char* name, long long value);

  /// Copies every histogram out (unsorted). Thread-safe; empty histograms
  /// (never recorded since reset) are not created, so absence means the
  /// site never fired.
  [[nodiscard]] std::vector<HistogramSnapshot> snapshot() const;

  /// Copies one histogram by name; count == 0 when it was never recorded.
  [[nodiscard]] HistogramSnapshot snapshot_of(std::string_view name) const;

  /// Drops every histogram. Do not race with concurrent writers (reset
  /// between parallel regions, not inside them).
  void reset();

 private:
  /// Live recording state: a fixed table of atomic bucket counts plus
  /// exact sum/min/max. Node-stable inside the unordered_map, so a slot
  /// found under the shared lock stays valid for the lock-free updates.
  struct Hist {
    std::array<std::atomic<std::uint64_t>, kHistBuckets> buckets{};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max{0};

    void record(std::uint64_t v);
    [[nodiscard]] HistogramSnapshot to_snapshot(std::string name) const;
  };

  Histograms() = default;

  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string, Hist> histograms_;
};

/// RAII latency probe: records the scope's wall time in MICROSECONDS into
/// histogram \p name on destruction. Use via FHP_HIST_SCOPE_US.
class ScopedLatencyUs {
 public:
  explicit ScopedLatencyUs(const char* name)
      : name_(name), start_(std::chrono::steady_clock::now()) {}
  ~ScopedLatencyUs() {
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start_);
    Histograms::instance().record(name_, elapsed.count());
  }
  ScopedLatencyUs(const ScopedLatencyUs&) = delete;
  ScopedLatencyUs& operator=(const ScopedLatencyUs&) = delete;

 private:
  const char* name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace fhp::obs

#ifndef FHP_OBS_CONCAT
#define FHP_OBS_CONCAT_IMPL(a, b) a##b
#define FHP_OBS_CONCAT(a, b) FHP_OBS_CONCAT_IMPL(a, b)
#endif

#if FHP_TRACING_ENABLED
/// Records \p value into the process-wide histogram \p name.
#define FHP_HIST_RECORD(name, value) \
  ::fhp::obs::Histograms::instance().record((name), (value))
/// Times the enclosing scope and records microseconds into \p name.
#define FHP_HIST_SCOPE_US(name)    \
  ::fhp::obs::ScopedLatencyUs FHP_OBS_CONCAT(fhp_hist_scope_, \
                                             __COUNTER__)(name)
#else
#define FHP_HIST_RECORD(name, value) static_cast<void>(0)
#define FHP_HIST_SCOPE_US(name) static_cast<void>(0)
#endif

/// \file components.hpp
/// Connected components. Algorithm I uses them to detect the paper's
/// "completely pathological" c = 0 case (§4): if the intersection graph is
/// disconnected, a zero-cut bipartition exists and BFS finds it directly.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/ids.hpp"

namespace fhp {

/// Connected-component labelling of a graph.
struct Components {
  std::vector<VertexId> label;  ///< component id per vertex, 0-based dense
  std::vector<VertexId> size;   ///< vertices per component
  /// Number of components.
  [[nodiscard]] VertexId count() const noexcept {
    return static_cast<VertexId>(size.size());
  }
  /// Id of a largest component (0 when the graph is empty).
  [[nodiscard]] VertexId largest() const;
};

/// Computes connected components by repeated BFS; O(V + E).
[[nodiscard]] Components connected_components(const Graph& g);

/// True iff the graph has at most one connected component.
[[nodiscard]] bool is_connected(const Graph& g);

}  // namespace fhp

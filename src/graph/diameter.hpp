/// \file diameter.hpp
/// Exact and estimated graph diameter.
///
/// The paper leans on two facts (§3): BFS from a random vertex reaches
/// depth diam(G) - O(1) with high probability, and random bounded-degree
/// graphs have diameter Θ(log n). `bench_diameter` verifies both; the
/// exact computation here is the O(V·E) reference the estimates are
/// compared against.
#pragma once

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace fhp {

/// Exact diameter of the largest connected component: max over vertices of
/// eccentricity, by BFS from every vertex. O(V·(V+E)); fine for the test
/// and bench sizes it is used at.
[[nodiscard]] std::uint32_t exact_diameter(const Graph& g);

/// Lower-bound estimate: best distance found over \p starts random
/// double-sweep BFS runs.
[[nodiscard]] std::uint32_t estimate_diameter(const Graph& g, Rng& rng,
                                              int starts = 4);

}  // namespace fhp

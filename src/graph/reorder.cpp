#include "graph/reorder.hpp"

#include <algorithm>
#include <numeric>

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace fhp {

bool Permutation::is_identity() const noexcept {
  for (VertexId v = 0; v < size(); ++v) {
    if (to_new[v] != v) return false;
  }
  return true;
}

Permutation Permutation::identity(VertexId n) {
  Permutation p;
  p.to_new.resize(n);
  p.to_old.resize(n);
  std::iota(p.to_new.begin(), p.to_new.end(), 0U);
  std::iota(p.to_old.begin(), p.to_old.end(), 0U);
  return p;
}

Permutation Permutation::from_order(std::vector<VertexId> order) {
  Permutation p;
  const auto n = static_cast<VertexId>(order.size());
  p.to_old = std::move(order);
  p.to_new.assign(n, kInvalidVertex);
  for (VertexId fresh = 0; fresh < n; ++fresh) {
    const VertexId old = p.to_old[fresh];
    FHP_REQUIRE(old < n, "order entry out of range");
    FHP_REQUIRE(p.to_new[old] == kInvalidVertex, "order repeats a vertex");
    p.to_new[old] = fresh;
  }
  return p;
}

void Permutation::validate() const {
  FHP_ASSERT(to_new.size() == to_old.size(),
             "forward and inverse maps must cover the same vertices");
  for (VertexId v = 0; v < size(); ++v) {
    FHP_ASSERT(to_new[v] < size() && to_old[v] < size(),
               "permutation entry out of range");
    FHP_ASSERT(to_old[to_new[v]] == v, "maps must be mutual inverses");
  }
}

namespace {

/// Plain BFS from \p seed over the unvisited part of \p g, appending every
/// vertex reached (including \p seed) to \p order and marking it visited.
/// \p ordered_neighbors controls the within-level visit sequence: when
/// set, each vertex's unvisited neighbors are appended in ascending
/// (degree, id) order; otherwise in the CSR's natural ascending-id order.
void bfs_collect(const Graph& g, VertexId seed, bool degree_ordered,
                 std::vector<std::uint8_t>& visited,
                 std::vector<VertexId>& order) {
  const std::size_t head0 = order.size();
  visited[seed] = 1;
  order.push_back(seed);
  std::vector<VertexId> fresh;  // unvisited neighbors of the current vertex
  for (std::size_t head = head0; head < order.size(); ++head) {
    const VertexId u = order[head];
    fresh.clear();
    for (VertexId w : g.neighbors(u)) {
      if (!visited[w]) {
        visited[w] = 1;
        fresh.push_back(w);
      }
    }
    if (degree_ordered) {
      std::sort(fresh.begin(), fresh.end(), [&](VertexId a, VertexId b) {
        const std::uint32_t da = g.degree(a);
        const std::uint32_t db = g.degree(b);
        return da != db ? da < db : a < b;
      });
    }
    order.insert(order.end(), fresh.begin(), fresh.end());
  }
}

/// Distances of one BFS from \p seed restricted to \p seed's component;
/// returns the smallest-id vertex at maximum distance (the deterministic
/// "farthest" tie-break shared with src/graph/bfs.cpp).
VertexId farthest_from(const Graph& g, VertexId seed,
                       std::vector<std::uint32_t>& distance,
                       std::vector<VertexId>& queue) {
  queue.clear();
  distance[seed] = 0;
  queue.push_back(seed);
  VertexId farthest = seed;
  std::uint32_t depth = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const VertexId u = queue[head];
    const std::uint32_t du = distance[u];
    for (VertexId w : g.neighbors(u)) {
      if (distance[w] != 0xffffffffU) continue;
      distance[w] = du + 1;
      if (du + 1 > depth || (du + 1 == depth && w < farthest)) {
        depth = du + 1;
        farthest = w;
      }
      queue.push_back(w);
    }
  }
  // Reset only the touched slots so the next component starts clean.
  for (VertexId u : queue) distance[u] = 0xffffffffU;
  return farthest;
}

}  // namespace

Permutation degree_bucketed_bfs_order(const Graph& g) {
  FHP_TRACE_SCOPE("reorder");
  const VertexId n = g.num_vertices();
  std::vector<std::uint8_t> visited(n, 0);
  std::vector<VertexId> order;
  order.reserve(n);
  std::vector<VertexId> component;
  for (VertexId v = 0; v < n; ++v) {
    if (visited[v]) continue;
    // First pass finds the component members (natural order is fine for
    // that), so the real traversal can start from the min-degree seed.
    component.clear();
    bfs_collect(g, v, false, visited, component);
    VertexId seed = v;
    for (VertexId u : component) {
      visited[u] = 0;
      if (g.degree(u) < g.degree(seed) ||
          (g.degree(u) == g.degree(seed) && u < seed)) {
        seed = u;
      }
    }
    bfs_collect(g, seed, true, visited, order);
  }
  FHP_COUNTER_ADD("reorder/orders_computed", 1);
  return Permutation::from_order(std::move(order));
}

Permutation pseudo_diameter_bfs_order(const Graph& g) {
  FHP_TRACE_SCOPE("reorder");
  const VertexId n = g.num_vertices();
  std::vector<std::uint8_t> visited(n, 0);
  std::vector<std::uint32_t> distance(n, 0xffffffffU);
  std::vector<VertexId> queue;
  queue.reserve(n);
  std::vector<VertexId> order;
  order.reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    if (visited[v]) continue;
    // Double sweep: the farthest vertex from v approximates a diameter
    // endpoint; starting the layout BFS there makes levels long and thin,
    // i.e. contiguous id ranges under the final numbering.
    const VertexId endpoint = farthest_from(g, v, distance, queue);
    bfs_collect(g, endpoint, false, visited, order);
  }
  FHP_COUNTER_ADD("reorder/orders_computed", 1);
  return Permutation::from_order(std::move(order));
}

Graph Graph::permuted(const Permutation& perm) const {
  FHP_TRACE_SCOPE("permute_graph");
  FHP_REQUIRE(perm.size() == num_vertices(),
              "permutation size must match the graph");
  std::vector<std::size_t> offsets(static_cast<std::size_t>(num_vertices()) +
                                   1);
  offsets[0] = 0;
  for (VertexId fresh = 0; fresh < num_vertices(); ++fresh) {
    offsets[fresh + 1] = offsets[fresh] + degree(perm.to_old[fresh]);
  }
  std::vector<VertexId> adjacency(adjacency_.size());
  for (VertexId fresh = 0; fresh < num_vertices(); ++fresh) {
    std::size_t cursor = offsets[fresh];
    for (VertexId w : neighbors(perm.to_old[fresh])) {
      adjacency[cursor++] = perm.to_new[w];
    }
    std::sort(adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[fresh]),
              adjacency.begin() + static_cast<std::ptrdiff_t>(cursor));
  }
  return Graph::from_csr(std::move(offsets), std::move(adjacency));
}

}  // namespace fhp

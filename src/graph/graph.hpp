/// \file graph.hpp
/// Immutable CSR undirected simple graph.
///
/// Used for the *intersection graph* G dual to the input netlist (one
/// vertex per net, adjacency = shared module) and for the bipartite
/// *boundary graph* G' processed by Complete-Cut.
#pragma once

#include <span>
#include <vector>

#include "util/error.hpp"
#include "util/ids.hpp"

namespace fhp {

struct Permutation;  // graph/reorder.hpp

/// Immutable undirected simple graph in CSR form. Self-loops and parallel
/// edges are rejected/merged at construction.
class Graph {
 public:
  /// Empty graph.
  Graph() = default;

  /// Builds a graph over \p num_vertices vertices from an edge list.
  /// Duplicate edges are merged; self-loops are a precondition violation.
  [[nodiscard]] static Graph from_edges(
      VertexId num_vertices,
      const std::vector<std::pair<VertexId, VertexId>>& edges);

  /// Fast path for bulk constructions that deduplicate themselves (e.g. the
  /// sharded intersection build): \p edges must already be normalized
  /// (u < v), sorted ascending and free of duplicates. Skips the
  /// normalize/sort/unique pass of GraphBuilder; preconditions are checked
  /// in debug builds only.
  [[nodiscard]] static Graph from_sorted_unique_edges(
      VertexId num_vertices,
      const std::vector<std::pair<VertexId, VertexId>>& edges);

  /// Adopts a prebuilt CSR: \p offsets has num_vertices + 1 entries with
  /// offsets[0] == 0 and offsets.back() == adjacency.size(); each row
  /// [offsets[v], offsets[v+1]) must be sorted ascending, free of
  /// duplicates and self-loops, and symmetric (u in row v iff v in row u).
  /// The linear-time intersection build produces rows in exactly this form,
  /// skipping the edge-list materialization entirely. Preconditions are
  /// checked in debug builds only.
  [[nodiscard]] static Graph from_csr(std::vector<std::size_t> offsets,
                                      std::vector<VertexId> adjacency);

  /// Number of vertices.
  [[nodiscard]] VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }
  /// Number of undirected edges.
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return adjacency_.size() / 2;
  }
  /// Neighbors of \p v, sorted ascending.
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const {
    FHP_DEBUG_ASSERT(v < num_vertices(), "vertex id out of range");
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }
  /// Degree of \p v.
  [[nodiscard]] Count degree(VertexId v) const {
    FHP_DEBUG_ASSERT(v < num_vertices(), "vertex id out of range");
    return static_cast<Count>(offsets_[v + 1] - offsets_[v]);
  }
  /// Largest degree (0 for the empty graph).
  [[nodiscard]] Count max_degree() const noexcept { return max_degree_; }
  /// True iff u and v are adjacent (binary search, O(log deg)).
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const;

  /// Relabeled copy under \p perm: new vertex v is old vertex
  /// perm.to_old[v], rows re-sorted ascending in the new numbering. The
  /// result is isomorphic to *this — same degrees, same distances — but
  /// with the memory layout of the ordering (see graph/reorder.hpp;
  /// implemented in reorder.cpp).
  [[nodiscard]] Graph permuted(const Permutation& perm) const;

  /// Structural self-check; aborts on violation.
  void validate() const;

 private:
  friend class GraphBuilder;
  /// CSR assembly shared by GraphBuilder::build() and
  /// from_sorted_unique_edges(); requires a normalized sorted unique list.
  [[nodiscard]] static Graph assemble_csr(
      VertexId num_vertices,
      const std::vector<std::pair<VertexId, VertexId>>& edges);

  std::vector<std::size_t> offsets_{0};
  std::vector<VertexId> adjacency_;
  Count max_degree_ = 0;
};

/// Incremental edge-list accumulator for Graph.
class GraphBuilder {
 public:
  /// Creates a builder for a graph over \p num_vertices vertices.
  explicit GraphBuilder(VertexId num_vertices) : num_vertices_(num_vertices) {}

  /// Adds the undirected edge {u, v}. Self-loops are rejected; duplicates
  /// are merged at build time.
  void add_edge(VertexId u, VertexId v);

  /// Number of vertices the graph will have.
  [[nodiscard]] VertexId num_vertices() const noexcept { return num_vertices_; }

  /// Finalizes into an immutable Graph. The builder is consumed.
  [[nodiscard]] Graph build() &&;

 private:
  VertexId num_vertices_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
};

}  // namespace fhp

/// \file maxflow.hpp
/// Maximum s-t flow / minimum s-t cut on a directed capacitated network
/// (Dinic's algorithm).
///
/// Substrate for the network-flow bipartitioning family the paper lists
/// among its competitors (§1: Chopra [7]; Hu–Moerder multiterminal
/// hypergraph flows [16]) and for the multilevel engine's corridor flow
/// refiner (src/multilevel/flow_refine.hpp). Also reusable on its own.
///
/// Node and arc ids are fhp::Count — the build-configured index width
/// (util/ids.hpp). Under `-DFHP_INDEX_64=ON` the Lawler hyperedge gadget
/// (2·|corridor| + 2·nets nodes) of a million-module corridor indexes
/// without overflow; on the default 32-bit build the constructor and
/// add_arc() reject counts past kMaxIndexCount with a typed error before
/// any count-proportional allocation, so ids can never silently wrap.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/error.hpp"
#include "util/ids.hpp"

namespace fhp {

/// Directed flow network with residual bookkeeping. Add nodes and arcs,
/// then call max_flow(); afterwards min_cut_side() exposes the source
/// side of a minimum s-t cut.
class FlowNetwork {
 public:
  /// Capacity type; kInfiniteCapacity models the "uncuttable" arcs of the
  /// standard hyperedge gadget. Finite capacities must stay strictly
  /// below it (add_arc rejects larger ones): residual updates add at most
  /// one total-flow's worth of weight to a reverse arc, and with every
  /// finite capacity < 2^60 the running sums stay clear of int64 overflow.
  using Capacity = std::int64_t;
  static constexpr Capacity kInfiniteCapacity =
      std::int64_t{1} << 60;

  /// Creates a network with \p num_nodes nodes and no arcs. \p num_nodes
  /// must be admissible for the build's index width (<= kMaxIndexCount);
  /// violations throw PreconditionError before anything is allocated.
  explicit FlowNetwork(Count num_nodes);

  /// Number of nodes.
  [[nodiscard]] Count num_nodes() const noexcept {
    return static_cast<Count>(head_.size());
  }

  /// Number of directed arcs stored (two per add_arc call: the forward
  /// arc and its zero-capacity residual partner).
  [[nodiscard]] Count num_arcs() const noexcept {
    return static_cast<Count>(arcs_.size());
  }

  /// Adds a directed arc from \p from to \p to with capacity \p capacity
  /// (and a zero-capacity reverse residual arc). Returns the arc id.
  /// Capacities above kInfiniteCapacity and arc counts past
  /// kMaxIndexCount fail typed.
  Count add_arc(Count from, Count to, Capacity capacity);

  /// Computes the maximum flow from \p source to \p sink; callable once
  /// per network (capacities are consumed). O(V^2 E) worst case, far
  /// better on the unit-ish networks used here.
  Capacity max_flow(Count source, Count sink);

  /// After max_flow(): marker per node, 1 = reachable from the source in
  /// the residual network (the source side of a minimum cut).
  [[nodiscard]] std::vector<std::uint8_t> min_cut_side() const;

 private:
  struct Arc {
    Count to;
    Count next;  ///< next arc id in the from-node's list
    Capacity residual;
  };

  bool build_levels(Count source, Count sink);
  Capacity push(Count node, Count sink, Capacity limit);

  std::vector<Count> head_;  ///< first arc id per node
  std::vector<Arc> arcs_;    ///< arc i and i^1 are partners
  std::vector<Count> level_;
  std::vector<Count> iter_;
  Count source_ = 0;
  bool solved_ = false;

  static constexpr Count kNoArc = std::numeric_limits<Count>::max();
  static constexpr Count kNoLevel = std::numeric_limits<Count>::max();
};

}  // namespace fhp

/// \file maxflow.hpp
/// Maximum s-t flow / minimum s-t cut on a directed capacitated network
/// (Dinic's algorithm).
///
/// Substrate for the network-flow bipartitioning family the paper lists
/// among its competitors (§1: Chopra [7]; Hu–Moerder multiterminal
/// hypergraph flows [16]). Also reusable on its own.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"
#include "util/ids.hpp"

namespace fhp {

/// Directed flow network with residual bookkeeping. Add nodes and arcs,
/// then call max_flow(); afterwards min_cut_side() exposes the source
/// side of a minimum s-t cut.
class FlowNetwork {
 public:
  /// Capacity type; kInfiniteCapacity models the "uncuttable" arcs of the
  /// standard hyperedge gadget.
  using Capacity = std::int64_t;
  static constexpr Capacity kInfiniteCapacity =
      std::int64_t{1} << 60;

  /// Creates a network with \p num_nodes nodes and no arcs.
  explicit FlowNetwork(std::uint32_t num_nodes);

  /// Number of nodes.
  [[nodiscard]] std::uint32_t num_nodes() const noexcept {
    return static_cast<std::uint32_t>(head_.size());
  }

  /// Adds a directed arc from \p from to \p to with capacity \p capacity
  /// (and a zero-capacity reverse residual arc). Returns the arc id.
  std::uint32_t add_arc(std::uint32_t from, std::uint32_t to,
                        Capacity capacity);

  /// Computes the maximum flow from \p source to \p sink; callable once
  /// per network (capacities are consumed). O(V^2 E) worst case, far
  /// better on the unit-ish networks used here.
  Capacity max_flow(std::uint32_t source, std::uint32_t sink);

  /// After max_flow(): marker per node, 1 = reachable from the source in
  /// the residual network (the source side of a minimum cut).
  [[nodiscard]] std::vector<std::uint8_t> min_cut_side() const;

 private:
  struct Arc {
    std::uint32_t to;
    std::uint32_t next;  ///< next arc id in the from-node's list
    Capacity residual;
  };

  bool build_levels(std::uint32_t source, std::uint32_t sink);
  Capacity push(std::uint32_t node, std::uint32_t sink, Capacity limit);

  std::vector<std::uint32_t> head_;  ///< first arc id per node
  std::vector<Arc> arcs_;            ///< arc i and i^1 are partners
  std::vector<std::uint32_t> level_;
  std::vector<std::uint32_t> iter_;
  std::uint32_t source_ = 0;
  bool solved_ = false;

  static constexpr std::uint32_t kNoArc = 0xffffffffU;
};

}  // namespace fhp

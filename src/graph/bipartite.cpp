#include "graph/bipartite.hpp"

namespace fhp {

std::optional<std::vector<std::uint8_t>> two_color(const Graph& g) {
  constexpr std::uint8_t kUncolored = 2;
  std::vector<std::uint8_t> color(g.num_vertices(), kUncolored);
  std::vector<VertexId> queue;
  for (VertexId start = 0; start < g.num_vertices(); ++start) {
    if (color[start] != kUncolored) continue;
    color[start] = 0;
    queue.clear();
    queue.push_back(start);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId u = queue[head];
      for (VertexId w : g.neighbors(u)) {
        if (color[w] == kUncolored) {
          color[w] = static_cast<std::uint8_t>(1 - color[u]);
          queue.push_back(w);
        } else if (color[w] == color[u]) {
          return std::nullopt;
        }
      }
    }
  }
  return color;
}

bool is_bipartite(const Graph& g) { return two_color(g).has_value(); }

}  // namespace fhp

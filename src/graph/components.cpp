#include "graph/components.hpp"

#include <algorithm>

namespace fhp {

VertexId Components::largest() const {
  if (size.empty()) return 0;
  const auto it = std::max_element(size.begin(), size.end());
  return static_cast<VertexId>(it - size.begin());
}

Components connected_components(const Graph& g) {
  Components comps;
  comps.label.assign(g.num_vertices(), kInvalidVertex);
  std::vector<VertexId> queue;
  for (VertexId start = 0; start < g.num_vertices(); ++start) {
    if (comps.label[start] != kInvalidVertex) continue;
    const auto id = static_cast<VertexId>(comps.size.size());
    comps.size.push_back(0);
    queue.clear();
    queue.push_back(start);
    comps.label[start] = id;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId u = queue[head];
      ++comps.size[id];
      for (VertexId w : g.neighbors(u)) {
        if (comps.label[w] != kInvalidVertex) continue;
        comps.label[w] = id;
        queue.push_back(w);
      }
    }
  }
  return comps;
}

bool is_connected(const Graph& g) {
  return connected_components(g).count() <= 1;
}

}  // namespace fhp

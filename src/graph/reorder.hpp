/// \file reorder.hpp
/// Cache-locality layer: vertex reorderings for the intersection graph.
///
/// The CSR a Graph is built with inherits whatever vertex numbering the
/// producer used — for the intersection graph that is net numbering, an
/// artifact of input order with no relation to traversal locality. The BFS
/// engine (src/graph/bfs.cpp) touches `offsets_[v]`, then a row of
/// `adjacency_`, then the distance slots of that row's entries: when
/// neighbors carry far-apart ids, every row hop is a cache miss. A
/// bandwidth-reducing relabeling puts neighbors at nearby ids, so the same
/// traversal walks nearly-sequential memory.
///
/// Two orderings are provided, both deterministic pure functions of the
/// graph (docs/performance.md discusses when each wins):
///   - degree_bucketed_bfs_order(): RCM-lite — per component, BFS from a
///     minimum-degree seed visiting neighbors in ascending (degree, id)
///     order. The classic bandwidth reducer, minus the reversal (the BFS
///     kernels here are symmetric in direction, so the reversal buys
///     nothing).
///   - pseudo_diameter_bfs_order(): per component, a double BFS sweep
///     finds a pseudo-diameter endpoint, then plain BFS order from it.
///     Levels become contiguous id ranges, which is exactly the access
///     pattern of the level-synchronous kernels.
///
/// Consumers relabel once (`Graph::permuted`), run every traversal on the
/// permuted graph, and map results back through the inverse map; see
/// Algorithm1Options::reorder for the end-to-end contract.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/ids.hpp"

namespace fhp {

/// A vertex relabeling: a bijection between "old" ids (the graph the
/// ordering was computed on) and "new" ids (the permuted graph).
struct Permutation {
  std::vector<VertexId> to_new;  ///< to_new[old] = new id
  std::vector<VertexId> to_old;  ///< to_old[new] = old id (inverse map)

  /// Number of vertices the permutation covers.
  [[nodiscard]] VertexId size() const noexcept {
    return static_cast<VertexId>(to_new.size());
  }

  /// True iff the permutation maps every id to itself.
  [[nodiscard]] bool is_identity() const noexcept;

  /// The identity permutation over \p n vertices.
  [[nodiscard]] static Permutation identity(VertexId n);

  /// Builds a permutation from a visit order: \p order lists old ids in
  /// the sequence they should be renumbered 0, 1, 2, ... — i.e. it becomes
  /// the to_old map. Must be a permutation of [0, order.size()).
  [[nodiscard]] static Permutation from_order(std::vector<VertexId> order);

  /// Structural self-check (both maps bijective and mutually inverse);
  /// aborts on violation.
  void validate() const;
};

/// RCM-lite ordering: components in ascending order of their smallest
/// vertex id, each traversed by BFS from a minimum-degree seed (ties by
/// smallest id) visiting neighbors in ascending (degree, id) order. A
/// deterministic pure function of the graph structure.
[[nodiscard]] Permutation degree_bucketed_bfs_order(const Graph& g);

/// Pseudo-diameter-seeded ordering: components in ascending order of their
/// smallest vertex id, each traversed by BFS (neighbors in ascending id
/// order) from the endpoint a double sweep finds — BFS from the smallest
/// id, then from the farthest vertex of that sweep (smallest id among the
/// deepest). A deterministic pure function of the graph structure.
[[nodiscard]] Permutation pseudo_diameter_bfs_order(const Graph& g);

}  // namespace fhp

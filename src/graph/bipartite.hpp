/// \file bipartite.hpp
/// Bipartiteness check / 2-coloring. The boundary graph G' of §2.2 is
/// bipartite by construction (only cross-cut edges are kept); tests use
/// this to verify the construction and Complete-Cut relies on it.
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace fhp {

/// Returns a proper 2-coloring (0/1 per vertex, components colored
/// independently with the lowest-indexed vertex getting color 0) if the
/// graph is bipartite, std::nullopt otherwise.
[[nodiscard]] std::optional<std::vector<std::uint8_t>> two_color(
    const Graph& g);

/// True iff the graph contains no odd cycle.
[[nodiscard]] bool is_bipartite(const Graph& g);

}  // namespace fhp

/// \file bfs.hpp
/// Breadth-first-search toolkit for the intersection graph.
///
/// Algorithm I's first two steps are pure BFS machinery (paper §2):
/// find a pseudo-diameter pair by a random longest BFS path, then grow
/// regions from both endpoints simultaneously until they meet to define a
/// graph cut. Everything here is O(V + E) per sweep.
///
/// The kernels are *direction-optimizing* (Beamer et al., SC'12): each
/// level is expanded either top-down (scan the frontier's adjacency rows)
/// or bottom-up (scan unvisited vertices for a frontier neighbor, stopping
/// at the first hit), switching on the standard frontier-size heuristic.
/// Both directions produce the same level sets, so every result — distance
/// labels, depth, reached counts, region claims — is identical whichever
/// mix of steps ran; `bench_bfs_kernels` asserts this and records the edge
/// scans saved. Frontiers are flat arrays swapped between levels (no
/// per-level vector churn); bottom-up uses a per-vertex bitset rebuilt
/// from the flat frontier (`Workspace::frontier_bits`).
///
/// Tie-breaking contract: wherever a single "farthest" vertex must be
/// elected from the set at maximum distance, it is the one with the
/// smallest vertex id (or smallest `BfsKernelOptions::tie_rank` when a
/// caller traverses a relabeled graph and wants ties broken in the
/// original numbering — see graph/reorder.hpp). The set at maximum
/// distance is direction- and relabeling-invariant, so this rule makes
/// every kernel and direction agree deterministically.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"
#include "util/workspace.hpp"

namespace fhp {

/// Distance label for unreachable vertices.
inline constexpr std::uint32_t kUnreachable = 0xffffffffU;

/// Tuning of the direction-optimizing traversal engine. Results are
/// bit-identical at any setting (the heuristic only chooses how a level is
/// expanded, never what it contains), so these are pure performance knobs.
///
/// The defaults are NOT the classic Beamer (14, 24) scale-free settings:
/// intersection graphs here are near-uniform-degree with non-trivial
/// diameter, where an eager alpha re-scans the unvisited set level after
/// level and can triple total edge inspections (grids, sparse planted
/// bisections). An alpha/beta sweep over the bench_bfs_kernels shapes
/// found (2, 24) the only corner that never loses to pure top-down:
/// 1.3-1.7x fewer scans on planted bisections, ~4x on standard-cell
/// circuits, parity on grids.
struct BfsKernelOptions {
  /// Allow bottom-up steps. Off = always top-down (the historical kernel;
  /// kept selectable for differential benching in bench_bfs_kernels).
  bool direction_optimizing = true;
  /// Go bottom-up when frontier_degree * alpha > unexplored_degree.
  std::uint32_t alpha = 2;
  /// ... and the frontier holds more than n / beta vertices (bounds the
  /// number of O(n)-scan bottom-up levels on deep graphs).
  std::uint32_t beta = 24;
  /// Optional tie-break ranks for `farthest`: when set (one rank per
  /// vertex, all distinct), the farthest vertex minimizes tie_rank instead
  /// of the vertex id. Callers running on a permuted graph pass the
  /// inverse permutation so ties resolve in original-id space.
  const VertexId* tie_rank = nullptr;
};

/// Result of a single-source BFS.
struct BfsResult {
  std::vector<std::uint32_t> distance;  ///< kUnreachable if not reached
  VertexId farthest = kInvalidVertex;   ///< smallest id at maximum distance
  std::uint32_t depth = 0;              ///< eccentricity within the component
  VertexId reached = 0;                 ///< number of vertices reached
};

/// Full BFS from \p source. Among vertices at maximum distance, `farthest`
/// is the one with the smallest vertex id (deterministic). Thin wrapper:
/// runs bfs_scan() on a local workspace and copies the labels out.
[[nodiscard]] BfsResult bfs(const Graph& g, VertexId source);

/// Summary of a BFS whose distance labels live in a Workspace rather than
/// in a per-call vector.
struct BfsSummary {
  VertexId farthest = kInvalidVertex;  ///< smallest id at maximum distance
  std::uint32_t depth = 0;             ///< eccentricity within the component
  VertexId reached = 0;                ///< number of vertices reached
};

/// Allocation-free direction-optimizing BFS from \p source: distance
/// labels are written into `ws.distance` (epoch-cleared, so the call is
/// O(V_reached + E_scanned), not O(n) setup) and the frontiers reuse
/// `ws.queue` / `ws.next` / `ws.frontier_bits`. On return
/// `ws.distance.get(v)` is d(source, v), or kUnreachable for unreached v,
/// valid until the next use of ws.distance.
BfsSummary bfs_scan(const Graph& g, VertexId source, Workspace& ws,
                    const BfsKernelOptions& kernel = {});

/// A pseudo-diameter endpoint pair obtained by BFS sweeps.
struct DiameterPair {
  VertexId s = kInvalidVertex;
  VertexId t = kInvalidVertex;
  std::uint32_t distance = 0;  ///< d(s, t): a lower bound on the diameter
};

/// The paper's "random longest BFS path": BFS from a random vertex, take
/// the farthest vertex v; BFS again from v and take its farthest vertex w.
/// (v, w) is within O(1) of a diametral pair for bounded-degree random
/// graphs. \p sweeps >= 1 controls how many alternating refinement sweeps
/// to run (2 = the classic double sweep).
[[nodiscard]] DiameterPair random_longest_path(const Graph& g, Rng& rng,
                                               int sweeps = 2);

/// Like random_longest_path but starting from a given vertex (used by the
/// multi-start driver to derandomize tests).
[[nodiscard]] DiameterPair longest_path_from(const Graph& g, VertexId start,
                                             int sweeps = 2);

/// Workspace-backed longest_path_from: same sweeps, same result, but every
/// BFS runs through bfs_scan() on \p ws (zero allocations once warm).
[[nodiscard]] DiameterPair longest_path_from(const Graph& g, VertexId start,
                                             int sweeps, Workspace& ws,
                                             const BfsKernelOptions& kernel =
                                                 {});

/// Result of growing BFS regions from two seeds simultaneously.
struct BidirectionalCut {
  /// side[v]: 0 = reached from s first, 1 = reached from t first,
  /// 2 = unreached (v lies in a different component).
  std::vector<std::uint8_t> side;
  VertexId reached_s = 0;  ///< vertices claimed by the s region
  VertexId reached_t = 0;  ///< vertices claimed by the t region
};

/// Grows BFS level-by-level from \p s and \p t alternately until every
/// vertex in their component(s) is claimed; ties (same level reachable from
/// both) go to the region whose level was expanded first, with the smaller
/// region expanding first to keep the two sides near-equal in vertex count.
/// This realizes the paper's "BFS from two distant nodes until the two
/// expanding sets meet to define a cutline". The claimed sets depend only
/// on region sizes and adjacency — never on vertex numbering or expansion
/// direction — so the cut is invariant under graph relabeling.
[[nodiscard]] BidirectionalCut bidirectional_bfs_cut(const Graph& g, VertexId s,
                                                     VertexId t);

/// Workspace-backed bidirectional cut: identical result to the allocating
/// overload, but the two frontier queues and the next-level staging buffer
/// are hoisted into \p ws (clear()ed between levels, capacity persists) and
/// the side labels are written into \p out.side reusing its capacity. The
/// only steady-state allocation is out.side's first growth per lane.
void bidirectional_bfs_cut(const Graph& g, VertexId s, VertexId t,
                           Workspace& ws, BidirectionalCut& out,
                           const BfsKernelOptions& kernel = {});

}  // namespace fhp

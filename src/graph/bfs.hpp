/// \file bfs.hpp
/// Breadth-first-search toolkit for the intersection graph.
///
/// Algorithm I's first two steps are pure BFS machinery (paper §2):
/// find a pseudo-diameter pair by a random longest BFS path, then grow
/// regions from both endpoints simultaneously until they meet to define a
/// graph cut. Everything here is O(V + E) per sweep.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"
#include "util/workspace.hpp"

namespace fhp {

/// Distance label for unreachable vertices.
inline constexpr std::uint32_t kUnreachable = 0xffffffffU;

/// Result of a single-source BFS.
struct BfsResult {
  std::vector<std::uint32_t> distance;  ///< kUnreachable if not reached
  VertexId farthest = kInvalidVertex;   ///< a vertex at maximum distance
  std::uint32_t depth = 0;              ///< eccentricity within the component
  VertexId reached = 0;                 ///< number of vertices reached
};

/// Full BFS from \p source. Among vertices at maximum distance, `farthest`
/// is the one discovered first (deterministic).
[[nodiscard]] BfsResult bfs(const Graph& g, VertexId source);

/// Summary of a BFS whose distance labels live in a Workspace rather than
/// in a per-call vector.
struct BfsSummary {
  VertexId farthest = kInvalidVertex;  ///< a vertex at maximum distance
  std::uint32_t depth = 0;             ///< eccentricity within the component
  VertexId reached = 0;                ///< number of vertices reached
};

/// Allocation-free BFS from \p source: identical traversal to bfs(), but
/// distance labels are written into `ws.distance` (epoch-cleared, so the
/// call is O(V_reached + E_reached), not O(n) setup) and the queue reuses
/// `ws.queue`. On return `ws.distance.get(v)` is d(source, v), or
/// kUnreachable for unreached v, valid until the next use of ws.distance.
BfsSummary bfs_scan(const Graph& g, VertexId source, Workspace& ws);

/// A pseudo-diameter endpoint pair obtained by BFS sweeps.
struct DiameterPair {
  VertexId s = kInvalidVertex;
  VertexId t = kInvalidVertex;
  std::uint32_t distance = 0;  ///< d(s, t): a lower bound on the diameter
};

/// The paper's "random longest BFS path": BFS from a random vertex, take
/// the farthest vertex v; BFS again from v and take its farthest vertex w.
/// (v, w) is within O(1) of a diametral pair for bounded-degree random
/// graphs. \p sweeps >= 1 controls how many alternating refinement sweeps
/// to run (2 = the classic double sweep).
[[nodiscard]] DiameterPair random_longest_path(const Graph& g, Rng& rng,
                                               int sweeps = 2);

/// Like random_longest_path but starting from a given vertex (used by the
/// multi-start driver to derandomize tests).
[[nodiscard]] DiameterPair longest_path_from(const Graph& g, VertexId start,
                                             int sweeps = 2);

/// Workspace-backed longest_path_from: same sweeps, same result, but every
/// BFS runs through bfs_scan() on \p ws (zero allocations once warm).
[[nodiscard]] DiameterPair longest_path_from(const Graph& g, VertexId start,
                                             int sweeps, Workspace& ws);

/// Result of growing BFS regions from two seeds simultaneously.
struct BidirectionalCut {
  /// side[v]: 0 = reached from s first, 1 = reached from t first,
  /// 2 = unreached (v lies in a different component).
  std::vector<std::uint8_t> side;
  VertexId reached_s = 0;  ///< vertices claimed by the s region
  VertexId reached_t = 0;  ///< vertices claimed by the t region
};

/// Grows BFS level-by-level from \p s and \p t alternately until every
/// vertex in their component(s) is claimed; ties (same level reachable from
/// both) go to the region whose level was expanded first, with the smaller
/// region expanding first to keep the two sides near-equal in vertex count.
/// This realizes the paper's "BFS from two distant nodes until the two
/// expanding sets meet to define a cutline".
[[nodiscard]] BidirectionalCut bidirectional_bfs_cut(const Graph& g, VertexId s,
                                                     VertexId t);

/// Workspace-backed bidirectional cut: identical result to the allocating
/// overload, but the two frontier queues and the next-level staging buffer
/// are hoisted into \p ws (clear()ed between levels, capacity persists) and
/// the side labels are written into \p out.side reusing its capacity. The
/// only steady-state allocation is out.side's first growth per lane.
void bidirectional_bfs_cut(const Graph& g, VertexId s, VertexId t,
                           Workspace& ws, BidirectionalCut& out);

}  // namespace fhp

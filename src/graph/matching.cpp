#include "graph/matching.hpp"

#include <limits>

#include "util/error.hpp"

namespace fhp {

namespace {

constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();

/// Verifies that `side` is a proper 2-coloring in debug-style checks.
void check_coloring(const Graph& g, const std::vector<std::uint8_t>& side) {
  FHP_REQUIRE(side.size() == g.num_vertices(),
              "one side label per vertex expected");
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    FHP_REQUIRE(side[v] == 0 || side[v] == 1, "side labels must be 0/1");
    for (VertexId w : g.neighbors(v)) {
      FHP_REQUIRE(side[w] != side[v],
                  "side labels are not a proper 2-coloring");
    }
  }
}

class HopcroftKarp {
 public:
  HopcroftKarp(const Graph& g, const std::vector<std::uint8_t>& side)
      : g_(g), side_(side) {
    match_.assign(g.num_vertices(), kInvalidVertex);
    layer_.assign(g.num_vertices(), kInf);
  }

  MatchingResult run() {
    MatchingResult result;
    while (bfs_layers()) {
      for (VertexId v = 0; v < g_.num_vertices(); ++v) {
        if (side_[v] == 0 && match_[v] == kInvalidVertex) {
          if (try_augment(v)) ++result.size;
        }
      }
    }
    result.match = std::move(match_);
    return result;
  }

 private:
  /// Layers free-left vertices at 0 and alternates matched/unmatched edges;
  /// returns true if some free right vertex is reachable (an augmenting
  /// path exists).
  bool bfs_layers() {
    queue_.clear();
    for (VertexId v = 0; v < g_.num_vertices(); ++v) {
      if (side_[v] == 0 && match_[v] == kInvalidVertex) {
        layer_[v] = 0;
        queue_.push_back(v);
      } else {
        layer_[v] = kInf;
      }
    }
    bool found = false;
    for (std::size_t head = 0; head < queue_.size(); ++head) {
      const VertexId u = queue_[head];
      for (VertexId w : g_.neighbors(u)) {
        // w is on the right; step to its matched partner (or succeed).
        const VertexId next = match_[w];
        if (next == kInvalidVertex) {
          found = true;
        } else if (layer_[next] == kInf) {
          layer_[next] = layer_[u] + 1;
          queue_.push_back(next);
        }
      }
    }
    return found;
  }

  /// DFS along the layered structure, flipping matched edges on success.
  bool try_augment(VertexId u) {
    for (VertexId w : g_.neighbors(u)) {
      const VertexId next = match_[w];
      if (next == kInvalidVertex ||
          (layer_[next] == layer_[u] + 1 && try_augment(next))) {
        match_[u] = w;
        match_[w] = u;
        return true;
      }
    }
    layer_[u] = kInf;  // dead end: prune for the rest of this phase
    return false;
  }

  const Graph& g_;
  const std::vector<std::uint8_t>& side_;
  std::vector<VertexId> match_;
  std::vector<std::uint32_t> layer_;
  std::vector<VertexId> queue_;
};

}  // namespace

MatchingResult max_bipartite_matching(const Graph& g,
                                      const std::vector<std::uint8_t>& side) {
  check_coloring(g, side);
  return HopcroftKarp(g, side).run();
}

std::vector<std::uint8_t> minimum_vertex_cover(
    const Graph& g, const std::vector<std::uint8_t>& side,
    const MatchingResult& matching) {
  check_coloring(g, side);
  FHP_REQUIRE(matching.match.size() == g.num_vertices(),
              "matching does not cover this graph");
  // König: Z = vertices reachable from free left vertices by alternating
  // paths (unmatched edge left->right, matched edge right->left).
  // Cover = (L \ Z) ∪ (R ∩ Z).
  std::vector<std::uint8_t> in_z(g.num_vertices(), 0);
  std::vector<VertexId> queue;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (side[v] == 0 && matching.match[v] == kInvalidVertex) {
      in_z[v] = 1;
      queue.push_back(v);
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const VertexId u = queue[head];
    if (side[u] == 0) {
      for (VertexId w : g.neighbors(u)) {
        if (matching.match[u] != w && !in_z[w]) {  // unmatched edge
          in_z[w] = 1;
          queue.push_back(w);
        }
      }
    } else {
      const VertexId partner = matching.match[u];
      if (partner != kInvalidVertex && !in_z[partner]) {  // matched edge
        in_z[partner] = 1;
        queue.push_back(partner);
      }
    }
  }
  std::vector<std::uint8_t> cover(g.num_vertices(), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const bool covered = (side[v] == 0) ? !in_z[v] : static_cast<bool>(in_z[v]);
    cover[v] = covered ? 1 : 0;
  }
  return cover;
}

}  // namespace fhp

#include "graph/maxflow.hpp"

#include <algorithm>

namespace fhp {

FlowNetwork::FlowNetwork(Count num_nodes) {
  // Admission before allocation: a hostile or miscomputed node count must
  // fail typed, never wrap an id or demand count-proportional memory
  // first. (Count can represent values past kMaxIndexCount — the unsigned
  // range exceeds the signed Index range — so the check is meaningful on
  // both index widths.)
  FHP_REQUIRE(static_cast<std::uint64_t>(num_nodes) <= kMaxIndexCount,
              "flow network node count exceeds the index range");
  head_.assign(num_nodes, kNoArc);
}

Count FlowNetwork::add_arc(Count from, Count to, Capacity capacity) {
  FHP_REQUIRE(from < num_nodes() && to < num_nodes(),
              "arc endpoint out of range");
  FHP_REQUIRE(capacity >= 0, "arc capacity must be non-negative");
  FHP_REQUIRE(capacity <= kInfiniteCapacity,
              "arc capacity exceeds kInfiniteCapacity");
  FHP_REQUIRE(!solved_, "network already solved");
  // Arc ids must fit the index range with room for the residual partner
  // (ids id and id^1); the xor-partner trick additionally needs id even.
  FHP_REQUIRE(static_cast<std::uint64_t>(arcs_.size()) + 1 <= kMaxIndexCount,
              "flow network arc count exceeds the index range");
  const auto id = static_cast<Count>(arcs_.size());
  arcs_.push_back(Arc{to, head_[from], capacity});
  head_[from] = id;
  arcs_.push_back(Arc{from, head_[to], 0});
  head_[to] = id + 1;
  return id;
}

bool FlowNetwork::build_levels(Count source, Count sink) {
  level_.assign(num_nodes(), kNoLevel);
  level_[source] = 0;
  std::vector<Count> queue{source};
  for (std::size_t headpos = 0; headpos < queue.size(); ++headpos) {
    const Count u = queue[headpos];
    for (Count a = head_[u]; a != kNoArc; a = arcs_[a].next) {
      const Arc& arc = arcs_[a];
      if (arc.residual > 0 && level_[arc.to] == kNoLevel) {
        level_[arc.to] = level_[u] + 1;
        queue.push_back(arc.to);
      }
    }
  }
  return level_[sink] != kNoLevel;
}

FlowNetwork::Capacity FlowNetwork::push(Count node, Count sink,
                                        Capacity limit) {
  if (node == sink) return limit;
  for (Count& a = iter_[node]; a != kNoArc; a = arcs_[a].next) {
    Arc& arc = arcs_[a];
    if (arc.residual <= 0 || level_[arc.to] != level_[node] + 1) continue;
    const Capacity sent =
        push(arc.to, sink, std::min(limit, arc.residual));
    if (sent > 0) {
      arc.residual -= sent;
      arcs_[a ^ 1].residual += sent;
      return sent;
    }
  }
  return 0;
}

FlowNetwork::Capacity FlowNetwork::max_flow(Count source, Count sink) {
  FHP_REQUIRE(source < num_nodes() && sink < num_nodes(),
              "terminal out of range");
  FHP_REQUIRE(source != sink, "source and sink must differ");
  FHP_REQUIRE(!solved_, "network already solved");
  solved_ = true;
  source_ = source;

  Capacity total = 0;
  while (build_levels(source, sink)) {
    iter_ = head_;
    for (;;) {
      const Capacity sent = push(source, sink, kInfiniteCapacity);
      if (sent == 0) break;
      total += sent;
    }
  }
  return total;
}

std::vector<std::uint8_t> FlowNetwork::min_cut_side() const {
  FHP_REQUIRE(solved_, "call max_flow() first");
  std::vector<std::uint8_t> side(num_nodes(), 0);
  std::vector<Count> queue{source_};
  side[source_] = 1;
  for (std::size_t headpos = 0; headpos < queue.size(); ++headpos) {
    const Count u = queue[headpos];
    for (Count a = head_[u]; a != kNoArc; a = arcs_[a].next) {
      const Arc& arc = arcs_[a];
      if (arc.residual > 0 && !side[arc.to]) {
        side[arc.to] = 1;
        queue.push_back(arc.to);
      }
    }
  }
  return side;
}

}  // namespace fhp

#include "graph/maxflow.hpp"

#include <algorithm>

namespace fhp {

FlowNetwork::FlowNetwork(std::uint32_t num_nodes)
    : head_(num_nodes, kNoArc) {}

std::uint32_t FlowNetwork::add_arc(std::uint32_t from, std::uint32_t to,
                                   Capacity capacity) {
  FHP_REQUIRE(from < num_nodes() && to < num_nodes(),
              "arc endpoint out of range");
  FHP_REQUIRE(capacity >= 0, "arc capacity must be non-negative");
  FHP_REQUIRE(!solved_, "network already solved");
  const auto id = static_cast<std::uint32_t>(arcs_.size());
  arcs_.push_back(Arc{to, head_[from], capacity});
  head_[from] = id;
  arcs_.push_back(Arc{from, head_[to], 0});
  head_[to] = id + 1;
  return id;
}

bool FlowNetwork::build_levels(std::uint32_t source, std::uint32_t sink) {
  level_.assign(num_nodes(), 0xffffffffU);
  level_[source] = 0;
  std::vector<std::uint32_t> queue{source};
  for (std::size_t headpos = 0; headpos < queue.size(); ++headpos) {
    const std::uint32_t u = queue[headpos];
    for (std::uint32_t a = head_[u]; a != kNoArc; a = arcs_[a].next) {
      const Arc& arc = arcs_[a];
      if (arc.residual > 0 && level_[arc.to] == 0xffffffffU) {
        level_[arc.to] = level_[u] + 1;
        queue.push_back(arc.to);
      }
    }
  }
  return level_[sink] != 0xffffffffU;
}

FlowNetwork::Capacity FlowNetwork::push(std::uint32_t node,
                                        std::uint32_t sink, Capacity limit) {
  if (node == sink) return limit;
  for (std::uint32_t& a = iter_[node]; a != kNoArc; a = arcs_[a].next) {
    Arc& arc = arcs_[a];
    if (arc.residual <= 0 || level_[arc.to] != level_[node] + 1) continue;
    const Capacity sent =
        push(arc.to, sink, std::min(limit, arc.residual));
    if (sent > 0) {
      arc.residual -= sent;
      arcs_[a ^ 1].residual += sent;
      return sent;
    }
  }
  return 0;
}

FlowNetwork::Capacity FlowNetwork::max_flow(std::uint32_t source,
                                            std::uint32_t sink) {
  FHP_REQUIRE(source < num_nodes() && sink < num_nodes(),
              "terminal out of range");
  FHP_REQUIRE(source != sink, "source and sink must differ");
  FHP_REQUIRE(!solved_, "network already solved");
  solved_ = true;
  source_ = source;

  Capacity total = 0;
  while (build_levels(source, sink)) {
    iter_ = head_;
    for (;;) {
      const Capacity sent = push(source, sink, kInfiniteCapacity);
      if (sent == 0) break;
      total += sent;
    }
  }
  return total;
}

std::vector<std::uint8_t> FlowNetwork::min_cut_side() const {
  FHP_REQUIRE(solved_, "call max_flow() first");
  std::vector<std::uint8_t> side(num_nodes(), 0);
  std::vector<std::uint32_t> queue{source_};
  side[source_] = 1;
  for (std::size_t headpos = 0; headpos < queue.size(); ++headpos) {
    const std::uint32_t u = queue[headpos];
    for (std::uint32_t a = head_[u]; a != kNoArc; a = arcs_[a].next) {
      const Arc& arc = arcs_[a];
      if (arc.residual > 0 && !side[arc.to]) {
        side[arc.to] = 1;
        queue.push_back(arc.to);
      }
    }
  }
  return side;
}

}  // namespace fhp
